// loctk_campus_conformance — the campus-scale golden gates (ctest
// label: conformance).
//
// The paper's gates (conformance_paper_test.cpp) pin the §5 numbers on
// the 50x40 ft house. This suite pins the same machinery at campus
// cardinality — a generated 2-building x 3-floor campus with 1000+
// APs, surveyed room-by-room and driven by a heterogeneous-device
// fleet — so the compiled kernels, the interner, the pruner, and the
// floor selector cannot quietly shed correctness at the scale they
// exist for:
//
//  * the differential oracle (probabilistic, place recognition, NNSS,
//    k-NN, SSD) must show zero compiled-vs-reference mismatches over
//    fleet observations on the merged campus database;
//  * the coarse-to-fine pruned path must agree top-1 with the exact
//    sweep on the same observations;
//  * floor selection over the per-floor databases must reach >= 95%
//    accuracy probing surveyed rooms, with per-floor in-floor error
//    bands holding on every one of the six floors.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/floor_selector.hpp"
#include "core/observation.hpp"
#include "core/probabilistic.hpp"
#include "radio/campus.hpp"
#include "radio/scanner.hpp"
#include "testkit/differential.hpp"
#include "testkit/scenario.hpp"
#include "testkit/trace.hpp"

namespace loctk::testkit {
namespace {

/// The default campus already clears the scale bar this suite exists
/// for (2 buildings x 3 floors x 170 APs = 1020). A trimmed survey
/// keeps the six 40-room floor surveys inside the conformance budget.
ScenarioSpec campus_spec() {
  ScenarioSpec spec = ScenarioSpec::campus_fleet(
      /*device_count=*/12, /*scans_per_device=*/10, /*seed=*/77);
  spec.train_scans = 6;
  return spec;
}

/// One shared materialized campus for the whole suite: the survey runs
/// six 40-room floors against a 1020-AP radio model, so recomputing it
/// per test would multiply the suite time.
const Scenario& campus_scenario() {
  static const Scenario scenario(campus_spec());
  return scenario;
}

const std::vector<core::Observation>& fleet_observations() {
  static const std::vector<core::Observation> observations =
      observations_from_trace(campus_scenario().record_trace(), 5);
  return observations;
}

TEST(CampusConformance, GeneratedCampusClearsTheScaleBar) {
  const radio::Campus& campus = campus_scenario().campus();
  EXPECT_GE(campus.building_count(), 2u);
  EXPECT_GE(campus.floors_per_building(), 3u);
  EXPECT_GE(campus.total_ap_count(), 1000u);
  // One database per flat floor, plus a merged database whose point
  // count is the whole survey.
  const auto& floors = campus_scenario().floor_databases();
  ASSERT_EQ(floors.size(), campus.floor_count());
  std::size_t surveyed = 0;
  for (const auto& db : floors) surveyed += db.size();
  EXPECT_EQ(campus_scenario().database().size(), surveyed);
  EXPECT_GE(campus_scenario().database().bssid_universe().size(), 1000u);
}

TEST(CampusConformance, DifferentialOracleZeroMismatches) {
  const auto& observations = fleet_observations();
  ASSERT_FALSE(observations.empty());
  // Campus surveys do not retain raw samples, so the histogram pair
  // sits this one out: probabilistic, place recognition, NNSS, k-NN,
  // and SSD race compiled-vs-reference.
  const DifferentialReport report =
      run_differential_oracle(campus_scenario().database(), observations);
  EXPECT_EQ(report.comparisons, observations.size() * 5);
  EXPECT_TRUE(report.ok()) << report.to_text();
}

TEST(CampusConformance, PrunedPathZeroTop1DisagreementsAtScale) {
  // 240 training points is where pruning genuinely prunes; top-1
  // parity with the exact sweep must survive the jump in cardinality
  // (and the fleet's per-device RSSI offsets, which shift the coarse
  // scores but must not evict the true winner).
  const auto& observations = fleet_observations();
  ASSERT_FALSE(observations.empty());
  core::ProbabilisticConfig prune_config;
  prune_config.prune_top_k = 32;
  prune_config.prune_strongest_aps = 4;
  const PrunedDifferentialReport report = run_pruned_differential(
      campus_scenario().database(), observations, prune_config);
  EXPECT_EQ(report.compared, observations.size() * 2);
  EXPECT_TRUE(report.ok()) << report.to_text();
  EXPECT_EQ(report.agreement_rate(), 1.0);
}

TEST(CampusConformance, FloorSelectionAccuracyAndPerFloorErrorBands) {
  const Scenario& scenario = campus_scenario();
  const radio::Campus& campus = scenario.campus();
  std::vector<const traindb::TrainingDatabase*> floors;
  for (const auto& db : scenario.floor_databases()) floors.push_back(&db);
  core::ProbabilisticConfig config;
  config.prune_top_k = 32;
  config.prune_strongest_aps = 4;
  const core::FloorSelector selector(floors, config);
  ASSERT_EQ(selector.floor_count(), campus.floor_count());

  // Probe every fourth surveyed room on every floor (10 probes per
  // floor, 60 total). Floor selection is only meaningful at places
  // the survey covered — a receiver between rooms sees within-floor
  // mismatch larger than the slab separation.
  int total = 0;
  int correct = 0;
  std::vector<double> error_sum_ft(campus.floor_count(), 0.0);
  std::vector<int> error_n(campus.floor_count(), 0);
  for (std::size_t b = 0; b < campus.building_count(); ++b) {
    const auto rooms = campus.room_centers(b);
    for (std::size_t f = 0; f < campus.floors_per_building(); ++f) {
      const std::size_t flat = campus.flat_floor(b, f);
      const radio::CampusFloorView view(campus, b, f);
      radio::Scanner scanner(view, radio::ChannelConfig{},
                             7000 + flat);
      for (std::size_t r = 0; r < rooms.size(); r += 4) {
        scanner.reset_session();
        const core::Observation obs = core::Observation::from_scans(
            scanner.collect(rooms[r], 16));
        const core::FloorEstimate est = selector.locate(obs);
        ASSERT_TRUE(est.valid);
        ++total;
        if (est.floor == flat) {
          ++correct;
          ASSERT_TRUE(est.estimate.valid);
          error_sum_ft[flat] +=
              geom::distance(est.estimate.position, rooms[r]);
          ++error_n[flat];
        }
      }
    }
  }

  // The headline gate: >= 95% of probes land on their true floor.
  EXPECT_GE(correct, (total * 95 + 99) / 100)
      << correct << "/" << total << " floors correct";

  // Per-floor in-floor error bands: probing a surveyed room center
  // must localize to about that room (rooms sit on a 30 ft grid, so a
  // 20 ft mean allows the occasional adjacent-room pick but flags a
  // kernel or interning regression on any single floor).
  for (std::size_t flat = 0; flat < campus.floor_count(); ++flat) {
    ASSERT_GT(error_n[flat], 0) << "floor " << flat << " had no correct fix";
    const double mean_ft =
        error_sum_ft[flat] / static_cast<double>(error_n[flat]);
    EXPECT_LT(mean_ft, 20.0)
        << "floor " << flat << " mean in-floor error " << mean_ft << " ft";
  }
}

TEST(CampusConformance, CampusTraceReplaysByteForByte) {
  // Same determinism contract the single-site gates pin, at campus
  // cardinality: recording the fleet twice yields identical bytes,
  // and the codec round-trips the 1000+-BSSID table exactly.
  const ScanTrace trace = campus_scenario().record_trace();
  const std::string bytes = encode_trace(trace);
  EXPECT_EQ(encode_trace(campus_scenario().record_trace()), bytes);
  const Result<ScanTrace> decoded = try_decode_trace(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value(), trace);
}

}  // namespace
}  // namespace loctk::testkit

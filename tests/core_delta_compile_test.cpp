// CompiledDatabase::delta_compile — the oracle gate. Every test
// compares the delta-compiled result against a from-scratch
// compilation of the same merged points via the testkit structural
// diff (bit-exact, pad cells included): replacements in place, appends
// at the end, universe growth re-padding every row to a new stride,
// and universe *shrink* when a replaced point removed a BSSID's last
// occurrence. Randomized corpora sweep the shapes; the concurrent case
// runs under the TSan CI job (delta_compile is const and must be safe
// to call from many threads over one base).

#include "core/compiled_db.hpp"

#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/simd.hpp"
#include "radio/access_point.hpp"
#include "testkit/differential.hpp"
#include "test_fixtures.hpp"
#include "traindb/database.hpp"

namespace loctk::core {
namespace {

using loctk::testkit::CompiledDiffReport;
using loctk::testkit::compare_compiled_databases;
using loctk::testing::make_fixture_db;

traindb::ApStatistics ap_stat(std::string bssid, double mean,
                              double stddev = 2.0,
                              std::uint32_t samples = 30) {
  traindb::ApStatistics s;
  s.bssid = std::move(bssid);
  s.mean_dbm = mean;
  s.stddev_db = stddev;
  s.sample_count = samples;
  s.scan_count = samples;
  s.min_dbm = mean - 3.0;
  s.max_dbm = mean + 3.0;
  return s;
}

traindb::TrainingPoint make_point(std::string location, geom::Vec2 pos,
                                  std::vector<traindb::ApStatistics> aps) {
  traindb::TrainingPoint tp;
  tp.location = std::move(location);
  tp.position = pos;
  tp.per_ap = std::move(aps);
  return tp;
}

/// The oracle: merge `delta` into `base` exactly as delta_compile
/// documents (replace in place, append in order, later upsert wins)
/// and compile from scratch.
std::shared_ptr<const CompiledDatabase> oracle_compile(
    const traindb::TrainingDatabase& base, const DatabaseDelta& delta) {
  std::vector<traindb::TrainingPoint> merged = base.points();
  for (const traindb::TrainingPoint& up : delta.upserts) {
    bool replaced = false;
    for (traindb::TrainingPoint& p : merged) {
      if (p.location == up.location) {
        p = up;
        replaced = true;
        break;
      }
    }
    if (!replaced) merged.push_back(up);
  }
  return CompiledDatabase::compile_owned(
      traindb::TrainingDatabase::from_points(std::move(merged),
                                             base.site_name()));
}

void expect_oracle_equal(const traindb::TrainingDatabase& base,
                         const DatabaseDelta& delta) {
  const auto compiled = CompiledDatabase::compile(base);
  const auto got = compiled->delta_compile(delta);
  const auto want = oracle_compile(base, delta);
  const CompiledDiffReport diff = compare_compiled_databases(*got, *want);
  EXPECT_TRUE(diff.ok()) << diff.to_text();
  EXPECT_GT(diff.cells_compared, 0u);
}

TEST(DeltaCompile, EmptyDeltaReproducesBase) {
  const traindb::TrainingDatabase base = make_fixture_db();
  expect_oracle_equal(base, DatabaseDelta{});
}

TEST(DeltaCompile, ReplaceInPlaceKeepsUniverse) {
  const traindb::TrainingDatabase base = make_fixture_db();
  DatabaseDelta delta;
  // Resurvey of an existing point: same APs, shifted means.
  traindb::TrainingPoint tp = base.points()[1];
  for (traindb::ApStatistics& s : tp.per_ap) s.mean_dbm -= 7.0;
  delta.upserts.push_back(std::move(tp));
  expect_oracle_equal(base, delta);
}

TEST(DeltaCompile, AppendGrowsUniverseAndRepads) {
  const traindb::TrainingDatabase base = make_fixture_db();
  const std::size_t old_stride =
      CompiledDatabase::compile(base)->row_stride();
  DatabaseDelta delta;
  // Enough brand-new BSSIDs to force a larger padded stride, so every
  // unchanged row must re-pad under the slot remap.
  std::vector<traindb::ApStatistics> aps;
  for (int i = 0; i < 12; ++i) {
    aps.push_back(ap_stat("ff:ff:00:00:00:0" + std::to_string(i),
                          -60.0 - i));
  }
  delta.upserts.push_back(make_point("annex", {99.0, 99.0}, std::move(aps)));

  const auto compiled = CompiledDatabase::compile(base);
  const auto got = compiled->delta_compile(delta);
  EXPECT_GT(got->row_stride(), old_stride);
  expect_oracle_equal(base, delta);
}

TEST(DeltaCompile, ReplacingLastOccurrenceShrinksUniverse) {
  // Point "solo" is the only one hearing BSSID "zz:..."; replacing it
  // with a version that dropped that AP must remove the slot, exactly
  // as a from-scratch rebuild would.
  std::vector<traindb::TrainingPoint> points;
  points.push_back(make_point(
      "a", {0, 0}, {ap_stat("aa:00:00:00:00:01", -50.0),
                    ap_stat("bb:00:00:00:00:02", -60.0)}));
  points.push_back(make_point(
      "solo", {10, 0}, {ap_stat("bb:00:00:00:00:02", -55.0),
                        ap_stat("zz:00:00:00:00:09", -70.0)}));
  const auto base = traindb::TrainingDatabase::from_points(points, "shrink");

  DatabaseDelta delta;
  delta.upserts.push_back(
      make_point("solo", {10, 0}, {ap_stat("bb:00:00:00:00:02", -58.0)}));

  const auto compiled = CompiledDatabase::compile(base);
  const auto got = compiled->delta_compile(delta);
  EXPECT_EQ(got->universe_size(), 2u);
  EXPECT_FALSE(got->slot_of("zz:00:00:00:00:09").has_value());
  expect_oracle_equal(base, delta);
}

TEST(DeltaCompile, LaterUpsertForSameLocationWins) {
  const traindb::TrainingDatabase base = make_fixture_db();
  DatabaseDelta delta;
  traindb::TrainingPoint first = base.points()[0];
  first.per_ap[0].mean_dbm = -10.0;
  traindb::TrainingPoint second = base.points()[0];
  second.per_ap[0].mean_dbm = -90.0;
  delta.upserts.push_back(std::move(first));
  delta.upserts.push_back(std::move(second));

  const auto got =
      CompiledDatabase::compile(base)->delta_compile(delta);
  EXPECT_EQ(got->database().points()[0].per_ap[0].mean_dbm, -90.0);
  expect_oracle_equal(base, delta);
}

TEST(DeltaCompile, DeltaOntoEmptyDatabaseIsFullCompile) {
  const traindb::TrainingDatabase base;
  DatabaseDelta delta;
  delta.upserts.push_back(make_point(
      "first", {1, 2}, {ap_stat("aa:00:00:00:00:01", -45.0)}));
  expect_oracle_equal(base, delta);
}

TEST(DeltaCompile, ResultIsSelfContained) {
  // The delta result owns its merged database: the base compilation
  // and its source may die first.
  std::shared_ptr<const CompiledDatabase> got;
  {
    const traindb::TrainingDatabase base = make_fixture_db();
    DatabaseDelta delta;
    delta.upserts.push_back(make_point(
        "annex", {99, 99}, {ap_stat("ff:ff:00:00:00:01", -66.0)}));
    got = CompiledDatabase::compile(base)->delta_compile(delta);
  }
  EXPECT_EQ(got->database().find("annex")->per_ap[0].mean_dbm, -66.0);
  EXPECT_TRUE(got->slot_of("ff:ff:00:00:00:01").has_value());
}

/// Randomized corpus: `n_points` points drawing 2..6 APs each from a
/// `pool`-sized BSSID pool, so corpora exercise overlapping rows,
/// varying universe sizes, and stride boundaries.
traindb::TrainingDatabase random_db(std::mt19937& rng, int n_points,
                                    int pool) {
  std::uniform_int_distribution<int> ap_count(2, 6);
  std::uniform_int_distribution<int> which(0, pool - 1);
  std::uniform_real_distribution<double> dbm(-90.0, -40.0);
  std::vector<traindb::TrainingPoint> points;
  for (int p = 0; p < n_points; ++p) {
    std::vector<traindb::ApStatistics> aps;
    std::vector<bool> used(static_cast<std::size_t>(pool), false);
    const int n = ap_count(rng);
    for (int a = 0; a < n; ++a) {
      const int b = which(rng);
      if (used[static_cast<std::size_t>(b)]) continue;
      used[static_cast<std::size_t>(b)] = true;
      char bssid[32];
      std::snprintf(bssid, sizeof(bssid), "%02x:11:22:33:44:55", b);
      aps.push_back(ap_stat(bssid, dbm(rng)));
    }
    points.push_back(make_point("pt" + std::to_string(p),
                                {static_cast<double>(p) * 5.0, 0.0},
                                std::move(aps)));
  }
  return traindb::TrainingDatabase::from_points(std::move(points), "rand");
}

DatabaseDelta random_delta(std::mt19937& rng,
                           const traindb::TrainingDatabase& base,
                           int pool) {
  std::uniform_int_distribution<int> n_ups(1, 5);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_real_distribution<double> dbm(-90.0, -40.0);
  DatabaseDelta delta;
  const int n = n_ups(rng);
  for (int i = 0; i < n; ++i) {
    const bool replace = !base.empty() && coin(rng) == 1;
    std::vector<traindb::ApStatistics> aps;
    std::uniform_int_distribution<int> which(0, pool + 4 - 1);
    std::vector<bool> used(static_cast<std::size_t>(pool + 4), false);
    const int n_aps = 1 + coin(rng) + coin(rng);
    for (int a = 0; a < n_aps; ++a) {
      const int b = which(rng);  // can land outside `pool`: new BSSIDs
      if (used[static_cast<std::size_t>(b)]) continue;
      used[static_cast<std::size_t>(b)] = true;
      char bssid[32];
      std::snprintf(bssid, sizeof(bssid), "%02x:11:22:33:44:55", b);
      aps.push_back(ap_stat(bssid, dbm(rng)));
    }
    std::string location;
    if (replace) {
      std::uniform_int_distribution<std::size_t> idx(0, base.size() - 1);
      location = base.points()[idx(rng)].location;
    } else {
      location = "new" + std::to_string(i);
    }
    delta.upserts.push_back(
        make_point(std::move(location), {1.0 * i, 7.0}, std::move(aps)));
  }
  return delta;
}

TEST(DeltaCompile, RandomizedCorporaMatchOracle) {
  for (std::uint32_t seed = 0; seed < 24; ++seed) {
    std::mt19937 rng(seed * 2654435761u + 1);
    const int pool = 4 + static_cast<int>(seed % 13);
    const traindb::TrainingDatabase base =
        random_db(rng, 3 + static_cast<int>(seed % 9), pool);
    const DatabaseDelta delta = random_delta(rng, base, pool);
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_oracle_equal(base, delta);
  }
}

TEST(DeltaCompile, ChainedDeltasMatchOracle) {
  // Lifecycle reality: deltas land on top of deltas. Apply three in
  // sequence, each compared against its own from-scratch oracle.
  std::mt19937 rng(1234);
  const int pool = 10;
  traindb::TrainingDatabase base = random_db(rng, 8, pool);
  auto compiled = CompiledDatabase::compile_owned(base);
  for (int round = 0; round < 3; ++round) {
    const DatabaseDelta delta = random_delta(rng, compiled->database(), pool);
    const auto want = oracle_compile(compiled->database(), delta);
    compiled = compiled->delta_compile(delta);
    const CompiledDiffReport diff =
        compare_compiled_databases(*compiled, *want);
    EXPECT_TRUE(diff.ok()) << "round " << round << "\n" << diff.to_text();
  }
}

TEST(DeltaCompile, ConcurrentDeltasOverOneBaseAreIndependent) {
  // delta_compile is const: many janitors (or a janitor racing a
  // conformance probe) may delta-compile one live snapshot at once.
  // Each thread applies its own delta and checks its own oracle; TSan
  // watches for any shared-state mutation in the base.
  const traindb::TrainingDatabase base = make_fixture_db();
  const auto compiled = CompiledDatabase::compile(base);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(static_cast<std::uint32_t>(t) * 7919u + 3);
      for (int round = 0; round < 8; ++round) {
        const DatabaseDelta delta = random_delta(rng, base, 6);
        const auto got = compiled->delta_compile(delta);
        const auto want = oracle_compile(base, delta);
        if (!compare_compiled_databases(*got, *want).ok()) {
          ++failures[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << t;
  }
}

TEST(DeltaCompile, RemapsSlotsAcrossAThousandSlotUniverse) {
  // Campus-cardinality audit: the slot remap on grow AND shrink must
  // stay bit-exact when slot indices run past 1000, where any
  // narrow-index or small-table habit in the remap would corrupt
  // rows. Base: 40 points over a 1044-AP universe, each trained on a
  // 30-slot window (windows overlap by 4, so mid-window APs have a
  // single owner).
  std::vector<traindb::TrainingPoint> points(40);
  for (int p = 0; p < 40; ++p) {
    points[p].location = "w" + std::to_string(p);
    points[p].position = {static_cast<double>(p) * 10.0, 0.0};
    for (int a = p * 26; a < p * 26 + 30; ++a) {
      points[p].per_ap.push_back(
          ap_stat(radio::synthetic_bssid(a), -50.0 - (a % 7)));
    }
  }
  const auto base =
      traindb::TrainingDatabase::from_points(points, "wide-universe");
  ASSERT_GT(CompiledDatabase::compile(base)->universe_size(), 1000u);

  // Shrink: resurvey point 20 keeping only its first four APs — its
  // exclusively-owned mid-window slots (524..545) leave the universe,
  // remapping every slot above them.
  DatabaseDelta delta;
  traindb::TrainingPoint resurvey = points[20];
  resurvey.per_ap.resize(4);
  delta.upserts.push_back(std::move(resurvey));
  // Grow: an annex whose BSSIDs sort past the whole synthetic range.
  std::vector<traindb::ApStatistics> annex;
  for (int i = 0; i < 9; ++i) {
    annex.push_back(ap_stat("ff:ff:ff:00:00:0" + std::to_string(i),
                            -64.0 - i));
  }
  delta.upserts.push_back(make_point("annex", {999.0, 0.0}, std::move(annex)));

  expect_oracle_equal(base, delta);
}

}  // namespace
}  // namespace loctk::core

// Unit tests for the Training Database Generator (paper §4.3):
// aggregation correctness, mismatch reporting, and serial/parallel
// equivalence.

#include "traindb/generator.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace loctk::traindb {
namespace {

wiscan::WiScanFile scripted_file(const std::string& location) {
  // Two APs: "aa" heard every pass with values -50, -52, -54;
  // "bb" heard twice with -70, -72; "cc" heard once (to be dropped).
  wiscan::WiScanFile f;
  f.location = location;
  f.entries = {
      {0.0, "aa", "net", 1, -50.0}, {0.0, "bb", "net", 6, -70.0},
      {1.0, "aa", "net", 1, -52.0}, {1.0, "bb", "net", 6, -72.0},
      {2.0, "aa", "net", 1, -54.0}, {2.0, "cc", "net", 11, -90.0},
  };
  return f;
}

TEST(BuildTrainingPoint, ComputesPaperStatistics) {
  GeneratorConfig cfg;
  cfg.min_samples_per_ap = 2;
  std::size_t dropped = 0;
  const TrainingPoint p =
      build_training_point(scripted_file("k"), {10.0, 20.0}, cfg, &dropped);

  EXPECT_EQ(p.location, "k");
  EXPECT_EQ(p.position, geom::Vec2(10.0, 20.0));
  ASSERT_EQ(p.per_ap.size(), 2u);  // "cc" dropped
  EXPECT_EQ(dropped, 1u);

  const ApStatistics* aa = p.find("aa");
  ASSERT_NE(aa, nullptr);
  EXPECT_DOUBLE_EQ(aa->mean_dbm, -52.0);
  // Population stddev of {-50,-52,-54} = sqrt(8/3).
  EXPECT_NEAR(aa->stddev_db, std::sqrt(8.0 / 3.0), 1e-12);
  EXPECT_EQ(aa->sample_count, 3u);
  EXPECT_EQ(aa->scan_count, 3u);
  EXPECT_DOUBLE_EQ(aa->min_dbm, -54.0);
  EXPECT_DOUBLE_EQ(aa->max_dbm, -50.0);
  EXPECT_TRUE(aa->samples_centi_dbm.empty());  // keep_samples off

  const ApStatistics* bb = p.find("bb");
  ASSERT_NE(bb, nullptr);
  EXPECT_DOUBLE_EQ(bb->mean_dbm, -71.0);
  EXPECT_EQ(bb->sample_count, 2u);
  EXPECT_EQ(bb->scan_count, 3u);  // visibility 2/3
  EXPECT_NEAR(bb->visibility(), 2.0 / 3.0, 1e-12);
}

TEST(BuildTrainingPoint, KeepSamplesStoresCentiDbm) {
  GeneratorConfig cfg;
  cfg.keep_samples = true;
  cfg.min_samples_per_ap = 1;
  const TrainingPoint p =
      build_training_point(scripted_file("k"), {0, 0}, cfg);
  const ApStatistics* aa = p.find("aa");
  ASSERT_NE(aa, nullptr);
  ASSERT_EQ(aa->samples_centi_dbm.size(), 3u);
  EXPECT_EQ(aa->samples_centi_dbm[0], -5000);
  EXPECT_EQ(aa->samples_centi_dbm[2], -5400);
}

TEST(Generate, BuildsFromCollectionAndMap) {
  wiscan::Collection col;
  col.files = {scripted_file("a"), scripted_file("b")};
  wiscan::LocationMap map;
  map.add("a", {0.0, 0.0});
  map.add("b", {10.0, 0.0});

  GeneratorConfig cfg;
  cfg.site_name = "test-site";
  cfg.min_samples_per_ap = 2;  // keep "bb" (2 samples), drop "cc" (1)
  GeneratorReport report;
  const TrainingDatabase db = generate_database(col, map, cfg, &report);

  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.site_name(), "test-site");
  EXPECT_EQ(report.points_built, 2u);
  EXPECT_TRUE(report.unmapped_locations.empty());
  EXPECT_TRUE(report.unsurveyed_locations.empty());
  EXPECT_EQ(db.find("a")->position, geom::Vec2(0.0, 0.0));
  EXPECT_EQ(db.bssid_universe().size(), 2u);  // cc dropped everywhere
}

TEST(Generate, ReportsMismatches) {
  wiscan::Collection col;
  col.files = {scripted_file("surveyed-only"), scripted_file("both")};
  wiscan::LocationMap map;
  map.add("both", {1.0, 1.0});
  map.add("mapped-only", {2.0, 2.0});

  GeneratorReport report;
  const TrainingDatabase db = generate_database(col, map, {}, &report);
  EXPECT_EQ(db.size(), 1u);
  ASSERT_EQ(report.unmapped_locations.size(), 1u);
  EXPECT_EQ(report.unmapped_locations[0], "surveyed-only");
  ASSERT_EQ(report.unsurveyed_locations.size(), 1u);
  EXPECT_EQ(report.unsurveyed_locations[0], "mapped-only");
}

TEST(Generate, ParallelMatchesSerialExactly) {
  wiscan::Collection col;
  wiscan::LocationMap map;
  for (int i = 0; i < 24; ++i) {
    const std::string name = "p" + std::to_string(i);
    wiscan::WiScanFile f = scripted_file(name);
    // Vary the data a little per point.
    for (auto& e : f.entries) e.rssi_dbm -= i * 0.5;
    col.files.push_back(std::move(f));
    map.add(name, {static_cast<double>(i), 0.0});
  }

  GeneratorConfig cfg;
  cfg.keep_samples = true;
  cfg.min_samples_per_ap = 1;
  GeneratorReport serial_report, parallel_report;
  const TrainingDatabase serial =
      generate_database(col, map, cfg, &serial_report);

  concurrency::ThreadPool pool(4);
  const TrainingDatabase parallel = generate_database_parallel(
      col, map, pool, cfg, &parallel_report);

  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial_report.points_built, parallel_report.points_built);
  EXPECT_EQ(serial_report.dropped_pairs, parallel_report.dropped_pairs);
}

TEST(Generate, FromPathEndToEnd) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "loctk_gen_path";
  fs::remove_all(dir);
  fs::create_directories(dir / "scans");

  wiscan::write_wiscan(dir / "scans" / "a.wiscan", scripted_file("a"));
  wiscan::LocationMap map;
  map.add("a", {3.0, 4.0});
  map.write(dir / "house.locmap");

  const TrainingDatabase db =
      generate_database_from_path(dir / "scans", dir / "house.locmap");
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.find("a")->position, geom::Vec2(3.0, 4.0));

  // Archive flavor.
  wiscan::Archive ar;
  ar.add("a.wiscan", wiscan::encode_wiscan(scripted_file("a")));
  ar.write(dir / "scans.lar");
  const TrainingDatabase db2 =
      generate_database_from_path(dir / "scans.lar", dir / "house.locmap");
  EXPECT_EQ(db2.size(), 1u);
  fs::remove_all(dir);
}

TEST(Generate, EmptyInputs) {
  const TrainingDatabase db =
      generate_database(wiscan::Collection{}, wiscan::LocationMap{});
  EXPECT_TRUE(db.empty());
  EXPECT_TRUE(db.bssid_universe().empty());
}

}  // namespace
}  // namespace loctk::traindb

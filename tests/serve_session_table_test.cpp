// SessionTable: lock-free per-device session storage. The contract
// under test: one session per device forever (find_or_create is
// idempotent and race-free), a full stripe rejects instead of
// blocking, and sessions persist — pointers stay stable for the
// table's lifetime because the serving layer holds them across calls.

#include "serve/session_table.hpp"

#include <atomic>
#include <cstddef>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/location_service.hpp"

namespace loctk::serve {
namespace {

core::LocationServiceConfig service_config() {
  core::LocationServiceConfig config;
  config.window_scans = 3;
  return config;
}

TEST(SessionTable, CapacityRoundsToPowerOfTwoPerStripe) {
  SessionTable table(/*capacity=*/100, /*stripes=*/4);
  EXPECT_EQ(table.stripe_count(), 4u);
  // 100/4 = 25 cells per stripe, rounded up to 32 → 128 total.
  EXPECT_EQ(table.capacity(), 128u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(SessionTable, FindOrCreateIsIdempotent) {
  SessionTable table(64, 4);
  const auto config = service_config();
  Session* first = table.find_or_create(42, config);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.find_or_create(42, config), first);
  EXPECT_EQ(table.find(42), first);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SessionTable, FindWithoutCreateReturnsNull) {
  SessionTable table(64, 4);
  EXPECT_EQ(table.find(7), nullptr);
  table.find_or_create(7, service_config());
  EXPECT_NE(table.find(7), nullptr);
  EXPECT_EQ(table.find(8), nullptr);
}

TEST(SessionTable, DistinctDevicesGetDistinctSessions) {
  SessionTable table(1 << 10, 8);
  const auto config = service_config();
  std::set<Session*> sessions;
  for (DeviceId d = 1; d <= 200; ++d) {
    Session* s = table.find_or_create(d, config);
    ASSERT_NE(s, nullptr);
    sessions.insert(s);
  }
  EXPECT_EQ(sessions.size(), 200u);
  EXPECT_EQ(table.size(), 200u);
}

TEST(SessionTable, FullTableRejectsNewDevicesButServesExisting) {
  // One stripe of minimal size: easy to fill completely.
  SessionTable table(/*capacity=*/4, /*stripes=*/1);
  const auto config = service_config();
  ASSERT_EQ(table.capacity(), 4u);

  std::vector<DeviceId> admitted;
  DeviceId next = 1;
  while (admitted.size() < table.capacity()) {
    if (table.find_or_create(next, config) != nullptr) {
      admitted.push_back(next);
    }
    ++next;
  }
  EXPECT_EQ(table.size(), table.capacity());

  // A brand-new device must be rejected, not block or evict...
  EXPECT_EQ(table.find_or_create(next, config), nullptr);
  // ...while every admitted device keeps resolving to its session.
  for (DeviceId d : admitted) {
    EXPECT_NE(table.find(d), nullptr);
  }
}

TEST(SessionTable, ConcurrentCreatesConvergeOnOneSession) {
  // The claim race: many threads call find_or_create for the same
  // fresh device simultaneously; exactly one session may exist and
  // every caller must receive that same pointer.
  constexpr int kThreads = 8;
  constexpr DeviceId kDevices = 64;
  SessionTable table(1 << 10, 8);
  const auto config = service_config();

  std::vector<std::vector<Session*>> seen(kThreads,
                                          std::vector<Session*>(kDevices));
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (DeviceId d = 1; d <= kDevices; ++d) {
        seen[static_cast<std::size_t>(t)][d - 1] =
            table.find_or_create(d, config);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (DeviceId d = 1; d <= kDevices; ++d) {
    Session* canonical = seen[0][d - 1];
    ASSERT_NE(canonical, nullptr);
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t)][d - 1], canonical)
          << "device " << d << " thread " << t;
    }
  }
  EXPECT_EQ(table.size(), kDevices);
}

TEST(SessionTable, SessionLockSerializesSameDevice) {
  SessionTable table(64, 4);
  Session* s = table.find_or_create(1, service_config());
  ASSERT_NE(s, nullptr);

  int shared = 0;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        s->lock();
        ++shared;  // data-race-free only if lock() works (TSan checks)
        s->unlock();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(shared, 4 * kIters);
}

}  // namespace
}  // namespace loctk::serve

// SessionTable: lock-free per-device session storage. The contract
// under test: one session per device forever (find_or_create is
// idempotent and race-free), a full stripe rejects instead of
// blocking, and sessions persist — pointers stay stable for the
// table's lifetime because the serving layer holds them across calls.

#include "serve/session_table.hpp"

#include <array>
#include <atomic>
#include <cstddef>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/location_service.hpp"

namespace loctk::serve {
namespace {

core::LocationServiceConfig service_config() {
  core::LocationServiceConfig config;
  config.window_scans = 3;
  return config;
}

TEST(SessionTable, CapacityRoundsToPowerOfTwoPerStripe) {
  SessionTable table(/*capacity=*/100, /*stripes=*/4);
  EXPECT_EQ(table.stripe_count(), 4u);
  // 100/4 = 25 cells per stripe, rounded up to 32 → 128 total.
  EXPECT_EQ(table.capacity(), 128u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(SessionTable, FindOrCreateIsIdempotent) {
  SessionTable table(64, 4);
  const auto config = service_config();
  Session* first = table.find_or_create(42, config);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.find_or_create(42, config), first);
  EXPECT_EQ(table.find(42), first);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SessionTable, FindWithoutCreateReturnsNull) {
  SessionTable table(64, 4);
  EXPECT_EQ(table.find(7), nullptr);
  table.find_or_create(7, service_config());
  EXPECT_NE(table.find(7), nullptr);
  EXPECT_EQ(table.find(8), nullptr);
}

TEST(SessionTable, DistinctDevicesGetDistinctSessions) {
  SessionTable table(1 << 10, 8);
  const auto config = service_config();
  std::set<Session*> sessions;
  for (DeviceId d = 1; d <= 200; ++d) {
    Session* s = table.find_or_create(d, config);
    ASSERT_NE(s, nullptr);
    sessions.insert(s);
  }
  EXPECT_EQ(sessions.size(), 200u);
  EXPECT_EQ(table.size(), 200u);
}

TEST(SessionTable, FullTableRejectsNewDevicesButServesExisting) {
  // One stripe of minimal size: easy to fill completely.
  SessionTable table(/*capacity=*/4, /*stripes=*/1);
  const auto config = service_config();
  ASSERT_EQ(table.capacity(), 4u);

  std::vector<DeviceId> admitted;
  DeviceId next = 1;
  while (admitted.size() < table.capacity()) {
    if (table.find_or_create(next, config) != nullptr) {
      admitted.push_back(next);
    }
    ++next;
  }
  EXPECT_EQ(table.size(), table.capacity());

  // A brand-new device must be rejected, not block or evict...
  EXPECT_EQ(table.find_or_create(next, config), nullptr);
  // ...while every admitted device keeps resolving to its session.
  for (DeviceId d : admitted) {
    EXPECT_NE(table.find(d), nullptr);
  }
}

TEST(SessionTable, ConcurrentCreatesConvergeOnOneSession) {
  // The claim race: many threads call find_or_create for the same
  // fresh device simultaneously; exactly one session may exist and
  // every caller must receive that same pointer.
  constexpr int kThreads = 8;
  constexpr DeviceId kDevices = 64;
  SessionTable table(1 << 10, 8);
  const auto config = service_config();

  std::vector<std::vector<Session*>> seen(kThreads,
                                          std::vector<Session*>(kDevices));
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (DeviceId d = 1; d <= kDevices; ++d) {
        seen[static_cast<std::size_t>(t)][d - 1] =
            table.find_or_create(d, config);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (DeviceId d = 1; d <= kDevices; ++d) {
    Session* canonical = seen[0][d - 1];
    ASSERT_NE(canonical, nullptr);
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t)][d - 1], canonical)
          << "device " << d << " thread " << t;
    }
  }
  EXPECT_EQ(table.size(), kDevices);
}

TEST(SessionTable, FindWaitsForPublicationDuringClaimRace) {
  // Regression: find() used to return the cell's session pointer as
  // soon as the key matched — which is nullptr in the window between
  // the winner's key CAS and its session publication, violating the
  // "nullptr when absent" contract for a device that exists. Race a
  // creator against a finder on a fresh device per round: whenever the
  // finder's probe lands inside that window it must now wait and come
  // back with the winner's session, never nullptr-then-a-session.
  constexpr DeviceId kRounds = 512;
  SessionTable table(1 << 12, 2);
  const auto config = service_config();

  std::atomic<DeviceId> current{0};
  std::array<std::atomic<Session*>, kRounds + 1> created{};
  std::atomic<bool> stop{false};

  std::thread finder([&] {
    DeviceId last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const DeviceId d = current.load(std::memory_order_acquire);
      if (d == 0 || d == last) continue;
      // Hammer find() while the creator is (maybe) mid-claim. A
      // non-null result must be the winner's session once published.
      Session* seen = nullptr;
      for (;;) {
        seen = table.find(d);
        if (seen) break;
        Session* c = created[d].load(std::memory_order_acquire);
        if (c) {
          // Publication happened-before this load, so a find() issued
          // now must observe the session. Old code could still return
          // nullptr here if its earlier probe cached the race window.
          seen = table.find(d);
          EXPECT_NE(seen, nullptr) << "device " << d;
          break;
        }
      }
      if (Session* c = created[d].load(std::memory_order_acquire)) {
        EXPECT_EQ(seen, c) << "device " << d;
      }
      last = d;
    }
  });

  for (DeviceId d = 1; d <= kRounds; ++d) {
    current.store(d, std::memory_order_release);
    Session* s = table.find_or_create(d, config);
    ASSERT_NE(s, nullptr);
    created[d].store(s, std::memory_order_release);
    // Creator-side view: the session exists, so find() may never say
    // otherwise again.
    EXPECT_EQ(table.find(d), s);
  }
  stop.store(true, std::memory_order_release);
  finder.join();

  EXPECT_EQ(table.size(), kRounds);
  for (DeviceId d = 1; d <= kRounds; ++d) {
    EXPECT_EQ(table.find(d), created[d].load());
  }
}

TEST(SessionTable, ConcurrentFindAndCreateConvergeOnWinner) {
  // The claim race with mixed traffic: half the threads create, half
  // only look up. Every non-null answer for a device — from either
  // path — must be the single winning session (no duplicates, no
  // torn lookups). Runs under the TSan CI job.
  constexpr int kCreators = 4;
  constexpr int kFinders = 4;
  constexpr DeviceId kDevices = 128;
  SessionTable table(1 << 10, 8);
  const auto config = service_config();

  std::vector<std::vector<Session*>> created(
      kCreators, std::vector<Session*>(kDevices));
  std::atomic<int> ready{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kCreators; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kCreators + kFinders) std::this_thread::yield();
      for (DeviceId d = 1; d <= kDevices; ++d) {
        created[static_cast<std::size_t>(t)][d - 1] =
            table.find_or_create(d, config);
      }
    });
  }
  std::vector<std::vector<Session*>> found(
      kFinders, std::vector<Session*>(kDevices, nullptr));
  for (int t = 0; t < kFinders; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kCreators + kFinders) std::this_thread::yield();
      while (!stop.load(std::memory_order_acquire)) {
        for (DeviceId d = 1; d <= kDevices; ++d) {
          if (Session* s = table.find(d)) {
            found[static_cast<std::size_t>(t)][d - 1] = s;
          }
        }
      }
    });
  }
  for (int t = 0; t < kCreators; ++t) threads[static_cast<std::size_t>(t)].join();
  stop.store(true, std::memory_order_release);
  for (int t = kCreators; t < kCreators + kFinders; ++t) {
    threads[static_cast<std::size_t>(t)].join();
  }

  for (DeviceId d = 1; d <= kDevices; ++d) {
    Session* canonical = created[0][d - 1];
    ASSERT_NE(canonical, nullptr);
    for (int t = 1; t < kCreators; ++t) {
      EXPECT_EQ(created[static_cast<std::size_t>(t)][d - 1], canonical);
    }
    for (int t = 0; t < kFinders; ++t) {
      Session* f = found[static_cast<std::size_t>(t)][d - 1];
      if (f != nullptr) EXPECT_EQ(f, canonical);
    }
  }
  EXPECT_EQ(table.size(), kDevices);
}

TEST(SessionTable, SessionLockSerializesSameDevice) {
  SessionTable table(64, 4);
  Session* s = table.find_or_create(1, service_config());
  ASSERT_NE(s, nullptr);

  int shared = 0;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        s->lock();
        ++shared;  // data-race-free only if lock() works (TSan checks)
        s->unlock();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(shared, 4 * kIters);
}

}  // namespace
}  // namespace loctk::serve

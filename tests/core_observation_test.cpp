// Unit tests for working-phase observations.

#include "core/observation.hpp"

#include <gtest/gtest.h>

namespace loctk::core {
namespace {

std::vector<radio::ScanRecord> scripted_scans() {
  std::vector<radio::ScanRecord> scans(3);
  scans[0].timestamp_s = 0.0;
  scans[0].samples = {{"bb", -70.0, 6}, {"aa", -50.0, 1}};
  scans[1].timestamp_s = 1.0;
  scans[1].samples = {{"aa", -52.0, 1}};
  scans[2].timestamp_s = 2.0;
  scans[2].samples = {{"aa", -54.0, 1}, {"bb", -72.0, 6}};
  return scans;
}

TEST(Observation, FromScansAggregatesPerAp) {
  const Observation obs = Observation::from_scans(scripted_scans());
  EXPECT_EQ(obs.ap_count(), 2u);
  EXPECT_FALSE(obs.empty());

  const ObservedAp* aa = obs.find("aa");
  ASSERT_NE(aa, nullptr);
  EXPECT_DOUBLE_EQ(aa->mean_dbm, -52.0);
  EXPECT_EQ(aa->sample_count, 3u);
  ASSERT_EQ(aa->samples_dbm.size(), 3u);

  const ObservedAp* bb = obs.find("bb");
  ASSERT_NE(bb, nullptr);
  EXPECT_DOUBLE_EQ(bb->mean_dbm, -71.0);
  EXPECT_EQ(bb->sample_count, 2u);

  EXPECT_EQ(obs.find("cc"), nullptr);
}

TEST(Observation, ApsSortedByBssid) {
  const Observation obs = Observation::from_scans(scripted_scans());
  ASSERT_EQ(obs.aps().size(), 2u);
  EXPECT_EQ(obs.aps()[0].bssid, "aa");
  EXPECT_EQ(obs.aps()[1].bssid, "bb");
}

TEST(Observation, FromEntriesMatchesFromScans) {
  const auto scans = scripted_scans();
  const Observation from_scans = Observation::from_scans(scans);
  const Observation from_entries =
      Observation::from_entries(wiscan::entries_from_scans(scans));
  EXPECT_EQ(from_scans.aps().size(), from_entries.aps().size());
  for (std::size_t i = 0; i < from_scans.aps().size(); ++i) {
    EXPECT_EQ(from_scans.aps()[i].bssid, from_entries.aps()[i].bssid);
    EXPECT_DOUBLE_EQ(from_scans.aps()[i].mean_dbm,
                     from_entries.aps()[i].mean_dbm);
  }
}

TEST(Observation, MeanOfAndSignature) {
  const Observation obs = Observation::from_scans(scripted_scans());
  EXPECT_DOUBLE_EQ(*obs.mean_of("aa"), -52.0);
  EXPECT_FALSE(obs.mean_of("zz").has_value());

  const auto sig = obs.signature({"aa", "zz", "bb"}, -99.0);
  ASSERT_EQ(sig.size(), 3u);
  EXPECT_DOUBLE_EQ(sig[0], -52.0);
  EXPECT_DOUBLE_EQ(sig[1], -99.0);
  EXPECT_DOUBLE_EQ(sig[2], -71.0);
}

TEST(Observation, EmptyCases) {
  const Observation obs = Observation::from_scans({});
  EXPECT_TRUE(obs.empty());
  EXPECT_EQ(obs.ap_count(), 0u);
  EXPECT_TRUE(obs.signature({}, -100.0).empty());

  // Scans that heard nothing also produce an empty observation.
  std::vector<radio::ScanRecord> silent(5);
  EXPECT_TRUE(Observation::from_scans(silent).empty());
}

}  // namespace
}  // namespace loctk::core

// Unit tests for multi-floor training and floor selection, including
// the regression pins for the two campus-cardinality fixes: per-term
// score normalization across floors with different AP universes, and
// explicit rejection of non-finite per-floor scores.

#include "core/floor_selector.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/evaluation.hpp"

namespace loctk::core {
namespace {

struct BuildingFixture {
  BuildingFixture()
      : building(radio::make_office_building(3, 18.0)),
        map(make_training_grid(building->floor(0).footprint(), 10.0)),
        dbs(train_building(*building, map, 40, 9000)) {}

  std::unique_ptr<radio::Building> building;
  wiscan::LocationMap map;
  std::vector<traindb::TrainingDatabase> dbs;
};

std::vector<const traindb::TrainingDatabase*> ptrs(
    const std::vector<traindb::TrainingDatabase>& dbs) {
  std::vector<const traindb::TrainingDatabase*> out;
  for (const auto& db : dbs) out.push_back(&db);
  return out;
}

TEST(TrainBuilding, OneDatabasePerFloorWithCrossFloorAps) {
  const BuildingFixture fx;
  ASSERT_EQ(fx.dbs.size(), 3u);
  for (std::size_t f = 0; f < 3; ++f) {
    EXPECT_EQ(fx.dbs[f].size(), 12u) << f;
    EXPECT_EQ(fx.dbs[f].site_name(), "floor-" + std::to_string(f));
    // Same-floor APs always trained; adjacent-floor APs usually heard
    // somewhere too (slab 18 dB leaves them above sensitivity near
    // their own corner).
    EXPECT_GE(fx.dbs[f].bssid_universe().size(), 4u);
  }
  // Floor-1 surveys should hear more total APs than floor-0 or 2 (two
  // adjacent floors instead of one).
  EXPECT_GE(fx.dbs[1].bssid_universe().size(),
            fx.dbs[0].bssid_universe().size());
}

TEST(FloorSelector, RejectsBadConstruction) {
  using DbPtrs = std::vector<const traindb::TrainingDatabase*>;
  using Compiled = std::vector<std::shared_ptr<const CompiledDatabase>>;
  EXPECT_THROW(FloorSelector(DbPtrs{}), std::invalid_argument);
  EXPECT_THROW(FloorSelector(DbPtrs{nullptr}), std::invalid_argument);
  EXPECT_THROW(FloorSelector(Compiled{}), std::invalid_argument);
  EXPECT_THROW(FloorSelector(Compiled{nullptr}), std::invalid_argument);
}

TEST(FloorSelector, PicksTheRightFloor) {
  const BuildingFixture fx;
  const FloorSelector selector(ptrs(fx.dbs));
  EXPECT_EQ(selector.floor_count(), 3u);

  int correct = 0, total = 0;
  for (std::size_t truth_floor = 0; truth_floor < 3; ++truth_floor) {
    const radio::FloorView view(*fx.building, truth_floor);
    radio::Scanner scanner(view, radio::ChannelConfig{},
                           7000 + truth_floor);
    for (const geom::Vec2 pos :
         {geom::Vec2{12.0, 12.0}, geom::Vec2{25.0, 20.0},
          geom::Vec2{40.0, 30.0}}) {
      scanner.reset_session();
      const Observation obs =
          Observation::from_scans(scanner.collect(pos, 30));
      const FloorEstimate est = selector.locate(obs);
      ASSERT_TRUE(est.valid);
      correct += est.floor == truth_floor;
      ++total;
      // In-floor estimate still lands in the right neighborhood.
      EXPECT_LT(geom::distance(est.estimate.position, pos), 20.0);
    }
  }
  // 18 dB slabs make floors very separable.
  EXPECT_GE(correct, total - 1) << correct << "/" << total;
}

TEST(FloorSelector, ConfidenceDropsWithThinSlabs) {
  // Same building geometry, nearly transparent floors: selection gets
  // less confident.
  const auto thick = radio::make_office_building(2, 24.0);
  const auto thin = radio::make_office_building(2, 4.0);

  auto confidence_of = [](const radio::Building& b) {
    const auto map =
        make_training_grid(b.floor(0).footprint(), 10.0);
    const auto dbs = train_building(b, map, 30, 4242);
    std::vector<const traindb::TrainingDatabase*> p;
    for (const auto& db : dbs) p.push_back(&db);
    const FloorSelector sel(p);
    const radio::FloorView view(b, 0);
    radio::Scanner scanner(view, radio::ChannelConfig{}, 99);
    const Observation obs =
        Observation::from_scans(scanner.collect({25.0, 20.0}, 30));
    const FloorEstimate est = sel.locate(obs);
    return est.valid ? est.floor_confidence : 0.0;
  };

  EXPECT_GT(confidence_of(*thick), confidence_of(*thin));
}

TEST(FloorSelector, EmptyObservationInvalid) {
  const BuildingFixture fx;
  const FloorSelector selector(ptrs(fx.dbs));
  EXPECT_FALSE(selector.locate(Observation{}).valid);
}

traindb::ApStatistics trained_ap(const std::string& bssid, double mean_dbm,
                                 double stddev_db = 2.0) {
  traindb::ApStatistics s;
  s.bssid = bssid;
  s.mean_dbm = mean_dbm;
  s.stddev_db = stddev_db;
  s.sample_count = 40;
  s.scan_count = 40;
  s.min_dbm = mean_dbm - 6.0;
  s.max_dbm = mean_dbm + 6.0;
  return s;
}

Observation observation_of(
    const std::vector<std::pair<std::string, double>>& readings) {
  std::vector<radio::ScanRecord> scans(1);
  for (const auto& [bssid, dbm] : readings) {
    scans[0].samples.push_back({bssid, dbm, 1});
  }
  return Observation::from_scans(scans);
}

// Regression (campus fix #2a): raw per-floor best log-likelihoods are
// not on a common scale when floors have different AP universes — a
// richer floor pays more missing-AP penalty *terms* for the same
// observation, so the raw max systematically favors the small
// universe. The selector must compare per scored term.
TEST(FloorSelector, NormalizesAcrossUnequalFloorUniverses) {
  // Floor 0: two trained APs, both observed 6 dB (3 sigma) off.
  traindb::TrainingPoint small;
  small.location = "small";
  small.position = {0.0, 0.0};
  small.per_ap = {trained_ap("fs:00", -60.0), trained_ap("fs:01", -60.0)};
  const auto small_db = traindb::TrainingDatabase::from_points({small});

  // Floor 1: the same two APs observed spot-on, plus ten more trained
  // APs the (partial) observation never reports.
  traindb::TrainingPoint rich;
  rich.location = "rich";
  rich.position = {0.0, 0.0};
  rich.per_ap = {trained_ap("fs:00", -66.0), trained_ap("fs:01", -66.0)};
  for (int a = 0; a < 10; ++a) {
    rich.per_ap.push_back(
        trained_ap("fr:" + std::to_string(10 + a), -70.0));
  }
  const auto rich_db = traindb::TrainingDatabase::from_points({rich});

  const FloorSelector selector(
      std::vector<const traindb::TrainingDatabase*>{&small_db, &rich_db});
  const Observation obs =
      observation_of({{"fs:00", -66.0}, {"fs:01", -66.0}});

  // The bug this pins: by raw sum, the small floor "wins"…
  const double raw_small = selector.floor_locator(0).locate(obs).score;
  const double raw_rich = selector.floor_locator(1).locate(obs).score;
  ASSERT_GT(raw_small, raw_rich);

  // …but per scored term the rich floor explains the observation
  // better (two exact matches vs two 3-sigma misses), and the
  // selector must say so.
  const FloorEstimate est = selector.locate(obs);
  ASSERT_TRUE(est.valid);
  EXPECT_EQ(est.floor, 1u);
  EXPECT_EQ(est.estimate.location_name, "rich");
  EXPECT_GT(est.floor_confidence, 0.0);
  EXPECT_LE(est.floor_confidence, 1.0);

  // Pin the normalization arithmetic itself: score / (common +
  // penalties), penalties = trained + in + outside - 2*common.
  const auto scores = selector.floor_scores(obs);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_GT(scores[1], scores[0]);
  EXPECT_NEAR(scores[0], raw_small / 2.0, 1e-12);
  EXPECT_NEAR(scores[1], raw_rich / 12.0, 1e-12);
}

// Regression (campus fix #2b): a NaN reading reaching one floor's
// kernel used to corrupt the max_element fold (NaN comparisons are
// all false, so the NaN floor "won" at index 0) and leak a NaN score
// out of the estimate. Non-finite floors must be disqualified.
TEST(FloorSelector, RejectsNonFiniteFloorScores) {
  traindb::TrainingPoint f0;
  f0.location = "f0";
  f0.position = {0.0, 0.0};
  f0.per_ap = {trained_ap("na:00", -55.0), trained_ap("sh:01", -60.0)};
  const auto db0 = traindb::TrainingDatabase::from_points({f0});

  traindb::TrainingPoint f1;
  f1.location = "f1";
  f1.position = {0.0, 0.0};
  f1.per_ap = {trained_ap("sh:01", -60.0), trained_ap("ot:02", -65.0)};
  const auto db1 = traindb::TrainingDatabase::from_points({f1});

  const FloorSelector selector(
      std::vector<const traindb::TrainingDatabase*>{&db0, &db1});
  // na:00 reads NaN: floor 0 scores it as a common AP (NaN Gaussian);
  // floor 1 has never heard of it (finite penalty term).
  const Observation obs = observation_of(
      {{"na:00", std::numeric_limits<double>::quiet_NaN()},
       {"sh:01", -60.0}});

  const auto scores = selector.floor_scores(obs);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_EQ(scores[0], -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isfinite(scores[1]));

  const FloorEstimate est = selector.locate(obs);
  ASSERT_TRUE(est.valid);
  EXPECT_EQ(est.floor, 1u);
  EXPECT_EQ(est.estimate.location_name, "f1");
  EXPECT_TRUE(std::isfinite(est.estimate.score));
  EXPECT_TRUE(std::isfinite(est.floor_confidence));

  // When every floor is poisoned, the fix must refuse rather than
  // return floor 0 with a NaN score.
  const Observation all_nan = observation_of(
      {{"na:00", std::numeric_limits<double>::quiet_NaN()}});
  EXPECT_FALSE(selector.locate(all_nan).valid);
}

// Campus fix #1: selection rides the compiled locate() path, so a
// pruned configuration and a shared compilation must both work and
// agree with the exact sweep.
TEST(FloorSelector, PrunedAndSharedCompilationAgreeWithExact) {
  const BuildingFixture fx;
  const FloorSelector exact(ptrs(fx.dbs));

  ProbabilisticConfig pruned_cfg;
  pruned_cfg.prune_top_k = 8;
  pruned_cfg.prune_strongest_aps = 4;
  const FloorSelector pruned(ptrs(fx.dbs), pruned_cfg);

  std::vector<std::shared_ptr<const CompiledDatabase>> shared;
  for (const auto& db : fx.dbs) {
    shared.push_back(CompiledDatabase::compile(db));
  }
  const FloorSelector shared_sel(std::move(shared));

  for (std::size_t truth_floor = 0; truth_floor < 3; ++truth_floor) {
    const radio::FloorView view(*fx.building, truth_floor);
    radio::Scanner scanner(view, radio::ChannelConfig{},
                           6100 + truth_floor);
    const Observation obs =
        Observation::from_scans(scanner.collect({18.0, 22.0}, 20));
    const FloorEstimate e = exact.locate(obs);
    const FloorEstimate p = pruned.locate(obs);
    const FloorEstimate s = shared_sel.locate(obs);
    ASSERT_TRUE(e.valid);
    ASSERT_TRUE(p.valid);
    ASSERT_TRUE(s.valid);
    EXPECT_EQ(p.floor, e.floor);
    EXPECT_EQ(p.estimate.location_name, e.estimate.location_name);
    EXPECT_EQ(s.floor, e.floor);
    EXPECT_EQ(s.estimate.score, e.estimate.score);
    EXPECT_EQ(s.floor_confidence, e.floor_confidence);
  }
}

TEST(TrainCampus, OneDatabasePerFlatFloorMergeableCampusWide) {
  radio::CampusSpec spec;
  spec.buildings = 2;
  spec.floors_per_building = 2;
  spec.floor_width_ft = 120.0;
  spec.floor_depth_ft = 80.0;
  spec.rooms_x = 3;
  spec.rooms_y = 2;
  spec.aps_per_floor = 12;
  spec.seed = 404;
  const auto campus = radio::make_campus(spec);

  const auto dbs = train_campus(*campus, 6, 5150);
  ASSERT_EQ(dbs.size(), 4u);
  for (std::size_t flat = 0; flat < dbs.size(); ++flat) {
    const std::string tag =
        "B" + std::to_string(campus->building_of(flat)) + "F" +
        std::to_string(campus->floor_of(flat));
    EXPECT_EQ(dbs[flat].site_name(), tag);
    EXPECT_EQ(dbs[flat].size(), 6u);
    // Every room survey hears at least its own floor's nearby APs.
    EXPECT_GE(dbs[flat].bssid_universe().size(), 4u);
    for (const auto& tp : dbs[flat].points()) {
      EXPECT_EQ(tp.location.rfind(tag + "-R", 0), 0u) << tp.location;
    }
  }

  const auto merged = merge_floor_databases(dbs, "campus");
  EXPECT_EQ(merged.size(), 24u);
  EXPECT_EQ(merged.site_name(), "campus");
  // The merged universe is the union of the per-floor universes.
  std::size_t widest = 0;
  for (const auto& db : dbs) {
    widest = std::max(widest, db.bssid_universe().size());
  }
  EXPECT_GE(merged.bssid_universe().size(), widest);

  // Floor selection over the flat floors: a receiver standing in a
  // surveyed room on a known (building, floor) should be assigned its
  // flat index.
  std::vector<const traindb::TrainingDatabase*> p;
  for (const auto& db : dbs) p.push_back(&db);
  const FloorSelector selector(p);
  int correct = 0, total = 0;
  for (std::size_t b = 0; b < campus->building_count(); ++b) {
    const auto rooms = campus->room_centers(b);
    for (std::size_t f = 0; f < campus->floors_per_building(); ++f) {
      const radio::CampusFloorView view(*campus, b, f);
      radio::Scanner scanner(view, radio::ChannelConfig{},
                             900 + campus->flat_floor(b, f));
      for (std::size_t r = 0; r < rooms.size(); r += 2) {
        scanner.reset_session();
        const Observation obs =
            Observation::from_scans(scanner.collect(rooms[r], 20));
        const FloorEstimate est = selector.locate(obs);
        ASSERT_TRUE(est.valid);
        correct += est.floor == campus->flat_floor(b, f);
        ++total;
      }
    }
  }
  EXPECT_GE(correct, total - 1) << correct << "/" << total;
}

TEST(FloorSelector, FloorScoresAlignedAndFinite) {
  const BuildingFixture fx;
  const FloorSelector selector(ptrs(fx.dbs));
  const radio::FloorView view(*fx.building, 2);
  radio::Scanner scanner(view, radio::ChannelConfig{}, 1);
  const Observation obs =
      Observation::from_scans(scanner.collect({20.0, 20.0}, 20));
  const auto scores = selector.floor_scores(obs);
  ASSERT_EQ(scores.size(), 3u);
  // The true floor's score is the maximum.
  EXPECT_GE(scores[2], scores[0]);
  EXPECT_GE(scores[2], scores[1]);
}

}  // namespace
}  // namespace loctk::core

// Unit tests for multi-floor training and floor selection.

#include "core/floor_selector.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"

namespace loctk::core {
namespace {

struct BuildingFixture {
  BuildingFixture()
      : building(radio::make_office_building(3, 18.0)),
        map(make_training_grid(building->floor(0).footprint(), 10.0)),
        dbs(train_building(*building, map, 40, 9000)) {}

  std::unique_ptr<radio::Building> building;
  wiscan::LocationMap map;
  std::vector<traindb::TrainingDatabase> dbs;
};

std::vector<const traindb::TrainingDatabase*> ptrs(
    const std::vector<traindb::TrainingDatabase>& dbs) {
  std::vector<const traindb::TrainingDatabase*> out;
  for (const auto& db : dbs) out.push_back(&db);
  return out;
}

TEST(TrainBuilding, OneDatabasePerFloorWithCrossFloorAps) {
  const BuildingFixture fx;
  ASSERT_EQ(fx.dbs.size(), 3u);
  for (std::size_t f = 0; f < 3; ++f) {
    EXPECT_EQ(fx.dbs[f].size(), 12u) << f;
    EXPECT_EQ(fx.dbs[f].site_name(), "floor-" + std::to_string(f));
    // Same-floor APs always trained; adjacent-floor APs usually heard
    // somewhere too (slab 18 dB leaves them above sensitivity near
    // their own corner).
    EXPECT_GE(fx.dbs[f].bssid_universe().size(), 4u);
  }
  // Floor-1 surveys should hear more total APs than floor-0 or 2 (two
  // adjacent floors instead of one).
  EXPECT_GE(fx.dbs[1].bssid_universe().size(),
            fx.dbs[0].bssid_universe().size());
}

TEST(FloorSelector, RejectsBadConstruction) {
  EXPECT_THROW(FloorSelector({}), std::invalid_argument);
  EXPECT_THROW(FloorSelector({nullptr}), std::invalid_argument);
}

TEST(FloorSelector, PicksTheRightFloor) {
  const BuildingFixture fx;
  const FloorSelector selector(ptrs(fx.dbs));
  EXPECT_EQ(selector.floor_count(), 3u);

  int correct = 0, total = 0;
  for (std::size_t truth_floor = 0; truth_floor < 3; ++truth_floor) {
    const radio::FloorView view(*fx.building, truth_floor);
    radio::Scanner scanner(view, radio::ChannelConfig{},
                           7000 + truth_floor);
    for (const geom::Vec2 pos :
         {geom::Vec2{12.0, 12.0}, geom::Vec2{25.0, 20.0},
          geom::Vec2{40.0, 30.0}}) {
      scanner.reset_session();
      const Observation obs =
          Observation::from_scans(scanner.collect(pos, 30));
      const FloorEstimate est = selector.locate(obs);
      ASSERT_TRUE(est.valid);
      correct += est.floor == truth_floor;
      ++total;
      // In-floor estimate still lands in the right neighborhood.
      EXPECT_LT(geom::distance(est.estimate.position, pos), 20.0);
    }
  }
  // 18 dB slabs make floors very separable.
  EXPECT_GE(correct, total - 1) << correct << "/" << total;
}

TEST(FloorSelector, ConfidenceDropsWithThinSlabs) {
  // Same building geometry, nearly transparent floors: selection gets
  // less confident.
  const auto thick = radio::make_office_building(2, 24.0);
  const auto thin = radio::make_office_building(2, 4.0);

  auto confidence_of = [](const radio::Building& b) {
    const auto map =
        make_training_grid(b.floor(0).footprint(), 10.0);
    const auto dbs = train_building(b, map, 30, 4242);
    std::vector<const traindb::TrainingDatabase*> p;
    for (const auto& db : dbs) p.push_back(&db);
    const FloorSelector sel(p);
    const radio::FloorView view(b, 0);
    radio::Scanner scanner(view, radio::ChannelConfig{}, 99);
    const Observation obs =
        Observation::from_scans(scanner.collect({25.0, 20.0}, 30));
    const FloorEstimate est = sel.locate(obs);
    return est.valid ? est.floor_confidence : 0.0;
  };

  EXPECT_GT(confidence_of(*thick), confidence_of(*thin));
}

TEST(FloorSelector, EmptyObservationInvalid) {
  const BuildingFixture fx;
  const FloorSelector selector(ptrs(fx.dbs));
  EXPECT_FALSE(selector.locate(Observation{}).valid);
}

TEST(FloorSelector, FloorScoresAlignedAndFinite) {
  const BuildingFixture fx;
  const FloorSelector selector(ptrs(fx.dbs));
  const radio::FloorView view(*fx.building, 2);
  radio::Scanner scanner(view, radio::ChannelConfig{}, 1);
  const Observation obs =
      Observation::from_scans(scanner.collect({20.0, 20.0}, 20));
  const auto scores = selector.floor_scores(obs);
  ASSERT_EQ(scores.size(), 3u);
  // The true floor's score is the maximum.
  EXPECT_GE(scores[2], scores[0]);
  EXPECT_GE(scores[2], scores[1]);
}

}  // namespace
}  // namespace loctk::core

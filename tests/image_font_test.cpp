// Unit tests for the built-in 5x7 bitmap font.

#include "image/font.hpp"

#include <gtest/gtest.h>

namespace loctk::image {
namespace {

TEST(Font, GlyphCoverage) {
  for (int c = 32; c <= 126; ++c) {
    EXPECT_TRUE(has_glyph(static_cast<char>(c))) << "char " << c;
  }
  EXPECT_FALSE(has_glyph('\n'));
  EXPECT_FALSE(has_glyph('\t'));
  EXPECT_FALSE(has_glyph(static_cast<char>(200)));
}

TEST(Font, SpaceIsEmptyEverythingElseInked) {
  auto ink = [](char ch) {
    int count = 0;
    for (int r = 0; r < kGlyphHeight; ++r) {
      for (int c = 0; c < kGlyphWidth; ++c) {
        if (glyph_pixel(ch, c, r)) ++count;
      }
    }
    return count;
  };
  EXPECT_EQ(ink(' '), 0);
  for (int c = 33; c <= 126; ++c) {
    EXPECT_GT(ink(static_cast<char>(c)), 0) << "char " << c;
  }
}

TEST(Font, DistinctGlyphs) {
  // Commonly-confused pairs must differ.
  auto same = [](char a, char b) {
    for (int r = 0; r < kGlyphHeight; ++r) {
      for (int c = 0; c < kGlyphWidth; ++c) {
        if (glyph_pixel(a, c, r) != glyph_pixel(b, c, r)) return false;
      }
    }
    return true;
  };
  EXPECT_FALSE(same('0', 'O'));
  EXPECT_FALSE(same('1', 'l'));
  EXPECT_FALSE(same('I', 'l'));
  EXPECT_FALSE(same('5', 'S'));
  EXPECT_FALSE(same('8', 'B'));
}

TEST(Font, GlyphPixelOutOfRangeIsFalse) {
  EXPECT_FALSE(glyph_pixel('A', -1, 0));
  EXPECT_FALSE(glyph_pixel('A', 5, 0));
  EXPECT_FALSE(glyph_pixel('A', 0, 7));
}

TEST(Font, UnknownCharRendersReplacementBox) {
  // The box has its whole top row set.
  for (int c = 0; c < kGlyphWidth; ++c) {
    EXPECT_TRUE(glyph_pixel('\x01', c, 0));
    EXPECT_TRUE(glyph_pixel('\x01', c, kGlyphHeight - 1));
  }
}

TEST(DrawChar, PaintsInkAtOffset) {
  Raster img(20, 20);
  draw_char(img, 5, 5, 'I', colors::kBlack);
  // 'I' has its middle column set through the middle rows.
  EXPECT_EQ(img.at(5 + 2, 5 + 3), colors::kBlack);
  EXPECT_GT(img.count_pixels(colors::kBlack), 5u);
}

TEST(DrawChar, ScaleMultipliesInk) {
  Raster s1(60, 60), s3(60, 60);
  draw_char(s1, 0, 0, 'H', colors::kBlack, 1);
  draw_char(s3, 0, 0, 'H', colors::kBlack, 3);
  EXPECT_EQ(s3.count_pixels(colors::kBlack),
            9u * s1.count_pixels(colors::kBlack));
}

TEST(DrawText, AdvancesAndReturnsWidth) {
  Raster img(100, 20);
  const int w = draw_text(img, 0, 0, "AB", colors::kBlack);
  EXPECT_EQ(w, 2 * kGlyphAdvance);
  // Second glyph starts at x = kGlyphAdvance.
  EXPECT_GT(img.crop(kGlyphAdvance, 0, kGlyphWidth, kGlyphHeight)
                .count_pixels(colors::kBlack),
            0u);
}

TEST(DrawText, MultilineBreaks) {
  Raster img(100, 40);
  draw_text(img, 0, 0, "A\nB", colors::kBlack);
  // Ink appears on the second line band.
  const Raster line2 = img.crop(0, kLineAdvance, 10, kGlyphHeight);
  EXPECT_GT(line2.count_pixels(colors::kBlack), 0u);
}

TEST(TextMetrics, WidthAndHeight) {
  EXPECT_EQ(text_width(""), 0);
  EXPECT_EQ(text_width("abc"), 3 * kGlyphAdvance);
  EXPECT_EQ(text_width("ab\nabcd"), 4 * kGlyphAdvance);
  EXPECT_EQ(text_height("x"), kGlyphHeight);
  EXPECT_EQ(text_height("x\ny"), kLineAdvance + kGlyphHeight);
  EXPECT_EQ(text_width("ab", 2), 2 * 2 * kGlyphAdvance);
}

// Pins the trailing-empty-line contract (font.hpp): a trailing '\n'
// starts a final empty line that contributes nothing to draw_text's
// returned width, while text_height counts it as a full extra line.
// draw_text_atlas mirrors the same contract (asserted by the golden
// suite), so this is the single place the behavior is allowed to
// change.
TEST(DrawText, TrailingNewlineAddsNoWidthButCountsAsALine) {
  Raster img(100, 40);
  EXPECT_EQ(draw_text(img, 0, 0, "AB\n", colors::kBlack),
            draw_text(img, 0, 0, "AB", colors::kBlack));
  EXPECT_EQ(text_width("AB\n"), text_width("AB"));
  EXPECT_EQ(text_height("AB\n"), kLineAdvance + kGlyphHeight);
  EXPECT_EQ(text_height("AB"), kGlyphHeight);

  // Interior empty lines behave the same way: no width, full height.
  EXPECT_EQ(draw_text(img, 0, 0, "AB\n\n\n", colors::kBlack),
            2 * kGlyphAdvance);
  EXPECT_EQ(text_width("AB\n\n\n"), 2 * kGlyphAdvance);
  EXPECT_EQ(text_height("AB\n\n\n"), 3 * kLineAdvance + kGlyphHeight);

  // A newline-only string draws nothing and has zero width, yet
  // measures two lines tall.
  Raster blank(30, 30);
  EXPECT_EQ(draw_text(blank, 0, 0, "\n", colors::kBlack), 0);
  EXPECT_EQ(blank.count_pixels(colors::kBlack), 0u);
  EXPECT_EQ(text_width("\n"), 0);
  EXPECT_EQ(text_height("\n"), kLineAdvance + kGlyphHeight);

  // The contract scales with the glyph scale.
  EXPECT_EQ(text_width("AB\n", 3), text_width("AB", 3));
  EXPECT_EQ(text_height("AB\n", 3), 3 * (kLineAdvance + kGlyphHeight));
}

TEST(DrawText, ClipsAtBorders) {
  Raster img(10, 10);
  draw_text(img, 7, 7, "WWW", colors::kBlack);  // mostly off canvas
  draw_text(img, -3, -3, "WWW", colors::kBlack);
  SUCCEED();  // no crash, clipped writes ignored
}

}  // namespace
}  // namespace loctk::image

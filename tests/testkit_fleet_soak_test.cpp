// Fleet-scale soak (ctest label: soak): >= 64 concurrent simulated
// devices replayed through per-device LocationService sessions on the
// default pool, with the full invariant battery and a fault schedule
// mixed in. The scheduled CI job runs this suite under TSan — the
// per-device services share one locator, so any unsynchronized state
// in the locate path surfaces here.

#include "testkit/soak.hpp"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/probabilistic.hpp"
#include "testkit/scenario.hpp"

namespace loctk::testkit {
namespace {

constexpr std::size_t kFleetDevices = 64;
constexpr int kScansPerDevice = 40;

ScenarioSpec fleet_spec() {
  ScenarioSpec spec =
      ScenarioSpec::fleet(kFleetDevices, kScansPerDevice, /*seed=*/64);
  // Sprinkle every fault kind across the fleet so the soak also
  // exercises rejection and coasting under load.
  for (std::uint32_t d = 0; d < kFleetDevices; d += 7) {
    spec.faults.push_back({.device = d, .scan_index = (d % 13) + 3,
                           .kind = FaultEvent::Kind::kNonFiniteRssi});
  }
  for (std::uint32_t d = 3; d < kFleetDevices; d += 11) {
    spec.faults.push_back({.device = d, .scan_index = (d % 17) + 2,
                           .kind = FaultEvent::Kind::kDropScan});
  }
  for (std::uint32_t d = 5; d < kFleetDevices; d += 9) {
    spec.faults.push_back({.device = d, .scan_index = (d % 19) + 1,
                           .kind = FaultEvent::Kind::kDropStrongestAp});
  }
  return spec;
}

TEST(FleetSoakFull, SixtyFourDevicesZeroInvariantViolations) {
  const Scenario scenario(fleet_spec());
  const ScanTrace trace = scenario.record_trace();
  ASSERT_GE(trace.device_count, 64u);

  const core::ProbabilisticLocator locator(scenario.database());
  SoakConfig config;
  // Generous bound: the scheduled job runs this under TSan on shared
  // CI machines. The quick-tier soak tests keep the tight default.
  config.max_p99_on_scan_s = 5.0;

  const SoakResult result = run_fleet_soak(trace, locator, config);
  for (const std::string& v : result.violations) ADD_FAILURE() << v;
  EXPECT_TRUE(result.ok());

  const RunReport& r = result.report;
  EXPECT_EQ(r.device_count, kFleetDevices);
  EXPECT_GT(r.rejected_samples, 0u);  // the NaN schedule really ran
  EXPECT_GT(r.valid_fix_fraction(), 0.8);
  std::fputs(r.to_text().c_str(), stderr);
  std::fprintf(stderr, "  wall %.2fs  mean on_scan %.1fus  p99 %.1fus\n",
               result.wall_s, 1e6 * result.mean_on_scan_s,
               1e6 * result.p99_on_scan_s);
}

TEST(FleetSoakFull, ReportIdenticalAcrossConcurrentReplays) {
  const Scenario scenario(fleet_spec());
  const ScanTrace trace = scenario.record_trace();
  const core::ProbabilisticLocator locator(scenario.database());
  SoakConfig config;
  config.max_p99_on_scan_s = 5.0;

  const SoakResult once = run_fleet_soak(trace, locator, config);
  const SoakResult twice = run_fleet_soak(trace, locator, config);
  EXPECT_TRUE(once.ok());
  EXPECT_TRUE(twice.ok());
  EXPECT_EQ(once.report, twice.report);
  EXPECT_EQ(once.report.to_json(), twice.report.to_json());
}

}  // namespace
}  // namespace loctk::testkit

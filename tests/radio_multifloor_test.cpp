// Unit tests for the multi-floor building model.

#include "radio/multifloor.hpp"

#include <set>

#include "radio/scanner.hpp"

#include <gtest/gtest.h>

namespace loctk::radio {
namespace {

TEST(Building, MakeOfficeBuildingShape) {
  const auto building = make_office_building(3);
  EXPECT_EQ(building->floor_count(), 3u);
  EXPECT_EQ(building->total_ap_count(), 12u);
  EXPECT_DOUBLE_EQ(building->floor_attenuation_db(), 18.0);
  // Floor names carry the floor index.
  EXPECT_EQ(building->floor(0).access_points()[0].name, "F0A");
  EXPECT_EQ(building->floor(2).access_points()[3].name, "F2D");
  // AP -> floor mapping is bottom-up in blocks of 4.
  EXPECT_EQ(building->ap_floor(0), 0u);
  EXPECT_EQ(building->ap_floor(5), 1u);
  EXPECT_EQ(building->ap_floor(11), 2u);
}

TEST(Building, BssidsUniqueAcrossFloors) {
  const auto building = make_office_building(4);
  std::set<std::string> ids;
  for (std::size_t f = 0; f < building->floor_count(); ++f) {
    for (const AccessPoint& ap : building->floor(f).access_points()) {
      EXPECT_TRUE(ids.insert(ap.bssid).second) << ap.bssid;
    }
  }
  EXPECT_EQ(ids.size(), 16u);
}

TEST(Building, DuplicateBssidRejected) {
  Building building;
  Environment f0(geom::Rect::sized(10.0, 10.0));
  AccessPoint ap;
  ap.bssid = "aa:aa";
  ap.position = {5.0, 5.0};
  f0.add_access_point(ap);
  building.add_floor(std::move(f0));

  Environment f1(geom::Rect::sized(10.0, 10.0));
  f1.add_access_point(ap);  // same BSSID
  EXPECT_THROW(building.add_floor(std::move(f1)),
               std::invalid_argument);
}

TEST(FloorView, SameFloorMatchesPropagation) {
  const auto building = make_office_building(2);
  const FloorView view(*building, 0);
  const geom::Vec2 pos{20.0, 20.0};
  for (std::size_t i = 0; i < 4; ++i) {  // floor-0 APs
    EXPECT_DOUBLE_EQ(view.mean_rssi_dbm(i, pos),
                     building->propagation(0).mean_rssi_dbm(i, pos));
  }
}

TEST(FloorView, CrossFloorLosesSlabAttenuation) {
  const auto building = make_office_building(3, 18.0);
  const geom::Vec2 pos{25.0, 20.0};
  const FloorView on_f0(*building, 0);
  // AP 4..7 live on floor 1, AP 8..11 on floor 2.
  const double same =
      building->propagation(1).mean_rssi_dbm(0, pos);
  EXPECT_NEAR(on_f0.mean_rssi_dbm(4, pos), same - 18.0, 1e-12);
  const double two_up =
      building->propagation(2).mean_rssi_dbm(0, pos);
  EXPECT_NEAR(on_f0.mean_rssi_dbm(8, pos), two_up - 36.0, 1e-12);
}

TEST(FloorView, ApAccessorFlattens) {
  const auto building = make_office_building(2);
  const FloorView view(*building, 1);
  EXPECT_EQ(view.ap_count(), 8u);
  EXPECT_EQ(view.ap(0).name, "F0A");
  EXPECT_EQ(view.ap(7).name, "F1D");
}

TEST(FloorView, ScannerHearsOwnFloorLouder) {
  const auto building = make_office_building(2, 20.0);
  const FloorView on_f1(*building, 1);
  ChannelConfig quiet;
  quiet.shadowing_sigma_db = 0.0;
  quiet.fast_fading_sigma_db = 0.0;
  quiet.quantize_dbm = false;
  quiet.sensitivity_dbm = -150.0;
  quiet.dropout_softness_db = 0.0;
  Scanner scanner(on_f1, quiet, 5);
  const ScanRecord rec = scanner.scan_at({25.0, 20.0});
  ASSERT_EQ(rec.samples.size(), 8u);
  // Strongest same-position AP on floor 1 beats its floor-0 twin by
  // exactly the slab (same geometry, different multipath -> compare
  // the mean gap loosely).
  const auto f0a = rec.rssi_of(building->floor(0).access_points()[0].bssid);
  const auto f1a = rec.rssi_of(building->floor(1).access_points()[0].bssid);
  ASSERT_TRUE(f0a.has_value());
  ASSERT_TRUE(f1a.has_value());
  EXPECT_GT(*f1a, *f0a + 10.0);  // 20 dB slab minus multipath jitter
}

}  // namespace
}  // namespace loctk::radio

// Unit tests for the deterministic propagation model (the simulator's
// ground truth for mean RSSI).

#include "radio/propagation.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace loctk::radio {
namespace {

Environment bare_room() {
  Environment env(geom::Rect::sized(50.0, 40.0));
  AccessPoint ap;
  ap.bssid = synthetic_bssid(0);
  ap.name = "A";
  ap.position = {0.0, 0.0};
  ap.tx_power_dbm = -28.0;
  ap.path_loss_exponent = 3.0;
  env.add_access_point(ap);
  return env;
}

PropagationConfig no_multipath() {
  PropagationConfig c;
  c.multipath_amplitude_db = 0.0;
  return c;
}

TEST(Propagation, FreeSpaceFollowsLogDistance) {
  const Environment env = bare_room();
  const Propagation prop(env, no_multipath());
  // At d0 = 1 ft the mean equals tx power.
  EXPECT_NEAR(prop.free_space_rssi_dbm(0, {1.0, 0.0}), -28.0, 1e-12);
  // Every doubling of distance costs 10*n*log10(2) ~ 9.03 dB at n=3.
  const double at2 = prop.free_space_rssi_dbm(0, {2.0, 0.0});
  const double at4 = prop.free_space_rssi_dbm(0, {4.0, 0.0});
  EXPECT_NEAR(at2 - at4, 30.0 * std::log10(2.0), 1e-9);
  EXPECT_NEAR(-28.0 - at2, 30.0 * std::log10(2.0), 1e-9);
}

TEST(Propagation, InsideReferenceDistanceClamps) {
  const Environment env = bare_room();
  const Propagation prop(env, no_multipath());
  EXPECT_DOUBLE_EQ(prop.free_space_rssi_dbm(0, {0.0, 0.0}),
                   prop.free_space_rssi_dbm(0, {0.5, 0.0}));
}

TEST(Propagation, MonotoneDecayWithDistance) {
  const Environment env = bare_room();
  const Propagation prop(env, no_multipath());
  double prev = 0.0;
  bool first = true;
  for (double d = 1.0; d <= 60.0; d += 1.0) {
    const double rssi = prop.mean_rssi_dbm(0, {d, 0.0});
    if (!first) EXPECT_LT(rssi, prev) << "d=" << d;
    prev = rssi;
    first = false;
  }
}

TEST(Propagation, WallsSubtractAttenuation) {
  Environment env = bare_room();
  env.add_wall({{{5.0, -10.0}, {5.0, 10.0}}, 7.0, "test"});
  const Propagation with_wall(env, no_multipath());
  const Environment plain = bare_room();
  const Propagation without(plain, no_multipath());
  const geom::Vec2 behind{10.0, 0.0};
  EXPECT_NEAR(without.mean_rssi_dbm(0, behind) -
                  with_wall.mean_rssi_dbm(0, behind),
              7.0, 1e-9);
  // In front of the wall: identical.
  const geom::Vec2 in_front{3.0, 0.0};
  EXPECT_NEAR(with_wall.mean_rssi_dbm(0, in_front),
              without.mean_rssi_dbm(0, in_front), 1e-9);
}

TEST(Propagation, WallCapLimitsTotalLoss) {
  Environment env = bare_room();
  for (int i = 0; i < 6; ++i) {
    const double x = 3.0 + i;
    env.add_wall({{{x, -10.0}, {x, 10.0}}, 5.0, "test"});
  }
  PropagationConfig cfg = no_multipath();
  cfg.wall_attenuation_cap_db = 12.0;
  const Propagation prop(env, cfg);
  const Environment plain = bare_room();
  const Propagation free(plain, no_multipath());
  const geom::Vec2 far{20.0, 0.0};
  EXPECT_NEAR(free.mean_rssi_dbm(0, far) - prop.mean_rssi_dbm(0, far),
              12.0, 1e-9);
}

TEST(MultipathField, DeterministicAndBounded) {
  const MultipathField f1(1234, 0, 3.5);
  const MultipathField f2(1234, 0, 3.5);
  const MultipathField other_ap(1234, 1, 3.5);
  double max_abs = 0.0;
  bool differs = false;
  for (double x = 0.0; x < 50.0; x += 2.5) {
    for (double y = 0.0; y < 40.0; y += 2.5) {
      const double b1 = f1.bias_db({x, y});
      EXPECT_DOUBLE_EQ(b1, f2.bias_db({x, y}));
      if (std::abs(b1 - other_ap.bias_db({x, y})) > 1e-9) differs = true;
      max_abs = std::max(max_abs, std::abs(b1));
    }
  }
  EXPECT_TRUE(differs);  // per-AP fields decorrelate
  EXPECT_GT(max_abs, 0.5);                 // field is not flat
  EXPECT_LE(max_abs, 3.5 * std::sqrt(6.0) + 1e-9);  // bounded by sum
}

TEST(MultipathField, SmoothOnSubFootScale) {
  const MultipathField f(99, 0, 3.5);
  // Max gradient of sum of sines with |k| <= 2pi/4 and total amp A is
  // bounded; adjacent samples 0.1 ft apart must stay close.
  for (double x = 0.0; x < 20.0; x += 1.7) {
    const double a = f.bias_db({x, 10.0});
    const double b = f.bias_db({x + 0.1, 10.0});
    EXPECT_LT(std::abs(a - b), 1.5);
  }
}

TEST(Propagation, MultipathBiasAppliedToMean) {
  const Environment env = bare_room();
  PropagationConfig with = no_multipath();
  with.multipath_amplitude_db = 3.5;
  const Propagation biased(env, with);
  const Propagation flat(env, no_multipath());
  // Somewhere the two must differ (bias is nonzero almost everywhere).
  double max_diff = 0.0;
  for (double x = 2.0; x < 50.0; x += 3.0) {
    max_diff = std::max(max_diff,
                        std::abs(biased.mean_rssi_dbm(0, {x, 7.0}) -
                                 flat.mean_rssi_dbm(0, {x, 7.0})));
  }
  EXPECT_GT(max_diff, 1.0);
}

TEST(Propagation, PerApFieldsIndependent) {
  const Environment env = make_paper_house();
  const Propagation prop(env);
  // Two APs at symmetric positions should still disagree because
  // their multipath fields differ.
  const geom::Vec2 center{25.0, 20.0};
  const double a = prop.mean_rssi_dbm(0, center);
  const double b = prop.mean_rssi_dbm(1, center);
  // Same distance to center from corners A/B modulo walls; fields
  // almost surely split them.
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace loctk::radio

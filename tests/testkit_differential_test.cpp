// Quick-tier tests for the compiled-vs-reference differential oracle:
// zero mismatches on recorded-trace windows and on the paper's static
// observations, plus a self-test that the oracle actually detects a
// planted disagreement (an oracle that cannot fail proves nothing).

#include "testkit/differential.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testkit/golden.hpp"
#include "testkit/scenario.hpp"

namespace loctk::testkit {
namespace {

TEST(DifferentialOracle, ZeroMismatchesOnRecordedTrace) {
  const Scenario scenario(ScenarioSpec::fleet(4, 24, /*seed=*/31));
  const ScanTrace trace = scenario.record_trace();
  const auto observations = observations_from_trace(trace, 8);
  ASSERT_FALSE(observations.empty());

  const DifferentialReport report =
      run_differential_oracle(scenario.database(), observations);
  EXPECT_EQ(report.observations, observations.size());
  // 6 locator pairs (probabilistic, place recognition, histogram,
  // nnss, knn-3, ssd).
  EXPECT_EQ(report.comparisons, observations.size() * 6);
  EXPECT_TRUE(report.ok()) << report.to_text();
}

TEST(DifferentialOracle, ZeroMismatchesOnPaperObservations) {
  const PaperExperiment exp(/*seed_base=*/77);
  const DifferentialReport report =
      run_differential_oracle(exp.db, exp.observations);
  // PaperExperiment trains without keep_samples, so the histogram
  // locator sits this one out.
  EXPECT_EQ(report.comparisons, exp.observations.size() * 5);
  EXPECT_TRUE(report.ok()) << report.to_text();
}

TEST(DifferentialOracle, EmptyObservationAgreesOnInvalid) {
  const Scenario scenario(ScenarioSpec::fleet(1, 8, /*seed=*/5));
  const std::vector<core::Observation> observations(2);
  const DifferentialReport report =
      run_differential_oracle(scenario.database(), observations);
  EXPECT_TRUE(report.ok()) << report.to_text();
}

TEST(DifferentialOracle, DetectsAPlantedDisagreement) {
  // Feed the oracle a database whose training points were relabeled
  // after compilation would have happened inside the oracle — there is
  // no way to do that from outside, so instead plant the disagreement
  // by tightening the tolerance below genuine FP noise: with
  // score_tol = 0 the histogram locator's compiled table scoring
  // (reordered sums) differs from the reference in the last bits.
  const Scenario scenario(ScenarioSpec::fleet(3, 16, /*seed=*/13));
  const auto observations =
      observations_from_trace(scenario.record_trace(), 8);
  DifferentialConfig config;
  config.score_tol = 0.0;
  config.position_tol_ft = 0.0;
  const DifferentialReport report =
      run_differential_oracle(scenario.database(), observations, config);
  // Any dual-implementation locator may trip at zero tolerance: the
  // arg-max locators reorder sums in their compiled tables, and the
  // v2 SIMD kernels accumulate the k-NN distances in four lanes, so
  // none is bit-identical to the serial reference. Assert the report
  // machinery works rather than a specific count or locator set.
  EXPECT_EQ(report.comparisons, observations.size() * 6);
  const std::vector<std::string> known = {"probabilistic-ml",
                                          "place-recognition", "histogram",
                                          "nnss", "knn-3", "ssd-knn-3"};
  for (const EstimateDiff& d : report.mismatches) {
    EXPECT_NE(std::find(known.begin(), known.end(), d.locator), known.end())
        << d.locator << ": " << d.detail;
  }
}

TEST(DifferentialOracle, PrunedPathAgreesWithExactOnRecordedTrace) {
  // Office floor: ~100 training points, so top_k = 24 genuinely
  // prunes instead of degenerating to the full pass.
  const Scenario scenario(ScenarioSpec::fleet(4, 24, /*seed=*/31,
                                              SiteModel::kOfficeFloor));
  const auto observations =
      observations_from_trace(scenario.record_trace(), 8);
  ASSERT_FALSE(observations.empty());
  core::ProbabilisticConfig prune_config;
  prune_config.prune_top_k = 24;
  prune_config.prune_strongest_aps = 4;
  const PrunedDifferentialReport report = run_pruned_differential(
      scenario.database(), observations, prune_config);
  EXPECT_EQ(report.observations, observations.size());
  // 2 locator pairs (probabilistic, knn-3), pruned vs exact.
  EXPECT_EQ(report.compared, observations.size() * 2);
  EXPECT_TRUE(report.ok()) << report.to_text();
  EXPECT_EQ(report.agreement_rate(), 1.0);
}

TEST(DifferentialOracle, ReportFormatsMismatches) {
  DifferentialReport report;
  report.observations = 3;
  report.comparisons = 12;
  report.mismatches.push_back({"nnss", 2, "score: compiled 1 vs reference 2"});
  const std::string text = report.to_text();
  EXPECT_NE(text.find("1 mismatches"), std::string::npos);
  EXPECT_NE(text.find("[nnss #2]"), std::string::npos);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace loctk::testkit

// Unit tests for polygons, convex hull, and the point estimators used
// by the geometric locator (§5.2's "median point P of P1..P4").

#include "geom/polygon.hpp"

#include <gtest/gtest.h>

namespace loctk::geom {
namespace {

Polygon unit_square() {
  return Polygon{{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}}};
}

TEST(Polygon, AreaAndOrientation) {
  EXPECT_DOUBLE_EQ(unit_square().signed_area(), 1.0);  // CCW
  Polygon cw{{{0.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {1.0, 0.0}}};
  EXPECT_DOUBLE_EQ(cw.signed_area(), -1.0);
  EXPECT_DOUBLE_EQ(cw.area(), 1.0);
}

TEST(Polygon, Centroid) {
  EXPECT_TRUE(almost_equal(unit_square().centroid(), {0.5, 0.5}));
  // L-shape: centroid known by decomposition into two rectangles.
  Polygon ell{{{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}}};
  // Rect A [0,2]x[0,1] area 2 centroid (1, .5); rect B [0,1]x[1,2]
  // area 1 centroid (.5, 1.5) -> total ( (2*1 + 1*.5)/3, (2*.5+1*1.5)/3 ).
  EXPECT_TRUE(almost_equal(ell.centroid(), {2.5 / 3.0, 2.5 / 3.0}, 1e-9));
}

TEST(Polygon, ContainsInteriorBoundaryExterior) {
  const Polygon sq = unit_square();
  EXPECT_TRUE(sq.contains({0.5, 0.5}));
  EXPECT_TRUE(sq.contains({0.0, 0.5}));   // edge
  EXPECT_TRUE(sq.contains({1.0, 1.0}));   // corner
  EXPECT_FALSE(sq.contains({1.5, 0.5}));
  EXPECT_FALSE(sq.contains({-0.1, 0.5}));
}

TEST(Polygon, ContainsNonConvex) {
  // U-shape: the notch is outside.
  Polygon u{{{0, 0}, {3, 0}, {3, 3}, {2, 3}, {2, 1}, {1, 1}, {1, 3},
             {0, 3}}};
  EXPECT_TRUE(u.contains({0.5, 2.0}));
  EXPECT_TRUE(u.contains({2.5, 2.0}));
  EXPECT_FALSE(u.contains({1.5, 2.0}));  // inside the notch
  EXPECT_TRUE(u.contains({1.5, 0.5}));   // base of the U
}

TEST(Polygon, BoundingBoxAndPerimeter) {
  const Polygon sq = unit_square();
  EXPECT_EQ(sq.bounding_box(), Rect({0.0, 0.0}, {1.0, 1.0}));
  EXPECT_DOUBLE_EQ(sq.perimeter(), 4.0);
  EXPECT_TRUE(Polygon{}.empty());
  EXPECT_DOUBLE_EQ(Polygon{}.perimeter(), 0.0);
}

TEST(ConvexHull, DropsInteriorAndCollinear) {
  const Polygon hull = convex_hull({{0, 0},
                                    {4, 0},
                                    {4, 4},
                                    {0, 4},
                                    {2, 2},    // interior
                                    {2, 0},    // collinear on an edge
                                    {0, 2}});  // collinear on an edge
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_DOUBLE_EQ(hull.area(), 16.0);
  EXPECT_GT(hull.signed_area(), 0.0);  // CCW order
}

TEST(ConvexHull, SmallInputs) {
  EXPECT_EQ(convex_hull({}).size(), 0u);
  EXPECT_EQ(convex_hull({{1, 1}}).size(), 1u);
  EXPECT_EQ(convex_hull({{1, 1}, {2, 2}}).size(), 2u);
  // Duplicates collapse.
  EXPECT_EQ(convex_hull({{1, 1}, {1, 1}, {1, 1}}).size(), 1u);
}

TEST(ComponentMedian, OddCountPicksMiddle) {
  const Vec2 m = component_median({{0, 0}, {1, 10}, {2, 5}});
  EXPECT_EQ(m, Vec2(1.0, 5.0));
}

TEST(ComponentMedian, EvenCountAveragesMiddles) {
  const Vec2 m = component_median({{0, 0}, {1, 2}, {2, 4}, {3, 6}});
  EXPECT_EQ(m, Vec2(1.5, 3.0));
}

TEST(ComponentMedian, RobustToOneOutlier) {
  // The paper's reason for the median: one bad circle pair should not
  // drag the estimate.
  const Vec2 m =
      component_median({{10, 10}, {11, 9}, {9, 11}, {500, -500}});
  EXPECT_NEAR(m.x, 10.5, 1e-9);
  EXPECT_NEAR(m.y, 9.5, 1e-9);
}

TEST(GeometricMedian, CoincidesForSymmetricCloud) {
  const std::vector<Vec2> cross = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  EXPECT_TRUE(almost_equal(geometric_median(cross), {0.0, 0.0}, 1e-6));
}

TEST(GeometricMedian, SinglePointAndOutlierRobustness) {
  EXPECT_EQ(geometric_median({{3, 4}}), Vec2(3.0, 4.0));
  const Vec2 gm = geometric_median({{0, 0}, {0, 1}, {1, 0}, {100, 100}});
  // Geometric median stays near the cluster, unlike the mean.
  EXPECT_LT(gm.norm(), 2.0);
  EXPECT_GT(mean_point({{0, 0}, {0, 1}, {1, 0}, {100, 100}}).norm(), 30.0);
}

TEST(MeanPoint, Average) {
  EXPECT_EQ(mean_point({{0, 0}, {2, 4}}), Vec2(1.0, 2.0));
}

// Property: component median minimizes the sum of |dx| + |dy| over
// the sample (L1 optimality), compared against sample points.
class MedianSweep : public ::testing::TestWithParam<int> {};

TEST_P(MedianSweep, L1OptimalVsSamples) {
  const int i = GetParam();
  std::vector<Vec2> pts;
  for (int k = 0; k < 5 + i % 4; ++k) {
    pts.push_back({std::cos(k * 2.1 + i) * 10.0,
                   std::sin(k * 1.7 + i * 0.5) * 10.0});
  }
  const Vec2 med = component_median(pts);
  auto l1_cost = [&](Vec2 q) {
    double c = 0.0;
    for (const Vec2 p : pts) {
      c += std::abs(p.x - q.x) + std::abs(p.y - q.y);
    }
    return c;
  };
  const double med_cost = l1_cost(med);
  for (const Vec2 p : pts) {
    EXPECT_LE(med_cost, l1_cost(p) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Clouds, MedianSweep, ::testing::Range(0, 20));

}  // namespace
}  // namespace loctk::geom

// Unit tests for the FloorPlan model and the Floor Plan Processor's
// six operations (paper §4.1).

#include "floorplan/floor_plan.hpp"
#include "floorplan/processor.hpp"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "image/codec_bmp.hpp"
#include "radio/environment.hpp"

namespace loctk::floorplan {
namespace {

namespace fs = std::filesystem;

FloorPlan calibrated_plan() {
  FloorPlan plan{image::Raster(200, 100)};
  plan.set_feet_per_pixel(0.5);      // 2 px per foot
  plan.set_origin({10.0, 90.0});     // origin near the bottom-left
  return plan;
}

TEST(FloorPlan, ScaleFromTwoClicks) {
  FloorPlan plan{image::Raster(100, 100)};
  EXPECT_FALSE(plan.calibrated());
  // Clicks 50 px apart representing 25 ft -> 0.5 ft per px.
  plan.set_scale_from_points({10.0, 10.0}, {60.0, 10.0}, 25.0);
  ASSERT_TRUE(plan.feet_per_pixel().has_value());
  EXPECT_DOUBLE_EQ(*plan.feet_per_pixel(), 0.5);
  EXPECT_FALSE(plan.calibrated());  // origin still missing
  plan.set_origin({0.0, 99.0});
  EXPECT_TRUE(plan.calibrated());
}

TEST(FloorPlan, ScaleErrors) {
  FloorPlan plan{image::Raster(10, 10)};
  EXPECT_THROW(plan.set_scale_from_points({5, 5}, {5, 5}, 10.0),
               FloorPlanError);
  EXPECT_THROW(plan.set_scale_from_points({0, 0}, {5, 0}, 0.0),
               FloorPlanError);
  EXPECT_THROW(plan.set_scale_from_points({0, 0}, {5, 0}, -2.0),
               FloorPlanError);
  EXPECT_THROW(plan.set_feet_per_pixel(0.0), FloorPlanError);
}

TEST(FloorPlan, WorldPixelRoundTripWithYFlip) {
  const FloorPlan plan = calibrated_plan();
  // The origin pixel maps to world (0, 0).
  const geom::Vec2 w0 = plan.to_world({10.0, 90.0});
  EXPECT_TRUE(geom::almost_equal(w0, {0.0, 0.0}));
  // One pixel up in the raster = +0.5 ft in world y.
  const geom::Vec2 up = plan.to_world({10.0, 89.0});
  EXPECT_TRUE(geom::almost_equal(up, {0.0, 0.5}));
  // Round trip.
  const geom::Vec2 w{12.25, 7.5};
  const PixelPoint p = plan.to_pixel(w);
  EXPECT_TRUE(geom::almost_equal(plan.to_world(p), w, 1e-12));
}

TEST(FloorPlan, UncalibratedTransformsThrow) {
  FloorPlan plan{image::Raster(10, 10)};
  EXPECT_THROW(plan.to_world({0.0, 0.0}), FloorPlanError);
  EXPECT_THROW(plan.to_pixel({0.0, 0.0}), FloorPlanError);
  plan.set_feet_per_pixel(1.0);
  EXPECT_THROW(plan.to_world({0.0, 0.0}), FloorPlanError);  // no origin
}

TEST(FloorPlan, WorldBounds) {
  const FloorPlan plan = calibrated_plan();
  const geom::Rect wb = plan.world_bounds();
  // 200 px x 100 px at 0.5 ft/px = 100 ft x 50 ft, origin at (10,90).
  EXPECT_DOUBLE_EQ(wb.width(), 100.0);
  EXPECT_DOUBLE_EQ(wb.height(), 50.0);
  EXPECT_DOUBLE_EQ(wb.min.x, -5.0);   // 10 px left of origin
  EXPECT_DOUBLE_EQ(wb.max.y, 45.0);   // 90 px above origin
}

TEST(FloorPlan, AccessPointsAndPlaces) {
  FloorPlan plan = calibrated_plan();
  plan.add_access_point("A", {10.0, 90.0});
  plan.add_place("kitchen", {30.0, 90.0});  // 10 ft east of origin
  ASSERT_TRUE(plan.access_point_world("A").has_value());
  EXPECT_TRUE(geom::almost_equal(*plan.access_point_world("A"), {0, 0}));
  EXPECT_TRUE(
      geom::almost_equal(*plan.place_world("kitchen"), {10.0, 0.0}));
  EXPECT_FALSE(plan.access_point_world("Z").has_value());
  EXPECT_FALSE(plan.place_world("attic").has_value());
}

TEST(FloorPlan, NearestPlaceAbstraction) {
  FloorPlan plan = calibrated_plan();
  EXPECT_FALSE(plan.nearest_place({0.0, 0.0}).has_value());
  plan.add_place("west", {20.0, 90.0});   // world (5, 0)
  plan.add_place("east", {90.0, 90.0});   // world (40, 0)
  EXPECT_EQ(*plan.nearest_place({6.0, 1.0}), "west");
  EXPECT_EQ(*plan.nearest_place({39.0, 0.0}), "east");
}

TEST(Processor, SixOperationsAndSaveLoadRoundTrip) {
  const auto dir = fs::temp_directory_path() / "loctk_fpa";
  fs::remove_all(dir);
  fs::create_directories(dir);

  FloorPlanProcessor proc{FloorPlan{image::Raster(120, 80)}};
  proc.set_scale({0.0, 0.0}, {100.0, 0.0}, 50.0);  // (3)
  proc.set_origin({10.0, 70.0});                    // (4)
  proc.add_access_point("A", {12.0, 68.0});         // (2)
  proc.add_access_point("B", {110.0, 68.0});
  proc.add_location_name("Room D22", {60.0, 30.0});  // (5)
  proc.add_location_name("Center of Hallway", {60.0, 50.0});
  proc.save(dir / "house.ppm");                     // (6)

  EXPECT_TRUE(fs::exists(dir / "house.ppm"));
  EXPECT_TRUE(fs::exists(dir / "house.fpa"));

  const FloorPlanProcessor back =
      FloorPlanProcessor::load(dir / "house.fpa");  // (1) + sidecar
  const FloorPlan& plan = back.plan();
  EXPECT_EQ(plan.raster().width(), 120);
  ASSERT_TRUE(plan.calibrated());
  EXPECT_DOUBLE_EQ(*plan.feet_per_pixel(), 0.5);
  ASSERT_EQ(plan.access_points().size(), 2u);
  EXPECT_EQ(plan.access_points()[0].name, "A");
  EXPECT_EQ(plan.access_points()[0].pixel, PixelPoint(12.0, 68.0));
  ASSERT_EQ(plan.places().size(), 2u);
  EXPECT_EQ(plan.places()[0].name, "Room D22");
  EXPECT_EQ(plan.places()[1].name, "Center of Hallway");
  fs::remove_all(dir);
}

TEST(Processor, SaveBmpVariant) {
  const auto dir = fs::temp_directory_path() / "loctk_fpa_bmp";
  fs::remove_all(dir);
  fs::create_directories(dir);
  FloorPlanProcessor proc{FloorPlan{image::Raster(16, 16)}};
  proc.save(dir / "p.bmp");
  EXPECT_TRUE(fs::exists(dir / "p.fpa"));
  const auto back = FloorPlanProcessor::load(dir / "p.fpa");
  EXPECT_EQ(back.plan().raster().width(), 16);
  fs::remove_all(dir);
}

TEST(Processor, LoadErrors) {
  const auto dir = fs::temp_directory_path() / "loctk_fpa_err";
  fs::remove_all(dir);
  fs::create_directories(dir);
  EXPECT_THROW(FloorPlanProcessor::load(dir / "missing.fpa"),
               FloorPlanError);
  {
    std::ofstream(dir / "bad.fpa") << "garbage line here\n";
  }
  EXPECT_THROW(FloorPlanProcessor::load(dir / "bad.fpa"),
               FloorPlanError);
  {
    std::ofstream(dir / "noimg.fpa") << "# floorplan-annotations v1\n";
  }
  EXPECT_THROW(FloorPlanProcessor::load(dir / "noimg.fpa"),
               FloorPlanError);
  fs::remove_all(dir);
}

TEST(AnnotationPath, DerivedFromImagePath) {
  EXPECT_EQ(annotation_path_for("dir/house.ppm"),
            fs::path("dir/house.fpa"));
  EXPECT_EQ(annotation_path_for("plan.bmp"), fs::path("plan.fpa"));
}

TEST(RenderEnvironment, ProducesCalibratedAnnotatedPlan) {
  const radio::Environment env = radio::make_paper_house();
  const FloorPlan plan = render_environment(env, 8.0, 24);
  ASSERT_TRUE(plan.calibrated());
  // 50x40 ft at 8 px/ft plus 24 px margins.
  EXPECT_EQ(plan.raster().width(), 50 * 8 + 48);
  EXPECT_EQ(plan.raster().height(), 40 * 8 + 48);
  // All four APs placed, and their world positions round-trip.
  ASSERT_EQ(plan.access_points().size(), 4u);
  for (const radio::AccessPoint& ap : env.access_points()) {
    const auto world = plan.access_point_world(ap.name);
    ASSERT_TRUE(world.has_value()) << ap.name;
    EXPECT_TRUE(geom::almost_equal(*world, ap.position, 0.51))
        << ap.name;  // within a pixel's worth of feet
  }
  // Walls painted: the raster is not blank.
  EXPECT_GT(plan.raster().count_pixels(image::colors::kDarkGray), 50u);
}

}  // namespace
}  // namespace loctk::floorplan

// Unit tests for the raster image type.

#include "image/raster.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace loctk::image {
namespace {

TEST(Color, LumaWeights) {
  EXPECT_EQ(colors::kWhite.luma(), 255);
  EXPECT_EQ(colors::kBlack.luma(), 0);
  // Green dominates the luma weighting.
  EXPECT_GT(Color(0, 255, 0).luma(), Color(255, 0, 0).luma());
  EXPECT_GT(Color(255, 0, 0).luma(), Color(0, 0, 255).luma());
}

TEST(Color, BlendEndpointsAndMidpoint) {
  const Color a{0, 0, 0};
  const Color b{200, 100, 50};
  EXPECT_EQ(a.blend(b, 0.0), a);
  EXPECT_EQ(a.blend(b, 1.0), b);
  const Color mid = a.blend(b, 0.5);
  EXPECT_EQ(mid, Color(100, 50, 25));
  // t clamps.
  EXPECT_EQ(a.blend(b, 2.0), b);
  EXPECT_EQ(a.blend(b, -1.0), a);
}

TEST(Raster, ConstructionAndFill) {
  Raster img(10, 5, colors::kRed);
  EXPECT_EQ(img.width(), 10);
  EXPECT_EQ(img.height(), 5);
  EXPECT_FALSE(img.empty());
  EXPECT_EQ(img.count_pixels(colors::kRed), 50u);
  img.fill(colors::kBlue);
  EXPECT_EQ(img.count_pixels(colors::kBlue), 50u);
}

TEST(Raster, EmptyStates) {
  EXPECT_TRUE(Raster{}.empty());
  EXPECT_TRUE(Raster(0, 10).empty());
  EXPECT_TRUE(Raster(-3, 10).empty());  // negative clamps to zero
}

TEST(Raster, AtThrowsOutOfRange) {
  Raster img(4, 4);
  EXPECT_NO_THROW(img.at(3, 3));
  EXPECT_THROW(img.at(4, 0), std::out_of_range);
  EXPECT_THROW(img.at(0, 4), std::out_of_range);
  EXPECT_THROW(img.at(-1, 0), std::out_of_range);
}

TEST(Raster, ClippedAccessors) {
  Raster img(4, 4, colors::kWhite);
  img.set_pixel(100, 100, colors::kRed);  // silently ignored
  EXPECT_EQ(img.count_pixels(colors::kRed), 0u);
  EXPECT_EQ(img.pixel(100, 100, colors::kCyan), colors::kCyan);
  img.set_pixel(1, 1, colors::kGreen);
  EXPECT_EQ(img.pixel(1, 1), colors::kGreen);
}

TEST(Raster, BlendPixel) {
  Raster img(2, 2, colors::kBlack);
  img.blend_pixel(0, 0, colors::kWhite, 0.5);
  const Color c = img.at(0, 0);
  EXPECT_NEAR(c.r, 128, 1);
  img.blend_pixel(50, 50, colors::kWhite, 0.5);  // clipped, no throw
}

TEST(Raster, CropClipsToBounds) {
  Raster img(10, 10, colors::kWhite);
  img.set_pixel(5, 5, colors::kRed);
  const Raster sub = img.crop(4, 4, 3, 3);
  EXPECT_EQ(sub.width(), 3);
  EXPECT_EQ(sub.height(), 3);
  EXPECT_EQ(sub.at(1, 1), colors::kRed);

  // Crop extending past the edge clips.
  const Raster edge = img.crop(8, 8, 10, 10);
  EXPECT_EQ(edge.width(), 2);
  EXPECT_EQ(edge.height(), 2);

  // Fully outside: empty.
  EXPECT_TRUE(img.crop(20, 20, 5, 5).empty());
}

TEST(Raster, ScaledUp) {
  Raster img(2, 1, colors::kWhite);
  img.set_pixel(1, 0, colors::kBlack);
  const Raster big = img.scaled_up(3);
  EXPECT_EQ(big.width(), 6);
  EXPECT_EQ(big.height(), 3);
  EXPECT_EQ(big.at(0, 0), colors::kWhite);
  EXPECT_EQ(big.at(5, 2), colors::kBlack);
  EXPECT_EQ(big.count_pixels(colors::kBlack), 9u);
  // Factor 1 and below: identity.
  EXPECT_EQ(img.scaled_up(1), img);
  EXPECT_EQ(img.scaled_up(0), img);
}

TEST(Raster, EqualityIsDeep) {
  Raster a(3, 3, colors::kWhite);
  Raster b(3, 3, colors::kWhite);
  EXPECT_EQ(a, b);
  b.set_pixel(1, 1, colors::kRed);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace loctk::image

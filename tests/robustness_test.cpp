// Failure-injection tests: corrupted bytes and hostile inputs must
// produce typed errors, never crashes or silent garbage. This is the
// property the paper's "easier to move and transmit over a network"
// claim quietly depends on.

#include <string>

#include <gtest/gtest.h>

#include "image/codec_bmp.hpp"
#include "image/codec_pnm.hpp"
#include "stats/rng.hpp"
#include "traindb/codec.hpp"
#include "wiscan/archive.hpp"
#include "wiscan/format.hpp"

namespace loctk {
namespace {

// A realistic encoded database to corrupt.
std::string golden_db_bytes() {
  traindb::TrainingDatabase db;
  db.set_site_name("fuzz");
  for (int i = 0; i < 4; ++i) {
    traindb::TrainingPoint p;
    p.location = "p" + std::to_string(i);
    p.position = {i * 10.0, 5.0};
    traindb::ApStatistics s;
    s.bssid = "aa:bb:cc:dd:ee:0" + std::to_string(i);
    s.mean_dbm = -50.0 - i;
    s.stddev_db = 3.0;
    s.sample_count = 90;
    s.scan_count = 90;
    s.min_dbm = -60.0;
    s.max_dbm = -45.0;
    for (int k = 0; k < 50; ++k) {
      s.samples_centi_dbm.push_back(-5000 - (k % 9) * 50);
    }
    p.per_ap.push_back(std::move(s));
    db.add_point(std::move(p));
  }
  return traindb::encode_database(db);
}

TEST(Fuzz, TruncatedDatabaseAlwaysThrows) {
  const std::string good = golden_db_bytes();
  for (std::size_t len = 0; len < good.size(); len += 7) {
    EXPECT_THROW(traindb::decode_database(good.substr(0, len)),
                 traindb::CodecError)
        << "prefix length " << len;
  }
}

TEST(Fuzz, ByteFlippedDatabaseNeverCrashes) {
  const std::string good = golden_db_bytes();
  stats::Rng rng(20260705);
  int threw = 0, parsed = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = good;
    const auto pos = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
    try {
      const traindb::TrainingDatabase db =
          traindb::decode_database(mutated);
      // A lucky mutation may still parse (e.g. flipping a stats byte)
      // — but the result must be structurally sane.
      EXPECT_LE(db.size(), 64u);
      ++parsed;
    } catch (const traindb::CodecError&) {
      ++threw;
    } catch (const traindb::DatabaseError&) {
      ++threw;  // e.g. duplicate-name from a mutated string
    }
  }
  EXPECT_EQ(threw + parsed, 400);
  EXPECT_GT(threw, 50);  // corruption is usually detected
}

TEST(Fuzz, RandomBytesIntoEveryDecoder) {
  stats::Rng rng(42424242);
  for (int trial = 0; trial < 200; ++trial) {
    const auto len =
        static_cast<std::size_t>(rng.uniform_int(0, 300));
    std::string junk(len, '\0');
    for (char& c : junk) {
      c = static_cast<char>(rng.uniform_int(0, 255));
    }
    // Each decoder either parses or throws its typed error.
    try {
      (void)traindb::decode_database(junk);
    } catch (const traindb::CodecError&) {
    } catch (const traindb::DatabaseError&) {
    }
    try {
      std::istringstream is(junk);
      (void)wiscan::Archive::read(is);
    } catch (const wiscan::ArchiveError&) {
    }
    try {
      (void)wiscan::decode_wiscan(junk, "fuzz");
    } catch (const wiscan::FormatError&) {
    }
    try {
      (void)image::decode_pnm(junk);
    } catch (const image::CodecError&) {
    }
    try {
      (void)image::decode_bmp(junk);
    } catch (const image::CodecError&) {
    }
  }
  SUCCEED();
}

TEST(Fuzz, ArchiveLengthFieldAttacks) {
  // Hand-craft archives with hostile length fields; the caps must
  // reject them before any large allocation.
  auto u64 = [](std::uint64_t v) {
    std::string s;
    for (int i = 0; i < 8; ++i) {
      s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    return s;
  };
  // Entry count ~2^60.
  {
    std::istringstream is("LAR1" + u64(1ull << 60));
    EXPECT_THROW(wiscan::Archive::read(is), wiscan::ArchiveError);
  }
  // Name length ~2^50.
  {
    std::istringstream is("LAR1" + u64(1) + u64(1ull << 50));
    EXPECT_THROW(wiscan::Archive::read(is), wiscan::ArchiveError);
  }
  // Data length 2^40 with no payload.
  {
    std::istringstream is("LAR1" + u64(1) + u64(1) + "x" +
                          u64(1ull << 40));
    EXPECT_THROW(wiscan::Archive::read(is), wiscan::ArchiveError);
  }
}

TEST(Fuzz, PnmDimensionAttacks) {
  // Giant dimensions must be rejected, not allocated.
  EXPECT_THROW(image::decode_pnm("P6\n99999999 99999999\n255\n"),
               image::CodecError);
  EXPECT_THROW(image::decode_pnm("P6\n1048577 1\n255\n"),
               image::CodecError);
}

TEST(Fuzz, WiscanToleratesGarbageValuesButNotStructure) {
  // Absurd-but-parseable values are accepted (policy: the generator
  // filters, the parser does not editorialize)...
  const auto f = wiscan::decode_wiscan("bssid=x rssi=99999\n");
  EXPECT_EQ(f.entries.size(), 1u);
  // ...while structural breakage throws.
  EXPECT_THROW(wiscan::decode_wiscan("bssid=x rssi=99999 extra\n"),
               wiscan::FormatError);
}

}  // namespace
}  // namespace loctk

// Unit tests for the paper's §5.1 probabilistic maximum-likelihood
// locator.

#include "core/probabilistic.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "test_fixtures.hpp"

namespace loctk::core {
namespace {

using testing::fixture_observation;
using testing::make_fixture_db;

TEST(Probabilistic, ExactObservationAtTrainingPointWins) {
  const auto db = make_fixture_db();
  const ProbabilisticLocator locator(db);
  for (const traindb::TrainingPoint& tp : db.points()) {
    const LocationEstimate est =
        locator.locate(fixture_observation(tp.position));
    ASSERT_TRUE(est.valid);
    EXPECT_EQ(est.location_name, tp.location) << tp.location;
    EXPECT_EQ(est.position, tp.position);
    EXPECT_EQ(est.aps_used, 4);
  }
}

TEST(Probabilistic, OffGridObservationSnapsToNearestCell) {
  const auto db = make_fixture_db();
  const ProbabilisticLocator locator(db);
  // 2 ft from the (10, 10) training point.
  const LocationEstimate est =
      locator.locate(fixture_observation({11.0, 11.5}));
  ASSERT_TRUE(est.valid);
  EXPECT_EQ(est.location_name, "g10-10");
}

TEST(Probabilistic, LogLikelihoodMatchesPaperFormula) {
  const auto db = make_fixture_db(10.0, 2.0);
  ProbabilisticConfig cfg;
  cfg.sigma_floor_db = 0.5;
  const ProbabilisticLocator locator(db, cfg);
  const traindb::TrainingPoint& tp = db.points().front();

  const Observation obs = fixture_observation(tp.position, 1.0);
  int common = 0;
  const double ll = locator.log_likelihood(obs, tp, &common);
  EXPECT_EQ(common, 4);

  // Hand-computed: each AP is off by exactly 1 dB with sigma 2.
  double expected = 0.0;
  for (int a = 0; a < 4; ++a) {
    expected += stats::Gaussian{0.0, 2.0}.log_pdf(1.0);
  }
  EXPECT_NEAR(ll, expected, 1e-9);
}

TEST(Probabilistic, ScoreAllOrderedAndArgmaxConsistent) {
  const auto db = make_fixture_db();
  const ProbabilisticLocator locator(db);
  const Observation obs = fixture_observation({20.0, 20.0});
  const auto scores = locator.score_all(obs);
  ASSERT_EQ(scores.size(), db.size());
  double best = -std::numeric_limits<double>::infinity();
  const traindb::TrainingPoint* best_point = nullptr;
  for (const ScoredPoint& sp : scores) {
    if (sp.log_likelihood > best) {
      best = sp.log_likelihood;
      best_point = sp.point;
    }
  }
  const LocationEstimate est = locator.locate(obs);
  ASSERT_NE(best_point, nullptr);
  EXPECT_EQ(est.location_name, best_point->location);
  EXPECT_DOUBLE_EQ(est.score, best);
}

TEST(Probabilistic, MissingApPenaltyAppliedSymmetrically) {
  const auto db = make_fixture_db();
  ProbabilisticConfig cfg;
  cfg.missing_ap_log_penalty = -8.0;
  const ProbabilisticLocator locator(db, cfg);
  const traindb::TrainingPoint& tp = db.points().front();

  // Observation missing one trained AP.
  std::vector<radio::ScanRecord> scans(1);
  for (std::size_t a = 0; a < 3; ++a) {  // drop ap 3
    scans[0].samples.push_back(
        {testing::fixture_bssids()[a],
         testing::fixture_mean_rssi(a, tp.position), 1});
  }
  const Observation partial = Observation::from_scans(scans);
  const Observation full = fixture_observation(tp.position);
  const double ll_partial = locator.log_likelihood(partial, tp);
  const double ll_full = locator.log_likelihood(full, tp);
  // Full observation replaces the -8 penalty with log_pdf(0) < 0.
  const double perfect_term = stats::Gaussian{0.0, 2.0}.log_pdf(0.0);
  EXPECT_NEAR(ll_full - ll_partial, perfect_term - (-8.0), 1e-9);

  // Observation with an extra never-trained AP gets penalized too.
  scans[0].samples.push_back({"rogue", -60.0, 1});
  const Observation with_rogue = Observation::from_scans(scans);
  EXPECT_NEAR(locator.log_likelihood(with_rogue, tp), ll_partial - 8.0,
              1e-9);
}

TEST(Probabilistic, EmptyInputsInvalid) {
  const auto db = make_fixture_db();
  const ProbabilisticLocator locator(db);
  EXPECT_FALSE(locator.locate(Observation{}).valid);

  traindb::TrainingDatabase empty;
  const ProbabilisticLocator empty_locator(empty);
  EXPECT_FALSE(
      empty_locator.locate(fixture_observation({5.0, 5.0})).valid);
}

TEST(Probabilistic, MinCommonApsVetoes) {
  const auto db = make_fixture_db();
  ProbabilisticConfig cfg;
  cfg.min_common_aps = 2;
  const ProbabilisticLocator locator(db, cfg);
  std::vector<radio::ScanRecord> scans(1);
  scans[0].samples.push_back(
      {testing::fixture_bssids()[0], -50.0, 1});  // only one AP heard
  EXPECT_FALSE(locator.locate(Observation::from_scans(scans)).valid);
}

TEST(Probabilistic, SigmaFloorPreventsDeltaVeto) {
  // A training point with sigma 0 must not produce -inf for a nearby
  // observation.
  auto db = make_fixture_db(20.0, 0.0);  // zero sigma everywhere
  ProbabilisticConfig cfg;
  cfg.sigma_floor_db = 1.0;
  const ProbabilisticLocator locator(db, cfg);
  const LocationEstimate est =
      locator.locate(fixture_observation({1.0, 1.0}));
  EXPECT_TRUE(est.valid);
  EXPECT_TRUE(std::isfinite(est.score));
}

TEST(Probabilistic, PooledSigmaIsWeightedRms) {
  // Fixture database has sigma 2.0 everywhere -> pooled sigma 2.0.
  const auto db = make_fixture_db(10.0, 2.0);
  const ProbabilisticLocator locator(db);
  for (const std::string& bssid : testing::fixture_bssids()) {
    EXPECT_NEAR(locator.pooled_sigma_db(bssid), 2.0, 1e-12) << bssid;
  }
  EXPECT_DOUBLE_EQ(locator.pooled_sigma_db("unknown"),
                   locator.config().sigma_floor_db);
}

TEST(Probabilistic, PooledSigmaRemovesLogSigmaBias) {
  // Two training points with identical means but very different
  // per-point sigmas; the observation sits exactly on both means.
  traindb::TrainingDatabase db;
  for (int i = 0; i < 2; ++i) {
    traindb::TrainingPoint p;
    p.location = i == 0 ? "calm" : "noisy";
    p.position = {i * 10.0, 0.0};
    traindb::ApStatistics s;
    s.bssid = "ap";
    s.mean_dbm = -60.0;
    s.stddev_db = i == 0 ? 1.0 : 6.0;
    s.sample_count = 90;
    s.scan_count = 90;
    p.per_ap.push_back(s);
    db.add_point(std::move(p));
  }
  std::vector<radio::ScanRecord> scans(1);
  scans[0].samples.push_back({"ap", -60.0, 1});
  const Observation obs = Observation::from_scans(scans);

  // Per-point sigma: the calm point wins on the -log(sigma) term.
  const ProbabilisticLocator per_point(db);
  const auto scores_pp = per_point.score_all(obs);
  EXPECT_GT(scores_pp[0].log_likelihood, scores_pp[1].log_likelihood);

  // Pooled sigma: both points score identically (tie).
  ProbabilisticConfig pooled_cfg;
  pooled_cfg.use_pooled_sigma = true;
  const ProbabilisticLocator pooled(db, pooled_cfg);
  const auto scores_pool = pooled.score_all(obs);
  EXPECT_NEAR(scores_pool[0].log_likelihood, scores_pool[1].log_likelihood,
              1e-12);
}

TEST(Probabilistic, PooledModeStillLocates) {
  const auto db = make_fixture_db();
  ProbabilisticConfig cfg;
  cfg.use_pooled_sigma = true;
  const ProbabilisticLocator locator(db, cfg);
  for (const std::size_t idx : {0u, 6u, 12u}) {
    const traindb::TrainingPoint& tp = db.points()[idx];
    const LocationEstimate est =
        locator.locate(fixture_observation(tp.position));
    ASSERT_TRUE(est.valid);
    EXPECT_EQ(est.location_name, tp.location);
  }
}

// Property sweep: for observations taken exactly at each grid node of
// a finer query lattice, the winning cell is always the nearest
// training point (noiseless observations, symmetric model).
class SnapSweep : public ::testing::TestWithParam<int> {};

TEST_P(SnapSweep, WinnerIsNearestTrainingPoint) {
  const int i = GetParam();
  const auto db = make_fixture_db();
  const ProbabilisticLocator locator(db);
  // Lattice chosen to avoid exact cell boundaries (x, y never ~5 mod 10).
  const geom::Vec2 query{3.0 + (i % 5) * 7.0, 2.0 + (i / 5) * 9.0};
  const LocationEstimate est = locator.locate(fixture_observation(query));
  ASSERT_TRUE(est.valid);
  // Signal space is a warped copy of physical space (dB scales are
  // nonlinear near APs), so the winner is not always the physically
  // nearest cell — but it must be within one survey cell of it.
  const traindb::TrainingPoint* oracle = db.nearest_point(query);
  EXPECT_LE(geom::distance(est.position, oracle->position), 10.0 + 1e-9)
      << "query " << query.x << "," << query.y;
}

INSTANTIATE_TEST_SUITE_P(QueryLattice, SnapSweep, ::testing::Range(0, 25));

}  // namespace
}  // namespace loctk::core

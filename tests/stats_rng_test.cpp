// Unit tests for the deterministic RNG wrapper and the AR(1) fading
// process that models temporally-correlated RSSI.

#include "stats/rng.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/running_stats.hpp"

namespace loctk::stats {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5.0, 3.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(rng.normal(-60.0, 4.0));
  EXPECT_NEAR(rs.mean(), -60.0, 0.15);
  EXPECT_NEAR(rs.stddev(), 4.0, 0.15);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic) {
  Rng parent1(99);
  Rng parent2(99);
  Rng childA1 = parent1.fork(1);
  Rng childA2 = parent2.fork(1);
  // Same parent seed + same salt -> identical child stream.
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(childA1.uniform(), childA2.uniform());
  }
  // Different salts -> different streams.
  Rng parent3(99);
  Rng childB = parent3.fork(2);
  Rng parent4(99);
  Rng childA = parent4.fork(1);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (childA.uniform() == childB.uniform()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Ar1, StationaryMoments) {
  Rng rng(17);
  Ar1Process ar(4.0, 0.9, rng);
  RunningStats rs;
  for (int i = 0; i < 60000; ++i) rs.add(ar.next(rng));
  EXPECT_NEAR(rs.mean(), 0.0, 0.35);
  EXPECT_NEAR(rs.stddev(), 4.0, 0.35);
}

TEST(Ar1, LagOneCorrelationMatchesRho) {
  Rng rng(19);
  const double rho = 0.85;
  Ar1Process ar(3.0, rho, rng);
  double prev = ar.value();
  double sum_xy = 0.0, sum_xx = 0.0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const double cur = ar.next(rng);
    sum_xy += prev * cur;
    sum_xx += prev * prev;
    prev = cur;
  }
  EXPECT_NEAR(sum_xy / sum_xx, rho, 0.02);
}

TEST(Ar1, RhoZeroIsWhiteNoise) {
  Rng rng(23);
  Ar1Process ar(2.0, 0.0, rng);
  double prev = ar.value();
  double sum_xy = 0.0, sum_xx = 0.0;
  for (int i = 0; i < 40000; ++i) {
    const double cur = ar.next(rng);
    sum_xy += prev * cur;
    sum_xx += prev * prev;
    prev = cur;
  }
  EXPECT_NEAR(sum_xy / sum_xx, 0.0, 0.02);
}

// Property sweep over rho: the process stays bounded and its sample
// stddev tracks the configured sigma.
class Ar1Sweep : public ::testing::TestWithParam<double> {};

TEST_P(Ar1Sweep, VarianceIsRhoIndependent) {
  const double rho = GetParam();
  Rng rng(31);
  Ar1Process ar(5.0, rho, rng);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.add(ar.next(rng));
  EXPECT_NEAR(rs.stddev(), 5.0, 0.6) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Rhos, Ar1Sweep,
                         ::testing::Values(0.0, 0.3, 0.5, 0.7, 0.9, 0.95));

}  // namespace
}  // namespace loctk::stats

// The fingerprint lifecycle layer: drift detection (EWMA residuals,
// vanish, staleness), quarantined survey intake, and the janitor's
// re-publish protocol (intake → delta-compile → swap_site → drift
// rebase) against a live LocationServer.

#include "lifecycle/janitor.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/compiled_db.hpp"
#include "core/probabilistic.hpp"
#include "lifecycle/drift.hpp"
#include "lifecycle/intake.hpp"
#include "test_fixtures.hpp"
#include "testkit/differential.hpp"
#include "traindb/database.hpp"

namespace loctk::lifecycle {
namespace {

using loctk::testing::fixture_bssids;
using loctk::testing::fixture_mean_rssi;
using loctk::testing::fixture_observation;
using loctk::testing::make_fixture_db;

std::shared_ptr<const core::CompiledDatabase> fixture_compiled() {
  return core::CompiledDatabase::compile_owned(make_fixture_db());
}

// ---------------------------------------------------------------- drift

TEST(DriftMonitor, CleanTrafficStaysClean) {
  DriftConfig config;
  config.min_updates = 4;
  DriftMonitor monitor(fixture_compiled(), config);
  // Noiseless observations at the training point itself: residual 0.
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(monitor.observe("g20-20", fixture_observation({20, 20})));
  }
  const DriftReport report = monitor.report();
  EXPECT_TRUE(report.clean()) << report.drifted.size();
  EXPECT_EQ(report.max_abs_ewma_db, 0.0);
  EXPECT_EQ(report.observations, 16u);
}

TEST(DriftMonitor, ShiftedApsFlagAfterWarmup) {
  DriftConfig config;
  config.min_updates = 4;
  config.drift_threshold_db = 6.0;
  DriftMonitor monitor(fixture_compiled(), config);
  // Every AP reads 10 dB hot at this point: all four pairs drift. The
  // EWMA seeds at the first residual and every residual is exactly
  // +10, so the EWMA is exactly +10 dB.
  for (int i = 0; i < 8; ++i) {
    monitor.observe("g20-20", fixture_observation({20, 20}, +10.0));
  }
  const DriftReport report = monitor.report();
  ASSERT_EQ(report.drifted.size(), fixture_bssids().size());
  for (const DriftedPair& d : report.drifted) {
    EXPECT_EQ(d.kind, DriftKind::kShifted);
    EXPECT_NEAR(d.ewma_db, 10.0, 1e-9);
  }
  EXPECT_NEAR(report.max_abs_ewma_db, 10.0, 1e-9);
  const std::vector<std::size_t> points = report.drifted_points();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(monitor.database().point(points[0]).location, "g20-20");
}

TEST(DriftMonitor, VanishedApFlagsOnVisibilityCollapse) {
  DriftConfig config;
  config.min_updates = 4;
  config.vanish_visibility = 0.2;
  DriftMonitor monitor(fixture_compiled(), config);
  // Observations that never hear fx:03: its visibility EWMA decays as
  // (1-alpha)^n -> needs ~12 updates to cross 0.2 at alpha=0.125.
  std::vector<radio::ScanRecord> scans(1);
  for (std::size_t a = 0; a + 1 < fixture_bssids().size(); ++a) {
    scans[0].samples.push_back(
        {fixture_bssids()[a], fixture_mean_rssi(a, {20, 20}), 1});
  }
  const core::Observation partial = core::Observation::from_scans(scans);
  for (int i = 0; i < 20; ++i) monitor.observe("g20-20", partial);

  const DriftReport report = monitor.report();
  ASSERT_EQ(report.drifted.size(), 1u);
  EXPECT_EQ(report.drifted[0].kind, DriftKind::kVanished);
  EXPECT_EQ(report.drifted[0].bssid, "fx:03");
  EXPECT_LT(report.drifted[0].visibility, 0.2);
}

TEST(DriftMonitor, UntouchedPointsGoStale) {
  DriftConfig config;
  config.stale_after = 10;
  DriftMonitor monitor(fixture_compiled(), config);
  for (int i = 0; i < 12; ++i) {
    monitor.observe("g20-20", fixture_observation({20, 20}));
  }
  const DriftReport report = monitor.report();
  // Every point except the one receiving traffic is stale (25-point
  // fixture grid).
  EXPECT_EQ(report.stale_points.size(),
            monitor.database().point_count() - 1);
  for (const std::size_t p : report.stale_points) {
    EXPECT_NE(monitor.database().point(p).location, "g20-20");
  }
}

TEST(DriftMonitor, UnknownLocationIsDropped) {
  DriftMonitor monitor(fixture_compiled());
  EXPECT_FALSE(monitor.observe("atlantis", fixture_observation({20, 20})));
  EXPECT_EQ(monitor.observations(), 0u);
}

TEST(DriftMonitor, RebaseResetsResurveyedRowsKeepsOthers) {
  DriftConfig config;
  config.min_updates = 4;
  DriftMonitor monitor(fixture_compiled(), config);
  // Drift evidence on two points.
  for (int i = 0; i < 8; ++i) {
    monitor.observe("g20-20", fixture_observation({20, 20}, +10.0));
    monitor.observe("g0-0", fixture_observation({0, 0}, +10.0));
  }
  ASSERT_EQ(monitor.report().drifted_points().size(), 2u);

  // Resurvey g20-20 (its trained means move to the live reality) and
  // republish; g0-0 is untouched.
  core::DatabaseDelta delta;
  traindb::TrainingPoint fixed =
      *monitor.database().database().find("g20-20");
  for (traindb::ApStatistics& s : fixed.per_ap) s.mean_dbm += 10.0;
  delta.upserts.push_back(std::move(fixed));
  monitor.rebase(monitor.database().delta_compile(delta));

  const DriftReport report = monitor.report();
  const std::vector<std::size_t> points = report.drifted_points();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(monitor.database().point(points[0]).location, "g0-0");
}

// --------------------------------------------------------------- intake

radio::ScanRecord intake_scan(geom::Vec2 pos, double t,
                              double offset_db = 0.0) {
  radio::ScanRecord rec;
  rec.timestamp_s = t;
  for (std::size_t a = 0; a < fixture_bssids().size(); ++a) {
    rec.samples.push_back(
        {fixture_bssids()[a], fixture_mean_rssi(a, pos) + offset_db, 1});
  }
  return rec;
}

SurveyDwell clean_dwell(std::string location, geom::Vec2 pos,
                        int scans = 4, double offset_db = 0.0) {
  SurveyDwell dwell;
  dwell.location = std::move(location);
  dwell.position = pos;
  for (int i = 0; i < scans; ++i) {
    dwell.scans.push_back(intake_scan(pos, 1.0 * i, offset_db));
  }
  return dwell;
}

TEST(SurveyIntake, AcceptsCleanDwellWithGeneratorStatistics) {
  SurveyIntake intake;
  const auto result = intake.submit(clean_dwell("annex", {15, 25}));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const traindb::TrainingPoint& tp = result.value();
  EXPECT_EQ(tp.location, "annex");
  EXPECT_EQ(tp.position, (geom::Vec2{15, 25}));
  ASSERT_EQ(tp.per_ap.size(), fixture_bssids().size());
  // Constant readings: mean exact, stddev 0, counts = scan passes.
  EXPECT_NEAR(tp.per_ap[0].mean_dbm, fixture_mean_rssi(0, {15, 25}), 1e-12);
  EXPECT_EQ(tp.per_ap[0].stddev_db, 0.0);
  EXPECT_EQ(tp.per_ap[0].sample_count, 4u);
  EXPECT_EQ(tp.per_ap[0].scan_count, 4u);
  EXPECT_EQ(intake.pending(), 1u);
  EXPECT_TRUE(intake.quarantined().empty());
}

TEST(SurveyIntake, QuarantinesTooFewScans) {
  SurveyIntake intake;
  const auto result = intake.submit(clean_dwell("thin", {0, 0}, 2));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kDegenerate);
  EXPECT_EQ(intake.pending(), 0u);
  ASSERT_EQ(intake.quarantined().size(), 1u);
  EXPECT_EQ(intake.quarantined()[0].location, "thin");
}

TEST(SurveyIntake, QuarantinesNonFiniteRssi) {
  SurveyIntake intake;
  SurveyDwell dwell = clean_dwell("nan", {0, 0});
  dwell.scans[1].samples[2].rssi_dbm =
      std::numeric_limits<double>::quiet_NaN();
  const auto result = intake.submit(dwell);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kCorrupt);
}

TEST(SurveyIntake, QuarantinesImplausibleRssi) {
  SurveyIntake intake;
  SurveyDwell dwell = clean_dwell("hot", {0, 0});
  dwell.scans[0].samples[0].rssi_dbm = +30.0;  // no indoor AP reads this
  const auto result = intake.submit(dwell);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kCorrupt);
  EXPECT_NE(result.error().to_string().find("implausible"),
            std::string::npos);
}

TEST(SurveyIntake, QuarantinesMissingLocation) {
  SurveyIntake intake;
  const auto result = intake.submit(clean_dwell("", {0, 0}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kParse);
}

TEST(SurveyIntake, DropsSparseApsAndRejectsEmptyResult) {
  IntakeConfig config;
  config.min_samples_per_ap = 3;
  SurveyIntake intake(config);
  // One AP heard once across 3 scans: dropped; the rest survive.
  SurveyDwell dwell = clean_dwell("sparse", {10, 10}, 3);
  dwell.scans[0].samples.push_back({"one:hit", -80.0, 1});
  const auto result = intake.submit(dwell);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().find("one:hit"), nullptr);
  EXPECT_EQ(result.value().per_ap.size(), fixture_bssids().size());

  // A dwell where nothing survives the cut is degenerate.
  SurveyDwell empty;
  empty.location = "void";
  empty.position = {0, 0};
  empty.scans.resize(3);
  empty.scans[0].samples.push_back({"one:hit", -80.0, 1});
  const auto rejected = intake.submit(empty);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code(), ErrorCode::kDegenerate);
}

TEST(SurveyIntake, LaterDwellForSameLocationReplacesStaged) {
  SurveyIntake intake;
  ASSERT_TRUE(intake.submit(clean_dwell("annex", {15, 25})).ok());
  ASSERT_TRUE(intake.submit(clean_dwell("annex", {15, 25}, 4, -5.0)).ok());
  EXPECT_EQ(intake.pending(), 1u);
  core::DatabaseDelta delta = intake.drain();
  ASSERT_EQ(delta.upserts.size(), 1u);
  EXPECT_NEAR(delta.upserts[0].per_ap[0].mean_dbm,
              fixture_mean_rssi(0, {15, 25}) - 5.0, 1e-12);
  EXPECT_EQ(intake.pending(), 0u);
}

// -------------------------------------------------------------- janitor

LocatorFactory probabilistic_factory() {
  return [](std::shared_ptr<const core::CompiledDatabase> db) {
    return std::make_shared<core::ProbabilisticLocator>(std::move(db));
  };
}

TEST(LifecycleJanitor, RepublishesThroughDeltaCompileAndSwap) {
  serve::LocationServerConfig server_config;
  server_config.max_sites = 4;
  serve::LocationServer server(server_config);
  auto compiled = fixture_compiled();
  const serve::SiteId site =
      server.add_site("living", probabilistic_factory()(compiled));

  LifecycleJanitor janitor(server, site, compiled,
                           probabilistic_factory());
  EXPECT_FALSE(janitor.tick().has_value());  // nothing pending

  // A resurvey of one point plus a brand-new annex point.
  ASSERT_TRUE(janitor.submit_survey(clean_dwell("g20-20", {20, 20})).ok());
  SurveyDwell annex = clean_dwell("annex", {45, 45});
  for (radio::ScanRecord& scan : annex.scans) {
    scan.samples.push_back({"an:ex", -70.0, 1});
  }
  ASSERT_TRUE(janitor.submit_survey(annex).ok());

  const auto report = janitor.tick();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->generation, 2u);
  EXPECT_EQ(report->points_upserted, 2u);
  EXPECT_EQ(report->universe_after, report->universe_before + 1);
  EXPECT_EQ(server.generation(site), 2u);

  // The published compilation is oracle-equal to a from-scratch build
  // of its own merged database.
  const auto rebuild = core::CompiledDatabase::compile(
      janitor.compiled()->database());
  const auto diff =
      testkit::compare_compiled_databases(*janitor.compiled(), *rebuild);
  EXPECT_TRUE(diff.ok()) << diff.to_text();

  // The server now serves the annex.
  const auto estimate =
      server.try_locate(site, fixture_observation({45, 45}));
  ASSERT_TRUE(estimate.ok());

  EXPECT_FALSE(janitor.tick().has_value());  // drained
}

TEST(LifecycleJanitor, HonorsMinimumRepublishBatch) {
  serve::LocationServerConfig server_config;
  server_config.max_sites = 4;
  serve::LocationServer server(server_config);
  auto compiled = fixture_compiled();
  const serve::SiteId site =
      server.add_site("batchy", probabilistic_factory()(compiled));
  JanitorConfig config;
  config.min_republish_batch = 2;
  LifecycleJanitor janitor(server, site, compiled,
                           probabilistic_factory(), config);

  ASSERT_TRUE(janitor.submit_survey(clean_dwell("g0-0", {0, 0})).ok());
  EXPECT_FALSE(janitor.tick().has_value());
  ASSERT_TRUE(janitor.submit_survey(clean_dwell("g10-0", {10, 0})).ok());
  const auto report = janitor.tick();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->points_upserted, 2u);
}

TEST(LifecycleJanitor, ObserveFixAttributesDriftEvidence) {
  serve::LocationServerConfig server_config;
  server_config.max_sites = 4;
  serve::LocationServer server(server_config);
  auto compiled = fixture_compiled();
  const serve::SiteId site =
      server.add_site("attributed", probabilistic_factory()(compiled));
  LifecycleJanitor janitor(server, site, compiled,
                           probabilistic_factory());

  core::ServiceFix fix;
  fix.valid = true;
  fix.place = "g20-20";
  janitor.observe_fix(fix, fixture_observation({20, 20}));
  EXPECT_EQ(janitor.drift().observations(), 1u);

  core::ServiceFix invalid;
  invalid.valid = false;
  invalid.place = "g20-20";
  janitor.observe_fix(invalid, fixture_observation({20, 20}));
  EXPECT_EQ(janitor.drift().observations(), 1u);
}

}  // namespace
}  // namespace loctk::lifecycle

// Unit tests for the Gaussian density used by the paper's equation (1).

#include "stats/gaussian.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace loctk::stats {
namespace {

TEST(Gaussian, PdfPeakAndSymmetry) {
  const Gaussian g{0.0, 1.0};
  EXPECT_NEAR(g.pdf(0.0), 1.0 / std::sqrt(kTwoPi), 1e-12);
  EXPECT_DOUBLE_EQ(g.pdf(1.5), g.pdf(-1.5));
  EXPECT_GT(g.pdf(0.0), g.pdf(0.5));
}

TEST(Gaussian, PdfMatchesPaperFormula) {
  // Paper equation (1) evaluated literally.
  const Gaussian g{-60.0, 4.0};
  const double obs = -55.0;
  const double sigma2 = 4.0 * 4.0;
  const double expected = std::exp(-(obs - -60.0) * (obs - -60.0) /
                                   (2.0 * sigma2)) /
                          std::sqrt(kTwoPi * sigma2);
  EXPECT_NEAR(g.pdf(obs), expected, 1e-15);
}

TEST(Gaussian, LogPdfConsistentWithPdf) {
  const Gaussian g{-60.0, 3.0};
  for (const double x : {-70.0, -60.0, -50.0, -40.0}) {
    EXPECT_NEAR(g.log_pdf(x), std::log(g.pdf(x)), 1e-12);
  }
}

TEST(Gaussian, LogPdfSurvivesWherePdfUnderflows) {
  const Gaussian g{0.0, 1.0};
  EXPECT_EQ(g.pdf(60.0), 0.0);  // underflows
  EXPECT_LT(g.log_pdf(60.0), -1700.0);
  EXPECT_TRUE(std::isfinite(g.log_pdf(60.0)));
}

TEST(Gaussian, CdfKnownValues) {
  const Gaussian g{0.0, 1.0};
  EXPECT_NEAR(g.cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(g.cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(g.cdf(-1.96), 0.025, 1e-3);
  const Gaussian shifted{10.0, 2.0};
  EXPECT_NEAR(shifted.cdf(10.0), 0.5, 1e-12);
}

TEST(Gaussian, ZScore) {
  const Gaussian g{-60.0, 4.0};
  EXPECT_DOUBLE_EQ(g.z_score(-52.0), 2.0);
  EXPECT_DOUBLE_EQ(g.z_score(-60.0), 0.0);
}

TEST(Gaussian, RegularizedFloorsSigma) {
  const Gaussian g{-60.0, 0.0};
  const Gaussian r = g.regularized(1.0);
  EXPECT_DOUBLE_EQ(r.sigma, 1.0);
  EXPECT_DOUBLE_EQ(r.mean, -60.0);
  // Wide sigma untouched.
  const Gaussian wide{0.0, 5.0};
  EXPECT_DOUBLE_EQ(wide.regularized(1.0).sigma, 5.0);
}

TEST(NormalQuantile, InvertsCdf) {
  for (const double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99,
                         0.999}) {
    const double z = normal_quantile(p);
    EXPECT_NEAR(normal_cdf(z), p, 1e-7) << "p=" << p;
  }
}

TEST(NormalQuantile, Extremes) {
  EXPECT_TRUE(std::isinf(normal_quantile(0.0)));
  EXPECT_LT(normal_quantile(0.0), 0.0);
  EXPECT_TRUE(std::isinf(normal_quantile(1.0)));
  EXPECT_GT(normal_quantile(1.0), 0.0);
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
}

TEST(NormalPdfCdf, StandardValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0) - normal_cdf(-1.0), 0.6827, 1e-4);
}

// Property: pdf integrates to ~1 (trapezoid over +-8 sigma) for a
// sweep of (mean, sigma) pairs.
class PdfIntegral : public ::testing::TestWithParam<int> {};

TEST_P(PdfIntegral, MassIsOne) {
  const int i = GetParam();
  const Gaussian g{-80.0 + i * 7.0, 0.5 + 0.4 * i};
  const double lo = g.mean - 8.0 * g.sigma;
  const double hi = g.mean + 8.0 * g.sigma;
  const int n = 4000;
  double sum = 0.0;
  const double h = (hi - lo) / n;
  for (int k = 0; k <= n; ++k) {
    const double w = (k == 0 || k == n) ? 0.5 : 1.0;
    sum += w * g.pdf(lo + k * h);
  }
  EXPECT_NEAR(sum * h, 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(MeanSigmaGrid, PdfIntegral, ::testing::Range(0, 12));

}  // namespace
}  // namespace loctk::stats

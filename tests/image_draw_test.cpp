// Unit tests for the drawing primitives the Compositor builds on.

#include "image/draw.hpp"

#include <gtest/gtest.h>

namespace loctk::image {
namespace {

TEST(DrawLine, HorizontalVerticalDiagonal) {
  Raster img(10, 10);
  draw_line(img, 0, 5, 9, 5, colors::kBlack);
  EXPECT_EQ(img.count_pixels(colors::kBlack), 10u);

  img.fill(colors::kWhite);
  draw_line(img, 3, 0, 3, 9, colors::kBlack);
  EXPECT_EQ(img.count_pixels(colors::kBlack), 10u);

  img.fill(colors::kWhite);
  draw_line(img, 0, 0, 9, 9, colors::kBlack);
  EXPECT_EQ(img.count_pixels(colors::kBlack), 10u);
  EXPECT_EQ(img.at(4, 4), colors::kBlack);
}

TEST(DrawLine, SinglePixelAndReversedEndpoints) {
  Raster img(5, 5);
  draw_line(img, 2, 2, 2, 2, colors::kRed);
  EXPECT_EQ(img.count_pixels(colors::kRed), 1u);

  Raster a(8, 8), b(8, 8);
  draw_line(a, 1, 2, 6, 5, colors::kBlack);
  draw_line(b, 6, 5, 1, 2, colors::kBlack);
  EXPECT_EQ(a, b);  // direction-independent
}

TEST(DrawLine, ClipsOffCanvas) {
  Raster img(5, 5);
  draw_line(img, -10, -10, 20, 20, colors::kBlack);
  // The in-bounds diagonal got painted, nothing crashed.
  EXPECT_EQ(img.at(2, 2), colors::kBlack);
}

TEST(DrawThickLine, WidthGrows) {
  Raster thin(20, 20), thick(20, 20);
  draw_line(thin, 2, 10, 17, 10, colors::kBlack);
  draw_thick_line(thick, 2, 10, 17, 10, colors::kBlack, 5);
  EXPECT_GT(thick.count_pixels(colors::kBlack),
            3u * thin.count_pixels(colors::kBlack));
  // Thickness 1 equals plain line.
  Raster t1(20, 20);
  draw_thick_line(t1, 2, 10, 17, 10, colors::kBlack, 1);
  EXPECT_EQ(t1, thin);
}

TEST(DrawDashedLine, PaintsFewerPixelsThanSolid) {
  Raster solid(30, 30), dashed(30, 30);
  draw_line(solid, 0, 15, 29, 15, colors::kBlack);
  draw_dashed_line(dashed, 0, 15, 29, 15, colors::kBlack, 3, 3);
  const auto s = solid.count_pixels(colors::kBlack);
  const auto d = dashed.count_pixels(colors::kBlack);
  EXPECT_LT(d, s);
  EXPECT_NEAR(static_cast<double>(d), static_cast<double>(s) / 2.0, 3.0);
}

TEST(DrawRect, OutlineAndFill) {
  Raster img(10, 10);
  draw_rect(img, 2, 3, 5, 4, colors::kBlack);
  // Perimeter of a 5x4 rectangle: 2*5 + 2*4 - 4 corners = 14.
  EXPECT_EQ(img.count_pixels(colors::kBlack), 14u);
  EXPECT_EQ(img.at(2, 3), colors::kBlack);
  EXPECT_EQ(img.at(6, 6), colors::kBlack);
  EXPECT_EQ(img.at(4, 5), colors::kWhite);  // interior untouched

  img.fill(colors::kWhite);
  fill_rect(img, 2, 3, 5, 4, colors::kRed);
  EXPECT_EQ(img.count_pixels(colors::kRed), 20u);
}

TEST(FillRect, ClipsAndIgnoresDegenerate) {
  Raster img(4, 4);
  fill_rect(img, 2, 2, 100, 100, colors::kBlue);
  EXPECT_EQ(img.count_pixels(colors::kBlue), 4u);
  fill_rect(img, 0, 0, 0, 5, colors::kRed);
  EXPECT_EQ(img.count_pixels(colors::kRed), 0u);
  draw_rect(img, 0, 0, 0, 5, colors::kRed);
  EXPECT_EQ(img.count_pixels(colors::kRed), 0u);
}

TEST(DrawCircle, SymmetricAndOnRadius) {
  Raster img(21, 21);
  draw_circle(img, 10, 10, 8, colors::kBlack);
  // Cardinal points painted.
  EXPECT_EQ(img.at(18, 10), colors::kBlack);
  EXPECT_EQ(img.at(2, 10), colors::kBlack);
  EXPECT_EQ(img.at(10, 18), colors::kBlack);
  EXPECT_EQ(img.at(10, 2), colors::kBlack);
  // Center not painted.
  EXPECT_EQ(img.at(10, 10), colors::kWhite);
  // 4-fold symmetry.
  for (int y = 0; y < 21; ++y) {
    for (int x = 0; x < 21; ++x) {
      EXPECT_EQ(img.at(x, y) == colors::kBlack,
                img.at(20 - x, y) == colors::kBlack);
      EXPECT_EQ(img.at(x, y) == colors::kBlack,
                img.at(x, 20 - y) == colors::kBlack);
    }
  }
}

TEST(FillCircle, AreaApproximatesPiR2) {
  Raster img(41, 41);
  fill_circle(img, 20, 20, 10, colors::kBlack);
  const double area = static_cast<double>(img.count_pixels(colors::kBlack));
  EXPECT_NEAR(area, 3.14159 * 100.0, 25.0);
  EXPECT_EQ(img.at(20, 20), colors::kBlack);
}

TEST(Circles, NegativeRadiusIgnored) {
  Raster img(10, 10);
  draw_circle(img, 5, 5, -1, colors::kBlack);
  fill_circle(img, 5, 5, -1, colors::kBlack);
  EXPECT_EQ(img.count_pixels(colors::kBlack), 0u);
  // Radius zero paints exactly the center.
  fill_circle(img, 5, 5, 0, colors::kBlack);
  EXPECT_EQ(img.count_pixels(colors::kBlack), 1u);
}

// Every marker shape paints something, centered pixels differ by
// shape, and all clip safely at the border.
class MarkerSweep : public ::testing::TestWithParam<MarkerShape> {};

TEST_P(MarkerSweep, PaintsAndClips) {
  const MarkerShape shape = GetParam();
  Raster img(21, 21);
  draw_marker(img, 10, 10, shape, colors::kRed, 4);
  EXPECT_GT(img.count_pixels(colors::kRed), 4u);

  // At the corner: clips without crashing.
  Raster corner(21, 21);
  draw_marker(corner, 0, 0, shape, colors::kRed, 4);
  draw_marker(corner, 20, 20, shape, colors::kRed, 4);
  EXPECT_GT(corner.count_pixels(colors::kRed), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MarkerSweep,
    ::testing::Values(MarkerShape::kCross, MarkerShape::kX,
                      MarkerShape::kSquare, MarkerShape::kFilledSquare,
                      MarkerShape::kDiamond, MarkerShape::kCircle,
                      MarkerShape::kDot, MarkerShape::kTriangle));

}  // namespace
}  // namespace loctk::image

// Unit tests for the observability layer: lock-free counters/gauges,
// the sharded histogram metric, registry snapshot determinism, the
// JSON export (round-tripped through a test-local mini parser), and
// the RAII timing helpers.

#include "base/metrics.hpp"

#include <atomic>
#include <cctype>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace loctk::metrics {
namespace {

/// --- a minimal JSON parser (test-local, keeps the library lean) ------

struct JsonValue {
  enum Kind { kNull, kNumber, kString, kObject, kArray };
  Kind kind = kNull;
  double number = 0.0;
  std::string str;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) {
      throw std::runtime_error("missing key: " + key);
    }
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing bytes");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 'n') {
      if (text_.substr(pos_, 4) != "null") {
        throw std::runtime_error("bad literal");
      }
      pos_ += 4;
      return JsonValue{};
    }
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      JsonValue key = parse_string();
      expect(':');
      v.object.emplace(key.str, parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u': {
            const std::string hex(text_.substr(pos_, 4));
            pos_ += 4;
            c = static_cast<char>(std::stoi(hex, nullptr, 16));
            break;
          }
          default: throw std::runtime_error("bad escape");
        }
      }
      v.str.push_back(c);
    }
    expect('"');
    return v;
  }

  JsonValue parse_number() {
    skip_ws();
    std::size_t used = 0;
    JsonValue v;
    v.kind = JsonValue::kNumber;
    v.number = std::stod(std::string(text_.substr(pos_)), &used);
    if (used == 0) throw std::runtime_error("bad number");
    pos_ += used;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// --- counters / gauges -----------------------------------------------

TEST(Counter, AddIncrementReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAreLossless) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Counter c;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

/// --- histogram metric ------------------------------------------------

TEST(HistogramMetric, RecordAndSummaryStats) {
  HistogramOptions opts;
  opts.lo = 0.0;
  opts.hi = 100.0;
  opts.bins = 100;
  opts.log_scale = false;
  opts.unit = "ft";
  HistogramMetric h(opts);
  for (int i = 0; i < 100; ++i) h.record(i + 0.5);

  const HistogramSnapshot snap = h.snapshot("test");
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 99.5);
  EXPECT_NEAR(snap.mean(), 50.0, 1e-9);
  // One sample per unit-width bin: the quantile interpolation should
  // land within a bin of the exact order statistic.
  EXPECT_NEAR(snap.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(snap.quantile(0.9), 90.0, 1.5);
  EXPECT_GE(snap.quantile(1.0), snap.quantile(0.0));
}

TEST(HistogramMetric, LogScaleUnderAndOverflow) {
  HistogramMetric h;  // default latency layout: log10 s in [-7, 2]
  h.record(1e-3);     // in range
  h.record(0.0);      // not log-scalable -> underflow
  h.record(-5.0);     // not log-scalable -> underflow
  h.record(1e-9);     // below 100 ns -> underflow
  h.record(1e6);      // above 100 s -> overflow

  const HistogramSnapshot snap = h.snapshot("lat");
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.bins.underflow(), 3u);
  EXPECT_EQ(snap.bins.overflow(), 1u);
  EXPECT_EQ(snap.bins.total(), 5u);
  // p50 reported in natural units, inside the recorded magnitude.
  const double p50 = snap.quantile(0.5);
  EXPECT_GT(p50, 0.0);
  EXPECT_LT(p50, 1.0);
}

TEST(HistogramMetric, RecordNWeightsAllSlots) {
  HistogramOptions opts;
  opts.lo = 0.0;
  opts.hi = 10.0;
  opts.bins = 10;
  opts.log_scale = false;
  HistogramMetric h(opts);
  h.record_n(2.5, 7);
  const HistogramSnapshot snap = h.snapshot("w");
  EXPECT_EQ(snap.count, 7u);
  EXPECT_DOUBLE_EQ(snap.sum, 17.5);
  EXPECT_EQ(snap.bins.count(2), 7u);
}

TEST(HistogramMetric, ConcurrentRecordsAreLossless) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  HistogramOptions opts;
  opts.lo = 0.0;
  opts.hi = 1.0;
  opts.bins = 16;
  opts.log_scale = false;
  HistogramMetric h(opts);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record((t * kPerThread + i) % 16 / 16.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const HistogramSnapshot snap = h.snapshot("conc");
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.bins.total(), snap.count);  // no sample lost in shards
}

/// --- registry --------------------------------------------------------

TEST(MetricsRegistry, SameNameResolvesToSameObject) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // Same name, different kind: independent objects.
  reg.gauge("x").set(1.0);
  EXPECT_EQ(reg.counter("x").value(), 3u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndDeterministic) {
  MetricsRegistry reg;
  reg.counter("zeta").add(1);
  reg.counter("alpha").add(2);
  reg.gauge("mid").set(0.5);
  reg.histogram("lat").record(1e-3);

  const MetricsSnapshot a = reg.snapshot();
  ASSERT_EQ(a.counters.size(), 2u);
  EXPECT_EQ(a.counters[0].first, "alpha");
  EXPECT_EQ(a.counters[1].first, "zeta");

  const MetricsSnapshot b = reg.snapshot();
  EXPECT_EQ(a.to_text(), b.to_text());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_FALSE(a.empty());
}

TEST(MetricsRegistry, ResetZeroesButKeepsReferencesValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("events");
  Gauge& g = reg.gauge("depth");
  HistogramMetric& h = reg.histogram("lat");
  c.add(10);
  g.set(4.0);
  h.record(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  c.increment();  // references stay usable after reset
  EXPECT_EQ(reg.counter("events").value(), 1u);
}

TEST(MetricsRegistry, GlobalShorthandsHitTheGlobalRegistry) {
  Counter& c = counter("test.metrics.global_shorthand");
  const std::uint64_t before = c.value();
  counter("test.metrics.global_shorthand").increment();
  EXPECT_EQ(c.value(), before + 1);
}

/// --- JSON export -----------------------------------------------------

TEST(MetricsSnapshot, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.counter("ingest.files").add(64);
  reg.counter("locate.calls").add(1000);
  reg.gauge("queue \"depth\"").set(2.5);  // exercise escaping
  HistogramOptions opts;
  opts.lo = 0.0;
  opts.hi = 10.0;
  opts.bins = 10;
  opts.log_scale = false;
  opts.unit = "ft";
  HistogramMetric& h = reg.histogram("error", opts);
  h.record(1.5);
  h.record_n(4.5, 3);
  h.record(-2.0);  // underflow
  h.record(99.0);  // overflow

  const std::string json = reg.snapshot().to_json();
  const JsonValue root = JsonParser(json).parse();

  EXPECT_DOUBLE_EQ(root.at("counters").at("ingest.files").number, 64.0);
  EXPECT_DOUBLE_EQ(root.at("counters").at("locate.calls").number, 1000.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("queue \"depth\"").number, 2.5);

  const JsonValue& hist = root.at("histograms").at("error");
  EXPECT_EQ(hist.at("unit").str, "ft");
  EXPECT_EQ(hist.at("scale").str, "linear");
  EXPECT_DOUBLE_EQ(hist.at("count").number, 6.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number, -2.0);
  EXPECT_DOUBLE_EQ(hist.at("max").number, 99.0);

  // Bin counts must re-sum to the total, under/overflow included.
  double bin_total = 0.0;
  bool saw_underflow = false;
  bool saw_overflow = false;
  for (const JsonValue& bin : hist.at("bins").array) {
    bin_total += bin.at("count").number;
    saw_underflow |= bin.at("lo").kind == JsonValue::kNull;
    saw_overflow |= bin.at("hi").kind == JsonValue::kNull;
  }
  EXPECT_DOUBLE_EQ(bin_total, 6.0);
  EXPECT_TRUE(saw_underflow);
  EXPECT_TRUE(saw_overflow);
}

TEST(MetricsSnapshot, EmptySnapshotIsValidJson) {
  MetricsRegistry reg;
  const JsonValue root = JsonParser(reg.snapshot().to_json()).parse();
  EXPECT_TRUE(root.at("counters").object.empty());
  EXPECT_TRUE(root.at("gauges").object.empty());
  EXPECT_TRUE(root.at("histograms").object.empty());
  EXPECT_NE(reg.snapshot().to_text().find("no metrics"),
            std::string::npos);
}

/// --- RAII timing -----------------------------------------------------

TEST(ScopedTimer, RecordsElapsedOnDestruction) {
  HistogramMetric h;
  {
    ScopedTimer timer(h);
    EXPECT_GE(timer.elapsed_s(), 0.0);
  }
  const HistogramSnapshot snap = h.snapshot("t");
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.min, 0.0);
}

TEST(ScopedTimer, WeightSplitsBatchIntoPerOpSamples) {
  HistogramMetric h;
  { ScopedTimer timer(h, 64); }
  EXPECT_EQ(h.count(), 64u);
}

TEST(ScopedTimer, CancelDropsTheRecord) {
  HistogramMetric h;
  {
    ScopedTimer timer(h);
    timer.cancel();
  }
  EXPECT_EQ(h.count(), 0u);
}

TEST(TraceSpan, RecordsCallAndDuration) {
  const std::uint64_t calls_before =
      counter("trace.test_span.calls").value();
  const std::uint64_t samples_before =
      histogram("trace.test_span.seconds").count();
  { TraceSpan span("test_span"); }
  EXPECT_EQ(counter("trace.test_span.calls").value(), calls_before + 1);
  EXPECT_EQ(histogram("trace.test_span.seconds").count(),
            samples_before + 1);
}

}  // namespace
}  // namespace loctk::metrics

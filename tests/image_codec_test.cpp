// Unit tests for the PNM and BMP codecs (the GIF substitution).

#include "image/codec_bmp.hpp"
#include "image/codec_pnm.hpp"

#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

namespace loctk::image {
namespace {

Raster test_image() {
  Raster img(7, 5, colors::kWhite);
  img.set_pixel(0, 0, colors::kRed);
  img.set_pixel(6, 4, colors::kBlue);
  img.set_pixel(3, 2, Color{1, 2, 3});
  return img;
}

TEST(Ppm, RoundTripExact) {
  const Raster img = test_image();
  EXPECT_EQ(decode_pnm(encode_ppm(img)), img);
}

TEST(Ppm, HeaderFormat) {
  const std::string bytes = encode_ppm(Raster(3, 2));
  EXPECT_EQ(bytes.substr(0, 11), "P6\n3 2\n255\n");
  EXPECT_EQ(bytes.size(), 11u + 3u * 2u * 3u);
}

TEST(Pgm, WritesLuma) {
  Raster img(2, 1);
  img.set_pixel(0, 0, colors::kWhite);
  img.set_pixel(1, 0, colors::kBlack);
  std::ostringstream os;
  write_pgm(os, img);
  const std::string bytes = os.str();
  EXPECT_EQ(bytes.substr(0, 3), "P5\n");
  EXPECT_EQ(static_cast<unsigned char>(bytes[bytes.size() - 2]), 255u);
  EXPECT_EQ(static_cast<unsigned char>(bytes.back()), 0u);
}

TEST(Pnm, ReadsAsciiP3) {
  const std::string text =
      "P3\n# a comment\n2 1\n255\n255 0 0   0 0 255\n";
  const Raster img = decode_pnm(text);
  EXPECT_EQ(img.width(), 2);
  EXPECT_EQ(img.height(), 1);
  EXPECT_EQ(img.at(0, 0), Color(255, 0, 0));
  EXPECT_EQ(img.at(1, 0), Color(0, 0, 255));
}

TEST(Pnm, ReadsAsciiP2Grayscale) {
  const std::string text = "P2\n2 2\n255\n0 128\n255 64\n";
  const Raster img = decode_pnm(text);
  EXPECT_EQ(img.at(0, 0), Color(0, 0, 0));
  EXPECT_EQ(img.at(1, 0), Color(128, 128, 128));
  EXPECT_EQ(img.at(0, 1), Color(255, 255, 255));
}

TEST(Pnm, ScalesNonstandardMaxval) {
  const std::string text = "P3\n1 1\n15\n15 0 5\n";
  const Raster img = decode_pnm(text);
  EXPECT_EQ(img.at(0, 0).r, 255);
  EXPECT_EQ(img.at(0, 0).g, 0);
  EXPECT_EQ(img.at(0, 0).b, 85);  // 5 * 255 / 15
}

TEST(Pnm, CommentsInsideHeader) {
  const std::string text =
      "P3\n#c1\n 2 #c2\n 1\n# c3\n255\n1 2 3 4 5 6\n";
  const Raster img = decode_pnm(text);
  EXPECT_EQ(img.width(), 2);
  EXPECT_EQ(img.at(1, 0), Color(4, 5, 6));
}

TEST(Pnm, MalformedInputsThrow) {
  EXPECT_THROW(decode_pnm("JUNK"), CodecError);
  EXPECT_THROW(decode_pnm("P6\n0 5\n255\n"), CodecError);       // w = 0
  EXPECT_THROW(decode_pnm("P6\n-3 5\n255\n"), CodecError);      // negative
  EXPECT_THROW(decode_pnm("P6\n2 2\n70000\n"), CodecError);     // maxval
  EXPECT_THROW(decode_pnm("P6\n2 2\n255\nxx"), CodecError);     // truncated
  EXPECT_THROW(decode_pnm("P3\n1 1\n255\n1 2"), CodecError);    // short
  EXPECT_THROW(decode_pnm("P3\n1 1\n255\n1 2 999\n"), CodecError);
}

TEST(Bmp, RoundTripExact) {
  const Raster img = test_image();  // width 7 exercises row padding
  EXPECT_EQ(decode_bmp(encode_bmp(img)), img);
}

TEST(Bmp, RoundTripUnpaddedWidth) {
  Raster img(4, 3, colors::kGreen);
  img.set_pixel(2, 1, colors::kPurple);
  EXPECT_EQ(decode_bmp(encode_bmp(img)), img);
}

TEST(Bmp, SignatureAndSize) {
  const std::string bytes = encode_bmp(Raster(2, 2));
  EXPECT_EQ(bytes[0], 'B');
  EXPECT_EQ(bytes[1], 'M');
  // 54 header + 2 rows of 8 padded bytes.
  EXPECT_EQ(bytes.size(), 54u + 16u);
}

TEST(Bmp, MalformedInputsThrow) {
  EXPECT_THROW(decode_bmp("XY"), CodecError);
  std::string bytes = encode_bmp(Raster(2, 2));
  bytes.resize(bytes.size() - 5);  // truncate pixels
  EXPECT_THROW(decode_bmp(bytes), CodecError);
}

TEST(FileIo, WriteReadRoundTripThroughDisk) {
  const auto dir = std::filesystem::temp_directory_path() / "loctk_codec";
  std::filesystem::create_directories(dir);
  const Raster img = test_image();

  for (const char* name : {"t.ppm", "t.pgm", "t.bmp"}) {
    const auto path = dir / name;
    write_image(path, img);
    const Raster back = read_image(path);
    EXPECT_EQ(back.width(), img.width()) << name;
    EXPECT_EQ(back.height(), img.height()) << name;
    if (path.extension() != ".pgm") {
      EXPECT_EQ(back, img) << name;  // color formats are lossless
    }
  }
  EXPECT_THROW(write_image(dir / "t.gif", img), CodecError);
  EXPECT_THROW(read_image(dir / "t.gif"), CodecError);
  EXPECT_THROW(read_image(dir / "missing.ppm"), CodecError);
  std::filesystem::remove_all(dir);
}

// Property sweep: PPM and BMP round-trip exactly for a grid of sizes,
// including widths that hit every BMP padding case.
class SizeSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SizeSweep, BothCodecsRoundTrip) {
  const auto [w, h] = GetParam();
  Raster img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      img.set_pixel(x, y,
                    Color{static_cast<std::uint8_t>((x * 37 + y) & 0xff),
                          static_cast<std::uint8_t>((y * 11 + x) & 0xff),
                          static_cast<std::uint8_t>((x ^ y) & 0xff)});
    }
  }
  EXPECT_EQ(decode_pnm(encode_ppm(img)), img);
  EXPECT_EQ(decode_bmp(encode_bmp(img)), img);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SizeSweep,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 3}, std::pair{3, 2},
                      std::pair{4, 4}, std::pair{5, 1}, std::pair{6, 7},
                      std::pair{7, 6}, std::pair{16, 16},
                      std::pair{33, 9}));

}  // namespace
}  // namespace loctk::image

// Unit tests for the location-map text format (names <-> coordinates).

#include "wiscan/location_map.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace loctk::wiscan {
namespace {

TEST(LocationMap, AddFindContains) {
  LocationMap map;
  map.add("kitchen", {42.0, 8.5});
  map.add("Room D22", {10.0, 30.0});
  EXPECT_EQ(map.size(), 2u);
  EXPECT_TRUE(map.contains("kitchen"));
  EXPECT_FALSE(map.contains("attic"));
  ASSERT_TRUE(map.find("Room D22").has_value());
  EXPECT_EQ(*map.find("Room D22"), geom::Vec2(10.0, 30.0));
  EXPECT_FALSE(map.find("attic").has_value());
}

TEST(LocationMap, AddRejectsDuplicatesSetReplaces) {
  LocationMap map;
  map.add("a", {1.0, 1.0});
  EXPECT_THROW(map.add("a", {2.0, 2.0}), LocationMapError);
  map.set("a", {3.0, 3.0});
  EXPECT_EQ(*map.find("a"), geom::Vec2(3.0, 3.0));
  map.set("new", {4.0, 4.0});
  EXPECT_EQ(map.size(), 2u);
}

TEST(LocationMap, Nearest) {
  LocationMap map;
  EXPECT_FALSE(map.nearest({0.0, 0.0}).has_value());
  map.add("near", {1.0, 1.0});
  map.add("far", {40.0, 30.0});
  EXPECT_EQ(*map.nearest({2.0, 2.0}), "near");
  EXPECT_EQ(*map.nearest({39.0, 29.0}), "far");
}

TEST(LocationMap, RoundTripSimpleAndQuotedNames) {
  LocationMap map;
  map.add("kitchen", {42.0, 8.5});
  map.add("Room D22", {10.0, 30.0});
  map.add("has\"quote", {1.0, 2.0});
  map.add("back\\slash", {3.0, 4.0});

  std::ostringstream os;
  map.write(os);
  std::istringstream is(os.str());
  const LocationMap back = LocationMap::read(is);
  EXPECT_EQ(back, map);
}

TEST(LocationMap, ParsesHandWrittenFile) {
  const std::string text =
      "# location-map v1\n"
      "\n"
      "kitchen\t42.0 8.5\n"
      "\"Center of Hallway\"  25 20\n"
      "  indented 1 2\n";
  std::istringstream is(text);
  const LocationMap map = LocationMap::read(is);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(*map.find("Center of Hallway"), geom::Vec2(25.0, 20.0));
  EXPECT_EQ(*map.find("indented"), geom::Vec2(1.0, 2.0));
}

TEST(LocationMap, NegativeAndFractionalCoordinates) {
  std::istringstream is("p -3.25 4.75\n");
  const LocationMap map = LocationMap::read(is);
  EXPECT_EQ(*map.find("p"), geom::Vec2(-3.25, 4.75));
}

TEST(LocationMap, MalformedLinesThrow) {
  auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return LocationMap::read(is);
  };
  EXPECT_THROW(parse("justaname\n"), LocationMapError);
  EXPECT_THROW(parse("name 1.0\n"), LocationMapError);
  EXPECT_THROW(parse("name abc def\n"), LocationMapError);
  EXPECT_THROW(parse("\"unterminated 1 2\n"), LocationMapError);
}

TEST(LocationMap, LaterDuplicateInFileWins) {
  // read() uses set(): a later line overrides (useful when a survey
  // revisits a location).
  std::istringstream is("a 1 1\na 2 2\n");
  const LocationMap map = LocationMap::read(is);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.find("a"), geom::Vec2(2.0, 2.0));
}

TEST(LocationMap, DiskRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "loctk_locmap";
  std::filesystem::create_directories(dir);
  LocationMap map;
  map.add("p10-10", {10.0, 10.0});
  const auto path = dir / "house.locmap";
  map.write(path);
  EXPECT_EQ(LocationMap::read(path), map);
  EXPECT_THROW(LocationMap::read(dir / "missing.locmap"),
               LocationMapError);
  std::filesystem::remove_all(dir);
}

TEST(LocationMap, OrderPreserved) {
  LocationMap map;
  map.add("z", {0.0, 0.0});
  map.add("a", {1.0, 1.0});
  ASSERT_EQ(map.locations().size(), 2u);
  EXPECT_EQ(map.locations()[0].name, "z");
  EXPECT_EQ(map.locations()[1].name, "a");
}

}  // namespace
}  // namespace loctk::wiscan

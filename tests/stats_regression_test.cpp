// Unit tests for the signal-distance model fits: the paper's
// inverse-square regression (§5.2, Figure 4) and the RADAR-style
// log-distance alternative.

#include "stats/regression.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace loctk::stats {
namespace {

TEST(LinearFit, ExactLine) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{3.0, 5.0, 7.0, 9.0};  // y = 2x + 1
  const auto fit = linear_fit(x, y);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit->n, 4u);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_FALSE(linear_fit({}, {}).has_value());
  EXPECT_FALSE(linear_fit(std::vector<double>{1.0},
                          std::vector<double>{2.0})
                   .has_value());
  // Zero x variance.
  EXPECT_FALSE(linear_fit(std::vector<double>{2.0, 2.0, 2.0},
                          std::vector<double>{1.0, 2.0, 3.0})
                   .has_value());
}

TEST(LinearFit, NoisyRSquaredBelowOne) {
  const std::vector<double> x{1, 2, 3, 4, 5, 6};
  const std::vector<double> y{2.1, 3.9, 6.3, 7.8, 10.4, 11.7};
  const auto fit = linear_fit(x, y);
  ASSERT_TRUE(fit.has_value());
  EXPECT_GT(fit->r_squared, 0.98);
  EXPECT_LT(fit->r_squared, 1.0);
}

TEST(InverseSquare, RecoverExactModel) {
  // The paper's Figure 4 shape: ss = a/d^2 + b with a large negative a.
  const InverseSquareModel truth{-4541.8, -31.0, 0.0};
  std::vector<double> d, ss;
  for (double dist = 10.0; dist <= 60.0; dist += 5.0) {
    d.push_back(dist);
    ss.push_back(truth.predict(dist));
  }
  const auto fit = fit_inverse_square(d, ss);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->a, truth.a, 1e-6);
  EXPECT_NEAR(fit->b, truth.b, 1e-9);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
}

TEST(InverseSquare, InvertRoundTrips) {
  const InverseSquareModel m{-4541.8, -31.0, 1.0};
  for (const double d : {5.0, 10.0, 25.0, 60.0}) {
    EXPECT_NEAR(m.invert(m.predict(d)), d, 1e-9) << d;
  }
}

TEST(InverseSquare, InvertClampsAndRejectsBadSides) {
  const InverseSquareModel m{-4541.8, -31.0, 1.0};
  // Stronger than the asymptote allows: denominator flips sign.
  EXPECT_DOUBLE_EQ(m.invert(-20.0, 1.0, 300.0), 300.0);
  // Exactly the asymptote.
  EXPECT_DOUBLE_EQ(m.invert(-31.0, 1.0, 300.0), 300.0);
  // Extremely strong: clamps at min.
  EXPECT_DOUBLE_EQ(m.invert(-4000.0, 2.0, 300.0), 2.0);
}

TEST(InverseSquare, IgnoresNonPositiveDistances) {
  std::vector<double> d{-1.0, 0.0, 10.0, 20.0, 30.0};
  const InverseSquareModel truth{-2000.0, -35.0, 0.0};
  std::vector<double> ss;
  for (const double dist : d) {
    ss.push_back(dist > 0.0 ? truth.predict(dist) : 12345.0);
  }
  const auto fit = fit_inverse_square(d, ss);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->a, truth.a, 1e-6);
}

TEST(LogDistance, RecoverExactModel) {
  const LogDistanceModel truth{-28.0, 3.0, 1.0, 0.0};
  std::vector<double> d, ss;
  for (double dist = 2.0; dist <= 64.0; dist *= 2.0) {
    d.push_back(dist);
    ss.push_back(truth.predict(dist));
  }
  const auto fit = fit_log_distance(d, ss);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->p0, truth.p0, 1e-9);
  EXPECT_NEAR(fit->n, truth.n, 1e-9);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
}

TEST(LogDistance, PredictInvertRoundTrip) {
  const LogDistanceModel m{-28.0, 3.2, 1.0, 1.0};
  for (const double d : {1.0, 7.0, 33.0, 100.0}) {
    EXPECT_NEAR(m.invert(m.predict(d)), d, 1e-9) << d;
  }
  // Clamping.
  EXPECT_DOUBLE_EQ(m.invert(-500.0, 0.1, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(m.invert(20.0, 0.1, 50.0), 0.1);
}

TEST(InversePower, RecoversExponent) {
  // ss = a / d^2.7 + b.
  const double a = -900.0, b = -38.0, k = 2.7;
  std::vector<double> d, ss;
  for (double dist = 4.0; dist <= 64.0; dist += 4.0) {
    d.push_back(dist);
    ss.push_back(a / std::pow(dist, k) + b);
  }
  const auto fit = fit_inverse_power(d, ss, 0.5, 6.0, 112);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->k, k, 0.06);  // grid resolution
  EXPECT_GT(fit->r_squared, 0.999);
  // Round trip through the fitted model stays close.
  for (const double dist : d) {
    EXPECT_NEAR(fit->invert(fit->predict(dist)), dist, 0.5);
  }
}

TEST(InversePower, TooFewPoints) {
  EXPECT_FALSE(fit_inverse_power(std::vector<double>{1.0, 2.0},
                                 std::vector<double>{-40.0, -50.0})
                   .has_value());
}

TEST(RSquared, PerfectAndPoor) {
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(y, y), 1.0);
  const std::vector<double> flat{2.0, 2.0, 2.0};
  EXPECT_LT(r_squared(y, flat), 0.01);
  // Constant y with exact predictions: conventionally 1.
  EXPECT_DOUBLE_EQ(r_squared(flat, flat), 1.0);
}

// Property sweep: the inverse-square fit degrades gracefully with
// noise — R^2 decreases but coefficient signs stay correct.
class NoisyFitSweep : public ::testing::TestWithParam<int> {};

TEST_P(NoisyFitSweep, SignsSurviveNoise) {
  const int i = GetParam();
  const InverseSquareModel truth{-4541.8, -31.0, 0.0};
  std::vector<double> d, ss;
  for (double dist = 8.0; dist <= 64.0; dist += 4.0) {
    d.push_back(dist);
    // Deterministic pseudo-noise, amplitude grows with the sweep index.
    const double noise =
        std::sin(dist * 1.7 + i) * 0.6 * static_cast<double>(i);
    ss.push_back(truth.predict(dist) + noise);
  }
  const auto fit = fit_inverse_square(d, ss);
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(fit->a, 0.0);   // signal decreases with distance
  EXPECT_LT(fit->b, 0.0);   // far-field asymptote is weak
  if (i == 0) EXPECT_NEAR(fit->r_squared, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, NoisyFitSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace loctk::stats

// Unit tests for the evaluation harness (valid-estimation rate,
// error statistics) and the paper's experimental layout helpers.

#include "core/evaluation.hpp"

#include <set>

#include <gtest/gtest.h>

#include "core/knn.hpp"
#include "core/probabilistic.hpp"
#include "test_fixtures.hpp"

namespace loctk::core {
namespace {

using testing::fixture_observation;
using testing::make_fixture_db;

TEST(MakeTrainingGrid, PaperLayoutInteriorPoints) {
  // The paper's 50x40 house with 10-ft products strictly inside:
  // x in {10..40}, y in {10..30} -> 4 x 3 = 12 points.
  const auto map =
      make_training_grid(geom::Rect::sized(50.0, 40.0), 10.0);
  EXPECT_EQ(map.size(), 12u);
  EXPECT_TRUE(map.contains("p10-10"));
  EXPECT_TRUE(map.contains("p40-30"));
  EXPECT_FALSE(map.contains("p0-0"));
  EXPECT_FALSE(map.contains("p50-40"));
  EXPECT_EQ(*map.find("p20-30"), geom::Vec2(20.0, 30.0));
}

TEST(MakeTrainingGrid, FinerSpacing) {
  const auto map = make_training_grid(geom::Rect::sized(50.0, 40.0), 5.0);
  // x in {5..45} (9), y in {5..35} (7).
  EXPECT_EQ(map.size(), 63u);
}

TEST(MakeScatteredTestPoints, ThirteenInsideAndSpread) {
  const geom::Rect house = geom::Rect::sized(50.0, 40.0);
  const auto pts = make_scattered_test_points(house, 13);
  EXPECT_EQ(pts.size(), 13u);
  std::set<std::pair<double, double>> unique;
  for (const geom::Vec2 p : pts) {
    EXPECT_TRUE(house.contains(p));
    unique.insert({p.x, p.y});
    // Off the 10-ft training grid (paper: test points are scattered,
    // not at training locations).
    const bool on_grid = std::fmod(p.x, 10.0) == 0.0 &&
                         std::fmod(p.y, 10.0) == 0.0;
    EXPECT_FALSE(on_grid);
  }
  EXPECT_EQ(unique.size(), 13u);
  // Deterministic for a seed.
  EXPECT_EQ(make_scattered_test_points(house, 13), pts);
  EXPECT_NE(make_scattered_test_points(house, 13, 999), pts);
}

TEST(Evaluate, PerfectObservationsScoreFullMarks) {
  const auto db = make_fixture_db();
  const ProbabilisticLocator locator(db);
  std::vector<geom::Vec2> truths;
  std::vector<Observation> observations;
  for (const auto& tp : db.points()) {
    truths.push_back(tp.position);
    observations.push_back(fixture_observation(tp.position));
  }
  const EvaluationResult r = evaluate(locator, db, truths, observations);
  EXPECT_EQ(r.locator_name, "probabilistic-ml");
  EXPECT_EQ(r.count(), db.size());
  EXPECT_EQ(r.valid_count(), db.size());
  EXPECT_DOUBLE_EQ(r.valid_estimation_rate(), 1.0);
  EXPECT_DOUBLE_EQ(r.mean_error_ft(), 0.0);
  EXPECT_DOUBLE_EQ(r.max_error_ft(), 0.0);
}

TEST(Evaluate, ErrorStatisticsComputed) {
  const auto db = make_fixture_db();
  const KnnLocator locator(db, {.k = 1});
  // Off-grid truths: NNSS snaps to cells, so errors are the snap
  // distances.
  const std::vector<geom::Vec2> truths = {{12.0, 10.0}, {20.0, 24.0}};
  std::vector<Observation> obs;
  for (const auto t : truths) obs.push_back(fixture_observation(t));
  const EvaluationResult r = evaluate(locator, db, truths, obs);
  ASSERT_EQ(r.count(), 2u);
  EXPECT_NEAR(r.outcomes[0].error_ft, 2.0, 1e-9);
  EXPECT_NEAR(r.outcomes[1].error_ft, 4.0, 1e-9);
  EXPECT_NEAR(r.mean_error_ft(), 3.0, 1e-9);
  EXPECT_NEAR(r.median_error_ft(), 3.0, 1e-9);
  EXPECT_NEAR(r.max_error_ft(), 4.0, 1e-9);
  const auto sorted = r.sorted_errors();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_LE(sorted[0], sorted[1]);
}

TEST(Evaluate, CellCorrectUsesNearestOracle) {
  const auto db = make_fixture_db();
  const ProbabilisticLocator locator(db);
  // Truth near (10,10): correct cell is g10-10.
  const std::vector<geom::Vec2> truths = {{11.0, 9.0}};
  const std::vector<Observation> obs = {fixture_observation({11.0, 9.0})};
  const EvaluationResult r = evaluate(locator, db, truths, obs);
  ASSERT_EQ(r.count(), 1u);
  EXPECT_TRUE(r.outcomes[0].cell_correct);
  EXPECT_DOUBLE_EQ(r.valid_estimation_rate(), 1.0);
}

TEST(Evaluate, InvalidEstimatesCounted) {
  const auto db = make_fixture_db();
  const ProbabilisticLocator locator(db);
  const std::vector<geom::Vec2> truths = {{10.0, 10.0}, {20.0, 20.0}};
  // Second observation is empty -> invalid.
  const std::vector<Observation> obs = {fixture_observation({10.0, 10.0}),
                                        Observation{}};
  const EvaluationResult r = evaluate(locator, db, truths, obs);
  EXPECT_EQ(r.count(), 2u);
  EXPECT_EQ(r.valid_count(), 1u);
  EXPECT_DOUBLE_EQ(r.valid_estimation_rate(), 0.5);
  // Error stats only cover valid estimates.
  EXPECT_DOUBLE_EQ(r.mean_error_ft(), 0.0);
}

TEST(Evaluate, MismatchedLengthsTruncate) {
  const auto db = make_fixture_db();
  const ProbabilisticLocator locator(db);
  const std::vector<geom::Vec2> truths = {{10.0, 10.0}, {20.0, 20.0}};
  const std::vector<Observation> obs = {fixture_observation({10.0, 10.0})};
  EXPECT_EQ(evaluate(locator, db, truths, obs).count(), 1u);
}

TEST(EvaluationResult, EmptyIsSafe) {
  EvaluationResult r;
  EXPECT_DOUBLE_EQ(r.valid_estimation_rate(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_error_ft(), 0.0);
  EXPECT_DOUBLE_EQ(r.median_error_ft(), 0.0);
  EXPECT_DOUBLE_EQ(r.p90_error_ft(), 0.0);
  EXPECT_DOUBLE_EQ(r.max_error_ft(), 0.0);
  EXPECT_TRUE(r.sorted_errors().empty());
}

}  // namespace
}  // namespace loctk::core

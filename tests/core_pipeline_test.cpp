// Unit tests for the Testbed pipeline wiring (train/observe facades).

#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "traindb/generator.hpp"
#include "wiscan/survey.hpp"

namespace loctk::core {
namespace {

TEST(Testbed, TrainIsDeterministicPerSeed) {
  Testbed tb(radio::make_paper_house());
  const auto map = make_training_grid(tb.environment().footprint(), 10.0);
  const auto a = tb.train(map, 20, 42);
  const auto b = tb.train(map, 20, 42);
  EXPECT_EQ(a, b);
  const auto c = tb.train(map, 20, 43);
  EXPECT_NE(a, c);
}

TEST(Testbed, TrainMatchesManualSurveyPlusGenerator) {
  // Testbed::train must be exactly the documented composition:
  // survey -> collection -> generate_database.
  Testbed tb(radio::make_paper_house());
  const auto map = make_training_grid(tb.environment().footprint(), 10.0);
  const auto via_testbed = tb.train(map, 15, 77);

  radio::Scanner scanner = tb.make_scanner(77);
  wiscan::SurveyConfig cfg;
  cfg.scans_per_location = 15;
  wiscan::SurveyCampaign campaign(scanner, cfg);
  const auto manual =
      traindb::generate_database(campaign.run(map), map);
  EXPECT_EQ(via_testbed, manual);
}

TEST(Testbed, TrainForwardsGeneratorConfig) {
  Testbed tb(radio::make_paper_house());
  const auto map = make_training_grid(tb.environment().footprint(), 10.0);
  traindb::GeneratorConfig cfg;
  cfg.keep_samples = true;
  cfg.site_name = "cfg-check";
  const auto db = tb.train(map, 10, 5, cfg);
  EXPECT_TRUE(db.has_samples());
  EXPECT_EQ(db.site_name(), "cfg-check");
}

TEST(Testbed, ObserveShapesAndSessions) {
  Testbed tb(radio::make_paper_house());
  const std::vector<geom::Vec2> truths = {{10.0, 10.0}, {30.0, 25.0}};
  const auto obs = tb.observe(truths, 12, 9);
  ASSERT_EQ(obs.size(), 2u);
  for (const Observation& o : obs) {
    EXPECT_FALSE(o.empty());
    for (const ObservedAp& ap : o.aps()) {
      EXPECT_LE(ap.sample_count, 12u);
      EXPECT_GE(ap.sample_count, 1u);
    }
  }
  // Zero points / zero scans degrade gracefully.
  EXPECT_TRUE(tb.observe({}, 12, 9).empty());
  const auto empty_scans = tb.observe(truths, 0, 9);
  ASSERT_EQ(empty_scans.size(), 2u);
  EXPECT_TRUE(empty_scans[0].empty());
}

TEST(Testbed, ChannelConfigIsHonored) {
  radio::ChannelConfig quiet;
  quiet.shadowing_sigma_db = 0.0;
  quiet.fast_fading_sigma_db = 0.0;
  quiet.quantize_dbm = false;
  quiet.sensitivity_dbm = -150.0;
  quiet.dropout_softness_db = 0.0;
  Testbed tb(radio::make_paper_house(), radio::PropagationConfig{},
             quiet);
  // With a noiseless channel, repeated observations are identical
  // even across different seeds.
  const auto a = tb.observe({{20.0, 20.0}}, 5, 1)[0];
  const auto b = tb.observe({{20.0, 20.0}}, 5, 999)[0];
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace loctk::core

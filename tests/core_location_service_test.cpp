// Unit tests for the live LocationService (sliding window, Kalman
// coasting, debounced place-change callbacks).

#include "core/location_service.hpp"

#include <limits>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "core/probabilistic.hpp"
#include "core/tracking.hpp"
#include "test_fixtures.hpp"

namespace loctk::core {
namespace {

using testing::fixture_bssids;
using testing::fixture_mean_rssi;
using testing::make_fixture_db;

radio::ScanRecord scan_at(geom::Vec2 pos, double t = 0.0) {
  radio::ScanRecord rec;
  rec.timestamp_s = t;
  for (std::size_t a = 0; a < fixture_bssids().size(); ++a) {
    rec.samples.push_back(
        {fixture_bssids()[a], fixture_mean_rssi(a, pos), 1});
  }
  return rec;
}

radio::ScanRecord empty_scan(double t = 0.0) {
  radio::ScanRecord rec;
  rec.timestamp_s = t;
  return rec;
}

struct Fixture {
  Fixture() : db(make_fixture_db()), locator(db) {}
  traindb::TrainingDatabase db;
  ProbabilisticLocator locator;
};

TEST(LocationService, NoFixBeforeMinScans) {
  Fixture f;
  LocationServiceConfig cfg;
  cfg.min_scans = 3;
  LocationService svc(f.locator, cfg);
  EXPECT_FALSE(svc.on_scan(scan_at({10, 10})).valid);
  EXPECT_FALSE(svc.on_scan(scan_at({10, 10})).valid);
  const ServiceFix fix = svc.on_scan(scan_at({10, 10}));
  EXPECT_TRUE(fix.valid);
  EXPECT_EQ(fix.window_fill, 3u);
}

TEST(LocationService, ConvergesToThePlace) {
  Fixture f;
  LocationService svc(f.locator);
  ServiceFix fix;
  for (int i = 0; i < 10; ++i) fix = svc.on_scan(scan_at({20, 20}));
  ASSERT_TRUE(fix.valid);
  EXPECT_EQ(fix.place, "g20-20");
  EXPECT_LT(geom::distance(fix.position, {20.0, 20.0}), 5.0);
}

TEST(LocationService, WindowSlides) {
  Fixture f;
  LocationServiceConfig cfg;
  cfg.window_scans = 4;
  cfg.kalman_smoothing = false;
  cfg.place_debounce = 1;
  LocationService svc(f.locator, cfg);
  // Fill the window at one corner, then move: after `window_scans`
  // scans at the new spot the old data has fully slid out.
  for (int i = 0; i < 6; ++i) svc.on_scan(scan_at({0, 0}));
  ServiceFix fix;
  for (int i = 0; i < 4; ++i) fix = svc.on_scan(scan_at({40, 40}));
  ASSERT_TRUE(fix.valid);
  EXPECT_EQ(fix.place, "g40-40");
  EXPECT_EQ(fix.window_fill, 4u);
}

TEST(LocationService, PlaceChangeCallbackDebounced) {
  Fixture f;
  LocationServiceConfig cfg;
  cfg.window_scans = 2;
  cfg.min_scans = 1;
  cfg.place_debounce = 3;
  cfg.kalman_smoothing = false;
  LocationService svc(f.locator, cfg);

  std::vector<std::pair<std::string, std::string>> changes;
  svc.on_place_change([&](const std::string& from, const std::string& to) {
    changes.emplace_back(from, to);
  });

  for (int i = 0; i < 5; ++i) svc.on_scan(scan_at({0, 0}));
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].first, "");
  EXPECT_EQ(changes[0].second, "g0-0");

  // One stray scan from elsewhere: debounce absorbs it.
  svc.on_scan(scan_at({40, 40}));
  EXPECT_EQ(changes.size(), 1u);
  // window is 2: feed enough scans for the window to be fully at the
  // new location for 3 consecutive resolutions.
  for (int i = 0; i < 6; ++i) svc.on_scan(scan_at({40, 40}));
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[1].first, "g0-0");
  EXPECT_EQ(changes[1].second, "g40-40");
}

TEST(LocationService, CoastsThroughEmptyScans) {
  Fixture f;
  LocationServiceConfig cfg;
  cfg.window_scans = 2;
  cfg.min_scans = 1;
  LocationService svc(f.locator, cfg);
  for (int i = 0; i < 5; ++i) svc.on_scan(scan_at({20, 20}));
  // Radio silence: the window drains to empty scans, the locator
  // fails, but the Kalman layer keeps answering near the last fix.
  ServiceFix fix;
  for (int i = 0; i < 3; ++i) fix = svc.on_scan(empty_scan());
  EXPECT_TRUE(fix.valid);
  EXPECT_LT(geom::distance(fix.position, {20.0, 20.0}), 6.0);
}

TEST(LocationService, NoKalmanNoCoasting) {
  Fixture f;
  LocationServiceConfig cfg;
  cfg.window_scans = 1;
  cfg.min_scans = 1;
  cfg.kalman_smoothing = false;
  LocationService svc(f.locator, cfg);
  EXPECT_TRUE(svc.on_scan(scan_at({20, 20})).valid);
  EXPECT_FALSE(svc.on_scan(empty_scan()).valid);
}

// Regression companion to the Kalman dt fix: scan timestamps now feed
// the filter, so the same scan contents arriving at a different cadence
// propagate the motion model differently.
TEST(LocationService, ScanTimestampsDriveKalmanDt) {
  Fixture f;
  LocationServiceConfig cfg;
  cfg.window_scans = 1;
  cfg.min_scans = 1;
  cfg.kalman.dt_s = 1.0;

  LocationService fast(f.locator, cfg);   // scans 0.1 s apart
  LocationService slow(f.locator, cfg);   // scans 10 s apart
  ServiceFix fix_fast, fix_slow;
  for (int i = 0; i < 8; ++i) {
    // A moving client: identical positions per step in both services.
    const geom::Vec2 pos{5.0 + 4.0 * i, 20.0};
    fix_fast = fast.on_scan(scan_at(pos, 0.1 * i));
    fix_slow = slow.on_scan(scan_at(pos, 10.0 * i));
  }
  ASSERT_TRUE(fix_fast.valid);
  ASSERT_TRUE(fix_slow.valid);
  // Different dt -> different covariance growth -> different gains ->
  // different smoothed positions. Equal positions would mean the
  // timestamps were ignored.
  EXPECT_NE(fix_fast.position, fix_slow.position);
}

TEST(LocationService, ZeroTimestampsKeepFallbackBehavior) {
  // All-zero timestamps (the old tests' shape) give dt = 0, which the
  // tracker rejects in favor of config dt — i.e. exactly the previous
  // fixed-step behavior, bit for bit.
  Fixture f;
  LocationServiceConfig cfg;
  cfg.window_scans = 1;
  cfg.min_scans = 1;
  cfg.kalman.dt_s = 1.0;
  LocationService timestamped(f.locator, cfg);

  KalmanTracker reference(cfg.kalman);
  for (int i = 0; i < 6; ++i) {
    const geom::Vec2 pos{5.0 + 4.0 * i, 20.0};
    const ServiceFix fix = timestamped.on_scan(scan_at(pos, 0.0));
    const Observation obs =
        Observation::from_scans(std::vector<radio::ScanRecord>{
            scan_at(pos, 0.0)});
    const LocationEstimate est = f.locator.locate(obs);
    ASSERT_TRUE(est.valid);
    const geom::Vec2 expected = reference.update(est.position, 1.0);
    EXPECT_EQ(fix.position, expected) << "step " << i;
  }
}

TEST(LocationService, CountsRejectedSamples) {
  Fixture f;
  LocationServiceConfig cfg;
  cfg.window_scans = 1;
  cfg.min_scans = 1;
  LocationService svc(f.locator, cfg);
  radio::ScanRecord rec = scan_at({20, 20});
  rec.samples.push_back(
      {"ff:ff:ff:ff:ff:ff", std::numeric_limits<double>::quiet_NaN(), 1});
  rec.samples.push_back(
      {"ff:ff:ff:ff:ff:fe", std::numeric_limits<double>::infinity(), 1});
  const ServiceFix fix = svc.on_scan(rec);
  EXPECT_TRUE(fix.valid);  // the finite samples still locate
  EXPECT_EQ(svc.rejected_samples(), 2u);
}

TEST(LocationService, ReplayMatchesScanByScanFeed) {
  Fixture f;
  std::vector<radio::ScanRecord> scans;
  for (int i = 0; i < 10; ++i) {
    scans.push_back(scan_at({20, 20}, 1.0 * i));
  }
  scans.push_back(empty_scan(10.0));

  LocationService fed(f.locator);
  std::vector<ServiceFix> expected;
  for (const radio::ScanRecord& rec : scans) {
    expected.push_back(fed.on_scan(rec));
  }

  LocationService replayed(f.locator);
  const std::vector<ServiceFix> fixes = replayed.replay(scans);
  ASSERT_EQ(fixes.size(), scans.size());
  for (std::size_t i = 0; i < fixes.size(); ++i) {
    EXPECT_EQ(fixes[i].valid, expected[i].valid) << i;
    EXPECT_EQ(fixes[i].position, expected[i].position) << i;
    EXPECT_EQ(fixes[i].place, expected[i].place) << i;
  }
  EXPECT_EQ(replayed.scans_seen(), scans.size());
  EXPECT_EQ(fed.scans_seen(), scans.size());
}

// The serving layer's foundational assumption, pinned as a regression:
// locators are immutable after construction, so any number of services
// (or server shards) may share one instance across threads. The
// Locator query surface is const — and must actually be thread-safe,
// not just const-annotated. Run under TSan this test is the proof; in
// a plain build it still checks result integrity.
TEST(LocationService, DistinctServicesShareOneLocatorAcrossThreads) {
  static_assert(
      std::is_same_v<decltype(&Locator::locate),
                     LocationEstimate (Locator::*)(const Observation&)
                         const>,
      "Locator::locate must stay const: services and server shards "
      "share locators across threads");

  Fixture f;
  constexpr int kThreads = 2;
  constexpr int kScans = 50;
  std::vector<ServiceFix> last(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      LocationService svc(f.locator);  // distinct service, shared locator
      ServiceFix fix;
      for (int i = 0; i < kScans; ++i) {
        fix = svc.on_scan(scan_at({20, 20}, 1.0 * i));
      }
      last[static_cast<std::size_t>(t)] = fix;
    });
  }
  for (std::thread& t : threads) t.join();

  // Identical inputs through independent sessions over the shared
  // locator must give identical answers — cross-thread interference
  // through the locator would break this (and trip TSan).
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(last[static_cast<std::size_t>(t)].valid) << t;
    EXPECT_EQ(last[static_cast<std::size_t>(t)].position, last[0].position);
    EXPECT_EQ(last[static_cast<std::size_t>(t)].place, last[0].place);
  }
}

TEST(LocationService, UnboundServiceTakesPerScanLocator) {
  // The serve-path form: a session constructed without a locator is
  // fed one per scan (the shard's pinned snapshot). Feeding the same
  // locator each time must match the bound service exactly.
  Fixture f;
  LocationService bound(f.locator);
  LocationService unbound((LocationServiceConfig()));
  EXPECT_TRUE(bound.bound());
  EXPECT_FALSE(unbound.bound());
  for (int i = 0; i < 8; ++i) {
    const radio::ScanRecord rec = scan_at({20, 20}, 1.0 * i);
    const ServiceFix want = bound.on_scan(rec);
    const ServiceFix got = unbound.on_scan(f.locator, rec);
    EXPECT_EQ(got.valid, want.valid) << i;
    EXPECT_EQ(got.position, want.position) << i;
    EXPECT_EQ(got.place, want.place) << i;
  }
  // The locator-less entry points are unusable on an unbound service.
  EXPECT_THROW(unbound.on_scan(scan_at({20, 20})), std::logic_error);
}

TEST(LocationService, ScansSeenSurvivesReset) {
  Fixture f;
  LocationService svc(f.locator);
  for (int i = 0; i < 5; ++i) svc.on_scan(scan_at({20, 20}));
  svc.reset();
  EXPECT_EQ(svc.scans_seen(), 5u);
}

TEST(LocationService, ResetForgetsEverything) {
  Fixture f;
  LocationService svc(f.locator);
  for (int i = 0; i < 5; ++i) svc.on_scan(scan_at({20, 20}));
  svc.reset();
  EXPECT_FALSE(svc.current().valid);
  EXPECT_TRUE(svc.current().place.empty());
  EXPECT_EQ(svc.current().window_fill, 0u);
}

}  // namespace
}  // namespace loctk::core

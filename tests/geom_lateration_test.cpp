// Unit tests for least-squares multilateration and Gauss-Newton
// refinement (the §2.4 baseline the paper contrasts with §5.2).

#include "geom/lateration.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace loctk::geom {
namespace {

std::vector<RangeMeasurement> exact_ranges(
    Vec2 truth, const std::vector<Vec2>& anchors) {
  std::vector<RangeMeasurement> out;
  for (const Vec2 a : anchors) out.push_back({a, distance(truth, a)});
  return out;
}

TEST(LaterationLs, ExactRangesRecoverPosition) {
  const Vec2 truth{12.0, 7.0};
  const auto ranges =
      exact_ranges(truth, {{0, 0}, {50, 0}, {50, 40}, {0, 40}});
  const auto est = lateration_least_squares(ranges);
  ASSERT_TRUE(est.has_value());
  EXPECT_TRUE(almost_equal(*est, truth, 1e-9));
}

TEST(LaterationLs, ThreeAnchorsMinimum) {
  const Vec2 truth{3.0, 4.0};
  const auto ranges = exact_ranges(truth, {{0, 0}, {10, 0}, {0, 10}});
  const auto est = lateration_least_squares(ranges);
  ASSERT_TRUE(est.has_value());
  EXPECT_TRUE(almost_equal(*est, truth, 1e-9));
}

TEST(LaterationLs, TooFewAnchorsReturnsNullopt) {
  const Vec2 truth{3.0, 4.0};
  EXPECT_FALSE(
      lateration_least_squares(exact_ranges(truth, {{0, 0}, {10, 0}}))
          .has_value());
  EXPECT_FALSE(lateration_least_squares({}).has_value());
}

TEST(LaterationLs, CollinearAnchorsDegenerate) {
  const Vec2 truth{5.0, 5.0};
  const auto ranges =
      exact_ranges(truth, {{0, 0}, {5, 0}, {10, 0}, {20, 0}});
  // Anchors on a line cannot resolve the mirror ambiguity; the 2x2
  // normal system is singular.
  EXPECT_FALSE(lateration_least_squares(ranges).has_value());
}

TEST(GaussNewton, RefinesNoisyLinearSolution) {
  const Vec2 truth{23.0, 17.0};
  auto ranges = exact_ranges(truth, {{0, 0}, {50, 0}, {50, 40}, {0, 40}});
  // Corrupt the ranges with +-10% biases.
  ranges[0].distance *= 1.10;
  ranges[1].distance *= 0.92;
  ranges[2].distance *= 1.05;
  ranges[3].distance *= 0.95;

  const auto linear = lateration_least_squares(ranges);
  ASSERT_TRUE(linear.has_value());
  const Vec2 refined = lateration_gauss_newton(ranges, *linear);
  // The refinement must not be worse than its start in residual.
  EXPECT_LE(range_rms_residual(ranges, refined),
            range_rms_residual(ranges, *linear) + 1e-12);
  // And should still land in the right neighborhood.
  EXPECT_LT(distance(refined, truth), 6.0);
}

TEST(GaussNewton, ExactRangesConvergeTight) {
  const Vec2 truth{30.0, 10.0};
  const auto ranges =
      exact_ranges(truth, {{0, 0}, {50, 0}, {25, 40}});
  const Vec2 est = lateration_gauss_newton(ranges, {25.0, 20.0});
  EXPECT_TRUE(almost_equal(est, truth, 1e-6));
}

TEST(GaussNewton, StartingAtAnchorDoesNotExplode) {
  const Vec2 truth{5.0, 5.0};
  const auto ranges = exact_ranges(truth, {{0, 0}, {10, 0}, {0, 10}});
  const Vec2 est = lateration_gauss_newton(ranges, {0.0, 0.0});
  EXPECT_TRUE(is_finite(est));
}

TEST(RangeRmsResidual, ZeroAtTruthPositiveElsewhere) {
  const Vec2 truth{1.0, 2.0};
  const auto ranges = exact_ranges(truth, {{0, 0}, {10, 0}, {0, 10}});
  EXPECT_NEAR(range_rms_residual(ranges, truth), 0.0, 1e-12);
  EXPECT_GT(range_rms_residual(ranges, {5.0, 5.0}), 0.1);
  EXPECT_EQ(range_rms_residual({}, {0.0, 0.0}), 0.0);
}

TEST(ToCircles, Converts) {
  const auto circles =
      to_circles({{{1.0, 2.0}, 3.0}, {{4.0, 5.0}, 6.0}});
  ASSERT_EQ(circles.size(), 2u);
  EXPECT_EQ(circles[0], Circle({1.0, 2.0}, 3.0));
  EXPECT_EQ(circles[1], Circle({4.0, 5.0}, 6.0));
}

// Property sweep: exact recovery across positions in the paper house
// footprint with the paper AP layout.
class ExactRecovery : public ::testing::TestWithParam<int> {};

TEST_P(ExactRecovery, AnywhereInHouse) {
  const int i = GetParam();
  const Vec2 truth{5.0 + (i % 6) * 8.0, 4.0 + (i / 6) * 7.0};
  const auto ranges =
      exact_ranges(truth, {{2, 2}, {48, 2}, {48, 38}, {2, 38}});
  const auto linear = lateration_least_squares(ranges);
  ASSERT_TRUE(linear.has_value());
  EXPECT_TRUE(almost_equal(*linear, truth, 1e-7));
  const Vec2 refined = lateration_gauss_newton(ranges, *linear);
  EXPECT_TRUE(almost_equal(refined, truth, 1e-7));
}

INSTANTIATE_TEST_SUITE_P(HouseGrid, ExactRecovery, ::testing::Range(0, 30));

}  // namespace
}  // namespace loctk::geom

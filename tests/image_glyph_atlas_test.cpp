// The packed glyph atlas: golden-image equivalence against the legacy
// per-pixel font path, and property fuzzing of the rect packer.
//
// The atlas path exists purely for speed, so its whole contract is
// "same bytes as draw_text, faster". The golden tests assert exactly
// that — every printable glyph, every packed scale, clipping at all
// four raster edges — and the fuzz tests pin the packer invariants
// (in bounds, no overlaps, nothing silently dropped) that the golden
// tests stand on.

#include "image/glyph_atlas.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "image/font.hpp"
#include "stats/rng.hpp"

namespace loctk::image {
namespace {

/// Byte equality with a first-differing-pixel diagnostic.
::testing::AssertionResult same_raster(const Raster& a, const Raster& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.width() << "x" << a.height() << " vs "
           << b.width() << "x" << b.height();
  }
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      if (!(a.at(x, y) == b.at(x, y))) {
        return ::testing::AssertionFailure()
               << "first differing pixel at (" << x << ", " << y << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(GlyphAtlas, SharedAtlasCoversEveryPrintableAtEveryScale) {
  const GlyphAtlas& atlas = GlyphAtlas::shared();
  for (int scale = 1; scale <= kAtlasMaxScale; ++scale) {
    for (int code = 32; code <= 126; ++code) {
      const AtlasGlyph* glyph = atlas.find(static_cast<char>(code), scale);
      ASSERT_NE(glyph, nullptr) << "char " << code << " scale " << scale;
      EXPECT_EQ(glyph->w, kGlyphWidth * scale);
      EXPECT_EQ(glyph->h, kGlyphHeight * scale);
    }
    // Non-printables share the replacement-box slot.
    EXPECT_NE(atlas.find('\x01', scale), nullptr);
    EXPECT_NE(atlas.find('\t', scale), nullptr);
  }
  EXPECT_EQ(atlas.find('A', kAtlasMaxScale + 1), nullptr);
}

// The tentpole golden: draw_text_atlas must be pixel-identical to
// draw_text for every printable ASCII character at every packed scale.
TEST(GlyphAtlas, GoldenEveryPrintableCharEveryScale) {
  for (int scale = 1; scale <= kAtlasMaxScale; ++scale) {
    const int w = kGlyphAdvance * scale + 4;
    const int h = kGlyphHeight * scale + 4;
    for (int code = 32; code <= 126; ++code) {
      const std::string s(1, static_cast<char>(code));
      Raster legacy(w, h);
      Raster atlas(w, h);
      const int rl = draw_text(legacy, 2, 2, s, colors::kBlue, scale);
      const int ra = draw_text_atlas(atlas, 2, 2, s, colors::kBlue, scale);
      EXPECT_EQ(rl, ra) << "char " << code << " scale " << scale;
      EXPECT_TRUE(same_raster(legacy, atlas))
          << "char " << code << " scale " << scale;
    }
  }
}

// Clipping golden: text overhanging each of the four raster edges (and
// all four corners) must clip to the same bytes as the legacy path.
TEST(GlyphAtlas, GoldenClippingAtAllFourEdges) {
  const std::string text = "Wg#";
  for (int scale = 1; scale <= kAtlasMaxScale; ++scale) {
    const int tw = text_width(text, scale);
    const int th = text_height(text, scale);
    const int w = tw + 8;
    const int h = th + 8;
    const struct {
      const char* where;
      int x, y;
    } cases[] = {
        {"left", -tw / 2, 4},
        {"right", w - tw / 2, 4},
        {"top", 4, -th / 2},
        {"bottom", 4, h - th / 2},
        {"top-left", -tw / 2, -th / 2},
        {"top-right", w - tw / 2, -th / 2},
        {"bottom-left", -tw / 2, h - th / 2},
        {"bottom-right", w - tw / 2, h - th / 2},
        {"fully-off", -10 * tw, -10 * th},
    };
    for (const auto& c : cases) {
      Raster legacy(w, h);
      Raster atlas(w, h);
      draw_text(legacy, c.x, c.y, text, colors::kRed, scale);
      draw_text_atlas(atlas, c.x, c.y, text, colors::kRed, scale);
      EXPECT_TRUE(same_raster(legacy, atlas))
          << c.where << " scale " << scale;
    }
  }
}

TEST(GlyphAtlas, GoldenMultilineAndUnknownChars) {
  const std::string text = "AP-17\nB1F2\t\x7f!";
  Raster legacy(120, 60);
  Raster atlas(120, 60);
  const int rl = draw_text(legacy, 3, 5, text, colors::kBlack, 2);
  const int ra = draw_text_atlas(atlas, 3, 5, text, colors::kBlack, 2);
  EXPECT_EQ(rl, ra);
  EXPECT_TRUE(same_raster(legacy, atlas));
}

// Scales past kAtlasMaxScale fall back to the legacy path — still
// byte-identical, just unaccelerated.
TEST(GlyphAtlas, OversizeScaleFallsBackIdentically) {
  Raster legacy(200, 80);
  Raster atlas(200, 80);
  draw_text(legacy, 1, 1, "Zq", colors::kGreen, kAtlasMaxScale + 2);
  draw_text_atlas(atlas, 1, 1, "Zq", colors::kGreen, kAtlasMaxScale + 2);
  EXPECT_TRUE(same_raster(legacy, atlas));
}

TEST(GlyphAtlas, RejectsScalesPastMax) {
  EXPECT_THROW(GlyphAtlas({{'A', kAtlasMaxScale + 1}}), std::invalid_argument);
}

// --- Rect packer properties ---------------------------------------

TEST(RectPacker, RejectsOversizeAndDegenerate) {
  RectPacker packer(32, 32);
  EXPECT_FALSE(packer.insert(0, 5).has_value());
  EXPECT_FALSE(packer.insert(5, -1).has_value());
  EXPECT_FALSE(packer.insert(40, 5).has_value());
  EXPECT_TRUE(packer.insert(5, 5).has_value());
}

// Property fuzz: random rect batches into random pages. Every
// accepted placement must be in bounds and claim cells no other
// placement claims (checked with an occupancy grid).
TEST(RectPacker, FuzzNoOverlapsInBounds) {
  stats::Rng seeds(0xA71A5);
  for (int iter = 0; iter < 1000; ++iter) {
    stats::Rng rng = seeds.fork(static_cast<std::uint64_t>(iter));
    const int page_w = static_cast<int>(rng.uniform_int(16, 160));
    const int page_h = static_cast<int>(rng.uniform_int(16, 160));
    RectPacker packer(page_w, page_h);
    std::vector<std::uint8_t> occupied(
        static_cast<std::size_t>(page_w) * static_cast<std::size_t>(page_h),
        0);
    const int attempts = static_cast<int>(rng.uniform_int(1, 80));
    for (int a = 0; a < attempts; ++a) {
      const int w = static_cast<int>(rng.uniform_int(1, 40));
      const int h = static_cast<int>(rng.uniform_int(1, 40));
      const std::optional<PackedRect> rect = packer.insert(w, h);
      if (!rect) continue;
      ASSERT_EQ(rect->w, w);
      ASSERT_EQ(rect->h, h);
      ASSERT_GE(rect->x, 0);
      ASSERT_GE(rect->y, 0);
      ASSERT_LE(rect->x + rect->w, page_w) << "iter " << iter;
      ASSERT_LE(rect->y + rect->h, page_h) << "iter " << iter;
      for (int y = rect->y; y < rect->y + rect->h; ++y) {
        for (int x = rect->x; x < rect->x + rect->w; ++x) {
          std::uint8_t& cell =
              occupied[static_cast<std::size_t>(y) *
                           static_cast<std::size_t>(page_w) +
                       static_cast<std::size_t>(x)];
          ASSERT_EQ(cell, 0) << "overlap at (" << x << ", " << y
                             << ") iter " << iter;
          cell = 1;
        }
      }
    }
  }
}

// Property fuzz: atlases built from random glyph subsets. Every
// requested glyph must be present (no silent drops), placed in
// bounds, and disjoint from every other slot's placement.
TEST(GlyphAtlas, FuzzRandomSubsetsPackCompletely) {
  stats::Rng seeds(0x617A5);
  for (int iter = 0; iter < 1000; ++iter) {
    stats::Rng rng = seeds.fork(static_cast<std::uint64_t>(iter));
    std::vector<GlyphAtlas::GlyphKey> keys;
    const int count = static_cast<int>(rng.uniform_int(1, 64));
    for (int i = 0; i < count; ++i) {
      // Full byte range: non-printables alias to the replacement slot.
      keys.push_back({static_cast<char>(rng.uniform_int(0, 255)),
                      static_cast<int>(rng.uniform_int(1, kAtlasMaxScale))});
    }
    const GlyphAtlas atlas(keys);
    EXPECT_LE(atlas.glyph_count(), keys.size());

    // Present, in bounds.
    for (const GlyphAtlas::GlyphKey& key : keys) {
      const AtlasGlyph* glyph = atlas.find(key.ch, key.scale);
      ASSERT_NE(glyph, nullptr)
          << "dropped glyph " << static_cast<int>(key.ch) << " scale "
          << key.scale << " iter " << iter;
      ASSERT_LE(glyph->x + glyph->w, atlas.page_width()) << "iter " << iter;
      ASSERT_LE(glyph->y + glyph->h, atlas.page_height()) << "iter " << iter;
    }

    // Disjoint across distinct slots (occupancy grid over the page).
    std::vector<std::uint8_t> occupied(
        static_cast<std::size_t>(atlas.page_width()) *
            static_cast<std::size_t>(atlas.page_height()),
        0);
    std::vector<bool> seen(96 * kAtlasMaxScale, false);
    for (const GlyphAtlas::GlyphKey& key : keys) {
      const auto code = static_cast<unsigned char>(key.ch);
      const std::size_t slot =
          static_cast<std::size_t>(key.scale - 1) * 96 +
          ((code >= 32 && code <= 126) ? static_cast<std::size_t>(code - 32)
                                       : 95);
      if (seen[slot]) continue;
      seen[slot] = true;
      const AtlasGlyph* glyph = atlas.find(key.ch, key.scale);
      for (int y = glyph->y; y < glyph->y + glyph->h; ++y) {
        for (int x = glyph->x; x < glyph->x + glyph->w; ++x) {
          std::uint8_t& cell =
              occupied[static_cast<std::size_t>(y) *
                           static_cast<std::size_t>(atlas.page_width()) +
                       static_cast<std::size_t>(x)];
          ASSERT_EQ(cell, 0) << "slot overlap iter " << iter;
          cell = 1;
        }
      }
    }
  }
}

}  // namespace
}  // namespace loctk::image

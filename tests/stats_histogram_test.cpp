// Unit tests for histograms and empirical quantiles.

#include "stats/histogram.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

namespace loctk::stats {
namespace {

TEST(Histogram, BinEdgesAndIndices) {
  Histogram h(-100.0, -20.0, 40);  // 2 dB bins
  EXPECT_EQ(h.bin_count(), 40u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), -100.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), -98.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), -99.0);
  EXPECT_EQ(h.bin_index(-100.0), 0u);
  EXPECT_EQ(h.bin_index(-98.0), 1u);
  EXPECT_EQ(h.bin_index(-20.000001), 39u);
}

// Regression: bin_index used to cast a negative quotient straight to
// size_t for under-range x — UB that NDEBUG builds (the default) could
// reach via probability()/count() lookups. It must clamp instead.
TEST(Histogram, BinIndexClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.bin_index(-5.0), 0u);    // under-range -> first bin
  EXPECT_EQ(h.bin_index(0.0), 0u);     // lo edge
  EXPECT_EQ(h.bin_index(10.0), 9u);    // hi edge clamps to last bin
  EXPECT_EQ(h.bin_index(1e9), 9u);     // far over-range
  EXPECT_EQ(h.bin_index(std::nan("")), 0u);
}

// Regression: a 0-bin or inverted-range histogram must be a hard error
// in every build mode, not an assert that release strips.
TEST(Histogram, ConstructorRejectsDegenerateGeometry) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(10.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 5.0, 4), std::invalid_argument);
}

TEST(Histogram, CountsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(0.9);
  h.add(5.0);
  h.add(-1.0);   // underflow
  h.add(10.0);   // hi edge is exclusive -> overflow
  h.add(15.0);   // overflow
  h.add(std::nan(""));  // ignored entirely

  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, AddNWeights) {
  Histogram h(0.0, 10.0, 5);
  h.add_n(1.0, 7);
  EXPECT_EQ(h.count(0), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, MassSumsToOne) {
  Histogram h(0.0, 10.0, 5);
  for (int i = 0; i < 50; ++i) h.add(static_cast<double>(i % 10));
  double mass = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) mass += h.mass(b);
  EXPECT_NEAR(mass, 1.0, 1e-12);  // no out-of-range samples here
}

TEST(Histogram, ProbabilityNeverZeroWithLaplace) {
  Histogram h(0.0, 10.0, 10);
  h.add(1.0);
  EXPECT_GT(h.probability(9.5, 1.0), 0.0);  // unseen bin
  EXPECT_GT(h.probability(1.0, 1.0), h.probability(9.5, 1.0));
  // Out-of-support values get the pure pseudo-count mass.
  EXPECT_GT(h.probability(42.0, 1.0), 0.0);
}

TEST(Histogram, ProbabilityEmptyHistogram) {
  Histogram h(0.0, 10.0, 10);
  // No samples: every bin has the same smoothed probability 1/bins.
  EXPECT_NEAR(h.probability(5.0, 1.0), 0.1, 1e-12);
}

TEST(Histogram, ModeBin) {
  Histogram h(0.0, 10.0, 10);
  h.add(3.5);
  h.add(3.6);
  h.add(7.0);
  EXPECT_EQ(h.mode_bin(), 3u);
}

TEST(Quantile, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
}

TEST(Quantile, EndpointsAndInterpolation) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 25.0);
  // R-7: h = q*(n-1); q=0.25 -> h=0.75 -> 10 + 0.75*10.
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 17.5);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.5), 2.0);
}

// Regression: NaN elements broke std::sort's strict-weak-ordering
// contract (unspecified results); they must be filtered before the
// order statistic is taken.
TEST(Quantile, FiltersNaNElements) {
  const double nan = std::nan("");
  EXPECT_DOUBLE_EQ(quantile({1.0, nan, 3.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile({nan, 5.0, nan, nan}, 0.5), 5.0);
  EXPECT_TRUE(std::isnan(quantile({nan, nan}, 0.5)));
  EXPECT_TRUE(std::isnan(median({nan})));
}

#ifdef NDEBUG
// Regression (release builds only — debug keeps the assert): an empty
// input used to underflow values.size() - 1 to SIZE_MAX and index off
// the end of the vector; it must return NaN instead.
TEST(Quantile, EmptyInputReturnsNaN) {
  EXPECT_TRUE(std::isnan(quantile({}, 0.5)));
  EXPECT_TRUE(std::isnan(median({})));
}
#endif

// Property: quantile is monotone in q.
class QuantileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotone, NonDecreasingInQ) {
  const int i = GetParam();
  std::vector<double> v;
  for (int k = 0; k < 30; ++k) {
    v.push_back(std::sin(k * 0.9 + i) * 50.0);
  }
  double prev = quantile(v, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile(v, q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Samples, QuantileMonotone, ::testing::Range(0, 10));

}  // namespace
}  // namespace loctk::stats

// End-to-end integration tests: the full paper pipeline (Figure 1) on
// the simulated experiment house, through the real file formats.

#include <filesystem>

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "core/geometric.hpp"
#include "core/knn.hpp"
#include "core/pipeline.hpp"
#include "core/probabilistic.hpp"
#include "floorplan/compositor.hpp"
#include "floorplan/processor.hpp"
#include "image/codec_bmp.hpp"
#include "traindb/codec.hpp"
#include "traindb/generator.hpp"
#include "wiscan/survey.hpp"

namespace loctk {
namespace {

namespace fs = std::filesystem;

class PaperPipeline : public ::testing::Test {
 protected:
  PaperPipeline() : testbed_(radio::make_paper_house()) {}

  core::Testbed testbed_;
};

TEST_F(PaperPipeline, Phase1SurveyThroughFilesToDatabase) {
  const auto dir = fs::temp_directory_path() / "loctk_integration_p1";
  fs::remove_all(dir);

  // Steps 1-3: survey the 10-ft training grid into wi-scan files.
  const auto map =
      core::make_training_grid(testbed_.environment().footprint(), 10.0);
  radio::Scanner scanner = testbed_.make_scanner(101);
  wiscan::SurveyConfig survey_cfg;
  survey_cfg.scans_per_location = 30;
  wiscan::SurveyCampaign campaign(scanner, survey_cfg);
  campaign.run_to_directory(map, dir / "scans");
  map.write(dir / "house.locmap");

  // Step 4: the Training Database Generator, from the file system.
  traindb::GeneratorReport report;
  const traindb::TrainingDatabase db = traindb::generate_database_from_path(
      dir / "scans", dir / "house.locmap", {}, &report);
  EXPECT_EQ(db.size(), 12u);  // interior 10-ft grid of the 50x40 house
  EXPECT_TRUE(report.unmapped_locations.empty());
  EXPECT_EQ(db.bssid_universe().size(), 4u);

  // Every <point, AP> pair carries plausible statistics.
  for (const auto& tp : db.points()) {
    for (const auto& s : tp.per_ap) {
      EXPECT_LT(s.mean_dbm, -20.0);
      EXPECT_GT(s.mean_dbm, -95.0);
      EXPECT_GT(s.stddev_db, 0.5);   // the channel is noisy
      EXPECT_LT(s.stddev_db, 12.0);
    }
  }

  // The compressed database round-trips through disk.
  traindb::write_database(dir / "house.ltdb", db);
  EXPECT_EQ(traindb::read_database(dir / "house.ltdb"), db);
  fs::remove_all(dir);
}

TEST_F(PaperPipeline, Phase2LocalizationAccuracyBands) {
  const auto map =
      core::make_training_grid(testbed_.environment().footprint(), 10.0);
  const traindb::TrainingDatabase db = testbed_.train(map, 60, 202);
  const auto truths = core::make_scattered_test_points(
      testbed_.environment().footprint(), 13);
  const auto observations = testbed_.observe(truths, 60, 303);

  // Probabilistic (§5.1): most estimates land in the correct cell and
  // mean error stays within a couple of grid cells.
  const core::ProbabilisticLocator prob(db);
  const auto prob_result = core::evaluate(prob, db, truths, observations);
  EXPECT_EQ(prob_result.count(), 13u);
  EXPECT_EQ(prob_result.valid_count(), 13u);
  EXPECT_GE(prob_result.valid_estimation_rate(), 0.4);
  EXPECT_LT(prob_result.mean_error_ft(), 15.0);

  // Geometric (§5.2): coarser, but the paper-band ~10-20 ft.
  const core::GeometricLocator geo(db, testbed_.environment());
  const auto geo_result = core::evaluate(geo, db, truths, observations);
  EXPECT_EQ(geo_result.valid_count(), 13u);
  EXPECT_LT(geo_result.mean_error_ft(), 25.0);
  EXPECT_GT(geo_result.mean_error_ft(), 3.0);

  // Fingerprinting beats naive ranging on this site (the reason
  // RADAR-style systems exist).
  EXPECT_LE(prob_result.mean_error_ft(),
            geo_result.mean_error_ft() + 2.0);
}

TEST_F(PaperPipeline, ObservationsReproducibleBySeed) {
  const auto truths = core::make_scattered_test_points(
      testbed_.environment().footprint(), 3);
  const auto a = testbed_.observe(truths, 10, 42);
  const auto b = testbed_.observe(truths, 10, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  const auto c = testbed_.observe(truths, 10, 43);
  EXPECT_NE(a[0], c[0]);
}

TEST_F(PaperPipeline, CompositorRendersEvaluation) {
  const auto dir = fs::temp_directory_path() / "loctk_integration_fig3";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const auto map =
      core::make_training_grid(testbed_.environment().footprint(), 10.0);
  const traindb::TrainingDatabase db = testbed_.train(map, 20, 404);
  const auto truths = core::make_scattered_test_points(
      testbed_.environment().footprint(), 5);
  const auto observations = testbed_.observe(truths, 20, 505);
  const core::ProbabilisticLocator prob(db);

  std::vector<floorplan::EvaluatedPoint> points;
  for (std::size_t i = 0; i < truths.size(); ++i) {
    const auto est = prob.locate(observations[i]);
    ASSERT_TRUE(est.valid);
    points.push_back({truths[i], est.position, "t" + std::to_string(i)});
  }
  const floorplan::FloorPlan plan =
      floorplan::render_environment(testbed_.environment());
  const image::Raster img = floorplan::composite_evaluation(plan, points);
  image::write_image(dir / "fig3.ppm", img);

  const image::Raster back = image::read_image(dir / "fig3.ppm");
  EXPECT_EQ(back, img);
  EXPECT_GT(img.count_pixels(image::colors::kGreen), 10u);
  EXPECT_GT(img.count_pixels(image::colors::kRed), 10u);
  fs::remove_all(dir);
}

TEST_F(PaperPipeline, ArchiveSurveyPathMatchesDirectoryPath) {
  const auto dir = fs::temp_directory_path() / "loctk_integration_lar";
  fs::remove_all(dir);
  fs::create_directories(dir);

  wiscan::LocationMap map;
  map.add("a", {10.0, 10.0});
  map.add("b", {30.0, 20.0});
  map.write(dir / "m.locmap");

  radio::Scanner s1 = testbed_.make_scanner(777);
  wiscan::SurveyConfig cfg;
  cfg.scans_per_location = 10;
  wiscan::SurveyCampaign c1(s1, cfg);
  c1.run_to_directory(map, dir / "scans");

  radio::Scanner s2 = testbed_.make_scanner(777);
  wiscan::SurveyCampaign c2(s2, cfg);
  const wiscan::Archive ar = c2.run_to_archive(map);
  ar.write(dir / "scans.lar");

  const auto db_dir = traindb::generate_database_from_path(
      dir / "scans", dir / "m.locmap");
  const auto db_lar = traindb::generate_database_from_path(
      dir / "scans.lar", dir / "m.locmap");
  EXPECT_EQ(db_dir, db_lar);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace loctk

// Unit tests for the wi-scan text format: writer + tolerant parser.

#include "wiscan/format.hpp"

#include <fstream>

#include <gtest/gtest.h>

namespace loctk::wiscan {
namespace {

WiScanFile sample_file() {
  WiScanFile f;
  f.location = "kitchen";
  f.entries = {
      {0.0, "00:17:AB:00:00:00", "loctk", 1, -54.0},
      {0.0, "00:17:AB:00:00:01", "loctk", 6, -61.0},
      {1.0, "00:17:AB:00:00:00", "loctk", 1, -55.5},
  };
  return f;
}

TEST(Format, RoundTripExact) {
  const WiScanFile f = sample_file();
  EXPECT_EQ(decode_wiscan(encode_wiscan(f)), f);
}

TEST(Format, LocationHeaderWins) {
  const WiScanFile parsed =
      decode_wiscan("# location: lab-3\nbssid=aa rssi=-50\n", "fallback");
  EXPECT_EQ(parsed.location, "lab-3");
}

TEST(Format, FallbackLocationUsedWithoutHeader) {
  const WiScanFile parsed =
      decode_wiscan("bssid=aa rssi=-50\n", "fallback");
  EXPECT_EQ(parsed.location, "fallback");
}

TEST(Format, ToleratesCommentsBlanksAndCrlf) {
  const std::string text =
      "# wi-scan v1\r\n"
      "\r\n"
      "   \t\n"
      "# a comment\n"
      "bssid=aa rssi=-50\r\n"
      "\n"
      "bssid=bb rssi=-60\n";
  const WiScanFile f = decode_wiscan(text);
  ASSERT_EQ(f.entries.size(), 2u);
  EXPECT_EQ(f.entries[0].bssid, "aa");
  EXPECT_EQ(f.entries[1].rssi_dbm, -60.0);
}

TEST(Format, KeysInAnyOrderUnknownKeysIgnored) {
  const WiScanFile f = decode_wiscan(
      "rssi=-44 channel=11 future_field=xyz bssid=cc time=3.5 ssid=net\n");
  ASSERT_EQ(f.entries.size(), 1u);
  const WiScanEntry& e = f.entries[0];
  EXPECT_EQ(e.bssid, "cc");
  EXPECT_EQ(e.rssi_dbm, -44.0);
  EXPECT_EQ(e.channel, 11);
  EXPECT_EQ(e.ssid, "net");
  EXPECT_EQ(e.timestamp_s, 3.5);
}

TEST(Format, TimeDefaultsToPreviousRow) {
  const WiScanFile f = decode_wiscan(
      "time=2.0 bssid=aa rssi=-50\n"
      "bssid=bb rssi=-51\n"          // inherits 2.0
      "time=3.0 bssid=aa rssi=-52\n");
  ASSERT_EQ(f.entries.size(), 3u);
  EXPECT_EQ(f.entries[1].timestamp_s, 2.0);
  EXPECT_EQ(f.entries[2].timestamp_s, 3.0);
}

TEST(Format, MalformedRowsThrow) {
  EXPECT_THROW(decode_wiscan("rssi=-50\n"), FormatError);        // no bssid
  EXPECT_THROW(decode_wiscan("bssid=aa\n"), FormatError);        // no rssi
  EXPECT_THROW(decode_wiscan("bssid=aa rssi=abc\n"), FormatError);
  EXPECT_THROW(decode_wiscan("bssid=aa rssi=-50 naked\n"), FormatError);
  EXPECT_THROW(decode_wiscan("bssid=aa rssi=-50x\n"), FormatError);
  EXPECT_THROW(decode_wiscan("=v bssid=aa rssi=-50\n"), FormatError);
}

TEST(Format, ScanCountDistinctTimestamps) {
  WiScanFile f;
  f.entries = {{0.0, "a", "", 0, -50.0},
               {0.0, "b", "", 0, -51.0},
               {1.0, "a", "", 0, -52.0},
               {2.0, "a", "", 0, -53.0}};
  EXPECT_EQ(f.scan_count(), 3u);
  EXPECT_EQ(WiScanFile{}.scan_count(), 0u);
}

TEST(Format, BssidsFirstHeardOrder) {
  WiScanFile f;
  f.entries = {{0.0, "bb", "", 0, -50.0},
               {0.0, "aa", "", 0, -51.0},
               {1.0, "bb", "", 0, -52.0}};
  const auto ids = f.bssids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "bb");
  EXPECT_EQ(ids[1], "aa");
}

TEST(Format, FileRoundTripThroughDisk) {
  const auto dir =
      std::filesystem::temp_directory_path() / "loctk_wiscan_fmt";
  std::filesystem::create_directories(dir);
  const WiScanFile f = sample_file();
  const auto path = dir / "kitchen.wiscan";
  write_wiscan(path, f);
  EXPECT_EQ(read_wiscan(path), f);
  std::filesystem::remove_all(dir);
}

TEST(Format, ReadFromDiskUsesStemWhenNoHeader) {
  const auto dir =
      std::filesystem::temp_directory_path() / "loctk_wiscan_stem";
  std::filesystem::create_directories(dir);
  const auto path = dir / "Room D22.wiscan";
  {
    std::ofstream os(path);
    os << "bssid=aa rssi=-50\n";
  }
  EXPECT_EQ(read_wiscan(path).location, "room-d22");
  std::filesystem::remove_all(dir);
}

TEST(SanitizeLocationName, Rules) {
  EXPECT_EQ(sanitize_location_name("Room D22"), "room-d22");
  EXPECT_EQ(sanitize_location_name("Center of Hallway"),
            "center-of-hallway");
  EXPECT_EQ(sanitize_location_name("a/b\\c_d"), "a-b-c-d");
  EXPECT_EQ(sanitize_location_name("trailing  "), "trailing");
  EXPECT_EQ(sanitize_location_name("(parens!)"), "parens");
  EXPECT_EQ(sanitize_location_name(""), "");
}

TEST(EntriesFromScans, FlattensSimulatorOutput) {
  std::vector<radio::ScanRecord> scans(2);
  scans[0].timestamp_s = 0.0;
  scans[0].samples = {{"aa", -50.0, 1}, {"bb", -60.0, 6}};
  scans[1].timestamp_s = 1.0;
  scans[1].samples = {{"aa", -51.0, 1}};
  const auto entries = entries_from_scans(scans, "net");
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].bssid, "aa");
  EXPECT_EQ(entries[0].ssid, "net");
  EXPECT_EQ(entries[1].channel, 6);
  EXPECT_EQ(entries[2].timestamp_s, 1.0);
}

}  // namespace
}  // namespace loctk::wiscan

// Direct unit tests for parallel_for / parallel_reduce edge behavior:
// empty and single-element ranges, exception propagation, grain
// handling, and re-entry from a pool worker thread (the pattern the
// fleet soak driver relies on when a per-device body itself fans out).

#include "concurrency/parallel_for.hpp"
#include "concurrency/thread_pool.hpp"

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace loctk::concurrency {
namespace {

TEST(ParallelFor, EmptyRangeNeverCallsBody) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for(pool, 0, 0, [&](std::size_t) { ++calls; });
  parallel_for(pool, 7, 7, [&](std::size_t) { ++calls; });
  // begin > end is an empty range too, not a wraparound.
  parallel_for(pool, 9, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingleElementRange) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::atomic<std::size_t> seen{0};
  parallel_for(pool, 41, 42, [&](std::size_t i) {
    ++calls;
    seen = i;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen.load(), 41u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, 0, kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ExceptionFromBodyPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("body failed");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ExceptionDoesNotPoisonThePool) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 10,
                            [](std::size_t) {
                              throw std::runtime_error("every chunk throws");
                            }),
               std::runtime_error);
  // The pool still runs later work and recorded no uncaught errors
  // (the futures captured every exception).
  EXPECT_EQ(pool.uncaught_task_errors(), 0u);
  std::atomic<int> calls{0};
  parallel_for(pool, 0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 8);
}

TEST(ParallelFor, GrainLargerThanRangeRunsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  parallel_for(pool, 0, 10, [&](std::size_t) { ++calls; },
               /*grain=*/1000);
  EXPECT_EQ(calls.load(), 10);
}

TEST(ParallelFor, NestedFromPoolThreadCompletes) {
  // A body running *on* a pool worker that starts another parallel_for
  // on the same pool must not deadlock. With a single outer chunk
  // (large grain) on a >= 2-thread pool, one worker blocks in the
  // inner loop's future waits while the remaining workers drain the
  // inner chunks.
  ThreadPool pool(4);
  std::atomic<int> inner_calls{0};
  parallel_for(
      pool, 0, 1,
      [&](std::size_t) {
        parallel_for(pool, 0, 64, [&](std::size_t) { ++inner_calls; });
      },
      /*grain=*/8);
  EXPECT_EQ(inner_calls.load(), 64);
}

TEST(ParallelFor, NestedAcrossPoolsCompletes) {
  // Cross-pool nesting (outer bodies fan out onto a different pool)
  // has no shared queue at all and must always complete.
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> calls{0};
  parallel_for(outer, 0, 4, [&](std::size_t) {
    parallel_for(inner, 0, 16, [&](std::size_t) { ++calls; });
  });
  EXPECT_EQ(calls.load(), 4 * 16);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  const int total = parallel_reduce(
      pool, 5, 5, 17, [](int& acc, std::size_t i) { acc += static_cast<int>(i); },
      [](int& into, int part) { into += part; });
  EXPECT_EQ(total, 17);
}

TEST(ParallelReduce, SumMatchesSerialAndIsThreadCountInvariant) {
  constexpr std::size_t kN = 10000;
  long expected = 0;
  for (std::size_t i = 0; i < kN; ++i) expected += static_cast<long>(i);

  for (const std::size_t threads : {1u, 2u, 7u}) {
    ThreadPool pool(threads);
    const long total = parallel_reduce(
        pool, 0, kN, 0L,
        [](long& acc, std::size_t i) { acc += static_cast<long>(i); },
        [](long& into, long part) { into += part; });
    EXPECT_EQ(total, expected) << threads << " threads";
  }
}

TEST(ParallelReduce, ExceptionFromAccumulatePropagates) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_reduce(
                   pool, 0, 100, 0,
                   [](int& acc, std::size_t i) {
                     if (i == 63) throw std::runtime_error("accumulate failed");
                     acc += 1;
                   },
                   [](int& into, int part) { into += part; }),
               std::runtime_error);
}

}  // namespace
}  // namespace loctk::concurrency

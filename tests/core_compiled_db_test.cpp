// Equivalence tests for the compiled scoring engine: the dense
// kernels behind score_all()/locate() must reproduce the string-keyed
// reference implementations (log_likelihood, signal_distance,
// ssd_distance) bit-for-bit up to FP reassociation (|Δ| < 1e-9),
// across randomized databases and observations with varying AP
// overlap, rogue APs, and the min_common_aps cutoff path.

#include "core/compiled_db.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "concurrency/thread_pool.hpp"
#include "core/histogram_locator.hpp"
#include "core/knn.hpp"
#include "core/location_service.hpp"
#include "core/probabilistic.hpp"
#include "core/ssd_locator.hpp"
#include "stats/rng.hpp"
#include "test_fixtures.hpp"

namespace loctk::core {
namespace {

constexpr double kTol = 1e-9;

std::string bssid_name(int i) {
  return "aa:bb:" + std::to_string(i / 10) + std::to_string(i % 10);
}

// Random database: `universe_n` BSSIDs, each point trains a random
// subset, with raw samples retained for the histogram locator.
traindb::TrainingDatabase random_db(stats::Rng& rng, int points_n,
                                    int universe_n) {
  traindb::TrainingDatabase db;
  for (int p = 0; p < points_n; ++p) {
    traindb::TrainingPoint tp;
    tp.location = "pt" + std::to_string(p);
    tp.position = {rng.uniform(0.0, 120.0), rng.uniform(0.0, 80.0)};
    for (int a = 0; a < universe_n; ++a) {
      // Keep at least one AP per point so add_point always has a row.
      if (a > 0 && rng.bernoulli(0.35)) continue;
      traindb::ApStatistics s;
      s.bssid = bssid_name(a);
      s.mean_dbm = rng.uniform(-95.0, -35.0);
      s.stddev_db = rng.uniform(0.0, 6.0);
      s.scan_count = 90;
      s.sample_count =
          static_cast<std::uint32_t>(rng.uniform_int(1, 90));
      const int samples = static_cast<int>(rng.uniform_int(3, 12));
      for (int k = 0; k < samples; ++k) {
        s.samples_centi_dbm.push_back(static_cast<std::int32_t>(
            std::lround(rng.uniform(-110.0, -20.0) * 100.0)));
      }
      tp.per_ap.push_back(std::move(s));
    }
    db.add_point(std::move(tp));
  }
  return db;
}

// Random observation: a subset of the universe plus a few rogue APs
// never trained anywhere, multiple raw readings per AP.
Observation random_obs(stats::Rng& rng, int universe_n) {
  std::vector<radio::ScanRecord> scans(1);
  for (int a = 0; a < universe_n; ++a) {
    if (rng.bernoulli(0.4)) continue;
    const int readings = static_cast<int>(rng.uniform_int(1, 5));
    for (int k = 0; k < readings; ++k) {
      scans[0].samples.push_back(
          {bssid_name(a), rng.uniform(-105.0, -25.0), 1});
    }
  }
  const int rogues = static_cast<int>(rng.uniform_int(0, 2));
  for (int r = 0; r < rogues; ++r) {
    scans[0].samples.push_back(
        {"rogue:" + std::to_string(r), rng.uniform(-90.0, -40.0), 1});
  }
  return Observation::from_scans(scans);
}

TEST(CompiledDatabase, InternsUniverseAndRows) {
  const auto db = testing::make_fixture_db();
  const CompiledDatabase cdb(db);
  ASSERT_EQ(cdb.point_count(), db.size());
  ASSERT_EQ(cdb.universe_size(), db.bssid_universe().size());
  for (std::size_t p = 0; p < db.size(); ++p) {
    const traindb::TrainingPoint& tp = db.points()[p];
    EXPECT_EQ(cdb.trained_count(p), static_cast<int>(tp.per_ap.size()));
    for (const traindb::ApStatistics& s : tp.per_ap) {
      const auto slot = cdb.slot_of(s.bssid);
      ASSERT_TRUE(slot.has_value());
      EXPECT_EQ(cdb.mean_row(p)[*slot], s.mean_dbm);
      EXPECT_EQ(cdb.stddev_row(p)[*slot], s.stddev_db);
      EXPECT_EQ(cdb.mask_row(p)[*slot], 1.0);
    }
  }
  EXPECT_FALSE(cdb.slot_of("nope").has_value());
}

// v2 kernel invariant: every SoA matrix row (and every compiled
// query vector) is 64-byte aligned with a row stride that is a
// multiple of 8 doubles, and the stride pad carries exact zeros —
// the SIMD kernels rely on this for unmasked aligned loads.
TEST(CompiledDatabase, RowsAre64ByteAlignedWithPaddedStride) {
  stats::Rng rng(7100);
  for (const int universe_n : {1, 3, 7, 8, 9, 16}) {
    const auto db = random_db(rng, 9, universe_n);
    const CompiledDatabase cdb(db);
    EXPECT_EQ(cdb.row_stride() % simd::kStrideDoubles, 0u);
    EXPECT_GE(cdb.row_stride(), cdb.universe_size());
    EXPECT_LT(cdb.row_stride(), cdb.universe_size() + simd::kStrideDoubles);
    for (std::size_t p = 0; p < cdb.point_count(); ++p) {
      EXPECT_TRUE(simd::is_aligned(cdb.mean_row(p)));
      EXPECT_TRUE(simd::is_aligned(cdb.stddev_row(p)));
      EXPECT_TRUE(simd::is_aligned(cdb.mask_row(p)));
      EXPECT_TRUE(simd::is_aligned(cdb.weight_row(p)));
      for (std::size_t u = cdb.universe_size(); u < cdb.row_stride(); ++u) {
        EXPECT_EQ(cdb.mean_row(p)[u], 0.0);
        EXPECT_EQ(cdb.mask_row(p)[u], 0.0);
      }
    }
    const Observation obs = random_obs(rng, universe_n);
    const CompiledObservation q = cdb.compile_observation(obs);
    ASSERT_EQ(q.mean_dbm.size(), cdb.row_stride());
    ASSERT_EQ(q.present.size(), cdb.row_stride());
    EXPECT_TRUE(simd::is_aligned(q.mean_dbm.data()));
    EXPECT_TRUE(simd::is_aligned(q.present.data()));
    for (std::size_t u = cdb.universe_size(); u < cdb.row_stride(); ++u) {
      EXPECT_EQ(q.present[u], 0.0);
      EXPECT_EQ(q.mean_dbm[u], 0.0);
    }
  }
}

TEST(CompiledDatabase, CompileObservationSplitsUniverseAndRogues) {
  const auto db = testing::make_fixture_db();
  const CompiledDatabase cdb(db);
  std::vector<radio::ScanRecord> scans(1);
  scans[0].samples.push_back({testing::fixture_bssids()[1], -55.0, 1});
  scans[0].samples.push_back({"zz:rogue", -60.0, 1});
  const Observation obs = Observation::from_scans(scans);
  const CompiledObservation q = cdb.compile_observation(obs);
  EXPECT_EQ(q.total_aps, 2u);
  EXPECT_EQ(q.in_universe(), 1);
  EXPECT_EQ(q.outside_universe, 1);
  ASSERT_EQ(q.slots.size(), 1u);
  EXPECT_EQ(q.present[q.slots[0]], 1.0);
  EXPECT_EQ(q.mean_dbm[q.slots[0]], -55.0);
}

TEST(CompiledEquivalence, ProbabilisticScoreAllMatchesReference) {
  stats::Rng rng(7001);
  for (int trial = 0; trial < 25; ++trial) {
    const int universe_n = static_cast<int>(rng.uniform_int(3, 10));
    const auto db =
        random_db(rng, static_cast<int>(rng.uniform_int(4, 30)), universe_n);
    ProbabilisticConfig cfg;
    cfg.min_common_aps = static_cast<int>(rng.uniform_int(1, 3));
    cfg.use_pooled_sigma = rng.bernoulli(0.5);
    const ProbabilisticLocator locator(db, cfg);
    for (int o = 0; o < 4; ++o) {
      const Observation obs = random_obs(rng, universe_n);
      const auto scores = locator.score_all(obs);
      ASSERT_EQ(scores.size(), db.size());
      for (std::size_t p = 0; p < db.size(); ++p) {
        int common = 0;
        const double ref =
            locator.log_likelihood(obs, db.points()[p], &common);
        EXPECT_EQ(scores[p].common_aps, common);
        if (common < cfg.min_common_aps) {
          EXPECT_EQ(scores[p].log_likelihood,
                    -std::numeric_limits<double>::infinity());
        } else {
          EXPECT_NEAR(scores[p].log_likelihood, ref, kTol)
              << "trial " << trial << " point " << p;
        }
      }
      // The argmax must agree up to reference-path ties.
      const LocationEstimate est = locator.locate(obs);
      double best_ref = -std::numeric_limits<double>::infinity();
      for (std::size_t p = 0; p < db.size(); ++p) {
        int common = 0;
        const double ref =
            locator.log_likelihood(obs, db.points()[p], &common);
        if (common >= cfg.min_common_aps) best_ref = std::max(best_ref, ref);
      }
      if (!est.valid) {
        EXPECT_EQ(best_ref, -std::numeric_limits<double>::infinity());
      } else {
        EXPECT_NEAR(est.score, best_ref, kTol);
      }
    }
  }
}

TEST(CompiledEquivalence, KnnLocateMatchesReferenceDistances) {
  stats::Rng rng(7002);
  for (int trial = 0; trial < 25; ++trial) {
    const int universe_n = static_cast<int>(rng.uniform_int(3, 10));
    const auto db =
        random_db(rng, static_cast<int>(rng.uniform_int(4, 30)), universe_n);
    KnnConfig cfg;
    cfg.k = static_cast<int>(rng.uniform_int(1, 5));
    const KnnLocator locator(db, cfg);
    const Observation obs = random_obs(rng, universe_n);
    if (obs.empty()) continue;

    // Reference: brute-force neighbor list through signal_distance.
    struct Neighbor {
      const traindb::TrainingPoint* point;
      double distance;
    };
    std::vector<Neighbor> ref;
    for (const traindb::TrainingPoint& p : db.points()) {
      ref.push_back({&p, locator.signal_distance(obs, p)});
    }
    std::stable_sort(ref.begin(), ref.end(),
                     [](const Neighbor& a, const Neighbor& b) {
                       return a.distance < b.distance;
                     });
    const std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(cfg.k), ref.size());
    geom::Vec2 weighted;
    double wsum = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double w = 1.0 / (ref[i].distance + cfg.weighting_epsilon);
      weighted += ref[i].point->position * w;
      wsum += w;
    }
    const LocationEstimate est = locator.locate(obs);
    ASSERT_TRUE(est.valid);
    EXPECT_NEAR(est.score, -ref.front().distance, kTol) << trial;
    EXPECT_NEAR(est.position.x, (weighted / wsum).x, 1e-6) << trial;
    EXPECT_NEAR(est.position.y, (weighted / wsum).y, 1e-6) << trial;
  }
}

TEST(CompiledEquivalence, SsdLocateMatchesReferenceIncludingCutoff) {
  stats::Rng rng(7003);
  int cutoff_seen = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const int universe_n = static_cast<int>(rng.uniform_int(3, 10));
    const auto db =
        random_db(rng, static_cast<int>(rng.uniform_int(4, 25)), universe_n);
    SsdConfig cfg;
    cfg.min_common_aps = static_cast<int>(rng.uniform_int(2, 4));
    const SsdLocator locator(db, cfg);
    const Observation obs = random_obs(rng, universe_n);
    if (obs.empty()) continue;

    std::vector<double> ref;
    for (const traindb::TrainingPoint& p : db.points()) {
      ref.push_back(locator.ssd_distance(obs, p));
    }
    const double best_ref = *std::min_element(ref.begin(), ref.end());
    const LocationEstimate est = locator.locate(obs);
    if (!std::isfinite(best_ref)) {
      EXPECT_FALSE(est.valid) << trial;
      ++cutoff_seen;
    } else {
      ASSERT_TRUE(est.valid) << trial;
      EXPECT_NEAR(est.score, -best_ref, kTol) << trial;
    }
  }
  // The randomized corpus must actually exercise the cutoff path.
  EXPECT_GT(cutoff_seen, 0);
}

TEST(CompiledEquivalence, HistogramLocateMatchesReference) {
  stats::Rng rng(7004);
  for (int trial = 0; trial < 15; ++trial) {
    const int universe_n = static_cast<int>(rng.uniform_int(3, 8));
    const auto db =
        random_db(rng, static_cast<int>(rng.uniform_int(4, 15)), universe_n);
    const HistogramLocator locator(db);
    const Observation obs = random_obs(rng, universe_n);
    if (obs.empty()) continue;

    double best_ref = -std::numeric_limits<double>::infinity();
    std::size_t best_idx = 0;
    for (std::size_t p = 0; p < db.size(); ++p) {
      const double ll = locator.log_likelihood(obs, p);
      if (ll > best_ref) {
        best_ref = ll;
        best_idx = p;
      }
    }
    const LocationEstimate est = locator.locate(obs);
    ASSERT_TRUE(est.valid) << trial;
    EXPECT_NEAR(est.score, best_ref, kTol) << trial;
    EXPECT_EQ(est.location_name, db.points()[best_idx].location) << trial;
  }
}

// Satellite regression: the missing-AP penalty is applied once per AP
// present on exactly one side — never double-counted by the merge.
TEST(CompiledEquivalence, LogLikelihoodPenaltyCountPinned) {
  traindb::TrainingDatabase db;
  traindb::TrainingPoint tp;
  tp.location = "only";
  for (const char* b : {"ap:a", "ap:b", "ap:c"}) {
    traindb::ApStatistics s;
    s.bssid = b;
    s.mean_dbm = -60.0;
    s.stddev_db = 2.0;
    s.sample_count = 90;
    s.scan_count = 90;
    tp.per_ap.push_back(std::move(s));
  }
  db.add_point(std::move(tp));

  // Observed: b, c, d, e -> common = {b, c}; penalized = a (trained
  // only) + d, e (observed only) = 3.
  std::vector<radio::ScanRecord> scans(1);
  for (const char* b : {"ap:b", "ap:c", "ap:d", "ap:e"}) {
    scans[0].samples.push_back({b, -58.0, 1});
  }
  const Observation obs = Observation::from_scans(scans);

  const ProbabilisticLocator locator(db);
  int common = 0, penalized = 0;
  const double ll =
      locator.log_likelihood(obs, db.points()[0], &common, &penalized);
  EXPECT_EQ(common, 2);
  EXPECT_EQ(penalized, 3);

  // Fully disjoint sides: every AP on both lists is penalized.
  std::vector<radio::ScanRecord> disjoint(1);
  disjoint[0].samples.push_back({"zz:1", -50.0, 1});
  const Observation dobs = Observation::from_scans(disjoint);
  const double dll =
      locator.log_likelihood(dobs, db.points()[0], &common, &penalized);
  EXPECT_EQ(common, 0);
  EXPECT_EQ(penalized, 4);
  EXPECT_NEAR(dll, 4 * locator.config().missing_ap_log_penalty, kTol);

  // The compiled kernel applies the same penalty count.
  const auto scores = locator.score_all(obs);
  EXPECT_NEAR(scores[0].log_likelihood, ll, kTol);
}

TEST(CompiledBatch, LocateBatchMatchesSerialAndParallel) {
  const auto db = testing::make_fixture_db();
  const auto compiled = CompiledDatabase::compile(db);
  const ProbabilisticLocator locator(compiled);
  std::vector<Observation> batch;
  stats::Rng rng(7005);
  for (int i = 0; i < 24; ++i) {
    batch.push_back(testing::fixture_observation(
        {rng.uniform(0.0, 40.0), rng.uniform(0.0, 40.0)}));
  }
  const auto serial = locator.locate_batch(batch);
  ASSERT_EQ(serial.size(), batch.size());
  concurrency::ThreadPool pool(4);
  const auto parallel = locator.locate_batch(batch, &pool);
  ASSERT_EQ(parallel.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const LocationEstimate one = locator.locate(batch[i]);
    EXPECT_EQ(serial[i].location_name, one.location_name) << i;
    EXPECT_EQ(serial[i].score, one.score) << i;
    EXPECT_EQ(parallel[i].location_name, one.location_name) << i;
    EXPECT_EQ(parallel[i].score, one.score) << i;
  }

  const auto per_point = locator.score_batch(batch, &pool);
  ASSERT_EQ(per_point.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto direct = locator.score_all(batch[i]);
    ASSERT_EQ(per_point[i].size(), direct.size());
    for (std::size_t p = 0; p < direct.size(); ++p) {
      EXPECT_EQ(per_point[i][p].log_likelihood, direct[p].log_likelihood);
    }
  }
}

TEST(CompiledBatch, LocationServiceBatchEntryPoint) {
  const auto db = testing::make_fixture_db();
  const KnnLocator locator(db, KnnConfig{.k = 3});
  const LocationService service(locator);
  std::vector<Observation> batch;
  for (const traindb::TrainingPoint& tp : db.points()) {
    batch.push_back(testing::fixture_observation(tp.position));
  }
  concurrency::ThreadPool pool(4);
  const auto fixes = service.locate_batch(batch, &pool);
  ASSERT_EQ(fixes.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(fixes[i].valid);
    EXPECT_EQ(fixes[i].location_name, db.points()[i].location);
  }
}

// Several locators sharing one compilation must behave identically to
// locators that compiled privately.
TEST(CompiledBatch, SharedCompilationIsEquivalent) {
  const auto db = testing::make_fixture_db();
  const auto shared = CompiledDatabase::compile(db);
  const ProbabilisticLocator a(db), b(shared);
  const KnnLocator ka(db), kb(shared);
  const Observation obs = testing::fixture_observation({17.0, 23.0});
  EXPECT_EQ(a.locate(obs).score, b.locate(obs).score);
  EXPECT_EQ(ka.locate(obs).score, kb.locate(obs).score);
}

}  // namespace
}  // namespace loctk::core

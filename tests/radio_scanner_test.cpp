// Unit tests for the simulated wireless scanner (the client NIC).

#include "radio/scanner.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/running_stats.hpp"

namespace loctk::radio {
namespace {

struct Fixture {
  Environment env = make_paper_house();
  PropagationConfig pc;
  Propagation prop{env, pc};
};

ChannelConfig quiet_channel() {
  ChannelConfig c;
  c.shadowing_sigma_db = 0.0;
  c.fast_fading_sigma_db = 0.0;
  c.quantize_dbm = false;
  c.dropout_softness_db = 0.0;
  c.sensitivity_dbm = -150.0;  // hear everything
  return c;
}

TEST(Scanner, QuietChannelReportsExactMeans) {
  Fixture f;
  Scanner scanner(f.prop, quiet_channel(), 1);
  const geom::Vec2 pos{20.0, 20.0};
  const ScanRecord rec = scanner.scan_at(pos);
  ASSERT_EQ(rec.samples.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto rssi = rec.rssi_of(f.env.access_points()[i].bssid);
    ASSERT_TRUE(rssi.has_value());
    EXPECT_NEAR(*rssi, f.prop.mean_rssi_dbm(i, pos), 1e-9);
  }
}

TEST(Scanner, DeterministicForSeed) {
  Fixture f;
  ChannelConfig cc;  // default noisy channel
  Scanner s1(f.prop, cc, 42);
  Scanner s2(f.prop, cc, 42);
  for (int i = 0; i < 10; ++i) {
    const ScanRecord a = s1.scan_at({10.0, 10.0});
    const ScanRecord b = s2.scan_at({10.0, 10.0});
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t k = 0; k < a.samples.size(); ++k) {
      EXPECT_EQ(a.samples[k].bssid, b.samples[k].bssid);
      EXPECT_DOUBLE_EQ(a.samples[k].rssi_dbm, b.samples[k].rssi_dbm);
    }
  }
}

TEST(Scanner, ClockAdvancesByInterval) {
  Fixture f;
  ChannelConfig cc;
  cc.scan_interval_s = 2.5;
  Scanner scanner(f.prop, cc, 7);
  EXPECT_DOUBLE_EQ(scanner.clock_s(), 0.0);
  const ScanRecord r0 = scanner.scan_at({5.0, 5.0});
  EXPECT_DOUBLE_EQ(r0.timestamp_s, 0.0);
  const ScanRecord r1 = scanner.scan_at({5.0, 5.0});
  EXPECT_DOUBLE_EQ(r1.timestamp_s, 2.5);
  scanner.reset_session();
  EXPECT_DOUBLE_EQ(scanner.clock_s(), 0.0);
}

TEST(Scanner, QuantizationYieldsWholeDbm) {
  Fixture f;
  ChannelConfig cc;
  cc.quantize_dbm = true;
  Scanner scanner(f.prop, cc, 11);
  for (const ScanRecord& rec : scanner.collect({12.0, 9.0}, 20)) {
    for (const ScanSample& s : rec.samples) {
      EXPECT_DOUBLE_EQ(s.rssi_dbm, std::round(s.rssi_dbm));
    }
  }
}

TEST(Scanner, SampleMeanTracksGroundTruth) {
  Fixture f;
  ChannelConfig cc;
  cc.sensitivity_dbm = -200.0;  // no dropouts to bias the mean
  Scanner scanner(f.prop, cc, 13);
  const geom::Vec2 pos{30.0, 15.0};
  stats::RunningStats rs;
  const std::string bssid = f.env.access_points()[0].bssid;
  // Many sessions to average out the correlated shadowing.
  for (int session = 0; session < 60; ++session) {
    scanner.reset_session();
    for (const ScanRecord& rec : scanner.collect(pos, 10)) {
      if (const auto r = rec.rssi_of(bssid)) rs.add(*r);
    }
  }
  EXPECT_NEAR(rs.mean(), f.prop.mean_rssi_dbm(0, pos), 1.0);
  EXPECT_GT(rs.stddev(), 2.0);  // noise is actually present
}

TEST(Scanner, WeakApsDropOut) {
  Fixture f;
  ChannelConfig cc;
  cc.sensitivity_dbm = -60.0;  // absurdly deaf receiver
  cc.dropout_softness_db = 2.0;
  Scanner scanner(f.prop, cc, 17);
  // Far corner: AP C (at 48,38) is close; AP A (at 2,2) is ~60 ft and
  // far below this sensitivity.
  int heard_a = 0, heard_c = 0;
  const std::string a = f.env.find_by_name("A")->bssid;
  const std::string c = f.env.find_by_name("C")->bssid;
  for (int i = 0; i < 50; ++i) {
    const ScanRecord rec = scanner.scan_at({46.0, 36.0});
    heard_a += rec.rssi_of(a).has_value();
    heard_c += rec.rssi_of(c).has_value();
  }
  EXPECT_LT(heard_a, 10);
  EXPECT_GT(heard_c, 40);
}

TEST(Scanner, HardCutoffWithZeroSoftness) {
  Fixture f;
  ChannelConfig cc = quiet_channel();
  cc.sensitivity_dbm = -50.0;  // only very close APs audible
  Scanner scanner(f.prop, cc, 19);
  const ScanRecord rec = scanner.scan_at({25.0, 20.0});  // center
  // Center of the house is > 20 ft from every corner AP; with n=3
  // the strongest mean is below -50 dBm, so nothing is heard.
  EXPECT_TRUE(rec.samples.empty());
}

TEST(Scanner, TemporalCorrelationOfShadowing) {
  Fixture f;
  ChannelConfig cc;
  cc.fast_fading_sigma_db = 0.0;  // isolate the AR(1) component
  cc.quantize_dbm = false;
  cc.sensitivity_dbm = -200.0;
  cc.shadowing_sigma_db = 4.0;
  cc.shadowing_rho = 0.9;
  Scanner scanner(f.prop, cc, 23);
  const std::string bssid = f.env.access_points()[0].bssid;
  const geom::Vec2 pos{20.0, 20.0};
  const double mean = f.prop.mean_rssi_dbm(0, pos);

  double prev = 0.0;
  bool first = true;
  double sum_xy = 0.0, sum_xx = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const auto r = scanner.scan_at(pos).rssi_of(bssid);
    ASSERT_TRUE(r.has_value());
    const double dev = *r - mean;
    if (!first) {
      sum_xy += prev * dev;
      sum_xx += prev * prev;
    }
    prev = dev;
    first = false;
  }
  EXPECT_NEAR(sum_xy / sum_xx, 0.9, 0.05);
}

TEST(Scanner, BodyShadowingDependsOnHeading) {
  Fixture f;
  ChannelConfig cc = quiet_channel();
  cc.body_loss_db = 5.0;
  Scanner scanner(f.prop, cc, 31);
  // Stand mid-house; AP A is to the south-west (bearing ~225 deg).
  const geom::Vec2 pos{25.0, 20.0};
  const AccessPoint* a = f.env.find_by_name("A");
  const geom::Vec2 to_a = a->position - pos;
  const double bearing = std::atan2(to_a.y, to_a.x);

  scanner.set_heading(bearing);  // facing the AP: no loss
  const auto facing = scanner.scan_at(pos).rssi_of(a->bssid);
  scanner.set_heading(bearing + 3.14159265358979);  // AP behind
  const auto behind = scanner.scan_at(pos).rssi_of(a->bssid);
  ASSERT_TRUE(facing.has_value());
  ASSERT_TRUE(behind.has_value());
  EXPECT_NEAR(*facing - *behind, 5.0, 1e-6);

  // Perpendicular: half the loss.
  scanner.set_heading(bearing + 3.14159265358979 / 2.0);
  const auto side = scanner.scan_at(pos).rssi_of(a->bssid);
  EXPECT_NEAR(*facing - *side, 2.5, 1e-6);
}

TEST(Scanner, BodyShadowingOffByDefault) {
  Fixture f;
  Scanner a(f.prop, quiet_channel(), 33);
  Scanner b(f.prop, quiet_channel(), 33);
  b.set_heading(2.0);  // irrelevant when body_loss_db == 0
  const auto ra = a.scan_at({10.0, 10.0});
  const auto rb = b.scan_at({10.0, 10.0});
  ASSERT_EQ(ra.samples.size(), rb.samples.size());
  for (std::size_t i = 0; i < ra.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.samples[i].rssi_dbm, rb.samples[i].rssi_dbm);
  }
}

TEST(ScanRecord, RssiOfMissing) {
  const ScanRecord rec;
  EXPECT_FALSE(rec.rssi_of("nope").has_value());
}

TEST(Scanner, CollectCountAndNonNegative) {
  Fixture f;
  Scanner scanner(f.prop, ChannelConfig{}, 29);
  EXPECT_EQ(scanner.collect({5.0, 5.0}, 7).size(), 7u);
  EXPECT_TRUE(scanner.collect({5.0, 5.0}, 0).empty());
  EXPECT_TRUE(scanner.collect({5.0, 5.0}, -3).empty());
}

}  // namespace
}  // namespace loctk::radio

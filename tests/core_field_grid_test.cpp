// Unit tests for the interpolated signal field and the fine-grid
// maximum-likelihood locator built on it.

#include "core/grid_locator.hpp"
#include "core/signal_field.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "test_fixtures.hpp"

namespace loctk::core {
namespace {

using testing::fixture_bssids;
using testing::fixture_mean_rssi;
using testing::fixture_observation;
using testing::make_fixture_db;

TEST(SignalField, ExactAtTrainingPoints) {
  const auto db = make_fixture_db();
  const SignalField field(db);
  for (const traindb::TrainingPoint& tp : db.points()) {
    for (const std::string& bssid : fixture_bssids()) {
      const auto s = field.sample(bssid, tp.position);
      ASSERT_TRUE(s.has_value());
      EXPECT_NEAR(s->mean_dbm, tp.find(bssid)->mean_dbm, 1e-9);
      EXPECT_NEAR(s->visibility, 1.0, 1e-9);
    }
  }
}

TEST(SignalField, InterpolatesBetweenPoints) {
  const auto db = make_fixture_db();
  const SignalField field(db);
  // Midway between (10,10) and (20,10): value between the two means.
  const auto s = field.sample(fixture_bssids()[0], {15.0, 10.0});
  ASSERT_TRUE(s.has_value());
  const double m1 = fixture_mean_rssi(0, {10.0, 10.0});
  const double m2 = fixture_mean_rssi(0, {20.0, 10.0});
  EXPECT_GT(s->mean_dbm, std::min(m1, m2) - 0.5);
  EXPECT_LT(s->mean_dbm, std::max(m1, m2) + 0.5);
}

TEST(SignalField, UnknownApOrOutOfRange) {
  const auto db = make_fixture_db();
  SignalFieldConfig cfg;
  cfg.max_influence_ft = 5.0;
  const SignalField field(db, cfg);
  EXPECT_FALSE(field.sample("nope", {10.0, 10.0}).has_value());
  // Far outside the surveyed square: no training point in range.
  EXPECT_FALSE(
      field.sample(fixture_bssids()[0], {500.0, 500.0}).has_value());
}

TEST(SignalField, SigmaFloorApplied) {
  const auto db = make_fixture_db(10.0, 0.0);  // zero training sigma
  SignalFieldConfig cfg;
  cfg.sigma_floor_db = 2.5;
  const SignalField field(db, cfg);
  const auto s = field.sample(fixture_bssids()[0], {13.0, 17.0});
  ASSERT_TRUE(s.has_value());
  EXPECT_GE(s->sigma_db, 2.5);
}

TEST(SignalField, LogLikelihoodPeaksNearTruth) {
  const auto db = make_fixture_db();
  const SignalField field(db);
  const geom::Vec2 truth{22.0, 18.0};
  const Observation obs = fixture_observation(truth);
  const double at_truth = field.log_likelihood(obs, truth);
  for (const geom::Vec2 other :
       {geom::Vec2{5.0, 5.0}, geom::Vec2{35.0, 35.0}, geom::Vec2{5.0, 35.0}}) {
    EXPECT_GT(at_truth, field.log_likelihood(obs, other))
        << other.x << "," << other.y;
  }
}

TEST(GridLocator, FinerThanSurveyGrid) {
  const auto db = make_fixture_db();  // 10 ft survey pitch
  GridLocatorConfig cfg;
  cfg.grid_pitch_ft = 2.0;
  const GridLocator locator(db, geom::Rect::sized(40.0, 40.0), cfg);
  EXPECT_EQ(locator.name(), "grid-ml");
  EXPECT_GT(locator.cell_count(), 400u);  // 21x21 at 2 ft

  // Truth off the survey grid: the estimate resolves to within the
  // candidate pitch rather than the 10 ft survey pitch.
  const geom::Vec2 truth{16.0, 24.0};
  const LocationEstimate est = locator.locate(fixture_observation(truth));
  ASSERT_TRUE(est.valid);
  EXPECT_LT(geom::distance(est.position, truth), 6.0);
  EXPECT_FALSE(est.location_name.empty());
}

TEST(GridLocator, SerialAndParallelAgree) {
  const auto db = make_fixture_db();
  GridLocatorConfig par;
  par.grid_pitch_ft = 4.0;
  par.parallel = true;
  GridLocatorConfig ser = par;
  ser.parallel = false;
  const GridLocator parallel(db, geom::Rect::sized(40.0, 40.0), par);
  const GridLocator serial(db, geom::Rect::sized(40.0, 40.0), ser);

  for (const geom::Vec2 truth :
       {geom::Vec2{7.0, 31.0}, geom::Vec2{20.0, 20.0}}) {
    const Observation obs = fixture_observation(truth);
    const LocationEstimate a = parallel.locate(obs);
    const LocationEstimate b = serial.locate(obs);
    ASSERT_TRUE(a.valid);
    ASSERT_TRUE(b.valid);
    EXPECT_EQ(a.position, b.position);
    EXPECT_DOUBLE_EQ(a.score, b.score);
  }
}

TEST(GridLocator, EmptyInputsInvalid) {
  const auto db = make_fixture_db();
  const GridLocator locator(db, geom::Rect::sized(40.0, 40.0));
  EXPECT_FALSE(locator.locate(Observation{}).valid);

  traindb::TrainingDatabase empty;
  const GridLocator on_empty(empty, geom::Rect::sized(40.0, 40.0));
  EXPECT_FALSE(on_empty.locate(fixture_observation({5, 5})).valid);
}

// Property sweep: grid estimates are never worse than one survey cell
// away on noiseless observations.
class GridSweep : public ::testing::TestWithParam<int> {};

TEST_P(GridSweep, WithinOneSurveyCell) {
  const int i = GetParam();
  const auto db = make_fixture_db();
  GridLocatorConfig cfg;
  cfg.grid_pitch_ft = 2.0;
  const GridLocator locator(db, geom::Rect::sized(40.0, 40.0), cfg);
  const geom::Vec2 truth{4.0 + (i % 4) * 9.0, 3.0 + (i / 4) * 11.0};
  const LocationEstimate est = locator.locate(fixture_observation(truth));
  ASSERT_TRUE(est.valid);
  EXPECT_LT(geom::distance(est.position, truth), 10.0);
}

INSTANTIATE_TEST_SUITE_P(Truths, GridSweep, ::testing::Range(0, 16));

}  // namespace
}  // namespace loctk::core

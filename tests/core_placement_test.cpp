// Unit tests for the AP placement planner.

#include "core/placement.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace loctk::core {
namespace {

radio::Environment bare_site() {
  return radio::Environment(geom::Rect::sized(40.0, 40.0));
}

TEST(CandidateLattice, CoversInteriorWithMargin) {
  const auto cands =
      candidate_lattice(geom::Rect::sized(40.0, 40.0), 10.0, 2.0);
  EXPECT_FALSE(cands.empty());
  for (const geom::Vec2 c : cands) {
    EXPECT_GE(c.x, 2.0);
    EXPECT_LE(c.x, 38.0);
    EXPECT_GE(c.y, 2.0);
    EXPECT_LE(c.y, 38.0);
  }
  // 2..38 at pitch 10 -> {2,12,22,32} per axis.
  EXPECT_EQ(cands.size(), 16u);
}

TEST(WithAps, BuildsNamedDeployment) {
  radio::Environment site = bare_site();
  site.add_wall({{{20.0, 0.0}, {20.0, 40.0}}, 4.0, "w"});
  const radio::Environment env =
      with_aps(site, {{5.0, 5.0}, {35.0, 35.0}});
  EXPECT_EQ(env.access_points().size(), 2u);
  EXPECT_EQ(env.access_points()[0].name, "AP0");
  EXPECT_EQ(env.walls().size(), 1u);
  EXPECT_EQ(env.footprint(), site.footprint());
  // BSSIDs distinct.
  EXPECT_NE(env.access_points()[0].bssid, env.access_points()[1].bssid);
}

TEST(ScorePlacement, SpreadBeatsClump) {
  const radio::Environment site = bare_site();
  PlacementConfig cfg;
  cfg.propagation.multipath_amplitude_db = 0.0;  // deterministic physics
  const PlacementResult spread = score_placement(
      site, {{2.0, 2.0}, {38.0, 2.0}, {38.0, 38.0}, {2.0, 38.0}}, cfg);
  const PlacementResult clump = score_placement(
      site, {{18.0, 18.0}, {20.0, 18.0}, {20.0, 20.0}, {18.0, 20.0}},
      cfg);
  EXPECT_GT(spread.min_separation_db, clump.min_separation_db);
  EXPECT_GT(spread.mean_separation_db, clump.mean_separation_db);
  EXPECT_LE(spread.confusable_fraction, clump.confusable_fraction);
}

TEST(PlanPlacement, PicksDistinctCandidatesAndImproves) {
  const radio::Environment site = bare_site();
  PlacementConfig cfg;
  cfg.propagation.multipath_amplitude_db = 0.0;
  const auto cands = candidate_lattice(site.footprint(), 12.0, 2.0);
  const PlacementResult plan = plan_ap_placement(site, cands, 4, cfg);

  ASSERT_EQ(plan.chosen.size(), 4u);
  const std::set<std::size_t> unique(plan.chosen.begin(),
                                     plan.chosen.end());
  EXPECT_EQ(unique.size(), 4u);
  EXPECT_GT(plan.min_separation_db, 0.0);

  // The greedy plan should beat (or match) a deliberately bad clump
  // of the same size built from lattice points.
  std::vector<geom::Vec2> clump(cands.begin(), cands.begin() + 4);
  const PlacementResult bad = score_placement(
      site, clump, cfg);
  EXPECT_GE(plan.min_separation_db, bad.min_separation_db - 1e-9);
}

TEST(PlanPlacement, MonotoneInK) {
  // More APs never reduce the bottleneck separation (greedy keeps the
  // earlier picks).
  const radio::Environment site = bare_site();
  PlacementConfig cfg;
  cfg.propagation.multipath_amplitude_db = 0.0;
  const auto cands = candidate_lattice(site.footprint(), 15.0, 3.0);
  double prev = -1.0;
  for (const std::size_t k : {2u, 3u, 4u}) {
    const PlacementResult plan = plan_ap_placement(site, cands, k, cfg);
    EXPECT_GE(plan.min_separation_db, prev - 1e-9) << "k=" << k;
    prev = plan.min_separation_db;
  }
}

TEST(PlanPlacement, EdgeCases) {
  const radio::Environment site = bare_site();
  EXPECT_TRUE(plan_ap_placement(site, {}, 4).chosen.empty());
  EXPECT_TRUE(plan_ap_placement(site, {{1.0, 1.0}}, 0).chosen.empty());
  // k larger than the candidate set clamps.
  const auto plan = plan_ap_placement(site, {{1.0, 1.0}, {30.0, 30.0}}, 9);
  EXPECT_EQ(plan.chosen.size(), 2u);
}

}  // namespace
}  // namespace loctk::core

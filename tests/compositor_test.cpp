// Unit tests for the Floor Plan Compositor (paper §4.2): rendering
// marks, error whiskers, grids, and legends onto a floor plan.

#include "floorplan/compositor.hpp"

#include <gtest/gtest.h>

#include "floorplan/processor.hpp"
#include "radio/environment.hpp"

namespace loctk::floorplan {
namespace {

FloorPlan small_plan() {
  FloorPlan plan{image::Raster(120, 100, image::colors::kWhite)};
  plan.set_feet_per_pixel(0.5);
  plan.set_origin({10.0, 90.0});
  return plan;
}

TEST(Compositor, RenderRequiresCalibration) {
  FloorPlan plan{image::Raster(50, 50)};
  const Compositor comp(plan);
  EXPECT_THROW(comp.render({}), FloorPlanError);
}

TEST(Compositor, MarksArePainted) {
  const FloorPlan plan = small_plan();
  CompositorOptions opts;
  opts.grid_spacing_ft = 0.0;  // isolate the marks
  opts.draw_legend = false;
  const Compositor comp(plan, opts);

  const std::vector<Mark> marks = {
      {{10.0, 10.0}, image::MarkerShape::kDot, image::colors::kRed, ""},
  };
  const image::Raster img = comp.render(marks);
  EXPECT_GT(img.count_pixels(image::colors::kRed), 10u);
  // Mark is centered at pixel (origin + 20, origin - 20) = (30, 70).
  EXPECT_EQ(img.at(30, 70), image::colors::kRed);
}

TEST(Compositor, LabelsDrawnWhenEnabled) {
  const FloorPlan plan = small_plan();
  CompositorOptions with;
  with.grid_spacing_ft = 0.0;
  with.draw_labels = true;
  CompositorOptions without = with;
  without.draw_labels = false;

  const std::vector<Mark> marks = {
      {{20.0, 20.0}, image::MarkerShape::kCross, image::colors::kBlue,
       "kitchen"},
  };
  const auto img_with = Compositor(plan, with).render(marks);
  const auto img_without = Compositor(plan, without).render(marks);
  EXPECT_GT(img_with.count_pixels(image::colors::kBlue),
            img_without.count_pixels(image::colors::kBlue));
}

TEST(Compositor, GridLinesDrawn) {
  const FloorPlan plan = small_plan();
  CompositorOptions grid_on;
  grid_on.grid_spacing_ft = 10.0;
  CompositorOptions grid_off;
  grid_off.grid_spacing_ft = 0.0;
  const auto with = Compositor(plan, grid_on).render({});
  const auto without = Compositor(plan, grid_off).render({});
  EXPECT_GT(with.count_pixels(image::colors::kLightGray),
            without.count_pixels(image::colors::kLightGray));
}

TEST(Compositor, TitleRendered) {
  const FloorPlan plan = small_plan();
  CompositorOptions opts;
  opts.grid_spacing_ft = 0.0;
  opts.title = "fig 3";
  const auto img = Compositor(plan, opts).render({});
  EXPECT_GT(img.count_pixels(image::colors::kBlack), 10u);
}

TEST(Compositor, WorldLineSolidAndDashed) {
  const FloorPlan plan = small_plan();
  const Compositor comp(plan);
  image::Raster img(120, 100, image::colors::kWhite);
  comp.draw_world_line(img, {0.0, 0.0}, {40.0, 0.0},
                       image::colors::kGreen, false);
  const auto solid = img.count_pixels(image::colors::kGreen);
  image::Raster img2(120, 100, image::colors::kWhite);
  comp.draw_world_line(img2, {0.0, 0.0}, {40.0, 0.0},
                       image::colors::kGreen, true);
  const auto dashed = img2.count_pixels(image::colors::kGreen);
  EXPECT_GT(solid, 0u);
  EXPECT_GT(dashed, 0u);
  EXPECT_LT(dashed, solid);
}

TEST(Compositor, CornerAndOffCanvasMarkersClipSafely) {
  // Markers whose glyphs straddle the raster edge exercise set_pixel's
  // clipping on every side; fully off-canvas markers must be no-ops.
  // Under ASan this pins "no out-of-bounds writes", not just "no
  // throw". small_plan(): 120x100 px, 0.5 ft/px, origin pixel (10,90)
  // — so world (-5, 45) lands exactly on pixel (0, 0).
  const FloorPlan plan = small_plan();
  CompositorOptions opts;
  opts.draw_legend = true;
  opts.draw_labels = true;
  const Compositor comp(plan, opts);

  std::vector<Mark> marks;
  const geom::Vec2 corners[] = {
      {-5.0, 45.0}, {54.5, 45.0}, {-5.0, -4.5}, {54.5, -4.5}};
  const image::MarkerShape shapes[] = {
      image::MarkerShape::kDot, image::MarkerShape::kCross,
      image::MarkerShape::kSquare, image::MarkerShape::kDot};
  for (int i = 0; i < 4; ++i) {
    marks.push_back({corners[i], shapes[i], image::colors::kRed,
                     "c" + std::to_string(i)});
  }
  marks.push_back({{1000.0, 1000.0}, image::MarkerShape::kCross,
                   image::colors::kBlue, "far"});
  marks.push_back({{-1000.0, -1000.0}, image::MarkerShape::kSquare,
                   image::colors::kBlue, "far2"});

  image::Raster img(1, 1);
  ASSERT_NO_THROW(img = comp.render(marks));
  EXPECT_EQ(img.width(), 120);
  EXPECT_EQ(img.height(), 100);
  // The corner markers are clipped, not culled: part of each glyph
  // survives, while the off-canvas blue markers paint nothing.
  EXPECT_GT(img.count_pixels(image::colors::kRed), 4u);
  EXPECT_EQ(img.count_pixels(image::colors::kBlue), 0u);
}

TEST(CompositeEvaluation, TruthEstimateWhiskersAndLegend) {
  const FloorPlan plan = small_plan();
  const std::vector<EvaluatedPoint> points = {
      {{10.0, 10.0}, {20.0, 15.0}, "t1"},
      {{30.0, 25.0}, {31.0, 25.0}, "t2"},
  };
  const image::Raster img = composite_evaluation(plan, points);
  // Truth crosses in green, estimates in red, whiskers in gray.
  EXPECT_GT(img.count_pixels(image::colors::kGreen), 5u);
  EXPECT_GT(img.count_pixels(image::colors::kRed), 5u);
  EXPECT_GT(img.count_pixels(image::colors::kGray), 5u);
}

TEST(CompositeEvaluation, MarksOutsideRasterClipSafely) {
  const FloorPlan plan = small_plan();
  const std::vector<EvaluatedPoint> points = {
      {{500.0, 500.0}, {-100.0, -100.0}, "far"},
  };
  EXPECT_NO_THROW(composite_evaluation(plan, points));
}

TEST(CompositeEvaluation, OverPaperHouseRender) {
  // The full Figure-3 pipeline: render the paper house, composite the
  // 13 test points onto it.
  const radio::Environment env = radio::make_paper_house();
  const FloorPlan plan = render_environment(env);
  std::vector<EvaluatedPoint> pts;
  for (int i = 0; i < 13; ++i) {
    const double x = 5.0 + (i % 5) * 9.0;
    const double y = 5.0 + (i / 5) * 12.0;
    pts.push_back({{x, y}, {x + 3.0, y - 2.0}, "p" + std::to_string(i)});
  }
  const image::Raster img = composite_evaluation(plan, pts);
  EXPECT_EQ(img.width(), plan.raster().width());
  EXPECT_GT(img.count_pixels(image::colors::kGreen), 26u);
  EXPECT_GT(img.count_pixels(image::colors::kRed), 26u);
}

}  // namespace
}  // namespace loctk::floorplan

// Unit tests for the HMM cell tracker (paper §6 item 2, literal
// Bayesian filter over training points) and the UWB ranging stack
// (paper §6 item 3).

#include "core/hmm_tracker.hpp"
#include "core/uwb_locator.hpp"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "radio/environment.hpp"
#include "test_fixtures.hpp"

namespace loctk::core {
namespace {

using testing::fixture_observation;
using testing::make_fixture_db;

TEST(HmmTracker, StartsUniformAndNormalized) {
  const auto db = make_fixture_db();
  HmmTracker hmm(db);
  const auto& b = hmm.belief();
  ASSERT_EQ(b.size(), db.size());
  for (const double p : b) {
    EXPECT_NEAR(p, 1.0 / static_cast<double>(db.size()), 1e-12);
  }
  EXPECT_NEAR(hmm.entropy(), std::log(static_cast<double>(db.size())),
              1e-9);
}

TEST(HmmTracker, ConvergesOnRepeatedObservation) {
  const auto db = make_fixture_db();
  HmmTracker hmm(db);
  const geom::Vec2 truth{20.0, 20.0};
  LocationEstimate est;
  for (int i = 0; i < 8; ++i) est = hmm.step(fixture_observation(truth));
  ASSERT_TRUE(est.valid);
  EXPECT_EQ(est.location_name, "g20-20");
  EXPECT_LT(geom::distance(est.position, truth), 4.0);
  // Confident: entropy way below uniform.
  EXPECT_LT(hmm.entropy(),
            0.5 * std::log(static_cast<double>(db.size())));
}

TEST(HmmTracker, BeliefStaysNormalized) {
  const auto db = make_fixture_db();
  HmmTracker hmm(db);
  for (int i = 0; i < 5; ++i) {
    hmm.step(fixture_observation({10.0 + i, 10.0}));
    const double total = std::accumulate(hmm.belief().begin(),
                                         hmm.belief().end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(HmmTracker, TransitionModelResistsTeleports) {
  const auto db = make_fixture_db();
  HmmTrackerConfig cfg;
  cfg.step_sigma_ft = 3.0;  // client walks a few feet per step
  // Flatten the emission (noiseless fixture observations are otherwise
  // so peaked that any single reading overwhelms the motion prior —
  // the correct Bayesian behaviour, but not what this test probes).
  cfg.likelihood.sigma_floor_db = 16.0;
  HmmTracker hmm(db, cfg);
  // Converge at one corner.
  for (int i = 0; i < 8; ++i) hmm.step(fixture_observation({0.0, 0.0}));
  // A single observation from the far corner must not fully teleport
  // the posterior-mean estimate there.
  const LocationEstimate est = hmm.step(fixture_observation({40.0, 40.0}));
  ASSERT_TRUE(est.valid);
  EXPECT_GT(geom::distance(est.position, {40.0, 40.0}), 8.0);
  // But a sustained move wins.
  LocationEstimate late;
  for (int i = 0; i < 25; ++i) {
    late = hmm.step(fixture_observation({40.0, 40.0}));
  }
  EXPECT_LT(geom::distance(late.position, {40.0, 40.0}), 8.0);
}

TEST(HmmTracker, EmptyObservationDiffusesOnly) {
  const auto db = make_fixture_db();
  HmmTracker hmm(db);
  for (int i = 0; i < 6; ++i) hmm.step(fixture_observation({20.0, 20.0}));
  const double before = hmm.entropy();
  const LocationEstimate est = hmm.step(Observation{});
  EXPECT_TRUE(est.valid);       // the prior still answers
  EXPECT_GT(hmm.entropy(), before);  // belief spread out
}

TEST(HmmTracker, ResetRestoresUniform) {
  const auto db = make_fixture_db();
  HmmTracker hmm(db);
  hmm.step(fixture_observation({10.0, 10.0}));
  hmm.reset();
  EXPECT_NEAR(hmm.entropy(), std::log(static_cast<double>(db.size())),
              1e-9);
}

TEST(HmmTracker, TracksAWalkBetterLateThanEarly) {
  const auto db = make_fixture_db();
  HmmTracker hmm(db);
  double early = 0.0, late = 0.0;
  for (int step = 0; step <= 20; ++step) {
    const geom::Vec2 truth{2.0 * step, 20.0};
    const LocationEstimate est = hmm.step(fixture_observation(truth));
    ASSERT_TRUE(est.valid);
    const double err = geom::distance(est.position, truth);
    (step < 3 ? early : late) += err;
  }
  EXPECT_LT(late / 18.0, early / 3.0 + 5.0);
}

/// --- UWB --------------------------------------------------------------

TEST(UwbRanging, LosRangesAreTight) {
  radio::Environment env(geom::Rect::sized(50.0, 40.0));
  for (int i = 0; i < 4; ++i) {
    radio::AccessPoint ap;
    ap.bssid = radio::synthetic_bssid(i);
    ap.name = std::string(1, static_cast<char>('A' + i));
    ap.position = {i < 2 ? 2.0 : 48.0, (i % 3 == 0) ? 2.0 : 38.0};
    env.add_access_point(ap);
  }
  radio::UwbRanging uwb(env, {}, 99);
  const geom::Vec2 pos{25.0, 20.0};
  double worst = 0.0;
  for (int round = 0; round < 50; ++round) {
    for (const radio::UwbRange& r : uwb.measure(pos)) {
      EXPECT_FALSE(r.nlos);  // no walls in this env
      worst = std::max(worst,
                       std::abs(r.range_ft -
                                geom::distance(r.anchor_pos, pos)));
    }
  }
  EXPECT_LT(worst, 3.0);  // ~4 sigma of 0.5 ft noise, bar flakiness
}

TEST(UwbRanging, NlosBiasIsPositive) {
  radio::Environment env(geom::Rect::sized(50.0, 40.0));
  radio::AccessPoint ap;
  ap.bssid = radio::synthetic_bssid(0);
  ap.name = "A";
  ap.position = {2.0, 20.0};
  env.add_access_point(ap);
  env.add_wall({{{25.0, 0.0}, {25.0, 40.0}}, 6.0, "wall"});

  radio::UwbRanging uwb(env, {}, 7);
  const geom::Vec2 pos{48.0, 20.0};  // behind the wall
  double mean_err = 0.0;
  int n = 0;
  for (int i = 0; i < 200; ++i) {
    for (const radio::UwbRange& r : uwb.measure(pos)) {
      EXPECT_TRUE(r.nlos);
      mean_err += r.range_ft - geom::distance(ap.position, pos);
      ++n;
    }
  }
  ASSERT_GT(n, 100);
  EXPECT_GT(mean_err / n, 0.5);  // systematically long
}

TEST(UwbRanging, RespectsMaxRangeAndDetection) {
  radio::Environment env(geom::Rect::sized(300.0, 10.0));
  radio::AccessPoint ap;
  ap.bssid = radio::synthetic_bssid(0);
  ap.position = {0.0, 5.0};
  env.add_access_point(ap);

  radio::UwbConfig cfg;
  cfg.max_range_ft = 100.0;
  radio::UwbRanging uwb(env, cfg, 11);
  EXPECT_TRUE(uwb.measure({250.0, 5.0}).empty());  // out of range
  // In range: detection probability applies, so most rounds respond.
  int heard = 0;
  for (int i = 0; i < 100; ++i) heard += !uwb.measure({50.0, 5.0}).empty();
  EXPECT_GT(heard, 85);
}

TEST(UwbLocator, AveragesRoundsByAnchor) {
  std::vector<radio::UwbRange> ranges = {
      {"a", {0.0, 0.0}, 10.0, false},
      {"a", {0.0, 0.0}, 12.0, false},
      {"b", {40.0, 0.0}, 30.0, false},
  };
  const auto meas = UwbLocator::average_by_anchor(ranges);
  ASSERT_EQ(meas.size(), 2u);
  EXPECT_DOUBLE_EQ(meas[0].distance, 11.0);
  EXPECT_DOUBLE_EQ(meas[1].distance, 30.0);
}

TEST(UwbLocator, SubFootAccuracyInTheHouse) {
  const radio::Environment env = radio::make_paper_house();
  radio::UwbRanging uwb(env, {}, 55);
  const UwbLocator locator(env.footprint());

  double total = 0.0;
  const std::vector<geom::Vec2> truths = {
      {25.0, 20.0}, {10.0, 10.0}, {40.0, 30.0}, {15.0, 28.0}};
  for (const geom::Vec2 truth : truths) {
    const auto est = locator.locate(uwb.measure_rounds(truth, 10));
    ASSERT_TRUE(est.has_value());
    total += geom::distance(*est, truth);
  }
  // UWB is the high-precision tier: mean error a couple of feet even
  // with NLOS walls (vs ~13 ft for RSSI-geometric).
  EXPECT_LT(total / static_cast<double>(truths.size()), 3.0);
}

TEST(UwbLocator, TooFewAnchorsReturnsNullopt) {
  const UwbLocator locator(geom::Rect::sized(50.0, 40.0));
  EXPECT_FALSE(locator.locate({}).has_value());
  EXPECT_FALSE(locator
                   .locate({{"a", {0, 0}, 5.0, false},
                            {"b", {10, 0}, 5.0, false}})
                   .has_value());
}

TEST(UwbLocator, ClampsToSiteBounds) {
  const UwbLocator locator(geom::Rect::sized(50.0, 40.0));
  // Consistent ranges to a point far outside the site.
  const geom::Vec2 outside{200.0, 20.0};
  std::vector<radio::UwbRange> ranges;
  const geom::Vec2 anchors[] = {{2, 2}, {48, 2}, {48, 38}, {2, 38}};
  for (int i = 0; i < 4; ++i) {
    ranges.push_back({radio::synthetic_bssid(i), anchors[i],
                      geom::distance(anchors[i], outside), false});
  }
  const auto est = locator.locate(ranges);
  ASSERT_TRUE(est.has_value());
  EXPECT_LE(est->x, 60.0 + 1e-9);  // clamped to footprint + 10 ft margin
}

}  // namespace
}  // namespace loctk::core

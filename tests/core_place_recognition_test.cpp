// Unit tests for the FAB-MAP-style place-recognition locator:
// detection-set arg-max, device-offset invariance, the co-occurrence
// evidence discount, and compiled-vs-reference score agreement.

#include "core/place_recognition.hpp"

#include <cmath>
#include <initializer_list>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "radio/scanner.hpp"

namespace loctk::core {
namespace {

traindb::ApStatistics seen(const std::string& bssid, std::uint32_t heard,
                           std::uint32_t scans, double mean_dbm = -60.0) {
  traindb::ApStatistics s;
  s.bssid = bssid;
  s.mean_dbm = mean_dbm;
  s.stddev_db = 2.0;
  s.sample_count = heard;
  s.scan_count = scans;
  s.min_dbm = mean_dbm - 6.0;
  s.max_dbm = mean_dbm + 6.0;
  return s;
}

/// Three rooms with distinct AP detection sets — signal strengths are
/// deliberately identical everywhere, so only detections can
/// discriminate.
traindb::TrainingDatabase make_detection_db() {
  std::vector<traindb::TrainingPoint> points(3);
  points[0].location = "room-a";
  points[0].position = {0.0, 0.0};
  points[0].per_ap = {seen("pr:00", 40, 40), seen("pr:01", 40, 40),
                      seen("pr:02", 10, 40)};
  points[1].location = "room-b";
  points[1].position = {30.0, 0.0};
  points[1].per_ap = {seen("pr:02", 40, 40), seen("pr:03", 40, 40),
                      seen("pr:04", 38, 40)};
  points[2].location = "room-c";
  points[2].position = {0.0, 30.0};
  points[2].per_ap = {seen("pr:00", 5, 40), seen("pr:04", 40, 40),
                      seen("pr:05", 40, 40)};
  return traindb::TrainingDatabase::from_points(std::move(points),
                                                "detection-fixture");
}

Observation obs_of(std::initializer_list<std::string> bssids,
                   double dbm = -60.0) {
  std::vector<radio::ScanRecord> scans(1);
  for (const std::string& id : bssids) {
    scans[0].samples.push_back({id, dbm, 1});
  }
  return Observation::from_scans(scans);
}

TEST(PlaceRecognition, DetectionSetPicksTheRightPlace) {
  const auto db = make_detection_db();
  const PlaceRecognitionLocator locator(db);
  struct Case {
    std::initializer_list<std::string> heard;
    const char* expect;
  };
  const Case cases[] = {
      {{"pr:00", "pr:01"}, "room-a"},
      {{"pr:02", "pr:03", "pr:04"}, "room-b"},
      {{"pr:04", "pr:05"}, "room-c"},
  };
  for (const Case& c : cases) {
    const LocationEstimate est = locator.locate(obs_of(c.heard));
    ASSERT_TRUE(est.valid);
    EXPECT_EQ(est.location_name, c.expect);
    EXPECT_EQ(est.aps_used, static_cast<int>(c.heard.size()));
  }
}

TEST(PlaceRecognition, InvariantToDeviceRssiOffset) {
  // The campus-fleet failure mode for strength-based locators: the
  // same detections read 25 dB apart on two devices. Detection
  // scoring must not move at all.
  const auto db = make_detection_db();
  const PlaceRecognitionLocator locator(db);
  const LocationEstimate strong =
      locator.locate(obs_of({"pr:00", "pr:01"}, -45.0));
  const LocationEstimate weak =
      locator.locate(obs_of({"pr:00", "pr:01"}, -85.0));
  ASSERT_TRUE(strong.valid);
  ASSERT_TRUE(weak.valid);
  EXPECT_EQ(strong.location_name, weak.location_name);
  EXPECT_EQ(strong.score, weak.score);
}

TEST(PlaceRecognition, DegenerateInputsAreInvalid) {
  const auto db = make_detection_db();
  const PlaceRecognitionLocator locator(db);
  EXPECT_FALSE(locator.locate(Observation{}).valid);
  // Heard APs exist but none is in the trained universe.
  EXPECT_FALSE(locator.locate(obs_of({"zz:99"})).valid);

  const traindb::TrainingDatabase empty;
  const PlaceRecognitionLocator empty_locator(empty);
  EXPECT_FALSE(empty_locator.locate(obs_of({"pr:00"})).valid);
}

TEST(PlaceRecognition, ReferenceScoreAgreesWithCompiledPath) {
  const auto db = make_detection_db();
  const PlaceRecognitionLocator locator(db);
  const Observation obs = obs_of({"pr:00", "pr:01", "pr:02"});
  const LocationEstimate est = locator.locate(obs);
  ASSERT_TRUE(est.valid);

  double best_ref = -std::numeric_limits<double>::infinity();
  std::string best_name;
  for (std::size_t p = 0; p < db.points().size(); ++p) {
    int common = 0;
    const double ref = locator.reference_score(obs, p, &common);
    EXPECT_EQ(common, 3);
    if (ref > best_ref) {
      best_ref = ref;
      best_name = db.points()[p].location;
    }
  }
  EXPECT_EQ(est.location_name, best_name);
  EXPECT_NEAR(est.score, best_ref, 1e-9);
}

TEST(PlaceRecognition, CoOccurrenceDiscountsRedundantEvidence) {
  // ap "co:00" and "co:01" always appear together (duplicate
  // evidence); "co:02" follows its own pattern. The Chow-Liu-style
  // discount must bite the redundant pair harder.
  std::vector<traindb::TrainingPoint> points(6);
  for (std::size_t p = 0; p < points.size(); ++p) {
    points[p].location = "p" + std::to_string(p);
    points[p].position = {static_cast<double>(p) * 10.0, 0.0};
    if (p < 3) {
      points[p].per_ap = {seen("co:00", 38, 40), seen("co:01", 38, 40)};
    }
    if (p % 2 == 0) {
      points[p].per_ap.push_back(seen("co:02", 36, 40));
    } else {
      points[p].per_ap.push_back(seen("co:03", 36, 40));
    }
  }
  const auto db =
      traindb::TrainingDatabase::from_points(std::move(points), "cooc");
  const PlaceRecognitionLocator locator(db);
  const auto slot = [&](const char* bssid) {
    return *locator.compiled().slot_of(bssid);
  };

  const SlotEvidence& redundant = locator.evidence(slot("co:00"));
  const SlotEvidence& independent = locator.evidence(slot("co:02"));
  EXPECT_EQ(redundant.parent, static_cast<int>(slot("co:01")));
  EXPECT_LT(redundant.weight, 1.0);
  EXPECT_LT(redundant.weight, independent.weight);
  for (std::size_t u = 0; u < locator.compiled().universe_size(); ++u) {
    EXPECT_GE(locator.evidence(u).weight, locator.config().min_weight);
    EXPECT_LE(locator.evidence(u).weight, 1.0);
  }
}

}  // namespace
}  // namespace loctk::core

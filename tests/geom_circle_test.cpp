// Unit tests for circle intersection — the §5.2 geometric locator's
// core primitive. Real RSSI-derived circles are often disjoint or
// nested, so the best-effort fallbacks get as much coverage as the
// happy path.

#include "geom/circle.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace loctk::geom {
namespace {

TEST(Circle, Contains) {
  const Circle c{{0.0, 0.0}, 5.0};
  EXPECT_TRUE(c.contains({3.0, 4.0}));   // on the ring
  EXPECT_TRUE(c.contains({1.0, 1.0}));
  EXPECT_FALSE(c.contains({4.0, 4.0}));
}

TEST(IntersectCircles, TwoPoints) {
  // Unit-radius circles centered 1 apart: intersections at
  // x = 0.5, y = +-sqrt(3)/2.
  const Circle a{{0.0, 0.0}, 1.0};
  const Circle b{{1.0, 0.0}, 1.0};
  const CircleIntersection ix = intersect_circles(a, b);
  ASSERT_EQ(ix.count, 2);
  const double h = std::sqrt(3.0) / 2.0;
  // Both orderings acceptable; sort by y.
  const Vec2 hi = ix.p1.y > ix.p2.y ? ix.p1 : ix.p2;
  const Vec2 lo = ix.p1.y > ix.p2.y ? ix.p2 : ix.p1;
  EXPECT_TRUE(almost_equal(hi, {0.5, h}, 1e-9));
  EXPECT_TRUE(almost_equal(lo, {0.5, -h}, 1e-9));
}

TEST(IntersectCircles, TangentExternal) {
  const Circle a{{0.0, 0.0}, 2.0};
  const Circle b{{5.0, 0.0}, 3.0};
  const CircleIntersection ix = intersect_circles(a, b);
  ASSERT_EQ(ix.count, 1);
  EXPECT_TRUE(almost_equal(ix.p1, {2.0, 0.0}, 1e-6));
}

TEST(IntersectCircles, TangentInternal) {
  const Circle a{{0.0, 0.0}, 5.0};
  const Circle b{{2.0, 0.0}, 3.0};
  const CircleIntersection ix = intersect_circles(a, b);
  ASSERT_EQ(ix.count, 1);
  EXPECT_TRUE(almost_equal(ix.p1, {5.0, 0.0}, 1e-6));
}

TEST(IntersectCircles, DisjointBestEffortBetweenRings) {
  const Circle a{{0.0, 0.0}, 1.0};
  const Circle b{{10.0, 0.0}, 2.0};
  const CircleIntersection ix = intersect_circles(a, b);
  EXPECT_EQ(ix.count, 0);
  // Gap spans x in [1, 8]; midpoint of the gap is 4.5.
  EXPECT_TRUE(almost_equal(ix.p1, {4.5, 0.0}, 1e-9));
}

TEST(IntersectCircles, NestedBestEffortBetweenRings) {
  const Circle outer{{0.0, 0.0}, 10.0};
  const Circle inner{{1.0, 0.0}, 2.0};
  const Vec2 p = circle_pair_point(outer, inner);
  // Inner ring's far point from origin along +x: x = 3; outer ring at
  // x = 10; halfway between the rings: x = 6.5, y = 0.
  EXPECT_TRUE(almost_equal(p, {6.5, 0.0}, 1e-9));
  // And the point sits inside the outer, outside the inner.
  EXPECT_TRUE(outer.contains(p));
  EXPECT_FALSE(inner.contains(p));
}

TEST(IntersectCircles, ConcentricReturnsMidpoint) {
  const Circle a{{2.0, 3.0}, 1.0};
  const Circle b{{2.0, 3.0}, 4.0};
  const CircleIntersection ix = intersect_circles(a, b);
  EXPECT_EQ(ix.count, 0);
  EXPECT_TRUE(almost_equal(ix.p1, {2.0, 3.0}));
}

TEST(CirclePairPoint, OverlappingIsChordMidpoint) {
  const Circle a{{0.0, 0.0}, 1.0};
  const Circle b{{1.0, 0.0}, 1.0};
  const Vec2 p = circle_pair_point(a, b);
  EXPECT_TRUE(almost_equal(p, {0.5, 0.0}, 1e-9));
}

TEST(CirclePairPoints, MatchesIntersectionWhenCrossing) {
  const Circle a{{0.0, 0.0}, 5.0};
  const Circle b{{6.0, 0.0}, 5.0};
  const auto [p1, p2] = circle_pair_points(a, b);
  EXPECT_NE(p1, p2);
  EXPECT_NEAR(distance(p1, a.center), 5.0, 1e-9);
  EXPECT_NEAR(distance(p1, b.center), 5.0, 1e-9);
  EXPECT_NEAR(distance(p2, a.center), 5.0, 1e-9);
  EXPECT_NEAR(distance(p2, b.center), 5.0, 1e-9);
}

TEST(CirclePairPoint, ZeroRadiusPair) {
  const Circle a{{0.0, 0.0}, 0.0};
  const Circle b{{4.0, 0.0}, 0.0};
  // Two points (degenerate circles): halfway between them.
  EXPECT_TRUE(almost_equal(circle_pair_point(a, b), {2.0, 0.0}));
}

// Property sweep: intersection points returned with count == 2 lie on
// both rings; count == 0 best-effort points are finite and between
// the centers' line.
class CirclePairSweep : public ::testing::TestWithParam<int> {};

TEST_P(CirclePairSweep, InvariantsHold) {
  const int i = GetParam();
  const double d = 0.5 + 0.9 * i;            // center separation
  const double r1 = 1.0 + (i % 5);           // radii vary
  const double r2 = 0.5 + (i % 7) * 0.75;
  const Circle a{{0.0, 0.0}, r1};
  const Circle b{{d, 0.0}, r2};
  const CircleIntersection ix = intersect_circles(a, b);
  if (ix.count == 2) {
    for (const Vec2 p : {ix.p1, ix.p2}) {
      EXPECT_NEAR(distance(p, a.center), r1, 1e-7);
      EXPECT_NEAR(distance(p, b.center), r2, 1e-7);
    }
  } else {
    EXPECT_TRUE(is_finite(ix.p1));
    // Best-effort point is on the segment between ring extremes,
    // hence within max(r1, r2) + d of both centers.
    EXPECT_LE(distance(ix.p1, a.center), r1 + r2 + d + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CirclePairSweep,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace loctk::geom

// Unit tests for the Kalman and particle-filter trackers (the paper's
// future-work §6 item 2: history + Bayesian filtering).

#include "core/tracking.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/probabilistic.hpp"
#include "stats/rng.hpp"
#include "test_fixtures.hpp"

namespace loctk::core {
namespace {

using testing::fixture_observation;
using testing::make_fixture_db;

TEST(Kalman, FirstUpdateInitializesVerbatim) {
  KalmanTracker kf;
  EXPECT_FALSE(kf.initialized());
  const geom::Vec2 out = kf.update({10.0, 20.0});
  EXPECT_TRUE(kf.initialized());
  EXPECT_EQ(out, geom::Vec2(10.0, 20.0));
  EXPECT_EQ(kf.position(), geom::Vec2(10.0, 20.0));
  EXPECT_EQ(kf.velocity(), geom::Vec2(0.0, 0.0));
}

TEST(Kalman, ConvergesOnStaticTarget) {
  KalmanConfig cfg;
  cfg.measurement_sigma_ft = 5.0;
  KalmanTracker kf(cfg);
  stats::Rng rng(5);
  const geom::Vec2 truth{25.0, 15.0};
  geom::Vec2 last;
  for (int i = 0; i < 60; ++i) {
    last = kf.update({truth.x + rng.normal(0.0, 5.0),
                      truth.y + rng.normal(0.0, 5.0)});
  }
  EXPECT_LT(geom::distance(last, truth), 3.0);
  EXPECT_LT(kf.velocity().norm(), 1.0);
}

TEST(Kalman, SmoothsNoisyMeasurementsOfMovingTarget) {
  // Constant-velocity target; filtered RMS error must beat raw RMS.
  KalmanConfig cfg;
  cfg.measurement_sigma_ft = 6.0;
  cfg.accel_sigma = 0.5;
  KalmanTracker kf(cfg);
  stats::Rng rng(7);
  double raw_se = 0.0, filt_se = 0.0;
  int n = 0;
  for (int step = 0; step < 200; ++step) {
    const geom::Vec2 truth{5.0 + 0.5 * step, 10.0 + 0.25 * step};
    const geom::Vec2 meas{truth.x + rng.normal(0.0, 6.0),
                          truth.y + rng.normal(0.0, 6.0)};
    const geom::Vec2 filt = kf.update(meas);
    if (step >= 20) {  // after burn-in
      raw_se += geom::distance2(meas, truth);
      filt_se += geom::distance2(filt, truth);
      ++n;
    }
  }
  EXPECT_LT(std::sqrt(filt_se / n), 0.7 * std::sqrt(raw_se / n));
}

TEST(Kalman, PredictCoastsAlongVelocity) {
  KalmanConfig cfg;
  cfg.dt_s = 1.0;
  KalmanTracker kf(cfg);
  // Feed a clean constant-velocity track to learn the velocity.
  for (int i = 0; i <= 30; ++i) {
    kf.update({static_cast<double>(i), 0.0});
  }
  const geom::Vec2 before = kf.position();
  const geom::Vec2 coasted = kf.predict();
  EXPECT_GT(coasted.x, before.x + 0.5);  // kept moving in +x
  EXPECT_NEAR(coasted.y, 0.0, 0.5);
}

TEST(Kalman, PredictBeforeInitIsNoop) {
  KalmanTracker kf;
  EXPECT_EQ(kf.predict(), geom::Vec2());
  EXPECT_FALSE(kf.initialized());
}

TEST(Kalman, ResetClearsState) {
  KalmanTracker kf;
  kf.update({5.0, 5.0});
  kf.reset();
  EXPECT_FALSE(kf.initialized());
  EXPECT_EQ(kf.update({1.0, 2.0}), geom::Vec2(1.0, 2.0));
}

TEST(TrackedLocator, WrapsBaseAndCoastsThroughDropouts) {
  const auto db = make_fixture_db();
  const ProbabilisticLocator base(db);
  TrackedLocator tracked(base);
  EXPECT_EQ(tracked.name(), "probabilistic-ml+kalman");

  // Warm up with valid observations near (20, 20).
  LocationEstimate est;
  for (int i = 0; i < 10; ++i) {
    est = tracked.locate(fixture_observation({20.0, 20.0}));
    ASSERT_TRUE(est.valid);
  }
  // Dropout: empty observation, the base fails but the tracker coasts.
  est = tracked.locate(Observation{});
  EXPECT_TRUE(est.valid);
  EXPECT_LT(geom::distance(est.position, {20.0, 20.0}), 8.0);
}

TEST(ParticleFilter, ConvergesOnStaticClient) {
  const auto db = make_fixture_db();
  ParticleFilterConfig cfg;
  cfg.particle_count = 300;
  cfg.motion_sigma_ft = 2.0;
  ParticleFilterTracker pf(db, geom::Rect::sized(40.0, 40.0), cfg);
  EXPECT_EQ(pf.particle_count(), 300);

  const geom::Vec2 truth{12.0, 28.0};
  geom::Vec2 est;
  for (int i = 0; i < 20; ++i) {
    est = pf.step(fixture_observation(truth));
  }
  EXPECT_LT(geom::distance(est, truth), 5.0);
}

TEST(ParticleFilter, TracksAMovingClient) {
  const auto db = make_fixture_db();
  ParticleFilterConfig cfg;
  cfg.particle_count = 400;
  cfg.motion_sigma_ft = 2.5;
  ParticleFilterTracker pf(db, geom::Rect::sized(40.0, 40.0), cfg);

  // Walk along y = 20 from x = 5 to x = 35; after convergence the
  // estimate should stay within a few feet of the walker.
  double worst_late_error = 0.0;
  for (int step = 0; step <= 30; ++step) {
    const geom::Vec2 truth{5.0 + step, 20.0};
    const geom::Vec2 est = pf.step(fixture_observation(truth));
    if (step >= 10) {
      worst_late_error =
          std::max(worst_late_error, geom::distance(est, truth));
    }
  }
  EXPECT_LT(worst_late_error, 8.0);
}

TEST(ParticleFilter, EffectiveSampleSizeAndReset) {
  const auto db = make_fixture_db();
  ParticleFilterConfig cfg;
  cfg.particle_count = 100;
  ParticleFilterTracker pf(db, geom::Rect::sized(40.0, 40.0), cfg);
  // Uniform weights: ESS == N.
  EXPECT_NEAR(pf.effective_sample_size(), 100.0, 1e-9);
  pf.step(fixture_observation({20.0, 20.0}));
  EXPECT_GT(pf.effective_sample_size(), 1.0);
  pf.reset();
  EXPECT_NEAR(pf.effective_sample_size(), 100.0, 1e-9);
}

TEST(ParticleFilter, EmptyObservationOnlyDiffuses) {
  const auto db = make_fixture_db();
  ParticleFilterConfig cfg;
  cfg.particle_count = 200;
  ParticleFilterTracker pf(db, geom::Rect::sized(40.0, 40.0), cfg);
  // Converge first.
  for (int i = 0; i < 10; ++i) pf.step(fixture_observation({20.0, 20.0}));
  const geom::Vec2 before = pf.estimate();
  pf.step(Observation{});  // no measurement
  // Estimate drifts only slightly (motion noise), never jumps.
  EXPECT_LT(geom::distance(pf.estimate(), before), 5.0);
}

TEST(ParticleFilter, DeterministicForSeed) {
  const auto db = make_fixture_db();
  ParticleFilterConfig cfg;
  cfg.seed = 1234;
  ParticleFilterTracker a(db, geom::Rect::sized(40.0, 40.0), cfg);
  ParticleFilterTracker b(db, geom::Rect::sized(40.0, 40.0), cfg);
  for (int i = 0; i < 5; ++i) {
    const geom::Vec2 ea = a.step(fixture_observation({10.0, 10.0}));
    const geom::Vec2 eb = b.step(fixture_observation({10.0, 10.0}));
    EXPECT_EQ(ea, eb);
  }
}

}  // namespace
}  // namespace loctk::core

// Unit tests for the Kalman and particle-filter trackers (the paper's
// future-work §6 item 2: history + Bayesian filtering).

#include "core/tracking.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/probabilistic.hpp"
#include "stats/rng.hpp"
#include "test_fixtures.hpp"

namespace loctk::core {
namespace {

using testing::fixture_observation;
using testing::make_fixture_db;

TEST(Kalman, FirstUpdateInitializesVerbatim) {
  KalmanTracker kf;
  EXPECT_FALSE(kf.initialized());
  const geom::Vec2 out = kf.update({10.0, 20.0});
  EXPECT_TRUE(kf.initialized());
  EXPECT_EQ(out, geom::Vec2(10.0, 20.0));
  EXPECT_EQ(kf.position(), geom::Vec2(10.0, 20.0));
  EXPECT_EQ(kf.velocity(), geom::Vec2(0.0, 0.0));
}

TEST(Kalman, ConvergesOnStaticTarget) {
  KalmanConfig cfg;
  cfg.measurement_sigma_ft = 5.0;
  KalmanTracker kf(cfg);
  stats::Rng rng(5);
  const geom::Vec2 truth{25.0, 15.0};
  geom::Vec2 last;
  for (int i = 0; i < 60; ++i) {
    last = kf.update({truth.x + rng.normal(0.0, 5.0),
                      truth.y + rng.normal(0.0, 5.0)});
  }
  EXPECT_LT(geom::distance(last, truth), 3.0);
  EXPECT_LT(kf.velocity().norm(), 1.0);
}

TEST(Kalman, SmoothsNoisyMeasurementsOfMovingTarget) {
  // Constant-velocity target; filtered RMS error must beat raw RMS.
  KalmanConfig cfg;
  cfg.measurement_sigma_ft = 6.0;
  cfg.accel_sigma = 0.5;
  KalmanTracker kf(cfg);
  stats::Rng rng(7);
  double raw_se = 0.0, filt_se = 0.0;
  int n = 0;
  for (int step = 0; step < 200; ++step) {
    const geom::Vec2 truth{5.0 + 0.5 * step, 10.0 + 0.25 * step};
    const geom::Vec2 meas{truth.x + rng.normal(0.0, 6.0),
                          truth.y + rng.normal(0.0, 6.0)};
    const geom::Vec2 filt = kf.update(meas);
    if (step >= 20) {  // after burn-in
      raw_se += geom::distance2(meas, truth);
      filt_se += geom::distance2(filt, truth);
      ++n;
    }
  }
  EXPECT_LT(std::sqrt(filt_se / n), 0.7 * std::sqrt(raw_se / n));
}

TEST(Kalman, PredictCoastsAlongVelocity) {
  KalmanConfig cfg;
  cfg.dt_s = 1.0;
  KalmanTracker kf(cfg);
  // Feed a clean constant-velocity track to learn the velocity.
  for (int i = 0; i <= 30; ++i) {
    kf.update({static_cast<double>(i), 0.0});
  }
  const geom::Vec2 before = kf.position();
  const geom::Vec2 coasted = kf.predict();
  EXPECT_GT(coasted.x, before.x + 0.5);  // kept moving in +x
  EXPECT_NEAR(coasted.y, 0.0, 0.5);
}

TEST(Kalman, PredictBeforeInitIsNoop) {
  KalmanTracker kf;
  EXPECT_EQ(kf.predict(), geom::Vec2());
  EXPECT_FALSE(kf.initialized());
}

TEST(Kalman, ResetClearsState) {
  KalmanTracker kf;
  kf.update({5.0, 5.0});
  kf.reset();
  EXPECT_FALSE(kf.initialized());
  EXPECT_EQ(kf.update({1.0, 2.0}), geom::Vec2(1.0, 2.0));
}

// Regression: the filter used to hard-wire config.dt_s into every
// predict, mis-weighting the velocity model whenever real scans did
// not arrive on the configured cadence.
TEST(Kalman, ExplicitDtMatchesClosedFormCovariance) {
  KalmanConfig cfg;
  cfg.accel_sigma = 1.5;
  cfg.dt_s = 1.0;
  KalmanTracker kf(cfg);
  kf.update({3.0, 4.0});  // initialize
  const auto p0 = kf.covariance_x();

  // One predict step of dt: P' = F P F^T + Q, with
  // F = [[1, dt], [0, 1]] and white-acceleration Q.
  const double dt = 0.25;
  const double q = cfg.accel_sigma * cfg.accel_sigma;
  const double e00 = p0.p00 + 2.0 * dt * p0.p01 + dt * dt * p0.p11 +
                     q * dt * dt * dt * dt / 4.0;
  const double e01 = p0.p01 + dt * p0.p11 + q * dt * dt * dt / 2.0;
  const double e11 = p0.p11 + q * dt * dt;

  kf.predict(dt);
  const auto p1 = kf.covariance_x();
  EXPECT_NEAR(p1.p00, e00, 1e-12);
  EXPECT_NEAR(p1.p01, e01, 1e-12);
  EXPECT_NEAR(p1.p11, e11, 1e-12);
}

TEST(Kalman, ExplicitDtScalesPositionAdvance) {
  KalmanConfig cfg;
  cfg.dt_s = 1.0;
  KalmanTracker kf(cfg);
  // Learn a clean +1 ft/s track, then coast by two different steps.
  for (int i = 0; i <= 30; ++i) kf.update({static_cast<double>(i), 0.0});
  const geom::Vec2 v = kf.velocity();
  const geom::Vec2 before = kf.position();
  const geom::Vec2 after = kf.predict(0.5);
  EXPECT_NEAR(after.x - before.x, 0.5 * v.x, 1e-9);
  EXPECT_NEAR(after.y - before.y, 0.5 * v.y, 1e-9);
}

TEST(Kalman, InvalidDtFallsBackToConfig) {
  KalmanConfig cfg;
  cfg.dt_s = 1.0;
  auto run = [&](auto&& step) {
    KalmanTracker kf(cfg);
    for (int i = 0; i <= 10; ++i) kf.update({static_cast<double>(i), 0.0});
    return step(kf);
  };
  const geom::Vec2 baseline =
      run([](KalmanTracker& kf) { return kf.predict(); });
  for (const double bad : {0.0, -2.0,
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity()}) {
    const geom::Vec2 got =
        run([&](KalmanTracker& kf) { return kf.predict(bad); });
    EXPECT_EQ(got, baseline) << "dt=" << bad;
  }
}

TEST(Kalman, TimestampedUpdatesUseRealSpacing) {
  KalmanConfig cfg;
  cfg.dt_s = 1.0;
  // Same measurement sequence through update_at (timestamps spaced
  // 0.5 s apart) and through update with explicit dt = 0.5: identical
  // trajectories. The first update_at has no previous timestamp and
  // initializes verbatim either way.
  KalmanTracker at(cfg);
  KalmanTracker dt(cfg);
  for (int i = 0; i <= 20; ++i) {
    const geom::Vec2 m{static_cast<double>(i), 2.0};
    const geom::Vec2 pa = at.update_at(m, 100.0 + 0.5 * i);
    const geom::Vec2 pd = dt.update(m, 0.5);
    EXPECT_EQ(pa, pd) << "step " << i;
  }
  // And the 0.5 s spacing must differ from the 1 s default — i.e. the
  // timestamps actually changed the propagation.
  KalmanTracker fixed(cfg);
  for (int i = 0; i <= 20; ++i) {
    fixed.update({static_cast<double>(i), 2.0});
  }
  EXPECT_NE(fixed.covariance_x().p00, at.covariance_x().p00);
}

TEST(Kalman, RewoundTimestampFallsBackAndReanchors) {
  KalmanConfig cfg;
  cfg.dt_s = 1.0;
  KalmanTracker kf(cfg);
  kf.update_at({0.0, 0.0}, 10.0);
  kf.update_at({1.0, 0.0}, 9.0);   // clock rewound: fallback dt
  // Re-anchored at 9.0: the next step sees dt = 1.0, not 2.0.
  KalmanTracker ref(cfg);
  ref.update({0.0, 0.0}, 1.0);
  ref.update({1.0, 0.0}, 1.0);
  ref.update({2.0, 0.0}, 1.0);
  kf.update_at({2.0, 0.0}, 10.0);
  EXPECT_EQ(kf.position(), ref.position());
  EXPECT_NEAR(kf.covariance_x().p00, ref.covariance_x().p00, 1e-12);
}

TEST(Kalman, LastInnovationTracksPredictionError) {
  KalmanTracker kf;
  kf.update({0.0, 0.0});
  EXPECT_DOUBLE_EQ(kf.last_innovation_ft(), 0.0);  // init, no predict
  kf.update({3.0, 4.0});
  // Predicted position stays at (0,0) (zero initial velocity), so the
  // innovation is the full 3-4-5 offset.
  EXPECT_NEAR(kf.last_innovation_ft(), 5.0, 1e-12);
  kf.reset();
  EXPECT_DOUBLE_EQ(kf.last_innovation_ft(), 0.0);
}

TEST(TrackedLocator, WrapsBaseAndCoastsThroughDropouts) {
  const auto db = make_fixture_db();
  const ProbabilisticLocator base(db);
  TrackedLocator tracked(base);
  EXPECT_EQ(tracked.name(), "probabilistic-ml+kalman");

  // Warm up with valid observations near (20, 20).
  LocationEstimate est;
  for (int i = 0; i < 10; ++i) {
    est = tracked.locate(fixture_observation({20.0, 20.0}));
    ASSERT_TRUE(est.valid);
  }
  // Dropout: empty observation, the base fails but the tracker coasts.
  est = tracked.locate(Observation{});
  EXPECT_TRUE(est.valid);
  EXPECT_LT(geom::distance(est.position, {20.0, 20.0}), 8.0);
}

TEST(ParticleFilter, ConvergesOnStaticClient) {
  const auto db = make_fixture_db();
  ParticleFilterConfig cfg;
  cfg.particle_count = 300;
  cfg.motion_sigma_ft = 2.0;
  ParticleFilterTracker pf(db, geom::Rect::sized(40.0, 40.0), cfg);
  EXPECT_EQ(pf.particle_count(), 300);

  const geom::Vec2 truth{12.0, 28.0};
  geom::Vec2 est;
  for (int i = 0; i < 20; ++i) {
    est = pf.step(fixture_observation(truth));
  }
  EXPECT_LT(geom::distance(est, truth), 5.0);
}

TEST(ParticleFilter, TracksAMovingClient) {
  const auto db = make_fixture_db();
  ParticleFilterConfig cfg;
  cfg.particle_count = 400;
  cfg.motion_sigma_ft = 2.5;
  ParticleFilterTracker pf(db, geom::Rect::sized(40.0, 40.0), cfg);

  // Walk along y = 20 from x = 5 to x = 35; after convergence the
  // estimate should stay within a few feet of the walker.
  double worst_late_error = 0.0;
  for (int step = 0; step <= 30; ++step) {
    const geom::Vec2 truth{5.0 + step, 20.0};
    const geom::Vec2 est = pf.step(fixture_observation(truth));
    if (step >= 10) {
      worst_late_error =
          std::max(worst_late_error, geom::distance(est, truth));
    }
  }
  EXPECT_LT(worst_late_error, 8.0);
}

TEST(ParticleFilter, EffectiveSampleSizeAndReset) {
  const auto db = make_fixture_db();
  ParticleFilterConfig cfg;
  cfg.particle_count = 100;
  ParticleFilterTracker pf(db, geom::Rect::sized(40.0, 40.0), cfg);
  // Uniform weights: ESS == N.
  EXPECT_NEAR(pf.effective_sample_size(), 100.0, 1e-9);
  pf.step(fixture_observation({20.0, 20.0}));
  EXPECT_GT(pf.effective_sample_size(), 1.0);
  pf.reset();
  EXPECT_NEAR(pf.effective_sample_size(), 100.0, 1e-9);
}

TEST(ParticleFilter, EmptyObservationOnlyDiffuses) {
  const auto db = make_fixture_db();
  ParticleFilterConfig cfg;
  cfg.particle_count = 200;
  ParticleFilterTracker pf(db, geom::Rect::sized(40.0, 40.0), cfg);
  // Converge first.
  for (int i = 0; i < 10; ++i) pf.step(fixture_observation({20.0, 20.0}));
  const geom::Vec2 before = pf.estimate();
  pf.step(Observation{});  // no measurement
  // Estimate drifts only slightly (motion noise), never jumps.
  EXPECT_LT(geom::distance(pf.estimate(), before), 5.0);
}

TEST(ParticleFilter, DeterministicForSeed) {
  const auto db = make_fixture_db();
  ParticleFilterConfig cfg;
  cfg.seed = 1234;
  ParticleFilterTracker a(db, geom::Rect::sized(40.0, 40.0), cfg);
  ParticleFilterTracker b(db, geom::Rect::sized(40.0, 40.0), cfg);
  for (int i = 0; i < 5; ++i) {
    const geom::Vec2 ea = a.step(fixture_observation({10.0, 10.0}));
    const geom::Vec2 eb = b.step(fixture_observation({10.0, 10.0}));
    EXPECT_EQ(ea, eb);
  }
}

}  // namespace
}  // namespace loctk::core

// Unit tests for the axis-aligned rectangle type (site footprints).

#include "geom/rect.hpp"

#include <gtest/gtest.h>

namespace loctk::geom {
namespace {

TEST(Rect, SizedAndAccessors) {
  const Rect r = Rect::sized(50.0, 40.0);
  EXPECT_EQ(r.min, Vec2(0.0, 0.0));
  EXPECT_EQ(r.max, Vec2(50.0, 40.0));
  EXPECT_DOUBLE_EQ(r.width(), 50.0);
  EXPECT_DOUBLE_EQ(r.height(), 40.0);
  EXPECT_DOUBLE_EQ(r.area(), 2000.0);
  EXPECT_EQ(r.center(), Vec2(25.0, 20.0));
}

TEST(Rect, ContainsBoundaryInclusive) {
  const Rect r{{0.0, 0.0}, {10.0, 10.0}};
  EXPECT_TRUE(r.contains({5.0, 5.0}));
  EXPECT_TRUE(r.contains({0.0, 0.0}));
  EXPECT_TRUE(r.contains({10.0, 10.0}));
  EXPECT_TRUE(r.contains({10.0, 0.0}));
  EXPECT_FALSE(r.contains({10.1, 5.0}));
  EXPECT_FALSE(r.contains({-0.1, 5.0}));
}

TEST(Rect, Intersects) {
  const Rect a{{0.0, 0.0}, {10.0, 10.0}};
  EXPECT_TRUE(a.intersects({{5.0, 5.0}, {15.0, 15.0}}));
  EXPECT_TRUE(a.intersects({{10.0, 0.0}, {20.0, 10.0}}));  // shared edge
  EXPECT_FALSE(a.intersects({{11.0, 0.0}, {20.0, 10.0}}));
  EXPECT_TRUE(a.intersects({{2.0, 2.0}, {3.0, 3.0}}));  // containment
}

TEST(Rect, ClampProjectsToNearestInterior) {
  const Rect r{{0.0, 0.0}, {10.0, 10.0}};
  EXPECT_EQ(r.clamp({5.0, 5.0}), Vec2(5.0, 5.0));
  EXPECT_EQ(r.clamp({-3.0, 5.0}), Vec2(0.0, 5.0));
  EXPECT_EQ(r.clamp({20.0, 20.0}), Vec2(10.0, 10.0));
  EXPECT_EQ(r.clamp({5.0, -7.0}), Vec2(5.0, 0.0));
}

TEST(Rect, ExpandedTo) {
  Rect r{{0.0, 0.0}, {1.0, 1.0}};
  r = r.expanded_to({5.0, -2.0});
  EXPECT_EQ(r.min, Vec2(0.0, -2.0));
  EXPECT_EQ(r.max, Vec2(5.0, 1.0));
  // Interior point changes nothing.
  EXPECT_EQ(r.expanded_to({1.0, 0.0}), r);
}

TEST(Rect, InflatedBothWays) {
  const Rect r{{10.0, 10.0}, {20.0, 20.0}};
  const Rect grown = r.inflated(2.0);
  EXPECT_EQ(grown.min, Vec2(8.0, 8.0));
  EXPECT_EQ(grown.max, Vec2(22.0, 22.0));
  const Rect shrunk = r.inflated(-3.0);
  EXPECT_EQ(shrunk.min, Vec2(13.0, 13.0));
  EXPECT_EQ(shrunk.max, Vec2(17.0, 17.0));
}

TEST(Rect, NormalizedRepairsSwappedCorners) {
  const Rect swapped{{10.0, 2.0}, {0.0, 8.0}};
  const Rect fixed = swapped.normalized();
  EXPECT_EQ(fixed.min, Vec2(0.0, 2.0));
  EXPECT_EQ(fixed.max, Vec2(10.0, 8.0));
  // Already-normal rect unchanged.
  EXPECT_EQ(fixed.normalized(), fixed);
}

TEST(Rect, CornersCcwOrder) {
  const Rect r{{0.0, 0.0}, {4.0, 3.0}};
  EXPECT_EQ(r.corner(0), Vec2(0.0, 0.0));
  EXPECT_EQ(r.corner(1), Vec2(4.0, 0.0));
  EXPECT_EQ(r.corner(2), Vec2(4.0, 3.0));
  EXPECT_EQ(r.corner(3), Vec2(0.0, 3.0));
  // Index wraps modulo 4.
  EXPECT_EQ(r.corner(4), r.corner(0));
  EXPECT_EQ(r.corner(7), r.corner(3));
}

TEST(Rect, DefaultIsEmptyAtOrigin) {
  const Rect r;
  EXPECT_DOUBLE_EQ(r.area(), 0.0);
  EXPECT_TRUE(r.contains({0.0, 0.0}));
}

}  // namespace
}  // namespace loctk::geom

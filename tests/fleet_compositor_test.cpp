// The tile-parallel fleet compositor: byte-determinism across thread
// counts and tile sizes, and byte-identity against the serial
// single-pass reference built from the legacy per-call primitives.
//
// The determinism argument (docs/VISUALIZATION.md) is "by
// construction": tiles partition the raster, ops replay per tile in
// global op order, so neither scheduling nor tile geometry can change
// a single byte. These tests are what keep the construction honest.

#include "floorplan/fleet_compositor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "concurrency/thread_pool.hpp"
#include "stats/rng.hpp"
#include "testkit/fleet_frame.hpp"
#include "testkit/scenario.hpp"

namespace loctk::floorplan {
namespace {

::testing::AssertionResult same_raster(const image::Raster& a,
                                       const image::Raster& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.width() << "x" << a.height() << " vs "
           << b.width() << "x" << b.height();
  }
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      if (!(a.at(x, y) == b.at(x, y))) {
        return ::testing::AssertionFailure()
               << "first differing pixel at (" << x << ", " << y << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// A frame exercising every op kind, with overlap (later ops must
/// win) and plenty of geometry straddling 64px tile boundaries.
FleetFrameSpec dense_frame() {
  FleetFrameSpec spec;
  spec.width = 300;
  spec.height = 200;
  spec.background = image::colors::kWhite;

  // Overlapping heat cells crossing tile edges.
  spec.add_fill_rect(40, 40, 60, 50, image::colors::kYellow);
  spec.add_fill_rect(60, 60, 60, 50, image::colors::kOrange);
  spec.add_fill_rect(-20, 180, 80, 60, image::colors::kCyan);  // clipped
  spec.add_rect(10, 10, 280, 180, image::colors::kBlack);
  spec.add_rect(62, 62, 4, 4, image::colors::kPurple);

  // Lines crossing many tiles, plus a dashed one.
  spec.add_line(0, 0, 299, 199, image::colors::kBlue);
  spec.add_line(299, 0, 0, 199, image::colors::kRed, /*dashed=*/true, 5, 3);
  spec.add_line(128, -10, 128, 210, image::colors::kDarkGray);

  // Markers of every shape, deliberately centered on and near the
  // 64px tile boundaries (and the raster edges).
  const image::MarkerShape shapes[] = {
      image::MarkerShape::kCross,        image::MarkerShape::kX,
      image::MarkerShape::kSquare,       image::MarkerShape::kFilledSquare,
      image::MarkerShape::kDiamond,      image::MarkerShape::kCircle,
      image::MarkerShape::kDot,          image::MarkerShape::kTriangle,
  };
  stats::Rng rng(0xF1EE7);
  int shape_index = 0;
  for (int i = 0; i < 120; ++i) {
    const int x = static_cast<int>(rng.uniform_int(-6, 306));
    const int y = static_cast<int>(rng.uniform_int(-6, 206));
    spec.add_marker(x, y, shapes[shape_index % 8],
                    image::colors::kGreen, 2 + (i % 4));
    ++shape_index;
  }
  for (int b = 64; b < 300; b += 64) {
    spec.add_marker(b, 64, shapes[shape_index++ % 8],
                    image::colors::kRed, 5);
    spec.add_marker(b - 1, 128, shapes[shape_index++ % 8],
                    image::colors::kBlue, 5);
  }

  // Labels at every scale, straddling tile seams and raster edges.
  spec.add_text(60, 60, "B0F0-AP17", image::colors::kBlack, 1);
  spec.add_text(120, 120, "seam\nstraddler", image::colors::kRed, 2);
  spec.add_text(-8, 100, "left clip", image::colors::kBlue, 3);
  spec.add_text(280, 190, "corner", image::colors::kDarkGray, 4);
  spec.add_text(100, -5, "top clip", image::colors::kPurple, 1);
  return spec;
}

// The core identity: the tiled path produces the same bytes as the
// serial legacy-primitive reference.
TEST(FleetCompositor, TiledMatchesSerialReference) {
  const FleetFrameSpec spec = dense_frame();
  const FleetCompositor compositor;
  EXPECT_TRUE(same_raster(compositor.render(spec),
                          compositor.render_serial(spec)));
}

// Byte-identical across thread counts {1, 2, 8}.
TEST(FleetCompositor, DeterministicAcrossThreadCounts) {
  const FleetFrameSpec spec = dense_frame();
  const FleetCompositor reference;
  const image::Raster expected = reference.render_serial(spec);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    concurrency::ThreadPool pool(threads);
    FleetCompositorOptions options;
    options.pool = &pool;
    const FleetCompositor compositor(options);
    EXPECT_TRUE(same_raster(compositor.render(spec), expected))
        << threads << " threads";
  }
}

// Byte-identical across tile sizes, including degenerate ones (1px
// tiles, tiles larger than the frame, non-divisor sizes).
TEST(FleetCompositor, DeterministicAcrossTileSizes) {
  const FleetFrameSpec spec = dense_frame();
  const FleetCompositor reference;
  const image::Raster expected = reference.render_serial(spec);
  for (const int tile_px : {1, 7, 16, 64, 100, 4096}) {
    FleetCompositorOptions options;
    options.tile_px = tile_px;
    const FleetCompositor compositor(options);
    EXPECT_TRUE(same_raster(compositor.render(spec), expected))
        << "tile_px " << tile_px;
  }
}

TEST(FleetCompositor, EmptyAndDegenerateFrames) {
  const FleetCompositor compositor;
  EXPECT_EQ(compositor.render(FleetFrameSpec{}).width(), 0);
  FleetFrameSpec no_ops;
  no_ops.width = 33;
  no_ops.height = 17;
  no_ops.background = image::colors::kCyan;
  const image::Raster out = compositor.render(no_ops);
  EXPECT_TRUE(same_raster(out, compositor.render_serial(no_ops)));
  EXPECT_EQ(out.at(32, 16), image::colors::kCyan);
}

// A real (small) campus frame, per-tick, with devices walking across
// tile boundaries: tiled output equals the serial reference on every
// tick, across thread counts.
TEST(FleetCompositor, CampusFrameDeterministicAcrossThreads) {
  radio::CampusSpec campus;
  campus.buildings = 2;
  campus.floors_per_building = 1;
  campus.floor_width_ft = 60.0;
  campus.floor_depth_ft = 40.0;
  campus.rooms_x = 3;
  campus.rooms_y = 2;
  campus.aps_per_floor = 6;
  campus.building_gap_ft = 20.0;
  testkit::ScenarioSpec spec =
      testkit::ScenarioSpec::campus_fleet(8, 4, /*seed=*/7, campus);
  spec.train_scans = 2;
  const testkit::Scenario scenario(spec);
  const testkit::ScanTrace trace = scenario.record_trace();

  const testkit::FleetFrameBuilder frames(scenario);
  ASSERT_GT(frames.tick_count(trace), 0u);
  ASSERT_GT(frames.base().ops.size(), 10u);

  const FleetCompositor reference;
  for (std::size_t tick = 0; tick < frames.tick_count(trace); ++tick) {
    const FleetFrameSpec frame = frames.frame(trace, tick);
    const image::Raster expected = reference.render_serial(frame);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      concurrency::ThreadPool pool(threads);
      FleetCompositorOptions options;
      options.pool = &pool;
      options.tile_px = 48;  // not a divisor of the frame size
      const FleetCompositor compositor(options);
      EXPECT_TRUE(same_raster(compositor.render(frame), expected))
          << "tick " << tick << ", " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace loctk::floorplan

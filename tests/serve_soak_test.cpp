// Server-level soak: the load generator in testkit/server_soak.hpp
// driven at test scale. The heavyweight gates live here under the
// `soak` ctest label (CI's nightly leg runs the 10k-device version via
// `soak_fleet --server`):
//
//  * every built-in invariant holds (scan accounting, swap waves,
//    reclamation, session counts, zero reader stalls);
//  * the combined RunReport is byte-identical across thread counts —
//    concurrency and hot swaps must not leak into the answers;
//  * swaps genuinely landed while traffic was in flight.

#include "testkit/server_soak.hpp"

#include <gtest/gtest.h>

#include "concurrency/thread_pool.hpp"

namespace loctk::testkit {
namespace {

ServerSoakConfig small_config() {
  ServerSoakConfig config;
  config.sites = 3;
  config.devices_per_site = 6;
  config.scans_per_device = 24;
  config.seed = 7;
  // 3*6*24 = 432 scheduled scans minus 3 drop-scan faults (device 3 of
  // each site) = 429 replayed; a wave every 32 → 13 planned waves.
  config.swap_every_scans = 32;
  return config;
}

TEST(ServerSoak, InvariantsHoldAtSmallScale) {
  concurrency::ThreadPool pool(4);
  ServerSoakConfig config = small_config();
  config.pool = &pool;
  const ServerSoakResult result = run_server_soak(config);
  for (const std::string& v : result.violations) {
    ADD_FAILURE() << "invariant violated: " << v;
  }
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.report.scans_replayed, 429u);
  EXPECT_EQ(result.site_reports.size(), config.sites);
  EXPECT_EQ(result.swap_waves, 13u);
  EXPECT_EQ(result.max_generation, 14u);  // initial publish + 13 waves
  EXPECT_GE(result.swap_waves_under_load, 1u);
  EXPECT_GT(result.report.valid_fixes, 0u);
}

TEST(ServerSoak, ReportIsByteDeterministicAcrossThreadCounts) {
  ServerSoakConfig config = small_config();

  concurrency::ThreadPool serial(1);
  config.pool = &serial;
  const ServerSoakResult one = run_server_soak(config);
  ASSERT_TRUE(one.ok());

  concurrency::ThreadPool wide(8);
  config.pool = &wide;
  const ServerSoakResult eight = run_server_soak(config);
  for (const std::string& v : eight.violations) {
    ADD_FAILURE() << "invariant violated: " << v;
  }
  ASSERT_TRUE(eight.ok());

  EXPECT_EQ(one.report, eight.report);
  EXPECT_EQ(one.report.to_json(), eight.report.to_json());
  ASSERT_EQ(one.site_reports.size(), eight.site_reports.size());
  for (std::size_t s = 0; s < one.site_reports.size(); ++s) {
    EXPECT_EQ(one.site_reports[s].to_json(), eight.site_reports[s].to_json())
        << "site " << s;
  }
  // Identical answers even though the two runs performed the same
  // number of swap waves at entirely different moments.
  EXPECT_EQ(one.swap_waves, eight.swap_waves);
}

TEST(ServerSoak, SwapsLandUnderLoad) {
  concurrency::ThreadPool pool(4);
  ServerSoakConfig config = small_config();
  config.pool = &pool;
  // Swap aggressively so many waves land while replay traffic runs.
  config.swap_every_scans = 8;
  const ServerSoakResult result = run_server_soak(config);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.swap_waves, 53u);  // 429 / 8
  EXPECT_GE(result.swap_waves_under_load, 1u);
}

TEST(ServerSoak, CampusSitesMixIntoTheFleetAndStayDeterministic) {
  // One 1020-AP campus site next to two single-floor sites: synthesis
  // is the only site-aware step, so every invariant (scan accounting,
  // swap waves, reclamation, sessions, reader stalls) must hold
  // unchanged, and the report must stay byte-deterministic across
  // thread counts with the big-universe snapshots in the swap mix.
  ServerSoakConfig config = small_config();
  config.campus_sites = 1;
  config.scans_per_device = 12;  // campus synthesis carries the cost
  config.swap_every_scans = 32;

  concurrency::ThreadPool serial(1);
  config.pool = &serial;
  const ServerSoakResult one = run_server_soak(config);
  for (const std::string& v : one.violations) {
    ADD_FAILURE() << "invariant violated: " << v;
  }
  ASSERT_TRUE(one.ok());
  EXPECT_NE(one.report.scenario.find("campus1"), std::string::npos);
  EXPECT_NE(one.site_reports[0].scenario.find("campus"), std::string::npos);
  EXPECT_GT(one.report.valid_fixes, 0u);
  EXPECT_GT(one.site_reports[0].valid_fixes, 0u);

  concurrency::ThreadPool wide(8);
  config.pool = &wide;
  const ServerSoakResult eight = run_server_soak(config);
  ASSERT_TRUE(eight.ok());
  EXPECT_EQ(one.report, eight.report);
  EXPECT_EQ(one.report.to_json(), eight.report.to_json());
}

TEST(ServerSoak, FaultScheduleRejectsSamplesDeterministically) {
  ServerSoakConfig config = small_config();
  config.fault_schedule = true;
  const ServerSoakResult with_faults = run_server_soak(config);
  ASSERT_TRUE(with_faults.ok());
  EXPECT_GT(with_faults.report.rejected_samples, 0u);

  config.fault_schedule = false;
  const ServerSoakResult clean = run_server_soak(config);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.report.rejected_samples, 0u);
}

}  // namespace
}  // namespace loctk::testkit

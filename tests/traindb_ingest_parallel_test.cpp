// Randomized property tests for the parallel ingest pipeline: the
// parallel collection-load and generator paths must produce output
// byte-identical to the serial paths on shuffled multi-file corpora,
// and the direct-to-CompiledDatabase builds must match the two-step
// compile-after-load composition exactly.

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "concurrency/thread_pool.hpp"
#include "core/compiled_db.hpp"
#include "traindb/codec.hpp"
#include "traindb/generator.hpp"
#include "wiscan/archive.hpp"
#include "wiscan/collection.hpp"
#include "wiscan/format.hpp"
#include "wiscan/location_map.hpp"
#include "wiscan/scan_buffer.hpp"

namespace loctk::traindb {
namespace {

namespace fs = std::filesystem;

// A synthetic survey: shuffled wi-scan files (some nested in
// subdirectories), a location map that covers most but not all of
// them, plus one mapped-but-unsurveyed location.
class IngestParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each case as its own (possibly concurrent) process,
    // so the corpus directory must be unique per test.
    dir_ = fs::temp_directory_path() /
           (std::string("loctk_ingest_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_ / "scans" / "wing-b");
    build_corpus(/*seed=*/20260806u);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void build_corpus(unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> ap_count(2, 9);
    std::uniform_int_distribution<int> scan_count(4, 12);
    std::uniform_real_distribution<double> rssi(-90.0, -35.0);

    std::vector<std::string> locations;
    for (int i = 0; i < 24; ++i) {
      locations.push_back("room-" + std::to_string(i));
    }
    std::shuffle(locations.begin(), locations.end(), rng);

    std::string map_text = "# location-map v1\n";
    for (std::size_t i = 0; i < locations.size(); ++i) {
      const std::string& loc = locations[i];
      std::string text = "# wi-scan v1\n# location: " + loc + "\n";
      const int scans = scan_count(rng);
      const int aps = ap_count(rng);
      for (int t = 0; t < scans; ++t) {
        for (int a = 0; a < aps; ++a) {
          // Some <point, AP> pairs stay below min_samples_per_ap so
          // the generator's drop path runs too.
          if ((a + t + static_cast<int>(i)) % 7 == 0 && t > 1) continue;
          text += "time=" + std::to_string(t) + ".0 bssid=ap:" +
                  std::to_string(a % 13) + " ssid=net channel=" +
                  std::to_string(1 + a % 11) + " rssi=" +
                  std::to_string(rssi(rng)) + "\n";
        }
      }
      // A guaranteed-rare AP heard only twice: always below the
      // default min_samples_per_ap, so the drop path runs everywhere.
      text += "time=0.0 bssid=ap:rare rssi=-88.0\n"
              "time=1.0 bssid=ap:rare rssi=-87.5\n";
      // Scatter files across subdirectories; loading must not depend
      // on filesystem layout or enumeration order.
      const fs::path rel = i % 3 == 0 ? fs::path("scans") / (loc + ".wiscan")
                           : i % 3 == 1
                               ? fs::path("scans") / "wing-b" / (loc + ".wiscan")
                               : fs::path(loc + ".wiscan");
      std::ofstream(dir_ / rel) << text;
      // Leave two surveyed locations out of the map (unmapped), and
      // map one location nobody surveyed (unsurveyed).
      if (i >= 2) {
        map_text += loc + " " + std::to_string(10 * i) + ".0 " +
                    std::to_string(5 * i) + ".5\n";
      }
    }
    map_text += "phantom-lab 999.0 999.0\n";
    std::ofstream(dir_ / "site.locmap") << map_text;
    map_ = wiscan::LocationMap::read(dir_ / "site.locmap");
  }

  fs::path archive_path() {
    const fs::path p = dir_ / "survey.lar";
    if (!fs::exists(p)) {
      // Pack only the wi-scan corpus, not the map/archive themselves.
      auto ar = wiscan::Archive::pack_directory(dir_ / "scans");
      // Root-level files too, so the archive mirrors the full corpus.
      for (const auto& entry : fs::directory_iterator(dir_)) {
        if (entry.path().extension() == ".wiscan") {
          ar.add(entry.path().filename().string(),
                 wiscan::read_file_bytes(entry.path()));
        }
      }
      ar.write(p);
    }
    return p;
  }

  fs::path dir_;
  wiscan::LocationMap map_;
};

TEST_F(IngestParallelTest, ParallelDirectoryLoadIsIdenticalToSerial) {
  concurrency::ThreadPool pool(4);
  const wiscan::Collection serial = wiscan::load_collection(dir_);
  const wiscan::Collection parallel = wiscan::load_collection(dir_, &pool);
  EXPECT_EQ(serial.files, parallel.files);
}

TEST_F(IngestParallelTest, ParallelArchiveLoadIsIdenticalToSerial) {
  concurrency::ThreadPool pool(3);
  const fs::path lar = archive_path();
  const wiscan::Collection serial = wiscan::load_collection(lar);
  const wiscan::Collection parallel = wiscan::load_collection(lar, &pool);
  EXPECT_EQ(serial.files, parallel.files);
  // The archive mirrors the directory corpus entry for entry.
  EXPECT_EQ(serial.files, wiscan::load_collection(dir_).files);
}

TEST_F(IngestParallelTest, ParallelGeneratorBytesMatchSerial) {
  const wiscan::Collection collection = wiscan::load_collection(dir_);
  for (const bool keep_samples : {false, true}) {
    GeneratorConfig config;
    config.keep_samples = keep_samples;
    config.site_name = "prop-test";

    GeneratorReport serial_report;
    const TrainingDatabase serial =
        generate_database(collection, map_, config, &serial_report);

    concurrency::ThreadPool pool(4);
    GeneratorReport parallel_report;
    const TrainingDatabase parallel = generate_database_parallel(
        collection, map_, pool, config, &parallel_report);

    EXPECT_EQ(encode_database(serial), encode_database(parallel));
    EXPECT_EQ(serial_report.unmapped_locations,
              parallel_report.unmapped_locations);
    EXPECT_EQ(serial_report.unsurveyed_locations,
              parallel_report.unsurveyed_locations);
    EXPECT_EQ(serial_report.dropped_pairs, parallel_report.dropped_pairs);
    EXPECT_EQ(serial_report.points_built, parallel_report.points_built);
    // The corpus really exercises the report paths.
    EXPECT_EQ(serial_report.unmapped_locations.size(), 2u);
    EXPECT_EQ(serial_report.unsurveyed_locations.size(), 1u);
    EXPECT_GT(serial_report.dropped_pairs, 0u);
  }
}

TEST_F(IngestParallelTest, EndToEndFromPathBytesMatchSerial) {
  GeneratorConfig config;
  config.site_name = "e2e";
  const fs::path map_file = dir_ / "site.locmap";

  concurrency::ThreadPool pool(4);
  for (const fs::path& source : {dir_, archive_path()}) {
    const TrainingDatabase serial =
        generate_database_from_path(source, map_file, config);
    const TrainingDatabase parallel =
        generate_database_from_path(source, map_file, config, nullptr, &pool);
    EXPECT_EQ(encode_database(serial), encode_database(parallel))
        << "source: " << source;
  }
}

// generate_database_from_path streams rows straight into sample
// buckets without materializing a Collection; its output — bytes and
// report alike — must be indistinguishable from the materialized
// load_collection + generate_database composition.
TEST_F(IngestParallelTest, FromPathMatchesLoadCollectionGenerate) {
  const fs::path map_file = dir_ / "site.locmap";
  for (const bool keep_samples : {false, true}) {
    GeneratorConfig config;
    config.keep_samples = keep_samples;
    config.site_name = "stream-vs-materialized";
    for (const fs::path& source : {dir_, archive_path()}) {
      GeneratorReport streamed_report;
      const TrainingDatabase streamed = generate_database_from_path(
          source, map_file, config, &streamed_report);

      GeneratorReport materialized_report;
      const TrainingDatabase materialized =
          generate_database(wiscan::load_collection(source), map_, config,
                            &materialized_report);

      EXPECT_EQ(encode_database(streamed), encode_database(materialized))
          << "source: " << source;
      EXPECT_EQ(streamed_report.unmapped_locations,
                materialized_report.unmapped_locations);
      EXPECT_EQ(streamed_report.unsurveyed_locations,
                materialized_report.unsurveyed_locations);
      EXPECT_EQ(streamed_report.dropped_pairs,
                materialized_report.dropped_pairs);
      EXPECT_EQ(streamed_report.points_built,
                materialized_report.points_built);
    }
  }
}

TEST_F(IngestParallelTest, FromPathRejectsNonCorpusSources) {
  EXPECT_THROW(generate_database_from_path(dir_ / "nope",
                                           dir_ / "site.locmap"),
               wiscan::FormatError);
  // A regular file that is not a .lar archive is not a corpus either.
  EXPECT_THROW(generate_database_from_path(dir_ / "site.locmap",
                                           dir_ / "site.locmap"),
               wiscan::FormatError);
}

TEST_F(IngestParallelTest, RepeatedParallelRunsAreDeterministic) {
  const fs::path map_file = dir_ / "site.locmap";
  concurrency::ThreadPool pool(5);
  const std::string first = encode_database(
      generate_database_from_path(dir_, map_file, {}, nullptr, &pool));
  for (int run = 0; run < 3; ++run) {
    EXPECT_EQ(first,
              encode_database(generate_database_from_path(
                  dir_, map_file, {}, nullptr, &pool)));
  }
}

TEST(FromPoints, MatchesIncrementalAddPoint) {
  std::mt19937 rng(7u);
  std::uniform_real_distribution<double> dbm(-90.0, -30.0);
  std::vector<TrainingPoint> points;
  for (int i = 0; i < 12; ++i) {
    TrainingPoint p;
    p.location = "p" + std::to_string(i);
    p.position = {static_cast<double>(i), static_cast<double>(2 * i)};
    for (int a = 0; a < 6; ++a) {
      ApStatistics s;
      s.bssid = "ap:" + std::to_string((a * 5 + i) % 9);
      s.mean_dbm = dbm(rng);
      s.stddev_db = 2.0;
      s.sample_count = 10;
      s.scan_count = 10;
      s.min_dbm = s.mean_dbm - 5.0;
      s.max_dbm = s.mean_dbm + 5.0;
      p.per_ap.push_back(std::move(s));
    }
    // per_ap arrives unsorted; both construction paths must sort it.
    std::shuffle(p.per_ap.begin(), p.per_ap.end(), rng);
    points.push_back(std::move(p));
  }

  TrainingDatabase incremental;
  incremental.set_site_name("site");
  for (const TrainingPoint& p : points) incremental.add_point(p);

  const TrainingDatabase bulk =
      TrainingDatabase::from_points(points, "site");
  EXPECT_EQ(bulk.bssid_universe(), incremental.bssid_universe());
  EXPECT_EQ(encode_database(bulk), encode_database(incremental));
}

TEST(FromPoints, RejectsDuplicateLocations) {
  std::vector<TrainingPoint> points(2);
  points[0].location = "same";
  points[1].location = "same";
  EXPECT_THROW(TrainingDatabase::from_points(std::move(points)),
               DatabaseError);
}

void expect_same_compilation(const core::CompiledDatabase& a,
                             const core::CompiledDatabase& b) {
  ASSERT_EQ(a.point_count(), b.point_count());
  ASSERT_EQ(a.universe_size(), b.universe_size());
  EXPECT_EQ(encode_database(a.database()), encode_database(b.database()));
  const std::size_t row = a.universe_size() * sizeof(double);
  for (std::size_t p = 0; p < a.point_count(); ++p) {
    EXPECT_EQ(std::memcmp(a.mean_row(p), b.mean_row(p), row), 0);
    EXPECT_EQ(std::memcmp(a.stddev_row(p), b.stddev_row(p), row), 0);
    EXPECT_EQ(std::memcmp(a.mask_row(p), b.mask_row(p), row), 0);
    EXPECT_EQ(std::memcmp(a.weight_row(p), b.weight_row(p), row), 0);
    EXPECT_EQ(a.trained_count(p), b.trained_count(p));
  }
}

TEST_F(IngestParallelTest, CompileCollectionMatchesCompileAfterLoad) {
  const wiscan::Collection collection = wiscan::load_collection(dir_);
  GeneratorConfig config;
  config.site_name = "direct";

  const TrainingDatabase two_step_db =
      generate_database(collection, map_, config);
  const auto two_step = core::CompiledDatabase::compile(two_step_db);

  GeneratorReport report;
  const auto direct =
      core::compile_collection(collection, map_, config, &report);
  ASSERT_NE(direct, nullptr);
  expect_same_compilation(*direct, *two_step);
  EXPECT_EQ(report.points_built, two_step_db.size());

  concurrency::ThreadPool pool(4);
  const auto direct_parallel =
      core::compile_collection(collection, map_, config, nullptr, &pool);
  expect_same_compilation(*direct_parallel, *two_step);
}

TEST_F(IngestParallelTest, LoadCompiledDatabaseMatchesDecodeThenCompile) {
  GeneratorConfig config;
  config.keep_samples = true;
  const TrainingDatabase db = generate_database_from_path(
      dir_, dir_ / "site.locmap", config);
  const fs::path ltdb = dir_ / "site.ltdb";
  write_database(ltdb, db);

  const auto loaded = core::load_compiled_database(ltdb);
  ASSERT_NE(loaded, nullptr);
  expect_same_compilation(*loaded, *core::CompiledDatabase::compile(db));

  EXPECT_THROW(core::load_compiled_database(dir_ / "missing.ltdb"),
               CodecError);
}

TEST_F(IngestParallelTest, ProbeDatabaseReadsHeaderWithoutPayload) {
  for (const bool keep_samples : {false, true}) {
    GeneratorConfig config;
    config.keep_samples = keep_samples;
    config.site_name = keep_samples ? "with-samples" : "stats-only";
    const TrainingDatabase db = generate_database_from_path(
        dir_, dir_ / "site.locmap", config);
    const fs::path ltdb = dir_ / "probe.ltdb";
    write_database(ltdb, db);

    const DatabaseFileInfo info = probe_database(ltdb);
    EXPECT_EQ(info.version, 1);
    EXPECT_EQ(info.site_name, config.site_name);
    EXPECT_EQ(info.has_samples(), keep_samples);
    EXPECT_EQ(info.file_bytes, static_cast<std::uint64_t>(
                                   fs::file_size(ltdb)));
  }

  std::ofstream(dir_ / "junk.ltdb") << "not a database";
  EXPECT_THROW(probe_database(dir_ / "junk.ltdb"), CodecError);
  EXPECT_THROW(probe_database(dir_ / "missing.ltdb"), CodecError);
}

}  // namespace
}  // namespace loctk::traindb

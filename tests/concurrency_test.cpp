// Unit tests for the thread pool and data-parallel loops — the
// substrate behind parallel training-database generation and the
// fine-grid locator.

#include "concurrency/parallel_for.hpp"
#include "concurrency/thread_pool.hpp"

#include <atomic>
#include <cmath>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "stats/running_stats.hpp"

namespace loctk::concurrency {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultSizeIsHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 500; ++i) {
    futs.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, TasksReturningValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  parallel_for(pool, 0, touched.size(),
               [&](std::size_t i) { ++touched[i]; });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  ThreadPool pool(2);
  int runs = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
  std::atomic<int> one{0};
  parallel_for(pool, 7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++one;
  });
  EXPECT_EQ(one.load(), 1);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t i) {
                     if (i == 50) throw std::runtime_error("body");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, GrainLimitsChunkCount) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  // grain of 1000 over 100 items -> a single chunk; still correct.
  parallel_for(pool, 0, 100, [&](std::size_t) { ++total; }, 1000);
  EXPECT_EQ(total.load(), 100);
}

TEST(ParallelReduce, SumMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  const auto total = parallel_reduce(
      pool, 0, n, std::uint64_t{0},
      [](std::uint64_t& acc, std::size_t i) { acc += i; },
      [](std::uint64_t& into, std::uint64_t part) { into += part; });
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(ParallelReduce, WelfordMergeIsExact) {
  ThreadPool pool(4);
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(std::sin(i * 0.01) * 30.0 - 60.0);
  }
  stats::RunningStats serial;
  for (const double v : values) serial.add(v);

  const auto par = parallel_reduce(
      pool, 0, values.size(), stats::RunningStats{},
      [&](stats::RunningStats& acc, std::size_t i) { acc.add(values[i]); },
      [](stats::RunningStats& into, const stats::RunningStats& part) {
        into.merge(part);
      });
  EXPECT_EQ(par.count(), serial.count());
  EXPECT_NEAR(par.mean(), serial.mean(), 1e-10);
  EXPECT_NEAR(par.stddev(), serial.stddev(), 1e-10);
}

TEST(DefaultPool, SingletonWorks) {
  auto f = default_pool().submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
  EXPECT_GE(default_pool().thread_count(), 1u);
}

// Regression: a throwing fire-and-forget task must not take the
// worker thread (and with it the whole process) down. Before post()
// grew a worker-side catch, the exception escaped worker_loop and
// std::terminate'd.
TEST(ThreadPool, PostedThrowingTaskDoesNotKillThePool) {
  ThreadPool pool(2);
  pool.post([] { throw std::runtime_error("fire and forget boom"); });
  // The pool must still run tasks afterwards — both post()ed...
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.post([&] { ran.fetch_add(1); });
  }
  // ...and submit()ed (the future also proves the workers are alive).
  EXPECT_EQ(pool.submit([] { return 41 + 1; }).get(), 42);
  while (ran.load() < 8) {
    std::this_thread::yield();
  }
  EXPECT_EQ(pool.uncaught_task_errors(), 1u);
}

TEST(ThreadPool, ErrorCallbackSeesTheEscapedException) {
  ThreadPool pool(1);
  std::promise<std::string> seen;
  pool.set_error_callback([&](std::exception_ptr ep) {
    try {
      std::rethrow_exception(ep);
    } catch (const std::exception& e) {
      seen.set_value(e.what());
    }
  });
  pool.post([] { throw std::runtime_error("reported boom"); });
  EXPECT_EQ(seen.get_future().get(), "reported boom");
  EXPECT_EQ(pool.uncaught_task_errors(), 1u);
}

TEST(ThreadPool, ThrowingErrorCallbackIsContained) {
  ThreadPool pool(1);
  pool.set_error_callback(
      [](std::exception_ptr) { throw std::runtime_error("meta boom"); });
  pool.post([] { throw std::runtime_error("boom"); });
  // Neither the task's nor the callback's exception may kill the
  // worker; the pool still answers.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
  EXPECT_EQ(pool.uncaught_task_errors(), 1u);
}

TEST(ThreadPool, SubmitStillCapturesIntoTheFuture) {
  // submit() exceptions belong to the caller via the future; they are
  // not "uncaught" and must not hit the error callback.
  ThreadPool pool(1);
  std::atomic<int> callback_hits{0};
  pool.set_error_callback(
      [&](std::exception_ptr) { callback_hits.fetch_add(1); });
  auto f = pool.submit([]() -> int { throw std::runtime_error("mine"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_EQ(pool.uncaught_task_errors(), 0u);
  EXPECT_EQ(callback_hits.load(), 0);
}

// Property sweep: parallel_for result independent of thread count.
class ThreadCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCountSweep, SumIndependentOfThreads) {
  ThreadPool pool(static_cast<std::size_t>(GetParam()));
  std::atomic<std::uint64_t> sum{0};
  parallel_for(pool, 1, 1001,
               [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 500500u);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

}  // namespace
}  // namespace loctk::concurrency

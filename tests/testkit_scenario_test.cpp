// Tests for scenario materialization and trace recording: seed
// determinism, fleet layout, fault application, and the trace-to-
// observation windowing the differential oracle consumes.

#include "testkit/scenario.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "testkit/trace.hpp"

namespace loctk::testkit {
namespace {

ScenarioSpec small_fleet() { return ScenarioSpec::fleet(3, 12, /*seed=*/7); }

TEST(Scenario, FleetFactoryIsDeterministic) {
  const ScenarioSpec a = ScenarioSpec::fleet(4, 10, 42);
  const ScenarioSpec b = ScenarioSpec::fleet(4, 10, 42);
  ASSERT_EQ(a.devices.size(), 4u);
  for (std::size_t d = 0; d < a.devices.size(); ++d) {
    EXPECT_EQ(a.devices[d].waypoints, b.devices[d].waypoints);
    EXPECT_EQ(a.devices[d].start_time_s, b.devices[d].start_time_s);
  }
  // Different seeds walk different paths.
  const ScenarioSpec c = ScenarioSpec::fleet(4, 10, 43);
  EXPECT_NE(a.devices[0].waypoints, c.devices[0].waypoints);
}

TEST(Scenario, FleetPathsStayInsideTheSite) {
  const ScenarioSpec spec = ScenarioSpec::fleet(8, 5, 3);
  const geom::Rect footprint = radio::make_paper_house().footprint();
  for (const DeviceSpec& dev : spec.devices) {
    for (const geom::Vec2 wp : dev.waypoints) {
      EXPECT_TRUE(footprint.contains(wp));
    }
  }
}

TEST(Scenario, RecordTraceIsBitForBitDeterministic) {
  const ScenarioSpec spec = small_fleet();
  const Scenario scenario(spec);
  const std::string once = encode_trace(scenario.record_trace());
  const std::string twice = encode_trace(scenario.record_trace());
  EXPECT_EQ(once, twice);

  // A freshly materialized scenario from the same spec also agrees —
  // nothing about recording depends on construction-time state.
  const Scenario again(spec);
  EXPECT_EQ(encode_trace(again.record_trace()), once);
}

TEST(Scenario, TraceShapeMatchesTheSpec) {
  const ScenarioSpec spec = small_fleet();
  const Scenario scenario(spec);
  const ScanTrace trace = scenario.record_trace();

  EXPECT_EQ(trace.scenario, spec.name);
  EXPECT_EQ(trace.device_count, 3u);
  EXPECT_EQ(trace.scans.size(), 3u * 12u);
  const auto by_device = trace.scans_by_device();
  for (const auto& indices : by_device) {
    EXPECT_EQ(indices.size(), 12u);
  }
  // Device-major order: device indices are non-decreasing.
  for (std::size_t i = 1; i < trace.scans.size(); ++i) {
    EXPECT_LE(trace.scans[i - 1].device, trace.scans[i].device);
  }
  // Truths live inside the site.
  const geom::Rect footprint = scenario.testbed().environment().footprint();
  for (const TraceScan& ts : trace.scans) {
    EXPECT_TRUE(footprint.contains(ts.truth));
  }
}

TEST(Scenario, StartTimeOffsetsTimestamps) {
  ScenarioSpec spec = small_fleet();
  spec.devices[1].start_time_s = 100.0;
  const Scenario scenario(spec);
  const ScanTrace trace = scenario.record_trace();
  const auto by_device = trace.scans_by_device();
  EXPECT_LT(trace.scans[by_device[0].front()].scan.timestamp_s, 100.0);
  EXPECT_GE(trace.scans[by_device[1].front()].scan.timestamp_s, 100.0);
}

TEST(Scenario, DropScanFaultLosesExactlyThatScan) {
  ScenarioSpec spec = small_fleet();
  spec.faults.push_back({.device = 1, .scan_index = 4,
                         .kind = FaultEvent::Kind::kDropScan});
  const Scenario scenario(spec);
  const ScanTrace trace = scenario.record_trace();
  const auto by_device = trace.scans_by_device();
  EXPECT_EQ(by_device[0].size(), 12u);
  EXPECT_EQ(by_device[1].size(), 11u);
  EXPECT_EQ(by_device[2].size(), 12u);

  // The dropped scan consumed simulator time: the remaining scans of
  // device 1 are identical to the no-fault trace minus one record.
  ScenarioSpec clean = small_fleet();
  const ScanTrace reference = Scenario(clean).record_trace();
  const auto ref_by_device = reference.scans_by_device();
  std::size_t ref_i = 0;
  for (std::size_t idx : by_device[1]) {
    if (ref_i == 4) ++ref_i;  // skip the dropped slot
    EXPECT_EQ(trace.scans[idx],
              reference.scans[ref_by_device[1][ref_i]]);
    ++ref_i;
  }
}

TEST(Scenario, NonFiniteFaultInjectsNaN) {
  ScenarioSpec spec = small_fleet();
  spec.faults.push_back({.device = 0, .scan_index = 2,
                         .kind = FaultEvent::Kind::kNonFiniteRssi});
  const ScanTrace trace = Scenario(spec).record_trace();
  const auto by_device = trace.scans_by_device();
  const radio::ScanRecord& faulted =
      trace.scans[by_device[0][2]].scan;
  ASSERT_FALSE(faulted.samples.empty());
  EXPECT_TRUE(std::isnan(faulted.samples.front().rssi_dbm));
}

TEST(Scenario, DropStrongestApRemovesTheLoudestSample) {
  ScenarioSpec spec = small_fleet();
  spec.faults.push_back({.device = 2, .scan_index = 0,
                         .kind = FaultEvent::Kind::kDropStrongestAp});
  const ScanTrace faulted_trace = Scenario(spec).record_trace();
  const ScanTrace clean_trace = Scenario(small_fleet()).record_trace();

  const radio::ScanRecord& faulted =
      faulted_trace.scans[faulted_trace.scans_by_device()[2][0]].scan;
  const radio::ScanRecord& clean =
      clean_trace.scans[clean_trace.scans_by_device()[2][0]].scan;
  ASSERT_FALSE(clean.samples.empty());
  EXPECT_EQ(faulted.samples.size(), clean.samples.size() - 1);
  double clean_max = -1e9, faulted_max = -1e9;
  for (const auto& s : clean.samples) clean_max = std::max(clean_max, s.rssi_dbm);
  for (const auto& s : faulted.samples) {
    faulted_max = std::max(faulted_max, s.rssi_dbm);
  }
  EXPECT_LE(faulted_max, clean_max);
}

TEST(Scenario, ObservationsFromTraceWindowsPerDevice) {
  const ScenarioSpec spec = small_fleet();  // 12 scans per device
  const ScanTrace trace = Scenario(spec).record_trace();
  // 12 scans in windows of 5 -> 5 + 5 + 2 = 3 observations per device.
  const auto observations = observations_from_trace(trace, 5);
  EXPECT_EQ(observations.size(), 3u * 3u);
  for (const core::Observation& obs : observations) {
    EXPECT_FALSE(obs.empty());
    EXPECT_TRUE(obs.is_finite());
  }
}

TEST(Scenario, ObservationsSkipNonFiniteScans) {
  ScenarioSpec spec = small_fleet();
  spec.faults.push_back({.device = 0, .scan_index = 1,
                         .kind = FaultEvent::Kind::kNonFiniteRssi});
  const ScanTrace trace = Scenario(spec).record_trace();
  for (const core::Observation& obs : observations_from_trace(trace, 4)) {
    EXPECT_TRUE(obs.is_finite());
  }
}

TEST(Scenario, OfficeFloorSiteWorks) {
  ScenarioSpec spec = ScenarioSpec::fleet(2, 6, 9, SiteModel::kOfficeFloor);
  spec.ap_count = 8;
  const Scenario scenario(spec);
  EXPECT_EQ(scenario.testbed().environment().access_points().size(), 8u);
  EXPECT_EQ(scenario.record_trace().scans.size(), 12u);
  EXPECT_GT(scenario.database().size(), 0u);
}

/// A pocket campus the quick tier can survey in milliseconds.
radio::CampusSpec tiny_campus() {
  radio::CampusSpec campus;
  campus.buildings = 2;
  campus.floors_per_building = 2;
  campus.floor_width_ft = 120.0;
  campus.floor_depth_ft = 80.0;
  campus.rooms_x = 3;
  campus.rooms_y = 2;
  campus.aps_per_floor = 10;
  campus.seed = 31;
  return campus;
}

ScenarioSpec small_campus_fleet() {
  ScenarioSpec spec = ScenarioSpec::campus_fleet(6, 8, 11, tiny_campus());
  spec.train_scans = 8;
  return spec;
}

TEST(CampusScenario, FleetCoversEveryFloorWithHeterogeneousDevices) {
  const ScenarioSpec spec = ScenarioSpec::campus_fleet(8, 5, 3, tiny_campus());
  ASSERT_EQ(spec.devices.size(), 8u);
  EXPECT_EQ(spec.site, SiteModel::kCampus);

  std::vector<int> per_floor(4, 0);
  bool offsets_differ = false;
  for (const DeviceSpec& dev : spec.devices) {
    ASSERT_LT(dev.building, 2u);
    ASSERT_LT(dev.floor, 2u);
    ++per_floor[dev.building * 2 + dev.floor];
    offsets_differ |= dev.rssi_offset_db != spec.devices[0].rssi_offset_db;
    // Paths stay inside the device's own building.
    const geom::Rect fp = tiny_campus().building_footprint(
        static_cast<int>(dev.building));
    for (const geom::Vec2 wp : dev.waypoints) {
      EXPECT_TRUE(fp.contains(wp));
    }
  }
  // Round-robin assignment: every flat floor carries traffic.
  for (const int n : per_floor) EXPECT_EQ(n, 2);
  EXPECT_TRUE(offsets_differ);

  // The factory is deterministic, and the plain fleet factory refuses
  // campus sites.
  const ScenarioSpec again = ScenarioSpec::campus_fleet(8, 5, 3, tiny_campus());
  for (std::size_t d = 0; d < spec.devices.size(); ++d) {
    EXPECT_EQ(spec.devices[d].waypoints, again.devices[d].waypoints);
    EXPECT_EQ(spec.devices[d].rssi_offset_db,
              again.devices[d].rssi_offset_db);
  }
  EXPECT_THROW(ScenarioSpec::fleet(2, 5, 1, SiteModel::kCampus),
               std::invalid_argument);
}

TEST(CampusScenario, MaterializesFloorDatabasesAndAMergedCampus) {
  const Scenario scenario(small_campus_fleet());
  EXPECT_THROW(scenario.testbed(), std::logic_error);
  EXPECT_EQ(scenario.campus().floor_count(), 4u);
  ASSERT_EQ(scenario.floor_databases().size(), 4u);
  std::size_t total_points = 0;
  for (const auto& db : scenario.floor_databases()) {
    EXPECT_EQ(db.size(), 6u);  // 3x2 rooms
    total_points += db.size();
  }
  EXPECT_EQ(scenario.database().size(), total_points);
  EXPECT_EQ(scenario.database().site_name(), scenario.spec().name);

  // Non-campus scenarios expose no campus.
  EXPECT_THROW(Scenario(small_fleet()).campus(), std::logic_error);
}

TEST(CampusScenario, TraceIsDeterministicAndDeviceOffsetsShiftReadings) {
  const ScenarioSpec spec = small_campus_fleet();
  const Scenario scenario(spec);
  const std::string once = encode_trace(scenario.record_trace());
  EXPECT_EQ(encode_trace(scenario.record_trace()), once);

  // Zeroing one device's NIC offset moves its readings and only its
  // readings.
  ScenarioSpec flat = spec;
  ASSERT_NE(flat.devices[2].rssi_offset_db, 0.0);
  flat.devices[2].rssi_offset_db = 0.0;
  const ScanTrace shifted = scenario.record_trace();
  const ScanTrace unshifted = Scenario(flat).record_trace();
  const auto by_dev_a = shifted.scans_by_device();
  const auto by_dev_b = unshifted.scans_by_device();
  EXPECT_EQ(shifted.scans[by_dev_a[1][0]].scan,
            unshifted.scans[by_dev_b[1][0]].scan);
  EXPECT_NE(shifted.scans[by_dev_a[2][0]].scan,
            unshifted.scans[by_dev_b[2][0]].scan);
}

TEST(CampusScenario, ApChurnSilencesTheApFromItsOffTime) {
  ScenarioSpec spec = small_campus_fleet();
  // Device 0 walks B0F0; AP 3 lives on that floor. Take it off the
  // air mid-trace.
  const std::string victim = radio::synthetic_bssid(3);
  spec.ap_churn.push_back({.ap_index = 3, .off_time_s = 4.0});
  const ScanTrace churned = Scenario(spec).record_trace();

  ScenarioSpec clean_spec = small_campus_fleet();
  const ScanTrace clean = Scenario(clean_spec).record_trace();

  bool heard_before = false;
  for (const TraceScan& ts : clean.scans) {
    heard_before |= ts.scan.rssi_of(victim).has_value() &&
                    ts.scan.timestamp_s >= 4.0;
  }
  ASSERT_TRUE(heard_before);  // the churn actually removes something
  for (const TraceScan& ts : churned.scans) {
    if (ts.scan.timestamp_s >= 4.0) {
      EXPECT_FALSE(ts.scan.rssi_of(victim).has_value());
    }
  }

  // Out-of-range churn indices fail fast.
  ScenarioSpec bad = small_campus_fleet();
  bad.ap_churn.push_back({.ap_index = 9999, .off_time_s = 0.0});
  EXPECT_THROW(Scenario(bad).record_trace(), std::out_of_range);
}

}  // namespace
}  // namespace loctk::testkit

// Tests for scenario materialization and trace recording: seed
// determinism, fleet layout, fault application, and the trace-to-
// observation windowing the differential oracle consumes.

#include "testkit/scenario.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "testkit/trace.hpp"

namespace loctk::testkit {
namespace {

ScenarioSpec small_fleet() { return ScenarioSpec::fleet(3, 12, /*seed=*/7); }

TEST(Scenario, FleetFactoryIsDeterministic) {
  const ScenarioSpec a = ScenarioSpec::fleet(4, 10, 42);
  const ScenarioSpec b = ScenarioSpec::fleet(4, 10, 42);
  ASSERT_EQ(a.devices.size(), 4u);
  for (std::size_t d = 0; d < a.devices.size(); ++d) {
    EXPECT_EQ(a.devices[d].waypoints, b.devices[d].waypoints);
    EXPECT_EQ(a.devices[d].start_time_s, b.devices[d].start_time_s);
  }
  // Different seeds walk different paths.
  const ScenarioSpec c = ScenarioSpec::fleet(4, 10, 43);
  EXPECT_NE(a.devices[0].waypoints, c.devices[0].waypoints);
}

TEST(Scenario, FleetPathsStayInsideTheSite) {
  const ScenarioSpec spec = ScenarioSpec::fleet(8, 5, 3);
  const geom::Rect footprint = radio::make_paper_house().footprint();
  for (const DeviceSpec& dev : spec.devices) {
    for (const geom::Vec2 wp : dev.waypoints) {
      EXPECT_TRUE(footprint.contains(wp));
    }
  }
}

TEST(Scenario, RecordTraceIsBitForBitDeterministic) {
  const ScenarioSpec spec = small_fleet();
  const Scenario scenario(spec);
  const std::string once = encode_trace(scenario.record_trace());
  const std::string twice = encode_trace(scenario.record_trace());
  EXPECT_EQ(once, twice);

  // A freshly materialized scenario from the same spec also agrees —
  // nothing about recording depends on construction-time state.
  const Scenario again(spec);
  EXPECT_EQ(encode_trace(again.record_trace()), once);
}

TEST(Scenario, TraceShapeMatchesTheSpec) {
  const ScenarioSpec spec = small_fleet();
  const Scenario scenario(spec);
  const ScanTrace trace = scenario.record_trace();

  EXPECT_EQ(trace.scenario, spec.name);
  EXPECT_EQ(trace.device_count, 3u);
  EXPECT_EQ(trace.scans.size(), 3u * 12u);
  const auto by_device = trace.scans_by_device();
  for (const auto& indices : by_device) {
    EXPECT_EQ(indices.size(), 12u);
  }
  // Device-major order: device indices are non-decreasing.
  for (std::size_t i = 1; i < trace.scans.size(); ++i) {
    EXPECT_LE(trace.scans[i - 1].device, trace.scans[i].device);
  }
  // Truths live inside the site.
  const geom::Rect footprint = scenario.testbed().environment().footprint();
  for (const TraceScan& ts : trace.scans) {
    EXPECT_TRUE(footprint.contains(ts.truth));
  }
}

TEST(Scenario, StartTimeOffsetsTimestamps) {
  ScenarioSpec spec = small_fleet();
  spec.devices[1].start_time_s = 100.0;
  const Scenario scenario(spec);
  const ScanTrace trace = scenario.record_trace();
  const auto by_device = trace.scans_by_device();
  EXPECT_LT(trace.scans[by_device[0].front()].scan.timestamp_s, 100.0);
  EXPECT_GE(trace.scans[by_device[1].front()].scan.timestamp_s, 100.0);
}

TEST(Scenario, DropScanFaultLosesExactlyThatScan) {
  ScenarioSpec spec = small_fleet();
  spec.faults.push_back({.device = 1, .scan_index = 4,
                         .kind = FaultEvent::Kind::kDropScan});
  const Scenario scenario(spec);
  const ScanTrace trace = scenario.record_trace();
  const auto by_device = trace.scans_by_device();
  EXPECT_EQ(by_device[0].size(), 12u);
  EXPECT_EQ(by_device[1].size(), 11u);
  EXPECT_EQ(by_device[2].size(), 12u);

  // The dropped scan consumed simulator time: the remaining scans of
  // device 1 are identical to the no-fault trace minus one record.
  ScenarioSpec clean = small_fleet();
  const ScanTrace reference = Scenario(clean).record_trace();
  const auto ref_by_device = reference.scans_by_device();
  std::size_t ref_i = 0;
  for (std::size_t idx : by_device[1]) {
    if (ref_i == 4) ++ref_i;  // skip the dropped slot
    EXPECT_EQ(trace.scans[idx],
              reference.scans[ref_by_device[1][ref_i]]);
    ++ref_i;
  }
}

TEST(Scenario, NonFiniteFaultInjectsNaN) {
  ScenarioSpec spec = small_fleet();
  spec.faults.push_back({.device = 0, .scan_index = 2,
                         .kind = FaultEvent::Kind::kNonFiniteRssi});
  const ScanTrace trace = Scenario(spec).record_trace();
  const auto by_device = trace.scans_by_device();
  const radio::ScanRecord& faulted =
      trace.scans[by_device[0][2]].scan;
  ASSERT_FALSE(faulted.samples.empty());
  EXPECT_TRUE(std::isnan(faulted.samples.front().rssi_dbm));
}

TEST(Scenario, DropStrongestApRemovesTheLoudestSample) {
  ScenarioSpec spec = small_fleet();
  spec.faults.push_back({.device = 2, .scan_index = 0,
                         .kind = FaultEvent::Kind::kDropStrongestAp});
  const ScanTrace faulted_trace = Scenario(spec).record_trace();
  const ScanTrace clean_trace = Scenario(small_fleet()).record_trace();

  const radio::ScanRecord& faulted =
      faulted_trace.scans[faulted_trace.scans_by_device()[2][0]].scan;
  const radio::ScanRecord& clean =
      clean_trace.scans[clean_trace.scans_by_device()[2][0]].scan;
  ASSERT_FALSE(clean.samples.empty());
  EXPECT_EQ(faulted.samples.size(), clean.samples.size() - 1);
  double clean_max = -1e9, faulted_max = -1e9;
  for (const auto& s : clean.samples) clean_max = std::max(clean_max, s.rssi_dbm);
  for (const auto& s : faulted.samples) {
    faulted_max = std::max(faulted_max, s.rssi_dbm);
  }
  EXPECT_LE(faulted_max, clean_max);
}

TEST(Scenario, ObservationsFromTraceWindowsPerDevice) {
  const ScenarioSpec spec = small_fleet();  // 12 scans per device
  const ScanTrace trace = Scenario(spec).record_trace();
  // 12 scans in windows of 5 -> 5 + 5 + 2 = 3 observations per device.
  const auto observations = observations_from_trace(trace, 5);
  EXPECT_EQ(observations.size(), 3u * 3u);
  for (const core::Observation& obs : observations) {
    EXPECT_FALSE(obs.empty());
    EXPECT_TRUE(obs.is_finite());
  }
}

TEST(Scenario, ObservationsSkipNonFiniteScans) {
  ScenarioSpec spec = small_fleet();
  spec.faults.push_back({.device = 0, .scan_index = 1,
                         .kind = FaultEvent::Kind::kNonFiniteRssi});
  const ScanTrace trace = Scenario(spec).record_trace();
  for (const core::Observation& obs : observations_from_trace(trace, 4)) {
    EXPECT_TRUE(obs.is_finite());
  }
}

TEST(Scenario, OfficeFloorSiteWorks) {
  ScenarioSpec spec = ScenarioSpec::fleet(2, 6, 9, SiteModel::kOfficeFloor);
  spec.ap_count = 8;
  const Scenario scenario(spec);
  EXPECT_EQ(scenario.testbed().environment().access_points().size(), 8u);
  EXPECT_EQ(scenario.record_trace().scans.size(), 12u);
  EXPECT_GT(scenario.database().size(), 0u);
}

}  // namespace
}  // namespace loctk::testkit

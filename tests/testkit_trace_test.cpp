// Tests for the LTRC scan-trace codec: exact round-trips (including
// NaN fault payloads), deterministic encoding, and typed corruption
// errors for every malformed-input family.

#include "testkit/trace.hpp"

#include "radio/access_point.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>

#include <gtest/gtest.h>

namespace loctk::testkit {
namespace {

ScanTrace make_sample_trace() {
  ScanTrace trace;
  trace.scenario = "codec-sample";
  trace.device_count = 2;

  TraceScan a;
  a.device = 0;
  a.truth = {12.5, 30.25};
  a.scan.timestamp_s = 1.0;
  a.scan.samples = {{"aa:bb:cc:00:00:01", -47.0, 6},
                    {"aa:bb:cc:00:00:02", -63.5, 11}};
  trace.scans.push_back(a);

  TraceScan b;
  b.device = 1;
  b.truth = {0.0, -3.75};
  b.scan.timestamp_s = 1.5;
  b.scan.samples = {{"aa:bb:cc:00:00:02", -70.0, 11}};
  trace.scans.push_back(b);
  return trace;
}

TEST(TraceCodec, RoundTripsExactly) {
  const ScanTrace trace = make_sample_trace();
  const std::string bytes = encode_trace(trace);
  const Result<ScanTrace> decoded = try_decode_trace(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value(), trace);
}

TEST(TraceCodec, EncodingIsDeterministic) {
  const ScanTrace trace = make_sample_trace();
  EXPECT_EQ(encode_trace(trace), encode_trace(trace));
}

TEST(TraceCodec, DecodeEncodeIsByteIdentical) {
  const std::string bytes = encode_trace(make_sample_trace());
  const Result<ScanTrace> decoded = try_decode_trace(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(encode_trace(decoded.value()), bytes);
}

TEST(TraceCodec, NanAndInfinityPayloadsRoundTripBitForBit) {
  ScanTrace trace = make_sample_trace();
  trace.scans[0].scan.samples[0].rssi_dbm =
      std::numeric_limits<double>::quiet_NaN();
  trace.scans[1].scan.samples[0].rssi_dbm =
      -std::numeric_limits<double>::infinity();

  const std::string bytes = encode_trace(trace);
  const Result<ScanTrace> decoded = try_decode_trace(bytes);
  ASSERT_TRUE(decoded.ok());
  // NaN != NaN, so the equality check for fault traces is byte-level.
  EXPECT_EQ(encode_trace(decoded.value()), bytes);
  EXPECT_TRUE(std::isnan(decoded.value().scans[0].scan.samples[0].rssi_dbm));
  EXPECT_TRUE(std::isinf(decoded.value().scans[1].scan.samples[0].rssi_dbm));
}

TEST(TraceCodec, EmptyTraceRoundTrips) {
  ScanTrace trace;
  trace.scenario = "empty";
  trace.device_count = 0;
  const Result<ScanTrace> decoded = try_decode_trace(encode_trace(trace));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), trace);
}

TEST(TraceCodec, ScansByDeviceGroupsInCaptureOrder) {
  ScanTrace trace = make_sample_trace();
  TraceScan extra = trace.scans[0];
  extra.scan.timestamp_s = 2.0;
  trace.scans.push_back(extra);

  const auto by_device = trace.scans_by_device();
  ASSERT_EQ(by_device.size(), 2u);
  EXPECT_EQ(by_device[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(by_device[1], (std::vector<std::size_t>{1}));
}

TEST(TraceCodec, RejectsBadMagic) {
  std::string bytes = encode_trace(make_sample_trace());
  bytes[0] = 'X';
  const auto decoded = try_decode_trace(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code(), ErrorCode::kCorrupt);
}

TEST(TraceCodec, RejectsUnknownVersion) {
  std::string bytes = encode_trace(make_sample_trace());
  bytes[4] = static_cast<char>(kTraceVersion + 1);  // version varint
  const auto decoded = try_decode_trace(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code(), ErrorCode::kCorrupt);
}

TEST(TraceCodec, RejectsTruncationAtEveryPrefix) {
  const std::string bytes = encode_trace(make_sample_trace());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const auto decoded = try_decode_trace(bytes.substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "prefix length " << len;
    EXPECT_EQ(decoded.error().code(), ErrorCode::kCorrupt);
  }
}

TEST(TraceCodec, RejectsTrailingGarbage) {
  std::string bytes = encode_trace(make_sample_trace());
  bytes += "tail";
  const auto decoded = try_decode_trace(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code(), ErrorCode::kCorrupt);
}

TEST(TraceCodec, RejectsEveryOneByteCorruptionOrStaysConsistent) {
  // Flipping any single byte must either fail with kCorrupt or decode
  // to a trace that re-encodes consistently — never crash or hang.
  const std::string bytes = encode_trace(make_sample_trace());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    const auto decoded = try_decode_trace(mutated);
    if (decoded.ok()) {
      // What decoded must at least re-encode/re-decode stably.
      const std::string reencoded = encode_trace(decoded.value());
      const auto redecoded = try_decode_trace(reencoded);
      ASSERT_TRUE(redecoded.ok()) << "byte " << i;
      EXPECT_EQ(encode_trace(redecoded.value()), reencoded) << "byte " << i;
    } else {
      EXPECT_EQ(decoded.error().code(), ErrorCode::kCorrupt) << "byte " << i;
    }
  }
}

TEST(TraceCodec, FileRoundTrip) {
  const ScanTrace trace = make_sample_trace();
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "loctk_trace_test.ltrc";
  write_trace(path, trace);
  const Result<ScanTrace> loaded = try_read_trace(path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  EXPECT_EQ(loaded.value(), trace);
}

TEST(TraceCodec, MissingFileReportsIoError) {
  const auto loaded = try_read_trace("/nonexistent/trace.ltrc");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code(), ErrorCode::kIo);
}

TEST(TraceCodec, RoundTripsACampusCardinalityBssidTable) {
  // Campus-cardinality audit: with 1200 distinct BSSIDs the interned
  // table indices need multi-byte varints (every index past 127) and
  // the two-byte synthetic BSSID form (every AP past 255). Encoding
  // and decoding must agree exactly anyway.
  ScanTrace trace;
  trace.scenario = "campus-cardinality";
  trace.device_count = 1;
  constexpr int kAps = 1200;
  constexpr int kPerScan = 40;
  for (int base = 0; base < kAps; base += kPerScan) {
    TraceScan ts;
    ts.device = 0;
    ts.truth = {static_cast<double>(base) * 0.1, 1.0};
    ts.scan.timestamp_s = static_cast<double>(base);
    for (int i = base; i < base + kPerScan; ++i) {
      ts.scan.samples.push_back(
          {radio::synthetic_bssid(i), -40.0 - (i % 50), 1 + i % 11});
    }
    trace.scans.push_back(std::move(ts));
  }

  const std::string bytes = encode_trace(trace);
  const Result<ScanTrace> decoded = try_decode_trace(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value(), trace);
  // Spot-check a high-index sample survived the table indirection.
  const radio::ScanSample& high =
      decoded.value().scans.back().scan.samples.front();
  EXPECT_EQ(high.bssid, radio::synthetic_bssid(kAps - kPerScan));
}

}  // namespace
}  // namespace loctk::testkit

// Scoring engine v2 tests.
//
// 1. Backend bit-compatibility: every kernel in core/score_kernels.hpp
//    instantiated with the native backend (simd::Vec4d — AVX2/NEON
//    when LOCTK_SIMD is on) must produce BIT-identical results to the
//    always-compiled scalar fallback (simd::ScalarVec4d), including
//    NaN observations, zero-mask (empty-overlap) rows, and the stride
//    pad. This is the contract that lets CI build the fallback on its
//    own matrix leg and trust it never rots.
// 2. The coarse-to-fine candidate pruner: top-k bounds, deterministic
//    ascending output, the degenerate-query fallback contract, pruned
//    locate() agreeing with the exact pass, and the effectiveness
//    metrics exported through the registry.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/metrics.hpp"
#include "base/simd.hpp"
#include "core/candidate_pruner.hpp"
#include "core/knn.hpp"
#include "core/probabilistic.hpp"
#include "core/score_kernels.hpp"
#include "radio/access_point.hpp"
#include "stats/rng.hpp"
#include "test_fixtures.hpp"
#include "testkit/differential.hpp"
#include "testkit/scenario.hpp"

namespace loctk::core {
namespace {

/// Bitwise double equality (NaN-aware: identical bit patterns).
::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits 0x" << std::hex
         << std::bit_cast<std::uint64_t>(a) << " vs 0x"
         << std::bit_cast<std::uint64_t>(b) << ")";
}

/// A randomized padded row set mimicking CompiledDatabase layout.
struct KernelRow {
  simd::AlignedDoubles mean, mask, log_norm, inv_two_var;
  simd::AlignedDoubles q_mean, q_present;
  std::size_t stride = 0;
};

KernelRow random_row(stats::Rng& rng, std::size_t universe,
                     bool zero_mask, bool nan_query) {
  KernelRow r;
  r.stride = simd::padded_stride(universe);
  for (auto* v : {&r.mean, &r.mask, &r.log_norm, &r.inv_two_var, &r.q_mean,
                  &r.q_present}) {
    v->assign(r.stride, 0.0);
  }
  for (std::size_t u = 0; u < universe; ++u) {
    const bool trained = !zero_mask && rng.bernoulli(0.7);
    r.mask[u] = trained ? 1.0 : 0.0;
    if (trained) {
      r.mean[u] = rng.uniform(-95.0, -35.0);
      r.log_norm[u] = rng.uniform(-4.0, -1.0);
      r.inv_two_var[u] = rng.uniform(0.01, 0.5);
    }
    const bool heard = rng.bernoulli(0.6);
    r.q_present[u] = heard ? 1.0 : 0.0;
    if (heard) {
      r.q_mean[u] = nan_query && rng.bernoulli(0.3)
                        ? std::numeric_limits<double>::quiet_NaN()
                        : rng.uniform(-105.0, -25.0);
    }
  }
  return r;
}

TEST(ScoringV2Kernels, NativeBackendBitIdenticalToScalarFallback) {
  stats::Rng rng(9100);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t universe = 1 + static_cast<std::size_t>(trial) % 21;
    const bool zero_mask = trial % 7 == 0;   // empty-overlap row
    const bool nan_query = trial % 5 == 0;   // degenerate observation
    const KernelRow r = random_row(rng, universe, zero_mask, nan_query);

    const auto ps = kernels::prob_score_row<simd::ScalarVec4d>(
        r.mean.data(), r.mask.data(), r.log_norm.data(),
        r.inv_two_var.data(), r.q_mean.data(), r.q_present.data(), r.stride);
    const auto pv = kernels::prob_score_row<simd::Vec4d>(
        r.mean.data(), r.mask.data(), r.log_norm.data(),
        r.inv_two_var.data(), r.q_mean.data(), r.q_present.data(), r.stride);
    EXPECT_TRUE(bits_equal(ps.gauss, pv.gauss)) << "trial " << trial;
    EXPECT_TRUE(bits_equal(ps.common, pv.common)) << "trial " << trial;

    EXPECT_TRUE(bits_equal(
        kernels::sq_dist_row<simd::ScalarVec4d>(r.mean.data(),
                                                r.q_mean.data(), r.stride),
        kernels::sq_dist_row<simd::Vec4d>(r.mean.data(), r.q_mean.data(),
                                          r.stride)))
        << "trial " << trial;

    const auto ms = kernels::ssd_moments_row<simd::ScalarVec4d>(
        r.mean.data(), r.mask.data(), r.q_mean.data(), r.q_present.data(),
        r.stride);
    const auto mv = kernels::ssd_moments_row<simd::Vec4d>(
        r.mean.data(), r.mask.data(), r.q_mean.data(), r.q_present.data(),
        r.stride);
    EXPECT_TRUE(bits_equal(ms.n, mv.n));
    EXPECT_TRUE(bits_equal(ms.sum_o, mv.sum_o));
    EXPECT_TRUE(bits_equal(ms.sum_t, mv.sum_t));

    const double mo = ms.n > 0.0 ? ms.sum_o / ms.n : 0.0;
    const double mt = ms.n > 0.0 ? ms.sum_t / ms.n : 0.0;
    EXPECT_TRUE(bits_equal(
        kernels::ssd_sq_dist_row<simd::ScalarVec4d>(
            r.mean.data(), r.mask.data(), r.q_mean.data(),
            r.q_present.data(), mo, mt, r.stride),
        kernels::ssd_sq_dist_row<simd::Vec4d>(
            r.mean.data(), r.mask.data(), r.q_mean.data(),
            r.q_present.data(), mo, mt, r.stride)))
        << "trial " << trial;
  }
}

TEST(ScoringV2Kernels, ObsMajorKernelBitIdenticalToSingleRow) {
  // The batched locate path puts four observations in the vector lanes
  // and scores them per row pass; each lane must match the single-query
  // slot-major kernel bit for bit (and the scalar instantiation must
  // match the native one).
  stats::Rng rng(9103);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t universe = 1 + static_cast<std::size_t>(trial) % 21;
    const KernelRow row = random_row(rng, universe, trial % 7 == 0, false);
    KernelRow queries[4];
    simd::AlignedDoubles qm_t(row.stride * simd::kLanes, 0.0);
    simd::AlignedDoubles qp_t(row.stride * simd::kLanes, 0.0);
    for (std::size_t i = 0; i < 4; ++i) {
      queries[i] = random_row(rng, universe, false, i == 3 && trial % 5 == 0);
      for (std::size_t u = 0; u < row.stride; ++u) {
        qm_t[u * simd::kLanes + i] = queries[i].q_mean[u];
        qp_t[u * simd::kLanes + i] = queries[i].q_present[u];
      }
    }
    simd::Vec4d gauss_n, common_n;
    simd::ScalarVec4d gauss_s, common_s;
    kernels::prob_score_row_obs4<simd::Vec4d>(
        row.mean.data(), row.mask.data(), row.log_norm.data(),
        row.inv_two_var.data(), qm_t.data(), qp_t.data(), row.stride,
        &gauss_n, &common_n);
    kernels::prob_score_row_obs4<simd::ScalarVec4d>(
        row.mean.data(), row.mask.data(), row.log_norm.data(),
        row.inv_two_var.data(), qm_t.data(), qp_t.data(), row.stride,
        &gauss_s, &common_s);
    alignas(simd::kAlignment) double gn[4], cn[4], gs[4], cs[4];
    gauss_n.store(gn);
    common_n.store(cn);
    gauss_s.store(gs);
    common_s.store(cs);
    for (std::size_t i = 0; i < 4; ++i) {
      const auto single = kernels::prob_score_row<simd::Vec4d>(
          row.mean.data(), row.mask.data(), row.log_norm.data(),
          row.inv_two_var.data(), queries[i].q_mean.data(),
          queries[i].q_present.data(), row.stride);
      EXPECT_TRUE(bits_equal(gn[i], single.gauss))
          << "trial " << trial << " q" << i;
      EXPECT_TRUE(bits_equal(cn[i], single.common))
          << "trial " << trial << " q" << i;
      EXPECT_TRUE(bits_equal(gs[i], gn[i])) << "trial " << trial << " q" << i;
      EXPECT_TRUE(bits_equal(cs[i], cn[i])) << "trial " << trial << " q" << i;
    }
  }
}

TEST(ScoringV2Kernels, SelectOpsBitIdenticalAcrossBackends) {
  // The batched epilogue's lane-wise selects must agree with the
  // scalar ternary everywhere, including NaN (compares false -> y)
  // and signed-zero operands.
  stats::Rng rng(9104);
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  const double specials[] = {0.0, -0.0, kNan, kInf, -kInf, 1.0, -1.0};
  for (int trial = 0; trial < 200; ++trial) {
    alignas(simd::kAlignment) double a[4], b[4], x[4], y[4];
    for (int i = 0; i < 4; ++i) {
      const bool special = rng.bernoulli(0.4);
      a[i] = special ? specials[static_cast<std::size_t>(
                           rng.uniform(0.0, 6.999))]
                     : rng.uniform(-10.0, 10.0);
      b[i] = special ? specials[static_cast<std::size_t>(
                           rng.uniform(0.0, 6.999))]
                     : rng.uniform(-10.0, 10.0);
      x[i] = rng.uniform(-10.0, 10.0);
      y[i] = rng.uniform(-10.0, 10.0);
    }
    alignas(simd::kAlignment) double out_n[4], out_s[4];
    const auto check = [&](auto&& native, auto&& scalar) {
      native.store(out_n);
      scalar.store(out_s);
      for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(bits_equal(out_n[i], out_s[i]))
            << "trial " << trial << " lane " << i << " a=" << a[i]
            << " b=" << b[i];
      }
    };
    using SV = simd::ScalarVec4d;
    using NV = simd::Vec4d;
    check(NV::select_gt(NV::load(a), NV::load(b), NV::load(x), NV::load(y)),
          SV::select_gt(SV::load(a), SV::load(b), SV::load(x), SV::load(y)));
    check(NV::select_ge(NV::load(a), NV::load(b), NV::load(x), NV::load(y)),
          SV::select_ge(SV::load(a), SV::load(b), SV::load(x), SV::load(y)));
  }
}

TEST(ScoringV2Kernels, AxpyAndHistFoldBitIdentical) {
  stats::Rng rng(9101);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n =
        simd::padded_stride(1 + static_cast<std::size_t>(trial) % 40);
    simd::AlignedDoubles col(n), mask(n), acc_s(n, 0.0), acc_v(n, 0.0);
    simd::AlignedDoubles tot_s(n, 0.0), tot_v(n, 0.0), com_s(n, 0.0),
        com_v(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      col[i] = rng.uniform(-8.0, 0.0);
      mask[i] = rng.bernoulli(0.5) ? 1.0 : 0.0;
    }
    const double a = rng.uniform(0.5, 4.0);
    const double inv_n = 1.0 / rng.uniform(1.0, 9.0);
    kernels::axpy<simd::ScalarVec4d>(a, col.data(), acc_s.data(), n);
    kernels::axpy<simd::Vec4d>(a, col.data(), acc_v.data(), n);
    kernels::hist_fold_slot<simd::ScalarVec4d>(
        acc_s.data(), mask.data(), inv_n, tot_s.data(), com_s.data(), n);
    kernels::hist_fold_slot<simd::Vec4d>(acc_v.data(), mask.data(), inv_n,
                                         tot_v.data(), com_v.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(bits_equal(acc_s[i], acc_v[i])) << i;
      EXPECT_TRUE(bits_equal(tot_s[i], tot_v[i])) << i;
      EXPECT_TRUE(bits_equal(com_s[i], com_v[i])) << i;
    }
  }
}

TEST(ScoringV2Kernels, PaddedCellsContributeExactZero) {
  // A row whose pad region is the only difference must score
  // identically to a stride-sized universe: pad cells carry mask 0
  // and value 0, so each padded term is an exact +/-0.0.
  stats::Rng rng(9102);
  const KernelRow r = random_row(rng, 5, false, false);
  ASSERT_GT(r.stride, 5u);
  double serial_gauss = 0.0, serial_common = 0.0;
  for (std::size_t u = 0; u < r.stride; ++u) {
    const double both = r.mask[u] * r.q_present[u];
    const double d = r.q_mean[u] - r.mean[u];
    serial_gauss += both * (r.log_norm[u] - d * d * r.inv_two_var[u]);
    serial_common += both;
  }
  const auto got = kernels::prob_score_row<simd::Vec4d>(
      r.mean.data(), r.mask.data(), r.log_norm.data(), r.inv_two_var.data(),
      r.q_mean.data(), r.q_present.data(), r.stride);
  EXPECT_NEAR(got.gauss, serial_gauss, 1e-12);
  EXPECT_EQ(got.common, serial_common);
}

TEST(CandidatePruner, SmallDatabaseIsDegenerate) {
  const auto db = testing::make_fixture_db();
  const auto compiled = CompiledDatabase::compile(db);
  // top_k >= point count: pruning cannot shrink the work.
  const CandidatePruner pruner(compiled,
                               {.strongest_aps = 3,
                                .top_k = static_cast<int>(db.size())});
  const Observation obs = testing::fixture_observation({10.0, 10.0});
  EXPECT_TRUE(pruner.select(compiled->compile_observation(obs)).empty());
}

TEST(CandidatePruner, SelectsBoundedSortedCandidates) {
  // The office floor's 10-ft survey grid yields ~100 training points,
  // so top_k = 16 genuinely prunes (the paper house has too few rows).
  const testkit::Scenario scenario(testkit::ScenarioSpec::fleet(
      4, 16, 71, testkit::SiteModel::kOfficeFloor));
  const auto compiled = CompiledDatabase::compile(scenario.database());
  ASSERT_GT(compiled->point_count(), 16u);
  const CandidatePruner pruner(compiled, {.strongest_aps = 3, .top_k = 16});
  const auto observations = testkit::observations_from_trace(
      scenario.record_trace(), 8);
  ASSERT_FALSE(observations.empty());
  for (const Observation& obs : observations) {
    const CompiledObservation q = compiled->compile_observation(obs);
    const auto candidates = pruner.select(q);
    if (q.slots.empty()) {
      EXPECT_TRUE(candidates.empty());
      continue;
    }
    ASSERT_FALSE(candidates.empty());
    EXPECT_LE(candidates.size(), 16u);
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      EXPECT_LT(candidates[i - 1], candidates[i]);
    }
    for (const std::uint32_t p : candidates) {
      EXPECT_LT(p, compiled->point_count());
    }
    // Deterministic: same query, same candidates.
    EXPECT_EQ(pruner.select(q), candidates);
  }
}

TEST(CandidatePruner, DegenerateQueriesFallBackToFullPass) {
  const testkit::Scenario scenario(testkit::ScenarioSpec::fleet(2, 8, 72));
  const auto compiled = CompiledDatabase::compile(scenario.database());
  const CandidatePruner pruner(compiled, {.strongest_aps = 3, .top_k = 8});

  // Empty observation: no in-universe slots.
  EXPECT_TRUE(
      pruner.select(compiled->compile_observation(Observation{})).empty());

  // Non-finite readings: the prefilter refuses to rank on NaN.
  std::vector<radio::ScanRecord> scans(1);
  scans[0].samples.push_back(
      {scenario.database().bssid_universe().front(),
       std::numeric_limits<double>::quiet_NaN(), 1});
  const Observation nan_obs = Observation::from_scans(scans);
  EXPECT_TRUE(
      pruner.select(compiled->compile_observation(nan_obs)).empty());

  // ...and the locator-level contract: pruning never invalidates an
  // answer (it falls back to the exact full pass instead).
  ProbabilisticConfig pruned_cfg;
  pruned_cfg.prune_top_k = 8;
  const ProbabilisticLocator pruned(compiled, pruned_cfg);
  const ProbabilisticLocator exact(compiled);
  const LocationEstimate a = pruned.locate(nan_obs);
  const LocationEstimate b = exact.locate(nan_obs);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.location_name, b.location_name);
}

TEST(CandidatePruner, PrunedLocateAgreesWithExactOnFleetScenario) {
  const testkit::Scenario scenario(testkit::ScenarioSpec::fleet(
      6, 24, 73, testkit::SiteModel::kOfficeFloor));
  const auto observations = testkit::observations_from_trace(
      scenario.record_trace(), 8);
  ASSERT_FALSE(observations.empty());
  ProbabilisticConfig pruned_cfg;
  pruned_cfg.prune_top_k = 24;
  pruned_cfg.prune_strongest_aps = 4;
  const testkit::PrunedDifferentialReport report =
      testkit::run_pruned_differential(scenario.database(), observations,
                                       pruned_cfg);
  EXPECT_EQ(report.compared, observations.size() * 2);
  EXPECT_TRUE(report.ok()) << report.to_text();
  EXPECT_EQ(report.agreement_rate(), 1.0);
}

TEST(CandidatePruner, KnnPrunedScoresAreExact) {
  const testkit::Scenario scenario(testkit::ScenarioSpec::fleet(
      3, 16, 74, testkit::SiteModel::kOfficeFloor));
  const auto compiled = CompiledDatabase::compile(scenario.database());
  const KnnLocator exact(compiled, {.k = 1});
  const KnnLocator pruned(compiled,
                          {.k = 1, .prune_top_k = 24,
                           .prune_strongest_aps = 4});
  const auto observations = testkit::observations_from_trace(
      scenario.record_trace(), 8);
  for (const Observation& obs : observations) {
    const LocationEstimate e = exact.locate(obs);
    const LocationEstimate p = pruned.locate(obs);
    ASSERT_EQ(e.valid, p.valid);
    if (!e.valid) continue;
    // The pruned winner's distance is computed by the same exact
    // kernel, so agreement means bit-equal scores.
    EXPECT_EQ(e.location_name, p.location_name);
    EXPECT_EQ(e.score, p.score);
  }
}

TEST(CandidatePruner, ExportsEffectivenessMetrics) {
  const testkit::Scenario scenario(testkit::ScenarioSpec::fleet(
      3, 12, 75, testkit::SiteModel::kOfficeFloor));
  const auto compiled = CompiledDatabase::compile(scenario.database());
  const auto observations = testkit::observations_from_trace(
      scenario.record_trace(), 8);
  ASSERT_FALSE(observations.empty());

  metrics::Counter& queries = metrics::counter("score.prune.queries");
  metrics::Counter& scored =
      metrics::counter("score.prune.candidates_scored");
  metrics::Counter& fallback =
      metrics::counter("score.prune.fallback_full");
  const auto q0 = queries.value();
  const auto s0 = scored.value();
  const auto f0 = fallback.value();

  ProbabilisticConfig cfg;
  cfg.prune_top_k = 16;
  const ProbabilisticLocator locator(compiled, cfg);
  EXPECT_EQ(metrics::gauge("score.prune.database_points").value(),
            static_cast<double>(compiled->point_count()));

  for (const Observation& obs : observations) locator.locate(obs);
  const auto dq = queries.value() - q0;
  const auto ds = scored.value() - s0;
  const auto df = fallback.value() - f0;
  EXPECT_EQ(dq, observations.size());
  // Every non-fallback query scored at most top_k candidates — the
  // whole point of pruning.
  EXPECT_LE(ds, (dq - df) * 16);
  EXPECT_GT(ds, 0u);
  // Fallbacks can only come from degenerate queries here, and every
  // query is either pruned or falls back.
  EXPECT_LE(df, dq);
}

/// Campus-cardinality fixture: `points` training rows over a >1000
/// slot universe, row p trained on the contiguous AP window
/// [p*step, p*step + width). Two-byte synthetic BSSIDs sort in index
/// order, so slot u is AP u.
traindb::TrainingDatabase make_wide_universe_db(int points = 40,
                                                int step = 26,
                                                int width = 30) {
  std::vector<traindb::TrainingPoint> rows(
      static_cast<std::size_t>(points));
  for (int p = 0; p < points; ++p) {
    rows[p].location = "w" + std::to_string(p);
    rows[p].position = {static_cast<double>(p) * 10.0, 0.0};
    for (int a = p * step; a < p * step + width; ++a) {
      traindb::ApStatistics s;
      s.bssid = radio::synthetic_bssid(a);
      s.mean_dbm = -50.0 - (a % 7);
      s.stddev_db = 2.0;
      s.sample_count = 30;
      s.scan_count = 30;
      s.min_dbm = s.mean_dbm - 4.0;
      s.max_dbm = s.mean_dbm + 4.0;
      rows[p].per_ap.push_back(std::move(s));
    }
  }
  return traindb::TrainingDatabase::from_points(std::move(rows),
                                                "wide-universe");
}

Observation wide_observation(int first_ap, int count, double dbm = -50.0) {
  std::vector<radio::ScanRecord> scans(1);
  for (int a = first_ap; a < first_ap + count; ++a) {
    scans[0].samples.push_back({radio::synthetic_bssid(a), dbm, 1});
  }
  return Observation::from_scans(scans);
}

// Campus-cardinality audit: slot bookkeeping past the 1000-AP mark.
// The postings walk, the coarse ranking, and the pruned locate()
// agreement must hold when slot indices no longer fit habits formed
// on 4-AP sites.
TEST(CandidatePruner, HandlesAThousandSlotUniverse) {
  const auto db = make_wide_universe_db();  // 40*26+30-26 = 1044 slots
  const auto compiled = CompiledDatabase::compile(db);
  ASSERT_GT(compiled->universe_size(), 1000u);

  const CandidatePruner pruner(compiled, {.strongest_aps = 4, .top_k = 8});
  for (const int first : {0, 511, 1010}) {
    const Observation obs = wide_observation(first, 8);
    const CompiledObservation q = compiled->compile_observation(obs);
    ASSERT_EQ(q.in_universe(), 8);
    const auto candidates = pruner.select(q);
    ASSERT_FALSE(candidates.empty());
    EXPECT_LE(candidates.size(), 8u);
    // The row actually trained on this window must survive pruning.
    const std::uint32_t owner = static_cast<std::uint32_t>(first / 26);
    EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), owner) !=
                candidates.end())
        << "window at " << first;
  }

  // Pruned and exact probabilistic locates agree across the universe.
  ProbabilisticConfig pruned_cfg;
  pruned_cfg.prune_top_k = 8;
  const ProbabilisticLocator exact(compiled);
  const ProbabilisticLocator pruned(compiled, pruned_cfg);
  for (const int first : {3, 700, 1020}) {
    const Observation obs = wide_observation(first, 10);
    const LocationEstimate a = exact.locate(obs);
    const LocationEstimate b = pruned.locate(obs);
    ASSERT_TRUE(a.valid);
    ASSERT_TRUE(b.valid);
    EXPECT_EQ(b.location_name, a.location_name);
    EXPECT_EQ(b.score, a.score);
  }
}

// The missing-fill term in the coarse ranking: a row that trained
// every observed slot at close range must outrank a row that trained
// only the seed slot — without the fill, the partial row's untouched
// slots would cost nothing and it could crowd the real neighbors out
// of the candidate set.
TEST(CandidatePruner, CoarseRankChargesMissingSlotsAtScale) {
  auto points = make_wide_universe_db().points();
  // "full" trains the whole probe window 2 dB off; "partial" trains
  // only its loudest slot, spot-on.
  traindb::TrainingPoint full, partial;
  full.location = "full";
  full.position = {500.0, 50.0};
  partial.location = "partial";
  partial.position = {500.0, 60.0};
  const int probe = 1030;
  for (int a = probe; a < probe + 6; ++a) {
    traindb::ApStatistics s;
    s.bssid = radio::synthetic_bssid(a);
    s.mean_dbm = -48.0;
    s.stddev_db = 2.0;
    s.sample_count = 30;
    s.scan_count = 30;
    s.min_dbm = -52.0;
    s.max_dbm = -44.0;
    full.per_ap.push_back(s);
    if (a == probe) {
      s.mean_dbm = -50.0;
      partial.per_ap.push_back(s);
    }
  }
  points.push_back(full);
  points.push_back(partial);
  const auto db = traindb::TrainingDatabase::from_points(std::move(points),
                                                         "missing-fill");
  const auto compiled = CompiledDatabase::compile(db);
  const std::uint32_t full_row =
      static_cast<std::uint32_t>(compiled->point_count() - 2);
  const std::uint32_t partial_row = full_row + 1;

  // Both rows are posted under the loudest observed slot; with a
  // 1-candidate budget only the missing-fill charge separates them.
  const CandidatePruner pruner(compiled, {.strongest_aps = 1, .top_k = 1});
  const Observation obs = wide_observation(probe, 6, -50.0);
  const auto candidates =
      pruner.select(compiled->compile_observation(obs));
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates.front(), full_row);
  EXPECT_NE(candidates.front(), partial_row);
}

// Campus-scale recall regression: the likelihood charges a flat
// penalty per visibility disagreement, so a sparsely trained row (one
// exact AP, five cheap penalties) beats a densely trained row that
// misfits every observed AP by 15 dB. The gap-metric union never even
// visits that row — it is not posted under the strongest observed AP —
// which is exactly how the pruned path lost top-1 parity on generated
// campuses. The probabilistic locator's pruner now ranks with the
// locator's own restricted score (ML coarse mode) and must recover
// the sparse winner bit for bit.
TEST(CandidatePruner, MlModeRecallsSparseWinnerTheGapMetricPrunes) {
  auto trained = [](int ap, double mean) {
    traindb::ApStatistics s;
    s.bssid = radio::synthetic_bssid(ap);
    s.mean_dbm = mean;
    s.stddev_db = 2.0;
    s.sample_count = 30;
    s.scan_count = 30;
    s.min_dbm = mean - 4.0;
    s.max_dbm = mean + 4.0;
    return s;
  };
  std::vector<traindb::TrainingPoint> rows(3);
  for (int p = 0; p < 2; ++p) {
    rows[p].location = "dense" + std::to_string(p);
    rows[p].position = {10.0 * p, 0.0};
    for (int a = 0; a < 6; ++a) {
      rows[p].per_ap.push_back(trained(a, -60.0 - p));
    }
  }
  rows[2].location = "sparse";
  rows[2].position = {50.0, 0.0};
  rows[2].per_ap.push_back(trained(5, -70.0));
  const auto db =
      traindb::TrainingDatabase::from_points(std::move(rows), "ml-recall");
  const auto compiled = CompiledDatabase::compile(db);

  std::vector<radio::ScanRecord> scans(1);
  for (int a = 0; a < 5; ++a) {
    scans[0].samples.push_back({radio::synthetic_bssid(a), -45.0, 1});
  }
  scans[0].samples.push_back({radio::synthetic_bssid(5), -70.0, 1});
  const Observation obs = Observation::from_scans(scans);

  const ProbabilisticLocator exact(compiled);
  const LocationEstimate e = exact.locate(obs);
  ASSERT_TRUE(e.valid);
  ASSERT_EQ(e.location_name, "sparse");

  // The gap metric's candidate union misses the exact winner.
  const CandidatePruner gap(compiled, {.strongest_aps = 1, .top_k = 1});
  const auto gap_candidates = gap.select(compiled->compile_observation(obs));
  ASSERT_EQ(gap_candidates.size(), 1u);
  EXPECT_NE(gap_candidates.front(), 2u);

  // The pruned locator (ML coarse mode) must not.
  ProbabilisticConfig pruned_cfg;
  pruned_cfg.prune_top_k = 1;
  pruned_cfg.prune_strongest_aps = 1;
  const ProbabilisticLocator pruned(compiled, pruned_cfg);
  const LocationEstimate p = pruned.locate(obs);
  ASSERT_TRUE(p.valid);
  EXPECT_EQ(p.location_name, e.location_name);
  EXPECT_EQ(p.score, e.score);
}

}  // namespace
}  // namespace loctk::core

// EpochDomain: the epoch/RCU reclamation layer under the snapshot
// swap. These tests pin the protocol invariants the serving core
// stands on: a pinned reader blocks reclamation of anything it could
// still see, an unpinned domain reclaims everything, and a storm of
// concurrent readers + a swapping writer never frees a snapshot out
// from under a guard (ASan/TSan make that structural, the use-count
// checks make it observable here).

#include "serve/epoch.hpp"

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace loctk::serve {
namespace {

TEST(EpochDomain, StartsQuiescent) {
  EpochDomain domain(8);
  EXPECT_EQ(domain.current_epoch(), 1u);
  EXPECT_EQ(domain.min_active_epoch(), 0u);
  EXPECT_EQ(domain.retired_count(), 0u);
  EXPECT_EQ(domain.reader_slot_count(), 8u);
}

TEST(EpochDomain, GuardPinsCurrentEpoch) {
  EpochDomain domain(8);
  {
    EpochDomain::ReadGuard guard(domain);
    EXPECT_EQ(guard.epoch(), 1u);
    EXPECT_EQ(domain.min_active_epoch(), 1u);
  }
  EXPECT_EQ(domain.min_active_epoch(), 0u);
}

TEST(EpochDomain, RetireWithoutReadersReclaimsImmediately) {
  EpochDomain domain(8);
  auto obj = std::make_shared<int>(42);
  std::weak_ptr<int> weak = obj;
  domain.retire(std::move(obj));
  EXPECT_EQ(domain.current_epoch(), 2u);
  EXPECT_EQ(domain.retired_count(), 0u);  // retire() reclaims inline
  EXPECT_TRUE(weak.expired());
}

TEST(EpochDomain, PinnedReaderBlocksReclamation) {
  EpochDomain domain(8);
  auto obj = std::make_shared<int>(1);
  std::weak_ptr<int> weak = obj;
  {
    EpochDomain::ReadGuard guard(domain);
    domain.retire(std::move(obj));
    // The reader pinned at epoch 1 may still hold the object retired
    // at epoch 1: it must survive.
    EXPECT_EQ(domain.retired_count(), 1u);
    EXPECT_FALSE(weak.expired());
    EXPECT_EQ(domain.try_reclaim(), 0u);
  }
  EXPECT_EQ(domain.try_reclaim(), 1u);
  EXPECT_TRUE(weak.expired());
  EXPECT_EQ(domain.retired_count(), 0u);
}

TEST(EpochDomain, LateReaderDoesNotBlockEarlierRetirement) {
  EpochDomain domain(8);
  auto obj = std::make_shared<int>(1);
  domain.retire(std::move(obj));  // retired at epoch 1, epoch now 2
  auto second = std::make_shared<int>(2);
  std::weak_ptr<int> weak2 = second;
  EpochDomain::ReadGuard guard(domain);  // pinned at epoch 2
  domain.retire(std::move(second));      // retired at epoch 2
  // The reader pinned at 2 could hold the second object but provably
  // never saw the first (it was replaced before the reader pinned).
  EXPECT_EQ(domain.retired_count(), 1u);
  EXPECT_FALSE(weak2.expired());
}

TEST(EpochDomain, DoubleRetireInOneGuardKeepsBoth) {
  // "Double-swap in one epoch": two retirements while one reader is
  // pinned — both snapshots must survive until the guard drops.
  EpochDomain domain(8);
  auto a = std::make_shared<int>(1);
  auto b = std::make_shared<int>(2);
  std::weak_ptr<int> wa = a, wb = b;
  {
    EpochDomain::ReadGuard guard(domain);
    domain.retire(std::move(a));
    domain.retire(std::move(b));
    EXPECT_EQ(domain.retired_count(), 2u);
    EXPECT_FALSE(wa.expired());
    EXPECT_FALSE(wb.expired());
  }
  domain.quiesce();
  EXPECT_TRUE(wa.expired());
  EXPECT_TRUE(wb.expired());
}

TEST(EpochDomain, SlotExhaustionWaitsInsteadOfFailing) {
  EpochDomain domain(1);
  std::atomic<bool> inner_done{false};
  std::optional<EpochDomain::ReadGuard> outer;
  outer.emplace(domain);
  std::thread t([&] {
    EpochDomain::ReadGuard inner(domain);  // must wait for the slot
    inner_done.store(true);
  });
  // Let the thread hit the full slot array, then release the slot.
  while (domain.slot_waits() == 0 && !inner_done.load()) {
    std::this_thread::yield();
  }
  outer.reset();
  t.join();
  EXPECT_TRUE(inner_done.load());
}

TEST(EpochDomain, ConcurrentReadersAndWriterNeverFreePinnedObject) {
  EpochDomain domain(32);
  // The writer publishes a sequence of objects through `published`,
  // retiring the previous one each time; readers pin, load, and verify
  // the object is alive and intact.
  auto first = std::make_shared<int>(0);
  std::atomic<const int*> published{first.get()};
  std::shared_ptr<int> owner = first;

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochDomain::ReadGuard guard(domain);
        const int* p = published.load(std::memory_order_seq_cst);
        // The value must be readable (ASan would flag a freed read)
        // and non-negative (a poisoned value would mean a torn swap).
        EXPECT_GE(*p, 0);
      }
    });
  }

  for (int gen = 1; gen <= 500; ++gen) {
    auto next = std::make_shared<int>(gen);
    published.store(next.get(), std::memory_order_seq_cst);
    std::shared_ptr<int> old = std::move(owner);
    owner = std::move(next);
    domain.retire(std::move(old));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  domain.quiesce();
  EXPECT_EQ(domain.retired_count(), 0u);
}

}  // namespace
}  // namespace loctk::serve

// Unit + property tests for the k-d signal index: must return exactly
// what the brute-force scan returns, for every k and many queries.

#include "core/signal_index.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "stats/rng.hpp"
#include "test_fixtures.hpp"

namespace loctk::core {
namespace {

using testing::fixture_observation;
using testing::make_fixture_db;

// Reference: brute-force k nearest by signature distance.
std::vector<IndexedNeighbor> brute_force(
    const traindb::TrainingDatabase& db, std::span<const double> sig,
    int k, double missing) {
  std::vector<IndexedNeighbor> all;
  for (const traindb::TrainingPoint& tp : db.points()) {
    const auto tsig = tp.signature(db.bssid_universe(), missing);
    double d2 = 0.0;
    for (std::size_t d = 0; d < tsig.size(); ++d) {
      const double diff = sig[d] - tsig[d];
      d2 += diff * diff;
    }
    all.push_back({&tp, d2});
  }
  std::sort(all.begin(), all.end(),
            [](const IndexedNeighbor& a, const IndexedNeighbor& b) {
              return a.distance2 < b.distance2;
            });
  if (static_cast<int>(all.size()) > k) {
    all.resize(static_cast<std::size_t>(k));
  }
  return all;
}

TEST(SignalIndex, BuildShape) {
  const auto db = make_fixture_db();
  const SignalIndex index(db);
  EXPECT_EQ(index.size(), db.size());
  EXPECT_EQ(index.dimensions(), db.bssid_universe().size());
}

TEST(SignalIndex, NearestAtTrainingPointIsItself) {
  const auto db = make_fixture_db();
  const SignalIndex index(db);
  for (const traindb::TrainingPoint& tp : db.points()) {
    const auto result = index.nearest(fixture_observation(tp.position), 1);
    ASSERT_EQ(result.size(), 1u);
    EXPECT_EQ(result[0].point->location, tp.location);
    EXPECT_NEAR(result[0].distance2, 0.0, 1e-9);
  }
}

TEST(SignalIndex, SortedAscending) {
  const auto db = make_fixture_db();
  const SignalIndex index(db);
  const auto result = index.nearest(fixture_observation({17.0, 23.0}), 8);
  ASSERT_EQ(result.size(), 8u);
  for (std::size_t i = 1; i < result.size(); ++i) {
    EXPECT_GE(result[i].distance2, result[i - 1].distance2);
  }
}

TEST(SignalIndex, KClampsAndEdgeCases) {
  const auto db = make_fixture_db(20.0);  // 3x3 grid
  const SignalIndex index(db);
  EXPECT_EQ(index.nearest(fixture_observation({20, 20}), 100).size(), 9u);
  EXPECT_TRUE(index.nearest(fixture_observation({20, 20}), 0).empty());
  // Wrong-length signature rejected.
  const std::vector<double> bad(2, -60.0);
  EXPECT_TRUE(index.nearest(bad, 3).empty());

  traindb::TrainingDatabase empty;
  const SignalIndex empty_index(empty);
  EXPECT_TRUE(
      empty_index.nearest(std::vector<double>{}, 3).empty());
}

// Property: index == brute force for random queries, all k.
class IndexEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(IndexEquivalence, MatchesBruteForce) {
  const int k = GetParam();
  const auto db = make_fixture_db(5.0);  // 9x9 = 81 points
  const double missing = -100.0;
  const SignalIndex index(db, missing);

  stats::Rng rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> query(db.bssid_universe().size());
    for (double& v : query) v = rng.uniform(-95.0, -30.0);

    const auto fast = index.nearest(query, k);
    const auto slow = brute_force(db, query, k, missing);
    ASSERT_EQ(fast.size(), slow.size()) << "trial " << trial;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      // Distances must agree; points may differ only on exact ties.
      EXPECT_NEAR(fast[i].distance2, slow[i].distance2, 1e-9)
          << "trial " << trial << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, IndexEquivalence,
                         ::testing::Values(1, 2, 3, 5, 9, 20, 81));

TEST(SignalIndex, ObservationQueryUsesUniverseOrder) {
  const auto db = make_fixture_db();
  const SignalIndex index(db);
  const Observation obs = fixture_observation({10.0, 20.0});
  const auto via_obs = index.nearest(obs, 3);
  const auto via_sig =
      index.nearest(obs.signature(db.bssid_universe(), -100.0), 3);
  ASSERT_EQ(via_obs.size(), via_sig.size());
  for (std::size_t i = 0; i < via_obs.size(); ++i) {
    EXPECT_EQ(via_obs[i].point, via_sig[i].point);
  }
}

}  // namespace
}  // namespace loctk::core

// Unit tests for the NNSS/k-NN baselines and the Bayesian grid
// locator (posterior over training points).

#include "core/bayes.hpp"
#include "core/histogram_locator.hpp"
#include "core/knn.hpp"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "test_fixtures.hpp"

namespace loctk::core {
namespace {

using testing::fixture_observation;
using testing::make_fixture_db;

TEST(Knn, K1MatchesNearestSignature) {
  const auto db = make_fixture_db();
  const KnnLocator nnss(db, {.k = 1});
  EXPECT_EQ(nnss.name(), "nnss");
  for (const traindb::TrainingPoint& tp : db.points()) {
    const LocationEstimate est =
        nnss.locate(fixture_observation(tp.position));
    ASSERT_TRUE(est.valid);
    EXPECT_EQ(est.location_name, tp.location);
    EXPECT_EQ(est.position, tp.position);
  }
}

TEST(Knn, SignalDistanceZeroAtOwnPoint) {
  const auto db = make_fixture_db();
  const KnnLocator nnss(db);
  const traindb::TrainingPoint& tp = db.points().front();
  EXPECT_NEAR(nnss.signal_distance(fixture_observation(tp.position), tp),
              0.0, 1e-9);
  EXPECT_GT(nnss.signal_distance(fixture_observation({40.0, 40.0}), tp),
            5.0);
}

TEST(Knn, K3InterpolatesBetweenCells) {
  const auto db = make_fixture_db();
  const KnnLocator knn(db, {.k = 3});
  EXPECT_EQ(knn.name(), "knn-3");
  // Query between training points: the weighted estimate should land
  // off-grid, strictly inside the hull of its neighbors.
  const geom::Vec2 query{15.0, 10.0};
  const LocationEstimate est = knn.locate(fixture_observation(query));
  ASSERT_TRUE(est.valid);
  EXPECT_LT(geom::distance(est.position, query), 10.0);
  // Not snapped exactly to any training point.
  bool on_grid = false;
  for (const auto& tp : db.points()) {
    if (tp.position == est.position) on_grid = true;
  }
  EXPECT_FALSE(on_grid);
}

TEST(Knn, UniformWeightingIsCentroid) {
  const auto db = make_fixture_db();
  KnnConfig cfg;
  cfg.k = 2;
  cfg.inverse_distance_weighting = false;
  const KnnLocator knn(db, cfg);
  const LocationEstimate est =
      knn.locate(fixture_observation({15.0, 10.0}));
  ASSERT_TRUE(est.valid);
  // Two nearest cells are (10,10) and (20,10); centroid x = 15.
  EXPECT_NEAR(est.position.x, 15.0, 1e-9);
  EXPECT_NEAR(est.position.y, 10.0, 1e-9);
}

TEST(Knn, KLargerThanDatabaseClamps) {
  const auto db = make_fixture_db(20.0);  // 3x3 grid
  const KnnLocator knn(db, {.k = 100});
  const LocationEstimate est =
      knn.locate(fixture_observation({20.0, 20.0}));
  EXPECT_TRUE(est.valid);
}

TEST(Knn, EmptyInputsInvalid) {
  const auto db = make_fixture_db();
  const KnnLocator knn(db);
  EXPECT_FALSE(knn.locate(Observation{}).valid);
  traindb::TrainingDatabase empty;
  const KnnLocator on_empty(empty);
  EXPECT_FALSE(on_empty.locate(fixture_observation({1, 1})).valid);
}

TEST(Bayes, PosteriorNormalizedAndPeaked) {
  const auto db = make_fixture_db();
  const BayesGridLocator bayes(db);
  const traindb::TrainingPoint& tp = db.points()[7];
  const Posterior post = bayes.posterior(fixture_observation(tp.position));
  ASSERT_EQ(post.probabilities.size(), db.size());
  const double total = std::accumulate(post.probabilities.begin(),
                                       post.probabilities.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(db.points()[post.map_index].location, tp.location);
  // Peaked: MAP mass dominates.
  EXPECT_GT(post.probabilities[post.map_index], 0.5);
  EXPECT_LT(post.entropy, std::log(static_cast<double>(db.size())));
}

TEST(Bayes, PosteriorMeanBetweenCellsForAmbiguousObservation) {
  const auto db = make_fixture_db();
  const BayesGridLocator bayes(db);
  // Halfway between (10,10) and (20,10): posterior mean should sit
  // near x=15 rather than snapping.
  const Posterior post =
      bayes.posterior(fixture_observation({15.0, 10.0}));
  EXPECT_NEAR(post.mean_position.x, 15.0, 3.0);
  EXPECT_NEAR(post.mean_position.y, 10.0, 3.0);
}

TEST(Bayes, PriorShiftsPosterior) {
  const auto db = make_fixture_db();
  const BayesGridLocator bayes(db);
  const Observation obs = fixture_observation({15.0, 10.0});
  // Uniform prior: roughly split between the two nearest cells.
  const Posterior flat = bayes.posterior(obs);
  // Prior heavily favoring (20,10).
  std::vector<double> prior(db.size(), 1e-6);
  for (std::size_t i = 0; i < db.size(); ++i) {
    if (db.points()[i].location == "g20-10") prior[i] = 1.0;
  }
  const Posterior skewed = bayes.posterior(obs, prior);
  EXPECT_EQ(db.points()[skewed.map_index].location, "g20-10");
  EXPECT_GT(skewed.mean_position.x, flat.mean_position.x - 1e-9);
}

TEST(Bayes, LocateUsesPosteriorMeanByDefault) {
  const auto db = make_fixture_db();
  const BayesGridLocator mean_locator(db);
  BayesConfig map_cfg;
  map_cfg.use_posterior_mean = false;
  const BayesGridLocator map_locator(db, map_cfg);

  const Observation obs = fixture_observation({15.0, 10.0});
  const LocationEstimate mean_est = mean_locator.locate(obs);
  const LocationEstimate map_est = map_locator.locate(obs);
  ASSERT_TRUE(mean_est.valid);
  ASSERT_TRUE(map_est.valid);
  // MAP answer is a training point; mean answer generally is not.
  bool map_on_grid = false;
  for (const auto& tp : db.points()) {
    if (tp.position == map_est.position) map_on_grid = true;
  }
  EXPECT_TRUE(map_on_grid);
  EXPECT_EQ(mean_est.location_name, map_est.location_name);
}

TEST(Bayes, EmptyObservationInvalid) {
  const auto db = make_fixture_db();
  const BayesGridLocator bayes(db);
  EXPECT_FALSE(bayes.locate(Observation{}).valid);
}

TEST(HistogramLocator, RequiresSamples) {
  const auto no_samples = make_fixture_db();
  EXPECT_THROW(HistogramLocator{no_samples}, traindb::DatabaseError);
}

TEST(HistogramLocator, LocatesWithRetainedSamples) {
  const auto db = make_fixture_db(10.0, 2.0, /*keep_samples=*/true);
  const HistogramLocator locator(db);
  EXPECT_EQ(locator.name(), "histogram");
  for (const std::size_t idx : {0u, 7u, 12u}) {
    const traindb::TrainingPoint& tp = db.points()[idx];
    const LocationEstimate est =
        locator.locate(fixture_observation(tp.position));
    ASSERT_TRUE(est.valid);
    // Histogram bins are 2 dB wide, so adjacent cells whose means
    // differ by ~1 dB can tie; require at most one cell of error.
    EXPECT_LE(geom::distance(est.position, tp.position), 10.0)
        << tp.location;
  }
}

TEST(HistogramLocator, EmptyObservationInvalid) {
  const auto db = make_fixture_db(10.0, 2.0, true);
  const HistogramLocator locator(db);
  EXPECT_FALSE(locator.locate(Observation{}).valid);
}

}  // namespace
}  // namespace loctk::core

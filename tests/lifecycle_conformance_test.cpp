// The drift-recovery conformance gate: the full decay-and-recovery
// arc from testkit/drift.hpp. A five-AP paper house is surveyed and
// served; one AP moves, one loses transmit power, one vanishes; the
// drift monitor must flag the decay, the quarantined resurvey must
// delta-compile bit-exactly against a from-scratch rebuild, and the
// republished snapshot must bring accuracy back inside the §5.1/§5.2
// golden bands. Minutes-scale (each rerun trains two full surveys),
// so it rides the conformance label, not quick.

#include "testkit/drift.hpp"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

namespace loctk::testkit {
namespace {

TEST(DriftRecoveryConformance, AccuracyRecoversToPaperBandsAfterRepublish) {
  DriftScenarioConfig config;
  const DriftSoakResult result = run_drift_soak(config);
  SCOPED_TRACE(result.to_text());
  for (const std::string& v : result.violations) {
    ADD_FAILURE() << "drift soak violation: " << v;
  }
  ASSERT_TRUE(result.ok());

  // Every arc republished exactly once, with evidence on both sides:
  // the monitor saw the decay, the intake rejected the hostile dwells,
  // and the differential compared real cells.
  EXPECT_EQ(result.republishes, static_cast<std::uint64_t>(result.reruns));
  EXPECT_GT(result.shifted_pairs, 0u);
  EXPECT_GT(result.vanished_pairs, 0u);
  EXPECT_EQ(result.quarantined, 2u * static_cast<std::uint64_t>(result.reruns));
  EXPECT_GT(result.differential_cells, 0u);

  // The arc itself: baseline healthy, stale degraded, recovery inside
  // the golden bands (the band checks are violations above; these
  // document the shape).
  EXPECT_LT(result.stale_valid_rate, result.baseline_valid_rate);
  EXPECT_GT(result.recovered_valid_rate, result.stale_valid_rate);
}

}  // namespace
}  // namespace loctk::testkit

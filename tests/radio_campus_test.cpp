// Campus generator: global-frame geometry, BSSID uniqueness at >256
// APs, and the CampusFloorView physics (slab within a building,
// facade loss between buildings).

#include "radio/campus.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace loctk::radio {
namespace {

CampusSpec small_spec() {
  CampusSpec spec;
  spec.buildings = 2;
  spec.floors_per_building = 2;
  spec.floor_width_ft = 120.0;
  spec.floor_depth_ft = 80.0;
  spec.rooms_x = 4;
  spec.rooms_y = 2;
  spec.aps_per_floor = 20;
  spec.seed = 77;
  return spec;
}

TEST(SyntheticBssid, TwoByteFormExtendsTheOldOneCompatibly) {
  // The historical one-byte form is preserved verbatim below 256…
  EXPECT_EQ(synthetic_bssid(0), "00:17:AB:00:00:00");
  EXPECT_EQ(synthetic_bssid(255), "00:17:AB:00:00:FF");
  // …and indices past it get a distinct high byte instead of aliasing.
  EXPECT_EQ(synthetic_bssid(256), "00:17:AB:00:01:00");
  EXPECT_EQ(synthetic_bssid(0x1234), "00:17:AB:00:12:34");
  std::set<std::string> seen;
  for (int i = 0; i < 1200; ++i) seen.insert(synthetic_bssid(i));
  EXPECT_EQ(seen.size(), 1200u);
}

TEST(Campus, LayoutMatchesSpec) {
  const auto campus = make_campus(small_spec());
  EXPECT_EQ(campus->building_count(), 2u);
  EXPECT_EQ(campus->floor_count(), 4u);
  EXPECT_EQ(campus->total_ap_count(), 80u);
  EXPECT_EQ(campus->flat_floor(1, 1), 3u);
  EXPECT_EQ(campus->building_of(3), 1u);
  EXPECT_EQ(campus->floor_of(3), 1u);

  // Buildings sit side by side in one global frame, gap between.
  const auto& fp0 = campus->footprint(0);
  const auto& fp1 = campus->footprint(1);
  EXPECT_DOUBLE_EQ(fp0.min.x, 0.0);
  EXPECT_DOUBLE_EQ(fp1.min.x, fp0.max.x + campus->spec().building_gap_ft);
  EXPECT_FALSE(fp0.intersects(fp1));

  // Every AP lives inside its building's footprint, and room centers
  // tile the plate.
  for (std::size_t b = 0; b < campus->building_count(); ++b) {
    const Building& building = campus->building(b);
    for (std::size_t f = 0; f < building.floor_count(); ++f) {
      for (const AccessPoint& ap : building.floor(f).access_points()) {
        EXPECT_TRUE(campus->footprint(b).contains(ap.position)) << ap.name;
      }
    }
    const auto centers = campus->room_centers(b);
    ASSERT_EQ(centers.size(), 8u);
    for (const auto& c : centers) {
      EXPECT_TRUE(campus->footprint(b).contains(c));
    }
  }
}

TEST(Campus, BssidsAreCampusUniqueAndNamesCarryBuildingFloor) {
  const auto campus = make_campus(small_spec());
  std::set<std::string> bssids;
  for (std::size_t b = 0; b < campus->building_count(); ++b) {
    const Building& building = campus->building(b);
    for (std::size_t f = 0; f < building.floor_count(); ++f) {
      for (const AccessPoint& ap : building.floor(f).access_points()) {
        EXPECT_TRUE(bssids.insert(ap.bssid).second) << ap.bssid;
        const std::string prefix =
            "B" + std::to_string(b) + "F" + std::to_string(f) + "-AP";
        EXPECT_EQ(ap.name.rfind(prefix, 0), 0u) << ap.name;
      }
    }
  }
  EXPECT_EQ(bssids.size(), campus->total_ap_count());
}

TEST(Campus, DefaultSpecClearsTheThousandApMark) {
  const CampusSpec spec;
  EXPECT_GE(spec.total_aps(), 1000);
  const auto campus = make_campus(spec);
  EXPECT_GE(campus->total_ap_count(), 1000u);
  EXPECT_GE(campus->building_count() * campus->spec().rooms_per_floor() *
                campus->floors_per_building(),
            200u);  // hundreds of rooms
}

TEST(Campus, GenerationIsDeterministicInTheSpec) {
  const auto a = make_campus(small_spec());
  const auto b = make_campus(small_spec());
  for (std::size_t bl = 0; bl < a->building_count(); ++bl) {
    for (std::size_t f = 0; f < a->floors_per_building(); ++f) {
      const auto& fa = a->building(bl).floor(f).access_points();
      const auto& fb = b->building(bl).floor(f).access_points();
      ASSERT_EQ(fa.size(), fb.size());
      for (std::size_t i = 0; i < fa.size(); ++i) {
        EXPECT_EQ(fa[i], fb[i]);
      }
    }
  }
}

TEST(Campus, RejectsDegenerateAndOversizedSpecs) {
  CampusSpec zero = small_spec();
  zero.buildings = 0;
  EXPECT_THROW(make_campus(zero), std::invalid_argument);

  CampusSpec huge = small_spec();
  huge.buildings = 100;
  huge.floors_per_building = 10;
  huge.aps_per_floor = 200;  // 200k APs: past the BSSID space
  EXPECT_THROW(make_campus(huge), std::invalid_argument);
}

TEST(CampusFloorView, SameBuildingMatchesFloorViewPhysics) {
  const auto campus = make_campus(small_spec());
  const CampusFloorView view(*campus, 0, 1);
  EXPECT_EQ(view.ap_count(), campus->total_ap_count());

  const FloorView reference(campus->building(0), 1);
  const geom::Vec2 rx = campus->footprint(0).center();
  for (std::size_t i = 0; i < reference.ap_count(); ++i) {
    EXPECT_DOUBLE_EQ(view.mean_rssi_dbm(i, rx),
                     reference.mean_rssi_dbm(i, rx));
    EXPECT_EQ(view.ap(i).bssid, reference.ap(i).bssid);
  }
}

TEST(CampusFloorView, CrossBuildingPaysTheFacadeLoss) {
  const auto campus = make_campus(small_spec());
  const CampusFloorView view(*campus, 0, 0);

  const std::size_t b1_base = campus->building(0).total_ap_count();
  const FloorView b1_reference(campus->building(1), 0);
  const geom::Vec2 rx = campus->footprint(0).center();
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(
        view.mean_rssi_dbm(b1_base + i, rx),
        b1_reference.mean_rssi_dbm(i, rx) -
            campus->spec().inter_building_loss_db);
    EXPECT_EQ(view.ap(b1_base + i).bssid, b1_reference.ap(i).bssid);
  }
}

TEST(CampusFloorView, RejectsOutOfRangeReceiverPlacement) {
  const auto campus = make_campus(small_spec());
  EXPECT_THROW(CampusFloorView(*campus, 2, 0), std::out_of_range);
  EXPECT_THROW(CampusFloorView(*campus, 0, 2), std::out_of_range);
}

}  // namespace
}  // namespace loctk::radio

// LocationServer: the multi-tenant serving core. Covers the control
// plane (site registry, duplicate/invalid rejection), the data plane's
// equivalence with a standalone LocationService, and the swap
// edge cases the design document calls out: sessions surviving a hot
// swap, a swap landing while a reader is mid-locate_batch, double-swap
// inside one epoch, swapping to an empty/degenerate database, and an
// 8-thread swap-storm meant to run under TSan.

#include "serve/location_server.hpp"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/metrics.hpp"
#include "core/compiled_db.hpp"
#include "core/location_service.hpp"
#include "core/probabilistic.hpp"
#include "test_fixtures.hpp"
#include "traindb/database.hpp"

namespace loctk::serve {
namespace {

using loctk::testing::fixture_bssids;
using loctk::testing::fixture_mean_rssi;
using loctk::testing::fixture_observation;
using loctk::testing::make_fixture_db;

radio::ScanRecord scan_at(geom::Vec2 pos, double t = 0.0) {
  radio::ScanRecord rec;
  rec.timestamp_s = t;
  for (std::size_t a = 0; a < fixture_bssids().size(); ++a) {
    rec.samples.push_back(
        {fixture_bssids()[a], fixture_mean_rssi(a, pos), 1});
  }
  return rec;
}

/// A fresh locator over the (deterministic) fixture database. Each
/// call recompiles from scratch — two calls give *equivalent* but
/// distinct snapshots, exactly what a production republish installs.
std::shared_ptr<const core::Locator> make_locator() {
  return std::make_shared<core::ProbabilisticLocator>(
      core::CompiledDatabase::compile_owned(make_fixture_db()));
}

/// A locator over an empty training database: every locate fails.
std::shared_ptr<const core::Locator> make_degenerate_locator() {
  return std::make_shared<core::ProbabilisticLocator>(
      core::CompiledDatabase::compile_owned(traindb::TrainingDatabase{}));
}

LocationServerConfig small_config() {
  LocationServerConfig config;
  config.max_sites = 8;
  config.sessions_per_site = 64;
  config.session_stripes = 4;
  config.reader_slots = 16;
  return config;
}

TEST(LocationServer, AddAndFindSites) {
  LocationServer server(small_config());
  const SiteId a = server.add_site("alpha", make_locator());
  const SiteId b = server.add_site("beta", make_locator());
  EXPECT_NE(a, b);
  EXPECT_EQ(server.site_count(), 2u);
  EXPECT_EQ(server.find_site("alpha"), std::optional<SiteId>(a));
  EXPECT_EQ(server.find_site("beta"), std::optional<SiteId>(b));
  EXPECT_EQ(server.find_site("gamma"), std::nullopt);
  EXPECT_EQ(server.generation(a), 1u);
  EXPECT_EQ(server.stats(a).name, "alpha");
}

TEST(LocationServer, RejectsDuplicateAndInvalidSites) {
  LocationServer server(small_config());
  server.add_site("alpha", make_locator());
  EXPECT_THROW(server.add_site("alpha", make_locator()),
               std::invalid_argument);
  EXPECT_THROW(server.add_site("null", nullptr), std::invalid_argument);
}

TEST(LocationServer, FullServerRejectsNewSites) {
  LocationServerConfig config = small_config();
  config.max_sites = 2;
  LocationServer server(config);
  server.add_site("a", make_locator());
  server.add_site("b", make_locator());
  EXPECT_THROW(server.add_site("c", make_locator()), std::invalid_argument);
}

TEST(LocationServer, UnknownSiteDegradesInsteadOfThrowing) {
  LocationServer server(small_config());
  const core::ServiceFix fix = server.on_scan(99, 1, scan_at({10, 10}));
  EXPECT_FALSE(fix.valid);
  EXPECT_NE(fix.degraded_reason.find("[degenerate]"), std::string::npos);
  EXPECT_FALSE(server.try_locate(99, fixture_observation({10, 10})));
  EXPECT_EQ(server.generation(99), 0u);
}

TEST(LocationServer, OnScanMatchesStandaloneLocationService) {
  // The server must be a transparent routing layer: one device's fix
  // stream through the server equals a standalone LocationService on
  // the same locator, scan for scan.
  auto locator = make_locator();
  LocationServer server(small_config());
  const SiteId site = server.add_site("alpha", locator);
  // Shard counters are process-global (keyed by site name): use deltas.
  const std::uint64_t scans_before = server.stats(site).scans;

  core::LocationService reference(*locator, small_config().service);
  for (int i = 0; i < 10; ++i) {
    const radio::ScanRecord rec = scan_at({20, 20}, 1.0 * i);
    const core::ServiceFix got = server.on_scan(site, 7, rec);
    const core::ServiceFix want = reference.on_scan(rec);
    EXPECT_EQ(got.valid, want.valid) << i;
    EXPECT_EQ(got.position, want.position) << i;
    EXPECT_EQ(got.place, want.place) << i;
  }
  const SiteStats stats = server.stats(site);
  EXPECT_EQ(stats.scans - scans_before, 10u);
  EXPECT_EQ(stats.sessions, 1u);
}

TEST(LocationServer, SessionsSurviveHotSwap) {
  // A republished (equivalent) snapshot must not reset device state:
  // the fix stream with a swap in the middle is identical to an
  // uninterrupted one.
  auto locator = make_locator();
  LocationServer server(small_config());
  const SiteId site = server.add_site("alpha", locator);
  core::LocationService reference(*locator, small_config().service);

  for (int i = 0; i < 6; ++i) {
    const radio::ScanRecord rec = scan_at({20, 20}, 1.0 * i);
    server.on_scan(site, 7, rec);
    reference.on_scan(rec);
  }
  EXPECT_EQ(server.swap_site(site, make_locator()), 2u);
  for (int i = 6; i < 12; ++i) {
    const radio::ScanRecord rec = scan_at({20, 20}, 1.0 * i);
    const core::ServiceFix got = server.on_scan(site, 7, rec);
    const core::ServiceFix want = reference.on_scan(rec);
    EXPECT_EQ(got.valid, want.valid) << i;
    EXPECT_EQ(got.position, want.position) << i;
    EXPECT_EQ(got.place, want.place) << i;
  }
  EXPECT_EQ(server.stats(site).sessions, 1u);
  EXPECT_EQ(server.generation(site), 2u);
}

TEST(LocationServer, DoubleSwapInOneEpochReclaimsBoth) {
  LocationServer server(small_config());
  const SiteId site = server.add_site("alpha", make_locator());
  // Two swaps back to back with no reader pinned in between: both
  // retired snapshots must be reclaimed, generation advances by 2.
  EXPECT_EQ(server.swap_site(site, make_locator()), 2u);
  EXPECT_EQ(server.swap_site(site, make_locator()), 3u);
  server.reclaim(site);
  const SiteStats stats = server.stats(site);
  EXPECT_EQ(stats.generation, 3u);
  EXPECT_EQ(stats.retired_snapshots, 0u);
  // The data plane sees the latest snapshot.
  EXPECT_TRUE(server.on_scan(site, 1, scan_at({20, 20})).window_fill > 0);
}

TEST(LocationServer, SwapToDegenerateDatabaseDegradesNotCrashes) {
  LocationServerConfig config = small_config();
  // No Kalman coasting, single-scan window: locator failure must show
  // through as an invalid fix immediately.
  config.service.kalman_smoothing = false;
  config.service.window_scans = 1;
  config.service.min_scans = 1;
  LocationServer server(config);
  const SiteId site = server.add_site("alpha", make_locator());

  EXPECT_TRUE(server.on_scan(site, 1, scan_at({20, 20}, 0.0)).valid);

  server.swap_site(site, make_degenerate_locator());
  // The empty map cannot locate anything — the scan degrades, the
  // serving loop does not unwind, the session is retained.
  const core::ServiceFix degraded =
      server.on_scan(site, 1, scan_at({20, 20}, 1.0));
  EXPECT_FALSE(degraded.valid);
  EXPECT_EQ(server.stats(site).sessions, 1u);
  EXPECT_FALSE(server.try_locate(site, fixture_observation({20, 20})));

  // Swapping back to a real map restores service on the same session.
  server.swap_site(site, make_locator());
  EXPECT_TRUE(server.on_scan(site, 1, scan_at({20, 20}, 2.0)).valid);
  EXPECT_EQ(server.generation(site), 3u);
}

/// Not derived from std::exception on purpose: Locator::try_locate
/// already converts std::exception throws into a typed kInternal
/// Error, so only a foreign exception type reaches the serving layer —
/// which is exactly the path the on_scan contract must survive.
struct HostileUnwind {};

class ThrowingLocator : public core::Locator {
 public:
  core::LocationEstimate locate(const core::Observation&) const override {
    throw HostileUnwind{};
  }
  std::string name() const override { return "throwing"; }
};

class ThrowingStdLocator : public core::Locator {
 public:
  core::LocationEstimate locate(const core::Observation&) const override {
    throw std::runtime_error("scoring blew up");
  }
  std::string name() const override { return "throwing-std"; }
};

TEST(LocationServer, OnScanNeverUnwindsOnThrowingLocator) {
  // Regression: on_scan used to rethrow locator exceptions, violating
  // the "data plane must not unwind on hostile input" contract. A
  // throwing locator must degrade the scan, count it in
  // serve.shard.<site>.errors, release the session spinlock, and leave
  // the session serviceable after a swap to a good snapshot.
  LocationServerConfig config = small_config();
  config.service.kalman_smoothing = false;
  config.service.window_scans = 1;
  config.service.min_scans = 1;
  LocationServer server(config);
  const SiteId site =
      server.add_site("hostile", std::make_shared<ThrowingLocator>());
  const std::uint64_t errors_before = server.stats(site).errors;
  const std::uint64_t scans_before = server.stats(site).scans;

  core::ServiceFix fix;
  ASSERT_NO_THROW(fix = server.on_scan(site, 7, scan_at({20, 20})));
  EXPECT_FALSE(fix.valid);
  EXPECT_NE(fix.degraded_reason.find("[internal]"), std::string::npos);

  SiteStats stats = server.stats(site);
  EXPECT_EQ(stats.errors - errors_before, 1u);
  EXPECT_EQ(stats.scans - scans_before, 1u);
  EXPECT_EQ(stats.sessions, 1u);

  // The spinlock was released and the session survived: the same
  // device resumes valid fixes once a good snapshot is swapped in.
  server.swap_site(site, make_locator());
  ASSERT_NO_THROW(fix = server.on_scan(site, 7, scan_at({20, 20}, 1.0)));
  EXPECT_TRUE(fix.valid);
  EXPECT_EQ(server.stats(site).errors - errors_before, 1u);
}

TEST(LocationServer, OnScanReportsStdExceptionMessage) {
  // The std::exception flavor is absorbed earlier (try_locate maps it
  // to a degraded fix), but a locator that throws from elsewhere on
  // the scan path must still degrade — and carry the what() string so
  // operators can see why.
  LocationServerConfig config = small_config();
  config.service.kalman_smoothing = false;
  config.service.window_scans = 1;
  config.service.min_scans = 1;
  LocationServer server(config);
  const SiteId site =
      server.add_site("hostile-std", std::make_shared<ThrowingStdLocator>());
  const core::ServiceFix fix = server.on_scan(site, 7, scan_at({20, 20}));
  EXPECT_FALSE(fix.valid);
}

TEST(LocationServer, LocateBatchPinsOneSnapshotAcrossSwaps) {
  // A batch is scored by a single pinned snapshot even while swaps
  // land concurrently; with equivalent snapshots, every answer equals
  // the single-shot reference regardless of interleaving.
  auto locator = make_locator();
  LocationServer server(small_config());
  const SiteId site = server.add_site("alpha", locator);

  std::vector<core::Observation> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back(fixture_observation(
        {static_cast<double>(i % 5) * 10.0,
         static_cast<double>(i / 13) * 10.0}));
  }
  const std::vector<core::LocationEstimate> want =
      locator->locate_batch(batch);

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      server.swap_site(site, make_locator());
    }
  });
  for (int round = 0; round < 20; ++round) {
    const std::vector<core::LocationEstimate> got =
        server.locate_batch(site, batch);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].valid, want[i].valid) << i;
      EXPECT_EQ(got[i].position, want[i].position) << i;
      EXPECT_EQ(got[i].location_name, want[i].location_name) << i;
    }
  }
  stop.store(true, std::memory_order_release);
  swapper.join();
  server.reclaim(site);
  EXPECT_EQ(server.stats(site).retired_snapshots, 0u);
}

TEST(LocationServer, EightThreadSwapStorm) {
  // The TSan target: 8 scan threads over 2 sites × many devices while
  // a swapper republishes both sites as fast as it can. Every fix must
  // be well-formed, per-shard accounting must balance, and no retired
  // snapshot may survive the final reclaim.
  constexpr int kThreads = 8;
  constexpr int kScansPerThread = 120;
  LocationServerConfig config = small_config();
  config.sessions_per_site = 256;
  LocationServer server(config);
  const SiteId sites[2] = {server.add_site("storm-a", make_locator()),
                           server.add_site("storm-b", make_locator())};
  // Shard counters live in the process-global metrics registry (keyed
  // by site name), so assert on deltas from this baseline.
  const std::uint64_t scans_before[2] = {server.stats(sites[0]).scans,
                                         server.stats(sites[1]).scans};

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> swaps{0};
  std::thread swapper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const SiteId site : sites) {
        server.swap_site(site, make_locator());
        swaps.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::vector<std::thread> threads;
  std::atomic<int> bad_fixes{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kScansPerThread; ++i) {
        const SiteId site = sites[t % 2];
        const DeviceId device =
            static_cast<DeviceId>(t * 1000 + (i % 8) + 1);
        const core::ServiceFix fix =
            server.on_scan(site, device, scan_at({20, 20}, 1.0 * i));
        // Each device sees one scan every 8 iterations; once a device
        // has a few scans in its window the fixture scan always
        // locates, so a later invalid fix would mean a scan raced a
        // swap into a bad state.
        if (i >= 8 * 4 && !fix.valid) bad_fixes.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  swapper.join();

  EXPECT_EQ(bad_fixes.load(), 0);
  EXPECT_GE(swaps.load(), 2u);
  std::uint64_t total_scans = 0;
  for (int s = 0; s < 2; ++s) {
    const SiteId site = sites[s];
    server.reclaim(site);
    const SiteStats stats = server.stats(site);
    total_scans += stats.scans - scans_before[s];
    EXPECT_EQ(stats.retired_snapshots, 0u);
    EXPECT_EQ(stats.sessions_rejected, 0u);
    EXPECT_EQ(stats.generation, server.generation(site));
    // 4 threads × 8 device slots hit each site.
    EXPECT_EQ(stats.sessions, 32u);
  }
  EXPECT_EQ(total_scans,
            static_cast<std::uint64_t>(kThreads) * kScansPerThread);
}

TEST(LocationServer, StatsExposeEpochAndGeneration) {
  LocationServer server(small_config());
  const SiteId site = server.add_site("alpha", make_locator());
  const SiteStats before = server.stats(site);
  EXPECT_EQ(before.generation, 1u);
  server.swap_site(site, make_locator());
  const SiteStats after = server.stats(site);
  EXPECT_EQ(after.generation, 2u);
  EXPECT_GT(after.epoch, before.epoch);
  EXPECT_EQ(after.reader_stalls, 0u);
}

}  // namespace
}  // namespace loctk::serve

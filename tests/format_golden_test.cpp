// Golden-format tests: freeze the on-disk representations so format
// changes are deliberate, versioned decisions rather than accidents.
// If one of these fails, either bump the codec version and add a
// migration path, or revert the encoding change.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "traindb/codec.hpp"
#include "wiscan/archive.hpp"
#include "wiscan/format.hpp"
#include "wiscan/location_map.hpp"

namespace loctk {
namespace {

std::string to_hex(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

TEST(GoldenFormat, TrainingDatabaseV1Bytes) {
  traindb::TrainingDatabase db;
  db.set_site_name("g");
  traindb::TrainingPoint p;
  p.location = "k";
  p.position = {1.0, 2.0};
  traindb::ApStatistics s;
  s.bssid = "aa";
  s.mean_dbm = -60.0;
  s.stddev_db = 2.0;
  s.sample_count = 3;
  s.scan_count = 3;
  s.min_dbm = -62.0;
  s.max_dbm = -58.0;
  s.samples_centi_dbm = {-6000, -6000, -6200};
  p.per_ap.push_back(s);
  db.add_point(std::move(p));

  // Frozen v1 encoding of exactly the database above. Regenerate
  // ONLY alongside a version bump:
  //   printf("%s\n", to_hex(encode_database(db)).c_str());
  // Layout: "LTDB" magic, u16 version=1, u16 flags=1 (has samples),
  // site "g", BSSID table ["aa"], 1 point "k" at (1.0, 2.0) with one
  // AP record (stats as IEEE64 LE doubles, counts as varints, samples
  // as zigzag-varint delta + RLE runs).
  const std::string expected_hex =
      "4c5444420100010001670102616101016b000000000000f03f00000000000000"
      "4001000000000000004ec0000000000000004003030000000000004fc0000000"
      "0000004dc003df5d0100018f0301";
  EXPECT_EQ(to_hex(traindb::encode_database(db)), expected_hex);
  // And the frozen bytes still decode to the same database.
  EXPECT_EQ(traindb::decode_database(traindb::encode_database(db)), db);
}

TEST(GoldenFormat, WiscanTextShape) {
  wiscan::WiScanFile f;
  f.location = "kitchen";
  f.entries = {{0.0, "aa", "net", 1, -54.0},
               {1.5, "bb", "net", 6, -61.25}};
  const std::string expected =
      "# wi-scan v1\n"
      "# location: kitchen\n"
      "# rows: 2\n"
      "time=0 bssid=aa ssid=net channel=1 rssi=-54\n"
      "time=1.5 bssid=bb ssid=net channel=6 rssi=-61.25\n";
  EXPECT_EQ(wiscan::encode_wiscan(f), expected);
  EXPECT_EQ(wiscan::decode_wiscan(expected), f);
}

TEST(GoldenFormat, LocationMapTextShape) {
  wiscan::LocationMap map;
  map.add("kitchen", {42.0, 8.5});
  map.add("Room D22", {10.0, 30.0});
  std::ostringstream os;
  map.write(os);
  const std::string expected =
      "# location-map v1\n"
      "kitchen\t42\t8.5\n"
      "\"Room D22\"\t10\t30\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(GoldenFormat, ArchiveBytes) {
  wiscan::Archive ar;
  ar.add("a", "xy");
  std::ostringstream os;
  ar.write(os);
  // "LAR1", u64 count=1, u64 name-len=1, "a", u64 data-len=2, "xy".
  const std::string expected_hex =
      "4c41523101000000000000000100000000000000610200000000000000"
      "7879";
  EXPECT_EQ(to_hex(os.str()), expected_hex);
}

}  // namespace
}  // namespace loctk

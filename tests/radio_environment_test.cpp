// Unit tests for the site model: wall crossing counts and the built-in
// environments (the paper's 50x40 ft experiment house).

#include "radio/environment.hpp"

#include <set>

#include <gtest/gtest.h>

namespace loctk::radio {
namespace {

TEST(SyntheticBssid, FormatAndUniqueness) {
  EXPECT_EQ(synthetic_bssid(0), "00:17:AB:00:00:00");
  EXPECT_EQ(synthetic_bssid(15), "00:17:AB:00:00:0F");
  EXPECT_EQ(synthetic_bssid(255), "00:17:AB:00:00:FF");
  std::set<std::string> ids;
  for (int i = 0; i < 64; ++i) ids.insert(synthetic_bssid(i));
  EXPECT_EQ(ids.size(), 64u);
}

TEST(Environment, LookupByBssidAndName) {
  const Environment env = make_paper_house();
  ASSERT_EQ(env.access_points().size(), 4u);
  const AccessPoint* a = env.find_by_name("A");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(env.find_by_bssid(a->bssid), a);
  EXPECT_EQ(env.find_by_name("Z"), nullptr);
  EXPECT_EQ(env.find_by_bssid("de:ad:be:ef:00:00"), nullptr);
}

TEST(Environment, WallsCrossedCounts) {
  Environment env(geom::Rect::sized(10.0, 10.0));
  env.add_wall({{{5.0, 0.0}, {5.0, 10.0}}, 3.0, "test"});
  env.add_wall({{{0.0, 5.0}, {10.0, 5.0}}, 4.0, "test"});

  // Horizontal path through the vertical wall only.
  EXPECT_EQ(env.walls_crossed({1.0, 2.0}, {9.0, 2.0}), 1);
  // Diagonal through both.
  EXPECT_EQ(env.walls_crossed({1.0, 1.0}, {9.0, 9.0}), 2);
  // Short path crossing nothing.
  EXPECT_EQ(env.walls_crossed({1.0, 1.0}, {2.0, 2.0}), 0);
}

TEST(Environment, WallAttenuationSumsAndCaps) {
  Environment env(geom::Rect::sized(10.0, 10.0));
  env.add_wall({{{2.0, 0.0}, {2.0, 10.0}}, 6.0, "w1"});
  env.add_wall({{{4.0, 0.0}, {4.0, 10.0}}, 6.0, "w2"});
  env.add_wall({{{6.0, 0.0}, {6.0, 10.0}}, 6.0, "w3"});

  EXPECT_DOUBLE_EQ(env.wall_attenuation_db({0.0, 5.0}, {3.0, 5.0}), 6.0);
  EXPECT_DOUBLE_EQ(env.wall_attenuation_db({0.0, 5.0}, {5.0, 5.0}), 12.0);
  // Three walls would be 18 dB; the cap kicks in.
  EXPECT_DOUBLE_EQ(env.wall_attenuation_db({0.0, 5.0}, {7.0, 5.0}, 15.0),
                   15.0);
  EXPECT_DOUBLE_EQ(env.wall_attenuation_db({0.0, 5.0}, {7.0, 5.0}, 100.0),
                   18.0);
}

TEST(PaperHouse, MatchesPaperGeometry) {
  const Environment env = make_paper_house();
  EXPECT_EQ(env.footprint(), geom::Rect::sized(50.0, 40.0));
  ASSERT_EQ(env.access_points().size(), 4u);
  // APs named A..D near the four corners.
  for (const char* n : {"A", "B", "C", "D"}) {
    ASSERT_NE(env.find_by_name(n), nullptr) << n;
  }
  EXPECT_LT(geom::distance(env.find_by_name("A")->position, {0, 0}), 4.0);
  EXPECT_LT(geom::distance(env.find_by_name("B")->position, {50, 0}), 4.0);
  EXPECT_LT(geom::distance(env.find_by_name("C")->position, {50, 40}), 4.0);
  EXPECT_LT(geom::distance(env.find_by_name("D")->position, {0, 40}), 4.0);
  // Interior walls exist.
  EXPECT_GT(env.walls().size(), 3u);
}

TEST(PaperHouse, ApCountVariantClamps) {
  EXPECT_EQ(make_paper_house_with_aps(1).access_points().size(), 1u);
  EXPECT_EQ(make_paper_house_with_aps(8).access_points().size(), 8u);
  EXPECT_EQ(make_paper_house_with_aps(0).access_points().size(), 1u);
  EXPECT_EQ(make_paper_house_with_aps(99).access_points().size(), 12u);
  // BSSIDs unique across the variant.
  const Environment env = make_paper_house_with_aps(12);
  std::set<std::string> ids;
  for (const AccessPoint& ap : env.access_points()) ids.insert(ap.bssid);
  EXPECT_EQ(ids.size(), 12u);
}

TEST(PaperHouse, ApsInsideFootprint) {
  const Environment env = make_paper_house_with_aps(12);
  for (const AccessPoint& ap : env.access_points()) {
    EXPECT_TRUE(env.footprint().contains(ap.position)) << ap.name;
  }
}

TEST(OfficeFloor, BuildsWithPerimeterAndAps) {
  const Environment env = make_office_floor(6);
  EXPECT_EQ(env.footprint(), geom::Rect::sized(120.0, 80.0));
  EXPECT_EQ(env.access_points().size(), 6u);
  EXPECT_GT(env.walls().size(), 10u);
  for (const AccessPoint& ap : env.access_points()) {
    EXPECT_TRUE(env.footprint().contains(ap.position));
  }
  // A cross-building path crosses several walls.
  EXPECT_GT(env.walls_crossed({5.0, 5.0}, {115.0, 75.0}), 2);
}

}  // namespace
}  // namespace loctk::radio

// Unit tests for the training-database binary codec: varint/zigzag
// primitives, the delta+RLE sample stream, and full round trips.

#include "traindb/codec.hpp"

#include <limits>

#include <gtest/gtest.h>

namespace loctk::traindb {
namespace {

TEST(Varint, RoundTripBoundaries) {
  for (const std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
        0xffffffffull, 0xffffffffffffffffull}) {
    std::string buf;
    put_varint(buf, v);
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(buf, pos), v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, EncodedSizes) {
  auto size_of = [](std::uint64_t v) {
    std::string buf;
    put_varint(buf, v);
    return buf.size();
  };
  EXPECT_EQ(size_of(0), 1u);
  EXPECT_EQ(size_of(127), 1u);
  EXPECT_EQ(size_of(128), 2u);
  EXPECT_EQ(size_of(16383), 2u);
  EXPECT_EQ(size_of(16384), 3u);
  EXPECT_EQ(size_of(~0ull), 10u);
}

TEST(Varint, TruncatedThrows) {
  std::string buf;
  put_varint(buf, 300);  // two bytes
  buf.resize(1);
  std::size_t pos = 0;
  EXPECT_THROW(get_varint(buf, pos), CodecError);
  // Overlong: 11 continuation bytes.
  std::string overlong(11, '\x80');
  pos = 0;
  EXPECT_THROW(get_varint(overlong, pos), CodecError);
}

TEST(Varint, OversizedTenthByteThrows) {
  // Ten bytes is the legal maximum, but the tenth byte sits at shift
  // 63 and may only contribute its low bit. Anything more encodes a
  // value > 2^64-1 and must be rejected, not silently wrapped.
  for (const char tenth : {'\x02', '\x7f', '\x03'}) {
    std::string buf(9, '\x80');
    buf.push_back(tenth);
    std::size_t pos = 0;
    EXPECT_THROW(get_varint(buf, pos), CodecError)
        << "tenth byte " << static_cast<int>(tenth);
  }
  // The canonical max-u64 encoding (tenth byte == 1) still decodes.
  std::string max_enc;
  put_varint(max_enc, ~0ull);
  ASSERT_EQ(max_enc.size(), 10u);
  EXPECT_EQ(static_cast<unsigned char>(max_enc.back()), 1u);
  std::size_t pos = 0;
  EXPECT_EQ(get_varint(max_enc, pos), ~0ull);
}

TEST(ZigZag, MapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
        std::int64_t{1000}, std::int64_t{-1000},
        std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v) << v;
  }
}

TEST(I32Stream, RoundTripVariety) {
  const std::vector<std::vector<std::int32_t>> cases = {
      {},
      {0},
      {-5500},
      {-5500, -5500, -5500, -5500},             // pure run
      {-5500, -5400, -5300, -5200},             // constant delta run
      {-5500, -5600, -5400, -5600, -5500},      // jitter
      {INT32_MIN, 0, INT32_MAX},
  };
  for (const auto& values : cases) {
    std::string buf;
    put_i32_stream(buf, values);
    std::size_t pos = 0;
    EXPECT_EQ(get_i32_stream(buf, pos), values);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(I32Stream, CompressesQuantizedRssiWell) {
  // Quantized whole-dBm readings: long runs of repeated values.
  std::vector<std::int32_t> samples;
  for (int i = 0; i < 900; ++i) {
    samples.push_back(-5500 - (i / 100) * 100);  // steps every 100
  }
  std::string buf;
  put_i32_stream(buf, samples);
  // Raw would be 3600 bytes; delta+RLE squeezes the steps.
  EXPECT_LT(buf.size(), 100u);
  std::size_t pos = 0;
  EXPECT_EQ(get_i32_stream(buf, pos), samples);
}

TEST(I32Stream, CorruptRunLengthThrows) {
  std::string buf;
  put_varint(buf, 5);                  // claim 5 values
  put_varint(buf, zigzag_encode(-1));  // delta
  put_varint(buf, 9);                  // run longer than the claim
  std::size_t pos = 0;
  EXPECT_THROW(get_i32_stream(buf, pos), CodecError);
}

TrainingDatabase sample_db(bool with_samples) {
  TrainingDatabase db;
  db.set_site_name("experiment-house");
  for (int i = 0; i < 6; ++i) {
    TrainingPoint p;
    p.location = "p" + std::to_string(i);
    p.position = {i * 10.0, (i % 2) * 10.0};
    for (int a = 0; a < 4; ++a) {
      ApStatistics s;
      s.bssid = "00:17:AB:00:00:0" + std::to_string(a);
      s.mean_dbm = -45.0 - i * 3.0 - a * 2.0;
      s.stddev_db = 3.25 + a * 0.5;
      s.sample_count = 90;
      s.scan_count = 90;
      s.min_dbm = s.mean_dbm - 9.0;
      s.max_dbm = s.mean_dbm + 8.0;
      if (with_samples) {
        for (int k = 0; k < 90; ++k) {
          s.samples_centi_dbm.push_back(
              static_cast<std::int32_t>(s.mean_dbm * 100.0) +
              ((k * 37) % 700) - 350);
        }
      }
      p.per_ap.push_back(std::move(s));
    }
    db.add_point(std::move(p));
  }
  return db;
}

TEST(DatabaseCodec, RoundTripStatsOnly) {
  const TrainingDatabase db = sample_db(false);
  EXPECT_EQ(decode_database(encode_database(db)), db);
}

TEST(DatabaseCodec, RoundTripWithSamples) {
  const TrainingDatabase db = sample_db(true);
  EXPECT_EQ(decode_database(encode_database(db)), db);
}

TEST(DatabaseCodec, EmptyDatabase) {
  TrainingDatabase db;
  db.set_site_name("");
  EXPECT_EQ(decode_database(encode_database(db)), db);
}

TEST(DatabaseCodec, CorruptionDetected) {
  const std::string good = encode_database(sample_db(false));
  EXPECT_THROW(decode_database("XXXX" + good.substr(4)), CodecError);
  EXPECT_THROW(decode_database(good.substr(0, good.size() / 2)),
               CodecError);
  EXPECT_THROW(decode_database(good + "trailing"), CodecError);
  // Wrong version.
  std::string bad_version = good;
  bad_version[4] = 99;
  EXPECT_THROW(decode_database(bad_version), CodecError);
}

TEST(DatabaseCodec, FileRoundTrip) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "loctk_ltdb";
  fs::create_directories(dir);
  const TrainingDatabase db = sample_db(true);
  write_database(dir / "house.ltdb", db);
  EXPECT_EQ(read_database(dir / "house.ltdb"), db);
  EXPECT_THROW(read_database(dir / "missing.ltdb"), CodecError);
  fs::remove_all(dir);
}

TEST(DatabaseCodec, StatsOnlyIsCompact) {
  // The paper's claim: the training database is smaller than the raw
  // capture. Stats-only for 6 points x 4 APs must be well under 2 KB.
  const std::string bytes = encode_database(sample_db(false));
  EXPECT_LT(bytes.size(), 2048u);
}

}  // namespace
}  // namespace loctk::traindb

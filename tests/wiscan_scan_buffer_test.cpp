// Unit tests for the zero-copy ingest substrate: whole-file buffers,
// string_view number parsing, line scanning, and the malformed-input
// diagnostics of the buffer-oriented parsers.

#include "wiscan/scan_buffer.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "wiscan/archive.hpp"
#include "wiscan/format.hpp"

namespace loctk::wiscan {
namespace {

namespace fs = std::filesystem;

// Runs `fn` and returns the thrown exception's message ("" when
// nothing was thrown) so tests can pin diagnostics.
template <typename Ex, typename Fn>
std::string message_of(Fn&& fn) {
  try {
    fn();
  } catch (const Ex& e) {
    return e.what();
  }
  return {};
}

class ScanBufferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest may run the cases concurrently.
    dir_ = fs::temp_directory_path() /
           (std::string("loctk_scan_buffer_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path write_file(const std::string& name, const std::string& content) {
    const fs::path p = dir_ / name;
    std::ofstream(p, std::ios::binary) << content;
    return p;
  }

  fs::path dir_;
};

TEST_F(ScanBufferTest, ReadFileBytesRoundTrips) {
  const std::string content = std::string("hello\0world", 11) +
                              "\nbinary \xff bytes";
  const fs::path p = write_file("blob.bin", content);
  EXPECT_EQ(read_file_bytes(p), content);
}

TEST_F(ScanBufferTest, ReadFileBytesMissingFileThrows) {
  EXPECT_THROW(read_file_bytes(dir_ / "missing.bin"), BufferError);
}

TEST_F(ScanBufferTest, FileBufferViewsWholeFile) {
  const std::string content = "line one\nline two\n";
  const fs::path p = write_file("scan.wiscan", content);
  const FileBuffer buffer(p);
  EXPECT_EQ(buffer.view(), content);
  EXPECT_EQ(buffer.size(), content.size());
}

TEST_F(ScanBufferTest, FileBufferEmptyFileIsEmptyView) {
  const fs::path p = write_file("empty.wiscan", "");
  const FileBuffer buffer(p);
  EXPECT_TRUE(buffer.view().empty());
  EXPECT_EQ(buffer.size(), 0u);
}

TEST_F(ScanBufferTest, FileBufferMissingFileThrows) {
  EXPECT_THROW(FileBuffer(dir_ / "missing.wiscan"), BufferError);
}

TEST(ParseNumber, AcceptsUsualForms) {
  EXPECT_EQ(parse_number("42"), 42.0);
  EXPECT_EQ(parse_number("-61.5"), -61.5);
  EXPECT_EQ(parse_number("+3"), 3.0);  // stod parity
  EXPECT_EQ(parse_number("1e3"), 1000.0);
  EXPECT_EQ(parse_number(".5"), 0.5);
}

TEST(ParseNumber, RejectsMalformedTokens) {
  EXPECT_EQ(parse_number(""), std::nullopt);
  EXPECT_EQ(parse_number("abc"), std::nullopt);
  EXPECT_EQ(parse_number("1.5x"), std::nullopt);  // trailing garbage
  EXPECT_EQ(parse_number("+-5"), std::nullopt);
  EXPECT_EQ(parse_number("--5"), std::nullopt);
  EXPECT_EQ(parse_number(" 1"), std::nullopt);  // no leading space
  EXPECT_EQ(parse_number("12,5"), std::nullopt);  // never locale-dependent
}

TEST(LineScannerTest, SplitsStripsAndCounts) {
  LineScanner lines("first\r\nsecond\nlast without newline");
  auto l = lines.next();
  ASSERT_TRUE(l);
  EXPECT_EQ(*l, "first");  // '\r' stripped
  EXPECT_EQ(lines.line_number(), 1u);
  l = lines.next();
  ASSERT_TRUE(l);
  EXPECT_EQ(*l, "second");
  l = lines.next();
  ASSERT_TRUE(l);
  EXPECT_EQ(*l, "last without newline");
  EXPECT_EQ(lines.line_number(), 3u);
  EXPECT_FALSE(lines.next());
}

TEST(LineScannerTest, EmptyInputYieldsNothing) {
  LineScanner lines("");
  EXPECT_FALSE(lines.next());
}

// --- wi-scan malformed-row diagnostics ------------------------------

TEST(WiScanBuffer, TruncatedRowReportsMissingRssi) {
  const std::string msg = message_of<FormatError>(
      [] { parse_wiscan_buffer("bssid=aa rssi=-50\nbssid=bb\n"); });
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("missing rssi"), std::string::npos) << msg;
}

TEST(WiScanBuffer, RowWithoutBssidReportsIt) {
  const std::string msg = message_of<FormatError>(
      [] { parse_wiscan_buffer("rssi=-50\n"); });
  EXPECT_NE(msg.find("missing bssid"), std::string::npos) << msg;
}

TEST(WiScanBuffer, NonNumericRssiReportsLineAndToken) {
  const std::string msg = message_of<FormatError>([] {
    parse_wiscan_buffer("# header\nbssid=aa rssi=strong\n");
  });
  EXPECT_NE(msg.find("not a number"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'strong'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(WiScanBuffer, NonFiniteRssiIsRejectedWithLineDiagnostic) {
  // from_chars/strtod happily accept "inf" and "nan"; a non-finite
  // dBm would poison every downstream mean, so the row layer rejects
  // it like any other malformed token.
  const std::string msg = message_of<FormatError>([] {
    parse_wiscan_buffer("bssid=aa rssi=-50\nbssid=bb rssi=nan\n");
  });
  EXPECT_NE(msg.find("not finite"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_THROW(parse_wiscan_buffer("bssid=aa rssi=inf\n"), FormatError);
  EXPECT_THROW(parse_wiscan_buffer("bssid=aa rssi=-inf\n"), FormatError);
  EXPECT_THROW(parse_wiscan_buffer("bssid=aa rssi=1e999\n"), FormatError);
}

TEST(WiScanBuffer, NonNumericTimeAndChannelThrow) {
  EXPECT_THROW(parse_wiscan_buffer("time=noon bssid=aa rssi=-50\n"),
               FormatError);
  EXPECT_THROW(parse_wiscan_buffer("bssid=aa rssi=-50 channel=six\n"),
               FormatError);
}

TEST(WiScanBuffer, BareTokenReportsExpectedKeyValue) {
  const std::string msg = message_of<FormatError>(
      [] { parse_wiscan_buffer("bssid=aa rssi=-50 garbage\n"); });
  EXPECT_NE(msg.find("expected key=value"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'garbage'"), std::string::npos) << msg;
}

TEST(WiScanBuffer, CrlfAndNoTrailingNewlineParse) {
  const WiScanFile f = parse_wiscan_buffer(
      "# location: lab\r\nbssid=aa rssi=-50\r\nbssid=bb rssi=-60");
  EXPECT_EQ(f.location, "lab");
  ASSERT_EQ(f.entries.size(), 2u);
  EXPECT_EQ(f.entries[0].bssid, "aa");
  EXPECT_EQ(f.entries[1].rssi_dbm, -60.0);
}

TEST(WiScanBuffer, MatchesIstreamAdapter) {
  const std::string text =
      "# wi-scan v1\n# location: kitchen\n"
      "time=0.5 bssid=aa ssid=net channel=6 rssi=-54\n"
      "bssid=bb rssi=-61\n";
  EXPECT_EQ(parse_wiscan_buffer(text), decode_wiscan(text));
}

// --- location-map malformed-row diagnostics -------------------------

TEST(LocationMapBuffer, ParsesQuotedNamesAndComments) {
  const LocationMap map = parse_location_map_buffer(
      "# location-map v1\r\n"
      "kitchen 42.0 8.5\r\n"
      "\"Room D22\" 10.0 30.0\n");
  ASSERT_EQ(map.size(), 2u);
  EXPECT_EQ(map.locations()[1].name, "Room D22");
  EXPECT_EQ(map.locations()[1].position.x, 10.0);
}

TEST(LocationMapBuffer, TruncatedRowReportsMissingCoordinates) {
  const std::string msg = message_of<LocationMapError>(
      [] { parse_location_map_buffer("kitchen 42.0\n"); });
  EXPECT_NE(msg.find("expected two coordinates"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
}

TEST(LocationMapBuffer, NonNumericCoordinateThrows) {
  EXPECT_THROW(parse_location_map_buffer("kitchen north 8.5\n"),
               LocationMapError);
}

TEST(LocationMapBuffer, TrailingGarbageIsRejectedNotSilentlyDropped) {
  const std::string msg = message_of<LocationMapError>([] {
    parse_location_map_buffer("hall 1.0 2.0\nkitchen 42.0 8.5 9.9\n");
  });
  EXPECT_NE(msg.find("trailing garbage"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'9.9'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(LocationMapBuffer, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_location_map_buffer("\"Room D22 10.0 30.0\n"),
               LocationMapError);
}

// --- archive byte-level parsing -------------------------------------

TEST(ArchiveBytes, ReadBytesMatchesStreamRead) {
  Archive ar;
  ar.add("a.wiscan", "bssid=aa rssi=-50\n");
  ar.add("sub/b.wiscan", std::string("\x00\x01\x02", 3));
  std::ostringstream os;
  ar.write(os);
  const Archive parsed = Archive::read_bytes(os.str());
  EXPECT_EQ(parsed.entries(), ar.entries());
}

TEST(ArchiveBytes, CorruptContainersThrow) {
  EXPECT_THROW(Archive::read_bytes("NOPE"), ArchiveError);
  EXPECT_THROW(Archive::read_bytes(""), ArchiveError);
  Archive ar;
  ar.add("a.wiscan", "bssid=aa rssi=-50\n");
  std::ostringstream os;
  ar.write(os);
  const std::string bytes = os.str();
  // Truncation anywhere inside the entry table must throw, never read
  // out of bounds.
  for (const std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                                std::size_t{5}}) {
    EXPECT_THROW(Archive::read_bytes(bytes.substr(0, cut)), ArchiveError);
  }
}

}  // namespace
}  // namespace loctk::wiscan

// Unit tests for mobility paths.

#include "core/path.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace loctk::core {
namespace {

TEST(WaypointPath, EmptyAndSingle) {
  const WaypointPath empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.length(), 0.0);
  EXPECT_EQ(empty.position_at(5.0), geom::Vec2());

  const WaypointPath still({{3.0, 4.0}});
  EXPECT_DOUBLE_EQ(still.length(), 0.0);
  EXPECT_EQ(still.position_at(0.0), geom::Vec2(3.0, 4.0));
  EXPECT_EQ(still.position_at(100.0), geom::Vec2(3.0, 4.0));
  EXPECT_EQ(still.heading_at(0.0), geom::Vec2());
}

TEST(WaypointPath, LengthAndInterpolation) {
  const WaypointPath path({{0, 0}, {10, 0}, {10, 5}});
  EXPECT_DOUBLE_EQ(path.length(), 15.0);
  EXPECT_EQ(path.position_at(0.0), geom::Vec2(0, 0));
  EXPECT_EQ(path.position_at(5.0), geom::Vec2(5, 0));
  EXPECT_EQ(path.position_at(10.0), geom::Vec2(10, 0));
  EXPECT_EQ(path.position_at(12.5), geom::Vec2(10, 2.5));
  EXPECT_EQ(path.position_at(15.0), geom::Vec2(10, 5));
  // Clamping beyond the ends.
  EXPECT_EQ(path.position_at(-3.0), geom::Vec2(0, 0));
  EXPECT_EQ(path.position_at(99.0), geom::Vec2(10, 5));
}

TEST(WaypointPath, HeadingFollowsSegments) {
  const WaypointPath path({{0, 0}, {10, 0}, {10, 5}});
  EXPECT_TRUE(geom::almost_equal(path.heading_at(3.0), {1, 0}));
  EXPECT_TRUE(geom::almost_equal(path.heading_at(12.0), {0, 1}));
  // At (and beyond) the end: last segment's direction.
  EXPECT_TRUE(geom::almost_equal(path.heading_at(15.0), {0, 1}));
  EXPECT_TRUE(geom::almost_equal(path.heading_at(100.0), {0, 1}));
}

TEST(WaypointPath, TimeConvenience) {
  const WaypointPath path({{0, 0}, {10, 0}});
  EXPECT_EQ(path.position_at_time(2.0, 2.0), geom::Vec2(4, 0));
  EXPECT_EQ(path.position_at_time(1.0), geom::Vec2(2, 0));  // 2 ft/s
}

TEST(WaypointPath, DuplicateWaypointsAreSafe) {
  const WaypointPath path({{0, 0}, {0, 0}, {4, 0}});
  EXPECT_DOUBLE_EQ(path.length(), 4.0);
  EXPECT_EQ(path.position_at(2.0), geom::Vec2(2, 0));
}

TEST(PaperHouseTour, ClosedLoopInsideHouse) {
  const WaypointPath tour = paper_house_tour();
  EXPECT_GT(tour.length(), 100.0);
  EXPECT_EQ(tour.waypoints().front(), tour.waypoints().back());
  const geom::Rect house = geom::Rect::sized(50.0, 40.0);
  for (double d = 0.0; d <= tour.length(); d += 2.5) {
    EXPECT_TRUE(house.contains(tour.position_at(d))) << d;
  }
}

TEST(RandomWaypoint, RespectsAreaAndLegConstraints) {
  stats::Rng rng(2026);
  const geom::Rect area = geom::Rect::sized(50.0, 40.0);
  const WaypointPath path = random_waypoint_path(area, 12, rng, 3.0, 8.0);
  ASSERT_EQ(path.waypoints().size(), 12u);
  const geom::Rect inner = area.inflated(-3.0 + 1e-9);
  for (std::size_t i = 0; i < path.waypoints().size(); ++i) {
    EXPECT_TRUE(inner.contains(path.waypoints()[i])) << i;
    if (i > 0) {
      EXPECT_GE(geom::distance(path.waypoints()[i - 1],
                               path.waypoints()[i]),
                8.0 - 1e-9);
    }
  }
}

TEST(RandomWaypoint, DeterministicPerRngState) {
  stats::Rng a(7), b(7);
  const geom::Rect area = geom::Rect::sized(30.0, 30.0);
  const WaypointPath pa = random_waypoint_path(area, 6, a);
  const WaypointPath pb = random_waypoint_path(area, 6, b);
  EXPECT_EQ(pa.waypoints(), pb.waypoints());
}

}  // namespace
}  // namespace loctk::core

// Fault-injection hardening tests: the structured error taxonomy, the
// FaultInjector hooks in the file-buffer layer, per-file quarantine in
// the batch ingest paths, degraded-mode localization, and randomized
// corruption fuzzing through the try_* entry points. Everything here
// runs under the ASan/UBSan CI job — the contract is "corrupt input
// yields a typed loctk::Error, never UB or a crash".

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/error.hpp"
#include "base/fault_injector.hpp"
#include "concurrency/thread_pool.hpp"
#include "core/geometric.hpp"
#include "core/location_service.hpp"
#include "core/probabilistic.hpp"
#include "radio/environment.hpp"
#include "traindb/codec.hpp"
#include "traindb/database.hpp"
#include "traindb/generator.hpp"
#include "wiscan/archive.hpp"
#include "wiscan/collection.hpp"
#include "wiscan/format.hpp"
#include "wiscan/location_map.hpp"
#include "wiscan/scan_buffer.hpp"

#include "test_fixtures.hpp"

namespace loctk {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Error / Result taxonomy.

TEST(ErrorTaxonomy, CodeNamesAreStable) {
  EXPECT_EQ(error_code_name(ErrorCode::kIo), "io");
  EXPECT_EQ(error_code_name(ErrorCode::kParse), "parse");
  EXPECT_EQ(error_code_name(ErrorCode::kCorrupt), "corrupt");
  EXPECT_EQ(error_code_name(ErrorCode::kDegenerate), "degenerate");
  EXPECT_EQ(error_code_name(ErrorCode::kInternal), "internal");
}

TEST(ErrorTaxonomy, ContextChainsInnermostFirst) {
  Error e(ErrorCode::kCorrupt, "codec: bad magic");
  e.with_context("decoding 'site.ltdb'").with_context("loading site");
  ASSERT_EQ(e.context().size(), 2u);
  EXPECT_EQ(e.context()[0], "decoding 'site.ltdb'");
  EXPECT_EQ(e.context()[1], "loading site");
  EXPECT_EQ(e.to_string(),
            "[corrupt] codec: bad magic (while decoding 'site.ltdb'; "
            "while loading site)");
}

TEST(ErrorTaxonomy, ToStringWithoutContextIsBare) {
  const Error e(ErrorCode::kIo, "open failed");
  EXPECT_EQ(e.to_string(), "[io] open failed");
}

TEST(ErrorTaxonomy, ResultCarriesValueOrError) {
  Result<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  EXPECT_EQ(good.value_or(-1), 7);

  Result<int> bad = Error(ErrorCode::kParse, "nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), ErrorCode::kParse);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ErrorTaxonomy, ResultWithContextOnlyTouchesErrors) {
  Result<int> good = Result<int>(1);
  good = std::move(good).with_context("ignored");
  ASSERT_TRUE(good.ok());

  Result<int> bad =
      Result<int>(Error(ErrorCode::kIo, "gone")).with_context("reading x");
  ASSERT_FALSE(bad.ok());
  ASSERT_EQ(bad.error().context().size(), 1u);
  EXPECT_EQ(bad.error().context()[0], "reading x");
}

TEST(ErrorTaxonomy, VoidResult) {
  Result<void> ok;
  EXPECT_TRUE(ok.ok());
  Result<void> bad = Error(ErrorCode::kInternal, "bug");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), ErrorCode::kInternal);
}

// ---------------------------------------------------------------------
// FaultInjector primitives.

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           (std::string("loctk_fault_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = dir_ / "payload.bin";
    payload_.assign(512, '\0');
    for (std::size_t i = 0; i < payload_.size(); ++i) {
      payload_[i] = static_cast<char>('a' + i % 26);
    }
    std::ofstream(path_, std::ios::binary) << payload_;
  }
  void TearDown() override {
    FaultInjector::instance().disarm();
    fs::remove_all(dir_);
  }

  fs::path dir_;
  fs::path path_;
  std::string payload_;
};

TEST_F(FaultInjectorTest, DisarmedIsTransparent) {
  ASSERT_FALSE(FaultInjector::instance().armed());
  EXPECT_EQ(wiscan::read_file_bytes(path_), payload_);
  EXPECT_FALSE(FaultInjector::instance().should_fail_io());
  std::string bytes = payload_;
  EXPECT_FALSE(FaultInjector::instance().corrupt(bytes));
  EXPECT_EQ(bytes, payload_);
}

TEST_F(FaultInjectorTest, CertainIoFailureVetoesEveryRead) {
  FaultInjectorConfig cfg;
  cfg.io_failure_probability = 1.0;
  ScopedFaultInjection scoped(cfg);
  EXPECT_THROW(wiscan::read_file_bytes(path_), wiscan::BufferError);
  EXPECT_THROW(wiscan::FileBuffer buf(path_), wiscan::BufferError);

  const Result<std::string> r = wiscan::try_read_file_bytes(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kIo);
  EXPECT_GE(FaultInjector::instance().stats().vetoed_opens, 3u);
}

TEST_F(FaultInjectorTest, CertainTruncationShortensTheBuffer) {
  FaultInjectorConfig cfg;
  cfg.truncate_probability = 1.0;
  ScopedFaultInjection scoped(cfg);
  const std::string bytes = wiscan::read_file_bytes(path_);
  EXPECT_LT(bytes.size(), payload_.size());
  EXPECT_EQ(bytes, payload_.substr(0, bytes.size()));
  EXPECT_GE(FaultInjector::instance().stats().truncations, 1u);
}

TEST_F(FaultInjectorTest, CertainBitflipsMutateWithoutResizing) {
  FaultInjectorConfig cfg;
  cfg.bitflip_probability = 1.0;
  ScopedFaultInjection scoped(cfg);
  const std::string bytes = wiscan::read_file_bytes(path_);
  ASSERT_EQ(bytes.size(), payload_.size());
  EXPECT_NE(bytes, payload_);
  EXPECT_GE(FaultInjector::instance().stats().bitflips, 1u);
}

TEST_F(FaultInjectorTest, SameSeedIsDeterministic) {
  FaultInjectorConfig cfg;
  cfg.truncate_probability = 0.5;
  cfg.bitflip_probability = 0.5;
  cfg.seed = 42;

  std::vector<std::string> first, second;
  for (std::vector<std::string>* out : {&first, &second}) {
    ScopedFaultInjection scoped(cfg);
    for (int i = 0; i < 16; ++i) {
      out->push_back(wiscan::read_file_bytes(path_));
    }
  }
  EXPECT_EQ(first, second);
}

TEST_F(FaultInjectorTest, ScopeExitDisarms) {
  {
    FaultInjectorConfig cfg;
    cfg.io_failure_probability = 1.0;
    ScopedFaultInjection scoped(cfg);
    EXPECT_TRUE(FaultInjector::instance().armed());
  }
  EXPECT_FALSE(FaultInjector::instance().armed());
  EXPECT_EQ(wiscan::read_file_bytes(path_), payload_);
}

// ---------------------------------------------------------------------
// Per-file quarantine in the batch ingest paths.

class QuarantineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           (std::string("loctk_quarantine_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_ / "corpus" / "wing");
    build_corpus(dir_ / "corpus");

    std::string map_text = "# location-map v1\n";
    for (int i = 0; i < kFiles; ++i) {
      map_text += location(i) + " " + std::to_string(4 * i) + ".0 " +
                  std::to_string(2 * i) + ".5\n";
    }
    std::ofstream(dir_ / "site.locmap") << map_text;
  }
  void TearDown() override {
    FaultInjector::instance().disarm();
    fs::remove_all(dir_);
  }

  static constexpr int kFiles = 12;

  static std::string location(int i) {
    return "room-" + std::to_string(i / 10) + std::to_string(i % 10);
  }

  // Deterministic corpus: every run of every test sees identical
  // bytes, so "quarantined parallel run == clean serial run" is an
  // exact byte comparison, not a statistical one.
  void build_corpus(const fs::path& root) const {
    for (int i = 0; i < kFiles; ++i) {
      std::string text = "# wi-scan v1\n# location: " + location(i) + "\n";
      for (int t = 0; t < 6; ++t) {
        for (int a = 0; a < 4; ++a) {
          text += "time=" + std::to_string(t) + ".0 bssid=ap:0" +
                  std::to_string(a) + " ssid=net channel=6 rssi=-" +
                  std::to_string(40 + 3 * a + (t + i) % 5) + ".0\n";
        }
      }
      const fs::path rel = i % 2 == 0
                               ? fs::path(location(i) + ".wiscan")
                               : fs::path("wing") / (location(i) + ".wiscan");
      std::ofstream(root / rel) << text;
    }
  }

  // The corpus path of file `i` (mirrors build_corpus's layout).
  fs::path file_path(int i) const {
    const fs::path rel = i % 2 == 0
                             ? fs::path(location(i) + ".wiscan")
                             : fs::path("wing") / (location(i) + ".wiscan");
    return dir_ / "corpus" / rel;
  }

  void corrupt_file(int i) const {
    std::ofstream(file_path(i))
        << "# wi-scan v1\n# location: " + location(i) +
               "\ntime=0.0 bssid=ap:00 rssi=not-a-number\n";
  }

  fs::path dir_;
};

TEST_F(QuarantineTest, CorruptFileIsQuarantinedRestLoads) {
  corrupt_file(5);
  wiscan::LoadReport report;
  const wiscan::Collection got =
      wiscan::load_collection(dir_ / "corpus", nullptr, &report);

  EXPECT_EQ(got.files.size(), kFiles - 1u);
  EXPECT_EQ(report.files_loaded, kFiles - 1u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].error.code(), ErrorCode::kParse);
  EXPECT_NE(report.quarantined[0].source.find(location(5)),
            std::string::npos);
  // The survivors are exactly the clean files, in the usual order.
  for (const wiscan::WiScanFile& f : got.files) {
    EXPECT_NE(f.location, location(5));
  }
}

TEST_F(QuarantineTest, WithoutReportCorruptFileStillThrows) {
  corrupt_file(5);
  EXPECT_THROW(wiscan::load_collection(dir_ / "corpus"),
               wiscan::FormatError);
}

TEST_F(QuarantineTest, UnreadableFileQuarantinesAsIo) {
  FaultInjectorConfig cfg;
  cfg.io_failure_probability = 0.4;
  cfg.seed = 7;
  ScopedFaultInjection scoped(cfg);

  concurrency::ThreadPool pool(4);
  wiscan::LoadReport report;
  const wiscan::Collection got =
      wiscan::load_collection(dir_ / "corpus", &pool, &report);

  EXPECT_EQ(report.files_loaded + report.quarantined.size(),
            static_cast<std::size_t>(kFiles));
  EXPECT_EQ(got.files.size(), report.files_loaded);
  for (const wiscan::QuarantinedFile& q : report.quarantined) {
    EXPECT_EQ(q.error.code(), ErrorCode::kIo) << q.error.to_string();
  }
}

TEST_F(QuarantineTest, ArchiveEntryQuarantine) {
  auto archive = wiscan::Archive::pack_directory(dir_ / "corpus");
  archive.add("broken.wiscan", "# wi-scan v1\nrssi=\n");

  wiscan::LoadReport report;
  const wiscan::Collection got =
      wiscan::load_collection(archive, nullptr, &report);
  EXPECT_EQ(got.files.size(), static_cast<std::size_t>(kFiles));
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].error.code(), ErrorCode::kParse);
  EXPECT_NE(report.quarantined[0].source.find("broken.wiscan"),
            std::string::npos);
}

// The acceptance-criterion test: one corrupt file in a multi-file
// batch is quarantined while the surviving files produce a database
// byte-identical to a clean serial run over the corpus without that
// file — regardless of worker count or completion order.
TEST_F(QuarantineTest, QuarantinedBatchMatchesCleanSerialRunByteForByte) {
  corrupt_file(7);

  // Clean reference: the same corpus minus the corrupt file, serial.
  const fs::path clean = dir_ / "clean";
  fs::create_directories(clean / "wing");
  build_corpus(clean);
  fs::remove(clean / "wing" / (location(7) + ".wiscan"));

  const traindb::TrainingDatabase reference =
      traindb::generate_database_from_path(clean, dir_ / "site.locmap");

  traindb::GeneratorConfig cfg;
  cfg.quarantine_corrupt_files = true;
  for (const std::size_t workers : {std::size_t{0}, std::size_t{4}}) {
    concurrency::ThreadPool pool(workers == 0 ? 1 : workers);
    traindb::GeneratorReport report;
    const traindb::TrainingDatabase got =
        traindb::generate_database_from_path(
            dir_ / "corpus", dir_ / "site.locmap", cfg, &report,
            workers == 0 ? nullptr : &pool);

    ASSERT_EQ(report.quarantined.size(), 1u) << "workers=" << workers;
    EXPECT_EQ(report.quarantined[0].error.code(), ErrorCode::kParse);
    EXPECT_NE(report.quarantined[0].source.find(location(7)),
              std::string::npos);
    EXPECT_EQ(traindb::encode_database(got),
              traindb::encode_database(reference))
        << "workers=" << workers;
  }
}

TEST_F(QuarantineTest, TryGenerateMapsWholeBatchFailures) {
  // Nonexistent source: neither directory nor archive.
  const Result<traindb::TrainingDatabase> missing =
      traindb::try_generate_database_from_path(dir_ / "nope",
                                               dir_ / "site.locmap");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code(), ErrorCode::kParse);

  // A map that matches no surveyed location: typed degenerate, not an
  // empty database the caller has to second-guess.
  std::ofstream(dir_ / "phantom.locmap")
      << "# location-map v1\nphantom 1.0 2.0\n";
  const Result<traindb::TrainingDatabase> empty =
      traindb::try_generate_database_from_path(dir_ / "corpus",
                                               dir_ / "phantom.locmap");
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.error().code(), ErrorCode::kDegenerate);

  // The happy path still comes back as a value.
  const Result<traindb::TrainingDatabase> good =
      traindb::try_generate_database_from_path(dir_ / "corpus",
                                               dir_ / "site.locmap");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().size(), static_cast<std::size_t>(kFiles));
}

// ---------------------------------------------------------------------
// Randomized corruption fuzzing through the try_* entry points. Runs
// under the ASan/UBSan CI job: every outcome must be a value or a
// typed Error — never a crash, never UB.

std::string golden_db_bytes() {
  traindb::TrainingDatabase db;
  db.set_site_name("fuzz");
  for (int i = 0; i < 4; ++i) {
    traindb::TrainingPoint p;
    p.location = "p" + std::to_string(i);
    p.position = {i * 10.0, 5.0};
    traindb::ApStatistics s;
    s.bssid = "aa:bb:cc:dd:ee:0" + std::to_string(i);
    s.mean_dbm = -50.0 - i;
    s.stddev_db = 3.0;
    s.sample_count = 90;
    s.scan_count = 90;
    s.min_dbm = -60.0;
    s.max_dbm = -45.0;
    for (int k = 0; k < 50; ++k) {
      s.samples_centi_dbm.push_back(-5000 - (k % 9) * 50);
    }
    p.per_ap.push_back(std::move(s));
    db.add_point(std::move(p));
  }
  return traindb::encode_database(db);
}

std::string golden_wiscan_text() {
  std::string text = "# wi-scan v1\n# location: kitchen\n";
  for (int t = 0; t < 8; ++t) {
    for (int a = 0; a < 5; ++a) {
      text += "time=" + std::to_string(t) + ".25 bssid=0a:0b:0c:0d:0e:0" +
              std::to_string(a) + " ssid=net channel=" +
              std::to_string(1 + a) + " rssi=-" +
              std::to_string(45 + 4 * a + t % 3) + ".5\n";
    }
  }
  return text;
}

// One random structural mutation: overwrite, truncate, extend, or
// excise a slice. Biased toward overwrites, like real bit rot.
void mutate(std::string& bytes, std::mt19937_64& rng) {
  if (bytes.empty()) {
    bytes.push_back(static_cast<char>(rng() & 0xff));
    return;
  }
  switch (rng() % 6) {
    case 0:  // truncate to a random prefix
      bytes.resize(rng() % bytes.size());
      break;
    case 1:  // append random garbage
      for (int i = 0; i < 9; ++i) {
        bytes.push_back(static_cast<char>(rng() & 0xff));
      }
      break;
    case 2: {  // excise an interior slice
      const std::size_t from = rng() % bytes.size();
      const std::size_t len = 1 + rng() % 16;
      bytes.erase(from, len);
      break;
    }
    default: {  // overwrite 1..4 random bytes
      const int n = 1 + static_cast<int>(rng() % 4);
      for (int i = 0; i < n; ++i) {
        bytes[rng() % bytes.size()] = static_cast<char>(rng() & 0xff);
      }
      break;
    }
  }
}

TEST(FuzzStructuredErrors, MutatedTraindbBytesAlwaysTyped) {
  const std::string good = golden_db_bytes();
  std::mt19937_64 rng(20260806u);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 1200; ++trial) {
    std::string bytes = good;
    const int mutations = 1 + static_cast<int>(rng() % 3);
    for (int m = 0; m < mutations; ++m) mutate(bytes, rng);

    const Result<traindb::TrainingDatabase> r =
        traindb::try_decode_database(bytes);
    if (r.ok()) {
      // A lucky mutation may still decode; the result must be sane.
      EXPECT_LE(r.value().size(), 64u);
      ++parsed;
    } else {
      // Structural damage is kCorrupt — never kInternal (that would
      // mean an exception class the adapter doesn't know escaped).
      EXPECT_EQ(r.error().code(), ErrorCode::kCorrupt)
          << r.error().to_string();
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 1200);
  EXPECT_GT(rejected, 300);  // corruption is usually detected
}

TEST(FuzzStructuredErrors, MutatedWiscanTextAlwaysTyped) {
  const std::string good = golden_wiscan_text();
  std::mt19937_64 rng(0xfeedbeefu);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    std::string text = good;
    const int mutations = 1 + static_cast<int>(rng() % 3);
    for (int m = 0; m < mutations; ++m) mutate(text, rng);

    const Result<wiscan::WiScanFile> r =
        wiscan::try_parse_wiscan_buffer(text, "fallback");
    if (r.ok()) {
      EXPECT_LE(r.value().entries.size(), 80u);
      ++parsed;
    } else {
      EXPECT_EQ(r.error().code(), ErrorCode::kParse)
          << r.error().to_string();
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 1000);
}

TEST(FuzzStructuredErrors, MutatedLocationMapAlwaysTyped) {
  const std::string good =
      "# location-map v1\nkitchen 1.0 2.0\nhall 3.5 4.5\nlab 9.0 9.0\n";
  std::mt19937_64 rng(77u);
  for (int trial = 0; trial < 500; ++trial) {
    std::string text = good;
    mutate(text, rng);
    const Result<wiscan::LocationMap> r =
        wiscan::try_parse_location_map_buffer(text);
    if (!r.ok()) {
      EXPECT_EQ(r.error().code(), ErrorCode::kParse)
          << r.error().to_string();
    }
  }
}

TEST(FuzzStructuredErrors, InjectedRotThroughFullReadPath) {
  const fs::path dir =
      fs::temp_directory_path() / "loctk_fault_InjectedRotFullRead";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path path = dir / "site.ltdb";
  std::ofstream(path, std::ios::binary) << golden_db_bytes();

  FaultInjectorConfig cfg;
  cfg.io_failure_probability = 0.1;
  cfg.truncate_probability = 0.4;
  cfg.bitflip_probability = 0.4;
  cfg.seed = 0xc0ffee;
  {
    ScopedFaultInjection scoped(cfg);
    int io = 0, corrupt = 0, ok = 0;
    for (int trial = 0; trial < 300; ++trial) {
      const Result<traindb::TrainingDatabase> r =
          traindb::try_read_database(path);
      if (r.ok()) {
        ++ok;
      } else if (r.error().code() == ErrorCode::kIo) {
        ++io;
      } else {
        EXPECT_EQ(r.error().code(), ErrorCode::kCorrupt)
            << r.error().to_string();
        ++corrupt;
      }
    }
    EXPECT_EQ(io + corrupt + ok, 300);
    EXPECT_GT(io, 0);
    EXPECT_GT(corrupt, 0);
    EXPECT_GT(ok, 0);  // some reads survive untouched
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Degraded-mode localization: degenerate inputs come back as typed
// kDegenerate errors from every locator, and the live service coasts
// with a reason instead of crashing or lying.

using testing::fixture_ap_positions;
using testing::fixture_bssids;
using testing::fixture_observation;
using testing::make_fixture_db;

radio::Environment fixture_env() {
  radio::Environment env(geom::Rect::sized(40.0, 40.0));
  for (std::size_t i = 0; i < fixture_bssids().size(); ++i) {
    radio::AccessPoint ap;
    ap.bssid = fixture_bssids()[i];
    ap.name = std::string(1, static_cast<char>('A' + i));
    ap.position = fixture_ap_positions()[i];
    env.add_access_point(ap);
  }
  return env;
}

radio::ScanRecord scan_of(
    const std::vector<std::pair<std::string, double>>& samples) {
  radio::ScanRecord scan;
  scan.timestamp_s = 0.0;
  for (const auto& [bssid, rssi] : samples) {
    scan.samples.push_back({bssid, rssi, 1});
  }
  return scan;
}

TEST(DegradedLocate, EmptyObservationIsTypedDegenerate) {
  const auto db = make_fixture_db();
  const core::ProbabilisticLocator locator(db);
  const Result<core::LocationEstimate> r =
      locator.try_locate(core::Observation{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kDegenerate);
  EXPECT_NE(r.error().to_string().find("empty observation"),
            std::string::npos);
}

TEST(DegradedLocate, NonFiniteObservationIsTypedDegenerate) {
  const auto db = make_fixture_db();
  const core::ProbabilisticLocator locator(db);
  const core::Observation obs = core::Observation::from_scans({scan_of(
      {{fixture_bssids()[0], std::numeric_limits<double>::quiet_NaN()},
       {fixture_bssids()[1], -50.0}})});
  EXPECT_FALSE(obs.is_finite());
  const Result<core::LocationEstimate> r = locator.try_locate(obs);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kDegenerate);
  EXPECT_NE(r.error().to_string().find("non-finite"), std::string::npos);
}

TEST(DegradedLocate, AllUnknownBssidsIsTypedDegenerate) {
  const auto db = make_fixture_db();
  const core::ProbabilisticLocator locator(db);
  const core::Observation obs = core::Observation::from_scans(
      {scan_of({{"ff:ff:ff:ff:ff:01", -60.0},
                {"ff:ff:ff:ff:ff:02", -70.0}})});
  const Result<core::LocationEstimate> r = locator.try_locate(obs);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kDegenerate);
}

TEST(DegradedLocate, GeometricTooFewCirclesIsTypedDegenerate) {
  const auto db = make_fixture_db();
  const core::GeometricLocator locator(db, fixture_env());
  // Only two known APs: fewer than the three circles lateration needs.
  const core::Observation obs = core::Observation::from_scans(
      {scan_of({{fixture_bssids()[0], -50.0},
                {fixture_bssids()[1], -55.0}})});
  const Result<core::LocationEstimate> r = locator.try_locate(obs);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kDegenerate);
}

TEST(DegradedLocate, ThrowingLocatorIsInternal) {
  struct ThrowingLocator : core::Locator {
    core::LocationEstimate locate(const core::Observation&) const override {
      throw std::runtime_error("index out of range");
    }
    std::string name() const override { return "throwing"; }
  };
  const ThrowingLocator locator;
  const Result<core::LocationEstimate> r =
      locator.try_locate(fixture_observation({20.0, 20.0}));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kInternal);
  EXPECT_NE(r.error().to_string().find("throwing"), std::string::npos);
}

TEST(DegradedLocate, WellFormedObservationStillSucceeds) {
  const auto db = make_fixture_db();
  const core::ProbabilisticLocator locator(db);
  const Result<core::LocationEstimate> r =
      locator.try_locate(fixture_observation({10.0, 10.0}));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_TRUE(r.value().valid);
}

TEST(ServiceDegraded, NonFiniteSamplesRejectedAtTheDoor) {
  const auto db = make_fixture_db();
  const core::ProbabilisticLocator locator(db);
  core::LocationServiceConfig cfg;
  cfg.window_scans = 2;
  cfg.min_scans = 1;
  core::LocationService service(locator, cfg);

  radio::ScanRecord scan = scan_of(
      {{fixture_bssids()[0], -45.0},
       {fixture_bssids()[1], std::numeric_limits<double>::infinity()},
       {fixture_bssids()[2], std::numeric_limits<double>::quiet_NaN()},
       {fixture_bssids()[3], -60.0}});
  const core::ServiceFix fix = service.on_scan(scan);
  EXPECT_EQ(service.rejected_samples(), 2u);
  // The two surviving finite samples still produce a fix.
  EXPECT_TRUE(fix.valid);
  EXPECT_FALSE(fix.degraded());
}

TEST(ServiceDegraded, CoastsWithReasonWhenTheWindowGoesDark) {
  const auto db = make_fixture_db();
  const core::ProbabilisticLocator locator(db);
  core::LocationServiceConfig cfg;
  cfg.window_scans = 2;
  cfg.min_scans = 1;
  core::LocationService service(locator, cfg);

  // Establish a track on good scans.
  radio::ScanRecord good;
  good.timestamp_s = 0.0;
  for (std::size_t a = 0; a < fixture_bssids().size(); ++a) {
    good.samples.push_back(
        {fixture_bssids()[a], testing::fixture_mean_rssi(a, {10.0, 10.0}),
         1});
  }
  service.on_scan(good);
  core::ServiceFix fix = service.on_scan(good);
  ASSERT_TRUE(fix.valid);
  ASSERT_FALSE(fix.degraded());

  // Flush the window with scans the locator cannot answer: the fix
  // coasts on the Kalman track and says why it is degraded.
  const radio::ScanRecord dark =
      scan_of({{"ff:ff:ff:ff:ff:99", -80.0}});
  service.on_scan(dark);
  fix = service.on_scan(dark);
  EXPECT_TRUE(fix.valid);
  ASSERT_TRUE(fix.degraded());
  EXPECT_NE(fix.degraded_reason.find("degenerate"), std::string::npos);
}

TEST(ServiceDegraded, InvalidFixCarriesReasonWithoutTrack) {
  const auto db = make_fixture_db();
  const core::ProbabilisticLocator locator(db);
  core::LocationServiceConfig cfg;
  cfg.window_scans = 2;
  cfg.min_scans = 1;
  core::LocationService service(locator, cfg);

  const core::ServiceFix fix =
      service.on_scan(scan_of({{"ff:ff:ff:ff:ff:99", -80.0}}));
  EXPECT_FALSE(fix.valid);
  EXPECT_TRUE(fix.degraded());
}

}  // namespace
}  // namespace loctk

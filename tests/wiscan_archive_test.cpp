// Unit tests for the .lar archive container (the zip substitution).

#include "wiscan/archive.hpp"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace loctk::wiscan {
namespace {

TEST(Archive, AddContainsBytes) {
  Archive ar;
  ar.add("a.txt", "hello");
  ar.add("sub/b.txt", "world");
  EXPECT_EQ(ar.size(), 2u);
  EXPECT_TRUE(ar.contains("a.txt"));
  EXPECT_FALSE(ar.contains("c.txt"));
  EXPECT_EQ(ar.bytes("sub/b.txt"), "world");
  EXPECT_THROW(ar.bytes("missing"), ArchiveError);
}

TEST(Archive, AddReplaces) {
  Archive ar;
  ar.add("a", "v1");
  ar.add("a", "v2");
  EXPECT_EQ(ar.size(), 1u);
  EXPECT_EQ(ar.bytes("a"), "v2");
}

TEST(Archive, RejectsUnsafePaths) {
  Archive ar;
  EXPECT_THROW(ar.add("", "x"), ArchiveError);
  EXPECT_THROW(ar.add("/abs/path", "x"), ArchiveError);
  EXPECT_THROW(ar.add("../escape", "x"), ArchiveError);
  EXPECT_THROW(ar.add("a/../b", "x"), ArchiveError);
  EXPECT_THROW(ar.add("a/./b", "x"), ArchiveError);
  EXPECT_THROW(ar.add("a//b", "x"), ArchiveError);
}

TEST(Archive, StreamRoundTripIncludingBinary) {
  Archive ar;
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  ar.add("bin.dat", binary);
  ar.add("empty", "");
  ar.add("text/readme.txt", "line1\nline2\n");

  std::ostringstream os;
  ar.write(os);
  std::istringstream is(os.str());
  const Archive back = Archive::read(is);
  EXPECT_EQ(back.size(), 3u);
  EXPECT_EQ(back.bytes("bin.dat"), binary);
  EXPECT_EQ(back.bytes("empty"), "");
  EXPECT_EQ(back.bytes("text/readme.txt"), "line1\nline2\n");
}

TEST(Archive, CorruptInputsThrow) {
  std::istringstream bad_magic("NOPE");
  EXPECT_THROW(Archive::read(bad_magic), ArchiveError);

  // Valid magic, truncated count.
  std::istringstream truncated("LAR1\x01");
  EXPECT_THROW(Archive::read(truncated), ArchiveError);

  // Truncate a valid archive mid-payload.
  Archive ar;
  ar.add("f", "0123456789");
  std::ostringstream os;
  ar.write(os);
  std::string bytes = os.str();
  bytes.resize(bytes.size() - 4);
  std::istringstream cut(bytes);
  EXPECT_THROW(Archive::read(cut), ArchiveError);
}

TEST(Archive, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "loctk_lar";
  std::filesystem::create_directories(dir);
  Archive ar;
  ar.add("x.wiscan", "bssid=aa rssi=-50\n");
  const auto path = dir / "survey.lar";
  ar.write(path);
  const Archive back = Archive::read(path);
  EXPECT_EQ(back.bytes("x.wiscan"), "bssid=aa rssi=-50\n");
  EXPECT_THROW(Archive::read(dir / "missing.lar"), ArchiveError);
  std::filesystem::remove_all(dir);
}

TEST(Archive, PackAndUnpackDirectory) {
  const auto root = std::filesystem::temp_directory_path() / "loctk_pack";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root / "in" / "deep");
  {
    std::ofstream(root / "in" / "top.txt") << "top";
    std::ofstream(root / "in" / "deep" / "nested.txt") << "nested";
  }
  const Archive ar = Archive::pack_directory(root / "in");
  EXPECT_EQ(ar.size(), 2u);
  EXPECT_EQ(ar.bytes("top.txt"), "top");
  EXPECT_EQ(ar.bytes("deep/nested.txt"), "nested");

  ar.unpack_to(root / "out");
  std::ifstream nested(root / "out" / "deep" / "nested.txt");
  std::string content;
  nested >> content;
  EXPECT_EQ(content, "nested");

  EXPECT_THROW(Archive::pack_directory(root / "nonexistent"),
               ArchiveError);
  std::filesystem::remove_all(root);
}

// Property: write/read round-trips for archives of varying entry
// counts and payload sizes.
class ArchiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(ArchiveSweep, RoundTrip) {
  const int n = GetParam();
  Archive ar;
  for (int i = 0; i < n; ++i) {
    std::string payload(static_cast<std::size_t>(i * 37 % 501), 'x');
    for (std::size_t k = 0; k < payload.size(); ++k) {
      payload[k] = static_cast<char>((k * 31 + static_cast<std::size_t>(i)) & 0xff);
    }
    ar.add("entry-" + std::to_string(i), payload);
  }
  std::ostringstream os;
  ar.write(os);
  std::istringstream is(os.str());
  const Archive back = Archive::read(is);
  ASSERT_EQ(back.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(back.bytes("entry-" + std::to_string(i)),
              ar.bytes("entry-" + std::to_string(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, ArchiveSweep,
                         ::testing::Values(0, 1, 2, 7, 31, 100));

}  // namespace
}  // namespace loctk::wiscan

// Unit tests for SSD (difference) fingerprinting and the device-
// offset channel knob it exists to defeat.

#include "core/ssd_locator.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/knn.hpp"
#include "test_fixtures.hpp"

namespace loctk::core {
namespace {

using testing::fixture_bssids;
using testing::fixture_mean_rssi;
using testing::fixture_observation;
using testing::make_fixture_db;

TEST(Ssd, DistanceIsOffsetInvariant) {
  const auto db = make_fixture_db();
  const SsdLocator ssd(db);
  const traindb::TrainingPoint& tp = db.points()[5];
  const Observation plain = fixture_observation({17.0, 23.0});
  const Observation shifted = fixture_observation({17.0, 23.0}, +7.5);
  EXPECT_NEAR(ssd.ssd_distance(plain, tp),
              ssd.ssd_distance(shifted, tp), 1e-9);
}

TEST(Ssd, LocatesAtTrainingPointsRegardlessOfOffset) {
  const auto db = make_fixture_db();
  const SsdLocator ssd(db, {.k = 1});
  EXPECT_EQ(ssd.name(), "ssd-knn-1");
  for (const double offset : {0.0, -6.0, +9.0}) {
    for (const std::size_t idx : {0u, 7u, 12u}) {
      const traindb::TrainingPoint& tp = db.points()[idx];
      const LocationEstimate est =
          ssd.locate(fixture_observation(tp.position, offset));
      ASSERT_TRUE(est.valid) << offset;
      EXPECT_EQ(est.location_name, tp.location)
          << "offset " << offset;
    }
  }
}

TEST(Ssd, OffsetInflatesAbsoluteDistanceNotSsd) {
  // A uniform +10 dB offset moves the observation 10*sqrt(4) = 20 dB
  // away from the true cell in absolute signal space, while the SSD
  // distance to the true cell stays exactly zero. (Whether absolute
  // k-NN actually mislocates depends on the cell layout — the
  // *margin* it decides by is what provably shrinks.)
  const auto db = make_fixture_db();
  const KnnLocator knn(db, {.k = 1});
  const SsdLocator ssd(db, {.k = 1});
  const traindb::TrainingPoint& tp = *db.find("g20-20");
  const Observation plain = fixture_observation(tp.position);
  const Observation shifted = fixture_observation(tp.position, +10.0);

  EXPECT_NEAR(knn.signal_distance(plain, tp), 0.0, 1e-9);
  EXPECT_NEAR(knn.signal_distance(shifted, tp), 20.0, 1e-9);
  EXPECT_NEAR(ssd.ssd_distance(shifted, tp), 0.0, 1e-9);
  // And SSD still answers the right cell under the offset.
  const LocationEstimate est = ssd.locate(shifted);
  ASSERT_TRUE(est.valid);
  EXPECT_EQ(est.location_name, tp.location);
}

TEST(Ssd, MinCommonApsVetoes) {
  const auto db = make_fixture_db();
  SsdConfig cfg;
  cfg.min_common_aps = 3;
  const SsdLocator ssd(db, cfg);
  std::vector<radio::ScanRecord> scans(1);
  scans[0].samples.push_back({fixture_bssids()[0], -50.0, 1});
  scans[0].samples.push_back({fixture_bssids()[1], -60.0, 1});
  EXPECT_FALSE(ssd.locate(Observation::from_scans(scans)).valid);
}

TEST(Ssd, EmptyInputsInvalid) {
  const auto db = make_fixture_db();
  const SsdLocator ssd(db);
  EXPECT_FALSE(ssd.locate(Observation{}).valid);
  traindb::TrainingDatabase empty;
  const SsdLocator on_empty(empty);
  EXPECT_FALSE(on_empty.locate(fixture_observation({5, 5})).valid);
}

TEST(Ssd, InterpolatesLikeKnn) {
  const auto db = make_fixture_db();
  const SsdLocator ssd(db, {.k = 3});
  const geom::Vec2 truth{15.0, 10.0};
  const LocationEstimate est = ssd.locate(fixture_observation(truth));
  ASSERT_TRUE(est.valid);
  EXPECT_LT(geom::distance(est.position, truth), 8.0);
}

// Property sweep: SSD estimates identical across a range of offsets.
class OffsetSweep : public ::testing::TestWithParam<double> {};

TEST_P(OffsetSweep, EstimateIndependentOfOffset) {
  const double offset = GetParam();
  const auto db = make_fixture_db();
  const SsdLocator ssd(db);
  const geom::Vec2 truth{23.0, 31.0};
  const LocationEstimate base = ssd.locate(fixture_observation(truth));
  const LocationEstimate off =
      ssd.locate(fixture_observation(truth, offset));
  ASSERT_TRUE(base.valid);
  ASSERT_TRUE(off.valid);
  EXPECT_TRUE(geom::almost_equal(base.position, off.position, 1e-9));
  EXPECT_EQ(base.location_name, off.location_name);
}

INSTANTIATE_TEST_SUITE_P(Offsets, OffsetSweep,
                         ::testing::Values(-12.0, -5.0, -1.0, 0.0, 2.5,
                                           6.0, 15.0));

}  // namespace
}  // namespace loctk::core

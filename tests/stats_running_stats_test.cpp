// Unit tests for the Welford accumulator that backs every
// <training point, AP> mean/sigma pair in the training database.

#include "stats/running_stats.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace loctk::stats {
namespace {

TEST(RunningStats, EmptyState) {
  const RunningStats rs;
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.sample_variance(), 0.0);
  EXPECT_TRUE(std::isinf(rs.min()));
  EXPECT_TRUE(std::isinf(rs.max()));
}

TEST(RunningStats, SingleSample) {
  RunningStats rs;
  rs.add(-55.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), -55.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.sample_variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), -55.0);
  EXPECT_DOUBLE_EQ(rs.max(), -55.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats rs;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    rs.add(v);
  }
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 4.0);  // classic textbook set
  EXPECT_DOUBLE_EQ(rs.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(rs.sample_variance(), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStats, NumericallyStableAroundLargeOffset) {
  // Naive sum-of-squares loses these; Welford keeps them.
  RunningStats rs;
  const double offset = 1e9;
  for (const double v : {offset + 1.0, offset + 2.0, offset + 3.0}) {
    rs.add(v);
  }
  EXPECT_NEAR(rs.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(rs.variance(), 2.0 / 3.0, 1e-6);
}

TEST(RunningStats, MergeMatchesSequential) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(std::sin(i * 0.37) * 10.0 - 60.0);
  }
  RunningStats whole;
  for (const double v : values) whole.add(v);

  RunningStats left, right;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i < 37 ? left : right).add(values[i]);
  }
  left.merge(right);

  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats b;
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats c;
  c.merge(a);  // empty lhs: copies
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
  EXPECT_DOUBLE_EQ(c.min(), 1.0);
}

// Property sweep: merging in K chunks equals sequential for any K.
class MergeSweep : public ::testing::TestWithParam<int> {};

TEST_P(MergeSweep, ChunkedMergeIsExact) {
  const int chunks = GetParam();
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(std::cos(i * 0.11) * 7.0 + (i % 13));
  }
  RunningStats whole;
  for (const double v : values) whole.add(v);

  RunningStats merged;
  const std::size_t per =
      (values.size() + static_cast<std::size_t>(chunks) - 1) /
      static_cast<std::size_t>(chunks);
  for (std::size_t lo = 0; lo < values.size(); lo += per) {
    RunningStats part;
    for (std::size_t i = lo; i < std::min(values.size(), lo + per); ++i) {
      part.add(values[i]);
    }
    merged.merge(part);
  }
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(merged.stddev(), whole.stddev(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(ChunkCounts, MergeSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 100, 500));

}  // namespace
}  // namespace loctk::stats

// Unit tests for wi-scan collection loading (directory trees, .lar
// archives) and the simulated survey campaign.

#include "wiscan/collection.hpp"
#include "wiscan/survey.hpp"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "radio/environment.hpp"
#include "radio/propagation.hpp"

namespace loctk::wiscan {
namespace {

namespace fs = std::filesystem;

class CollectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "loctk_collection";
    fs::remove_all(dir_);
    fs::create_directories(dir_ / "floor1");
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_file(const fs::path& rel, const std::string& content) {
    std::ofstream(dir_ / rel) << content;
  }

  fs::path dir_;
};

TEST_F(CollectionTest, LoadsDirectoryRecursively) {
  write_file("kitchen.wiscan", "bssid=aa rssi=-50\n");
  write_file("floor1/hall.wiscan", "bssid=bb rssi=-60\n");
  write_file("notes.txt", "ignored");

  const Collection c = load_collection(dir_);
  ASSERT_EQ(c.files.size(), 2u);
  // Sorted by location for determinism.
  EXPECT_EQ(c.files[0].location, "hall");
  EXPECT_EQ(c.files[1].location, "kitchen");
  EXPECT_EQ(c.total_entries(), 2u);
  EXPECT_NE(c.find("kitchen"), nullptr);
  EXPECT_EQ(c.find("attic"), nullptr);
}

TEST_F(CollectionTest, HeaderLocationBeatsFilename) {
  write_file("f1.wiscan", "# location: lab\nbssid=aa rssi=-50\n");
  const Collection c = load_collection(dir_);
  ASSERT_EQ(c.files.size(), 1u);
  EXPECT_EQ(c.files[0].location, "lab");
}

TEST_F(CollectionTest, LoadsLarArchive) {
  Archive ar;
  ar.add("a.wiscan", "bssid=aa rssi=-50\n");
  ar.add("sub/b.wiscan", "bssid=bb rssi=-55\n");
  ar.add("readme.md", "not a scan");
  const auto path = dir_ / "survey.lar";
  ar.write(path);

  const Collection c = load_collection(path);
  ASSERT_EQ(c.files.size(), 2u);
  EXPECT_EQ(c.files[0].location, "a");
  EXPECT_EQ(c.files[1].location, "b");
}

TEST_F(CollectionTest, RejectsOtherSources) {
  write_file("data.bin", "junk");
  EXPECT_THROW(load_collection(dir_ / "data.bin"), FormatError);
  EXPECT_THROW(load_collection(dir_ / "missing"), FormatError);
}

class SurveyTest : public ::testing::Test {
 protected:
  SurveyTest()
      : env_(radio::make_paper_house()), prop_(env_),
        scanner_(prop_, radio::ChannelConfig{}, 77) {
    map_.add("corner", {5.0, 5.0});
    map_.add("center", {25.0, 20.0});
  }

  radio::Environment env_;
  radio::Propagation prop_;
  radio::Scanner scanner_;
  LocationMap map_;
};

TEST_F(SurveyTest, RunProducesOneFilePerLocation) {
  SurveyConfig cfg;
  cfg.scans_per_location = 10;
  SurveyCampaign campaign(scanner_, cfg);
  const Collection c = campaign.run(map_);
  ASSERT_EQ(c.files.size(), 2u);
  EXPECT_EQ(c.files[0].location, "corner");
  EXPECT_EQ(c.files[1].location, "center");
  for (const WiScanFile& f : c.files) {
    EXPECT_EQ(f.scan_count(), 10u);
    EXPECT_GE(f.bssids().size(), 2u);  // several APs audible
    for (const WiScanEntry& e : f.entries) {
      EXPECT_EQ(e.ssid, "loctk");
      EXPECT_LT(e.rssi_dbm, 0.0);
    }
  }
}

TEST_F(SurveyTest, RunToDirectoryWritesParseableFiles) {
  const auto out = fs::temp_directory_path() / "loctk_survey_out";
  fs::remove_all(out);
  SurveyConfig cfg;
  cfg.scans_per_location = 5;
  SurveyCampaign campaign(scanner_, cfg);
  const Collection written = campaign.run_to_directory(map_, out);

  const Collection back = load_collection(out);
  ASSERT_EQ(back.files.size(), written.files.size());
  // File contents round-trip through the text format.
  for (const WiScanFile& f : written.files) {
    const WiScanFile* loaded = back.find(f.location);
    ASSERT_NE(loaded, nullptr) << f.location;
    EXPECT_EQ(loaded->entries.size(), f.entries.size());
  }
  fs::remove_all(out);
}

TEST_F(SurveyTest, RunToArchiveMatchesDirectoryPath) {
  SurveyConfig cfg;
  cfg.scans_per_location = 5;
  SurveyCampaign campaign(scanner_, cfg);
  const Archive ar = campaign.run_to_archive(map_);
  EXPECT_EQ(ar.size(), 2u);
  const Collection c = load_collection(ar);
  ASSERT_EQ(c.files.size(), 2u);
  EXPECT_EQ(c.files[1].location, "corner");  // sorted: center, corner
}

TEST_F(SurveyTest, MultiHeadingSurveySplitsDwell) {
  radio::ChannelConfig cc;
  cc.body_loss_db = 6.0;
  cc.shadowing_sigma_db = 0.0;
  cc.fast_fading_sigma_db = 0.0;
  cc.quantize_dbm = false;
  cc.sensitivity_dbm = -150.0;
  cc.dropout_softness_db = 0.0;
  radio::Scanner scanner(prop_, cc, 88);

  SurveyConfig cfg;
  cfg.scans_per_location = 10;  // 10 over 4 headings: 3,3,2,2
  cfg.headings = {0.0, 1.5707963, 3.1415926, 4.7123889};
  SurveyCampaign campaign(scanner, cfg);
  LocationMap one;
  one.add("spot", {25.0, 20.0});
  const Collection c = campaign.run(one);
  ASSERT_EQ(c.files.size(), 1u);
  EXPECT_EQ(c.files[0].scan_count(), 10u);

  // With a noiseless channel and 4 symmetric headings, the per-AP
  // mean equals the orientation-averaged value: strictly between the
  // facing and worst-case readings.
  const auto& env = env_;
  const std::string bssid = env.access_points()[0].bssid;
  double sum = 0.0;
  int n = 0;
  for (const WiScanEntry& e : c.files[0].entries) {
    if (e.bssid == bssid) {
      sum += e.rssi_dbm;
      ++n;
    }
  }
  ASSERT_GT(n, 0);
  const double mean = sum / n;
  const double unshadowed = prop_.mean_rssi_dbm(0, {25.0, 20.0});
  EXPECT_LT(mean, unshadowed);             // some body loss applied
  EXPECT_GT(mean, unshadowed - 6.0);       // but never the full loss
}

TEST_F(SurveyTest, SessionResetControlsIndependence) {
  // With reset_session_per_location=false the channel state carries
  // across locations; either way we get the same file shapes.
  SurveyConfig cfg;
  cfg.scans_per_location = 4;
  cfg.reset_session_per_location = false;
  SurveyCampaign campaign(scanner_, cfg);
  const Collection c = campaign.run(map_);
  EXPECT_EQ(c.files.size(), 2u);
  EXPECT_EQ(c.files[0].scan_count(), 4u);
}

}  // namespace
}  // namespace loctk::wiscan

// Unit tests for the coverage heat-map renderer.

#include "floorplan/heatmap.hpp"

#include <gtest/gtest.h>

#include "floorplan/processor.hpp"
#include "radio/propagation.hpp"

namespace loctk::floorplan {
namespace {

TEST(HeatColor, RampEndsAndMonotoneRedness) {
  const image::Color cold = heat_color(0.0);
  const image::Color hot = heat_color(1.0);
  EXPECT_GT(cold.b, cold.r);  // blue end
  EXPECT_GT(hot.r, hot.b);    // red end
  // Clamping.
  EXPECT_EQ(heat_color(-1.0), cold);
  EXPECT_EQ(heat_color(2.0), hot);
  // Red channel grows (not strictly, but ends apart).
  EXPECT_GT(hot.r, cold.r);
}

TEST(HeatColor, ContinuousAtStops) {
  for (const double t : {0.25, 0.5, 0.75}) {
    const image::Color before = heat_color(t - 1e-6);
    const image::Color at = heat_color(t);
    EXPECT_NEAR(before.r, at.r, 2);
    EXPECT_NEAR(before.g, at.g, 2);
    EXPECT_NEAR(before.b, at.b, 2);
  }
}

TEST(RenderFieldHeatmap, GradientFieldPaintsRamp) {
  radio::Environment env(geom::Rect::sized(40.0, 30.0));
  HeatmapOptions opts;
  opts.lo_value = 0.0;
  opts.hi_value = 40.0;
  opts.pixels_per_foot = 4.0;
  opts.draw_legend = false;
  opts.draw_aps = false;
  opts.draw_walls = false;
  const image::Raster img = render_field_heatmap(
      env, [](geom::Vec2 w) { return w.x; }, opts);

  // Left edge of the footprint is cold (blue-ish), right edge hot.
  const image::Color left = img.at(opts.margin_px + 4, img.height() / 2);
  const image::Color right =
      img.at(img.width() - opts.margin_px - 4, img.height() / 2);
  EXPECT_GT(left.b, left.r);
  EXPECT_GT(right.r, right.b);
  // Margins stay white.
  EXPECT_EQ(img.at(2, 2), image::colors::kWhite);
}

TEST(RenderFieldHeatmap, DecorationsAppear) {
  const radio::Environment env = radio::make_paper_house();
  const radio::Propagation prop(env);
  HeatmapOptions opts;
  opts.title = "AP A coverage";
  const image::Raster img = render_field_heatmap(
      env, [&](geom::Vec2 w) { return prop.mean_rssi_dbm(0, w); }, opts);

  // Walls drawn in dark gray, AP labels/markers in white, title and
  // legend frame in black.
  EXPECT_GT(img.count_pixels(image::colors::kDarkGray), 50u);
  EXPECT_GT(img.count_pixels(image::colors::kWhite), 100u);
  EXPECT_GT(img.count_pixels(image::colors::kBlack), 50u);
}

TEST(RenderFieldHeatmap, StrongestNearTheAp) {
  const radio::Environment env = radio::make_paper_house();
  const radio::Propagation prop(env);
  HeatmapOptions opts;
  opts.draw_aps = false;
  opts.draw_walls = false;
  opts.draw_legend = false;
  const image::Raster img = render_field_heatmap(
      env, [&](geom::Vec2 w) { return prop.mean_rssi_dbm(0, w); }, opts);

  // Pixel near AP A (world ~(2,2)) should be much redder than the
  // far corner (world ~(48,38)).
  FloorPlan plan = render_environment(env, opts.pixels_per_foot,
                                      opts.margin_px);
  const PixelPoint near_ap = plan.to_pixel({4.0, 4.0});
  const PixelPoint far = plan.to_pixel({46.0, 36.0});
  const image::Color c_near = img.at(static_cast<int>(near_ap.x),
                                     static_cast<int>(near_ap.y));
  const image::Color c_far =
      img.at(static_cast<int>(far.x), static_cast<int>(far.y));
  EXPECT_GT(static_cast<int>(c_near.r) - c_near.b,
            static_cast<int>(c_far.r) - c_far.b);
}

}  // namespace
}  // namespace loctk::floorplan

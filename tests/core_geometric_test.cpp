// Unit tests for the paper's §5.2 geometric locator and the
// least-squares lateration baseline.

#include "core/geometric.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "radio/environment.hpp"
#include "test_fixtures.hpp"

namespace loctk::core {
namespace {

using testing::fixture_ap_positions;
using testing::fixture_bssids;
using testing::fixture_mean_rssi;
using testing::fixture_observation;
using testing::make_fixture_db;

// Environment matching the analytic fixture (AP positions only; the
// locator reads signal models from the database).
radio::Environment fixture_env() {
  radio::Environment env(geom::Rect::sized(40.0, 40.0));
  for (std::size_t i = 0; i < fixture_bssids().size(); ++i) {
    radio::AccessPoint ap;
    ap.bssid = fixture_bssids()[i];
    ap.name = std::string(1, static_cast<char>('A' + i));
    ap.position = fixture_ap_positions()[i];
    env.add_access_point(ap);
  }
  return env;
}

TEST(Geometric, FitsOneModelPerAp) {
  const auto db = make_fixture_db();
  const GeometricLocator locator(db, fixture_env());
  ASSERT_EQ(locator.models().size(), 4u);
  for (const FittedApModel& m : locator.models()) {
    // The analytic law is log-distance; the inverse-square fit won't
    // be perfect but must capture the decreasing trend.
    EXPECT_GT(m.r_squared(), 0.6) << m.bssid;
    EXPECT_GT(m.predict(5.0), m.predict(40.0)) << m.bssid;
  }
}

TEST(Geometric, LogDistanceModelFitsFixtureExactly) {
  const auto db = make_fixture_db();
  GeometricConfig cfg;
  cfg.model = SignalModel::kLogDistance;
  const GeometricLocator locator(db, fixture_env(), cfg);
  for (const FittedApModel& m : locator.models()) {
    EXPECT_GT(m.r_squared(), 0.999) << m.bssid;
    // Ranging on the exact law inverts distances correctly.
    EXPECT_NEAR(m.invert(fixture_mean_rssi(0, {0, 0}), 1.0, 300.0), 1.0,
                0.3);
  }
}

TEST(Geometric, CirclesForObservation) {
  const auto db = make_fixture_db();
  GeometricConfig cfg;
  cfg.model = SignalModel::kLogDistance;
  const GeometricLocator locator(db, fixture_env(), cfg);
  const geom::Vec2 truth{20.0, 10.0};
  const auto circles = locator.circles_for(fixture_observation(truth));
  ASSERT_EQ(circles.size(), 4u);
  for (std::size_t i = 0; i < circles.size(); ++i) {
    EXPECT_NEAR(circles[i].radius,
                geom::distance(fixture_ap_positions()[i], truth), 1.5)
        << i;
  }
}

TEST(Geometric, LocatesAccuratelyOnExactModel) {
  const auto db = make_fixture_db();
  GeometricConfig cfg;
  cfg.model = SignalModel::kLogDistance;
  const GeometricLocator locator(db, fixture_env(), cfg);
  for (const geom::Vec2 truth :
       {geom::Vec2{20, 20}, geom::Vec2{10, 25}, geom::Vec2{30, 8}}) {
    const LocationEstimate est = locator.locate(fixture_observation(truth));
    ASSERT_TRUE(est.valid);
    EXPECT_LT(geom::distance(est.position, truth), 3.0)
        << truth.x << "," << truth.y;
    EXPECT_EQ(est.aps_used, 4);
    EXPECT_TRUE(est.location_name.empty());  // coordinate method
  }
}

TEST(Geometric, PairStrategiesAndEstimators) {
  const auto db = make_fixture_db();
  for (const PairStrategy pairs :
       {PairStrategy::kAdjacentRing, PairStrategy::kAllPairs}) {
    for (const PointEstimator est :
         {PointEstimator::kComponentMedian, PointEstimator::kGeometricMedian,
          PointEstimator::kMean}) {
      GeometricConfig cfg;
      cfg.model = SignalModel::kLogDistance;
      cfg.pairs = pairs;
      cfg.estimator = est;
      const GeometricLocator locator(db, fixture_env(), cfg);
      const geom::Vec2 truth{15.0, 22.0};
      const LocationEstimate result =
          locator.locate(fixture_observation(truth));
      ASSERT_TRUE(result.valid);
      EXPECT_LT(geom::distance(result.position, truth), 5.0)
          << static_cast<int>(pairs) << "/" << static_cast<int>(est);
    }
  }
}

TEST(Geometric, RequiresThreeUsableAps) {
  // Database with only 2 APs trained.
  traindb::TrainingDatabase db;
  for (double x = 0.0; x <= 40.0; x += 10.0) {
    traindb::TrainingPoint p;
    p.location = "p" + std::to_string(static_cast<int>(x));
    p.position = {x, 0.0};
    for (std::size_t a = 0; a < 2; ++a) {
      traindb::ApStatistics s;
      s.bssid = fixture_bssids()[a];
      s.mean_dbm = fixture_mean_rssi(a, p.position);
      s.stddev_db = 2.0;
      s.sample_count = 10;
      s.scan_count = 10;
      p.per_ap.push_back(std::move(s));
    }
    db.add_point(std::move(p));
  }
  EXPECT_THROW(GeometricLocator(db, fixture_env()),
               traindb::DatabaseError);
}

TEST(Geometric, TooFewAudibleApsAtLocateTime) {
  const auto db = make_fixture_db();
  GeometricConfig cfg;
  cfg.model = SignalModel::kLogDistance;
  const GeometricLocator locator(db, fixture_env(), cfg);
  // Observation hears only two APs.
  std::vector<radio::ScanRecord> scans(1);
  for (std::size_t a = 0; a < 2; ++a) {
    scans[0].samples.push_back(
        {fixture_bssids()[a], fixture_mean_rssi(a, {20, 20}), 1});
  }
  EXPECT_FALSE(locator.locate(Observation::from_scans(scans)).valid);
}

TEST(Geometric, MinUsableDbmFiltersWeakAps) {
  const auto db = make_fixture_db();
  GeometricConfig cfg;
  cfg.model = SignalModel::kLogDistance;
  cfg.min_usable_dbm = -30.0;  // absurdly strict: everything filtered
  const GeometricLocator locator(db, fixture_env(), cfg);
  EXPECT_FALSE(locator.locate(fixture_observation({20, 20})).valid);
}

TEST(Lateration, BaselineLocatesOnExactModel) {
  const auto db = make_fixture_db();
  GeometricConfig cfg;
  cfg.model = SignalModel::kLogDistance;
  const LaterationLocator locator(db, fixture_env(), cfg);
  EXPECT_EQ(locator.name(), "lateration-ls");
  const geom::Vec2 truth{25.0, 15.0};
  const LocationEstimate est = locator.locate(fixture_observation(truth));
  ASSERT_TRUE(est.valid);
  EXPECT_LT(geom::distance(est.position, truth), 3.0);
}

TEST(Geometric, BiasedObservationDegradesGracefully) {
  const auto db = make_fixture_db();
  GeometricConfig cfg;
  cfg.model = SignalModel::kLogDistance;
  const GeometricLocator locator(db, fixture_env(), cfg);
  // A uniform +6 dB bias shrinks all distances; the median stays
  // inside the hull of APs and remains finite.
  const LocationEstimate est =
      locator.locate(fixture_observation({20.0, 20.0}, +6.0));
  ASSERT_TRUE(est.valid);
  EXPECT_TRUE(geom::is_finite(est.position));
  EXPECT_LT(geom::distance(est.position, {20.0, 20.0}), 20.0);
}

// Property sweep: with one AP's reading wildly corrupted, the §5.2
// median estimator keeps the error bounded at several positions (the
// robustness rationale for choosing the median over the mean).
class RobustnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(RobustnessSweep, MedianBoundedUnderSingleApCorruption) {
  const int i = GetParam();
  const auto db = make_fixture_db();
  GeometricConfig cfg;
  cfg.model = SignalModel::kLogDistance;
  cfg.pairs = PairStrategy::kAllPairs;
  const GeometricLocator locator(db, fixture_env(), cfg);

  const geom::Vec2 truth{8.0 + (i % 4) * 8.0, 6.0 + (i / 4) * 9.0};
  std::vector<radio::ScanRecord> scans(1);
  for (std::size_t a = 0; a < fixture_bssids().size(); ++a) {
    double rssi = fixture_mean_rssi(a, truth);
    if (a == static_cast<std::size_t>(i) % 4) rssi -= 15.0;  // corrupted AP
    scans[0].samples.push_back({fixture_bssids()[a], rssi, 1});
  }
  const Observation obs = Observation::from_scans(scans);
  const LocationEstimate med_est = locator.locate(obs);
  ASSERT_TRUE(med_est.valid);
  EXPECT_TRUE(geom::is_finite(med_est.position));

  // The median must not be (much) worse than the mean estimator on
  // the same corrupted input — the §5.2 robustness rationale.
  GeometricConfig mean_cfg = cfg;
  mean_cfg.estimator = PointEstimator::kMean;
  const GeometricLocator mean_locator(db, fixture_env(), mean_cfg);
  const LocationEstimate mean_est = mean_locator.locate(obs);
  ASSERT_TRUE(mean_est.valid);
  EXPECT_LE(geom::distance(med_est.position, truth),
            geom::distance(mean_est.position, truth) + 5.0);
  // And it stays on (or very near) the site.
  EXPECT_LT(geom::distance(med_est.position, truth), 45.0);
}

INSTANTIATE_TEST_SUITE_P(Corruptions, RobustnessSweep,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace loctk::core

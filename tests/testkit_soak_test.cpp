// Quick-tier tests for the fleet soak driver: invariants hold on a
// small fleet, the run report is deterministic across replays and
// thread counts, and the fault/degraded accounting is exact.

#include "testkit/soak.hpp"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "core/probabilistic.hpp"
#include "testkit/scenario.hpp"

namespace loctk::testkit {
namespace {

struct SmallFleet {
  SmallFleet() : scenario(ScenarioSpec::fleet(6, 20, /*seed=*/11)) {
    trace = scenario.record_trace();
    locator = std::make_unique<core::ProbabilisticLocator>(
        scenario.database());
  }
  Scenario scenario;
  ScanTrace trace;
  std::unique_ptr<core::ProbabilisticLocator> locator;
};

TEST(FleetSoak, SmallFleetPassesAllInvariants) {
  SmallFleet f;
  const SoakResult result = run_fleet_soak(f.trace, *f.locator);
  for (const std::string& v : result.violations) ADD_FAILURE() << v;
  EXPECT_TRUE(result.ok());

  const RunReport& r = result.report;
  EXPECT_EQ(r.scans_replayed, f.trace.scans.size());
  EXPECT_EQ(r.device_count, 6u);
  EXPECT_EQ(r.valid_fixes + r.degraded_fixes + r.invalid_fixes,
            r.scans_replayed);
  // A clean trace rejects nothing and most scans fix (only the
  // min_scans warm-up per device cannot).
  EXPECT_EQ(r.rejected_samples, 0u);
  EXPECT_GT(r.valid_fix_fraction(), 0.8);
  EXPECT_EQ(r.errors_ft.size(), r.valid_fixes);
  EXPECT_TRUE(std::is_sorted(r.errors_ft.begin(), r.errors_ft.end()));
  EXPECT_GT(result.p99_on_scan_s, 0.0);
}

TEST(FleetSoak, ReportIsIdenticalAcrossReplays) {
  SmallFleet f;
  const SoakResult once = run_fleet_soak(f.trace, *f.locator);
  const SoakResult twice = run_fleet_soak(f.trace, *f.locator);
  EXPECT_EQ(once.report, twice.report);
}

TEST(FleetSoak, ReportIsThreadCountInvariant) {
  SmallFleet f;
  concurrency::ThreadPool one(1);
  concurrency::ThreadPool many(4);
  SoakConfig serial;
  serial.pool = &one;
  SoakConfig parallel;
  parallel.pool = &many;
  const SoakResult a = run_fleet_soak(f.trace, *f.locator, serial);
  const SoakResult b = run_fleet_soak(f.trace, *f.locator, parallel);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(a.report, b.report);
}

TEST(FleetSoak, CountsInjectedFaults) {
  ScenarioSpec spec = ScenarioSpec::fleet(4, 15, /*seed=*/23);
  spec.faults.push_back({.device = 0, .scan_index = 5,
                         .kind = FaultEvent::Kind::kNonFiniteRssi});
  spec.faults.push_back({.device = 2, .scan_index = 9,
                         .kind = FaultEvent::Kind::kNonFiniteRssi});
  spec.faults.push_back({.device = 3, .scan_index = 3,
                         .kind = FaultEvent::Kind::kDropScan});
  const Scenario scenario(spec);
  const ScanTrace trace = scenario.record_trace();
  const core::ProbabilisticLocator locator(scenario.database());

  const SoakResult result = run_fleet_soak(trace, locator);
  for (const std::string& v : result.violations) ADD_FAILURE() << v;
  EXPECT_EQ(result.report.scans_replayed, 4u * 15u - 1u);  // one dropped
  EXPECT_EQ(result.report.rejected_samples, 2u);  // one NaN sample each
}

TEST(FleetSoak, LatencyBoundViolationIsReported) {
  SmallFleet f;
  SoakConfig config;
  config.max_p99_on_scan_s = 1e-12;  // impossible bound
  const SoakResult result = run_fleet_soak(f.trace, *f.locator, config);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.violations.front().find("p99"), std::string::npos);
}

TEST(FleetSoak, ReportSerializationIsStable) {
  SmallFleet f;
  const SoakResult result = run_fleet_soak(f.trace, *f.locator);
  const std::string json = result.report.to_json();
  EXPECT_EQ(json, run_fleet_soak(f.trace, *f.locator).report.to_json());
  EXPECT_NE(json.find("\"scans_replayed\""), std::string::npos);
  EXPECT_NE(json.find("\"errors_ft\""), std::string::npos);
  EXPECT_NE(result.report.to_text().find("run report"), std::string::npos);
}

TEST(RunReport, FractionsAndPercentiles) {
  RunReport r;
  EXPECT_EQ(r.valid_fix_fraction(), 0.0);
  EXPECT_EQ(r.degraded_fix_rate(), 0.0);
  EXPECT_EQ(r.p90_error_ft(), 0.0);

  r.scans_replayed = 10;
  r.valid_fixes = 6;
  r.degraded_fixes = 2;
  r.invalid_fixes = 2;
  r.errors_ft = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(r.valid_fix_fraction(), 0.8);
  EXPECT_DOUBLE_EQ(r.degraded_fix_rate(), 0.25);
  EXPECT_DOUBLE_EQ(r.mean_error_ft(), 3.5);
  EXPECT_DOUBLE_EQ(r.median_error_ft(), 3.0);
  EXPECT_DOUBLE_EQ(r.max_error_ft(), 6.0);
  EXPECT_DOUBLE_EQ(r.error_percentile(1.0), 6.0);
  EXPECT_DOUBLE_EQ(r.error_percentile(0.0), 1.0);
}

}  // namespace
}  // namespace loctk::testkit

// Unit tests for the in-memory training database.

#include "traindb/database.hpp"

#include <gtest/gtest.h>

namespace loctk::traindb {
namespace {

ApStatistics make_stats(const std::string& bssid, double mean,
                        double sigma, std::uint32_t samples = 90,
                        std::uint32_t scans = 90) {
  ApStatistics s;
  s.bssid = bssid;
  s.mean_dbm = mean;
  s.stddev_db = sigma;
  s.sample_count = samples;
  s.scan_count = scans;
  s.min_dbm = mean - 2.0 * sigma;
  s.max_dbm = mean + 2.0 * sigma;
  return s;
}

TrainingPoint make_point(const std::string& name, geom::Vec2 pos,
                         std::vector<ApStatistics> aps) {
  TrainingPoint p;
  p.location = name;
  p.position = pos;
  p.per_ap = std::move(aps);
  return p;
}

TEST(ApStatistics, VisibilityAndGaussian) {
  ApStatistics s = make_stats("aa", -60.0, 0.2, 45, 90);
  EXPECT_DOUBLE_EQ(s.visibility(), 0.5);
  EXPECT_DOUBLE_EQ(s.gaussian(1.0).sigma, 1.0);  // floored
  EXPECT_DOUBLE_EQ(s.gaussian(0.1).sigma, 0.2);
  s.scan_count = 0;
  EXPECT_DOUBLE_EQ(s.visibility(), 0.0);
}

TEST(TrainingPoint, FindAndSignature) {
  const TrainingPoint p = make_point(
      "k", {1.0, 2.0},
      {make_stats("aa", -50.0, 2.0), make_stats("bb", -70.0, 3.0)});
  ASSERT_NE(p.find("aa"), nullptr);
  EXPECT_EQ(p.find("cc"), nullptr);
  const auto sig = p.signature({"aa", "bb", "cc"}, -100.0);
  ASSERT_EQ(sig.size(), 3u);
  EXPECT_DOUBLE_EQ(sig[0], -50.0);
  EXPECT_DOUBLE_EQ(sig[1], -70.0);
  EXPECT_DOUBLE_EQ(sig[2], -100.0);
}

TEST(TrainingDatabase, AddSortsApsAndBuildsUniverse) {
  TrainingDatabase db;
  db.add_point(make_point("p1", {0, 0},
                          {make_stats("zz", -60, 2), make_stats("aa", -50, 2)}));
  db.add_point(make_point("p2", {10, 0}, {make_stats("mm", -55, 2)}));

  // Universe sorted and deduplicated.
  const auto& u = db.bssid_universe();
  ASSERT_EQ(u.size(), 3u);
  EXPECT_EQ(u[0], "aa");
  EXPECT_EQ(u[1], "mm");
  EXPECT_EQ(u[2], "zz");
  // per_ap sorted inside the point.
  EXPECT_EQ(db.points()[0].per_ap[0].bssid, "aa");
  EXPECT_EQ(db.points()[0].per_ap[1].bssid, "zz");
  // Index lookup.
  EXPECT_EQ(*db.bssid_index("mm"), 1u);
  EXPECT_FALSE(db.bssid_index("nope").has_value());
}

TEST(TrainingDatabase, DuplicateLocationRejected) {
  TrainingDatabase db;
  db.add_point(make_point("p1", {0, 0}, {}));
  EXPECT_THROW(db.add_point(make_point("p1", {5, 5}, {})),
               DatabaseError);
}

TEST(TrainingDatabase, FindAndNearest) {
  TrainingDatabase db;
  EXPECT_EQ(db.nearest_point({0, 0}), nullptr);
  db.add_point(make_point("sw", {0, 0}, {}));
  db.add_point(make_point("ne", {50, 40}, {}));
  EXPECT_EQ(db.find("sw"), &db.points()[0]);
  EXPECT_EQ(db.find("missing"), nullptr);
  EXPECT_EQ(db.nearest_point({5, 5})->location, "sw");
  EXPECT_EQ(db.nearest_point({45, 35})->location, "ne");
}

TEST(TrainingDatabase, SampleManagement) {
  TrainingDatabase db;
  ApStatistics with_samples = make_stats("aa", -50, 2);
  with_samples.samples_centi_dbm = {-5000, -5100, -4900};
  db.add_point(make_point("p", {0, 0}, {with_samples}));
  EXPECT_TRUE(db.has_samples());
  db.strip_samples();
  EXPECT_FALSE(db.has_samples());
  // Stats survive the strip.
  EXPECT_DOUBLE_EQ(db.points()[0].per_ap[0].mean_dbm, -50.0);
}

TEST(TrainingDatabase, SiteNameAndEquality) {
  TrainingDatabase a, b;
  a.set_site_name("house");
  b.set_site_name("house");
  EXPECT_EQ(a, b);
  b.add_point(make_point("p", {0, 0}, {}));
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace loctk::traindb

// Unit tests for loctk::geom::Vec2 and the free point helpers.

#include "geom/vec2.hpp"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

namespace loctk::geom {
namespace {

TEST(Vec2, DefaultIsOrigin) {
  const Vec2 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
}

TEST(Vec2, ArithmeticOperators) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -4.0};
  EXPECT_EQ(a + b, Vec2(4.0, -2.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Vec2(1.5, -2.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4.0, 6.0));
  v /= 4.0;
  EXPECT_EQ(v, Vec2(1.0, 1.5));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1.0, 0.0};
  const Vec2 b{0.0, 1.0};
  EXPECT_EQ(a.dot(b), 0.0);
  EXPECT_EQ(a.cross(b), 1.0);   // b is CCW of a
  EXPECT_EQ(b.cross(a), -1.0);  // a is CW of b
  EXPECT_EQ(a.dot(a), 1.0);
}

TEST(Vec2, NormAndNormalize) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  const Vec2 u = v.normalized();
  EXPECT_DOUBLE_EQ(u.norm(), 1.0);
  EXPECT_DOUBLE_EQ(u.x, 0.6);
  EXPECT_DOUBLE_EQ(u.y, 0.8);
}

TEST(Vec2, NormalizeZeroVectorIsZero) {
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Vec2, PerpIsCcwRotation) {
  const Vec2 v{1.0, 0.0};
  EXPECT_EQ(v.perp(), Vec2(0.0, 1.0));
  EXPECT_EQ(v.perp().perp(), -v);
  // perp is orthogonal for any vector.
  const Vec2 w{3.7, -2.2};
  EXPECT_DOUBLE_EQ(w.dot(w.perp()), 0.0);
}

TEST(Vec2, DistanceHelpers) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{6.0, 8.0};
  EXPECT_DOUBLE_EQ(distance(a, b), 10.0);
  EXPECT_DOUBLE_EQ(distance2(a, b), 100.0);
}

TEST(Vec2, LerpEndpointsAndMidpoint) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, -20.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), midpoint(a, b));
  EXPECT_EQ(midpoint(a, b), Vec2(5.0, -10.0));
}

TEST(Vec2, AlmostEqualTolerance) {
  const Vec2 a{1.0, 2.0};
  EXPECT_TRUE(almost_equal(a, {1.0 + 1e-12, 2.0 - 1e-12}));
  EXPECT_FALSE(almost_equal(a, {1.0 + 1e-6, 2.0}));
  EXPECT_TRUE(almost_equal(a, {1.01, 2.0}, 0.05));
}

TEST(Vec2, IsFinite) {
  EXPECT_TRUE(is_finite({1.0, 2.0}));
  EXPECT_FALSE(is_finite({std::nan(""), 0.0}));
  EXPECT_FALSE(is_finite({0.0, INFINITY}));
}

TEST(Vec2, StreamOutput) {
  std::ostringstream os;
  os << Vec2{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

// Property sweep: |a+b| <= |a| + |b| (triangle inequality) over a
// deterministic lattice of vectors.
class Vec2Property : public ::testing::TestWithParam<int> {};

TEST_P(Vec2Property, TriangleInequality) {
  const int i = GetParam();
  const Vec2 a{std::cos(i * 0.7) * i, std::sin(i * 1.3) * (i % 7)};
  const Vec2 b{std::sin(i * 0.31) * 3.0, std::cos(i * 0.17) * (i % 5)};
  EXPECT_LE((a + b).norm(), a.norm() + b.norm() + 1e-12);
}

TEST_P(Vec2Property, DotCrossPythagoras) {
  // dot^2 + cross^2 == |a|^2 |b|^2.
  const int i = GetParam();
  const Vec2 a{1.0 + i * 0.5, -2.0 + i * 0.25};
  const Vec2 b{3.0 - i * 0.125, 0.5 * i};
  const double lhs = a.dot(b) * a.dot(b) + a.cross(b) * a.cross(b);
  const double rhs = a.norm2() * b.norm2();
  EXPECT_NEAR(lhs, rhs, 1e-9 * std::max(1.0, rhs));
}

INSTANTIATE_TEST_SUITE_P(Lattice, Vec2Property, ::testing::Range(0, 25));

}  // namespace
}  // namespace loctk::geom

// loctk_conformance — the golden accuracy gates (ctest label:
// conformance).
//
// Pins the paper's §5 headline numbers as hard assertions so a kernel,
// ingest, or simulator change that silently shifts end-to-end accuracy
// fails CI instead of drifting a bench printout:
//
//  * §5.1: the probabilistic locator's mean valid-estimation rate over
//    the 20 bench rerun seeds must sit in the 50-75% band around the
//    paper's reported 60% (seed measurement: 53% ± 11%);
//  * §5.2: the geometric locator's mean deviation over its 20 rerun
//    seeds must sit in the ~15 ft paper band (seed measurement:
//    11.9 ± 1.0 ft), and the probabilistic locator must beat it — the
//    paper's motivation for fingerprinting;
//  * a recorded scenario trace must replay bit-for-bit, twice, with
//    identical deterministic run reports;
//  * the differential oracle must show zero compiled-vs-reference
//    estimate mismatches across all locators on that trace.

#include <gtest/gtest.h>

#include "core/probabilistic.hpp"
#include "testkit/differential.hpp"
#include "testkit/golden.hpp"
#include "testkit/scenario.hpp"
#include "testkit/soak.hpp"
#include "testkit/trace.hpp"

namespace loctk::testkit {
namespace {

/// One shared golden run for the whole suite (it reruns ~60 paper
/// experiments; recomputing per test would triple the suite time).
const PaperGoldenSummary& golden() {
  static const PaperGoldenSummary summary = run_paper_golden(20);
  return summary;
}

/// The same golden run with coarse-to-fine pruning enabled on every
/// probabilistic locator. The paper house's 10-ft survey grid yields
/// only a dozen training points, so top_k must sit below that for the
/// prefilter to genuinely prune (a third of the rows skip exact
/// scoring) rather than degrade to the full pass.
const PaperGoldenSummary& pruned_golden() {
  static const PaperGoldenSummary summary = [] {
    core::ProbabilisticConfig config;
    config.prune_top_k = 8;
    config.prune_strongest_aps = 4;
    return run_paper_golden(20, config);
  }();
  return summary;
}

TEST(ConformancePaper, Sec51ValidRateInPaperBand) {
  const PaperGoldenSummary& g = golden();
  EXPECT_TRUE(kSec51ValidRateBand.contains(g.sec51_valid_rate))
      << "valid-estimation rate " << g.sec51_valid_rate << " outside ["
      << kSec51ValidRateBand.lo << ", " << kSec51ValidRateBand.hi << "]";
}

TEST(ConformancePaper, Sec52GeometricDeviationInPaperBand) {
  const PaperGoldenSummary& g = golden();
  EXPECT_TRUE(kSec52MeanErrorBandFt.contains(g.sec52_mean_error_ft))
      << "geometric mean deviation " << g.sec52_mean_error_ft
      << " ft outside [" << kSec52MeanErrorBandFt.lo << ", "
      << kSec52MeanErrorBandFt.hi << "]";
}

TEST(ConformancePaper, ProbabilisticBeatsGeometric) {
  // The paper's fingerprinting-wins crossover, on identical
  // observations (seed measurement: 8.8 ft vs 11.9 ft).
  const PaperGoldenSummary& g = golden();
  EXPECT_LT(g.sec52_probabilistic_mean_error_ft, g.sec52_mean_error_ft);
}

TEST(ConformancePaper, Sec51MeanErrorStaysReasonable) {
  // Not a paper headline, but a cheap tripwire: the probabilistic
  // locator's mean error collapsing or exploding flags a kernel bug
  // even when the valid-rate band happens to hold.
  const PaperGoldenSummary& g = golden();
  EXPECT_GT(g.sec51_mean_error_ft, 2.0);
  EXPECT_LT(g.sec51_mean_error_ft, 15.0);
}

TEST(ConformanceReplay, TraceReplaysBitForBitWithIdenticalReports) {
  const ScenarioSpec spec = ScenarioSpec::fleet(8, 30, /*seed=*/90);
  const Scenario scenario(spec);

  // Recording twice yields identical bytes...
  const ScanTrace trace = scenario.record_trace();
  const std::string bytes = encode_trace(trace);
  EXPECT_EQ(encode_trace(scenario.record_trace()), bytes);

  // ...and a decoded copy is the same workload as the original.
  const Result<ScanTrace> decoded = try_decode_trace(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();

  const core::ProbabilisticLocator locator(scenario.database());
  const SoakResult from_original = run_fleet_soak(trace, locator);
  const SoakResult from_decoded = run_fleet_soak(decoded.value(), locator);
  EXPECT_TRUE(from_original.ok());
  EXPECT_TRUE(from_decoded.ok());
  EXPECT_EQ(from_original.report, from_decoded.report);
  EXPECT_EQ(from_original.report.to_json(), from_decoded.report.to_json());
}

TEST(ConformancePaper, PrunedLocatorStaysInGoldenBands) {
  // The coarse-to-fine pruner must not buy its speed with accuracy:
  // the pruned probabilistic locator reruns the §5.1/§5.2 experiments
  // and must land in the same golden bands as the exhaustive sweep.
  const PaperGoldenSummary& g = pruned_golden();
  EXPECT_TRUE(kSec51ValidRateBand.contains(g.sec51_valid_rate))
      << "pruned valid-estimation rate " << g.sec51_valid_rate
      << " outside [" << kSec51ValidRateBand.lo << ", "
      << kSec51ValidRateBand.hi << "]";
  EXPECT_GT(g.sec51_mean_error_ft, 2.0);
  EXPECT_LT(g.sec51_mean_error_ft, 15.0);
  EXPECT_LT(g.sec52_probabilistic_mean_error_ft, g.sec52_mean_error_ft);
}

TEST(ConformanceDifferential, ZeroMismatchesAcrossAllLocators) {
  const Scenario scenario(ScenarioSpec::fleet(8, 30, /*seed=*/91));
  const auto observations =
      observations_from_trace(scenario.record_trace(), 8);
  ASSERT_FALSE(observations.empty());
  // keep_samples is on in single-site scenarios, so all 6 locator
  // pairs run (probabilistic, place recognition, histogram, nnss,
  // knn-3, ssd).
  const DifferentialReport report =
      run_differential_oracle(scenario.database(), observations);
  EXPECT_EQ(report.comparisons, observations.size() * 6);
  EXPECT_TRUE(report.ok()) << report.to_text();
}

TEST(ConformanceDifferential, PrunedPathZeroTop1Disagreements) {
  // The coarse-to-fine pruner scores candidates with the exact
  // kernel, so any top-1 disagreement means the true winner was
  // pruned out of the candidate set — conformance demands none on a
  // fleet-scale trace. k-NN is the stricter twin: its position is a
  // weighted average over all k neighbors, so the candidate set must
  // recall every one of the true top-3, not just the winner.
  const Scenario scenario(ScenarioSpec::fleet(8, 30, /*seed=*/92,
                                              SiteModel::kOfficeFloor));
  const auto observations =
      observations_from_trace(scenario.record_trace(), 8);
  ASSERT_FALSE(observations.empty());
  core::ProbabilisticConfig prune_config;
  prune_config.prune_top_k = 24;
  prune_config.prune_strongest_aps = 4;
  const PrunedDifferentialReport report = run_pruned_differential(
      scenario.database(), observations, prune_config);
  EXPECT_EQ(report.compared, observations.size() * 2);
  EXPECT_TRUE(report.ok()) << report.to_text();
  EXPECT_EQ(report.agreement_rate(), 1.0);
}

}  // namespace
}  // namespace loctk::testkit

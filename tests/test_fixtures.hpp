#pragma once

// Shared fixtures for the core-algorithm tests: a small analytic
// radio model whose likelihood structure is predictable by hand, plus
// helpers to build databases/observations from it.

#include <cmath>
#include <string>
#include <vector>

#include "core/observation.hpp"
#include "geom/vec2.hpp"
#include "traindb/database.hpp"

namespace loctk::testing {

// Four synthetic "APs" at the corners of a 40x40 area with an exact
// log-distance law (no noise, no walls). Everything downstream of the
// training database sees only numbers, so this tiny analytic model
// exercises the locators deterministically.
inline const std::vector<std::string>& fixture_bssids() {
  static const std::vector<std::string> ids = {
      "fx:00", "fx:01", "fx:02", "fx:03"};
  return ids;
}

inline const std::vector<geom::Vec2>& fixture_ap_positions() {
  static const std::vector<geom::Vec2> pos = {
      {0.0, 0.0}, {40.0, 0.0}, {40.0, 40.0}, {0.0, 40.0}};
  return pos;
}

inline double fixture_mean_rssi(std::size_t ap, geom::Vec2 p) {
  const double d =
      std::max(1.0, geom::distance(fixture_ap_positions()[ap], p));
  return -30.0 - 25.0 * std::log10(d);
}

// Training database on a grid with the analytic means and a fixed
// sigma. `spacing` defaults to 10 ft over [0, 40]^2.
inline traindb::TrainingDatabase make_fixture_db(double spacing = 10.0,
                                                 double sigma = 2.0,
                                                 bool keep_samples = false) {
  traindb::TrainingDatabase db;
  db.set_site_name("fixture");
  for (double y = 0.0; y <= 40.0; y += spacing) {
    for (double x = 0.0; x <= 40.0; x += spacing) {
      traindb::TrainingPoint p;
      p.location = "g" + std::to_string(static_cast<int>(x)) + "-" +
                   std::to_string(static_cast<int>(y));
      p.position = {x, y};
      for (std::size_t a = 0; a < fixture_bssids().size(); ++a) {
        traindb::ApStatistics s;
        s.bssid = fixture_bssids()[a];
        s.mean_dbm = fixture_mean_rssi(a, p.position);
        s.stddev_db = sigma;
        s.sample_count = 90;
        s.scan_count = 90;
        s.min_dbm = s.mean_dbm - 3.0 * sigma;
        s.max_dbm = s.mean_dbm + 3.0 * sigma;
        if (keep_samples) {
          // Deterministic triangular spread around the mean.
          for (int k = 0; k < 30; ++k) {
            const double off = ((k % 7) - 3) * sigma / 2.0;
            s.samples_centi_dbm.push_back(static_cast<std::int32_t>(
                std::lround((s.mean_dbm + off) * 100.0)));
          }
        }
        p.per_ap.push_back(std::move(s));
      }
      db.add_point(std::move(p));
    }
  }
  return db;
}

// Observation carrying the exact analytic means at `p` (optionally
// offset), i.e. a noiseless working-phase reading.
inline core::Observation fixture_observation(geom::Vec2 p,
                                             double offset_db = 0.0) {
  std::vector<radio::ScanRecord> scans(1);
  scans[0].timestamp_s = 0.0;
  for (std::size_t a = 0; a < fixture_bssids().size(); ++a) {
    scans[0].samples.push_back(
        {fixture_bssids()[a], fixture_mean_rssi(a, p) + offset_db, 1});
  }
  return core::Observation::from_scans(scans);
}

}  // namespace loctk::testing

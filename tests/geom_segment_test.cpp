// Unit tests for segment predicates — these back the wall-crossing
// counts in the radio environment, so the edge cases matter.

#include "geom/segment.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace loctk::geom {
namespace {

TEST(Segment, LengthAndDirection) {
  const Segment s{{0.0, 0.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(s.length(), 5.0);
  EXPECT_DOUBLE_EQ(s.length2(), 25.0);
  EXPECT_EQ(s.direction(), Vec2(3.0, 4.0));
  EXPECT_EQ(s.point_at(0.5), Vec2(1.5, 2.0));
}

TEST(Orientation, Signs) {
  EXPECT_GT(orientation({0, 0}, {1, 0}, {1, 1}), 0.0);  // CCW
  EXPECT_LT(orientation({0, 0}, {1, 0}, {1, -1}), 0.0);  // CW
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {2, 0}), 0.0);   // collinear
}

TEST(OnSegment, InteriorEndpointsOutside) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_TRUE(on_segment(s, {5.0, 0.0}));
  EXPECT_TRUE(on_segment(s, {0.0, 0.0}));
  EXPECT_TRUE(on_segment(s, {10.0, 0.0}));
  EXPECT_FALSE(on_segment(s, {11.0, 0.0}));   // past the end
  EXPECT_FALSE(on_segment(s, {5.0, 0.001}));  // off the line
}

TEST(SegmentsIntersect, ProperCrossing) {
  const Segment a{{0.0, 0.0}, {10.0, 10.0}};
  const Segment b{{0.0, 10.0}, {10.0, 0.0}};
  EXPECT_TRUE(segments_intersect(a, b));
}

TEST(SegmentsIntersect, DisjointParallel) {
  const Segment a{{0.0, 0.0}, {10.0, 0.0}};
  const Segment b{{0.0, 1.0}, {10.0, 1.0}};
  EXPECT_FALSE(segments_intersect(a, b));
}

TEST(SegmentsIntersect, TouchingEndpointCounts) {
  const Segment a{{0.0, 0.0}, {5.0, 5.0}};
  const Segment b{{5.0, 5.0}, {10.0, 0.0}};
  EXPECT_TRUE(segments_intersect(a, b));
}

TEST(SegmentsIntersect, TShapeTouch) {
  const Segment a{{0.0, 0.0}, {10.0, 0.0}};
  const Segment b{{5.0, 0.0}, {5.0, 5.0}};
  EXPECT_TRUE(segments_intersect(a, b));
}

TEST(SegmentsIntersect, CollinearOverlap) {
  const Segment a{{0.0, 0.0}, {10.0, 0.0}};
  const Segment b{{5.0, 0.0}, {15.0, 0.0}};
  EXPECT_TRUE(segments_intersect(a, b));
}

TEST(SegmentsIntersect, CollinearDisjoint) {
  const Segment a{{0.0, 0.0}, {4.0, 0.0}};
  const Segment b{{5.0, 0.0}, {9.0, 0.0}};
  EXPECT_FALSE(segments_intersect(a, b));
}

TEST(SegmentsIntersect, AlmostTouchingMisses) {
  const Segment a{{0.0, 0.0}, {10.0, 0.0}};
  const Segment b{{5.0, 0.01}, {5.0, 5.0}};
  EXPECT_FALSE(segments_intersect(a, b));
}

TEST(SegmentIntersection, CrossingPoint) {
  const Segment a{{0.0, 0.0}, {10.0, 10.0}};
  const Segment b{{0.0, 10.0}, {10.0, 0.0}};
  const auto p = segment_intersection(a, b);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(almost_equal(*p, {5.0, 5.0}));
}

TEST(SegmentIntersection, ParallelReturnsNullopt) {
  const Segment a{{0.0, 0.0}, {10.0, 0.0}};
  const Segment b{{0.0, 1.0}, {10.0, 1.0}};
  EXPECT_FALSE(segment_intersection(a, b).has_value());
}

TEST(SegmentIntersection, NonOverlappingLinesCross) {
  // The infinite lines cross at (5, 5), outside both segments.
  const Segment a{{0.0, 0.0}, {2.0, 2.0}};
  const Segment b{{10.0, 0.0}, {6.0, 4.0}};
  EXPECT_FALSE(segment_intersection(a, b).has_value());
}

TEST(ClosestPoint, ProjectsAndClamps) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_EQ(closest_point_on_segment({5.0, 3.0}, s), Vec2(5.0, 0.0));
  EXPECT_EQ(closest_point_on_segment({-2.0, 3.0}, s), Vec2(0.0, 0.0));
  EXPECT_EQ(closest_point_on_segment({14.0, -1.0}, s), Vec2(10.0, 0.0));
}

TEST(ClosestPoint, DegenerateSegment) {
  const Segment s{{3.0, 3.0}, {3.0, 3.0}};
  EXPECT_EQ(closest_point_on_segment({0.0, 0.0}, s), Vec2(3.0, 3.0));
  EXPECT_DOUBLE_EQ(point_segment_distance({0.0, 3.0}, s), 3.0);
}

TEST(PointSegmentDistance, Values) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_DOUBLE_EQ(point_segment_distance({5.0, 4.0}, s), 4.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({13.0, 4.0}, s), 5.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({7.0, 0.0}, s), 0.0);
}

// Property: for crossing segments, the reported intersection lies on
// both segments.
class CrossingSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrossingSweep, IntersectionLiesOnBoth) {
  const int i = GetParam();
  const double angle = 0.1 + 0.12 * i;
  // A spoke through (5,5) against a fixed horizontal bar.
  const Segment bar{{0.0, 5.0}, {10.0, 5.0}};
  const Vec2 dir{std::cos(angle), std::sin(angle)};
  const Segment spoke{Vec2{5.0, 5.0} - dir * 6.0, Vec2{5.0, 5.0} + dir * 6.0};
  ASSERT_TRUE(segments_intersect(bar, spoke));
  const auto p = segment_intersection(bar, spoke);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(on_segment(bar, *p, 1e-7));
  EXPECT_TRUE(on_segment(spoke, *p, 1e-7));
}

INSTANTIATE_TEST_SUITE_P(Angles, CrossingSweep, ::testing::Range(0, 24));

}  // namespace
}  // namespace loctk::geom

// site_survey: the full toolkit workflow on disk, end to end.
//
//   $ ./site_survey [output-dir] [--stats]   (default ./survey-out)
//
// --stats dumps the process metrics snapshot to stderr at the end —
// each pipeline step runs under a TraceSpan, so the snapshot shows
// where the wall time went (trace.survey.*) next to the ingest and
// locate counters.
//
// This is the paper's intro scenario — bringing a new building online:
//  1. produce the floor plan and annotate it (Floor Plan Processor);
//  2. walk the site collecting wi-scan files (the training survey);
//  3. run the Training Database Generator over the files + location
//     map, write the compressed .ltdb;
//  4. locate test observations and render the composited evaluation
//     image (Floor Plan Compositor).
// Every intermediate artifact is a real file you can inspect.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>

#include "base/metrics.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "core/probabilistic.hpp"
#include "floorplan/compositor.hpp"
#include "floorplan/processor.hpp"
#include "image/codec_bmp.hpp"
#include "traindb/codec.hpp"
#include "traindb/generator.hpp"
#include "wiscan/survey.hpp"

using namespace loctk;
namespace fs = std::filesystem;

int main(int argc, char** argv) {
  fs::path out = "survey-out";
  bool stats = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else {
      out = argv[i];
    }
  }
  fs::create_directories(out);
  std::printf("writing artifacts under %s/\n", out.string().c_str());

  // --- Step 1: the annotated floor plan --------------------------------
  std::optional<metrics::TraceSpan> span;
  span.emplace("survey.floorplan");
  core::Testbed testbed(radio::make_paper_house());
  floorplan::FloorPlan plan =
      floorplan::render_environment(testbed.environment(), 10.0);
  const wiscan::LocationMap grid =
      core::make_training_grid(testbed.environment().footprint(), 10.0);
  for (const auto& loc : grid.locations()) {
    plan.add_place(loc.name, plan.to_pixel(loc.position));
  }
  floorplan::FloorPlanProcessor processor(std::move(plan));
  processor.save(out / "house.ppm");
  std::printf("1. floor plan: house.ppm + house.fpa (%zu APs, %zu places)\n",
              processor.plan().access_points().size(),
              processor.plan().places().size());

  // --- Step 2: the training survey -> wi-scan files ---------------------
  span.emplace("survey.collect");
  radio::Scanner scanner = testbed.make_scanner(2024);
  wiscan::SurveyConfig survey_cfg;
  survey_cfg.scans_per_location = 90;
  wiscan::SurveyCampaign campaign(scanner, survey_cfg);
  campaign.run_to_directory(grid, out / "scans");
  grid.write(out / "house.locmap");
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(out / "scans")) {
    files += e.is_regular_file();
  }
  std::printf("2. survey: %zu wi-scan files + house.locmap\n", files);

  // --- Step 3: the Training Database Generator --------------------------
  span.emplace("survey.traindb");
  traindb::GeneratorReport report;
  const traindb::TrainingDatabase db = traindb::generate_database_from_path(
      out / "scans", out / "house.locmap", {}, &report);
  traindb::write_database(out / "house.ltdb", db);
  std::printf("3. training db: house.ltdb (%zu points, %zu bytes)\n",
              db.size(), fs::file_size(out / "house.ltdb"));
  if (!report.unmapped_locations.empty() ||
      !report.unsurveyed_locations.empty()) {
    std::printf("   WARNING: %zu unmapped, %zu unsurveyed locations\n",
                report.unmapped_locations.size(),
                report.unsurveyed_locations.size());
  }

  // --- Step 4: locate + composite ---------------------------------------
  span.emplace("survey.evaluate");
  const auto truths = core::make_scattered_test_points(
      testbed.environment().footprint(), 13);
  const auto observations = testbed.observe(truths, 90, 2025);
  const core::ProbabilisticLocator locator(db);
  const auto result = core::evaluate(locator, db, truths, observations);

  std::vector<floorplan::EvaluatedPoint> points;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    if (!result.outcomes[i].estimate.valid) continue;
    points.push_back({result.outcomes[i].truth,
                      result.outcomes[i].estimate.position,
                      "t" + std::to_string(i + 1)});
  }
  floorplan::CompositorOptions opts;
  opts.title = "site survey: actual (+) vs estimated (x)";
  const image::Raster img =
      floorplan::composite_evaluation(processor.plan(), points, opts);
  image::write_image(out / "evaluation.ppm", img);
  image::write_image(out / "evaluation.bmp", img);
  std::printf("4. evaluation.ppm/.bmp: %zu points, %.0f%% valid cells, "
              "mean error %.1f ft\n",
              points.size(), 100.0 * result.valid_estimation_rate(),
              result.mean_error_ft());
  span.reset();  // close the last span before snapshotting

  if (stats) {
    std::fprintf(stderr, "%s",
                 metrics::MetricsRegistry::global()
                     .snapshot()
                     .to_text()
                     .c_str());
  }
  return 0;
}

# Smoke-test runner for example binaries (docs/TESTING.md, "smoke").
#
# usage:
#   cmake -DTOOL=<binary> [-DARGS=<a|b|c>] -DEXPECT=<regex>
#         [-DWORKDIR=<dir>] -P smoke_test.cmake
#
# Runs the tool, then fails unless BOTH the exit code is 0 AND the
# combined stdout/stderr matches EXPECT. (A bare ctest
# PASS_REGULAR_EXPRESSION would stop checking the exit code; the
# examples must keep doing both.)

if(NOT DEFINED TOOL OR NOT DEFINED EXPECT)
  message(FATAL_ERROR "smoke_test.cmake needs -DTOOL and -DEXPECT")
endif()

set(args)
if(DEFINED ARGS AND NOT ARGS STREQUAL "")
  string(REPLACE "|" ";" args "${ARGS}")
endif()

if(NOT DEFINED WORKDIR OR WORKDIR STREQUAL "")
  set(WORKDIR ".")
endif()
file(MAKE_DIRECTORY "${WORKDIR}")

execute_process(
  COMMAND "${TOOL}" ${args}
  WORKING_DIRECTORY "${WORKDIR}"
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)

message("${out}${err}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${TOOL} exited with ${rc}")
endif()
if(NOT "${out}${err}" MATCHES "${EXPECT}")
  message(FATAL_ERROR "output of ${TOOL} did not match \"${EXPECT}\"")
endif()

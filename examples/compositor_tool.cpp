// compositor_tool — the paper's Floor Plan Compositor (§4.2) as a CLI.
//
// "The Floor Plan Compositor creates images from a floor plan and
// marks the image with locations out of user-given coordinate values.
// The coordinate values are given in the Dos command that invokes the
// Floor Plan Compositor."
//
//   compositor_tool <plan.fpa> <out.ppm|bmp> mark  <x> <y> [<x> <y> ...]
//   compositor_tool <plan.fpa> <out.ppm|bmp> pairs <tx> <ty> <ex> <ey> ...
//
// `mark` draws red crosses at world coordinates (feet); `pairs` draws
// truth/estimate pairs with error whiskers — the paper's algorithm-
// testing use case.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "floorplan/compositor.hpp"
#include "floorplan/processor.hpp"
#include "image/codec_bmp.hpp"

using namespace loctk;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  compositor_tool <plan.fpa> <out.ppm|bmp> mark  <x> <y> [...]\n"
      "  compositor_tool <plan.fpa> <out.ppm|bmp> pairs <tx> <ty> <ex> "
      "<ey> [...]\n"
      "coordinates are world feet in the plan's calibrated frame\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 6) return usage();
  const std::string mode = argv[3];

  std::vector<double> coords;
  for (int i = 4; i < argc; ++i) {
    coords.push_back(std::strtod(argv[i], nullptr));
  }

  try {
    const auto proc = floorplan::FloorPlanProcessor::load(argv[1]);
    const floorplan::FloorPlan& plan = proc.plan();
    if (!plan.calibrated()) {
      std::fprintf(stderr,
                   "error: plan is not calibrated (set scale and origin "
                   "with floorplan_tool first)\n");
      return 1;
    }

    image::Raster img;
    if (mode == "mark") {
      if (coords.size() < 2 || coords.size() % 2 != 0) return usage();
      std::vector<floorplan::Mark> marks;
      for (std::size_t i = 0; i + 1 < coords.size(); i += 2) {
        marks.push_back({{coords[i], coords[i + 1]},
                         image::MarkerShape::kCross,
                         image::colors::kRed,
                         "p" + std::to_string(i / 2 + 1)});
      }
      img = floorplan::Compositor(plan).render(marks);
      std::printf("marked %zu locations\n", marks.size());
    } else if (mode == "pairs") {
      if (coords.size() < 4 || coords.size() % 4 != 0) return usage();
      std::vector<floorplan::EvaluatedPoint> points;
      for (std::size_t i = 0; i + 3 < coords.size(); i += 4) {
        points.push_back({{coords[i], coords[i + 1]},
                          {coords[i + 2], coords[i + 3]},
                          "t" + std::to_string(i / 4 + 1)});
      }
      img = floorplan::composite_evaluation(plan, points);
      double total = 0.0;
      for (const auto& p : points) {
        total += geom::distance(p.truth, p.estimate);
      }
      std::printf("composited %zu pairs, mean deviation %.1f ft\n",
                  points.size(),
                  total / static_cast<double>(points.size()));
    } else {
      return usage();
    }
    image::write_image(argv[2], img);
    std::printf("wrote %s (%dx%d)\n", argv[2], img.width(), img.height());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

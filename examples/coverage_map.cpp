// coverage_map: visualize the radio landscape of a site.
//
//   $ ./coverage_map [output-dir]     (default ./coverage-out)
//
// Writes, for the paper's experiment house:
//   coverage_<AP>.ppm   — per-AP mean-RSSI heat map (propagation truth)
//   coverage_best.ppm   — strongest-AP power at every point
//   radiomap_<AP>.ppm   — the *trained* radio map: the same field as
//                         the toolkit knows it, IDW-interpolated from
//                         the training database (compare against the
//                         truth map to see what 12 survey points buy)
//   likelihood.ppm      — the 5.1 likelihood surface for one test
//                         observation (where the locator "thinks" the
//                         client is)
// This is the toolkit-expansion direction of the paper's §6 item 4.

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "core/pipeline.hpp"
#include "core/signal_field.hpp"
#include "floorplan/heatmap.hpp"
#include "image/codec_bmp.hpp"

using namespace loctk;
namespace fs = std::filesystem;

int main(int argc, char** argv) {
  const fs::path out = argc > 1 ? argv[1] : "coverage-out";
  fs::create_directories(out);

  core::Testbed testbed(radio::make_paper_house());
  const auto& env = testbed.environment();
  const radio::Propagation& prop = testbed.propagation();

  // Per-AP truth coverage.
  for (std::size_t i = 0; i < env.access_points().size(); ++i) {
    floorplan::HeatmapOptions opts;
    opts.title = "coverage: AP " + env.access_points()[i].name +
                 " mean RSSI (dBm)";
    const image::Raster img = floorplan::render_field_heatmap(
        env, [&](geom::Vec2 w) { return prop.mean_rssi_dbm(i, w); },
        opts);
    image::write_image(
        out / ("coverage_" + env.access_points()[i].name + ".ppm"), img);
  }

  // Best-server map.
  {
    floorplan::HeatmapOptions opts;
    opts.title = "coverage: strongest AP (dBm)";
    const image::Raster img = floorplan::render_field_heatmap(
        env,
        [&](geom::Vec2 w) {
          double best = -200.0;
          for (std::size_t i = 0; i < env.access_points().size(); ++i) {
            best = std::max(best, prop.mean_rssi_dbm(i, w));
          }
          return best;
        },
        opts);
    image::write_image(out / "coverage_best.ppm", img);
  }

  // Trained radio map (what the toolkit actually knows).
  const auto grid = core::make_training_grid(env.footprint(), 10.0);
  const auto db = testbed.train(grid, 90, 31);
  const core::SignalField field(db);
  for (const auto& ap : env.access_points()) {
    floorplan::HeatmapOptions opts;
    opts.title = "trained radio map: AP " + ap.name + " (IDW of " +
                 std::to_string(db.size()) + " survey points)";
    const image::Raster img = floorplan::render_field_heatmap(
        env,
        [&](geom::Vec2 w) {
          const auto s = field.sample(ap.bssid, w);
          return s ? s->mean_dbm : -100.0;
        },
        opts);
    image::write_image(out / ("radiomap_" + ap.name + ".ppm"), img);
  }

  // Likelihood surface for one observation.
  {
    const geom::Vec2 truth{33.0, 14.0};
    const core::Observation obs = testbed.observe({truth}, 90, 32)[0];
    floorplan::HeatmapOptions opts;
    opts.lo_value = -60.0;  // log-likelihood range
    opts.hi_value = -5.0;
    opts.title = "5.1 log-likelihood surface, client at (33,14)";
    const image::Raster img = floorplan::render_field_heatmap(
        env,
        [&](geom::Vec2 w) { return field.log_likelihood(obs, w); }, opts);
    image::write_image(out / "likelihood.ppm", img);
  }

  std::printf("wrote %zu heat maps under %s/\n",
              2 * env.access_points().size() + 2, out.string().c_str());
  std::printf("compare coverage_<AP>.ppm (truth) with radiomap_<AP>.ppm\n"
              "(what the 12-point survey reconstructs).\n");
  return 0;
}

// office_deployment: the deployment playbook for a bigger site.
//
//   $ ./office_deployment [output-dir]    (default ./office-out)
//
// Bringing a 120x80 ft office floor online with the toolkit:
//  1. plan where to install 6 APs (placement planner, from walls and
//     distance decay alone — nothing is deployed yet);
//  2. install them (here: instantiate the environment) and render the
//     predicted coverage map;
//  3. survey a 10-ft grid and build the training database;
//  4. evaluate against scattered test points and report both the
//     fingerprint and fine-grid locators.
// Everything a site engineer would look at lands in the output dir.

#include <cstdio>
#include <filesystem>

#include "core/evaluation.hpp"
#include "core/grid_locator.hpp"
#include "core/pipeline.hpp"
#include "core/placement.hpp"
#include "core/probabilistic.hpp"
#include "floorplan/heatmap.hpp"
#include "image/codec_bmp.hpp"
#include "traindb/codec.hpp"

using namespace loctk;
namespace fs = std::filesystem;

int main(int argc, char** argv) {
  const fs::path out = argc > 1 ? argv[1] : "office-out";
  fs::create_directories(out);

  // The bare site: office walls, no APs yet.
  const radio::Environment office = radio::make_office_floor(0);

  // --- 1. plan the deployment ------------------------------------------
  const auto candidates =
      core::candidate_lattice(office.footprint(), 10.0, 4.0);
  const core::PlacementResult plan =
      core::plan_ap_placement(office, candidates, 6);
  std::vector<geom::Vec2> ap_positions;
  for (const std::size_t i : plan.chosen) {
    ap_positions.push_back(candidates[i]);
  }
  std::printf("1. planned 6 APs (aliasing separation %.1f dB min / %.1f "
              "dB mean):\n   ",
              plan.min_separation_db, plan.mean_separation_db);
  for (const geom::Vec2 p : ap_positions) {
    std::printf(" (%.0f,%.0f)", p.x, p.y);
  }
  std::printf("\n");

  // --- 2. install + predicted coverage ----------------------------------
  core::Testbed testbed(core::with_aps(office, ap_positions));
  const radio::Propagation& prop = testbed.propagation();
  floorplan::HeatmapOptions hm;
  hm.pixels_per_foot = 5.0;
  hm.title = "office: strongest-AP coverage (planned deployment)";
  const image::Raster coverage = floorplan::render_field_heatmap(
      testbed.environment(),
      [&](geom::Vec2 w) {
        double best = -200.0;
        for (std::size_t i = 0; i < ap_positions.size(); ++i) {
          best = std::max(best, prop.mean_rssi_dbm(i, w));
        }
        return best;
      },
      hm);
  image::write_image(out / "coverage.ppm", coverage);
  std::printf("2. coverage.ppm (%dx%d)\n", coverage.width(),
              coverage.height());

  // --- 3. survey + training database -------------------------------------
  const auto grid =
      core::make_training_grid(testbed.environment().footprint(), 10.0);
  const traindb::TrainingDatabase db = testbed.train(grid, 60, 7);
  traindb::write_database(out / "office.ltdb", db);
  std::printf("3. surveyed %zu points -> office.ltdb (%zu bytes)\n",
              db.size(), fs::file_size(out / "office.ltdb"));

  // --- 4. acceptance evaluation -----------------------------------------
  const auto truths = core::make_scattered_test_points(
      testbed.environment().footprint(), 25);
  const auto observations = testbed.observe(truths, 30, 8);

  const core::ProbabilisticLocator prob(db);
  const auto pr = core::evaluate(prob, db, truths, observations);
  core::GridLocatorConfig grid_cfg;
  grid_cfg.grid_pitch_ft = 3.0;
  const core::GridLocator fine(db, testbed.environment().footprint(),
                               grid_cfg);
  const auto fr = core::evaluate(fine, db, truths, observations);

  std::printf("4. acceptance over %zu test points:\n", truths.size());
  std::printf("   %-18s mean %5.1f ft   median %5.1f ft   p90 %5.1f ft\n",
              prob.name().c_str(), pr.mean_error_ft(),
              pr.median_error_ft(), pr.p90_error_ft());
  std::printf("   %-18s mean %5.1f ft   median %5.1f ft   p90 %5.1f ft\n",
              fine.name().c_str(), fr.mean_error_ft(),
              fr.median_error_ft(), fr.p90_error_ft());
  return 0;
}

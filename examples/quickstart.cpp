// Quickstart: train the toolkit on a simulated site and locate a
// client — the paper's two-phase process in ~40 lines.
//
//   $ ./quickstart
//
// Phase 1 (training): survey named locations, build the training
// database. Phase 2 (working): observe signal strength somewhere and
// ask every locator where the client is.

#include <cstdio>

#include "core/evaluation.hpp"
#include "core/geometric.hpp"
#include "core/pipeline.hpp"
#include "core/probabilistic.hpp"

using namespace loctk;

int main() {
  // The simulated deployment: the paper's 50x40 ft house with four
  // corner APs (swap in your own radio::Environment for other sites).
  core::Testbed testbed(radio::make_paper_house());

  // Phase 1 — train on a 10-ft survey grid, ~90 scans per point.
  const wiscan::LocationMap grid =
      core::make_training_grid(testbed.environment().footprint(), 10.0);
  const traindb::TrainingDatabase db = testbed.train(grid, 90, /*seed=*/1);
  std::printf("trained %zu points against %zu APs\n", db.size(),
              db.bssid_universe().size());

  // Phase 2 — the client stands at (17, 26) and scans for a while.
  const geom::Vec2 truth{17.0, 26.0};
  const core::Observation obs = testbed.observe({truth}, 90, /*seed=*/2)[0];

  const core::ProbabilisticLocator probabilistic(db);
  const core::GeometricLocator geometric(db, testbed.environment());
  for (const core::Locator* locator :
       {static_cast<const core::Locator*>(&probabilistic),
        static_cast<const core::Locator*>(&geometric)}) {
    const core::LocationEstimate est = locator->locate(obs);
    std::printf("%-18s -> (%5.1f, %5.1f) ft", locator->name().c_str(),
                est.position.x, est.position.y);
    if (!est.location_name.empty()) {
      std::printf("  cell \"%s\"", est.location_name.c_str());
    }
    std::printf("  error %.1f ft\n", geom::distance(est.position, truth));
  }
  std::printf("client actually stood at (%.1f, %.1f) ft\n", truth.x,
              truth.y);
  return 0;
}

// traindb_tool — the paper's Training Database Generator (§4.3) as a
// CLI, plus an inspector.
//
// "The Training Database Generator requires two pieces of
// information: a collection of wi-scan files and a location map."
// The collection argument is "a string representing either the name
// of a directory containing the wi-scan files or a zip file" — here a
// directory tree or a `.lar` archive.
//
//   traindb_tool generate <scans-dir | scans.lar> <map.locmap> <out.ltdb>
//                [--keep-samples] [--min-samples N] [--site NAME]
//   traindb_tool info <db.ltdb>
//   traindb_tool pack <scans-dir> <out.lar>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "traindb/codec.hpp"
#include "traindb/generator.hpp"
#include "wiscan/archive.hpp"

using namespace loctk;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  traindb_tool generate <scans-dir|scans.lar> <map.locmap> "
      "<out.ltdb>\n"
      "               [--keep-samples] [--min-samples N] [--site NAME]\n"
      "  traindb_tool info <db.ltdb>\n"
      "  traindb_tool pack <scans-dir> <out.lar>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];

  try {
    if (cmd == "generate") {
      if (argc < 5) return usage();
      traindb::GeneratorConfig cfg;
      for (int i = 5; i < argc; ++i) {
        if (std::strcmp(argv[i], "--keep-samples") == 0) {
          cfg.keep_samples = true;
        } else if (std::strcmp(argv[i], "--min-samples") == 0 &&
                   i + 1 < argc) {
          cfg.min_samples_per_ap =
              static_cast<std::uint32_t>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--site") == 0 && i + 1 < argc) {
          cfg.site_name = argv[++i];
        } else {
          return usage();
        }
      }
      traindb::GeneratorReport report;
      const traindb::TrainingDatabase db =
          traindb::generate_database_from_path(argv[2], argv[3], cfg,
                                               &report);
      traindb::write_database(argv[4], db);
      std::printf("generated %s: %zu points, %zu BSSIDs\n", argv[4],
                  db.size(), db.bssid_universe().size());
      for (const auto& loc : report.unmapped_locations) {
        std::printf("  warning: surveyed but not in map: %s\n",
                    loc.c_str());
      }
      for (const auto& loc : report.unsurveyed_locations) {
        std::printf("  warning: in map but never surveyed: %s\n",
                    loc.c_str());
      }
      if (report.dropped_pairs > 0) {
        std::printf("  note: dropped %zu sparse <point,AP> pairs "
                    "(min-samples %u)\n",
                    report.dropped_pairs, cfg.min_samples_per_ap);
      }
      return 0;
    }

    if (cmd == "info") {
      const traindb::TrainingDatabase db = traindb::read_database(argv[2]);
      std::printf("site: %s\n", db.site_name().c_str());
      std::printf("points: %zu, BSSIDs: %zu, raw samples: %s\n", db.size(),
                  db.bssid_universe().size(),
                  db.has_samples() ? "yes" : "no");
      std::printf("%-16s %10s %8s  per-AP mean dBm (sigma)\n", "location",
                  "x,y (ft)", "APs");
      for (const auto& tp : db.points()) {
        std::printf("%-16s %5.1f,%4.1f %8zu ", tp.location.c_str(),
                    tp.position.x, tp.position.y, tp.per_ap.size());
        for (const auto& s : tp.per_ap) {
          std::printf(" %.0f(%.1f)", s.mean_dbm, s.stddev_db);
        }
        std::printf("\n");
      }
      return 0;
    }

    if (cmd == "pack") {
      if (argc != 4) return usage();
      const wiscan::Archive ar = wiscan::Archive::pack_directory(argv[2]);
      ar.write(argv[3]);
      std::printf("packed %zu files into %s\n", ar.size(), argv[3]);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}

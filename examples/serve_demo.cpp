// Serve demo: one process, two venues, a hot snapshot swap under
// traffic — the multi-tenant serving core (docs/SERVING.md) in a
// minute of output.
//
//   $ ./serve_demo
//
// Two simulated sites are trained and registered with a
// `serve::LocationServer`. A handful of devices scan against each;
// mid-stream, site A's radio map is recompiled and hot-swapped while
// the scans keep flowing — sessions (and their Kalman tracks) carry
// straight across the swap.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/compiled_db.hpp"
#include "core/pipeline.hpp"
#include "core/probabilistic.hpp"
#include "serve/location_server.hpp"

using namespace loctk;

namespace {

struct Site {
  std::string name;
  core::Testbed testbed;
  traindb::TrainingDatabase db;

  Site(std::string site_name, radio::Environment env, std::uint64_t seed)
      : name(std::move(site_name)), testbed(std::move(env)) {
    const wiscan::LocationMap grid =
        core::make_training_grid(testbed.environment().footprint(), 10.0);
    db = testbed.train(grid, 90, seed);
  }

  /// What a production republish installs: a locator freshly compiled
  /// from the site's training database.
  std::shared_ptr<const core::Locator> make_snapshot() const {
    return std::make_shared<core::ProbabilisticLocator>(
        core::CompiledDatabase::compile(db));
  }
};

}  // namespace

int main() {
  Site house("paper-house", radio::make_paper_house(), /*seed=*/1);
  Site office("office-floor", radio::make_office_floor(6), /*seed=*/2);

  serve::LocationServer server;
  const serve::SiteId house_id =
      server.add_site(house.name, house.make_snapshot());
  const serve::SiteId office_id =
      server.add_site(office.name, office.make_snapshot());
  std::printf("serving %zu sites\n", server.site_count());

  // Three devices walk their venue; device ids are opaque nonzero u64s.
  struct Client {
    serve::SiteId site;
    serve::DeviceId device;
    const Site* venue;
    geom::Vec2 position;
  };
  std::vector<Client> clients = {
      {house_id, 0x1001, &house, {17.0, 26.0}},
      {house_id, 0x1002, &house, {35.0, 12.0}},
      {office_id, 0x2001, &office, {60.0, 40.0}},
  };

  for (int round = 0; round < 8; ++round) {
    if (round == 4) {
      // The resurveyed map arrives mid-traffic: hot-swap it. In-flight
      // scans finish on the snapshot they pinned; nobody's session
      // resets.
      const std::uint64_t generation =
          server.swap_site(house_id, house.make_snapshot());
      std::printf("-- hot-swapped %s to generation %llu --\n",
                  house.name.c_str(),
                  static_cast<unsigned long long>(generation));
    }
    for (const Client& c : clients) {
      const radio::ScanRecord scan =
          c.venue->testbed.make_scanner(static_cast<std::uint64_t>(7 + round))
              .collect(c.position, 1)
              .front();
      const core::ServiceFix fix = server.on_scan(c.site, c.device, scan);
      if (fix.valid) {
        std::printf("site %-12s device %#06llx -> (%5.1f, %5.1f) ft"
                    "  error %4.1f ft\n",
                    c.venue->name.c_str(),
                    static_cast<unsigned long long>(c.device),
                    fix.position.x, fix.position.y,
                    geom::distance(fix.position, c.position));
      } else {
        std::printf("site %-12s device %#06llx -> warming up\n",
                    c.venue->name.c_str(),
                    static_cast<unsigned long long>(c.device));
      }
    }
  }

  const serve::SiteStats stats = server.stats(house_id);
  std::printf("%s: %llu scans, generation %llu, %zu sessions, "
              "%llu reader stalls\n",
              stats.name.c_str(),
              static_cast<unsigned long long>(stats.scans),
              static_cast<unsigned long long>(stats.generation),
              stats.sessions,
              static_cast<unsigned long long>(stats.reader_stalls));
  std::printf("served %zu clients across %zu sites with a mid-traffic "
              "swap\n", clients.size(), server.site_count());
  return 0;
}

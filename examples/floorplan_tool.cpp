// floorplan_tool — the paper's Floor Plan Processor (§4.1) as a CLI.
//
// The paper's GUI offered six mouse-driven functions; this tool
// performs the same six operations from a single command line (the
// paper's components were themselves "invoked in a single-line Dos
// command window"). Clicks become pixel coordinates on the command
// line. The annotated plan round-trips through the `.fpa` sidecar.
//
//   floorplan_tool demo  <plan.ppm>                 render the paper house
//   floorplan_tool new   <w> <h> <plan.ppm>         blank plan (1)
//   floorplan_tool scale <plan.fpa> <x1 y1 x2 y2 feet>          (3)
//   floorplan_tool origin <plan.fpa> <x y>                      (4)
//   floorplan_tool add-ap <plan.fpa> <name> <x y>               (2)
//   floorplan_tool add-place <plan.fpa> <name> <x y>            (5)
//   floorplan_tool info  <plan.fpa>                 inspect everything
//
// Saving (6) happens automatically after every mutating command.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "floorplan/processor.hpp"
#include "radio/environment.hpp"

using namespace loctk;
namespace fs = std::filesystem;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  floorplan_tool demo <plan.ppm>\n"
               "  floorplan_tool new <width_px> <height_px> <plan.ppm>\n"
               "  floorplan_tool scale <plan.fpa> <x1> <y1> <x2> <y2> <feet>\n"
               "  floorplan_tool origin <plan.fpa> <x> <y>\n"
               "  floorplan_tool add-ap <plan.fpa> <name> <x> <y>\n"
               "  floorplan_tool add-place <plan.fpa> <name> <x> <y>\n"
               "  floorplan_tool info <plan.fpa>\n");
  return 2;
}

double num(const char* s) { return std::strtod(s, nullptr); }

// Re-saves next to the sidecar, preserving the stored image name.
void resave(const floorplan::FloorPlanProcessor& proc,
            const fs::path& fpa) {
  fs::path image = fpa;
  image.replace_extension(".ppm");
  proc.save(image);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];

  try {
    if (cmd == "demo") {
      floorplan::FloorPlanProcessor proc(
          floorplan::render_environment(radio::make_paper_house(), 10.0));
      proc.save(argv[2]);
      std::printf("wrote %s (+ sidecar %s)\n", argv[2],
                  floorplan::annotation_path_for(argv[2]).string().c_str());
      return 0;
    }
    if (cmd == "new") {
      if (argc != 5) return usage();
      floorplan::FloorPlanProcessor proc{floorplan::FloorPlan{
          image::Raster(std::atoi(argv[2]), std::atoi(argv[3]))}};
      proc.save(argv[4]);
      std::printf("wrote blank %dx%d plan to %s\n", std::atoi(argv[2]),
                  std::atoi(argv[3]), argv[4]);
      return 0;
    }

    // Everything else loads an existing sidecar first.
    floorplan::FloorPlanProcessor proc =
        floorplan::FloorPlanProcessor::load(argv[2]);
    const fs::path fpa = argv[2];

    if (cmd == "scale") {
      if (argc != 8) return usage();
      proc.set_scale({num(argv[3]), num(argv[4])},
                     {num(argv[5]), num(argv[6])}, num(argv[7]));
      resave(proc, fpa);
      std::printf("scale set: %.4f ft/px\n",
                  *proc.plan().feet_per_pixel());
    } else if (cmd == "origin") {
      if (argc != 5) return usage();
      proc.set_origin({num(argv[3]), num(argv[4])});
      resave(proc, fpa);
      std::printf("origin set at pixel (%.1f, %.1f)\n", num(argv[3]),
                  num(argv[4]));
    } else if (cmd == "add-ap") {
      if (argc != 6) return usage();
      proc.add_access_point(argv[3], {num(argv[4]), num(argv[5])});
      resave(proc, fpa);
      std::printf("added AP \"%s\"\n", argv[3]);
    } else if (cmd == "add-place") {
      if (argc != 6) return usage();
      proc.add_location_name(argv[3], {num(argv[4]), num(argv[5])});
      resave(proc, fpa);
      std::printf("added place \"%s\"\n", argv[3]);
    } else if (cmd == "info") {
      const floorplan::FloorPlan& plan = proc.plan();
      std::printf("image: %dx%d px\n", plan.raster().width(),
                  plan.raster().height());
      if (plan.feet_per_pixel()) {
        std::printf("scale: %.4f ft/px\n", *plan.feet_per_pixel());
      } else {
        std::printf("scale: (unset)\n");
      }
      if (plan.origin_pixel()) {
        std::printf("origin: pixel (%.1f, %.1f)\n", plan.origin_pixel()->x,
                    plan.origin_pixel()->y);
      } else {
        std::printf("origin: (unset)\n");
      }
      std::printf("access points (%zu):\n", plan.access_points().size());
      for (const auto& ap : plan.access_points()) {
        std::printf("  %-12s px (%7.1f, %7.1f)", ap.name.c_str(),
                    ap.pixel.x, ap.pixel.y);
        if (plan.calibrated()) {
          const auto w = plan.to_world(ap.pixel);
          std::printf("   world (%6.1f, %6.1f) ft", w.x, w.y);
        }
        std::printf("\n");
      }
      std::printf("places (%zu):\n", plan.places().size());
      for (const auto& pl : plan.places()) {
        std::printf("  %-20s px (%7.1f, %7.1f)\n", pl.name.c_str(),
                    pl.pixel.x, pl.pixel.y);
      }
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

// call_forwarding: the paper's opening scenario as running code.
//
//   $ ./call_forwarding
//
// "With location aware capability, incoming calls can be forwarded to
// the current room of the recipient." A client roams the house while
// the live LocationService resolves their current room; simulated
// incoming calls are routed to the phone in that room. This example
// shows the service API (sliding window + Kalman + debounced place
// callbacks) an application actually programs against.

#include <cstdio>
#include <map>
#include <string>

#include "core/location_service.hpp"
#include "core/path.hpp"
#include "core/pipeline.hpp"
#include "core/probabilistic.hpp"

using namespace loctk;

namespace {

// Survey-point cell -> room name for the paper house layout.
std::string room_for_place(const std::string& place,
                           const traindb::TrainingDatabase& db) {
  const traindb::TrainingPoint* tp = db.find(place);
  if (!tp) return "unknown";
  const geom::Vec2 p = tp->position;
  if (p.y >= 22.0) return p.x < 25.0 ? "bedroom-west" : "bedroom-east";
  return p.x < 30.0 ? "living-room" : "kitchen";
}

geom::Vec2 walk(double t) {
  static const core::WaypointPath path(
      {{8, 8}, {40, 8}, {40, 30}, {10, 30}, {10, 10}});
  return path.position_at_time(t, /*speed_ft_s=*/1.5);
}

}  // namespace

int main() {
  core::Testbed testbed(radio::make_paper_house());
  const auto grid =
      core::make_training_grid(testbed.environment().footprint(), 10.0);
  const traindb::TrainingDatabase db = testbed.train(grid, 90, 11);
  const core::ProbabilisticLocator locator(db);

  core::LocationServiceConfig cfg;
  cfg.window_scans = 6;
  cfg.place_debounce = 3;
  core::LocationService service(locator, cfg);

  std::string current_room = "unknown";
  service.on_place_change(
      [&](const std::string& /*from*/, const std::string& to) {
        const std::string room = room_for_place(to, db);
        if (room != current_room) {
          current_room = room;
          std::printf("        [presence] recipient is now in %s\n",
                      room.c_str());
        }
      });

  radio::Scanner scanner = testbed.make_scanner(12);
  const int seconds = 90;
  const int call_times[] = {15, 40, 70};
  std::size_t next_call = 0;

  for (int t = 0; t < seconds; ++t) {
    const geom::Vec2 truth = walk(t);
    service.on_scan(scanner.scan_at(truth));

    if (next_call < std::size(call_times) && t == call_times[next_call]) {
      ++next_call;
      std::printf("t=%2ds  incoming call -> ringing the %s phone "
                  "(client truly in ",
                  t, current_room.c_str());
      // Ground truth for the reader.
      const std::string true_room =
          truth.y >= 22.0 ? (truth.x < 25.0 ? "bedroom-west"
                                            : "bedroom-east")
                          : (truth.x < 30.0 ? "living-room" : "kitchen");
      std::printf("%s)\n", true_room.c_str());
    }
  }
  std::printf("done: %d scans processed, final room %s\n", seconds,
              current_room.c_str());
  return 0;
}

// tracking_demo: a walking client tracked in real time — the paper's
// motivating scenario ("incoming calls can be forwarded to the
// current room of the recipient") plus its future-work filters.
//
//   $ ./tracking_demo [output-dir]     (default ./tracking-out)
//
// A client walks a loop through the house taking one short scan burst
// per second. Three estimators run side by side (static ML, Kalman-
// smoothed ML, particle filter); the trajectories are rendered onto
// the floor plan and the per-room abstraction is printed as the
// client crosses rooms.

#include <cstdio>
#include <filesystem>

#include "core/path.hpp"
#include "core/pipeline.hpp"
#include "core/probabilistic.hpp"
#include "core/tracking.hpp"
#include "floorplan/compositor.hpp"
#include "floorplan/processor.hpp"
#include "image/codec_bmp.hpp"
#include "image/font.hpp"

using namespace loctk;
namespace fs = std::filesystem;

namespace {

// Room naming for the paper house layout (see make_paper_house).
const char* room_of(geom::Vec2 p) {
  if (p.y >= 22.0) {
    return p.x < 25.0 ? "bedroom-west" : "bedroom-east";
  }
  return p.x < 30.0 ? "living-room" : "kitchen";
}

const core::WaypointPath& tour_path() {
  static const core::WaypointPath path({
      {6, 6}, {44, 6}, {44, 16}, {18, 16}, {18, 28}, {44, 28},
      {44, 36}, {6, 36}, {6, 6},
  });
  return path;
}

geom::Vec2 tour(double t) { return tour_path().position_at_time(t); }

}  // namespace

int main(int argc, char** argv) {
  const fs::path out = argc > 1 ? argv[1] : "tracking-out";
  fs::create_directories(out);

  core::Testbed testbed(radio::make_paper_house());
  const auto grid =
      core::make_training_grid(testbed.environment().footprint(), 10.0);
  const traindb::TrainingDatabase db = testbed.train(grid, 90, 99);

  const core::ProbabilisticLocator prob(db);
  core::TrackedLocator kalman(prob);
  core::ParticleFilterConfig pf_cfg;
  pf_cfg.particle_count = 500;
  core::ParticleFilterTracker particle(
      db, testbed.environment().footprint(), pf_cfg);

  radio::Scanner scanner = testbed.make_scanner(100);
  const int steps = 100;

  std::vector<geom::Vec2> truth_path, kalman_path, particle_path;
  const char* last_room = "";
  double err_static = 0.0, err_kalman = 0.0, err_particle = 0.0;
  int counted = 0;

  for (int step = 0; step < steps; ++step) {
    const geom::Vec2 truth = tour(step);
    const core::Observation obs =
        core::Observation::from_scans(scanner.collect(truth, 3));

    const auto s = prob.locate(obs);
    const auto k = kalman.locate(obs);
    const geom::Vec2 p = particle.step(obs);

    truth_path.push_back(truth);
    if (k.valid) kalman_path.push_back(k.position);
    particle_path.push_back(p);

    if (step >= 10 && s.valid && k.valid) {
      err_static += geom::distance(s.position, truth);
      err_kalman += geom::distance(k.position, truth);
      err_particle += geom::distance(p, truth);
      ++counted;
    }

    // The paper's location abstraction: announce room transitions.
    const char* room = room_of(k.valid ? k.position : truth);
    if (std::string(room) != last_room) {
      std::printf("t=%3ds  client enters %-13s (tracked at %5.1f,%5.1f)\n",
                  step, room, k.valid ? k.position.x : 0.0,
                  k.valid ? k.position.y : 0.0);
      last_room = room;
    }
  }

  std::printf("\nmean per-step error over %d steps:\n", counted);
  std::printf("  static ML        %.1f ft\n", err_static / counted);
  std::printf("  ML + Kalman      %.1f ft\n", err_kalman / counted);
  std::printf("  particle filter  %.1f ft\n", err_particle / counted);

  // Render the trajectories.
  const floorplan::FloorPlan plan =
      floorplan::render_environment(testbed.environment(), 10.0);
  floorplan::Compositor comp(plan);
  image::Raster img = comp.render({});
  auto draw_path = [&](const std::vector<geom::Vec2>& path,
                       image::Color color, bool dashed) {
    for (std::size_t i = 1; i < path.size(); ++i) {
      comp.draw_world_line(img, path[i - 1], path[i], color, dashed);
    }
  };
  draw_path(truth_path, image::colors::kGreen, false);
  draw_path(kalman_path, image::colors::kBlue, false);
  draw_path(particle_path, image::colors::kPurple, true);
  image::draw_text(img, 6, 6,
                   "green: truth  blue: kalman  purple: particle",
                   image::colors::kBlack);
  image::write_image(out / "trajectories.ppm", img);
  image::write_image(out / "trajectories.bmp", img);
  std::printf("wrote %s/trajectories.ppm/.bmp\n", out.string().c_str());
  return 0;
}

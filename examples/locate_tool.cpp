// locate_tool — the working phase (paper Figure 1, steps 5-6) as a
// CLI: load a training database, read an observation capture (a
// wi-scan file recorded wherever the client is standing), and print
// where each fingerprint algorithm puts the client.
//
//   locate_tool <db.ltdb> <observation.wiscan> [--alg ALG] [--stats]
//
// ALG: all (default) | prob | nnss | knn | bayes
// --stats dumps the process metrics snapshot (locate latency, counts)
// to stderr after the estimates.
//
// Geometric ranging is not offered here because the database carries
// only signal statistics, not AP positions; use the library API with
// a radio::Environment for that path.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "base/metrics.hpp"
#include "core/bayes.hpp"
#include "core/knn.hpp"
#include "core/observation.hpp"
#include "core/probabilistic.hpp"
#include "traindb/codec.hpp"
#include "wiscan/format.hpp"

using namespace loctk;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: locate_tool <db.ltdb> <observation.wiscan> "
               "[--alg all|prob|nnss|knn|bayes] [--stats]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string alg = "all";
  bool stats = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--alg") == 0 && i + 1 < argc) {
      alg = argv[++i];
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else {
      return usage();
    }
  }

  try {
    const traindb::TrainingDatabase db = traindb::read_database(argv[1]);
    const wiscan::WiScanFile capture = wiscan::read_wiscan(argv[2]);
    const core::Observation obs =
        core::Observation::from_entries(capture.entries);
    std::printf("database: %zu training points, %zu APs (site \"%s\")\n",
                db.size(), db.bssid_universe().size(),
                db.site_name().c_str());
    std::printf("observation: %zu scan passes, %zu APs heard\n",
                capture.scan_count(), obs.ap_count());

    std::vector<std::unique_ptr<core::Locator>> locators;
    if (alg == "all" || alg == "prob") {
      locators.push_back(std::make_unique<core::ProbabilisticLocator>(db));
    }
    if (alg == "all" || alg == "nnss") {
      locators.push_back(
          std::make_unique<core::KnnLocator>(db, core::KnnConfig{.k = 1}));
    }
    if (alg == "all" || alg == "knn") {
      locators.push_back(
          std::make_unique<core::KnnLocator>(db, core::KnnConfig{.k = 3}));
    }
    if (alg == "all" || alg == "bayes") {
      locators.push_back(std::make_unique<core::BayesGridLocator>(db));
    }
    if (locators.empty()) return usage();

    for (const auto& locator : locators) {
      // try_locate is the instrumented entry point (locate.* metrics)
      // and distinguishes degenerate observations from real failures.
      const Result<core::LocationEstimate> result = locator->try_locate(obs);
      if (!result.ok()) {
        std::printf("%-18s -> no estimate (%s)\n", locator->name().c_str(),
                    result.error().message().c_str());
        continue;
      }
      const core::LocationEstimate& est = result.value();
      std::printf("%-18s -> (%6.1f, %6.1f) ft", locator->name().c_str(),
                  est.position.x, est.position.y);
      if (!est.location_name.empty()) {
        std::printf("  place \"%s\"", est.location_name.c_str());
      }
      std::printf("  (score %.2f, %d APs)\n", est.score, est.aps_used);
    }
    if (stats) {
      std::fprintf(stderr, "%s",
                   metrics::MetricsRegistry::global()
                       .snapshot()
                       .to_text()
                       .c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

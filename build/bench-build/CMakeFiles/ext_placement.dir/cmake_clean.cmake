file(REMOVE_RECURSE
  "../bench/ext_placement"
  "../bench/ext_placement.pdb"
  "CMakeFiles/ext_placement.dir/ext_placement.cpp.o"
  "CMakeFiles/ext_placement.dir/ext_placement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/sec52_geometric"
  "../bench/sec52_geometric.pdb"
  "CMakeFiles/sec52_geometric.dir/sec52_geometric.cpp.o"
  "CMakeFiles/sec52_geometric.dir/sec52_geometric.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_geometric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sec52_geometric.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/abl_tracking"
  "../bench/abl_tracking.pdb"
  "CMakeFiles/abl_tracking.dir/abl_tracking.cpp.o"
  "CMakeFiles/abl_tracking.dir/abl_tracking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

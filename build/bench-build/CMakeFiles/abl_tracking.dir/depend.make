# Empty dependencies file for abl_tracking.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ext_device"
  "../bench/ext_device.pdb"
  "CMakeFiles/ext_device.dir/ext_device.cpp.o"
  "CMakeFiles/ext_device.dir/ext_device.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for abl_ap_count.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/abl_ap_count"
  "../bench/abl_ap_count.pdb"
  "CMakeFiles/abl_ap_count.dir/abl_ap_count.cpp.o"
  "CMakeFiles/abl_ap_count.dir/abl_ap_count.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ap_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig23_compositor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig23_compositor"
  "../bench/fig23_compositor.pdb"
  "CMakeFiles/fig23_compositor.dir/fig23_compositor.cpp.o"
  "CMakeFiles/fig23_compositor.dir/fig23_compositor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_compositor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig4_pathloss.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig4_pathloss"
  "../bench/fig4_pathloss.pdb"
  "CMakeFiles/fig4_pathloss.dir/fig4_pathloss.cpp.o"
  "CMakeFiles/fig4_pathloss.dir/fig4_pathloss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pathloss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/abl_factors"
  "../bench/abl_factors.pdb"
  "CMakeFiles/abl_factors.dir/abl_factors.cpp.o"
  "CMakeFiles/abl_factors.dir/abl_factors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for abl_factors.
# This may be replaced when dependencies are built.

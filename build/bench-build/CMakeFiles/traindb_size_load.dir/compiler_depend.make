# Empty compiler generated dependencies file for traindb_size_load.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/traindb_size_load"
  "../bench/traindb_size_load.pdb"
  "CMakeFiles/traindb_size_load.dir/traindb_size_load.cpp.o"
  "CMakeFiles/traindb_size_load.dir/traindb_size_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traindb_size_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

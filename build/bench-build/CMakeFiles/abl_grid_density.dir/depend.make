# Empty dependencies file for abl_grid_density.
# This may be replaced when dependencies are built.

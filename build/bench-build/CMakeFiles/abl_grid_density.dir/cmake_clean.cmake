file(REMOVE_RECURSE
  "../bench/abl_grid_density"
  "../bench/abl_grid_density.pdb"
  "CMakeFiles/abl_grid_density.dir/abl_grid_density.cpp.o"
  "CMakeFiles/abl_grid_density.dir/abl_grid_density.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_grid_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

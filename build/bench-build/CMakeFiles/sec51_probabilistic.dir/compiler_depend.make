# Empty compiler generated dependencies file for sec51_probabilistic.
# This may be replaced when dependencies are built.

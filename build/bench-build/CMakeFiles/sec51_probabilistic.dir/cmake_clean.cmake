file(REMOVE_RECURSE
  "../bench/sec51_probabilistic"
  "../bench/sec51_probabilistic.pdb"
  "CMakeFiles/sec51_probabilistic.dir/sec51_probabilistic.cpp.o"
  "CMakeFiles/sec51_probabilistic.dir/sec51_probabilistic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec51_probabilistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/abl_noise"
  "../bench/abl_noise.pdb"
  "CMakeFiles/abl_noise.dir/abl_noise.cpp.o"
  "CMakeFiles/abl_noise.dir/abl_noise.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ext_multifloor.
# This may be replaced when dependencies are built.

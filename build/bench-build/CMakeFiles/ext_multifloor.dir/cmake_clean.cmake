file(REMOVE_RECURSE
  "../bench/ext_multifloor"
  "../bench/ext_multifloor.pdb"
  "CMakeFiles/ext_multifloor.dir/ext_multifloor.cpp.o"
  "CMakeFiles/ext_multifloor.dir/ext_multifloor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multifloor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

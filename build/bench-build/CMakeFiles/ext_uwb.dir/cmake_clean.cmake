file(REMOVE_RECURSE
  "../bench/ext_uwb"
  "../bench/ext_uwb.pdb"
  "CMakeFiles/ext_uwb.dir/ext_uwb.cpp.o"
  "CMakeFiles/ext_uwb.dir/ext_uwb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_uwb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

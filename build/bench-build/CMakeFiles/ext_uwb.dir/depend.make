# Empty dependencies file for ext_uwb.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("geom")
subdirs("stats")
subdirs("concurrency")
subdirs("image")
subdirs("radio")
subdirs("wiscan")
subdirs("floorplan")
subdirs("traindb")
subdirs("core")

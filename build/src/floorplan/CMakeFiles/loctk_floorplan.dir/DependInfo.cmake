
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/floorplan/compositor.cpp" "src/floorplan/CMakeFiles/loctk_floorplan.dir/compositor.cpp.o" "gcc" "src/floorplan/CMakeFiles/loctk_floorplan.dir/compositor.cpp.o.d"
  "/root/repo/src/floorplan/floor_plan.cpp" "src/floorplan/CMakeFiles/loctk_floorplan.dir/floor_plan.cpp.o" "gcc" "src/floorplan/CMakeFiles/loctk_floorplan.dir/floor_plan.cpp.o.d"
  "/root/repo/src/floorplan/heatmap.cpp" "src/floorplan/CMakeFiles/loctk_floorplan.dir/heatmap.cpp.o" "gcc" "src/floorplan/CMakeFiles/loctk_floorplan.dir/heatmap.cpp.o.d"
  "/root/repo/src/floorplan/processor.cpp" "src/floorplan/CMakeFiles/loctk_floorplan.dir/processor.cpp.o" "gcc" "src/floorplan/CMakeFiles/loctk_floorplan.dir/processor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/loctk_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/loctk_image.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/loctk_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/loctk_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for loctk_floorplan.
# This may be replaced when dependencies are built.

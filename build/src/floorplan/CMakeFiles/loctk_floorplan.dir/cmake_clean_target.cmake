file(REMOVE_RECURSE
  "libloctk_floorplan.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/loctk_floorplan.dir/compositor.cpp.o"
  "CMakeFiles/loctk_floorplan.dir/compositor.cpp.o.d"
  "CMakeFiles/loctk_floorplan.dir/floor_plan.cpp.o"
  "CMakeFiles/loctk_floorplan.dir/floor_plan.cpp.o.d"
  "CMakeFiles/loctk_floorplan.dir/heatmap.cpp.o"
  "CMakeFiles/loctk_floorplan.dir/heatmap.cpp.o.d"
  "CMakeFiles/loctk_floorplan.dir/processor.cpp.o"
  "CMakeFiles/loctk_floorplan.dir/processor.cpp.o.d"
  "libloctk_floorplan.a"
  "libloctk_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loctk_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/loctk_geom.dir/circle.cpp.o"
  "CMakeFiles/loctk_geom.dir/circle.cpp.o.d"
  "CMakeFiles/loctk_geom.dir/lateration.cpp.o"
  "CMakeFiles/loctk_geom.dir/lateration.cpp.o.d"
  "CMakeFiles/loctk_geom.dir/polygon.cpp.o"
  "CMakeFiles/loctk_geom.dir/polygon.cpp.o.d"
  "CMakeFiles/loctk_geom.dir/segment.cpp.o"
  "CMakeFiles/loctk_geom.dir/segment.cpp.o.d"
  "CMakeFiles/loctk_geom.dir/vec2.cpp.o"
  "CMakeFiles/loctk_geom.dir/vec2.cpp.o.d"
  "libloctk_geom.a"
  "libloctk_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loctk_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libloctk_geom.a"
)

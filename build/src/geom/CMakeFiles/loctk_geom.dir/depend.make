# Empty dependencies file for loctk_geom.
# This may be replaced when dependencies are built.

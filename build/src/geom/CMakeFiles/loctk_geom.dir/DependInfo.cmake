
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/circle.cpp" "src/geom/CMakeFiles/loctk_geom.dir/circle.cpp.o" "gcc" "src/geom/CMakeFiles/loctk_geom.dir/circle.cpp.o.d"
  "/root/repo/src/geom/lateration.cpp" "src/geom/CMakeFiles/loctk_geom.dir/lateration.cpp.o" "gcc" "src/geom/CMakeFiles/loctk_geom.dir/lateration.cpp.o.d"
  "/root/repo/src/geom/polygon.cpp" "src/geom/CMakeFiles/loctk_geom.dir/polygon.cpp.o" "gcc" "src/geom/CMakeFiles/loctk_geom.dir/polygon.cpp.o.d"
  "/root/repo/src/geom/segment.cpp" "src/geom/CMakeFiles/loctk_geom.dir/segment.cpp.o" "gcc" "src/geom/CMakeFiles/loctk_geom.dir/segment.cpp.o.d"
  "/root/repo/src/geom/vec2.cpp" "src/geom/CMakeFiles/loctk_geom.dir/vec2.cpp.o" "gcc" "src/geom/CMakeFiles/loctk_geom.dir/vec2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libloctk_traindb.a"
)

# Empty compiler generated dependencies file for loctk_traindb.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/loctk_traindb.dir/codec.cpp.o"
  "CMakeFiles/loctk_traindb.dir/codec.cpp.o.d"
  "CMakeFiles/loctk_traindb.dir/database.cpp.o"
  "CMakeFiles/loctk_traindb.dir/database.cpp.o.d"
  "CMakeFiles/loctk_traindb.dir/generator.cpp.o"
  "CMakeFiles/loctk_traindb.dir/generator.cpp.o.d"
  "libloctk_traindb.a"
  "libloctk_traindb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loctk_traindb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for loctk_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libloctk_core.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bayes.cpp" "src/core/CMakeFiles/loctk_core.dir/bayes.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/bayes.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/loctk_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/floor_selector.cpp" "src/core/CMakeFiles/loctk_core.dir/floor_selector.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/floor_selector.cpp.o.d"
  "/root/repo/src/core/geometric.cpp" "src/core/CMakeFiles/loctk_core.dir/geometric.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/geometric.cpp.o.d"
  "/root/repo/src/core/grid_locator.cpp" "src/core/CMakeFiles/loctk_core.dir/grid_locator.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/grid_locator.cpp.o.d"
  "/root/repo/src/core/histogram_locator.cpp" "src/core/CMakeFiles/loctk_core.dir/histogram_locator.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/histogram_locator.cpp.o.d"
  "/root/repo/src/core/hmm_tracker.cpp" "src/core/CMakeFiles/loctk_core.dir/hmm_tracker.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/hmm_tracker.cpp.o.d"
  "/root/repo/src/core/knn.cpp" "src/core/CMakeFiles/loctk_core.dir/knn.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/knn.cpp.o.d"
  "/root/repo/src/core/location_service.cpp" "src/core/CMakeFiles/loctk_core.dir/location_service.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/location_service.cpp.o.d"
  "/root/repo/src/core/observation.cpp" "src/core/CMakeFiles/loctk_core.dir/observation.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/observation.cpp.o.d"
  "/root/repo/src/core/path.cpp" "src/core/CMakeFiles/loctk_core.dir/path.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/path.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/loctk_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/loctk_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/probabilistic.cpp" "src/core/CMakeFiles/loctk_core.dir/probabilistic.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/probabilistic.cpp.o.d"
  "/root/repo/src/core/signal_field.cpp" "src/core/CMakeFiles/loctk_core.dir/signal_field.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/signal_field.cpp.o.d"
  "/root/repo/src/core/signal_index.cpp" "src/core/CMakeFiles/loctk_core.dir/signal_index.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/signal_index.cpp.o.d"
  "/root/repo/src/core/ssd_locator.cpp" "src/core/CMakeFiles/loctk_core.dir/ssd_locator.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/ssd_locator.cpp.o.d"
  "/root/repo/src/core/tracking.cpp" "src/core/CMakeFiles/loctk_core.dir/tracking.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/tracking.cpp.o.d"
  "/root/repo/src/core/uwb_locator.cpp" "src/core/CMakeFiles/loctk_core.dir/uwb_locator.cpp.o" "gcc" "src/core/CMakeFiles/loctk_core.dir/uwb_locator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traindb/CMakeFiles/loctk_traindb.dir/DependInfo.cmake"
  "/root/repo/build/src/wiscan/CMakeFiles/loctk_wiscan.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/loctk_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/loctk_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/loctk_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/loctk_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/loctk_image.dir/codec_bmp.cpp.o"
  "CMakeFiles/loctk_image.dir/codec_bmp.cpp.o.d"
  "CMakeFiles/loctk_image.dir/codec_pnm.cpp.o"
  "CMakeFiles/loctk_image.dir/codec_pnm.cpp.o.d"
  "CMakeFiles/loctk_image.dir/draw.cpp.o"
  "CMakeFiles/loctk_image.dir/draw.cpp.o.d"
  "CMakeFiles/loctk_image.dir/font.cpp.o"
  "CMakeFiles/loctk_image.dir/font.cpp.o.d"
  "CMakeFiles/loctk_image.dir/raster.cpp.o"
  "CMakeFiles/loctk_image.dir/raster.cpp.o.d"
  "libloctk_image.a"
  "libloctk_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loctk_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

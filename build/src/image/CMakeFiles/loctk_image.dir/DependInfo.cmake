
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/codec_bmp.cpp" "src/image/CMakeFiles/loctk_image.dir/codec_bmp.cpp.o" "gcc" "src/image/CMakeFiles/loctk_image.dir/codec_bmp.cpp.o.d"
  "/root/repo/src/image/codec_pnm.cpp" "src/image/CMakeFiles/loctk_image.dir/codec_pnm.cpp.o" "gcc" "src/image/CMakeFiles/loctk_image.dir/codec_pnm.cpp.o.d"
  "/root/repo/src/image/draw.cpp" "src/image/CMakeFiles/loctk_image.dir/draw.cpp.o" "gcc" "src/image/CMakeFiles/loctk_image.dir/draw.cpp.o.d"
  "/root/repo/src/image/font.cpp" "src/image/CMakeFiles/loctk_image.dir/font.cpp.o" "gcc" "src/image/CMakeFiles/loctk_image.dir/font.cpp.o.d"
  "/root/repo/src/image/raster.cpp" "src/image/CMakeFiles/loctk_image.dir/raster.cpp.o" "gcc" "src/image/CMakeFiles/loctk_image.dir/raster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libloctk_image.a"
)

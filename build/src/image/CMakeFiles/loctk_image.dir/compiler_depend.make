# Empty compiler generated dependencies file for loctk_image.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wiscan/archive.cpp" "src/wiscan/CMakeFiles/loctk_wiscan.dir/archive.cpp.o" "gcc" "src/wiscan/CMakeFiles/loctk_wiscan.dir/archive.cpp.o.d"
  "/root/repo/src/wiscan/collection.cpp" "src/wiscan/CMakeFiles/loctk_wiscan.dir/collection.cpp.o" "gcc" "src/wiscan/CMakeFiles/loctk_wiscan.dir/collection.cpp.o.d"
  "/root/repo/src/wiscan/format.cpp" "src/wiscan/CMakeFiles/loctk_wiscan.dir/format.cpp.o" "gcc" "src/wiscan/CMakeFiles/loctk_wiscan.dir/format.cpp.o.d"
  "/root/repo/src/wiscan/location_map.cpp" "src/wiscan/CMakeFiles/loctk_wiscan.dir/location_map.cpp.o" "gcc" "src/wiscan/CMakeFiles/loctk_wiscan.dir/location_map.cpp.o.d"
  "/root/repo/src/wiscan/record.cpp" "src/wiscan/CMakeFiles/loctk_wiscan.dir/record.cpp.o" "gcc" "src/wiscan/CMakeFiles/loctk_wiscan.dir/record.cpp.o.d"
  "/root/repo/src/wiscan/survey.cpp" "src/wiscan/CMakeFiles/loctk_wiscan.dir/survey.cpp.o" "gcc" "src/wiscan/CMakeFiles/loctk_wiscan.dir/survey.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/radio/CMakeFiles/loctk_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/loctk_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/loctk_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libloctk_wiscan.a"
)

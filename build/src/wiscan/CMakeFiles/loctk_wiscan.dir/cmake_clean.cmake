file(REMOVE_RECURSE
  "CMakeFiles/loctk_wiscan.dir/archive.cpp.o"
  "CMakeFiles/loctk_wiscan.dir/archive.cpp.o.d"
  "CMakeFiles/loctk_wiscan.dir/collection.cpp.o"
  "CMakeFiles/loctk_wiscan.dir/collection.cpp.o.d"
  "CMakeFiles/loctk_wiscan.dir/format.cpp.o"
  "CMakeFiles/loctk_wiscan.dir/format.cpp.o.d"
  "CMakeFiles/loctk_wiscan.dir/location_map.cpp.o"
  "CMakeFiles/loctk_wiscan.dir/location_map.cpp.o.d"
  "CMakeFiles/loctk_wiscan.dir/record.cpp.o"
  "CMakeFiles/loctk_wiscan.dir/record.cpp.o.d"
  "CMakeFiles/loctk_wiscan.dir/survey.cpp.o"
  "CMakeFiles/loctk_wiscan.dir/survey.cpp.o.d"
  "libloctk_wiscan.a"
  "libloctk_wiscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loctk_wiscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

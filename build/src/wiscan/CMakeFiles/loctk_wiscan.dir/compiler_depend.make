# Empty compiler generated dependencies file for loctk_wiscan.
# This may be replaced when dependencies are built.

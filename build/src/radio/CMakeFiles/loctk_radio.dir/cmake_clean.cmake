file(REMOVE_RECURSE
  "CMakeFiles/loctk_radio.dir/environment.cpp.o"
  "CMakeFiles/loctk_radio.dir/environment.cpp.o.d"
  "CMakeFiles/loctk_radio.dir/multifloor.cpp.o"
  "CMakeFiles/loctk_radio.dir/multifloor.cpp.o.d"
  "CMakeFiles/loctk_radio.dir/propagation.cpp.o"
  "CMakeFiles/loctk_radio.dir/propagation.cpp.o.d"
  "CMakeFiles/loctk_radio.dir/scanner.cpp.o"
  "CMakeFiles/loctk_radio.dir/scanner.cpp.o.d"
  "CMakeFiles/loctk_radio.dir/uwb.cpp.o"
  "CMakeFiles/loctk_radio.dir/uwb.cpp.o.d"
  "libloctk_radio.a"
  "libloctk_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loctk_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

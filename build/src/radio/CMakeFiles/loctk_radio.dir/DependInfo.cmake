
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/environment.cpp" "src/radio/CMakeFiles/loctk_radio.dir/environment.cpp.o" "gcc" "src/radio/CMakeFiles/loctk_radio.dir/environment.cpp.o.d"
  "/root/repo/src/radio/multifloor.cpp" "src/radio/CMakeFiles/loctk_radio.dir/multifloor.cpp.o" "gcc" "src/radio/CMakeFiles/loctk_radio.dir/multifloor.cpp.o.d"
  "/root/repo/src/radio/propagation.cpp" "src/radio/CMakeFiles/loctk_radio.dir/propagation.cpp.o" "gcc" "src/radio/CMakeFiles/loctk_radio.dir/propagation.cpp.o.d"
  "/root/repo/src/radio/scanner.cpp" "src/radio/CMakeFiles/loctk_radio.dir/scanner.cpp.o" "gcc" "src/radio/CMakeFiles/loctk_radio.dir/scanner.cpp.o.d"
  "/root/repo/src/radio/uwb.cpp" "src/radio/CMakeFiles/loctk_radio.dir/uwb.cpp.o" "gcc" "src/radio/CMakeFiles/loctk_radio.dir/uwb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/loctk_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/loctk_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libloctk_radio.a"
)

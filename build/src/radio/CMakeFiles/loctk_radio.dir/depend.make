# Empty dependencies file for loctk_radio.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libloctk_concurrency.a"
)

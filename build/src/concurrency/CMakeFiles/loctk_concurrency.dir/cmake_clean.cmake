file(REMOVE_RECURSE
  "CMakeFiles/loctk_concurrency.dir/thread_pool.cpp.o"
  "CMakeFiles/loctk_concurrency.dir/thread_pool.cpp.o.d"
  "libloctk_concurrency.a"
  "libloctk_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loctk_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for loctk_concurrency.
# This may be replaced when dependencies are built.

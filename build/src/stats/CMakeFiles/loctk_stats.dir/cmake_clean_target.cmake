file(REMOVE_RECURSE
  "libloctk_stats.a"
)

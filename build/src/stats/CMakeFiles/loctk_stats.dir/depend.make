# Empty dependencies file for loctk_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/loctk_stats.dir/gaussian.cpp.o"
  "CMakeFiles/loctk_stats.dir/gaussian.cpp.o.d"
  "CMakeFiles/loctk_stats.dir/histogram.cpp.o"
  "CMakeFiles/loctk_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/loctk_stats.dir/regression.cpp.o"
  "CMakeFiles/loctk_stats.dir/regression.cpp.o.d"
  "CMakeFiles/loctk_stats.dir/running_stats.cpp.o"
  "CMakeFiles/loctk_stats.dir/running_stats.cpp.o.d"
  "libloctk_stats.a"
  "libloctk_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loctk_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

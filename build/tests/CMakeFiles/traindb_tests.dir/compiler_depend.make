# Empty compiler generated dependencies file for traindb_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/traindb_tests.dir/traindb_codec_test.cpp.o"
  "CMakeFiles/traindb_tests.dir/traindb_codec_test.cpp.o.d"
  "CMakeFiles/traindb_tests.dir/traindb_database_test.cpp.o"
  "CMakeFiles/traindb_tests.dir/traindb_database_test.cpp.o.d"
  "CMakeFiles/traindb_tests.dir/traindb_generator_test.cpp.o"
  "CMakeFiles/traindb_tests.dir/traindb_generator_test.cpp.o.d"
  "traindb_tests"
  "traindb_tests.pdb"
  "traindb_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traindb_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

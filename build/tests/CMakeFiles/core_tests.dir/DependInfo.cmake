
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_evaluation_test.cpp" "tests/CMakeFiles/core_tests.dir/core_evaluation_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_evaluation_test.cpp.o.d"
  "/root/repo/tests/core_field_grid_test.cpp" "tests/CMakeFiles/core_tests.dir/core_field_grid_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_field_grid_test.cpp.o.d"
  "/root/repo/tests/core_floor_selector_test.cpp" "tests/CMakeFiles/core_tests.dir/core_floor_selector_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_floor_selector_test.cpp.o.d"
  "/root/repo/tests/core_geometric_test.cpp" "tests/CMakeFiles/core_tests.dir/core_geometric_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_geometric_test.cpp.o.d"
  "/root/repo/tests/core_hmm_uwb_test.cpp" "tests/CMakeFiles/core_tests.dir/core_hmm_uwb_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_hmm_uwb_test.cpp.o.d"
  "/root/repo/tests/core_knn_bayes_test.cpp" "tests/CMakeFiles/core_tests.dir/core_knn_bayes_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_knn_bayes_test.cpp.o.d"
  "/root/repo/tests/core_location_service_test.cpp" "tests/CMakeFiles/core_tests.dir/core_location_service_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_location_service_test.cpp.o.d"
  "/root/repo/tests/core_observation_test.cpp" "tests/CMakeFiles/core_tests.dir/core_observation_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_observation_test.cpp.o.d"
  "/root/repo/tests/core_path_test.cpp" "tests/CMakeFiles/core_tests.dir/core_path_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_path_test.cpp.o.d"
  "/root/repo/tests/core_pipeline_test.cpp" "tests/CMakeFiles/core_tests.dir/core_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_pipeline_test.cpp.o.d"
  "/root/repo/tests/core_placement_test.cpp" "tests/CMakeFiles/core_tests.dir/core_placement_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_placement_test.cpp.o.d"
  "/root/repo/tests/core_probabilistic_test.cpp" "tests/CMakeFiles/core_tests.dir/core_probabilistic_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_probabilistic_test.cpp.o.d"
  "/root/repo/tests/core_signal_index_test.cpp" "tests/CMakeFiles/core_tests.dir/core_signal_index_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_signal_index_test.cpp.o.d"
  "/root/repo/tests/core_ssd_test.cpp" "tests/CMakeFiles/core_tests.dir/core_ssd_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_ssd_test.cpp.o.d"
  "/root/repo/tests/core_tracking_test.cpp" "tests/CMakeFiles/core_tests.dir/core_tracking_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_tracking_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/floorplan/CMakeFiles/loctk_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/loctk_image.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/loctk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traindb/CMakeFiles/loctk_traindb.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/loctk_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/wiscan/CMakeFiles/loctk_wiscan.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/loctk_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/loctk_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/loctk_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

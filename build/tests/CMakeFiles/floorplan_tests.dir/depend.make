# Empty dependencies file for floorplan_tests.
# This may be replaced when dependencies are built.

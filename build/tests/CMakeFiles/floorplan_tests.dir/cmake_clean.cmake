file(REMOVE_RECURSE
  "CMakeFiles/floorplan_tests.dir/compositor_test.cpp.o"
  "CMakeFiles/floorplan_tests.dir/compositor_test.cpp.o.d"
  "CMakeFiles/floorplan_tests.dir/floorplan_heatmap_test.cpp.o"
  "CMakeFiles/floorplan_tests.dir/floorplan_heatmap_test.cpp.o.d"
  "CMakeFiles/floorplan_tests.dir/floorplan_test.cpp.o"
  "CMakeFiles/floorplan_tests.dir/floorplan_test.cpp.o.d"
  "floorplan_tests"
  "floorplan_tests.pdb"
  "floorplan_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floorplan_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

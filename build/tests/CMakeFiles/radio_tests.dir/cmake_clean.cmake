file(REMOVE_RECURSE
  "CMakeFiles/radio_tests.dir/radio_environment_test.cpp.o"
  "CMakeFiles/radio_tests.dir/radio_environment_test.cpp.o.d"
  "CMakeFiles/radio_tests.dir/radio_multifloor_test.cpp.o"
  "CMakeFiles/radio_tests.dir/radio_multifloor_test.cpp.o.d"
  "CMakeFiles/radio_tests.dir/radio_propagation_test.cpp.o"
  "CMakeFiles/radio_tests.dir/radio_propagation_test.cpp.o.d"
  "CMakeFiles/radio_tests.dir/radio_scanner_test.cpp.o"
  "CMakeFiles/radio_tests.dir/radio_scanner_test.cpp.o.d"
  "radio_tests"
  "radio_tests.pdb"
  "radio_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radio_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/geom_tests.dir/geom_circle_test.cpp.o"
  "CMakeFiles/geom_tests.dir/geom_circle_test.cpp.o.d"
  "CMakeFiles/geom_tests.dir/geom_lateration_test.cpp.o"
  "CMakeFiles/geom_tests.dir/geom_lateration_test.cpp.o.d"
  "CMakeFiles/geom_tests.dir/geom_polygon_test.cpp.o"
  "CMakeFiles/geom_tests.dir/geom_polygon_test.cpp.o.d"
  "CMakeFiles/geom_tests.dir/geom_rect_test.cpp.o"
  "CMakeFiles/geom_tests.dir/geom_rect_test.cpp.o.d"
  "CMakeFiles/geom_tests.dir/geom_segment_test.cpp.o"
  "CMakeFiles/geom_tests.dir/geom_segment_test.cpp.o.d"
  "CMakeFiles/geom_tests.dir/geom_vec2_test.cpp.o"
  "CMakeFiles/geom_tests.dir/geom_vec2_test.cpp.o.d"
  "geom_tests"
  "geom_tests.pdb"
  "geom_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for wiscan_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wiscan_tests.dir/wiscan_archive_test.cpp.o"
  "CMakeFiles/wiscan_tests.dir/wiscan_archive_test.cpp.o.d"
  "CMakeFiles/wiscan_tests.dir/wiscan_collection_test.cpp.o"
  "CMakeFiles/wiscan_tests.dir/wiscan_collection_test.cpp.o.d"
  "CMakeFiles/wiscan_tests.dir/wiscan_format_test.cpp.o"
  "CMakeFiles/wiscan_tests.dir/wiscan_format_test.cpp.o.d"
  "CMakeFiles/wiscan_tests.dir/wiscan_location_map_test.cpp.o"
  "CMakeFiles/wiscan_tests.dir/wiscan_location_map_test.cpp.o.d"
  "wiscan_tests"
  "wiscan_tests.pdb"
  "wiscan_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiscan_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/geom_tests[1]_include.cmake")
include("/root/repo/build/tests/stats_tests[1]_include.cmake")
include("/root/repo/build/tests/concurrency_tests[1]_include.cmake")
include("/root/repo/build/tests/image_tests[1]_include.cmake")
include("/root/repo/build/tests/radio_tests[1]_include.cmake")
include("/root/repo/build/tests/wiscan_tests[1]_include.cmake")
include("/root/repo/build/tests/floorplan_tests[1]_include.cmake")
include("/root/repo/build/tests/traindb_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")

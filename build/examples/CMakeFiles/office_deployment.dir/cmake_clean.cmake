file(REMOVE_RECURSE
  "CMakeFiles/office_deployment.dir/office_deployment.cpp.o"
  "CMakeFiles/office_deployment.dir/office_deployment.cpp.o.d"
  "office_deployment"
  "office_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/office_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for office_deployment.
# This may be replaced when dependencies are built.

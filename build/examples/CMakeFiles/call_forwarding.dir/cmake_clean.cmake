file(REMOVE_RECURSE
  "CMakeFiles/call_forwarding.dir/call_forwarding.cpp.o"
  "CMakeFiles/call_forwarding.dir/call_forwarding.cpp.o.d"
  "call_forwarding"
  "call_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/call_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

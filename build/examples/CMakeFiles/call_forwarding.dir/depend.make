# Empty dependencies file for call_forwarding.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/traindb_tool.dir/traindb_tool.cpp.o"
  "CMakeFiles/traindb_tool.dir/traindb_tool.cpp.o.d"
  "traindb_tool"
  "traindb_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traindb_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for traindb_tool.
# This may be replaced when dependencies are built.

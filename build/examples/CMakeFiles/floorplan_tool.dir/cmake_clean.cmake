file(REMOVE_RECURSE
  "CMakeFiles/floorplan_tool.dir/floorplan_tool.cpp.o"
  "CMakeFiles/floorplan_tool.dir/floorplan_tool.cpp.o.d"
  "floorplan_tool"
  "floorplan_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floorplan_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

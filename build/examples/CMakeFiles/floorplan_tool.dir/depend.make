# Empty dependencies file for floorplan_tool.
# This may be replaced when dependencies are built.

# Empty dependencies file for compositor_tool.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/compositor_tool.dir/compositor_tool.cpp.o"
  "CMakeFiles/compositor_tool.dir/compositor_tool.cpp.o.d"
  "compositor_tool"
  "compositor_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compositor_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

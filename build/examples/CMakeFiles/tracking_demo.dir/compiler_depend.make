# Empty compiler generated dependencies file for tracking_demo.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/locate_tool.cpp" "examples/CMakeFiles/locate_tool.dir/locate_tool.cpp.o" "gcc" "examples/CMakeFiles/locate_tool.dir/locate_tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/floorplan/CMakeFiles/loctk_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/loctk_image.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/loctk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traindb/CMakeFiles/loctk_traindb.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/loctk_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/wiscan/CMakeFiles/loctk_wiscan.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/loctk_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/loctk_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/loctk_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for locate_tool.
# This may be replaced when dependencies are built.

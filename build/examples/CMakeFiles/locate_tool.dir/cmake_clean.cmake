file(REMOVE_RECURSE
  "CMakeFiles/locate_tool.dir/locate_tool.cpp.o"
  "CMakeFiles/locate_tool.dir/locate_tool.cpp.o.d"
  "locate_tool"
  "locate_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locate_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// FIG2/FIG3 — the Floor Plan Processor view and the composited floor
// plan (paper Figures 2 and 3).
//
// Figure 2 shows the Floor Plan Processor with the plan loaded, APs
// placed, scale and origin set, and location names attached. Figure 3
// shows the Compositor displaying a floor plan with marked locations.
// This harness performs the same six operations headlessly, runs the
// §5.1 locator over the 13 test points, and writes:
//   fig2_floorplan.ppm / .bmp   — the annotated plan
//   fig3_composited.ppm / .bmp  — true vs estimated marks + whiskers
// It prints image statistics so the run is self-checking without a
// viewer.

#include <cstdio>

#include "bench_util.hpp"
#include "core/probabilistic.hpp"
#include "floorplan/compositor.hpp"
#include "floorplan/processor.hpp"
#include "image/codec_bmp.hpp"

using namespace loctk;

int main() {
  bench::print_header("FIG2/FIG3: Floor Plan Processor + Compositor output");

  bench::PaperExperiment exp(/*seed_base=*/23);
  const auto& env = exp.testbed.environment();

  // Figure 2: the annotated floor plan (the GUI's six operations are
  // state mutations; render_environment performs load/scale/origin/AP
  // placement, and we attach the named training locations).
  floorplan::FloorPlan plan = floorplan::render_environment(env, 10.0);
  for (const auto& loc : exp.training_map.locations()) {
    plan.add_place(loc.name, plan.to_pixel(loc.position));
  }
  floorplan::FloorPlanProcessor proc(std::move(plan));
  proc.save("fig2_floorplan.ppm");
  image::write_bmp("fig2_floorplan.bmp", proc.plan().raster());
  std::printf("fig2_floorplan: %dx%d px, %.3f ft/px, %zu APs, %zu places\n",
              proc.plan().raster().width(), proc.plan().raster().height(),
              *proc.plan().feet_per_pixel(),
              proc.plan().access_points().size(),
              proc.plan().places().size());

  // Figure 3: composited evaluation of the probabilistic locator.
  const core::ProbabilisticLocator locator(exp.db);
  std::vector<floorplan::EvaluatedPoint> points;
  for (std::size_t i = 0; i < exp.truths.size(); ++i) {
    const auto est = locator.locate(exp.observations[i]);
    if (!est.valid) continue;
    points.push_back(
        {exp.truths[i], est.position, "t" + std::to_string(i + 1)});
  }
  floorplan::CompositorOptions opts;
  opts.title = "fig3: actual (+) vs estimated (x), paper 5.1 locator";
  const image::Raster fig3 =
      floorplan::composite_evaluation(proc.plan(), points, opts);
  image::write_ppm("fig3_composited.ppm", fig3);
  image::write_bmp("fig3_composited.bmp", fig3);

  std::printf("fig3_composited: %dx%d px, %zu evaluated points\n",
              fig3.width(), fig3.height(), points.size());
  std::printf("  truth marks (green px): %zu\n",
              fig3.count_pixels(image::colors::kGreen));
  std::printf("  estimate marks (red px): %zu\n",
              fig3.count_pixels(image::colors::kRed));
  std::printf("  whiskers (gray px): %zu\n",
              fig3.count_pixels(image::colors::kGray));
  std::printf("Wrote fig2_floorplan.{ppm,bmp}, fig3_composited.{ppm,bmp}\n");
  return 0;
}

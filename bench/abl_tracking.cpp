// ABL-TRACK — the paper's future-work §6 item 2: combining historical
// locations with the current signal (Kalman smoothing) and a full
// Bayesian filter (particle filter).
//
// Workload: a client walks a deterministic tour of the experiment
// house at ~2 ft/s, taking a short scan burst each second. Each
// tracker processes the identical observation stream. Shape targets:
// per-step static ML error > Kalman-smoothed error; the particle
// filter is competitive with or better than Kalman; both filters trim
// the p90 tail hardest.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/hmm_tracker.hpp"
#include "core/path.hpp"
#include "core/probabilistic.hpp"
#include "core/tracking.hpp"
#include "stats/histogram.hpp"

using namespace loctk;

int main() {
  bench::print_header("ABL-TRACK: static ML vs Kalman vs particle filter");

  core::Testbed testbed(radio::make_paper_house());
  const auto map = core::make_training_grid(
      testbed.environment().footprint(), bench::kGridSpacingFt);
  const auto db = testbed.train(map, bench::kTrainScans, 777);

  const core::ProbabilisticLocator prob(db);
  core::TrackedLocator kalman(prob);
  core::ParticleFilterConfig pf_cfg;
  pf_cfg.particle_count = 500;
  pf_cfg.motion_sigma_ft = 2.5;
  core::ParticleFilterTracker particle(
      db, testbed.environment().footprint(), pf_cfg);
  core::HmmTrackerConfig hmm_cfg;
  hmm_cfg.step_sigma_ft = 4.0;
  core::HmmTracker hmm(db, hmm_cfg);

  radio::Scanner scanner = testbed.make_scanner(778);
  const core::WaypointPath tour = core::paper_house_tour();
  const int steps = 120;     // one full loop of the tour at 2 ft/s
  const int scans_per_step = 3;  // short burst, unlike the 90-scan dwell

  std::vector<double> e_static, e_kalman, e_particle, e_hmm;
  for (int step = 0; step < steps; ++step) {
    const geom::Vec2 truth = tour.position_at_time(step);
    const core::Observation obs = core::Observation::from_scans(
        scanner.collect(truth, scans_per_step));

    const auto s = prob.locate(obs);
    if (s.valid) e_static.push_back(geom::distance(s.position, truth));

    const auto k = kalman.locate(obs);
    if (k.valid && step >= 10) {
      e_kalman.push_back(geom::distance(k.position, truth));
    }
    const geom::Vec2 p = particle.step(obs);
    if (step >= 10) e_particle.push_back(geom::distance(p, truth));

    const auto h = hmm.step(obs);
    if (h.valid && step >= 10) {
      e_hmm.push_back(geom::distance(h.position, truth));
    }
  }

  auto row = [](const char* name, const std::vector<double>& errs) {
    if (errs.empty()) {
      std::printf("  %-22s (no valid steps)\n", name);
      return;
    }
    std::printf("  %-22s %8.1f %8.1f %8.1f %8.1f\n", name,
                bench::band_of(errs).mean, stats::median(errs),
                stats::quantile(errs, 0.9),
                *std::max_element(errs.begin(), errs.end()));
  };
  std::printf("tour: %d steps, %d scans/step (short bursts)\n", steps,
              scans_per_step);
  std::printf("  %-22s %8s %8s %8s %8s\n", "tracker", "mean", "median",
              "p90", "max");
  row("static ML (5.1)", e_static);
  row("ML + Kalman", e_kalman);
  row("particle filter", e_particle);
  row("HMM over cells", e_hmm);
  std::printf("\nShape target: both filters beat static per-step ML,\n"
              "with the biggest wins in the p90/max tail.\n");
  return 0;
}

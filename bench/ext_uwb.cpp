// EXT-UWB — the paper's future-work §6 item 3, end to end.
//
// "We consider using the Ultra Wide Band (UWB) technology ... a
// practical solution to deal with signal strength uncertainty."
// The claim behind the proposal: time-of-arrival ranging sidesteps
// fading entirely, so a UWB deployment should reach foot-level
// accuracy where RSSI methods sit at 5-15 ft — with *no training
// phase at all*.
//
// This harness runs the paper's 13-test-point protocol three ways on
// the identical site: RSSI probabilistic (5.1), RSSI geometric (5.2),
// and UWB lateration, then sweeps the UWB ranging-round count (more
// rounds average the timing noise).

#include <cstdio>

#include "bench_util.hpp"
#include "core/geometric.hpp"
#include "core/probabilistic.hpp"
#include "core/uwb_locator.hpp"
#include "radio/uwb.hpp"
#include "stats/histogram.hpp"

using namespace loctk;

int main() {
  bench::print_header("EXT-UWB: UWB ranging vs RSSI approaches (paper 6.3)");

  bench::PaperExperiment exp(/*seed_base=*/63);
  const auto& env = exp.testbed.environment();

  // RSSI baselines on the standard protocol.
  const core::ProbabilisticLocator prob(exp.db);
  const auto prob_r =
      core::evaluate(prob, exp.db, exp.truths, exp.observations);
  const core::GeometricLocator geo(exp.db, env);
  const auto geo_r = core::evaluate(geo, exp.db, exp.truths,
                                    exp.observations);

  // UWB on the same truth points (anchors = the same four APs).
  radio::UwbRanging uwb(env, {}, 6301);
  const core::UwbLocator uwb_locator(env.footprint());

  std::printf("  %-26s %10s %10s %10s %12s\n", "system", "mean(ft)",
              "median(ft)", "p90(ft)", "training?");
  auto row = [](const char* name, const std::vector<double>& errs,
                const char* training) {
    std::vector<double> sorted = errs;
    std::sort(sorted.begin(), sorted.end());
    std::printf("  %-26s %10.1f %10.1f %10.1f %12s\n", name,
                bench::band_of(sorted).mean, stats::median(sorted),
                stats::quantile(sorted, 0.9), training);
  };
  row("RSSI probabilistic (5.1)", prob_r.sorted_errors(), "90-scan grid");
  row("RSSI geometric (5.2)", geo_r.sorted_errors(), "90-scan grid");

  for (const int rounds : {1, 4, 10}) {
    std::vector<double> errs;
    for (const geom::Vec2 truth : exp.truths) {
      const auto est =
          uwb_locator.locate(uwb.measure_rounds(truth, rounds));
      if (est) errs.push_back(geom::distance(*est, truth));
    }
    char name[48];
    std::snprintf(name, sizeof(name), "UWB lateration (%d round%s)",
                  rounds, rounds == 1 ? "" : "s");
    row(name, errs, "none");
  }

  // NLOS stress: thicken the site with extra walls and re-run UWB.
  bench::print_rule();
  std::printf("NLOS stress (extra interior walls):\n");
  radio::Environment dense = radio::make_paper_house();
  for (double x = 10.0; x <= 40.0; x += 10.0) {
    dense.add_wall({{{x, 5.0}, {x, 35.0}}, 5.0, "stress"});
  }
  radio::UwbRanging uwb_dense(dense, {}, 6302);
  const core::UwbLocator locator_dense(dense.footprint());
  std::vector<double> errs;
  for (const geom::Vec2 truth : exp.truths) {
    const auto est =
        locator_dense.locate(uwb_dense.measure_rounds(truth, 10));
    if (est) errs.push_back(geom::distance(*est, truth));
  }
  row("UWB, 4 extra walls (10 rd)", errs, "none");
  std::printf("\nShape targets: UWB mean error ~1-3 ft, an order of\n"
              "magnitude under the RSSI methods; degrades but stays\n"
              "usable under heavy NLOS — matching the paper's rationale\n"
              "for proposing it.\n");
  return 0;
}

#pragma once

// Shared helpers for the experiment harnesses: the paper's standard
// setup (50x40 house, 10-ft grid, 13 scattered test points, 90-scan
// dwells) and small table-printing utilities.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "testkit/golden.hpp"

namespace loctk::bench {

// The paper's §5.1 setup now lives in testkit/golden.hpp so the
// conformance gates and the benches measure the same experiment;
// re-exported here to keep the bench sources reading naturally.
using testkit::PaperExperiment;
inline constexpr int kTrainScans = testkit::kTrainScans;
inline constexpr int kObserveScans = testkit::kObserveScans;
inline constexpr double kGridSpacingFt = testkit::kGridSpacingFt;
inline constexpr int kTestPoints = testkit::kTestPoints;

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

// Mean and sample stddev of a value list (for multi-seed bands).
struct Band {
  double mean = 0.0;
  double stddev = 0.0;
};

inline Band band_of(const std::vector<double>& values) {
  Band b;
  if (values.empty()) return b;
  for (const double v : values) b.mean += v;
  b.mean /= static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (const double v : values) ss += (v - b.mean) * (v - b.mean);
    b.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return b;
}

}  // namespace loctk::bench

#pragma once

// Shared helpers for the experiment harnesses: the paper's standard
// setup (50x40 house, 10-ft grid, 13 scattered test points, 90-scan
// dwells) and small table-printing utilities.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "radio/environment.hpp"
#include "traindb/database.hpp"

namespace loctk::bench {

// The paper's §5.1 experimental constants.
inline constexpr int kTrainScans = 90;  // ~1.5 min at 1 scan/s
inline constexpr int kObserveScans = 90;
inline constexpr double kGridSpacingFt = 10.0;
inline constexpr int kTestPoints = 13;

struct PaperExperiment {
  explicit PaperExperiment(std::uint64_t seed_base = 1,
                           radio::ChannelConfig channel = {})
      : testbed(radio::make_paper_house(), radio::PropagationConfig{},
                channel),
        training_map(core::make_training_grid(
            testbed.environment().footprint(), kGridSpacingFt)),
        db(testbed.train(training_map, kTrainScans, seed_base * 1000 + 1)),
        truths(core::make_scattered_test_points(
            testbed.environment().footprint(), kTestPoints)),
        observations(
            testbed.observe(truths, kObserveScans, seed_base * 1000 + 2)) {}

  core::Testbed testbed;
  wiscan::LocationMap training_map;
  traindb::TrainingDatabase db;
  std::vector<geom::Vec2> truths;
  std::vector<core::Observation> observations;
};

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

// Mean and sample stddev of a value list (for multi-seed bands).
struct Band {
  double mean = 0.0;
  double stddev = 0.0;
};

inline Band band_of(const std::vector<double>& values) {
  Band b;
  if (values.empty()) return b;
  for (const double v : values) b.mean += v;
  b.mean /= static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (const double v : values) ss += (v - b.mean) * (v - b.mean);
    b.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return b;
}

}  // namespace loctk::bench

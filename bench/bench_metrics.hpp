#pragma once

// Shared epilogue for the perf benches: after google-benchmark runs,
// dump the process metrics snapshot (locate latency, ingest counters,
// pool gauges) as JSON to <bench>.metrics.json in the working
// directory, so perf CI can archive and sanity-check observability
// output alongside the benchmark JSON itself.

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include <benchmark/benchmark.h>

#include "base/metrics.hpp"

namespace loctk::bench {

/// The build type of *this* library/bench TU, recorded into the
/// benchmark JSON context as "loctk_build_type". google-benchmark's
/// own "library_build_type" describes how the system libbenchmark was
/// compiled — not our code — which is how debug-built numbers once
/// slipped into a committed BENCH file unnoticed. CI gates on this
/// key: committed BENCH_*.json must say "release".
inline const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

inline void write_metrics_snapshot(const std::string& bench_name) {
  const metrics::MetricsSnapshot snap =
      metrics::MetricsRegistry::global().snapshot();
  const std::string path = bench_name + ".metrics.json";
  std::ofstream os(path, std::ios::binary);
  snap.write_json(os);
  os << "\n";
  std::fprintf(stderr,
               "metrics snapshot (%zu counters, %zu gauges, "
               "%zu histograms) -> %s\n",
               snap.counters.size(), snap.gauges.size(),
               snap.histograms.size(), path.c_str());
}

}  // namespace loctk::bench

/// BENCHMARK_MAIN() with the build-type context stamp and the snapshot
/// epilogue appended. Also stamps "hardware_concurrency": the stock
/// "num_cpus" field has been observed reporting the package count on
/// some container runtimes, and a thread-scaling trajectory recorded
/// on a 1-vCPU host looks like a scaling bug unless the reader can see
/// how many threads the host could actually run.
#define LOCTK_BENCHMARK_MAIN_WITH_METRICS(bench_name)              \
  int main(int argc, char** argv) {                                \
    ::benchmark::Initialize(&argc, argv);                          \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {    \
      return 1;                                                    \
    }                                                              \
    ::benchmark::AddCustomContext("loctk_build_type",              \
                                  ::loctk::bench::build_type());   \
    ::benchmark::AddCustomContext(                                 \
        "hardware_concurrency",                                    \
        std::to_string(std::thread::hardware_concurrency()));      \
    ::benchmark::RunSpecifiedBenchmarks();                         \
    ::benchmark::Shutdown();                                       \
    ::loctk::bench::write_metrics_snapshot(bench_name);            \
    return 0;                                                      \
  }

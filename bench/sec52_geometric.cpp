// SEC52 — the paper's §5.2 geometric experiment.
//
// Phase 1 fits, per AP, the inverse-square model ss = a/d^2 + b by
// least squares over the training data. Phase 2 converts an observed
// vector into distances, intersects the adjacent circle pairs
// (A,B),(B,C),(C,D),(D,A) to get P1..P4, and reports the median point.
// Paper result: an average deviation around 15 ft over the same 13
// observations (the companion ITCC'05 paper reports 15.5 ft).
//
// This harness prints the per-point deviation table, the average, a
// 20-rerun band, and the design-choice comparison the paper's median
// construction implies (median vs mean vs geometric median vs classic
// least-squares lateration).

#include <cstdio>

#include "bench_util.hpp"
#include "core/geometric.hpp"
#include "core/probabilistic.hpp"

using namespace loctk;

int main() {
  bench::print_header("SEC52: geometric (circle-intersection) locator (paper 5.2)");

  bench::PaperExperiment exp(/*seed_base=*/52);
  const core::GeometricLocator locator(exp.db, exp.testbed.environment());

  std::printf("Per-AP inverse-square fits (paper eq. 2 form):\n");
  for (const auto& m : locator.models()) {
    const auto* inv2 = std::get_if<stats::InverseSquareModel>(&m.model);
    const auto* ap = exp.testbed.environment().find_by_bssid(m.bssid);
    std::printf("  AP %s: ss = %9.1f / d^2 + %6.2f   R^2 = %.3f\n",
                ap ? ap->name.c_str() : m.bssid.c_str(),
                inv2 ? inv2->a : 0.0, inv2 ? inv2->b : 0.0, m.r_squared());
  }

  const auto result =
      core::evaluate(locator, exp.db, exp.truths, exp.observations);
  bench::print_rule();
  std::printf("  %3s %14s %14s %10s\n", "#", "truth (ft)", "estimate (ft)",
              "dev (ft)");
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const auto& o = result.outcomes[i];
    std::printf("  %3zu (%5.1f,%5.1f) (%5.1f,%5.1f) %10.1f\n", i + 1,
                o.truth.x, o.truth.y, o.estimate.position.x,
                o.estimate.position.y, o.error_ft);
  }
  bench::print_rule();
  std::printf("average deviation: %.1f ft   (paper band: ~15 ft)\n",
              result.mean_error_ft());
  std::printf("median: %.1f ft   p90: %.1f ft   max: %.1f ft\n",
              result.median_error_ft(), result.p90_error_ft(),
              result.max_error_ft());

  // Error CDF (the canonical localization figure, RADAR-style):
  // fraction of observations located within x feet.
  {
    const auto errs = result.sorted_errors();
    std::printf("error CDF:  ");
    for (std::size_t i = 0; i < errs.size(); ++i) {
      std::printf("%.0f%%@%.0fft ",
                  100.0 * static_cast<double>(i + 1) /
                      static_cast<double>(errs.size()),
                  errs[i]);
      if (i % 5 == 4) std::printf("\n            ");
    }
    std::printf("\n");
  }

  // Band over 20 independent reruns.
  std::vector<double> means;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    bench::PaperExperiment rerun(seed * 11 + 500);
    const core::GeometricLocator loc(rerun.db, rerun.testbed.environment());
    means.push_back(
        core::evaluate(loc, rerun.db, rerun.truths, rerun.observations)
            .mean_error_ft());
  }
  const auto band = bench::band_of(means);
  std::printf("over 20 reruns: average deviation %.1f +- %.1f ft\n",
              band.mean, band.stddev);

  // Design-choice ablation on the same data: the paper's median vs
  // alternatives, plus the probabilistic locator for the crossover.
  bench::print_rule();
  std::printf("Estimator comparison (same observations):\n");
  std::printf("  %-26s %10s %10s\n", "estimator", "mean (ft)", "p90 (ft)");
  auto report = [&](const std::string& name,
                    const core::EvaluationResult& r) {
    std::printf("  %-26s %10.1f %10.1f\n", name.c_str(), r.mean_error_ft(),
                r.p90_error_ft());
  };
  for (const auto est :
       {core::PointEstimator::kComponentMedian,
        core::PointEstimator::kGeometricMedian, core::PointEstimator::kMean}) {
    core::GeometricConfig cfg;
    cfg.estimator = est;
    const core::GeometricLocator loc(exp.db, exp.testbed.environment(), cfg);
    const char* name =
        est == core::PointEstimator::kComponentMedian ? "median (paper)"
        : est == core::PointEstimator::kGeometricMedian ? "geometric median"
                                                        : "mean";
    report(name, core::evaluate(loc, exp.db, exp.truths, exp.observations));
  }
  const core::LaterationLocator lat(exp.db, exp.testbed.environment());
  report("least-squares lateration",
         core::evaluate(lat, exp.db, exp.truths, exp.observations));
  const core::ProbabilisticLocator prob(exp.db);
  report("probabilistic (5.1)",
         core::evaluate(prob, exp.db, exp.truths, exp.observations));
  std::printf("\nShape targets: geometric ~15 ft band; probabilistic beats\n"
              "geometric (the paper's motivation for fingerprinting).\n");
  return 0;
}

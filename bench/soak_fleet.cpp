// SOAK_FLEET — the scheduled-CI fleet soak driver.
//
// Synthesizes a fleet scenario (device count, scans per device, and
// seed from the command line), records its scan trace, replays it
// through per-device `LocationService` sessions on the default thread
// pool, and checks the full metric-invariant battery. Artifacts:
//
//   --report PATH    deterministic run-report JSON (replay-comparable)
//   --metrics PATH   process metrics-registry snapshot JSON
//
// `--server` switches to the server-level soak (testkit/server_soak):
// the fleet is split across `--sites` venues, every scan routes
// through a multi-tenant `LocationServer`, and snapshot swap waves
// land throughout the replay. `--devices` stays the *total* fleet
// size, so the nightly job can say `--server --devices 10000`.
//
// `--campus` runs the classic leg on a generated multi-building campus
// (1000+ APs, per-floor attenuation, heterogeneous device offsets)
// instead of the single-floor site; under `--server`, `--campus-sites
// K` synthesizes the first K sites as campuses so big-universe
// snapshots ride the swap waves.
//
// Exit status is 0 only when every invariant holds, so the CI job
// fails on any breach. The scheduled workflow runs this under TSan
// with >= 64 devices (docs/TESTING.md, "soak").

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include <thread>

#include "base/metrics.hpp"
#include "core/probabilistic.hpp"
#include "testkit/drift.hpp"
#include "testkit/scenario.hpp"
#include "testkit/server_soak.hpp"
#include "testkit/soak.hpp"
#include "testkit/trace.hpp"

using namespace loctk;

namespace {

struct Options {
  std::size_t devices = 64;
  int scans = 40;
  std::uint64_t seed = 64;
  double max_p99_s = 5.0;
  bool server = false;
  std::size_t sites = 8;
  std::size_t swap_every = 0;  // 0 = derive (~16 waves)
  bool drift = false;
  int drift_reruns = 4;
  bool campus = false;
  std::size_t campus_sites = 0;
  std::string frames_dir;
  std::size_t frame_every = 1;
  std::string report_path;
  std::string metrics_path;
  std::string trace_path;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--devices N] [--scans M] [--seed S]\n"
               "          [--max-p99 SECONDS] [--report PATH]\n"
               "          [--metrics PATH] [--trace PATH]\n"
               "          [--server] [--sites K] [--swap-every SCANS]\n"
               "          [--drift] [--drift-reruns N]\n"
               "          [--campus] [--campus-sites K]\n"
               "          [--frames DIR] [--frame-every N]\n",
               argv0);
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (flag == "--devices") {
      opt.devices = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (flag == "--scans") {
      opt.scans = std::atoi(value());
    } else if (flag == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--max-p99") {
      opt.max_p99_s = std::atof(value());
    } else if (flag == "--report") {
      opt.report_path = value();
    } else if (flag == "--metrics") {
      opt.metrics_path = value();
    } else if (flag == "--trace") {
      opt.trace_path = value();
    } else if (flag == "--server") {
      opt.server = true;
    } else if (flag == "--sites") {
      opt.sites = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (flag == "--swap-every") {
      opt.swap_every =
          static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (flag == "--drift") {
      opt.drift = true;
    } else if (flag == "--drift-reruns") {
      opt.drift_reruns = std::atoi(value());
    } else if (flag == "--campus") {
      opt.campus = true;
    } else if (flag == "--campus-sites") {
      opt.campus_sites =
          static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (flag == "--frames") {
      opt.frames_dir = value();
    } else if (flag == "--frame-every") {
      opt.frame_every =
          static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else {
      usage(argv[0]);
    }
  }
  if (opt.devices == 0 || opt.scans <= 0 || opt.sites == 0) usage(argv[0]);
  return opt;
}

void write_text_file(const std::string& path, const std::string& body) {
  std::ofstream os(path, std::ios::binary);
  os << body << '\n';
  if (!os) {
    std::fprintf(stderr, "soak_fleet: failed to write %s\n", path.c_str());
    std::exit(2);
  }
  std::printf("wrote %s\n", path.c_str());
}

/// The `--server` leg: total fleet split across `--sites` shards of a
/// LocationServer, swap waves landing under load, full invariant
/// battery from testkit/server_soak. Same artifact flags as the
/// classic leg; the combined (cross-site, deterministic) report is
/// what `--report` writes.
int run_server_mode(const Options& opt) {
  testkit::ServerSoakConfig config;
  config.sites = opt.sites;
  config.devices_per_site =
      std::max<std::size_t>(1, opt.devices / opt.sites);
  config.scans_per_device = opt.scans;
  config.seed = opt.seed;
  config.swap_every_scans = opt.swap_every;
  config.max_p99_on_scan_s = opt.max_p99_s;
  config.campus_sites =
      opt.campus ? config.sites : std::min(opt.campus_sites, config.sites);
  config.frames_dir = opt.frames_dir;
  config.frame_every_ticks = std::max<std::size_t>(1, opt.frame_every);

  std::printf(
      "soak_fleet --server: %zu sites x %zu devices x %d scans, seed %llu"
      " (%zu campus)\n",
      config.sites, config.devices_per_site, config.scans_per_device,
      static_cast<unsigned long long>(config.seed), config.campus_sites);
  const testkit::ServerSoakResult result = testkit::run_server_soak(config);

  std::fputs(result.report.to_text().c_str(), stdout);
  std::printf(
      "  wall %.2fs   on_scan mean %.1fus   p99 %.1fus\n"
      "  swap waves %llu (%llu under load), max generation %llu\n",
      result.wall_s, 1e6 * result.mean_on_scan_s,
      1e6 * result.p99_on_scan_s,
      static_cast<unsigned long long>(result.swap_waves),
      static_cast<unsigned long long>(result.swap_waves_under_load),
      static_cast<unsigned long long>(result.max_generation));
  if (result.frames_written > 0) {
    std::printf("  fleet frames: %llu written to %s\n",
                static_cast<unsigned long long>(result.frames_written),
                opt.frames_dir.c_str());
  }

  if (!opt.report_path.empty()) {
    write_text_file(opt.report_path, result.report.to_json());
  }
  if (!opt.metrics_path.empty()) {
    write_text_file(opt.metrics_path,
                    metrics::MetricsRegistry::global().snapshot().to_json());
  }

  if (!result.ok()) {
    for (const std::string& v : result.violations) {
      std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", v.c_str());
    }
    return 1;
  }
  std::printf("all invariants held (%zu scans, %zu devices, %zu sites)\n",
              result.report.scans_replayed,
              static_cast<std::size_t>(result.report.device_count),
              config.sites);
  return 0;
}

/// The `--drift` leg: full decay-and-recovery arcs through the
/// fingerprint lifecycle (testkit/drift.hpp) — drift detection on a
/// live server, quarantined resurvey, delta-compile bit-exact against
/// a rebuild, and republished accuracy back inside the paper bands.
int run_drift_mode(const Options& opt) {
  testkit::DriftScenarioConfig config;
  config.reruns = std::max(1, opt.drift_reruns);
  config.seed_base = opt.seed;
  std::printf("soak_fleet --drift: %d decay-and-recovery arcs, seed base %llu\n",
              config.reruns, static_cast<unsigned long long>(config.seed_base));
  const testkit::DriftSoakResult result = testkit::run_drift_soak(config);
  std::fputs(result.to_text().c_str(), stdout);
  if (!result.ok()) {
    for (const std::string& v : result.violations) {
      std::fprintf(stderr, "DRIFT GATE VIOLATION: %s\n", v.c_str());
    }
    return 1;
  }
  std::printf("drift recovery held (%d arcs, %llu republishes)\n",
              result.reruns,
              static_cast<unsigned long long>(result.republishes));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  if (opt.drift && !opt.server) return run_drift_mode(opt);
  if (opt.server && opt.drift) {
    // Mid-run drift schedule: the lifecycle republishes its own site
    // (snapshot swaps under its monitoring traffic) while the server
    // soak hammers the rest of the process — so drift recovery and
    // the multi-site swap machinery soak concurrently, and TSan
    // watches both.
    int drift_rc = 1;
    std::thread drifter([&] { drift_rc = run_drift_mode(opt); });
    const int server_rc = run_server_mode(opt);
    drifter.join();
    return server_rc != 0 ? server_rc : drift_rc;
  }
  if (opt.server) return run_server_mode(opt);

  testkit::ScenarioSpec spec =
      opt.campus
          ? testkit::ScenarioSpec::campus_fleet(opt.devices, opt.scans,
                                                opt.seed)
          : testkit::ScenarioSpec::fleet(opt.devices, opt.scans, opt.seed);
  if (opt.campus) {
    // A campus survey covers 240 rooms x 1020 APs; the single-site
    // default of 90 scans per room would spend the soak budget on
    // synthesis rather than replay.
    spec.train_scans = 12;
  }
  // The standing fault schedule: NaN bursts, lost scans, and vanished
  // strongest-AP rows spread across the fleet, so rejection and
  // degraded coasting stay load-bearing parts of every soak.
  for (std::uint32_t d = 0; d < opt.devices; d += 7) {
    spec.faults.push_back({.device = d, .scan_index = (d % 13) + 3,
                           .kind = testkit::FaultEvent::Kind::kNonFiniteRssi});
  }
  for (std::uint32_t d = 3; d < opt.devices; d += 11) {
    spec.faults.push_back({.device = d, .scan_index = (d % 17) + 2,
                           .kind = testkit::FaultEvent::Kind::kDropScan});
  }
  for (std::uint32_t d = 5; d < opt.devices; d += 9) {
    spec.faults.push_back(
        {.device = d, .scan_index = (d % 19) + 1,
         .kind = testkit::FaultEvent::Kind::kDropStrongestAp});
  }

  std::printf("soak_fleet: %zu devices x %d scans, seed %llu\n", opt.devices,
              opt.scans, static_cast<unsigned long long>(opt.seed));
  const testkit::Scenario scenario(spec);
  const testkit::ScanTrace trace = scenario.record_trace();
  std::printf("recorded trace: %zu scans (%zu bytes encoded)\n",
              trace.scans.size(), testkit::encode_trace(trace).size());
  if (!opt.trace_path.empty()) {
    testkit::write_trace(opt.trace_path, trace);
    std::printf("wrote %s\n", opt.trace_path.c_str());
  }

  // Soak the coarse-to-fine path: fleet scale is exactly where the
  // pruner earns its keep, and running it here keeps the degenerate
  // fallback under concurrent fault-schedule load.
  core::ProbabilisticConfig locator_config;
  locator_config.prune_top_k = 32;
  locator_config.prune_strongest_aps = 4;
  const core::ProbabilisticLocator locator(scenario.database(),
                                           locator_config);
  testkit::SoakConfig config;
  config.max_p99_on_scan_s = opt.max_p99_s;
  const testkit::SoakResult result =
      testkit::run_fleet_soak(trace, locator, config);

  std::fputs(result.report.to_text().c_str(), stdout);
  std::printf("  wall %.2fs   on_scan mean %.1fus   p99 %.1fus\n",
              result.wall_s, 1e6 * result.mean_on_scan_s,
              1e6 * result.p99_on_scan_s);

  // Pruner effectiveness: exact candidates scored vs the exhaustive
  // point count, plus how often the degenerate fallback fired. The
  // counters also land in the --metrics snapshot.
  {
    const double queries = static_cast<double>(
        metrics::counter("score.prune.queries").value());
    const double scored = static_cast<double>(
        metrics::counter("score.prune.candidates_scored").value());
    const double fallback = static_cast<double>(
        metrics::counter("score.prune.fallback_full").value());
    const double points =
        metrics::gauge("score.prune.database_points").value();
    if (queries > 0.0 && points > 0.0) {
      std::printf(
          "  pruner: %.0f queries, %.1f candidates/query of %.0f points "
          "(%.1f%% scored), %.0f full-pass fallbacks\n",
          queries, scored / queries, points,
          100.0 * scored / (queries * points), fallback);
    }
  }

  if (!opt.report_path.empty()) {
    write_text_file(opt.report_path, result.report.to_json());
  }
  if (!opt.metrics_path.empty()) {
    write_text_file(opt.metrics_path,
                    metrics::MetricsRegistry::global().snapshot().to_json());
  }

  if (!result.ok()) {
    for (const std::string& v : result.violations) {
      std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", v.c_str());
    }
    return 1;
  }
  std::printf("all invariants held (%zu scans, %zu devices)\n",
              result.report.scans_replayed,
              static_cast<std::size_t>(result.report.device_count));
  return 0;
}

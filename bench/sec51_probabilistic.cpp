// SEC51 — the paper's §5.1 probabilistic experiment.
//
// Setup (paper): 50 ft x 40 ft house, four 802.11b APs (A..D) at the
// corners, training points on a 10-ft grid, ~1.5 minutes of samples
// per point; 13 test locations scattered in the house; per-<point,AP>
// mean/sigma; maximum-likelihood estimation with equation (1).
// Paper result: "60% observations end up with a valid estimation."
//
// This harness prints the per-observation verdict table for the
// primary seed and the valid-estimation band over 20 independent
// reruns (survey + test days). Shape target: the rate lands in the
// 50-75% band around the paper's 60%.

#include <cstdio>

#include "bench_util.hpp"
#include "core/probabilistic.hpp"

using namespace loctk;

int main() {
  bench::print_header(
      "SEC51: probabilistic (max-likelihood) locator (paper 5.1)");
  bench::PaperExperiment exp(/*seed_base=*/51);
  std::printf("Setup: 50x40 ft house, 4 corner APs, 10-ft training grid "
              "(%zu points),\n%d scans/point, %d scattered test points.\n",
              exp.db.size(), bench::kTrainScans, bench::kTestPoints);

  const core::ProbabilisticLocator locator(exp.db);
  const auto result =
      core::evaluate(locator, exp.db, exp.truths, exp.observations);

  bench::print_rule();
  std::printf("  %3s %12s %12s %12s %8s %7s\n", "#", "truth (ft)",
              "est cell", "cell ctr", "err(ft)", "valid?");
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const auto& o = result.outcomes[i];
    std::printf("  %3zu (%4.1f,%4.1f) %12s (%4.0f,%4.0f) %8.1f %7s\n",
                i + 1, o.truth.x, o.truth.y,
                o.estimate.location_name.c_str(), o.estimate.position.x,
                o.estimate.position.y, o.error_ft,
                o.cell_correct ? "yes" : "no");
  }
  bench::print_rule();
  std::printf("valid-estimation rate: %.0f%%   (paper: 60%%)\n",
              100.0 * result.valid_estimation_rate());
  std::printf("mean error: %.1f ft   median: %.1f ft   p90: %.1f ft\n",
              result.mean_error_ft(), result.median_error_ft(),
              result.p90_error_ft());

  // Band over independent survey/test days.
  std::vector<double> rates, mean_errs;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    bench::PaperExperiment rerun(seed * 7 + 100);
    const core::ProbabilisticLocator loc(rerun.db);
    const auto r =
        core::evaluate(loc, rerun.db, rerun.truths, rerun.observations);
    rates.push_back(100.0 * r.valid_estimation_rate());
    mean_errs.push_back(r.mean_error_ft());
  }
  const auto rate_band = bench::band_of(rates);
  const auto err_band = bench::band_of(mean_errs);
  bench::print_rule();
  std::printf("over 20 independent reruns:\n");
  std::printf("  valid-estimation rate: %.0f%% +- %.0f%%  (paper: 60%%)\n",
              rate_band.mean, rate_band.stddev);
  std::printf("  mean error:            %.1f +- %.1f ft\n", err_band.mean,
              err_band.stddev);

  // Sigma-model ablation: the paper's per-point sigma vs a per-AP
  // pooled sigma (removes the -log(sigma) noise from the decision).
  std::vector<double> pooled_rates, pooled_errs;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    bench::PaperExperiment rerun(seed * 7 + 100);  // same seeds as above
    core::ProbabilisticConfig cfg;
    cfg.use_pooled_sigma = true;
    const core::ProbabilisticLocator loc(rerun.db, cfg);
    const auto r =
        core::evaluate(loc, rerun.db, rerun.truths, rerun.observations);
    pooled_rates.push_back(100.0 * r.valid_estimation_rate());
    pooled_errs.push_back(r.mean_error_ft());
  }
  std::printf("  pooled-sigma variant:  %.0f%% +- %.0f%%, "
              "mean error %.1f +- %.1f ft\n",
              bench::band_of(pooled_rates).mean,
              bench::band_of(pooled_rates).stddev,
              bench::band_of(pooled_errs).mean,
              bench::band_of(pooled_errs).stddev);
  std::printf("  (per-point sigma is the paper's formula; pooling is the\n"
              "  standard fix for its -log(sigma) tie-breaking noise)\n");
  return 0;
}

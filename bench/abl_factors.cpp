// ABL-FACTORS — the paper's future-work §6 item 1, literally:
// "We will perform more experiments that control one factor each time
// to explore a more predicable location model."
//
// The simulator makes the controlled-factor experiment the paper could
// not easily run in a physical house trivial: hold everything fixed
// and sweep exactly one of (a) the multipath bias amplitude, (b) the
// wall attenuation, (c) the path-loss exponent. Each table shows how
// the factor moves the two §5 approaches, answering "which unmodelled
// factor hurts which method".

#include <cstdio>

#include "bench_util.hpp"
#include "core/geometric.hpp"
#include "core/probabilistic.hpp"

using namespace loctk;

namespace {

struct Row {
  double prob_rate = 0.0;
  double prob_err = 0.0;
  double geo_err = 0.0;
};

// Runs the paper protocol on a given environment/propagation setup,
// averaged over `reruns` independent survey/test days.
Row run_protocol(const radio::Environment& env,
                 const radio::PropagationConfig& pc, std::uint64_t seed0,
                 int reruns = 5) {
  std::vector<double> rates, perr, gerr;
  for (int r = 0; r < reruns; ++r) {
    core::Testbed testbed(env, pc);
    const auto map = core::make_training_grid(
        testbed.environment().footprint(), bench::kGridSpacingFt);
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(r) * 101;
    const auto db = testbed.train(map, bench::kTrainScans, seed + 1);
    const auto truths = core::make_scattered_test_points(
        testbed.environment().footprint(), bench::kTestPoints);
    const auto obs =
        testbed.observe(truths, bench::kObserveScans, seed + 2);

    const core::ProbabilisticLocator prob(db);
    const auto pr = core::evaluate(prob, db, truths, obs);
    rates.push_back(100.0 * pr.valid_estimation_rate());
    perr.push_back(pr.mean_error_ft());
    const core::GeometricLocator geo(db, testbed.environment());
    gerr.push_back(core::evaluate(geo, db, truths, obs).mean_error_ft());
  }
  return {bench::band_of(rates).mean, bench::band_of(perr).mean,
          bench::band_of(gerr).mean};
}

void print_row(double factor, const Row& row) {
  std::printf("  %10.1f %12.0f %14.1f %14.1f\n", factor, row.prob_rate,
              row.prob_err, row.geo_err);
}

void print_table_header(const char* factor_name) {
  bench::print_rule();
  std::printf("  %10s %12s %14s %14s\n", factor_name, "prob rate(%)",
              "prob mean(ft)", "geo mean(ft)");
}

}  // namespace

int main() {
  bench::print_header(
      "ABL-FACTORS: one factor controlled at a time (paper 6.1)");

  // (a) Multipath bias amplitude — site-specific spatial structure
  // finer than the survey pitch.
  print_table_header("mp amp dB");
  for (const double amp : {0.0, 2.0, 3.5, 5.0, 7.0}) {
    radio::PropagationConfig pc;
    pc.multipath_amplitude_db = amp;
    print_row(amp, run_protocol(radio::make_paper_house(), pc,
                                20000 + static_cast<std::uint64_t>(amp * 10)));
  }
  std::printf("  reading: multipath hurts BOTH methods. The geometric fit\n"
              "  absorbs it as residual; the fingerprint method suffers\n"
              "  because test points sit off-grid, where the bias field\n"
              "  differs from the nearest trained signature — the cost of\n"
              "  a 10-ft survey pitch against few-ft spatial structure.\n");

  // (b) Wall attenuation — scale every wall's dB loss.
  print_table_header("wall x");
  for (const double scale : {0.0, 0.5, 1.0, 2.0, 3.0}) {
    radio::Environment env = radio::make_paper_house();
    radio::Environment scaled(env.footprint());
    for (const radio::Wall& w : env.walls()) {
      radio::Wall sw = w;
      sw.attenuation_db *= scale;
      scaled.add_wall(sw);
    }
    for (const radio::AccessPoint& ap : env.access_points()) {
      scaled.add_access_point(ap);
    }
    print_row(scale,
              run_protocol(scaled, radio::PropagationConfig{},
                           30000 + static_cast<std::uint64_t>(scale * 10)));
  }
  std::printf("  reading: wall strength is roughly neutral here — the\n"
              "  extra room-level signature (helps fingerprints) and the\n"
              "  extra distance-model bias (hurts ranging) offset across\n"
              "  this sweep; only the geometric tail moves.\n");

  // (c) Path-loss exponent — construction material / furniture proxy.
  print_table_header("exponent n");
  for (const double n : {2.0, 2.5, 3.0, 3.5, 4.0}) {
    radio::Environment env = radio::make_paper_house();
    radio::Environment adjusted(env.footprint());
    for (const radio::Wall& w : env.walls()) adjusted.add_wall(w);
    for (radio::AccessPoint ap : env.access_points()) {
      ap.path_loss_exponent = n;
      adjusted.add_access_point(ap);
    }
    print_row(n,
              run_protocol(adjusted, radio::PropagationConfig{},
                           40000 + static_cast<std::uint64_t>(n * 10)));
  }
  std::printf("  reading: shallow exponents (n=2, open space) make distant\n"
              "  cells look alike and hurt everyone; accuracy improves\n"
              "  steadily toward n~3.5 as the dB scale stretches, then\n"
              "  saturates as weak APs start dropping out of scans.\n");

  // (d) Body shadowing — the RADAR "user orientation" effect: the
  // surveyor faced +x during training; what if the user faces the
  // other way at locate time?
  bench::print_rule();
  std::printf("  %10s %12s %14s %12s %14s\n", "body dB", "1-head rate",
              "1-head mean", "4-head rate", "4-head mean");
  for (const double body : {0.0, 3.0, 5.0, 8.0}) {
    radio::ChannelConfig channel;
    channel.body_loss_db = body;
    // Two survey protocols: fixed heading (+x) vs RADAR's four
    // orientations per point; testing always faces -x (worst case for
    // the fixed-heading survey).
    std::vector<double> rates1, errs1, rates4, errs4;
    for (std::uint64_t r = 0; r < 5; ++r) {
      const std::uint64_t seed =
          50000 + r * 17 + static_cast<std::uint64_t>(body);
      core::Testbed testbed(radio::make_paper_house(),
                            radio::PropagationConfig{}, channel);
      const auto map = core::make_training_grid(
          testbed.environment().footprint(), bench::kGridSpacingFt);
      const auto truths = core::make_scattered_test_points(
          testbed.environment().footprint(), bench::kTestPoints);

      auto train_with = [&](const std::vector<double>& headings) {
        radio::Scanner scanner = testbed.make_scanner(seed + 1);
        wiscan::SurveyConfig survey;
        survey.scans_per_location = bench::kTrainScans;
        survey.headings = headings;
        wiscan::SurveyCampaign campaign(scanner, survey);
        return traindb::generate_database(campaign.run(map), map);
      };
      const auto db1 = train_with({});  // fixed heading 0
      const auto db4 = train_with(
          {0.0, 1.5707963, 3.14159265, 4.71238898});

      radio::Scanner scanner = testbed.make_scanner(seed + 500);
      scanner.set_heading(3.14159265358979);
      std::vector<core::Observation> obs;
      for (const geom::Vec2 p : truths) {
        scanner.reset_session();
        obs.push_back(core::Observation::from_scans(
            scanner.collect(p, bench::kObserveScans)));
      }
      const core::ProbabilisticLocator p1(db1);
      const auto r1 = core::evaluate(p1, db1, truths, obs);
      rates1.push_back(100.0 * r1.valid_estimation_rate());
      errs1.push_back(r1.mean_error_ft());
      const core::ProbabilisticLocator p4(db4);
      const auto r4 = core::evaluate(p4, db4, truths, obs);
      rates4.push_back(100.0 * r4.valid_estimation_rate());
      errs4.push_back(r4.mean_error_ft());
    }
    std::printf("  %10.0f %12.0f %14.1f %12.0f %14.1f\n", body,
                bench::band_of(rates1).mean, bench::band_of(errs1).mean,
                bench::band_of(rates4).mean, bench::band_of(errs4).mean);
  }
  std::printf("  reading: a survey/use heading mismatch degrades the\n"
              "  fixed-heading fingerprint with the body loss (RADAR's\n"
              "  user-orientation observation); surveying each point in\n"
              "  four orientations (RADAR's own protocol) recovers most\n"
              "  of the loss by averaging the asymmetry into the map.\n");
  return 0;
}

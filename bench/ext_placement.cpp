// EXT-PLACE — does principled AP placement beat the paper's corners?
//
// The paper puts the four APs "at the four corners of the experiment
// house" without justification. The placement planner picks AP
// positions that maximize the minimum pairwise signature separation;
// this bench runs the full §5.1/§5.2 protocol on three deployments of
// the same house — the paper's corners, the planner's choice, and a
// deliberately bad clump — and reports end-to-end accuracy.
//
// Shape targets: planned >= corners >> clump for the *fingerprint*
// metrics (the planner's objective is signature separability); the
// geometric locator is indifferent-to-worse under asymmetric layouts
// because its adjacent-ring pairing assumes a perimeter ring.

#include <cstdio>

#include "bench_util.hpp"
#include "core/geometric.hpp"
#include "core/placement.hpp"
#include "core/probabilistic.hpp"

using namespace loctk;

namespace {

struct DeploymentReport {
  double min_sep = 0.0;
  double prob_rate = 0.0;
  double prob_err = 0.0;
  double geo_err = 0.0;
};

DeploymentReport evaluate_deployment(
    const radio::Environment& site,
    const std::vector<geom::Vec2>& ap_positions, std::uint64_t seed0) {
  DeploymentReport rep;
  rep.min_sep =
      core::score_placement(site, ap_positions).min_separation_db;

  std::vector<double> rates, perr, gerr;
  for (std::uint64_t r = 0; r < 5; ++r) {
    core::Testbed testbed(core::with_aps(site, ap_positions));
    const auto map = core::make_training_grid(
        testbed.environment().footprint(), bench::kGridSpacingFt);
    const auto db =
        testbed.train(map, bench::kTrainScans, seed0 + r * 13 + 1);
    const auto truths = core::make_scattered_test_points(
        testbed.environment().footprint(), bench::kTestPoints);
    const auto obs = testbed.observe(truths, bench::kObserveScans,
                                     seed0 + r * 13 + 2);

    const core::ProbabilisticLocator prob(db);
    const auto pr = core::evaluate(prob, db, truths, obs);
    rates.push_back(100.0 * pr.valid_estimation_rate());
    perr.push_back(pr.mean_error_ft());
    const core::GeometricLocator geo(db, testbed.environment());
    gerr.push_back(core::evaluate(geo, db, truths, obs).mean_error_ft());
  }
  rep.prob_rate = bench::band_of(rates).mean;
  rep.prob_err = bench::band_of(perr).mean;
  rep.geo_err = bench::band_of(gerr).mean;
  return rep;
}

}  // namespace

int main() {
  bench::print_header(
      "EXT-PLACE: AP placement planning vs the paper's corners");

  // The bare site: the paper house's walls without its APs.
  const radio::Environment house = radio::make_paper_house();
  radio::Environment site(house.footprint());
  for (const radio::Wall& w : house.walls()) site.add_wall(w);

  // Deployment 1: the paper's corners.
  std::vector<geom::Vec2> corners;
  for (const radio::AccessPoint& ap : house.access_points()) {
    corners.push_back(ap.position);
  }

  // Deployment 2: the planner's greedy pick from a lattice.
  const auto candidates = core::candidate_lattice(site.footprint(), 6.0);
  const core::PlacementResult plan =
      core::plan_ap_placement(site, candidates, 4);
  std::vector<geom::Vec2> planned;
  for (const std::size_t i : plan.chosen) {
    planned.push_back(candidates[i]);
  }
  std::printf("planner picked:");
  for (const geom::Vec2 p : planned) {
    std::printf(" (%.0f,%.0f)", p.x, p.y);
  }
  std::printf("  min-sep %.1f dB\n", plan.min_separation_db);

  // Deployment 3: a clump near the center (worst case).
  const std::vector<geom::Vec2> clump = {
      {23.0, 19.0}, {27.0, 19.0}, {27.0, 21.0}, {23.0, 21.0}};

  std::printf("\n  %-18s %10s %12s %14s %12s\n", "deployment",
              "min-sep dB", "prob rate %", "prob mean ft", "geo mean ft");
  struct Row {
    const char* name;
    const std::vector<geom::Vec2>* aps;
    std::uint64_t seed;
  };
  const Row rows[] = {
      {"paper corners", &corners, 51000},
      {"planned", &planned, 52000},
      {"center clump", &clump, 53000},
  };
  for (const Row& row : rows) {
    const DeploymentReport rep =
        evaluate_deployment(site, *row.aps, row.seed);
    std::printf("  %-18s %10.1f %12.0f %14.1f %12.1f\n", row.name,
                rep.min_sep, rep.prob_rate, rep.prob_err, rep.geo_err);
  }
  std::printf("\nShape targets: planned >= paper corners >> clump on the\n"
              "fingerprint metrics; the separation score predicts that\n"
              "ordering. The geometric column is layout-sensitive (its\n"
              "adjacent-ring pairing assumes a perimeter ring), so the\n"
              "planner's asymmetric picks can regress it.\n");
  return 0;
}

// Randomized corruption fuzz driver for the ingest decoders.
//
// Mutates known-good training-database bytes, wi-scan text, archive
// containers, and location maps, then pushes every mutant through the
// structured-error entry points. The contract under test: *every*
// outcome is either a successfully decoded value or a typed
// `loctk::Error` — never an uncaught exception, never UB. The CI
// sanitizer job runs this under ASan/UBSan, where any out-of-bounds
// read during decoding aborts the process.
//
// Usage: fuzz_codec [iterations-per-target] [seed]
// Defaults: 2000 iterations per target, fixed seed (deterministic).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <sstream>
#include <string>

#include "base/error.hpp"
#include "traindb/codec.hpp"
#include "traindb/database.hpp"
#include "wiscan/archive.hpp"
#include "wiscan/scan_buffer.hpp"

namespace {

using loctk::ErrorCode;

std::string golden_db_bytes() {
  loctk::traindb::TrainingDatabase db;
  db.set_site_name("fuzz-bench");
  for (int i = 0; i < 6; ++i) {
    loctk::traindb::TrainingPoint p;
    p.location = "point-" + std::to_string(i);
    p.position = {i * 8.0, 40.0 - i * 4.0};
    for (int a = 0; a < 3; ++a) {
      loctk::traindb::ApStatistics s;
      s.bssid = "aa:bb:cc:dd:" + std::to_string(10 + i) + ":0" +
                std::to_string(a);
      s.mean_dbm = -45.0 - 2.0 * a - i;
      s.stddev_db = 2.5 + a;
      s.sample_count = 90;
      s.scan_count = 90;
      s.min_dbm = -70.0;
      s.max_dbm = -40.0;
      for (int k = 0; k < 64; ++k) {
        s.samples_centi_dbm.push_back(-4500 - 100 * a - (k % 11) * 25);
      }
      p.per_ap.push_back(std::move(s));
    }
    db.add_point(std::move(p));
  }
  return loctk::traindb::encode_database(db);
}

std::string golden_wiscan_text() {
  std::string text = "# wi-scan v1\n# location: fuzz-room\n";
  for (int t = 0; t < 10; ++t) {
    for (int a = 0; a < 6; ++a) {
      text += "time=" + std::to_string(t) + ".5 bssid=00:11:22:33:44:0" +
              std::to_string(a) + " ssid=corp channel=" +
              std::to_string(1 + (a * 5) % 11) + " rssi=-" +
              std::to_string(42 + 3 * a + (t * 7) % 9) + ".25\n";
    }
  }
  return text;
}

std::string golden_archive_bytes() {
  loctk::wiscan::Archive ar;
  const std::string scan = golden_wiscan_text();
  for (int i = 0; i < 4; ++i) {
    ar.add("survey/room-" + std::to_string(i) + ".wiscan", scan);
  }
  std::ostringstream os;
  ar.write(os);
  return os.str();
}

// One structural mutation: overwrite, truncate, append, or excise.
void mutate(std::string& bytes, std::mt19937_64& rng) {
  if (bytes.empty()) {
    bytes.push_back(static_cast<char>(rng() & 0xff));
    return;
  }
  switch (rng() % 6) {
    case 0:
      bytes.resize(rng() % bytes.size());
      break;
    case 1:
      for (int i = 0; i < 12; ++i) {
        bytes.push_back(static_cast<char>(rng() & 0xff));
      }
      break;
    case 2:
      bytes.erase(rng() % bytes.size(), 1 + rng() % 24);
      break;
    default: {
      const int n = 1 + static_cast<int>(rng() % 4);
      for (int i = 0; i < n; ++i) {
        bytes[rng() % bytes.size()] = static_cast<char>(rng() & 0xff);
      }
      break;
    }
  }
}

struct Tally {
  long ok = 0;
  long typed[5] = {0, 0, 0, 0, 0};
  long escaped = 0;  // anything not a value / typed Error — a failure

  void count(const loctk::Error& e) {
    typed[static_cast<int>(e.code())]++;
  }
  long rejected() const {
    long sum = 0;
    for (const long t : typed) sum += t;
    return sum;
  }
};

void report(const char* target, const Tally& t, long iterations) {
  std::printf(
      "%-14s %7ld iters: %6ld ok, %6ld rejected "
      "(io=%ld parse=%ld corrupt=%ld degenerate=%ld internal=%ld), "
      "%ld escaped\n",
      target, iterations, t.ok, t.rejected(), t.typed[0], t.typed[1],
      t.typed[2], t.typed[3], t.typed[4], t.escaped);
}

template <typename TryDecode>
Tally fuzz_target(const std::string& golden, long iterations,
                  std::uint64_t seed, TryDecode&& try_decode) {
  std::mt19937_64 rng(seed);
  Tally tally;
  for (long i = 0; i < iterations; ++i) {
    std::string bytes = golden;
    const int mutations = 1 + static_cast<int>(rng() % 4);
    for (int m = 0; m < mutations; ++m) mutate(bytes, rng);
    try {
      const auto result = try_decode(bytes);
      if (result.ok()) {
        ++tally.ok;
      } else {
        tally.count(result.error());
      }
    } catch (...) {
      // try_* entry points promise not to throw; reaching here is the
      // bug this driver exists to catch.
      ++tally.escaped;
    }
  }
  return tally;
}

}  // namespace

int main(int argc, char** argv) {
  const long iterations = argc > 1 ? std::atol(argv[1]) : 2000;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 0x10c7f0221ull;

  long escaped = 0;

  {
    const Tally t = fuzz_target(
        golden_db_bytes(), iterations, seed, [](const std::string& b) {
          return loctk::traindb::try_decode_database(b);
        });
    report("traindb", t, iterations);
    escaped += t.escaped;
  }
  {
    const Tally t = fuzz_target(
        golden_wiscan_text(), iterations, seed ^ 0x1111,
        [](const std::string& b) {
          return loctk::wiscan::try_parse_wiscan_buffer(b, "fallback");
        });
    report("wiscan", t, iterations);
    escaped += t.escaped;
  }
  {
    // The archive reader still speaks exceptions; adapt inline so the
    // container format gets the same treatment.
    const Tally t = fuzz_target(
        golden_archive_bytes(), iterations, seed ^ 0x2222,
        [](const std::string& b)
            -> loctk::Result<loctk::wiscan::Archive> {
          try {
            return loctk::wiscan::Archive::read_bytes(b);
          } catch (const loctk::wiscan::ArchiveError& e) {
            return loctk::Error(ErrorCode::kCorrupt, e.what());
          }
        });
    report("archive", t, iterations);
    escaped += t.escaped;
  }
  {
    const std::string map =
        "# location-map v1\nkitchen 1.0 2.0\nhall 3.5 4.5\n\"den x\" 9 9\n";
    const Tally t = fuzz_target(
        map, iterations, seed ^ 0x3333, [](const std::string& b) {
          return loctk::wiscan::try_parse_location_map_buffer(b);
        });
    report("locmap", t, iterations);
    escaped += t.escaped;
  }

  if (escaped != 0) {
    std::fprintf(stderr, "FAIL: %ld mutants escaped the taxonomy\n",
                 escaped);
    return 1;
  }
  std::printf("all mutants handled: value or typed error, zero escapes\n");
  return 0;
}

// ABL-NOISE — ablation: shadowing noise sweep.
//
// The paper's conclusion names "the unstableness of the RF signal
// strength" as the largest barrier (§6). This bench sweeps the
// shadowing sigma (2..12 dB; indoor measurements sit around 3-5) and
// shows how both approaches degrade. The working-phase dwell is short
// (10 scans, not the paper's 90): long dwells average the noise away,
// which is itself a finding the table demonstrates via the 90-scan
// column. Shape targets: monotone degradation (on average) for both
// approaches; the probabilistic method degrades more gracefully than
// the geometric one (its sigma model absorbs noise; distance
// inversion amplifies it exponentially).

#include <cstdio>

#include "bench_util.hpp"
#include "core/geometric.hpp"
#include "core/probabilistic.hpp"

using namespace loctk;

namespace {

struct Cell {
  double rate = 0.0;
  double err_short = 0.0;  // 10-scan dwell
  double err_long = 0.0;   // 90-scan dwell
  double geo_short = 0.0;
};

}  // namespace

int main() {
  bench::print_header(
      "ABL-NOISE: shadowing sigma sweep (paper 6: RF unstableness)");
  std::printf("%10s %12s %14s %14s %14s\n", "sigma(dB)", "prob rate(%)",
              "prob mean(ft)", "prob mean(ft)", "geo mean(ft)");
  std::printf("%10s %12s %14s %14s %14s\n", "", "10-scan", "10-scan dwell",
              "90-scan dwell", "10-scan dwell");
  bench::print_rule();

  for (const double sigma : {2.0, 4.0, 6.0, 8.0, 10.0, 12.0}) {
    radio::ChannelConfig channel;
    channel.shadowing_sigma_db = sigma;

    std::vector<double> rates, errs_short, errs_long, geo_short;
    for (std::uint64_t rerun = 0; rerun < 8; ++rerun) {
      const std::uint64_t base =
          9000 + rerun * 37 + static_cast<std::uint64_t>(sigma * 10.0);
      core::Testbed testbed(radio::make_paper_house(),
                            radio::PropagationConfig{}, channel);
      const auto map = core::make_training_grid(
          testbed.environment().footprint(), bench::kGridSpacingFt);
      const auto db = testbed.train(map, bench::kTrainScans, base + 1);
      const auto truths = core::make_scattered_test_points(
          testbed.environment().footprint(), bench::kTestPoints);
      const auto obs_short = testbed.observe(truths, 10, base + 2);
      const auto obs_long = testbed.observe(truths, 90, base + 3);

      const core::ProbabilisticLocator prob(db);
      const auto rs = core::evaluate(prob, db, truths, obs_short);
      const auto rl = core::evaluate(prob, db, truths, obs_long);
      rates.push_back(100.0 * rs.valid_estimation_rate());
      errs_short.push_back(rs.mean_error_ft());
      errs_long.push_back(rl.mean_error_ft());

      const core::GeometricLocator geo(db, testbed.environment());
      geo_short.push_back(
          core::evaluate(geo, db, truths, obs_short).mean_error_ft());
    }
    std::printf("%10.0f %12.0f %14.1f %14.1f %14.1f\n", sigma,
                bench::band_of(rates).mean,
                bench::band_of(errs_short).mean,
                bench::band_of(errs_long).mean,
                bench::band_of(geo_short).mean);
  }
  bench::print_rule();
  std::printf("Reading: short dwells expose the channel noise directly;\n"
              "the 90-scan dwell (paper protocol) averages most of it\n"
              "away, which is why the paper could work at all at 4-5 dB\n"
              "indoor sigma.\n");
  return 0;
}

// EXT-DEVICE — device heterogeneity: the survey laptop and the user's
// phone disagree by a constant few dB.
//
// Classic failure mode for absolute-RSSI fingerprinting (and the
// reason the SSD line of work exists): train with device A, locate
// with device B whose NIC reports `offset` dB higher. This bench
// sweeps the offset and compares the paper's §5.1 locator, plain
// k-NN, and SSD (difference) k-NN on identical observations.
//
// Shape targets: the absolute matchers degrade with |offset| (the
// decision margin shrinks as a uniform shift mimics "closer to every
// AP at once"); SSD stays flat across the sweep by construction; at
// offset 0 SSD pays little or nothing over plain k-NN.

#include <cstdio>

#include "bench_util.hpp"
#include "core/knn.hpp"
#include "core/probabilistic.hpp"
#include "core/ssd_locator.hpp"

using namespace loctk;

int main() {
  bench::print_header(
      "EXT-DEVICE: cross-device offsets vs absolute and SSD matching");
  std::printf("  %10s %14s %14s %14s\n", "offset dB", "prob mean(ft)",
              "knn-3 mean(ft)", "ssd-3 mean(ft)");

  for (const double offset : {-9.0, -6.0, -3.0, 0.0, 3.0, 6.0, 9.0}) {
    std::vector<double> e_prob, e_knn, e_ssd;
    for (std::uint64_t r = 0; r < 5; ++r) {
      const std::uint64_t seed =
          70000 + r * 23 +
          static_cast<std::uint64_t>((offset + 20.0) * 10.0);
      core::Testbed testbed(radio::make_paper_house());
      const auto map = core::make_training_grid(
          testbed.environment().footprint(), bench::kGridSpacingFt);
      // Train with the reference device (offset 0).
      const auto db = testbed.train(map, bench::kTrainScans, seed + 1);
      const auto truths = core::make_scattered_test_points(
          testbed.environment().footprint(), bench::kTestPoints);

      // Locate with the offset device.
      radio::ChannelConfig device = testbed.channel_config();
      device.device_offset_db = offset;
      radio::Scanner scanner(testbed.propagation(), device, seed + 2);
      std::vector<core::Observation> obs;
      for (const geom::Vec2 p : truths) {
        scanner.reset_session();
        obs.push_back(core::Observation::from_scans(
            scanner.collect(p, bench::kObserveScans)));
      }

      const core::ProbabilisticLocator prob(db);
      e_prob.push_back(
          core::evaluate(prob, db, truths, obs).mean_error_ft());
      const core::KnnLocator knn(db, core::KnnConfig{.k = 3});
      e_knn.push_back(
          core::evaluate(knn, db, truths, obs).mean_error_ft());
      const core::SsdLocator ssd(db, core::SsdConfig{.k = 3});
      e_ssd.push_back(
          core::evaluate(ssd, db, truths, obs).mean_error_ft());
    }
    std::printf("  %10.0f %14.1f %14.1f %14.1f\n", offset,
                bench::band_of(e_prob).mean, bench::band_of(e_knn).mean,
                bench::band_of(e_ssd).mean);
  }
  std::printf("\nReading: the absolute matchers drift upward with |offset|\n"
              "(the probabilistic locator most, ~7.6 -> ~10.3 ft at 9 dB);\n"
              "the SSD column stays flat by construction. Four corner APs\n"
              "leave uniform shifts partly unrealizable by any position,\n"
              "which caps how badly absolute matching can break here —\n"
              "denser AP sets and larger offsets widen the gap.\n");
  return 0;
}

// PERF — campus-cardinality serving costs: the compiled scoring
// engine on a generated 2-building x 3-floor campus (1020 APs, 240
// surveyed rooms) instead of the single-floor office corpus
// perf_score_kernel uses. The interesting deltas live here, not
// there: pruning only earns its keep past a few hundred rows, floor
// selection folds six per-floor locators per fix, and compiling a
// 1000-slot universe is the unit of work every snapshot swap pays.

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "bench_metrics.hpp"
#include "core/compiled_db.hpp"
#include "core/floor_selector.hpp"
#include "core/observation.hpp"
#include "core/probabilistic.hpp"
#include "radio/campus.hpp"
#include "radio/scanner.hpp"
#include "testkit/scenario.hpp"

using namespace loctk;

namespace {

struct CampusCorpus {
  CampusCorpus() : scenario(make_spec()) {
    for (const auto& db : scenario.floor_databases()) floors.push_back(&db);
    const radio::Campus& campus = scenario.campus();
    const auto rooms = campus.room_centers(0);
    const radio::CampusFloorView view(campus, 0, 0);
    radio::Scanner scanner(view, radio::ChannelConfig{}, 99);
    observation =
        core::Observation::from_scans(scanner.collect(rooms[3], 8));
  }

  static testkit::ScenarioSpec make_spec() {
    testkit::ScenarioSpec spec =
        testkit::ScenarioSpec::campus_fleet(4, 2, /*seed=*/55);
    spec.train_scans = 6;
    return spec;
  }

  testkit::Scenario scenario;
  std::vector<const traindb::TrainingDatabase*> floors;
  core::Observation observation;
};

const CampusCorpus& campus() {
  static const CampusCorpus c;
  return c;
}

core::ProbabilisticConfig pruned_config() {
  core::ProbabilisticConfig config;
  config.prune_top_k = 32;
  config.prune_strongest_aps = 4;
  return config;
}

// The exhaustive sweep over all 240 rows x 1020-slot rows: the cost
// pruning is measured against.
void BM_CampusLocate_Exhaustive(benchmark::State& state) {
  const CampusCorpus& c = campus();
  const core::ProbabilisticLocator locator(c.scenario.database());
  for (auto _ : state) {
    benchmark::DoNotOptimize(locator.locate(c.observation));
  }
  state.counters["points"] =
      static_cast<double>(c.scenario.database().size());
  state.counters["universe"] = static_cast<double>(
      c.scenario.database().bssid_universe().size());
}
BENCHMARK(BM_CampusLocate_Exhaustive)->Unit(benchmark::kMicrosecond);

// Coarse-to-fine on the ML coarse mode (exact restricted likelihood
// over the candidate union) — top-1 identical to the exhaustive sweep
// by construction, so this line is pure speedup.
void BM_CampusLocate_Pruned(benchmark::State& state) {
  const CampusCorpus& c = campus();
  const core::ProbabilisticLocator locator(c.scenario.database(),
                                           pruned_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(locator.locate(c.observation));
  }
}
BENCHMARK(BM_CampusLocate_Pruned)->Unit(benchmark::kMicrosecond);

// Floor determination + in-floor fix: six per-floor pruned locates
// plus the per-term normalized fold.
void BM_CampusFloorSelect(benchmark::State& state) {
  const CampusCorpus& c = campus();
  const core::FloorSelector selector(c.floors, pruned_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.locate(c.observation));
  }
  state.counters["floors"] = static_cast<double>(selector.floor_count());
}
BENCHMARK(BM_CampusFloorSelect)->Unit(benchmark::kMicrosecond);

// What every republish of a campus site pays before its snapshot can
// swap in: one compile of the merged 1000-slot database.
void BM_CampusCompileDatabase(benchmark::State& state) {
  const CampusCorpus& c = campus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::CompiledDatabase::compile(c.scenario.database()));
  }
}
BENCHMARK(BM_CampusCompileDatabase)->Unit(benchmark::kMillisecond);

}  // namespace

LOCTK_BENCHMARK_MAIN_WITH_METRICS("perf_campus")

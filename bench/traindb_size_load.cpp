// TBL-DB — the paper's §4.3 claims about training databases:
// "they are compressed, which makes them easier to move and transmit
// over a network, and they can be loaded into memory more quickly
// than reading multiple wi-scan files line by line."
//
// This bench builds the paper survey (12 points x 4 APs x 90 scans),
// prints the size table (raw wi-scan text vs .lar archive vs .ltdb
// stats-only vs .ltdb with samples), then uses google-benchmark to
// time wi-scan re-parsing vs database decoding.

#include <cstdio>
#include <sstream>

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "traindb/codec.hpp"
#include "traindb/generator.hpp"
#include "wiscan/format.hpp"
#include "wiscan/survey.hpp"

using namespace loctk;

namespace {

struct Corpus {
  wiscan::Collection collection;
  wiscan::LocationMap map;
  std::string raw_text;         // concatenated wi-scan files
  std::string archive_bytes;    // .lar container
  std::string db_stats_bytes;   // .ltdb without samples
  std::string db_samples_bytes; // .ltdb with samples
};

const Corpus& corpus() {
  static const Corpus c = [] {
    Corpus out;
    core::Testbed testbed(radio::make_paper_house());
    out.map = core::make_training_grid(
        testbed.environment().footprint(), bench::kGridSpacingFt);
    radio::Scanner scanner = testbed.make_scanner(4242);
    wiscan::SurveyConfig cfg;
    cfg.scans_per_location = bench::kTrainScans;
    wiscan::SurveyCampaign campaign(scanner, cfg);
    out.collection = campaign.run(out.map);

    wiscan::Archive archive;
    for (const auto& f : out.collection.files) {
      const std::string text = wiscan::encode_wiscan(f);
      out.raw_text += text;
      archive.add(wiscan::sanitize_location_name(f.location) + ".wiscan",
                  text);
    }
    std::ostringstream ar_bytes;
    archive.write(ar_bytes);
    out.archive_bytes = ar_bytes.str();

    traindb::GeneratorConfig stats_only;
    out.db_stats_bytes = traindb::encode_database(
        traindb::generate_database(out.collection, out.map, stats_only));
    traindb::GeneratorConfig with_samples;
    with_samples.keep_samples = true;
    out.db_samples_bytes = traindb::encode_database(
        traindb::generate_database(out.collection, out.map, with_samples));
    return out;
  }();
  return c;
}

void BM_ParseWiscanCollection(benchmark::State& state) {
  const Corpus& c = corpus();
  for (auto _ : state) {
    // Re-parse every file from its text form (the paper's "reading
    // multiple wi-scan files line by line").
    std::size_t entries = 0;
    for (const auto& f : c.collection.files) {
      const wiscan::WiScanFile parsed =
          wiscan::decode_wiscan(wiscan::encode_wiscan(f), f.location);
      entries += parsed.entries.size();
    }
    benchmark::DoNotOptimize(entries);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.raw_text.size()));
}
BENCHMARK(BM_ParseWiscanCollection);

void BM_GenerateDatabaseFromCollection(benchmark::State& state) {
  const Corpus& c = corpus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        traindb::generate_database(c.collection, c.map));
  }
}
BENCHMARK(BM_GenerateDatabaseFromCollection);

void BM_DecodeDatabaseStatsOnly(benchmark::State& state) {
  const Corpus& c = corpus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(traindb::decode_database(c.db_stats_bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.db_stats_bytes.size()));
}
BENCHMARK(BM_DecodeDatabaseStatsOnly);

void BM_DecodeDatabaseWithSamples(benchmark::State& state) {
  const Corpus& c = corpus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(traindb::decode_database(c.db_samples_bytes));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(c.db_samples_bytes.size()));
}
BENCHMARK(BM_DecodeDatabaseWithSamples);

void BM_EncodeDatabaseWithSamples(benchmark::State& state) {
  const Corpus& c = corpus();
  const traindb::TrainingDatabase db =
      traindb::decode_database(c.db_samples_bytes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(traindb::encode_database(db));
  }
}
BENCHMARK(BM_EncodeDatabaseWithSamples);

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("TBL-DB: training database size & load (paper 4.3)");
  const Corpus& c = corpus();
  const auto pct = [&](std::size_t bytes) {
    return 100.0 * static_cast<double>(bytes) /
           static_cast<double>(c.raw_text.size());
  };
  std::printf("survey: %zu locations x %d scans, %zu wi-scan rows\n",
              c.collection.files.size(), bench::kTrainScans,
              c.collection.total_entries());
  std::printf("  %-34s %10s %10s\n", "representation", "bytes", "% of raw");
  std::printf("  %-34s %10zu %9.1f%%\n", "raw wi-scan text",
              c.raw_text.size(), 100.0);
  std::printf("  %-34s %10zu %9.1f%%\n", ".lar archive (container)",
              c.archive_bytes.size(), pct(c.archive_bytes.size()));
  std::printf("  %-34s %10zu %9.1f%%\n", ".ltdb training db (stats only)",
              c.db_stats_bytes.size(), pct(c.db_stats_bytes.size()));
  std::printf("  %-34s %10zu %9.1f%%\n", ".ltdb training db (with samples)",
              c.db_samples_bytes.size(), pct(c.db_samples_bytes.size()));
  std::printf("\nShape targets: stats-only db well under 10%% of raw; the\n"
              "with-samples db still several times smaller than raw; decode\n"
              "much faster than re-parsing (timings below).\n");
  bench::print_rule();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// FIG4 — "Signal strength VS. distance" (paper §5.2, Figure 4).
//
// The paper plots, for one AP, the measured signal strength against
// distance and the least-squares inverse-square fit
//     ss = a / d^2 + b      (paper eq. 2)
// This harness regenerates the series from the simulated experiment
// house survey: per-AP (distance, mean-ss) pairs from the training
// database, the fitted model, and the measured-vs-fitted table.
// Shape target: a decreasing convex series with a least-squares fit
// that tracks it (positive `a` for dBm readings), consistent across
// all four APs.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/geometric.hpp"
#include "stats/regression.hpp"

using namespace loctk;

int main() {
  bench::print_header(
      "FIG4: signal strength vs distance, inverse-square fit (paper Fig. 4)");

  bench::PaperExperiment exp(/*seed_base=*/4);
  const auto& env = exp.testbed.environment();

  for (const radio::AccessPoint& ap : env.access_points()) {
    // Gather (distance, mean signal) from the training database, the
    // same data the paper's Phase-1 fit used.
    std::vector<double> dist, ss;
    for (const auto& tp : exp.db.points()) {
      if (const auto* s = tp.find(ap.bssid)) {
        dist.push_back(geom::distance(ap.position, tp.position));
        ss.push_back(s->mean_dbm);
      }
    }
    const auto inv2 = stats::fit_inverse_square(dist, ss);
    const auto logd = stats::fit_log_distance(dist, ss);
    if (!inv2 || !logd) {
      std::printf("AP %s: not enough training coverage to fit\n",
                  ap.name.c_str());
      continue;
    }

    std::printf("\nAP %s  (paper form)  ss = %.1f / d^2 + %.2f   R^2 = %.3f\n",
                ap.name.c_str(), inv2->a, inv2->b, inv2->r_squared);
    std::printf("      (log-distance) ss = %.2f - 10*%.2f*log10(d)  R^2 = %.3f\n",
                logd->p0, logd->n, logd->r_squared);
    std::printf("  %10s %14s %14s %10s\n", "dist (ft)", "measured (dBm)",
                "fitted (dBm)", "resid");
    // Sort the series by distance for the figure.
    std::vector<std::size_t> order(dist.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return dist[a] < dist[b]; });
    for (const std::size_t i : order) {
      const double fit = inv2->predict(dist[i]);
      std::printf("  %10.1f %14.1f %14.1f %10.1f\n", dist[i], ss[i], fit,
                  ss[i] - fit);
    }
  }

  // Series at regular distances for the plotted curve itself (the
  // figure's x-axis runs to ~65 ft in the 50x40 house).
  const radio::AccessPoint& ap0 = env.access_points().front();
  std::vector<double> dist, ss;
  for (const auto& tp : exp.db.points()) {
    if (const auto* s = tp.find(ap0.bssid)) {
      dist.push_back(geom::distance(ap0.position, tp.position));
      ss.push_back(s->mean_dbm);
    }
  }
  const auto fit = stats::fit_inverse_square(dist, ss);
  bench::print_rule();
  std::printf("Fitted curve for AP %s, 5..65 ft:\n", ap0.name.c_str());
  std::printf("  %8s %12s\n", "d (ft)", "ss = a/d^2+b");
  for (double d = 5.0; d <= 65.0; d += 5.0) {
    std::printf("  %8.0f %12.1f\n", d, fit->predict(d));
  }
  std::printf(
      "\nReproduction targets: a decreasing convex series and a good\n"
      "least-squares inverse-square fit per AP (paper eq. 2 / Fig. 4).\n"
      "With dBm readings the coefficient a is positive (signal is\n"
      "*higher* near the AP and decays to the asymptote b); a sniffer\n"
      "reporting an inverted or percentage scale flips the sign, which\n"
      "is why published coefficients vary in sign across papers.\n");
  return 0;
}

// PERF — the multi-tenant serving core: LocationServer::on_scan
// throughput across thread counts (the headline scans/sec scaling
// number), the same traffic with a hot-swap storm running against it,
// and the microcosts underneath: the epoch pin, the session lookup,
// and a full snapshot swap.
//
// The office corpus matches perf_score_kernel (120x80 ft, 6 APs, 5-ft
// grid); every site snapshot is a pruned §5.1 probabilistic locator —
// the production serve configuration.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "bench_metrics.hpp"
#include "core/compiled_db.hpp"
#include "core/pipeline.hpp"
#include "core/probabilistic.hpp"
#include "radio/environment.hpp"
#include "serve/epoch.hpp"
#include "serve/location_server.hpp"
#include "serve/session_table.hpp"
#include "traindb/generator.hpp"
#include "wiscan/survey.hpp"

using namespace loctk;

namespace {

struct ServeCorpus {
  ServeCorpus()
      : testbed(radio::make_office_floor(6)),
        map(core::make_training_grid(testbed.environment().footprint(),
                                     5.0)) {
    radio::Scanner scanner = testbed.make_scanner(31337);
    wiscan::SurveyConfig cfg;
    cfg.scans_per_location = 60;
    wiscan::SurveyCampaign campaign(scanner, cfg);
    collection = campaign.run(map);
    db = traindb::generate_database(collection, map);
    compiled = core::CompiledDatabase::compile(db);
    // Working-phase traffic: single scans from clients scattered over
    // the floor, replayed round-robin by the bench loops.
    radio::Scanner traffic = testbed.make_scanner(777);
    for (int i = 0; i < 256; ++i) {
      const double x = 5.0 + 110.0 * ((i * 37) % 256) / 256.0;
      const double y = 5.0 + 70.0 * ((i * 11) % 256) / 256.0;
      scans.push_back(traffic.collect({x, y}, 1).front());
    }
  }

  /// A fresh locator snapshot over the shared compilation — what a
  /// production republish installs.
  std::shared_ptr<const core::Locator> make_locator() const {
    core::ProbabilisticConfig config;
    config.prune_top_k = 32;
    config.prune_strongest_aps = 4;
    return std::make_shared<core::ProbabilisticLocator>(compiled, config);
  }

  core::Testbed testbed;
  wiscan::LocationMap map;
  wiscan::Collection collection;
  traindb::TrainingDatabase db;
  std::shared_ptr<const core::CompiledDatabase> compiled;
  std::vector<radio::ScanRecord> scans;
};

const ServeCorpus& corpus() {
  static const ServeCorpus c;
  return c;
}

serve::LocationServerConfig serve_config() {
  serve::LocationServerConfig config;
  config.sessions_per_site = 1 << 12;
  return config;
}

// The headline: scans/sec through on_scan as threads scale (the
// acceptance gate compares items_per_second at 1 vs 8 threads). Four
// sites; each thread owns a disjoint device population spread across
// them, so the measurement includes site routing, the epoch pin, the
// session lookup, and the full pruned locate.
void BM_ServerOnScan(benchmark::State& state) {
  const ServeCorpus& c = corpus();
  static serve::LocationServer* server = nullptr;
  static serve::SiteId sites[4];
  if (state.thread_index() == 0) {
    server = new serve::LocationServer(serve_config());
    for (int s = 0; s < 4; ++s) {
      sites[s] = server->add_site("bench-" + std::to_string(s),
                                  c.make_locator());
    }
  }

  const auto base =
      static_cast<serve::DeviceId>(state.thread_index() + 1) << 32;
  std::size_t i = 0;
  for (auto _ : state) {
    const serve::SiteId site = sites[i % 4];
    const serve::DeviceId device = base | ((i % 16) + 1);
    benchmark::DoNotOptimize(
        server->on_scan(site, device, c.scans[i % c.scans.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());

  if (state.thread_index() == 0) {
    delete server;
    server = nullptr;
  }
}
BENCHMARK(BM_ServerOnScan)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

// Same traffic with hot swaps landing throughout: a dedicated swapper
// republishes every site as fast as the grace periods allow while the
// scan threads run. The delta against BM_ServerOnScan is the whole
// cost readers pay for hot-swappability.
void BM_ServerOnScan_SwapStorm(benchmark::State& state) {
  const ServeCorpus& c = corpus();
  static serve::LocationServer* server = nullptr;
  static serve::SiteId sites[4];
  static std::thread* swapper = nullptr;
  static std::atomic<bool> stop{false};
  static std::atomic<std::uint64_t> swaps{0};
  if (state.thread_index() == 0) {
    server = new serve::LocationServer(serve_config());
    for (int s = 0; s < 4; ++s) {
      sites[s] = server->add_site("storm-" + std::to_string(s),
                                  c.make_locator());
    }
    stop.store(false);
    swaps.store(0);
    swapper = new std::thread([&c] {
      while (!stop.load(std::memory_order_acquire)) {
        for (const serve::SiteId site : sites) {
          server->swap_site(site, c.make_locator());
          swaps.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  const auto base =
      static_cast<serve::DeviceId>(state.thread_index() + 1) << 32;
  std::size_t i = 0;
  for (auto _ : state) {
    const serve::SiteId site = sites[i % 4];
    const serve::DeviceId device = base | ((i % 16) + 1);
    benchmark::DoNotOptimize(
        server->on_scan(site, device, c.scans[i % c.scans.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());

  if (state.thread_index() == 0) {
    stop.store(true, std::memory_order_release);
    swapper->join();
    delete swapper;
    swapper = nullptr;
    state.counters["swaps"] = static_cast<double>(swaps.load());
    delete server;
    server = nullptr;
  }
}
BENCHMARK(BM_ServerOnScan_SwapStorm)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

// One full hot swap: grace period (idle here), snapshot allocation,
// pointer publication, retire, reclaim. Locator construction is
// excluded (prebuilt pool of snapshots) — this is the swap machinery
// itself.
void BM_SwapSite(benchmark::State& state) {
  const ServeCorpus& c = corpus();
  serve::LocationServer server(serve_config());
  const serve::SiteId site = server.add_site("swap", c.make_locator());
  std::vector<std::shared_ptr<const core::Locator>> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(c.make_locator());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.swap_site(site, pool[i % pool.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwapSite)->Unit(benchmark::kNanosecond);

// The wait-free reader pin by itself: one CAS to claim a slot, one
// store to release it. This is the entire synchronization cost a scan
// pays for hot-swappability.
void BM_EpochPin(benchmark::State& state) {
  static serve::EpochDomain domain(64);
  for (auto _ : state) {
    serve::EpochDomain::ReadGuard guard(domain);
    benchmark::DoNotOptimize(&guard);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpochPin)
    ->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime()->Unit(benchmark::kNanosecond);

// Lock-free session lookup on a warm table (the steady-state path —
// creation happens once per device lifetime).
void BM_SessionLookup(benchmark::State& state) {
  static serve::SessionTable* table = nullptr;
  static core::LocationServiceConfig config;
  if (state.thread_index() == 0) {
    table = new serve::SessionTable(1 << 12, 16);
    for (serve::DeviceId d = 1; d <= 1024; ++d) {
      table->find_or_create(d, config);
    }
  }
  serve::DeviceId d = static_cast<serve::DeviceId>(
      state.thread_index() * 131 + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->find_or_create((d % 1024) + 1, config));
    ++d;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete table;
    table = nullptr;
  }
}
BENCHMARK(BM_SessionLookup)
    ->Threads(1)->Threads(4)
    ->UseRealTime()->Unit(benchmark::kNanosecond);

}  // namespace

LOCTK_BENCHMARK_MAIN_WITH_METRICS("perf_serve")

// ABL-GRID — ablation: training grid density x algorithm.
//
// The paper trains on a 10-ft grid and its future work asks for
// finer-grained estimates. This bench sweeps the survey pitch
// (5/10/20 ft) across every locator in the toolkit and prints the
// valid-estimation rate and error statistics. Shape targets: finer
// grids help every fingerprint method; the geometric method is
// roughly pitch-insensitive (it only uses the fit, not the cells);
// grid-ml beats plain ML at coarse pitches.

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/bayes.hpp"
#include "core/geometric.hpp"
#include "core/grid_locator.hpp"
#include "core/knn.hpp"
#include "core/probabilistic.hpp"

using namespace loctk;

int main() {
  bench::print_header("ABL-GRID: training grid density x algorithm");
  std::printf("%8s %-18s %8s %10s %10s %10s\n", "pitch", "locator",
              "points", "rate(%)", "mean(ft)", "p90(ft)");

  // 15 ft is the coarsest pitch that leaves enough interior points
  // (6) to fit the geometric ranging models.
  for (const double pitch : {5.0, 10.0, 15.0}) {
    core::Testbed testbed(radio::make_paper_house());
    const auto map = core::make_training_grid(
        testbed.environment().footprint(), pitch);
    const auto db = testbed.train(map, bench::kTrainScans, 7001);
    const auto truths = core::make_scattered_test_points(
        testbed.environment().footprint(), bench::kTestPoints);
    const auto observations =
        testbed.observe(truths, bench::kObserveScans, 7002);

    std::vector<std::unique_ptr<core::Locator>> locators;
    locators.push_back(std::make_unique<core::ProbabilisticLocator>(db));
    locators.push_back(
        std::make_unique<core::KnnLocator>(db, core::KnnConfig{.k = 1}));
    locators.push_back(
        std::make_unique<core::KnnLocator>(db, core::KnnConfig{.k = 3}));
    locators.push_back(std::make_unique<core::BayesGridLocator>(db));
    try {
      locators.push_back(std::make_unique<core::GeometricLocator>(
          db, testbed.environment()));
      locators.push_back(std::make_unique<core::LaterationLocator>(
          db, testbed.environment()));
    } catch (const traindb::DatabaseError& e) {
      std::printf("  (geometric locators skipped at this pitch: %s)\n",
                  e.what());
    }
    locators.push_back(std::make_unique<core::GridLocator>(
        db, testbed.environment().footprint()));

    for (const auto& loc : locators) {
      const auto r = core::evaluate(*loc, db, truths, observations);
      std::printf("%6.0fft %-18s %8zu %10.0f %10.1f %10.1f\n", pitch,
                  loc->name().c_str(), db.size(),
                  100.0 * r.valid_estimation_rate(), r.mean_error_ft(),
                  r.p90_error_ft());
    }
    bench::print_rule();
  }
  std::printf("Notes: rate(%%) is the paper's valid-estimation metric and\n"
              "is only meaningful for cell-snapping locators; coordinate\n"
              "locators (geometric, lateration) show 0 there by design.\n");
  return 0;
}

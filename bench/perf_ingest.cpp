// PERF — the zero-copy ingest pipeline: seed istream parsing vs the
// buffer-oriented scanner, end-to-end training-database generation
// serial vs parallel, and training-database load paths.
//
// Workload: a synthetic survey corpus written to a temp directory —
// 64 locations x 150 scan passes x ~8 APs per pass (~75k rows,
// ~4.5 MB of wi-scan text) plus the matching location map and `.ltdb`
// encodings. The "seed" BMs reproduce the growth seed's
// getline + istringstream parser, std::map-grouped aggregation, and
// ostringstream double-copy file slurp exactly as shipped, so the
// JSON trajectory keeps an honest baseline as the reference paths
// improve. BENCH_ingest.json next to the repo root records the
// checked-in run (see docs/ALGORITHMS.md "Ingest pipeline" for
// methodology).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_metrics.hpp"
#include "concurrency/thread_pool.hpp"
#include "core/compiled_db.hpp"
#include "core/observation.hpp"
#include "core/probabilistic.hpp"
#include "stats/running_stats.hpp"
#include "traindb/codec.hpp"
#include "traindb/generator.hpp"
#include "wiscan/collection.hpp"
#include "wiscan/format.hpp"
#include "wiscan/location_map.hpp"
#include "wiscan/scan_buffer.hpp"

using namespace loctk;

namespace {

namespace fs = std::filesystem;

constexpr int kLocations = 64;
constexpr int kScansPerLocation = 150;
constexpr int kApsPerScan = 8;

// Deterministic pseudo-RSSI so the corpus is identical across runs
// without an RNG.
double synth_rssi(int loc, int t, int a) {
  return -35.0 -
         static_cast<double>((loc * 7 + t * 13 + a * 37) % 55) - 0.5;
}

struct IngestCorpus {
  IngestCorpus() {
    dir = fs::temp_directory_path() / "loctk_perf_ingest";
    fs::remove_all(dir);
    fs::create_directories(dir / "scans");

    std::string map_text = "# location-map v1\n";
    for (int loc = 0; loc < kLocations; ++loc) {
      const std::string name = "room-" + std::to_string(loc);
      // Write each survey file through the toolkit's own writer so the
      // corpus rows match what real capture sessions produce.
      wiscan::WiScanFile file;
      file.location = name;
      file.entries.reserve(
          static_cast<std::size_t>(kScansPerLocation * kApsPerScan));
      for (int t = 0; t < kScansPerLocation; ++t) {
        for (int a = 0; a < kApsPerScan; ++a) {
          wiscan::WiScanEntry e;
          e.timestamp_s = static_cast<double>(t);
          e.bssid = "00:17:ab:00:00:0" + std::to_string(a);
          e.ssid = "loctk";
          e.channel = 1 + a % 11;
          e.rssi_dbm = synth_rssi(loc, t, a);
          file.entries.push_back(std::move(e));
        }
      }
      const std::string text = wiscan::encode_wiscan(file);
      corpus_bytes += text.size();
      merged_text += text;
      std::ofstream(dir / "scans" / (name + ".wiscan")) << text;
      map_text += name + " " + std::to_string(10 * (loc % 8)) + ".0 " +
                  std::to_string(10 * (loc / 8)) + ".0\n";
    }
    map_file = dir / "site.locmap";
    std::ofstream(map_file) << map_text;
    map = wiscan::LocationMap::read(map_file);

    ltdb_stats = dir / "stats.ltdb";
    traindb::write_database(
        ltdb_stats, traindb::generate_database_from_path(
                        dir / "scans", map_file, {}));
    traindb::GeneratorConfig samples_cfg;
    samples_cfg.keep_samples = true;
    ltdb_samples = dir / "samples.ltdb";
    traindb::write_database(
        ltdb_samples, traindb::generate_database_from_path(
                          dir / "scans", map_file, samples_cfg));
  }

  fs::path dir;
  fs::path map_file;
  fs::path ltdb_stats;
  fs::path ltdb_samples;
  wiscan::LocationMap map;
  std::string merged_text;  // every file concatenated, for MB/s BMs
  std::size_t corpus_bytes = 0;
};

const IngestCorpus& corpus() {
  static const IngestCorpus c;
  return c;
}

// --- seed replicas ---------------------------------------------------
// The growth seed's ingest path, verbatim: getline + istringstream
// token loop, stod per number, std::map grouping, incremental
// add_point universe insertion, and the ostringstream file slurp.

double seed_parse_double(const std::string& text) {
  std::size_t used = 0;
  const double v = std::stod(text, &used);
  if (used != text.size()) {
    throw wiscan::FormatError("seed: trailing junk in '" + text + "'");
  }
  return v;
}

wiscan::WiScanFile seed_read_wiscan(std::istream& is,
                                    const std::string& fallback) {
  wiscan::WiScanFile file;
  file.location = fallback;
  std::string line;
  double last_time = 0.0;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto first_nonspace = line.find_first_not_of(" \t");
    if (first_nonspace == std::string::npos) continue;
    if (line[first_nonspace] == '#') {
      static constexpr std::string_view kLocTag = "location:";
      const auto pos = line.find(kLocTag);
      if (pos != std::string::npos) {
        std::string loc = line.substr(pos + kLocTag.size());
        const auto begin = loc.find_first_not_of(" \t");
        if (begin != std::string::npos) {
          const auto end = loc.find_last_not_of(" \t");
          file.location = loc.substr(begin, end - begin + 1);
        }
      }
      continue;
    }
    wiscan::WiScanEntry entry;
    entry.timestamp_s = last_time;
    bool have_bssid = false;
    bool have_rssi = false;
    std::istringstream tokens(line);
    std::string token;
    while (tokens >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw wiscan::FormatError("seed: line " + std::to_string(line_no) +
                                  ": expected key=value");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "time") {
        entry.timestamp_s = seed_parse_double(value);
      } else if (key == "bssid") {
        entry.bssid = value;
        have_bssid = true;
      } else if (key == "ssid") {
        entry.ssid = value;
      } else if (key == "channel") {
        entry.channel = static_cast<int>(seed_parse_double(value));
      } else if (key == "rssi") {
        entry.rssi_dbm = seed_parse_double(value);
        have_rssi = true;
      }
    }
    if (!have_bssid || !have_rssi) {
      throw wiscan::FormatError("seed: line " + std::to_string(line_no) +
                                ": missing bssid/rssi");
    }
    last_time = entry.timestamp_s;
    file.entries.push_back(std::move(entry));
  }
  return file;
}

wiscan::Collection seed_load_collection(const fs::path& source) {
  wiscan::Collection c;
  for (const auto& entry : fs::recursive_directory_iterator(source)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".wiscan") continue;
    std::ifstream is(entry.path());
    c.files.push_back(seed_read_wiscan(
        is, wiscan::sanitize_location_name(entry.path().stem().string())));
  }
  std::sort(c.files.begin(), c.files.end(),
            [](const wiscan::WiScanFile& a, const wiscan::WiScanFile& b) {
              return a.location < b.location;
            });
  return c;
}

traindb::TrainingPoint seed_build_training_point(
    const wiscan::WiScanFile& file, geom::Vec2 position,
    const traindb::GeneratorConfig& config) {
  traindb::TrainingPoint point;
  point.location = file.location;
  point.position = position;
  const std::size_t scans = file.scan_count();
  std::map<std::string, std::vector<double>> by_bssid;
  for (const wiscan::WiScanEntry& e : file.entries) {
    by_bssid[e.bssid].push_back(e.rssi_dbm);
  }
  for (auto& [bssid, readings] : by_bssid) {
    if (readings.size() < config.min_samples_per_ap) continue;
    stats::RunningStats rs;
    for (const double r : readings) rs.add(r);
    traindb::ApStatistics ap;
    ap.bssid = bssid;
    ap.mean_dbm = rs.mean();
    ap.stddev_db = rs.stddev();
    ap.sample_count = static_cast<std::uint32_t>(readings.size());
    ap.scan_count = static_cast<std::uint32_t>(scans);
    ap.min_dbm = rs.min();
    ap.max_dbm = rs.max();
    point.per_ap.push_back(std::move(ap));
  }
  return point;
}

traindb::TrainingDatabase seed_generate_from_path(
    const fs::path& source, const fs::path& map_file,
    const traindb::GeneratorConfig& config) {
  // The seed entry point re-read the location map per call, like
  // generate_database_from_path still does.
  const wiscan::LocationMap map = wiscan::LocationMap::read(map_file);
  const wiscan::Collection collection = seed_load_collection(source);
  traindb::TrainingDatabase db;
  db.set_site_name(config.site_name);
  for (const wiscan::WiScanFile& f : collection.files) {
    const auto position = map.find(f.location);
    if (!position) continue;
    db.add_point(seed_build_training_point(f, *position, config));
  }
  return db;
}

// --- parse throughput ------------------------------------------------

void BM_ParseWiScan_SeedIstream(benchmark::State& state) {
  const IngestCorpus& c = corpus();
  for (auto _ : state) {
    std::istringstream is(c.merged_text);
    benchmark::DoNotOptimize(seed_read_wiscan(is, "merged"));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.merged_text.size()));
}
BENCHMARK(BM_ParseWiScan_SeedIstream)->Unit(benchmark::kMillisecond);

void BM_ParseWiScan_Buffer(benchmark::State& state) {
  const IngestCorpus& c = corpus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wiscan::parse_wiscan_buffer(c.merged_text, "merged"));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.merged_text.size()));
}
BENCHMARK(BM_ParseWiScan_Buffer)->Unit(benchmark::kMillisecond);

// --- collection load -------------------------------------------------

void BM_LoadCollection_SeedIstream(benchmark::State& state) {
  const IngestCorpus& c = corpus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(seed_load_collection(c.dir / "scans"));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.corpus_bytes));
}
BENCHMARK(BM_LoadCollection_SeedIstream)->Unit(benchmark::kMillisecond);

void BM_LoadCollection_Buffer(benchmark::State& state) {
  const IngestCorpus& c = corpus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(wiscan::load_collection(c.dir / "scans"));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.corpus_bytes));
}
BENCHMARK(BM_LoadCollection_Buffer)->Unit(benchmark::kMillisecond);

void BM_LoadCollection_BufferParallel(benchmark::State& state) {
  const IngestCorpus& c = corpus();
  concurrency::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wiscan::load_collection(c.dir / "scans", &pool));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.corpus_bytes));
}
BENCHMARK(BM_LoadCollection_BufferParallel)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- end-to-end generator -------------------------------------------

void BM_GeneratorE2E_SeedIstream(benchmark::State& state) {
  const IngestCorpus& c = corpus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        seed_generate_from_path(c.dir / "scans", c.map_file, {}));
  }
  state.counters["corpus_mb"] =
      static_cast<double>(c.corpus_bytes) / (1024.0 * 1024.0);
}
BENCHMARK(BM_GeneratorE2E_SeedIstream)->Unit(benchmark::kMillisecond);

void BM_GeneratorE2E_Buffer(benchmark::State& state) {
  const IngestCorpus& c = corpus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        traindb::generate_database_from_path(c.dir / "scans", c.map_file));
  }
}
BENCHMARK(BM_GeneratorE2E_Buffer)->Unit(benchmark::kMillisecond);

void BM_GeneratorE2E_BufferParallel(benchmark::State& state) {
  const IngestCorpus& c = corpus();
  concurrency::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(traindb::generate_database_from_path(
        c.dir / "scans", c.map_file, {}, nullptr, &pool));
  }
}
BENCHMARK(BM_GeneratorE2E_BufferParallel)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_CompileCollection_Direct(benchmark::State& state) {
  const IngestCorpus& c = corpus();
  const wiscan::Collection collection =
      wiscan::load_collection(c.dir / "scans");
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compile_collection(collection, c.map));
  }
}
BENCHMARK(BM_CompileCollection_Direct)->Unit(benchmark::kMillisecond);

// --- training-database load -----------------------------------------

void BM_CodecLoad_SeedSlurp(benchmark::State& state) {
  const IngestCorpus& c = corpus();
  for (auto _ : state) {
    // The seed's read path: ifstream -> ostringstream double copy,
    // then decode from the copied string.
    std::ifstream is(c.ltdb_samples, std::ios::binary);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const std::string bytes = buffer.str();
    benchmark::DoNotOptimize(traindb::decode_database(bytes));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fs::file_size(c.ltdb_samples)));
}
BENCHMARK(BM_CodecLoad_SeedSlurp)->Unit(benchmark::kMillisecond);

void BM_CodecLoad_Mapped(benchmark::State& state) {
  const IngestCorpus& c = corpus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(traindb::read_database(c.ltdb_samples));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fs::file_size(c.ltdb_samples)));
}
BENCHMARK(BM_CodecLoad_Mapped)->Unit(benchmark::kMillisecond);

void BM_ServeLoad_TwoStep(benchmark::State& state) {
  const IngestCorpus& c = corpus();
  for (auto _ : state) {
    const traindb::TrainingDatabase db =
        traindb::read_database(c.ltdb_stats);
    benchmark::DoNotOptimize(core::CompiledDatabase(db));
  }
}
BENCHMARK(BM_ServeLoad_TwoStep)->Unit(benchmark::kMillisecond);

void BM_ServeLoad_Direct(benchmark::State& state) {
  const IngestCorpus& c = corpus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::load_compiled_database(c.ltdb_stats));
  }
}
BENCHMARK(BM_ServeLoad_Direct)->Unit(benchmark::kMillisecond);

void BM_ProbeDatabase(benchmark::State& state) {
  const IngestCorpus& c = corpus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(traindb::probe_database(c.ltdb_samples));
  }
}
BENCHMARK(BM_ProbeDatabase)->Unit(benchmark::kMicrosecond);

// --- serve: the ingested database answering queries ------------------
// Closes the pipeline the rest of this file feeds: every surveyed
// room's own rows, re-read as an observation, located against the
// generated database. Also the bench's source of locate.* metrics for
// the snapshot below.
void BM_ServeLocate_Batch(benchmark::State& state) {
  const IngestCorpus& c = corpus();
  const traindb::TrainingDatabase db = traindb::read_database(c.ltdb_stats);
  const core::ProbabilisticLocator locator(db);
  const wiscan::Collection collection =
      wiscan::load_collection(c.dir / "scans");
  std::vector<core::Observation> batch;
  batch.reserve(collection.files.size());
  for (const wiscan::WiScanFile& f : collection.files) {
    batch.push_back(core::Observation::from_entries(f.entries));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(locator.locate_batch(batch));
  }
  state.counters["obs"] = static_cast<double>(batch.size());
}
BENCHMARK(BM_ServeLocate_Batch)->Unit(benchmark::kMillisecond);

}  // namespace

LOCTK_BENCHMARK_MAIN_WITH_METRICS("perf_ingest")

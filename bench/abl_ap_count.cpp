// ABL-APS — ablation: number of access points (3..8).
//
// The paper fixes four corner APs; this bench varies the deployment
// density. Shape targets: errors fall monotonically (on average) as
// APs are added; the geometric method needs >= 3 usable APs and gains
// the most from the 4th; fingerprinting keeps improving past 4.

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/geometric.hpp"
#include "core/knn.hpp"
#include "core/probabilistic.hpp"

using namespace loctk;

int main() {
  bench::print_header("ABL-APS: access-point count sweep (3..8 APs)");
  std::printf("%6s %-18s %10s %10s %10s\n", "APs", "locator", "rate(%)",
              "mean(ft)", "p90(ft)");

  for (int aps = 3; aps <= 8; ++aps) {
    core::Testbed testbed(radio::make_paper_house_with_aps(aps));
    const auto map = core::make_training_grid(
        testbed.environment().footprint(), bench::kGridSpacingFt);
    const auto db =
        testbed.train(map, bench::kTrainScans, 8000 + static_cast<std::uint64_t>(aps));
    const auto truths = core::make_scattered_test_points(
        testbed.environment().footprint(), bench::kTestPoints);
    const auto observations = testbed.observe(
        truths, bench::kObserveScans, 8800 + static_cast<std::uint64_t>(aps));

    std::vector<std::unique_ptr<core::Locator>> locators;
    locators.push_back(std::make_unique<core::ProbabilisticLocator>(db));
    locators.push_back(
        std::make_unique<core::KnnLocator>(db, core::KnnConfig{.k = 3}));
    locators.push_back(std::make_unique<core::GeometricLocator>(
        db, testbed.environment()));

    for (const auto& loc : locators) {
      const auto r = core::evaluate(*loc, db, truths, observations);
      std::printf("%6d %-18s %10.0f %10.1f %10.1f\n", aps,
                  loc->name().c_str(), 100.0 * r.valid_estimation_rate(),
                  r.mean_error_ft(), r.p90_error_ft());
    }
    bench::print_rule();
  }
  return 0;
}

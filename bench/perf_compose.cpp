// PERF_COMPOSE — fleet-frame composition throughput.
//
// Measures the tile-parallel FleetCompositor against the serial
// per-call primitive path on a campus-scale frame: a 2-building
// campus plate (240 heat cells, 340 AP markers + labels) carrying
// 10,000 device markers — the per-tick visual `soak_fleet --server
// --campus-sites ... --frames` emits. Both paths produce byte-
// identical frames (tests/fleet_compositor_test.cpp), so the ratio of
// the two `pixels_per_s` counters is pure speedup: span fills and
// prerendered marker stamps instead of per-pixel bounds-checked
// writes, glyph-atlas blits instead of per-pixel font walks, and tile
// parallelism on hosts that have cores to spend.
//
// Also times the glyph-atlas text path against legacy draw_text, the
// one-time shared-atlas build, and the raw rect packer.
//
// CI smoke runs one repetition of each benchmark; the committed
// BENCH_compose.json in the repo root records the full run (gated on
// loctk_build_type == "release", bench_metrics.hpp).

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_metrics.hpp"
#include "floorplan/fleet_compositor.hpp"
#include "floorplan/heatmap.hpp"
#include "image/font.hpp"
#include "image/glyph_atlas.hpp"
#include "stats/rng.hpp"

namespace {

using namespace loctk;
using floorplan::FleetCompositor;
using floorplan::FleetCompositorOptions;
using floorplan::FleetFrameSpec;

constexpr int kFrameWidth = 1116;   // 2 x 240ft + 60ft gap at 2 px/ft + margins
constexpr int kFrameHeight = 336;   // 150 ft at 2 px/ft + margins
constexpr int kHeatCells = 240;     // 2 buildings x 8x5 rooms x 3 floors
constexpr int kApLabels = 340;      // 2 buildings x 170 ground-floor APs

/// The synthetic campus-scale frame. Deterministic (seeded), built
/// without the scenario machinery so the bench measures composition,
/// not radio simulation.
FleetFrameSpec campus_frame(int device_markers) {
  stats::Rng rng(0xC0117);
  FleetFrameSpec spec;
  spec.width = kFrameWidth;
  spec.height = kFrameHeight;

  // Heat cells: 60x60 px rooms over both building plates.
  int cell = 0;
  for (int b = 0; b < 2 && cell < kHeatCells; ++b) {
    const int bx = 18 + b * 540;
    for (int ry = 0; ry < 5; ++ry) {
      for (int rx = 0; rx < 8 && cell < kHeatCells; ++rx) {
        spec.add_fill_rect(bx + rx * 60, 18 + ry * 60, 60, 60,
                           floorplan::heat_color(rng.uniform()));
        ++cell;
      }
    }
  }
  for (int b = 0; b < 2; ++b) {
    spec.add_rect(18 + b * 540, 18, 481, 301, image::colors::kBlack);
  }

  // AP markers + labels ("B1F0-AP169"-style names).
  for (int i = 0; i < kApLabels; ++i) {
    const int b = i < kApLabels / 2 ? 0 : 1;
    const int x = 18 + b * 540 + static_cast<int>(rng.uniform_int(4, 476));
    const int y = 18 + static_cast<int>(rng.uniform_int(4, 296));
    spec.add_marker(x, y, image::MarkerShape::kTriangle,
                    image::colors::kDarkGray, 3);
    spec.add_text(x + 4, y - 3,
                  "B" + std::to_string(b) + "F0-AP" +
                      std::to_string(i % (kApLabels / 2)),
                  image::colors::kDarkGray, 1);
  }

  // The fleet: device ground-truth dots, some past the plate edges.
  for (int i = 0; i < device_markers; ++i) {
    const int x = static_cast<int>(rng.uniform_int(-4, kFrameWidth + 4));
    const int y = static_cast<int>(rng.uniform_int(-4, kFrameHeight + 4));
    spec.add_marker(x, y, image::MarkerShape::kDot,
                    i % 2 == 0 ? image::colors::kBlue : image::colors::kRed,
                    2);
  }
  return spec;
}

void set_frame_counters(benchmark::State& state, const FleetFrameSpec& spec) {
  const double pixels = static_cast<double>(spec.width) *
                        static_cast<double>(spec.height);
  state.counters["pixels_per_s"] =
      benchmark::Counter(pixels, benchmark::Counter::kIsIterationInvariantRate);
  state.counters["ops_per_s"] =
      benchmark::Counter(static_cast<double>(spec.ops.size()),
                         benchmark::Counter::kIsIterationInvariantRate);
}

/// Baseline: the legacy per-call primitives, one pass, no tiles.
void BM_ComposeFrame_PerCall(benchmark::State& state) {
  const FleetFrameSpec spec =
      campus_frame(static_cast<int>(state.range(0)));
  const FleetCompositor compositor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compositor.render_serial(spec));
  }
  set_frame_counters(state, spec);
}
BENCHMARK(BM_ComposeFrame_PerCall)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

/// The tile-parallel path (optimized primitives + glyph atlas +
/// thread-pool tiles). Byte-identical output to the baseline.
void BM_ComposeFrame_Tiled(benchmark::State& state) {
  const FleetFrameSpec spec =
      campus_frame(static_cast<int>(state.range(0)));
  FleetCompositorOptions options;
  options.tile_px = static_cast<int>(state.range(1));
  const FleetCompositor compositor(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compositor.render(spec));
  }
  set_frame_counters(state, spec);
}
BENCHMARK(BM_ComposeFrame_Tiled)
    ->Args({1000, 64})
    ->Args({10000, 32})
    ->Args({10000, 64})
    ->Args({10000, 128})
    ->Unit(benchmark::kMillisecond);

/// Legacy text: per-pixel glyph walk, per call, per character.
void BM_DrawText_Legacy(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  image::Raster img(640, 480);
  for (auto _ : state) {
    for (int row = 0; row < 24; ++row) {
      image::draw_text(img, 3, row * 19, "B1F2-AP17 -54.3dBm",
                       image::colors::kBlack, scale);
    }
    benchmark::DoNotOptimize(img.data().data());
  }
  state.counters["glyphs_per_s"] = benchmark::Counter(
      24.0 * 18.0, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_DrawText_Legacy)->Arg(1)->Arg(2);

/// Atlas text: one prerendered mask blit per character.
void BM_DrawText_Atlas(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  image::GlyphAtlas::shared();  // build outside the timed loop
  image::Raster img(640, 480);
  for (auto _ : state) {
    for (int row = 0; row < 24; ++row) {
      image::draw_text_atlas(img, 3, row * 19, "B1F2-AP17 -54.3dBm",
                             image::colors::kBlack, scale);
    }
    benchmark::DoNotOptimize(img.data().data());
  }
  state.counters["glyphs_per_s"] = benchmark::Counter(
      24.0 * 18.0, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_DrawText_Atlas)->Arg(1)->Arg(2);

/// One-time cost of building the full shared atlas (384 glyph slots
/// packed + rasterized).
void BM_AtlasBuild_FullSet(benchmark::State& state) {
  std::vector<image::GlyphAtlas::GlyphKey> keys;
  for (int scale = 1; scale <= image::kAtlasMaxScale; ++scale) {
    for (int code = 32; code <= 126; ++code) {
      keys.push_back({static_cast<char>(code), scale});
    }
  }
  for (auto _ : state) {
    const image::GlyphAtlas atlas(keys);
    benchmark::DoNotOptimize(atlas.glyph_count());
  }
  state.counters["glyphs_per_s"] = benchmark::Counter(
      static_cast<double>(keys.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_AtlasBuild_FullSet);

/// Raw node-tree packer throughput on the full glyph-set dimensions.
void BM_RectPack_FullSet(benchmark::State& state) {
  for (auto _ : state) {
    image::RectPacker packer(256, 256);
    int placed = 0;
    for (int scale = image::kAtlasMaxScale; scale >= 1; --scale) {
      for (int g = 0; g < 96; ++g) {
        if (packer.insert(image::kGlyphWidth * scale,
                          image::kGlyphHeight * scale)) {
          ++placed;
        }
      }
    }
    benchmark::DoNotOptimize(placed);
  }
}
BENCHMARK(BM_RectPack_FullSet);

}  // namespace

LOCTK_BENCHMARK_MAIN_WITH_METRICS("perf_compose")

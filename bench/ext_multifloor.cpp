// EXT-FLOOR — multi-floor deployment: floor detection + in-floor
// accuracy vs slab attenuation.
//
// The paper's testbed is one floor; any campus deployment is not.
// With one training database per floor (each surveyed through the
// slab-aware FloorView), floor selection is per-floor maximum
// likelihood. This bench stacks three copies of the experiment house
// and sweeps the slab attenuation: thick concrete separates floors
// almost perfectly; plywood-thin slabs collapse the problem toward
// guessing.
//
// Shape targets: floor accuracy >= 90% across the sweep — even thin
// slabs keep floors separable because every floor's fingerprint
// carries its own multipath structure plus the slab offset; softmax
// confidence saturates to ~1.0 by ~8 dB; in-floor error matches the
// single-floor SEC51 band once the floor is right.

#include <cstdio>

#include "bench_util.hpp"
#include "core/floor_selector.hpp"

using namespace loctk;

int main() {
  bench::print_header(
      "EXT-FLOOR: floor detection vs slab attenuation (3-floor building)");
  std::printf("  %12s %12s %14s %14s\n", "slab (dB)", "floor acc %",
              "mean conf", "in-floor ft");

  for (const double slab : {4.0, 8.0, 12.0, 18.0, 24.0}) {
    const auto building = radio::make_office_building(3, slab);
    const auto map =
        core::make_training_grid(building->floor(0).footprint(), 10.0);
    const auto dbs = core::train_building(
        *building, map, bench::kTrainScans,
        60000 + static_cast<std::uint64_t>(slab * 10));
    std::vector<const traindb::TrainingDatabase*> ptrs;
    for (const auto& db : dbs) ptrs.push_back(&db);
    const core::FloorSelector selector(ptrs);

    const auto truths = core::make_scattered_test_points(
        building->floor(0).footprint(), bench::kTestPoints);

    int correct = 0, total = 0;
    double conf_sum = 0.0;
    std::vector<double> in_floor_errs;
    for (std::size_t truth_floor = 0; truth_floor < 3; ++truth_floor) {
      const radio::FloorView view(*building, truth_floor);
      radio::Scanner scanner(
          view, radio::ChannelConfig{},
          61000 + truth_floor * 7 + static_cast<std::uint64_t>(slab));
      for (const geom::Vec2 pos : truths) {
        scanner.reset_session();
        const core::Observation obs = core::Observation::from_scans(
            scanner.collect(pos, bench::kObserveScans));
        const core::FloorEstimate est = selector.locate(obs);
        if (!est.valid) continue;
        ++total;
        conf_sum += est.floor_confidence;
        if (est.floor == truth_floor) {
          ++correct;
          in_floor_errs.push_back(
              geom::distance(est.estimate.position, pos));
        }
      }
    }
    std::printf("  %12.0f %12.0f %14.2f %14.1f\n", slab,
                100.0 * correct / std::max(1, total),
                conf_sum / std::max(1, total),
                in_floor_errs.empty()
                    ? 0.0
                    : bench::band_of(in_floor_errs).mean);
  }
  std::printf("\nReading: floor detection stays >= 90%% even with thin\n"
              "slabs (per-floor multipath + the slab offset keep the\n"
              "fingerprints separable); confidence saturates by ~8 dB;\n"
              "in-floor error stays in the single-floor SEC51 band.\n");
  return 0;
}

// PERF — the shared-memory parallel substrate: training-database
// generation and fine-grid likelihood search, serial vs thread pool.
//
// Workload: a larger office floor (120x80 ft, 6 APs) surveyed on a
// 5-ft grid gives a few hundred training points — enough for the
// parallel builder and the grid locator to matter.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "concurrency/parallel_for.hpp"
#include "core/grid_locator.hpp"
#include "core/signal_index.hpp"
#include "core/knn.hpp"
#include "core/probabilistic.hpp"
#include "traindb/generator.hpp"
#include "wiscan/survey.hpp"

using namespace loctk;

namespace {

struct OfficeCorpus {
  OfficeCorpus()
      : testbed(radio::make_office_floor(6)),
        map(core::make_training_grid(testbed.environment().footprint(),
                                     5.0)) {
    radio::Scanner scanner = testbed.make_scanner(31337);
    wiscan::SurveyConfig cfg;
    cfg.scans_per_location = 60;
    wiscan::SurveyCampaign campaign(scanner, cfg);
    collection = campaign.run(map);
    db = traindb::generate_database(collection, map);
    observation = core::Observation::from_scans(
        testbed.make_scanner(424242).collect({60.0, 40.0}, 30));
  }

  core::Testbed testbed;
  wiscan::LocationMap map;
  wiscan::Collection collection;
  traindb::TrainingDatabase db;
  core::Observation observation;
};

const OfficeCorpus& office() {
  static const OfficeCorpus c;
  return c;
}

void BM_GenerateSerial(benchmark::State& state) {
  const OfficeCorpus& c = office();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        traindb::generate_database(c.collection, c.map));
  }
}
BENCHMARK(BM_GenerateSerial)->Unit(benchmark::kMillisecond);

void BM_GenerateParallel(benchmark::State& state) {
  const OfficeCorpus& c = office();
  concurrency::ThreadPool pool(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        traindb::generate_database_parallel(c.collection, c.map, pool));
  }
}
BENCHMARK(BM_GenerateParallel)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_GridLocateSerial(benchmark::State& state) {
  const OfficeCorpus& c = office();
  core::GridLocatorConfig cfg;
  cfg.grid_pitch_ft = 2.0;
  cfg.parallel = false;
  const core::GridLocator locator(c.db, c.testbed.environment().footprint(),
                                  cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(locator.locate(c.observation));
  }
}
BENCHMARK(BM_GridLocateSerial)->Unit(benchmark::kMillisecond);

void BM_GridLocateParallel(benchmark::State& state) {
  const OfficeCorpus& c = office();
  core::GridLocatorConfig cfg;
  cfg.grid_pitch_ft = 2.0;
  cfg.parallel = true;
  const core::GridLocator locator(c.db, c.testbed.environment().footprint(),
                                  cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(locator.locate(c.observation));
  }
}
BENCHMARK(BM_GridLocateParallel)->Unit(benchmark::kMillisecond);

void BM_KnnBruteForce(benchmark::State& state) {
  const OfficeCorpus& c = office();
  const core::KnnLocator knn(c.db, core::KnnConfig{.k = 3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.locate(c.observation));
  }
}
BENCHMARK(BM_KnnBruteForce)->Unit(benchmark::kMicrosecond);

void BM_KnnKdTreeIndex(benchmark::State& state) {
  const OfficeCorpus& c = office();
  const core::SignalIndex index(c.db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.nearest(c.observation, 3));
  }
}
BENCHMARK(BM_KnnKdTreeIndex)->Unit(benchmark::kMicrosecond);

void BM_KdTreeBuild(benchmark::State& state) {
  const OfficeCorpus& c = office();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SignalIndex(c.db));
  }
}
BENCHMARK(BM_KdTreeBuild)->Unit(benchmark::kMicrosecond);

void BM_ProbabilisticLocate(benchmark::State& state) {
  const OfficeCorpus& c = office();
  const core::ProbabilisticLocator locator(c.db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(locator.locate(c.observation));
  }
}
BENCHMARK(BM_ProbabilisticLocate)->Unit(benchmark::kMicrosecond);

void BM_ParallelForOverhead(benchmark::State& state) {
  concurrency::ThreadPool pool(4);
  std::vector<double> sink(10000, 1.0);
  for (auto _ : state) {
    concurrency::parallel_for(pool, 0, sink.size(), [&](std::size_t i) {
      sink[i] = sink[i] * 1.0000001 + 0.5;
    });
    benchmark::DoNotOptimize(sink.data());
  }
}
BENCHMARK(BM_ParallelForOverhead)->Unit(benchmark::kMicrosecond);

void BM_ScanSimulation(benchmark::State& state) {
  const OfficeCorpus& c = office();
  radio::Scanner scanner = c.testbed.make_scanner(5555);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner.scan_at({33.0, 44.0}));
  }
}
BENCHMARK(BM_ScanSimulation)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();

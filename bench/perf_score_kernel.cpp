// PERF — the compiled scoring engine: seed string-keyed scoring vs
// the dense CompiledDatabase kernels, serial and batched across the
// thread pool.
//
// Workload: the office corpus from perf_parallel (120x80 ft, 6 APs,
// 5-ft survey grid -> ~400 training points), scored by the §5.1
// probabilistic locator and the RADAR k-NN baseline. The "seed" BMs
// reproduce the original per-<point, AP> string-keyed loops
// (Observation::mean_of + linear TrainingPoint::find) exactly as the
// growth seed shipped them, so the JSON trajectory keeps an honest
// baseline even as the reference paths improve.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <string_view>

#include "base/simd.hpp"
#include "bench_metrics.hpp"
#include "bench_util.hpp"
#include "concurrency/thread_pool.hpp"
#include "core/compiled_db.hpp"
#include "core/knn.hpp"
#include "core/probabilistic.hpp"
#include "stats/gaussian.hpp"
#include "traindb/generator.hpp"
#include "wiscan/survey.hpp"

using namespace loctk;

namespace {

struct OfficeCorpus {
  OfficeCorpus()
      : testbed(radio::make_office_floor(6)),
        map(core::make_training_grid(testbed.environment().footprint(),
                                     5.0)) {
    radio::Scanner scanner = testbed.make_scanner(31337);
    wiscan::SurveyConfig cfg;
    cfg.scans_per_location = 60;
    wiscan::SurveyCampaign campaign(scanner, cfg);
    collection = campaign.run(map);
    db = traindb::generate_database(collection, map);
    observation = core::Observation::from_scans(
        testbed.make_scanner(424242).collect({60.0, 40.0}, 30));
    // A working-phase batch: 64 concurrent clients scattered over the
    // floor.
    radio::Scanner batch_scanner = testbed.make_scanner(777);
    for (int i = 0; i < 64; ++i) {
      const double x = 5.0 + 110.0 * ((i * 37) % 64) / 64.0;
      const double y = 5.0 + 70.0 * ((i * 11) % 64) / 64.0;
      batch.push_back(
          core::Observation::from_scans(batch_scanner.collect({x, y}, 8)));
    }
  }

  core::Testbed testbed;
  wiscan::LocationMap map;
  wiscan::Collection collection;
  traindb::TrainingDatabase db;
  core::Observation observation;
  std::vector<core::Observation> batch;
};

const OfficeCorpus& office() {
  static const OfficeCorpus c;
  return c;
}

// The growth seed's §5.1 inner loop, verbatim: a string-keyed
// mean_of() per trained AP plus a linear find() per observed AP.
double seed_log_likelihood(const core::ProbabilisticLocator& locator,
                           const core::Observation& obs,
                           const traindb::TrainingPoint& point,
                           int* common_aps) {
  const core::ProbabilisticConfig& config = locator.config();
  double total = 0.0;
  int common = 0;
  for (const traindb::ApStatistics& ap : point.per_ap) {
    const auto observed = obs.mean_of(ap.bssid);
    if (observed) {
      stats::Gaussian g = ap.gaussian(config.sigma_floor_db);
      if (config.use_pooled_sigma) {
        g.sigma = locator.pooled_sigma_db(ap.bssid);
      }
      total += g.log_pdf(*observed);
      ++common;
    } else {
      total += config.missing_ap_log_penalty;
    }
  }
  for (const core::ObservedAp& oap : obs.aps()) {
    bool trained = false;
    for (const traindb::ApStatistics& ap : point.per_ap) {
      if (ap.bssid == oap.bssid) {
        trained = true;
        break;
      }
    }
    if (!trained) total += config.missing_ap_log_penalty;
  }
  if (common_aps) *common_aps = common;
  return total;
}

void BM_ScoreAll_SeedStringKeyed(benchmark::State& state) {
  const OfficeCorpus& c = office();
  const core::ProbabilisticLocator locator(c.db);
  for (auto _ : state) {
    double best = -1e300;
    for (const traindb::TrainingPoint& p : c.db.points()) {
      int common = 0;
      const double ll =
          seed_log_likelihood(locator, c.observation, p, &common);
      if (common >= 1 && ll > best) best = ll;
    }
    benchmark::DoNotOptimize(best);
  }
  state.counters["points"] = static_cast<double>(c.db.size());
}
BENCHMARK(BM_ScoreAll_SeedStringKeyed)->Unit(benchmark::kMicrosecond);

void BM_ScoreAll_ReferenceMerge(benchmark::State& state) {
  const OfficeCorpus& c = office();
  const core::ProbabilisticLocator locator(c.db);
  for (auto _ : state) {
    double best = -1e300;
    for (const traindb::TrainingPoint& p : c.db.points()) {
      int common = 0;
      const double ll = locator.log_likelihood(c.observation, p, &common);
      if (common >= 1 && ll > best) best = ll;
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_ScoreAll_ReferenceMerge)->Unit(benchmark::kMicrosecond);

void BM_ScoreAll_DenseSerial(benchmark::State& state) {
  const OfficeCorpus& c = office();
  const core::ProbabilisticLocator locator(c.db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(locator.score_all(c.observation));
  }
}
BENCHMARK(BM_ScoreAll_DenseSerial)->Unit(benchmark::kMicrosecond);

void BM_Locate_Dense(benchmark::State& state) {
  const OfficeCorpus& c = office();
  const core::ProbabilisticLocator locator(c.db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(locator.locate(c.observation));
  }
}
BENCHMARK(BM_Locate_Dense)->Unit(benchmark::kMicrosecond);

// RADAR k-NN: seed universe-scan with per-BSSID string lookups vs the
// dense pre-filled signature matrix.
void BM_Knn_SeedStringKeyed(benchmark::State& state) {
  const OfficeCorpus& c = office();
  const core::KnnLocator knn(c.db, core::KnnConfig{.k = 3});
  const auto& universe = c.db.bssid_universe();
  for (auto _ : state) {
    double best = 1e300;
    for (const traindb::TrainingPoint& p : c.db.points()) {
      double sum2 = 0.0;
      for (const std::string& bssid : universe) {
        const traindb::ApStatistics* trained = nullptr;
        for (const traindb::ApStatistics& s : p.per_ap) {
          if (s.bssid == bssid) {
            trained = &s;
            break;
          }
        }
        const auto observed = c.observation.mean_of(bssid);
        const double a =
            trained ? trained->mean_dbm : knn.config().missing_dbm;
        const double b = observed.value_or(knn.config().missing_dbm);
        sum2 += (a - b) * (a - b);
      }
      best = std::min(best, std::sqrt(sum2));
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_Knn_SeedStringKeyed)->Unit(benchmark::kMicrosecond);

void BM_Knn_Dense(benchmark::State& state) {
  const OfficeCorpus& c = office();
  const core::KnnLocator knn(c.db, core::KnnConfig{.k = 3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.locate(c.observation));
  }
}
BENCHMARK(BM_Knn_Dense)->Unit(benchmark::kMicrosecond);

// Batched localization: 64 observations through locate_batch, serial
// vs chunked across the thread pool.
void BM_Batch64_DenseSerial(benchmark::State& state) {
  const OfficeCorpus& c = office();
  const core::ProbabilisticLocator locator(c.db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(locator.locate_batch(c.batch));
  }
  state.counters["obs"] = static_cast<double>(c.batch.size());
}
BENCHMARK(BM_Batch64_DenseSerial)->Unit(benchmark::kMillisecond);

void BM_Batch64_DenseParallel(benchmark::State& state) {
  const OfficeCorpus& c = office();
  const core::ProbabilisticLocator locator(c.db);
  concurrency::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(locator.locate_batch(c.batch, &pool));
  }
  state.counters["obs"] = static_cast<double>(c.batch.size());
}
BENCHMARK(BM_Batch64_DenseParallel)->Arg(2)->Arg(4)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// The v2 scoring engine: cache-blocked score_batch throughput
// (observations/sec via items_per_second) and the coarse-to-fine
// pruned locate path vs the exhaustive sweep. `simd` in the counters
// records which backend the binary dispatched to ("avx2"/"neon" = 1,
// scalar fallback = 0) so the JSON trajectory stays interpretable
// across build configurations.
void BM_ScoreBatch64_Blocked(benchmark::State& state) {
  const OfficeCorpus& c = office();
  const core::ProbabilisticLocator locator(c.db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(locator.score_batch(c.batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(c.batch.size()));
  state.counters["points"] = static_cast<double>(c.db.size());
  state.counters["simd"] = std::string_view(simd::backend()) != "scalar";
}
BENCHMARK(BM_ScoreBatch64_Blocked)->Unit(benchmark::kMillisecond);

void BM_ScoreBatch64_BlockedParallel(benchmark::State& state) {
  const OfficeCorpus& c = office();
  const core::ProbabilisticLocator locator(c.db);
  concurrency::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(locator.score_batch(c.batch, &pool));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(c.batch.size()));
}
BENCHMARK(BM_ScoreBatch64_BlockedParallel)->Arg(2)->Arg(4)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_Locate_Pruned(benchmark::State& state) {
  const OfficeCorpus& c = office();
  core::ProbabilisticConfig config;
  config.prune_top_k = static_cast<int>(state.range(0));
  const core::ProbabilisticLocator locator(c.db, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(locator.locate(c.observation));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["points"] = static_cast<double>(c.db.size());
  state.counters["top_k"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Locate_Pruned)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_Knn_Pruned(benchmark::State& state) {
  const OfficeCorpus& c = office();
  const core::KnnLocator knn(
      c.db, core::KnnConfig{.k = 3, .prune_top_k = 32});
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.locate(c.observation));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Knn_Pruned)->Unit(benchmark::kMicrosecond);

// Compilation cost itself, to show it amortizes.
void BM_CompileDatabase(benchmark::State& state) {
  const OfficeCorpus& c = office();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::CompiledDatabase(c.db));
  }
}
BENCHMARK(BM_CompileDatabase)->Unit(benchmark::kMicrosecond);

}  // namespace

LOCTK_BENCHMARK_MAIN_WITH_METRICS("perf_score_kernel")

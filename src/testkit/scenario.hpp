#pragma once

/// \file scenario.hpp
/// Declarative replay scenarios: site + fleet + fault schedule.
///
/// A `ScenarioSpec` describes everything a conformance run needs in
/// plain data — which site model to instantiate, the channel knobs,
/// the training survey, a fleet of devices each walking a waypoint
/// path on its own scan cadence, and a deterministic fault schedule
/// (dropped scans, NaN readings, lost APs). Materializing the spec
/// (`Scenario`) builds the simulated testbed and training database;
/// `record_trace()` then drives the radio simulator once and freezes
/// the resulting fleet scan stream into a `ScanTrace`. Everything is
/// seeded, so the same spec always yields byte-identical traces and
/// databases — the property the golden gates and the soak driver's
/// determinism assertions stand on.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "geom/vec2.hpp"
#include "radio/campus.hpp"
#include "radio/scanner.hpp"
#include "testkit/trace.hpp"
#include "traindb/database.hpp"

namespace loctk::testkit {

/// Which site model the scenario instantiates.
enum class SiteModel {
  kPaperHouse,   ///< the paper's 50x40 ft house, 4 corner APs
  kOfficeFloor,  ///< the 120x80 ft synthetic office, `ap_count` APs
  kCampus,       ///< a generated multi-building campus (`campus` spec)
};

/// One simulated device: a motion path and a scan budget.
struct DeviceSpec {
  /// Waypoints walked at `speed_ft_s`; a single waypoint is a
  /// stationary device.
  std::vector<geom::Vec2> waypoints;
  double speed_ft_s = 1.5;
  /// Scans this device records (one per channel scan interval).
  int scans = 60;
  /// Added to every recorded timestamp (fleet devices do not all join
  /// at t = 0).
  double start_time_s = 0.0;
  /// Campus scenarios only: the (building, floor) this device walks.
  std::uint32_t building = 0;
  std::uint32_t floor = 0;
  /// This device's NIC reporting bias, added on top of the channel's
  /// `device_offset_db`. Campus fleets draw heterogeneous offsets so
  /// traces carry the cross-device spread real deployments see.
  double rssi_offset_db = 0.0;
};

/// One scheduled fault on the recorded stream.
struct FaultEvent {
  enum class Kind {
    kDropScan,        ///< the scan is lost entirely (NIC hiccup)
    kNonFiniteRssi,   ///< first sample reports NaN dBm (driver glitch)
    kDropStrongestAp, ///< the loudest AP vanishes from the scan
  };
  std::uint32_t device = 0;
  std::uint32_t scan_index = 0;
  Kind kind = Kind::kNonFiniteRssi;
};

/// One decommissioned AP: from `off_time_s` on (recorded timestamps,
/// device start offsets included) the AP vanishes from every scan —
/// the churn a long-lived fingerprint database must survive.
struct ApChurnEvent {
  /// Site AP index: campus-global for kCampus, environment order
  /// otherwise.
  std::uint32_t ap_index = 0;
  double off_time_s = 0.0;
};

/// The declarative scenario.
struct ScenarioSpec {
  std::string name = "scenario";
  SiteModel site = SiteModel::kPaperHouse;
  /// AP count for kOfficeFloor (ignored by the paper house).
  int ap_count = 6;
  /// Master seed: derives the training survey, every device's channel
  /// session, and the fleet factory's paths.
  std::uint64_t seed = 1;
  radio::ChannelConfig channel;
  /// Training survey: grid spacing and scans per training point.
  double grid_spacing_ft = 10.0;
  int train_scans = 90;
  /// Retain raw samples in the training database (the histogram
  /// locator's differential path needs them).
  bool keep_samples = true;
  /// Campus shape (used when site == kCampus; ignored otherwise).
  radio::CampusSpec campus;
  std::vector<DeviceSpec> devices;
  std::vector<FaultEvent> faults;
  std::vector<ApChurnEvent> ap_churn;

  /// A fleet of `device_count` devices random-waypoint-walking the
  /// site, `scans_per_device` scans each, staggered start times.
  static ScenarioSpec fleet(std::size_t device_count, int scans_per_device,
                            std::uint64_t seed = 1,
                            SiteModel site = SiteModel::kPaperHouse);

  /// A campus fleet: devices assigned round-robin over the flat
  /// floors (so every floor carries traffic), each walking a random
  /// waypoint path inside its own building with a heterogeneous NIC
  /// offset drawn uniformly from ±`offset_spread_db`/2.
  static ScenarioSpec campus_fleet(std::size_t device_count,
                                   int scans_per_device,
                                   std::uint64_t seed = 1,
                                   radio::CampusSpec campus = {},
                                   double offset_spread_db = 12.0);
};

/// A materialized scenario: the simulated site plus its deterministic
/// training database. Non-copyable (the testbed pins its environment).
///
/// Campus scenarios hold a `radio::Campus` instead of a single-floor
/// testbed; their training runs one survey per (building, floor)
/// (`floor_databases()`, for the floor selector) and `database()` is
/// the campus-wide merge the flat locators race on.
class Scenario {
 public:
  explicit Scenario(ScenarioSpec spec);

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  const ScenarioSpec& spec() const { return spec_; }
  /// The single-environment testbed. Throws std::logic_error for
  /// campus scenarios, which have no single environment — use
  /// `campus()`.
  const core::Testbed& testbed() const;
  /// The generated campus (kCampus only; throws otherwise).
  const radio::Campus& campus() const;
  const traindb::TrainingDatabase& database() const { return db_; }
  /// Per-flat-floor training databases (kCampus only; empty
  /// otherwise) — the `FloorSelector` input.
  const std::vector<traindb::TrainingDatabase>& floor_databases() const {
    return floor_dbs_;
  }

  /// Drives the simulator over the fleet, fault schedule, and AP
  /// churn. Purely a function of the spec: recording twice yields
  /// identical bytes.
  ScanTrace record_trace() const;

 private:
  static radio::Environment make_environment(const ScenarioSpec& spec);

  ScenarioSpec spec_;
  std::unique_ptr<radio::Campus> campus_;  // kCampus only
  std::unique_ptr<core::Testbed> testbed_;  // every other site
  std::vector<traindb::TrainingDatabase> floor_dbs_;  // kCampus only
  traindb::TrainingDatabase db_;
};

/// Chunks each device's recorded scans into consecutive windows of
/// `window_scans` (final partial window kept when at least one scan
/// remains) and averages each window into an `Observation` — the
/// working-phase view of a trace the differential oracle scores.
/// Scans carrying non-finite samples are skipped (they exist to test
/// the service's rejection path, not the locators' math).
std::vector<core::Observation> observations_from_trace(
    const ScanTrace& trace, std::size_t window_scans = 8);

}  // namespace loctk::testkit

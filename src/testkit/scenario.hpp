#pragma once

/// \file scenario.hpp
/// Declarative replay scenarios: site + fleet + fault schedule.
///
/// A `ScenarioSpec` describes everything a conformance run needs in
/// plain data — which site model to instantiate, the channel knobs,
/// the training survey, a fleet of devices each walking a waypoint
/// path on its own scan cadence, and a deterministic fault schedule
/// (dropped scans, NaN readings, lost APs). Materializing the spec
/// (`Scenario`) builds the simulated testbed and training database;
/// `record_trace()` then drives the radio simulator once and freezes
/// the resulting fleet scan stream into a `ScanTrace`. Everything is
/// seeded, so the same spec always yields byte-identical traces and
/// databases — the property the golden gates and the soak driver's
/// determinism assertions stand on.

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "geom/vec2.hpp"
#include "radio/scanner.hpp"
#include "testkit/trace.hpp"
#include "traindb/database.hpp"

namespace loctk::testkit {

/// Which site model the scenario instantiates.
enum class SiteModel {
  kPaperHouse,   ///< the paper's 50x40 ft house, 4 corner APs
  kOfficeFloor,  ///< the 120x80 ft synthetic office, `ap_count` APs
};

/// One simulated device: a motion path and a scan budget.
struct DeviceSpec {
  /// Waypoints walked at `speed_ft_s`; a single waypoint is a
  /// stationary device.
  std::vector<geom::Vec2> waypoints;
  double speed_ft_s = 1.5;
  /// Scans this device records (one per channel scan interval).
  int scans = 60;
  /// Added to every recorded timestamp (fleet devices do not all join
  /// at t = 0).
  double start_time_s = 0.0;
};

/// One scheduled fault on the recorded stream.
struct FaultEvent {
  enum class Kind {
    kDropScan,        ///< the scan is lost entirely (NIC hiccup)
    kNonFiniteRssi,   ///< first sample reports NaN dBm (driver glitch)
    kDropStrongestAp, ///< the loudest AP vanishes from the scan
  };
  std::uint32_t device = 0;
  std::uint32_t scan_index = 0;
  Kind kind = Kind::kNonFiniteRssi;
};

/// The declarative scenario.
struct ScenarioSpec {
  std::string name = "scenario";
  SiteModel site = SiteModel::kPaperHouse;
  /// AP count for kOfficeFloor (ignored by the paper house).
  int ap_count = 6;
  /// Master seed: derives the training survey, every device's channel
  /// session, and the fleet factory's paths.
  std::uint64_t seed = 1;
  radio::ChannelConfig channel;
  /// Training survey: grid spacing and scans per training point.
  double grid_spacing_ft = 10.0;
  int train_scans = 90;
  /// Retain raw samples in the training database (the histogram
  /// locator's differential path needs them).
  bool keep_samples = true;
  std::vector<DeviceSpec> devices;
  std::vector<FaultEvent> faults;

  /// A fleet of `device_count` devices random-waypoint-walking the
  /// site, `scans_per_device` scans each, staggered start times.
  static ScenarioSpec fleet(std::size_t device_count, int scans_per_device,
                            std::uint64_t seed = 1,
                            SiteModel site = SiteModel::kPaperHouse);
};

/// A materialized scenario: the simulated site plus its deterministic
/// training database. Non-copyable (the testbed pins its environment).
class Scenario {
 public:
  explicit Scenario(ScenarioSpec spec);

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  const ScenarioSpec& spec() const { return spec_; }
  const core::Testbed& testbed() const { return testbed_; }
  const traindb::TrainingDatabase& database() const { return db_; }

  /// Drives the simulator over the fleet and fault schedule. Purely a
  /// function of the spec: recording twice yields identical bytes.
  ScanTrace record_trace() const;

 private:
  static radio::Environment make_environment(const ScenarioSpec& spec);

  ScenarioSpec spec_;
  core::Testbed testbed_;
  traindb::TrainingDatabase db_;
};

/// Chunks each device's recorded scans into consecutive windows of
/// `window_scans` (final partial window kept when at least one scan
/// remains) and averages each window into an `Observation` — the
/// working-phase view of a trace the differential oracle scores.
/// Scans carrying non-finite samples are skipped (they exist to test
/// the service's rejection path, not the locators' math).
std::vector<core::Observation> observations_from_trace(
    const ScanTrace& trace, std::size_t window_scans = 8);

}  // namespace loctk::testkit

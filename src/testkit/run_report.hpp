#pragma once

/// \file run_report.hpp
/// The deterministic output of a soak/replay run.
///
/// A `RunReport` is everything about a fleet replay that must NOT
/// depend on thread count, scheduling, or wall clock: scan/fix/reject
/// tallies and the sorted per-fix error list (the accuracy CDF). Two
/// replays of the same trace produce `==`-equal reports — that is the
/// bit-for-bit acceptance gate — so anything timing-flavored (locate
/// latency percentiles) lives in `SoakResult` beside the report, never
/// inside it. Serialization (`to_json`) prints doubles with %.17g so
/// the artifact round-trips the exact values CI compared.

#include <cstdint>
#include <string>
#include <vector>

namespace loctk::testkit {

/// Deterministic summary of one fleet replay.
struct RunReport {
  std::string scenario;
  std::uint32_t device_count = 0;
  /// Scans fed to the per-device services (== trace scan count).
  std::uint64_t scans_replayed = 0;
  /// Fixes with fix.valid, split into fresh and Kalman-coasted.
  std::uint64_t valid_fixes = 0;
  std::uint64_t degraded_fixes = 0;
  /// Scans that produced no valid fix (window warm-up or hard failure).
  std::uint64_t invalid_fixes = 0;
  /// Non-finite samples dropped at the service door.
  std::uint64_t rejected_samples = 0;
  /// Euclidean error (ft) of every fresh valid fix against the truth
  /// recorded in the trace, sorted ascending (the accuracy CDF).
  std::vector<double> errors_ft;

  /// Fraction of replayed scans that yielded a valid fix.
  double valid_fix_fraction() const;
  /// Fraction of valid fixes that were Kalman coasts.
  double degraded_fix_rate() const;

  double mean_error_ft() const;
  double median_error_ft() const;
  double p90_error_ft() const;
  double max_error_ft() const;
  /// Error at CDF fraction `q` in [0, 1] (nearest-rank; 0 on empty).
  double error_percentile(double q) const;

  /// Human-readable block for logs.
  std::string to_text() const;
  /// Stable JSON (sorted keys, %.17g doubles) for CI artifacts.
  std::string to_json() const;

  friend bool operator==(const RunReport&, const RunReport&) = default;
};

}  // namespace loctk::testkit

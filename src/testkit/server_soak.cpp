#include "testkit/server_soak.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "base/metrics.hpp"
#include "concurrency/parallel_for.hpp"
#include "core/compiled_db.hpp"
#include "core/probabilistic.hpp"
#include "floorplan/fleet_compositor.hpp"
#include "image/codec_bmp.hpp"
#include "serve/location_server.hpp"
#include "testkit/fleet_frame.hpp"
#include "testkit/scenario.hpp"
#include "testkit/trace.hpp"

namespace loctk::testkit {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Per-(site, device) tallies, written only by the worker replaying
/// that device and merged in (site, device) order afterwards.
struct DeviceSlot {
  std::uint64_t valid = 0;
  std::uint64_t degraded = 0;
  std::uint64_t invalid = 0;
  std::vector<double> errors_ft;
  std::vector<double> on_scan_s;
};

std::string format_violation(const char* what, std::uint64_t expected,
                             std::uint64_t actual) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s: expected %llu, got %llu", what,
                static_cast<unsigned long long>(expected),
                static_cast<unsigned long long>(actual));
  return buf;
}

/// The production republish: a locator freshly compiled from the
/// site's training database. Compilation is deterministic, so every
/// generation scores identically — which is what keeps the run report
/// independent of swap timing.
std::shared_ptr<const core::Locator> make_site_locator(
    const Scenario& scenario) {
  core::ProbabilisticConfig config;
  config.prune_top_k = 32;
  config.prune_strongest_aps = 4;
  return std::make_shared<const core::ProbabilisticLocator>(
      core::CompiledDatabase::compile(scenario.database()), config);
}

/// The fleet soak's standing fault schedule, per site.
void add_fault_schedule(ScenarioSpec& spec) {
  const auto devices = static_cast<std::uint32_t>(spec.devices.size());
  for (std::uint32_t d = 0; d < devices; d += 7) {
    spec.faults.push_back({.device = d, .scan_index = (d % 13) + 3,
                           .kind = FaultEvent::Kind::kNonFiniteRssi});
  }
  for (std::uint32_t d = 3; d < devices; d += 11) {
    spec.faults.push_back({.device = d, .scan_index = (d % 17) + 2,
                           .kind = FaultEvent::Kind::kDropScan});
  }
  for (std::uint32_t d = 5; d < devices; d += 9) {
    spec.faults.push_back({.device = d, .scan_index = (d % 19) + 1,
                           .kind = FaultEvent::Kind::kDropStrongestAp});
  }
}

serve::DeviceId device_id(std::size_t site, std::uint32_t device) {
  return (static_cast<serve::DeviceId>(site + 1) << 32) |
         (static_cast<serve::DeviceId>(device) + 1);
}

}  // namespace

ServerSoakResult run_server_soak(const ServerSoakConfig& config) {
  concurrency::ThreadPool& pool =
      config.pool ? *config.pool : concurrency::default_pool();
  ServerSoakResult result;

  // --- Synthesize the multi-site workload -------------------------
  std::vector<std::unique_ptr<Scenario>> scenarios;
  std::vector<ScanTrace> traces;
  scenarios.reserve(config.sites);
  traces.reserve(config.sites);
  std::size_t total_scans = 0;
  for (std::size_t s = 0; s < config.sites; ++s) {
    const std::uint64_t site_seed = config.seed + 1000 * (s + 1);
    ScenarioSpec spec;
    if (s < config.campus_sites) {
      spec = ScenarioSpec::campus_fleet(config.devices_per_site,
                                        config.scans_per_device, site_seed);
      spec.train_scans = config.campus_train_scans;
    } else {
      spec = ScenarioSpec::fleet(config.devices_per_site,
                                 config.scans_per_device, site_seed);
    }
    spec.name = "site-" + std::to_string(s) + "-" + spec.name;
    if (config.fault_schedule) add_fault_schedule(spec);
    scenarios.push_back(std::make_unique<Scenario>(std::move(spec)));
    traces.push_back(scenarios.back()->record_trace());
    total_scans += traces.back().scans.size();
  }

  // --- Stand the server up ----------------------------------------
  serve::LocationServerConfig server_config;
  server_config.service = config.service;
  server_config.max_sites = std::max<std::size_t>(1, config.sites);
  // The "session table never fills" invariant below demands a table
  // that genuinely cannot fill. Capacity is split across 16 hash
  // stripes and a stripe overflows individually, so 2x total headroom
  // is not enough at small per-site fleets (64 devices over 16
  // stripes of 8 cells overflows on ordinary hash imbalance); size
  // for per-stripe slack, not just aggregate load factor.
  server_config.sessions_per_site =
      std::max<std::size_t>(256, 4 * config.devices_per_site);
  serve::LocationServer server(server_config);

  metrics::Counter& service_scans = metrics::counter("service.scans");
  metrics::Counter& service_rejected =
      metrics::counter("service.rejected_samples");
  const std::uint64_t service_scans_before = service_scans.value();
  const std::uint64_t service_rejected_before = service_rejected.value();
  const std::size_t pool_errors_before = pool.uncaught_task_errors();

  std::vector<serve::SiteId> site_ids;
  std::vector<std::uint64_t> shard_scans_before;
  for (std::size_t s = 0; s < config.sites; ++s) {
    site_ids.push_back(server.add_site(scenarios[s]->spec().name,
                                       make_site_locator(*scenarios[s])));
    shard_scans_before.push_back(server.stats(site_ids[s]).scans);
  }

  // --- Replay with a swapper thread republishing under load -------
  std::vector<std::vector<std::vector<std::size_t>>> by_device(config.sites);
  std::vector<std::pair<std::size_t, std::uint32_t>> work;
  for (std::size_t s = 0; s < config.sites; ++s) {
    by_device[s] = traces[s].scans_by_device();
    for (std::uint32_t d = 0; d < by_device[s].size(); ++d) {
      work.emplace_back(s, d);
    }
  }
  std::vector<DeviceSlot> slots(work.size());

  const std::size_t swap_every =
      config.swap_every_scans > 0
          ? config.swap_every_scans
          : std::max<std::size_t>(1, total_scans / 16);
  const std::uint64_t planned_waves =
      static_cast<std::uint64_t>(total_scans / swap_every);

  std::atomic<std::size_t> progress{0};
  std::atomic<std::uint64_t> waves_claimed{0};
  std::atomic<std::uint64_t> waves{0};
  std::atomic<std::uint64_t> waves_under_load{0};

  // Swap waves are worker-driven: the replay worker whose scan pushes
  // fleet progress across a multiple of `swap_every` claims the wave
  // and republishes every site inline, while the rest of the fleet
  // keeps scanning straight through the swap. That makes the wave
  // count an exact function of progress (no scheduler luck, even on a
  // single-CPU host) and still lands every wave under live traffic.
  const auto drive_swap_waves = [&](std::size_t scans_done) {
    std::uint64_t claimed = waves_claimed.load(std::memory_order_relaxed);
    while (claimed < planned_waves &&
           static_cast<std::uint64_t>(scans_done) >=
               (claimed + 1) * swap_every) {
      if (waves_claimed.compare_exchange_weak(claimed, claimed + 1,
                                              std::memory_order_relaxed)) {
        for (std::size_t s = 0; s < config.sites; ++s) {
          server.swap_site(site_ids[s], make_site_locator(*scenarios[s]));
        }
        waves.fetch_add(1, std::memory_order_relaxed);
        if (progress.load(std::memory_order_relaxed) < total_scans) {
          waves_under_load.fetch_add(1, std::memory_order_relaxed);
        }
        claimed = waves_claimed.load(std::memory_order_relaxed);
      }
    }
  };

  const Clock::time_point start = Clock::now();
  concurrency::parallel_for(pool, 0, work.size(), [&](std::size_t w) {
    const auto [site, device] = work[w];
    const ScanTrace& trace = traces[site];
    DeviceSlot& slot = slots[w];
    const serve::DeviceId id = device_id(site, device);
    slot.errors_ft.reserve(by_device[site][device].size());
    slot.on_scan_s.reserve(by_device[site][device].size());
    for (std::size_t idx : by_device[site][device]) {
      const TraceScan& ts = trace.scans[idx];
      const Clock::time_point scan_start = Clock::now();
      const core::ServiceFix fix =
          server.on_scan(site_ids[site], id, ts.scan);
      slot.on_scan_s.push_back(seconds_since(scan_start));
      const std::size_t done =
          progress.fetch_add(1, std::memory_order_relaxed) + 1;
      drive_swap_waves(done);
      if (!fix.valid) {
        ++slot.invalid;
      } else if (fix.degraded()) {
        ++slot.degraded;
      } else {
        ++slot.valid;
        slot.errors_ft.push_back(geom::distance(fix.position, ts.truth));
      }
    }
  });
  result.wall_s = seconds_since(start);
  result.swap_waves = waves.load();
  result.swap_waves_under_load = waves_under_load.load();

  // --- Per-tick campus fleet frames (optional) ---------------------
  if (!config.frames_dir.empty() && config.campus_sites > 0 &&
      !scenarios.empty()) {
    std::filesystem::create_directories(config.frames_dir);
    const FleetFrameBuilder frames(*scenarios[0]);
    floorplan::FleetCompositorOptions compositor_options;
    compositor_options.pool = &pool;
    const floorplan::FleetCompositor compositor(compositor_options);
    const std::size_t every = std::max<std::size_t>(1, config.frame_every_ticks);
    const std::size_t ticks = frames.tick_count(traces[0]);
    for (std::size_t tick = 0; tick < ticks; tick += every) {
      const image::Raster frame =
          compositor.render(frames.frame(traces[0], tick));
      char name[32];
      std::snprintf(name, sizeof(name), "frame-%04zu.bmp", tick);
      image::write_bmp(std::filesystem::path(config.frames_dir) / name,
                       frame);
      ++result.frames_written;
    }
  }

  // --- Assemble the deterministic reports -------------------------
  RunReport& report = result.report;
  report.scenario = "server-soak-" + std::to_string(config.sites) + "x" +
                    std::to_string(config.devices_per_site) + "x" +
                    std::to_string(config.scans_per_device) + "-seed" +
                    std::to_string(config.seed);
  if (config.campus_sites > 0) {
    report.scenario +=
        "-campus" + std::to_string(std::min(config.campus_sites, config.sites));
  }
  report.device_count =
      static_cast<std::uint32_t>(config.sites * config.devices_per_site);
  report.scans_replayed = total_scans;

  result.site_reports.resize(config.sites);
  std::vector<double> latencies;
  latencies.reserve(total_scans);
  for (std::size_t w = 0; w < work.size(); ++w) {
    const auto [site, device] = work[w];
    const DeviceSlot& slot = slots[w];
    RunReport& site_report = result.site_reports[site];
    site_report.scenario = traces[site].scenario;
    site_report.device_count = traces[site].device_count;
    site_report.scans_replayed = traces[site].scans.size();
    site_report.valid_fixes += slot.valid;
    site_report.degraded_fixes += slot.degraded;
    site_report.invalid_fixes += slot.invalid;
    site_report.errors_ft.insert(site_report.errors_ft.end(),
                                 slot.errors_ft.begin(),
                                 slot.errors_ft.end());
    latencies.insert(latencies.end(), slot.on_scan_s.begin(),
                     slot.on_scan_s.end());
  }
  std::uint64_t non_finite_samples = 0;
  for (std::size_t s = 0; s < config.sites; ++s) {
    RunReport& site_report = result.site_reports[s];
    // Rejected samples are deterministic properties of the trace (the
    // session drops exactly the non-finite ones); the metric
    // cross-check below confirms the live counters agree.
    for (const TraceScan& ts : traces[s].scans) {
      for (const radio::ScanSample& sample : ts.scan.samples) {
        if (!std::isfinite(sample.rssi_dbm)) ++site_report.rejected_samples;
      }
    }
    non_finite_samples += site_report.rejected_samples;
    std::sort(site_report.errors_ft.begin(), site_report.errors_ft.end());
    report.valid_fixes += site_report.valid_fixes;
    report.degraded_fixes += site_report.degraded_fixes;
    report.invalid_fixes += site_report.invalid_fixes;
    report.rejected_samples += site_report.rejected_samples;
    report.errors_ft.insert(report.errors_ft.end(),
                            site_report.errors_ft.begin(),
                            site_report.errors_ft.end());
  }
  std::sort(report.errors_ft.begin(), report.errors_ft.end());

  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    double sum = 0.0;
    for (double v : latencies) sum += v;
    result.mean_on_scan_s = sum / static_cast<double>(latencies.size());
    result.p99_on_scan_s =
        latencies[std::min(latencies.size() - 1,
                           static_cast<std::size_t>(std::ceil(
                               0.99 * static_cast<double>(latencies.size()))) -
                               1)];
  }

  // --- Invariants --------------------------------------------------
  auto check = [&result](bool ok, std::string message) {
    if (!ok) result.violations.push_back(std::move(message));
  };

  const std::uint64_t fixes_total =
      report.valid_fixes + report.degraded_fixes + report.invalid_fixes;
  check(fixes_total == report.scans_replayed,
        format_violation("fix partition must sum to scan count",
                         report.scans_replayed, fixes_total));
  check(service_scans.value() - service_scans_before ==
            report.scans_replayed,
        format_violation("every scan must reach a session",
                         report.scans_replayed,
                         service_scans.value() - service_scans_before));
  check(service_rejected.value() - service_rejected_before ==
            non_finite_samples,
        format_violation("every non-finite sample must be rejected",
                         non_finite_samples,
                         service_rejected.value() - service_rejected_before));
  check(result.swap_waves == planned_waves,
        format_violation("every planned swap wave must run",
                         planned_waves, result.swap_waves));
  check(pool.uncaught_task_errors() == pool_errors_before,
        format_violation("uncaught pool errors during soak", 0,
                         pool.uncaught_task_errors() - pool_errors_before));

  for (std::size_t s = 0; s < config.sites; ++s) {
    server.reclaim(site_ids[s]);
    const serve::SiteStats stats = server.stats(site_ids[s]);
    result.max_generation = std::max(result.max_generation, stats.generation);
    const std::string prefix = "site " + std::to_string(s) + " ";
    check(stats.scans - shard_scans_before[s] ==
              result.site_reports[s].scans_replayed,
          format_violation((prefix + "shard scan counter").c_str(),
                           result.site_reports[s].scans_replayed,
                           stats.scans - shard_scans_before[s]));
    check(stats.generation == planned_waves + 1,
          format_violation((prefix + "snapshot generation").c_str(),
                           planned_waves + 1, stats.generation));
    check(stats.sessions == config.devices_per_site,
          format_violation((prefix + "one session per device").c_str(),
                           config.devices_per_site, stats.sessions));
    check(stats.retired_snapshots == 0,
          format_violation(
              (prefix + "all retired snapshots reclaimed").c_str(), 0,
              stats.retired_snapshots));
    check(stats.reader_stalls == 0,
          format_violation(
              (prefix + "readers never stall across two epochs").c_str(),
              0, stats.reader_stalls));
    check(stats.sessions_rejected == 0,
          format_violation((prefix + "session table never fills").c_str(),
                           0, stats.sessions_rejected));
  }

  if (config.max_p99_on_scan_s > 0.0 &&
      result.p99_on_scan_s > config.max_p99_on_scan_s) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "p99 on_scan latency %.4fs exceeds bound %.4fs",
                  result.p99_on_scan_s, config.max_p99_on_scan_s);
    result.violations.push_back(buf);
  }

  return result;
}

}  // namespace loctk::testkit

#include "testkit/differential.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <optional>

#include "core/compiled_db.hpp"
#include "core/histogram_locator.hpp"
#include "core/knn.hpp"
#include "core/locator.hpp"
#include "core/place_recognition.hpp"
#include "core/probabilistic.hpp"
#include "core/ssd_locator.hpp"

namespace loctk::testkit {

namespace {

std::string describe(const char* what, double compiled, double reference) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s: compiled %.12g vs reference %.12g",
                what, compiled, reference);
  return buf;
}

/// Training-point index matching an arg-max estimate (these snap to a
/// training point exactly, so position equality is exact).
std::optional<std::size_t> point_of_estimate(
    const traindb::TrainingDatabase& db, const core::LocationEstimate& est) {
  const auto& points = db.points();
  for (std::size_t p = 0; p < points.size(); ++p) {
    if (points[p].location == est.location_name &&
        points[p].position == est.position) {
      return p;
    }
  }
  return std::nullopt;
}

/// Arg-max oracle: the compiled winner must be reference-defensible —
/// its reference score within `score_tol` of the reference optimum.
/// `ref_score(p)` is the string-keyed score of training point p, or
/// -inf for points the locator skips.
template <typename RefScore>
std::optional<std::string> check_argmax(
    const traindb::TrainingDatabase& db, const core::Locator& locator,
    const core::Observation& obs, const DifferentialConfig& config,
    RefScore&& ref_score) {
  const core::LocationEstimate est = locator.locate(obs);

  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t p = 0; p < db.points().size(); ++p) {
    best = std::max(best, ref_score(p));
  }
  const bool ref_valid =
      best != -std::numeric_limits<double>::infinity() && !obs.empty();

  if (est.valid != ref_valid) {
    return std::string("validity: compiled ") +
           (est.valid ? "valid" : "invalid") + " vs reference " +
           (ref_valid ? "valid" : "invalid");
  }
  if (!est.valid) return std::nullopt;

  const auto chosen = point_of_estimate(db, est);
  if (!chosen) {
    return "compiled estimate names no training point: '" +
           est.location_name + "'";
  }
  const double chosen_ref = ref_score(*chosen);
  if (best - chosen_ref > config.score_tol) {
    return describe("compiled winner loses by reference score", chosen_ref,
                    best);
  }
  if (std::abs(est.score - chosen_ref) > config.score_tol) {
    return describe("winning score", est.score, chosen_ref);
  }
  return std::nullopt;
}

/// k-NN-family oracle: reruns selection and weighting over the
/// reference distances. Distance summation order matches the compiled
/// kernels bit-for-bit, so the comparison is direct.
std::optional<std::string> check_knn_family(
    const traindb::TrainingDatabase& db, const core::Locator& locator,
    const core::Observation& obs, const DifferentialConfig& config, int k,
    bool inverse_weighting, double weighting_epsilon,
    const std::function<double(const traindb::TrainingPoint&)>& ref_distance) {
  const core::LocationEstimate est = locator.locate(obs);

  struct Neighbor {
    const traindb::TrainingPoint* point;
    double distance;
  };
  std::vector<Neighbor> neighbors;
  if (!obs.empty()) {
    for (const traindb::TrainingPoint& point : db.points()) {
      const double d = ref_distance(point);
      if (std::isinf(d)) continue;
      neighbors.push_back({&point, d});
    }
  }
  if (est.valid != !neighbors.empty()) {
    return std::string("validity: compiled ") +
           (est.valid ? "valid" : "invalid") + " vs reference " +
           (neighbors.empty() ? "invalid" : "valid");
  }
  if (!est.valid) return std::nullopt;

  const std::size_t kk =
      std::min<std::size_t>(static_cast<std::size_t>(k), neighbors.size());
  std::partial_sort(neighbors.begin(),
                    neighbors.begin() + static_cast<std::ptrdiff_t>(kk),
                    neighbors.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance;
                    });
  geom::Vec2 weighted;
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < kk; ++i) {
    const double w = inverse_weighting
                         ? 1.0 / (neighbors[i].distance + weighting_epsilon)
                         : 1.0;
    weighted += neighbors[i].point->position * w;
    weight_sum += w;
  }
  const geom::Vec2 ref_position = weighted / weight_sum;

  if (geom::distance(est.position, ref_position) > config.position_tol_ft) {
    return describe("position error (ft)",
                    geom::distance(est.position, ref_position), 0.0);
  }
  if (est.location_name != neighbors.front().point->location) {
    return "nearest-cell name: compiled '" + est.location_name +
           "' vs reference '" + neighbors.front().point->location + "'";
  }
  if (std::abs(est.score - (-neighbors.front().distance)) >
      config.score_tol) {
    return describe("score", est.score, -neighbors.front().distance);
  }
  return std::nullopt;
}

}  // namespace

std::string DifferentialReport::to_text() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "differential oracle: %llu observations, %llu comparisons, "
                "%zu mismatches\n",
                static_cast<unsigned long long>(observations),
                static_cast<unsigned long long>(comparisons),
                mismatches.size());
  std::string out = buf;
  for (const EstimateDiff& d : mismatches) {
    out += "  [" + d.locator + " #" + std::to_string(d.observation) + "] " +
           d.detail + "\n";
  }
  return out;
}

std::string PrunedDifferentialReport::to_text() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "pruned differential: %llu observations, %llu compared, "
                "%llu top-1 agreements, %zu disagreements\n",
                static_cast<unsigned long long>(observations),
                static_cast<unsigned long long>(compared),
                static_cast<unsigned long long>(top1_agreements),
                disagreements.size());
  std::string out = buf;
  for (const EstimateDiff& d : disagreements) {
    out += "  [" + d.locator + " #" + std::to_string(d.observation) + "] " +
           d.detail + "\n";
  }
  return out;
}

namespace {

/// Diffs one pruned estimate against its exact twin. Candidates are
/// scored with the exact kernel, so agreement means identical
/// validity, winner, and score — no tolerance needed.
std::optional<std::string> diff_pruned(const core::LocationEstimate& pruned,
                                       const core::LocationEstimate& exact) {
  if (pruned.valid != exact.valid) {
    return std::string("validity: pruned ") +
           (pruned.valid ? "valid" : "invalid") + " vs exact " +
           (exact.valid ? "valid" : "invalid");
  }
  if (!pruned.valid) return std::nullopt;
  if (pruned.location_name != exact.location_name ||
      !(pruned.position == exact.position)) {
    return "top-1: pruned '" + pruned.location_name + "' vs exact '" +
           exact.location_name + "'";
  }
  if (pruned.score != exact.score) {
    return describe("top-1 score", pruned.score, exact.score);
  }
  return std::nullopt;
}

}  // namespace

PrunedDifferentialReport run_pruned_differential(
    const traindb::TrainingDatabase& db,
    std::span<const core::Observation> observations,
    const core::ProbabilisticConfig& prune_config) {
  PrunedDifferentialReport report;
  report.observations = observations.size();

  const auto compiled = core::CompiledDatabase::compile(db);
  core::ProbabilisticConfig exact_config = prune_config;
  exact_config.prune_top_k = 0;
  const core::ProbabilisticLocator prob_pruned(compiled, prune_config);
  const core::ProbabilisticLocator prob_exact(compiled, exact_config);
  const core::KnnConfig knn_pruned_cfg{
      .k = 3, .prune_top_k = prune_config.prune_top_k,
      .prune_strongest_aps = prune_config.prune_strongest_aps};
  const core::KnnLocator knn_pruned(compiled, knn_pruned_cfg);
  const core::KnnLocator knn_exact(compiled, {.k = 3});

  auto compare = [&report](const std::string& locator, std::size_t i,
                           const core::LocationEstimate& pruned,
                           const core::LocationEstimate& exact) {
    ++report.compared;
    if (auto diff = diff_pruned(pruned, exact)) {
      report.disagreements.push_back({locator, i, std::move(*diff)});
    } else {
      ++report.top1_agreements;
    }
  };

  for (std::size_t i = 0; i < observations.size(); ++i) {
    const core::Observation& obs = observations[i];
    compare("probabilistic-ml/pruned", i, prob_pruned.locate(obs),
            prob_exact.locate(obs));
    compare("knn-3/pruned", i, knn_pruned.locate(obs),
            knn_exact.locate(obs));
  }
  return report;
}

DifferentialReport run_differential_oracle(
    const traindb::TrainingDatabase& db,
    const std::vector<core::Observation>& observations,
    const DifferentialConfig& config) {
  DifferentialReport report;
  report.observations = observations.size();

  const auto compiled = core::CompiledDatabase::compile(db);
  const core::ProbabilisticLocator prob(compiled);
  const core::PlaceRecognitionLocator place(compiled);
  const core::KnnLocator nnss(compiled, {.k = 1});
  const core::KnnLocator knn3(compiled, {.k = 3});
  const core::SsdLocator ssd(compiled);
  std::unique_ptr<core::HistogramLocator> hist;
  if (db.has_samples()) {
    hist = std::make_unique<core::HistogramLocator>(compiled);
  }

  auto note = [&report](const std::string& locator, std::size_t i,
                        std::optional<std::string> diff) {
    ++report.comparisons;
    if (diff) report.mismatches.push_back({locator, i, std::move(*diff)});
  };

  for (std::size_t i = 0; i < observations.size(); ++i) {
    const core::Observation& obs = observations[i];

    note(prob.name(), i,
         check_argmax(db, prob, obs, config, [&](std::size_t p) {
           int common = 0;
           const double ll =
               prob.log_likelihood(obs, db.points()[p], &common);
           return common < prob.config().min_common_aps
                      ? -std::numeric_limits<double>::infinity()
                      : ll;
         }));

    note(place.name(), i,
         check_argmax(db, place, obs, config, [&](std::size_t p) {
           int common = 0;
           const double score = place.reference_score(obs, p, &common);
           return common < place.config().min_common_aps
                      ? -std::numeric_limits<double>::infinity()
                      : score;
         }));

    if (hist) {
      note(hist->name(), i,
           check_argmax(db, *hist, obs, config, [&](std::size_t p) {
             return hist->log_likelihood(obs, p);
           }));
    }

    note(nnss.name(), i,
         check_knn_family(db, nnss, obs, config, nnss.config().k,
                          nnss.config().inverse_distance_weighting,
                          nnss.config().weighting_epsilon,
                          [&](const traindb::TrainingPoint& point) {
                            return nnss.signal_distance(obs, point);
                          }));
    note(knn3.name(), i,
         check_knn_family(db, knn3, obs, config, knn3.config().k,
                          knn3.config().inverse_distance_weighting,
                          knn3.config().weighting_epsilon,
                          [&](const traindb::TrainingPoint& point) {
                            return knn3.signal_distance(obs, point);
                          }));
    note(ssd.name(), i,
         check_knn_family(db, ssd, obs, config, ssd.config().k,
                          ssd.config().inverse_distance_weighting,
                          ssd.config().weighting_epsilon,
                          [&](const traindb::TrainingPoint& point) {
                            return ssd.ssd_distance(obs, point);
                          }));
  }
  return report;
}

std::string CompiledDiffReport::to_text() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "compiled diff: %llu cells compared, %zu mismatches"
                " (%llu truncated)\n",
                static_cast<unsigned long long>(cells_compared),
                mismatches.size(),
                static_cast<unsigned long long>(truncated));
  std::string out = buf;
  for (const std::string& m : mismatches) {
    out += "  " + m + "\n";
  }
  return out;
}

CompiledDiffReport compare_compiled_databases(
    const core::CompiledDatabase& delta,
    const core::CompiledDatabase& rebuild) {
  constexpr std::size_t kMaxListed = 32;
  CompiledDiffReport report;
  auto note = [&](std::string text) {
    if (report.mismatches.size() < kMaxListed) {
      report.mismatches.push_back(std::move(text));
    } else {
      ++report.truncated;
    }
  };

  if (delta.database() != rebuild.database()) {
    note("source TrainingDatabase differs (points/universe/site name)");
  }
  if (delta.point_count() != rebuild.point_count()) {
    note("point count: delta " + std::to_string(delta.point_count()) +
         " vs rebuild " + std::to_string(rebuild.point_count()));
  }
  if (delta.universe_size() != rebuild.universe_size()) {
    note("universe size: delta " + std::to_string(delta.universe_size()) +
         " vs rebuild " + std::to_string(rebuild.universe_size()));
  }
  if (delta.row_stride() != rebuild.row_stride()) {
    note("row stride: delta " + std::to_string(delta.row_stride()) +
         " vs rebuild " + std::to_string(rebuild.row_stride()));
  }
  if (!report.ok()) return report;  // shapes differ; cells are meaningless

  struct Matrix {
    const char* name;
    const double* (core::CompiledDatabase::*row)(std::size_t) const;
  };
  static constexpr Matrix kMatrices[] = {
      {"mean", &core::CompiledDatabase::mean_row},
      {"stddev", &core::CompiledDatabase::stddev_row},
      {"mask", &core::CompiledDatabase::mask_row},
      {"weight", &core::CompiledDatabase::weight_row},
  };
  const std::size_t stride = delta.row_stride();
  for (std::size_t p = 0; p < delta.point_count(); ++p) {
    if (delta.trained_count(p) != rebuild.trained_count(p)) {
      note("trained_count row " + std::to_string(p) + ": delta " +
           std::to_string(delta.trained_count(p)) + " vs rebuild " +
           std::to_string(rebuild.trained_count(p)));
    }
    for (const Matrix& m : kMatrices) {
      const double* a = (delta.*m.row)(p);
      const double* b = (rebuild.*m.row)(p);
      // Pad cells included: both builds promise exact 0.0 there.
      for (std::size_t u = 0; u < stride; ++u) {
        ++report.cells_compared;
        if (a[u] == b[u]) continue;  // bit-exact contract, no tolerance
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s[%zu][%zu]: delta %.17g vs rebuild %.17g", m.name,
                      p, u, a[u], b[u]);
        note(buf);
      }
    }
  }
  return report;
}

}  // namespace loctk::testkit

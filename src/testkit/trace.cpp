#include "testkit/trace.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>

#include "traindb/codec.hpp"
#include "wiscan/scan_buffer.hpp"

namespace loctk::testkit {

namespace {

constexpr char kMagic[4] = {'L', 'T', 'R', 'C'};

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

double get_f64(std::string_view in, std::size_t& pos) {
  if (in.size() - pos < 8) {
    throw traindb::CodecError("trace: truncated double");
  }
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(in[pos + static_cast<std::size_t>(i)]))
            << (8 * i);
  }
  pos += 8;
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void put_string(std::string& out, std::string_view s) {
  traindb::put_varint(out, s.size());
  out.append(s);
}

std::string get_string(std::string_view in, std::size_t& pos) {
  const std::uint64_t len = traindb::get_varint(in, pos);
  if (in.size() - pos < len) {
    throw traindb::CodecError("trace: truncated string");
  }
  std::string s(in.substr(pos, len));
  pos += len;
  return s;
}

}  // namespace

std::vector<std::vector<std::size_t>> ScanTrace::scans_by_device() const {
  std::vector<std::vector<std::size_t>> by_device(device_count);
  for (std::size_t i = 0; i < scans.size(); ++i) {
    by_device.at(scans[i].device).push_back(i);
  }
  return by_device;
}

std::string encode_trace(const ScanTrace& trace) {
  // Intern the BSSID table in first-appearance order so the byte
  // stream depends only on the scan content, not on map iteration.
  std::vector<std::string> table;
  std::map<std::string, std::uint64_t> index;
  for (const TraceScan& ts : trace.scans) {
    for (const radio::ScanSample& s : ts.scan.samples) {
      if (index.emplace(s.bssid, table.size()).second) {
        table.push_back(s.bssid);
      }
    }
  }

  std::string out;
  out.append(kMagic, 4);
  traindb::put_varint(out, kTraceVersion);
  put_string(out, trace.scenario);
  traindb::put_varint(out, trace.device_count);
  traindb::put_varint(out, table.size());
  for (const std::string& bssid : table) put_string(out, bssid);
  traindb::put_varint(out, trace.scans.size());
  for (const TraceScan& ts : trace.scans) {
    traindb::put_varint(out, ts.device);
    put_f64(out, ts.truth.x);
    put_f64(out, ts.truth.y);
    put_f64(out, ts.scan.timestamp_s);
    traindb::put_varint(out, ts.scan.samples.size());
    for (const radio::ScanSample& s : ts.scan.samples) {
      traindb::put_varint(out, index.at(s.bssid));
      put_f64(out, s.rssi_dbm);
      traindb::put_varint(
          out, traindb::zigzag_encode(static_cast<std::int64_t>(s.channel)));
    }
  }
  return out;
}

Result<ScanTrace> try_decode_trace(std::string_view bytes) {
  try {
    if (bytes.size() < 4 || !std::equal(kMagic, kMagic + 4, bytes.begin())) {
      return Error(ErrorCode::kCorrupt, "trace: bad magic");
    }
    std::size_t pos = 4;
    const std::uint64_t version = traindb::get_varint(bytes, pos);
    if (version != kTraceVersion) {
      return Error(ErrorCode::kCorrupt,
                   "trace: unsupported version " + std::to_string(version));
    }
    ScanTrace trace;
    trace.scenario = get_string(bytes, pos);
    trace.device_count =
        static_cast<std::uint32_t>(traindb::get_varint(bytes, pos));
    const std::uint64_t n_bssids = traindb::get_varint(bytes, pos);
    if (n_bssids > bytes.size()) {
      return Error(ErrorCode::kCorrupt, "trace: implausible BSSID count");
    }
    std::vector<std::string> table;
    table.reserve(n_bssids);
    for (std::uint64_t i = 0; i < n_bssids; ++i) {
      table.push_back(get_string(bytes, pos));
    }
    const std::uint64_t n_scans = traindb::get_varint(bytes, pos);
    if (n_scans > bytes.size()) {
      return Error(ErrorCode::kCorrupt, "trace: implausible scan count");
    }
    trace.scans.reserve(n_scans);
    for (std::uint64_t i = 0; i < n_scans; ++i) {
      TraceScan ts;
      ts.device = static_cast<std::uint32_t>(traindb::get_varint(bytes, pos));
      if (ts.device >= trace.device_count) {
        return Error(ErrorCode::kCorrupt,
                     "trace: device index out of range");
      }
      ts.truth.x = get_f64(bytes, pos);
      ts.truth.y = get_f64(bytes, pos);
      ts.scan.timestamp_s = get_f64(bytes, pos);
      const std::uint64_t n_samples = traindb::get_varint(bytes, pos);
      if (n_samples > bytes.size()) {
        return Error(ErrorCode::kCorrupt, "trace: implausible sample count");
      }
      ts.scan.samples.reserve(n_samples);
      for (std::uint64_t j = 0; j < n_samples; ++j) {
        const std::uint64_t idx = traindb::get_varint(bytes, pos);
        if (idx >= table.size()) {
          return Error(ErrorCode::kCorrupt,
                       "trace: BSSID index out of range");
        }
        radio::ScanSample s;
        s.bssid = table[idx];
        s.rssi_dbm = get_f64(bytes, pos);
        s.channel = static_cast<int>(
            traindb::zigzag_decode(traindb::get_varint(bytes, pos)));
        ts.scan.samples.push_back(std::move(s));
      }
      trace.scans.push_back(std::move(ts));
    }
    if (pos != bytes.size()) {
      return Error(ErrorCode::kCorrupt, "trace: trailing bytes");
    }
    return trace;
  } catch (const traindb::CodecError& e) {
    return Error(ErrorCode::kCorrupt, e.what());
  }
}

void write_trace(const std::filesystem::path& path, const ScanTrace& trace) {
  std::ofstream os(path, std::ios::binary);
  const std::string bytes = encode_trace(trace);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!os) {
    throw std::runtime_error("trace: failed to write " + path.string());
  }
}

Result<ScanTrace> try_read_trace(const std::filesystem::path& path) {
  Result<std::string> bytes = wiscan::try_read_file_bytes(path);
  if (!bytes.ok()) {
    return std::move(bytes).error().with_context("reading trace '" +
                                                 path.string() + "'");
  }
  return try_decode_trace(bytes.value())
      .with_context("decoding trace '" + path.string() + "'");
}

}  // namespace loctk::testkit

#pragma once

/// \file fleet_frame.hpp
/// Campus fleet frames: one visual per soak tick.
///
/// The paper's Compositor draws one device on one floor plan; a
/// campus soak wants a picture of the whole deployment every tick —
/// per-room coverage heat, every building footprint, every ground
/// floor AP with its label, and a marker for every device's
/// ground-truth position at that tick. `FleetFrameBuilder` turns a
/// campus `Scenario` + `ScanTrace` into `FleetFrameSpec` draw lists
/// the tile-parallel `FleetCompositor` renders: the expensive static
/// layer (heat cells, outlines, AP labels) is built once, then each
/// tick's frame appends only that tick's device markers.
///
/// Coordinates: campus feet map to pixels as
///   px = margin_px + round(ft * px_per_ft)
/// using the campus global frame (building b at
/// x ∈ [b·(width+gap), …+width), y ∈ [0, depth]).

#include <cstddef>

#include "floorplan/fleet_compositor.hpp"
#include "testkit/scenario.hpp"
#include "testkit/trace.hpp"

namespace loctk::testkit {

struct FleetFrameOptions {
  /// Pixels per campus foot.
  double px_per_ft = 2.0;
  /// Blank border around the campus extent.
  int margin_px = 18;
  /// Device marker half-size in pixels.
  int device_radius_px = 2;
  /// Label every `label_every`-th ground-floor AP (1 labels all; the
  /// stock campus has 170 per building, which fits at the default).
  int label_every = 1;
};

/// Builds per-tick frame specs for a campus scenario. The scenario
/// must outlive the builder. Throws (via `Scenario::campus()`) when
/// the scenario is not a campus.
class FleetFrameBuilder {
 public:
  explicit FleetFrameBuilder(const Scenario& scenario,
                             FleetFrameOptions options = {});

  int width() const { return base_.width; }
  int height() const { return base_.height; }

  /// The static layer: heat cells, footprints, AP markers + labels.
  const floorplan::FleetFrameSpec& base() const { return base_; }

  /// Ticks available in `trace` (the longest per-device scan count).
  std::size_t tick_count(const ScanTrace& trace) const;

  /// base() plus a ground-truth marker for every device that has a
  /// scan at `tick` (device d's tick-th scan in capture order).
  floorplan::FleetFrameSpec frame(const ScanTrace& trace,
                                  std::size_t tick) const;

  /// Pixel coordinates of a campus-feet position.
  int px_x(double ft_x) const;
  int px_y(double ft_y) const;

 private:
  const Scenario* scenario_;
  FleetFrameOptions options_;
  floorplan::FleetFrameSpec base_;
};

}  // namespace loctk::testkit

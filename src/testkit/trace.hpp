#pragma once

/// \file trace.hpp
/// Recorded scan traces: the replayable unit of every conformance run.
///
/// A scenario drives the radio simulator once and the resulting scan
/// stream is frozen into a `ScanTrace` — every device's every scan,
/// with its ground-truth position attached. Frozen traces are what the
/// soak driver, the differential oracle, and the golden gates consume:
/// replaying bytes instead of re-simulating means a failing run can be
/// reproduced bit-for-bit on another machine, and an accuracy shift
/// can always be attributed to the code, never to the workload.
///
/// The on-disk form is a versioned binary codec ("LTRC" magic) in the
/// same style as the training-database codec: counts and string
/// lengths are LEB128 varints, BSSIDs are interned into a table, and
/// every double is stored as its raw IEEE-754 bits little-endian — so
/// encode(decode(bytes)) == bytes and a trace carrying an injected
/// NaN fault round-trips the exact NaN payload.

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "base/error.hpp"
#include "geom/vec2.hpp"
#include "radio/scanner.hpp"

namespace loctk::testkit {

/// Current trace codec version. Decoders reject anything newer.
inline constexpr std::uint32_t kTraceVersion = 1;

/// One recorded scan: which device produced it, where that device
/// actually stood, and the raw scan record (timestamp + samples).
struct TraceScan {
  std::uint32_t device = 0;
  geom::Vec2 truth;
  radio::ScanRecord scan;

  friend bool operator==(const TraceScan&, const TraceScan&) = default;
};

/// A frozen fleet scan stream. Scans are ordered device-major (all of
/// device 0's scans in capture order, then device 1's, ...).
struct ScanTrace {
  std::string scenario;
  std::uint32_t device_count = 0;
  std::vector<TraceScan> scans;

  bool empty() const { return scans.empty(); }

  /// Scan indices grouped per device, preserving capture order.
  std::vector<std::vector<std::size_t>> scans_by_device() const;

  /// NOTE: an injected-fault trace can carry NaN RSSI values, and NaN
  /// compares unequal to itself — compare `encode_trace` bytes when a
  /// trace may contain faults.
  friend bool operator==(const ScanTrace&, const ScanTrace&) = default;
};

/// Serializes to the versioned binary form. Deterministic: the same
/// trace always produces the same bytes.
std::string encode_trace(const ScanTrace& trace);

/// Parses bytes produced by encode_trace. Corruption, truncation, an
/// unknown version, or trailing garbage come back as kCorrupt.
Result<ScanTrace> try_decode_trace(std::string_view bytes);

/// File convenience; the conventional extension is `.ltrc`.
void write_trace(const std::filesystem::path& path, const ScanTrace& trace);
Result<ScanTrace> try_read_trace(const std::filesystem::path& path);

}  // namespace loctk::testkit

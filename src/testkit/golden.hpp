#pragma once

/// \file golden.hpp
/// Golden paper-band gates: the §5 numbers as assertable artifacts.
///
/// The paper's headline results — §5.1 "60% observations end up with a
/// valid estimation" and §5.2's ~15 ft average deviation — were
/// reproduced by the bench harnesses (bench/sec51, bench/sec52) as
/// *printed* bands. This header promotes them to data the conformance
/// suite asserts on: `run_paper_golden` reruns the paper experiment
/// over the same independent seeds the benches use and returns the
/// band means; the `kSec51ValidRateBand` / `kSec52MeanErrorBandFt`
/// constants encode the accepted envelopes (calibrated from 20-rerun
/// seed measurements: 53% ± 11% valid rate, 11.9 ± 1.0 ft deviation).
/// Any kernel or ingest change that drifts accuracy out of a band now
/// fails CI instead of silently shifting a printout.
///
/// `PaperExperiment` (the standard §5 setup: 50x40 house, 10-ft grid,
/// 13 scattered test points, 90-scan dwells) lives here so the benches
/// and the conformance tests share one definition; `bench_util.hpp`
/// re-exports it.

#include <cstdint>
#include <vector>

#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "core/probabilistic.hpp"
#include "radio/environment.hpp"
#include "traindb/database.hpp"

namespace loctk::testkit {

// The paper's §5.1 experimental constants.
inline constexpr int kTrainScans = 90;  // ~1.5 min at 1 scan/s
inline constexpr int kObserveScans = 90;
inline constexpr double kGridSpacingFt = 10.0;
inline constexpr int kTestPoints = 13;

/// The paper's standard experimental setup, fully determined by
/// `seed_base`: train on seed_base*1000+1, observe on seed_base*1000+2.
struct PaperExperiment {
  explicit PaperExperiment(std::uint64_t seed_base = 1,
                           radio::ChannelConfig channel = {})
      : testbed(radio::make_paper_house(), radio::PropagationConfig{},
                channel),
        training_map(core::make_training_grid(
            testbed.environment().footprint(), kGridSpacingFt)),
        db(testbed.train(training_map, kTrainScans, seed_base * 1000 + 1)),
        truths(core::make_scattered_test_points(
            testbed.environment().footprint(), kTestPoints)),
        observations(
            testbed.observe(truths, kObserveScans, seed_base * 1000 + 2)) {}

  core::Testbed testbed;
  wiscan::LocationMap training_map;
  traindb::TrainingDatabase db;
  std::vector<geom::Vec2> truths;
  std::vector<core::Observation> observations;
};

/// An accepted envelope for a golden scalar.
struct GoldenBand {
  double lo = 0.0;
  double hi = 0.0;
  constexpr bool contains(double v) const { return v >= lo && v <= hi; }
};

/// §5.1: mean valid-estimation rate over the rerun seeds must sit in
/// the paper-shaped 50-75% band around the reported 60%.
inline constexpr GoldenBand kSec51ValidRateBand{0.50, 0.75};

/// §5.2: mean deviation (ft) of the geometric locator over the rerun
/// seeds; the paper band is ~15 ft, our seeded channel lands at
/// 11.9 ± 1.0 ft.
inline constexpr GoldenBand kSec52MeanErrorBandFt{9.0, 16.0};

/// The band means `run_paper_golden` measured.
struct PaperGoldenSummary {
  int reruns = 0;
  /// §5.1 probabilistic locator: mean valid-estimation rate (0..1)
  /// and mean error (ft) over the sec51 rerun seeds (seed*7+100).
  double sec51_valid_rate = 0.0;
  double sec51_mean_error_ft = 0.0;
  /// §5.2 geometric locator: mean deviation (ft) over the sec52 rerun
  /// seeds (seed*11+500), plus the probabilistic locator on the same
  /// experiments for the paper's fingerprinting-wins crossover.
  double sec52_mean_error_ft = 0.0;
  double sec52_probabilistic_mean_error_ft = 0.0;
};

/// Reruns the §5.1 and §5.2 experiments over `reruns` independent
/// survey/test days (the same seed formulas as bench/sec51 and
/// bench/sec52, so the gates measure exactly what the benches print).
/// `prob_config` parameterizes every probabilistic locator in the
/// run — pass a pruning-enabled config to gate the coarse-to-fine
/// path against the same golden bands as the exhaustive sweep.
PaperGoldenSummary run_paper_golden(int reruns = 20,
                                    core::ProbabilisticConfig prob_config = {});

}  // namespace loctk::testkit

#include "testkit/golden.hpp"

#include "core/geometric.hpp"
#include "core/probabilistic.hpp"

namespace loctk::testkit {

PaperGoldenSummary run_paper_golden(int reruns,
                                    core::ProbabilisticConfig prob_config) {
  PaperGoldenSummary summary;
  summary.reruns = reruns;
  if (reruns <= 0) return summary;

  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(reruns);
       ++seed) {
    // Same seed formula as bench/sec51_probabilistic.cpp.
    const PaperExperiment exp(seed * 7 + 100);
    const core::ProbabilisticLocator locator(exp.db, prob_config);
    const core::EvaluationResult r =
        core::evaluate(locator, exp.db, exp.truths, exp.observations);
    summary.sec51_valid_rate += r.valid_estimation_rate();
    summary.sec51_mean_error_ft += r.mean_error_ft();
  }

  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(reruns);
       ++seed) {
    // Same seed formula as bench/sec52_geometric.cpp.
    const PaperExperiment exp(seed * 11 + 500);
    const core::GeometricLocator geo(exp.db, exp.testbed.environment());
    summary.sec52_mean_error_ft +=
        core::evaluate(geo, exp.db, exp.truths, exp.observations)
            .mean_error_ft();
    const core::ProbabilisticLocator prob(exp.db, prob_config);
    summary.sec52_probabilistic_mean_error_ft +=
        core::evaluate(prob, exp.db, exp.truths, exp.observations)
            .mean_error_ft();
  }

  const double n = static_cast<double>(reruns);
  summary.sec51_valid_rate /= n;
  summary.sec51_mean_error_ft /= n;
  summary.sec52_mean_error_ft /= n;
  summary.sec52_probabilistic_mean_error_ft /= n;
  return summary;
}

}  // namespace loctk::testkit

#pragma once

/// \file soak.hpp
/// The fleet soak driver: N devices replayed concurrently through
/// per-device `LocationService` sessions.
///
/// This is the load-shaped correctness harness the ROADMAP north star
/// asks for: every device in a recorded trace gets its own service
/// (sharing one locator, whose locate path must be const-thread-safe),
/// the fleet replays in parallel on a thread pool, and the run is
/// judged twice —
///
///  * the **deterministic report** (`RunReport`): tallies and the
///    accuracy CDF, assembled from per-device slots merged in device
///    order, so it is identical for 1 thread or 64;
///  * the **invariants** (`SoakResult::violations`): cross-checks
///    between the report, the per-service counters, and the PR-4
///    global metrics deltas (fix partition sums to scan count, every
///    non-finite sample was rejected, zero uncaught pool errors,
///    bounded p99 on_scan latency). An empty list is the pass signal;
///    CI fails on anything else.

#include <cstddef>
#include <string>
#include <vector>

#include "concurrency/thread_pool.hpp"
#include "core/location_service.hpp"
#include "core/locator.hpp"
#include "testkit/run_report.hpp"
#include "testkit/trace.hpp"

namespace loctk::testkit {

struct SoakConfig {
  /// Per-device service configuration.
  core::LocationServiceConfig service;
  /// Pool to replay on; nullptr uses the process default pool.
  concurrency::ThreadPool* pool = nullptr;
  /// Invariant bound on per-scan on_scan() p99 latency; <= 0 disables
  /// (use when running under sanitizers on loaded CI machines).
  double max_p99_on_scan_s = 0.25;
};

/// Everything a soak run produced. Only `report` is deterministic;
/// the latency figures depend on the machine and are reported beside
/// it, never inside it.
struct SoakResult {
  RunReport report;
  /// Human-readable invariant breaches; empty means the run passed.
  std::vector<std::string> violations;
  double wall_s = 0.0;
  double mean_on_scan_s = 0.0;
  double p99_on_scan_s = 0.0;

  bool ok() const { return violations.empty(); }
};

/// Replays `trace` through per-device services over `locator`,
/// checking the soak invariants. `locator` is shared by all devices
/// concurrently — its locate path must be const-thread-safe (every
/// toolkit locator is).
SoakResult run_fleet_soak(const ScanTrace& trace,
                          const core::Locator& locator,
                          const SoakConfig& config = {});

}  // namespace loctk::testkit

#pragma once

/// \file differential.hpp
/// Compiled-vs-reference differential oracle.
///
/// PR-1 gave every fingerprint locator two implementations of the same
/// math: the dense compiled kernel `locate()` actually runs, and the
/// readable string-keyed form (`log_likelihood`, `signal_distance`,
/// `ssd_distance`) kept as executable documentation. The oracle feeds
/// both sides the *same* observation batch (typically windows cut from
/// a recorded trace) and diffs the estimates, so any kernel, interning,
/// or ingest change that silently shifts answers fails conformance
/// instead of shipping.
///
/// For the arg-max locators the check is score-based: the compiled
/// choice must be within `score_tol` of the reference-optimal score
/// *as scored by the reference* — a genuine near-tie between training
/// points is not a defect, picking a reference-refutable point is.
/// For the k-NN family the two sides share summation order bit-for-bit
/// (the masked kernels add exact zeros), so positions and scores are
/// compared directly under tight tolerances.

#include <cstdint>
#include <string>
#include <vector>

#include "core/observation.hpp"
#include "traindb/database.hpp"

namespace loctk::testkit {

/// One compiled-vs-reference disagreement.
struct EstimateDiff {
  std::string locator;
  std::size_t observation = 0;
  std::string detail;
};

struct DifferentialConfig {
  /// Max position disagreement (ft) for coordinate-valued estimates.
  double position_tol_ft = 1e-6;
  /// Max score disagreement (log-likelihood / negated distance units).
  double score_tol = 1e-6;
};

struct DifferentialReport {
  std::uint64_t observations = 0;
  /// locator x observation pairs checked.
  std::uint64_t comparisons = 0;
  std::vector<EstimateDiff> mismatches;

  bool ok() const { return mismatches.empty(); }
  std::string to_text() const;
};

/// Runs every dual-implementation locator (probabilistic, NNSS, k-NN,
/// SSD, histogram — the last only when `db` retains raw samples) over
/// `observations`, compiled path vs reference path.
DifferentialReport run_differential_oracle(
    const traindb::TrainingDatabase& db,
    const std::vector<core::Observation>& observations,
    const DifferentialConfig& config = {});

}  // namespace loctk::testkit

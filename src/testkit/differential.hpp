#pragma once

/// \file differential.hpp
/// Compiled-vs-reference differential oracle.
///
/// PR-1 gave every fingerprint locator two implementations of the same
/// math: the dense compiled kernel `locate()` actually runs, and the
/// readable string-keyed form (`log_likelihood`, `signal_distance`,
/// `ssd_distance`) kept as executable documentation. The oracle feeds
/// both sides the *same* observation batch (typically windows cut from
/// a recorded trace) and diffs the estimates, so any kernel, interning,
/// or ingest change that silently shifts answers fails conformance
/// instead of shipping.
///
/// For the arg-max locators the check is score-based: the compiled
/// choice must be within `score_tol` of the reference-optimal score
/// *as scored by the reference* — a genuine near-tie between training
/// points is not a defect, picking a reference-refutable point is.
/// For the k-NN family positions and scores are compared directly
/// under tight tolerances; the v2 SIMD kernels accumulate in four
/// lanes, so their sums sit within rounding noise (not bit-for-bit)
/// of the serial reference order. The bit-for-bit contract lives one
/// level down: native-backend kernels vs the scalar fallback lanes
/// (tests/core_scoring_v2_test.cpp).
///
/// `run_pruned_differential` covers the coarse-to-fine pruner the
/// same way: a pruned locator vs its exact twin over the same
/// observations, reporting top-1 agreement (candidates are scored
/// with the exact kernel, so any disagreement means the true winner
/// was pruned out).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/knn.hpp"
#include "core/observation.hpp"
#include "core/probabilistic.hpp"
#include "traindb/database.hpp"

namespace loctk::core {
class CompiledDatabase;
}

namespace loctk::testkit {

/// One compiled-vs-reference disagreement.
struct EstimateDiff {
  std::string locator;
  std::size_t observation = 0;
  std::string detail;
};

struct DifferentialConfig {
  /// Max position disagreement (ft) for coordinate-valued estimates.
  double position_tol_ft = 1e-6;
  /// Max score disagreement (log-likelihood / negated distance units).
  double score_tol = 1e-6;
};

struct DifferentialReport {
  std::uint64_t observations = 0;
  /// locator x observation pairs checked.
  std::uint64_t comparisons = 0;
  std::vector<EstimateDiff> mismatches;

  bool ok() const { return mismatches.empty(); }
  std::string to_text() const;
};

/// Runs every dual-implementation locator (probabilistic, place
/// recognition, NNSS, k-NN, SSD, histogram — the last only when `db`
/// retains raw samples) over `observations`, compiled path vs
/// reference path.
DifferentialReport run_differential_oracle(
    const traindb::TrainingDatabase& db,
    const std::vector<core::Observation>& observations,
    const DifferentialConfig& config = {});

/// Pruned-vs-exact differential report. `compared` counts
/// locator x observation comparisons; `top1_agreements` counts those
/// that matched exactly (same validity, winner, and score — the
/// pruned path scores candidates with the exact kernel, so agreement
/// is equality, not tolerance). Every disagreement is listed — on a
/// healthy corpus with sane pruner settings the list is empty, and
/// conformance asserts exactly that.
struct PrunedDifferentialReport {
  std::uint64_t observations = 0;
  std::uint64_t compared = 0;
  std::uint64_t top1_agreements = 0;
  std::vector<EstimateDiff> disagreements;

  bool ok() const { return disagreements.empty(); }
  double agreement_rate() const {
    return compared == 0
               ? 1.0
               : static_cast<double>(top1_agreements) /
                     static_cast<double>(compared);
  }
  std::string to_text() const;
};

/// Runs the probabilistic and k-NN locators twice over `observations`
/// — once with `prune_config`'s pruning enabled, once with the exact
/// full sweep — and diffs the top-1 estimates. `prune_config` must
/// have prune_top_k > 0; the exact twin is the same config with
/// pruning zeroed.
PrunedDifferentialReport run_pruned_differential(
    const traindb::TrainingDatabase& db,
    std::span<const core::Observation> observations,
    const core::ProbabilisticConfig& prune_config);

/// Exact structural diff of two compilations — the delta-compile
/// oracle gate. Zero tolerance: delta compilation copies or re-interns
/// the very same doubles a from-scratch build writes, so the source
/// database, universe, strides, every matrix cell (pad included), and
/// the per-row trained counts must be identical. Any difference is a
/// defect, never rounding.
struct CompiledDiffReport {
  std::uint64_t cells_compared = 0;
  /// Human-readable mismatch descriptions, capped at 32 entries
  /// (`truncated` reports the overflow).
  std::vector<std::string> mismatches;
  std::uint64_t truncated = 0;

  bool ok() const { return mismatches.empty() && truncated == 0; }
  std::string to_text() const;
};

CompiledDiffReport compare_compiled_databases(
    const core::CompiledDatabase& delta,
    const core::CompiledDatabase& rebuild);

}  // namespace loctk::testkit

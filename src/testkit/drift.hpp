#pragma once

/// \file drift.hpp
/// The drift-recovery scenario: prove the radio map is a *living*
/// artifact, end to end.
///
/// golden.hpp gates the paper's §5.1/§5.2 accuracy on a freshly
/// surveyed site; this harness gates what the paper never measured —
/// what happens when the site changes out from under the survey, and
/// whether the lifecycle layer (lifecycle/janitor.hpp) brings accuracy
/// back. Each rerun plays one full decay-and-recovery arc:
///
///  1. **Baseline** — survey the paper house (plus a fifth AP so one
///     can vanish and still leave the paper's four-AP geometry),
///     publish it through a live `serve::LocationServer`, and measure
///     §5.1-style accuracy.
///  2. **Drift** — rebuild the world with one AP moved, one AP's
///     transmit power cut, and one AP removed. The *served* map is now
///     stale; accuracy against the drifted world is measured (and must
///     degrade) while a monitoring walk feeds the janitor's
///     `DriftMonitor`, which must flag both shifted and vanished
///     pairs.
///  3. **Recovery** — resurvey every training point from the drifted
///     world through quarantined intake (hostile dwells ride along and
///     must be quarantined), `tick()` the janitor so the delta-compiled
///     snapshot swaps in under the same server, and measure again. The
///     recovered map must land back inside the §5.1/§5.2 golden bands,
///     and the delta-compilation must be bit-exact against a
///     from-scratch rebuild (`compare_compiled_databases`).
///
/// Violations are collected, not thrown, in the style of
/// soak.hpp/server_soak.hpp; `DriftSoakResult::ok()` is the gate the
/// conformance suite and the nightly `soak_fleet --drift` leg assert.

#include <cstdint>
#include <string>
#include <vector>

#include "core/probabilistic.hpp"
#include "lifecycle/janitor.hpp"

namespace loctk::testkit {

struct DriftScenarioConfig {
  /// Independent decay-and-recovery arcs (fresh seeds each); the band
  /// gates judge means across reruns, like `run_paper_golden`.
  int reruns = 4;
  std::uint64_t seed_base = 1;
  /// Survey dwell length, training and resurvey alike (§5.1: ~1.5 min
  /// of scans per point).
  int train_scans = 90;
  /// Scans per working-phase observation at each test point.
  int observe_scans = 90;
  /// The monitoring walk: rounds over the training grid feeding the
  /// drift monitor, and scans per dwell. Rounds must comfortably
  /// exceed the drift warm-up (`DriftConfig::min_updates`) and the
  /// visibility decay needed to cross `vanish_visibility`.
  int monitor_rounds = 16;
  int monitor_scans = 4;
  /// Served locator settings (exhaustive by default; pass a pruning
  /// config to soak the coarse-to-fine path through the lifecycle).
  core::ProbabilisticConfig prob_config;
  lifecycle::JanitorConfig janitor;
};

struct DriftSoakResult {
  int reruns = 0;

  // Means across reruns; valid rates are §5.1 cell-correct fractions,
  // errors are §5.2-style mean deviations in feet.
  double baseline_valid_rate = 0.0;
  double baseline_mean_error_ft = 0.0;
  double stale_valid_rate = 0.0;        ///< stale map on drifted world
  double stale_mean_error_ft = 0.0;
  double recovered_valid_rate = 0.0;    ///< republished map, same world
  double recovered_mean_error_ft = 0.0;
  double recovered_geometric_mean_error_ft = 0.0;  ///< §5.2 gate

  // Lifecycle evidence, summed across reruns.
  std::uint64_t shifted_pairs = 0;      ///< pre-republish kShifted flags
  std::uint64_t vanished_pairs = 0;     ///< pre-republish kVanished flags
  std::uint64_t quarantined = 0;        ///< hostile dwells rejected
  std::uint64_t accepted_surveys = 0;
  std::uint64_t republishes = 0;
  std::uint64_t differential_cells = 0; ///< delta-vs-rebuild cells compared

  /// Human-readable gate breaches; empty means the scenario passed.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string to_text() const;
};

/// Runs the decay-and-recovery arcs and judges them.
DriftSoakResult run_drift_soak(const DriftScenarioConfig& config = {});

}  // namespace loctk::testkit

#include "testkit/drift.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <optional>
#include <utility>

#include "core/compiled_db.hpp"
#include "core/evaluation.hpp"
#include "core/geometric.hpp"
#include "core/pipeline.hpp"
#include "radio/environment.hpp"
#include "serve/location_server.hpp"
#include "testkit/differential.hpp"
#include "testkit/golden.hpp"
#include "traindb/database.hpp"
#include "wiscan/location_map.hpp"

namespace loctk::testkit {

namespace {

// The baseline site: the paper house plus a fifth AP ("E", bottom
// wall midpoint). The drift schedule swaps E for a new unit, so both
// the baseline and the recovered site carry five deployed APs and the
// §5.1/§5.2 golden-band judgment stays apples-to-apples.
constexpr int kBaselineApCount = 5;

/// The drift schedule applied between baseline and recovery, one
/// event per kind the monitor knows how to flag plus the universe
/// growth a real redeployment brings:
///
///  * B ({48,2}) slides ~18 ft up the east wall     -> kShifted;
///  * C is replaced by a unit 8 dB hotter           -> kShifted;
///  * E dies outright                               -> kVanished,
///    and its BSSID must leave the recovered universe;
///  * E's replacement F goes up on the same mount with a brand-new
///    BSSID — unknown to the old map, so the republish must *grow*
///    the universe too.
///
/// The magnitudes are far past the detection thresholds (B's slide is
/// what makes the stale fingerprints rank wrong; a uniform power
/// change alone barely moves fingerprint rankings), while the site
/// keeps five perimeter APs so the recovered map is band-comparable
/// to the baseline.
radio::Environment make_drifted(const radio::Environment& base) {
  radio::Environment drifted(base.footprint());
  for (const radio::Wall& w : base.walls()) drifted.add_wall(w);
  for (radio::AccessPoint ap : base.access_points()) {
    if (ap.name == "E") continue;                    // vanished
    if (ap.name == "B") ap.position = {48.0, 20.0};  // slid ~18 ft
    if (ap.name == "C") ap.tx_power_dbm += 8.0;      // hotter replacement
    drifted.add_access_point(std::move(ap));
  }
  radio::AccessPoint replacement;
  replacement.bssid = radio::synthetic_bssid(5);
  replacement.name = "F";
  replacement.position = {25.0, 2.0};  // E's old mount point
  drifted.add_access_point(std::move(replacement));
  return drifted;
}

std::string rerun_tag(int rerun, const char* what) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "rerun %d: %s", rerun, what);
  return buf;
}

/// Per-rerun outcome folded into the aggregate result.
struct ArcOutcome {
  double baseline_valid_rate = 0.0;
  double baseline_mean_error_ft = 0.0;
  double stale_valid_rate = 0.0;
  double stale_mean_error_ft = 0.0;
  double recovered_valid_rate = 0.0;
  double recovered_mean_error_ft = 0.0;
  double recovered_geometric_mean_error_ft = 0.0;
  std::uint64_t shifted_pairs = 0;
  std::uint64_t vanished_pairs = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t accepted_surveys = 0;
  std::uint64_t republishes = 0;
  std::uint64_t differential_cells = 0;
};

ArcOutcome run_arc(const DriftScenarioConfig& config, int rerun,
                   std::vector<std::string>& violations) {
  ArcOutcome out;
  const std::uint64_t seed =
      (config.seed_base + static_cast<std::uint64_t>(rerun)) * 1000;
  auto violation = [&](const std::string& what) {
    violations.push_back(rerun_tag(rerun, what.c_str()));
  };

  // -------- phase 1: baseline survey, publish, measure ------------
  const core::Testbed baseline(
      radio::make_paper_house_with_aps(kBaselineApCount));
  const wiscan::LocationMap map = core::make_training_grid(
      baseline.environment().footprint(), kGridSpacingFt);
  const traindb::TrainingDatabase db =
      baseline.train(map, config.train_scans, seed + 1);
  const std::vector<geom::Vec2> truths = core::make_scattered_test_points(
      baseline.environment().footprint(), kTestPoints);
  const std::vector<core::Observation> baseline_obs =
      baseline.observe(truths, config.observe_scans, seed + 2);

  std::shared_ptr<const core::CompiledDatabase> compiled =
      core::CompiledDatabase::compile_owned(db);
  const lifecycle::LocatorFactory factory =
      [prob = config.prob_config](
          std::shared_ptr<const core::CompiledDatabase> snapshot) {
        return std::make_shared<core::ProbabilisticLocator>(
            std::move(snapshot), prob);
      };

  serve::LocationServerConfig server_config;
  server_config.max_sites = 1;
  serve::LocationServer server(server_config);
  const serve::SiteId site = server.add_site("drift-soak", factory(compiled));
  lifecycle::LifecycleJanitor janitor(server, site, compiled, factory,
                                      config.janitor);

  {
    const core::ProbabilisticLocator locator(compiled, config.prob_config);
    const core::EvaluationResult eval =
        core::evaluate(locator, db, truths, baseline_obs);
    out.baseline_valid_rate = eval.valid_estimation_rate();
    out.baseline_mean_error_ft = eval.mean_error_ft();
  }

  // -------- phase 2: the world drifts; the served map goes stale ---
  const core::Testbed drifted(make_drifted(baseline.environment()));
  const std::vector<core::Observation> drifted_obs =
      drifted.observe(truths, config.observe_scans, seed + 3);

  {
    const core::ProbabilisticLocator locator(compiled, config.prob_config);
    const core::EvaluationResult eval =
        core::evaluate(locator, db, truths, drifted_obs);
    out.stale_valid_rate = eval.valid_estimation_rate();
    out.stale_mean_error_ft = eval.mean_error_ft();
  }

  // The monitoring walk: live dwells at every training point through
  // the served snapshot. A fix that wins the surveyor's true point
  // attributes through the production path (observe_fix); otherwise
  // the surveyor's known position attributes directly — either way
  // every pair earns `monitor_rounds` of drift evidence.
  radio::Scanner walker = drifted.make_scanner(seed + 4);
  for (int round = 0; round < config.monitor_rounds; ++round) {
    for (const wiscan::NamedLocation& loc : map.locations()) {
      walker.reset_session();
      const core::Observation obs = core::Observation::from_scans(
          walker.collect(loc.position, config.monitor_scans));
      const Result<core::LocationEstimate> est = server.try_locate(site, obs);
      if (est.ok() && est.value().valid &&
          est.value().location_name == loc.name) {
        core::ServiceFix fix;
        fix.valid = true;
        fix.position = est.value().position;
        fix.place = est.value().location_name;
        janitor.observe_fix(fix, obs);
      } else {
        janitor.drift().observe(loc.name, obs);
      }
    }
  }

  const lifecycle::DriftReport drift_report = janitor.drift().report();
  for (const lifecycle::DriftedPair& pair : drift_report.drifted) {
    if (pair.kind == lifecycle::DriftKind::kVanished) {
      ++out.vanished_pairs;
    } else {
      ++out.shifted_pairs;
    }
  }
  if (out.shifted_pairs == 0) {
    violation("drift monitor flagged no shifted pairs (AP moved and "
              "power cut should both shift residuals)");
  }
  if (out.vanished_pairs == 0) {
    violation("drift monitor flagged no vanished pairs (AP E was removed)");
  }

  // -------- phase 3: resurvey, quarantine, republish, re-measure ---
  radio::Scanner surveyor = drifted.make_scanner(seed + 5);
  for (const wiscan::NamedLocation& loc : map.locations()) {
    surveyor.reset_session();
    lifecycle::SurveyDwell dwell;
    dwell.location = loc.name;
    dwell.position = loc.position;
    dwell.scans = surveyor.collect(loc.position, config.train_scans);
    if (!janitor.submit_survey(dwell).ok()) {
      violation("clean resurvey dwell at '" + loc.name + "' was quarantined");
    } else {
      ++out.accepted_surveys;
    }
  }

  // Hostile dwells ride along with the resurvey and must be
  // quarantined, not merged: a corrupt NIC (NaN RSSI) and a
  // drive-by two-scan "survey".
  {
    const wiscan::NamedLocation& loc = map.locations().front();
    lifecycle::SurveyDwell corrupt;
    corrupt.location = loc.name;
    corrupt.position = loc.position;
    corrupt.scans = surveyor.collect(loc.position, config.train_scans);
    corrupt.scans.front().samples.push_back(
        {"de:ad:be:ef:00:01", std::numeric_limits<double>::quiet_NaN(), 6});
    if (janitor.submit_survey(corrupt).ok()) {
      violation("NaN-RSSI dwell was accepted instead of quarantined");
    }
    lifecycle::SurveyDwell skimpy;
    skimpy.location = loc.name;
    skimpy.position = loc.position;
    skimpy.scans = surveyor.collect(loc.position, 2);
    if (janitor.submit_survey(skimpy).ok()) {
      violation("two-scan dwell was accepted instead of quarantined");
    }
  }
  out.quarantined = janitor.intake().quarantined().size();
  if (out.quarantined != 2) {
    violation("expected exactly the 2 hostile dwells in quarantine");
  }

  const std::optional<lifecycle::RepublishReport> pub = janitor.tick();
  if (!pub.has_value()) {
    violation("janitor.tick() did not republish with a full resurvey pending");
    return out;
  }
  ++out.republishes;
  if (pub->points_upserted != map.size()) {
    violation("republish upserted fewer points than the resurvey delivered");
  }
  // The republished universe swapped E out for F: shrink and growth
  // exercised by the same delta.
  {
    const std::vector<std::string>& universe =
        janitor.compiled()->database().bssid_universe();
    const auto has = [&](const std::string& bssid) {
      return std::find(universe.begin(), universe.end(), bssid) !=
             universe.end();
    };
    if (pub->universe_after != pub->universe_before) {
      violation("republish changed universe size (expected E out, F in)");
    }
    if (has(radio::synthetic_bssid(4))) {
      violation("vanished AP E's BSSID did not leave the universe");
    }
    if (!has(radio::synthetic_bssid(5))) {
      violation("replacement AP F's BSSID was not interned on republish");
    }
  }
  if (server.generation(site) != pub->generation || pub->generation < 2) {
    violation("republish generation did not advance the served snapshot");
  }

  // The delta-compiled snapshot must be bit-exact against a
  // from-scratch rebuild of the same merged database.
  {
    traindb::TrainingDatabase merged = janitor.compiled()->database();
    const std::shared_ptr<const core::CompiledDatabase> rebuild =
        core::CompiledDatabase::compile_owned(std::move(merged));
    const CompiledDiffReport diff =
        compare_compiled_databases(*janitor.compiled(), *rebuild);
    out.differential_cells = diff.cells_compared;
    if (!diff.ok()) {
      violation("delta-compiled snapshot diverges from rebuild:\n" +
                diff.to_text());
    }
  }

  // Recovery: the republished map, judged on the same drifted world.
  const traindb::TrainingDatabase& recovered_db =
      janitor.compiled()->database();
  {
    const core::ProbabilisticLocator locator(janitor.compiled(),
                                             config.prob_config);
    const core::EvaluationResult eval =
        core::evaluate(locator, recovered_db, truths, drifted_obs);
    out.recovered_valid_rate = eval.valid_estimation_rate();
    out.recovered_mean_error_ft = eval.mean_error_ft();
  }
  try {
    const core::GeometricLocator geometric(recovered_db,
                                           drifted.environment());
    const core::EvaluationResult eval =
        core::evaluate(geometric, recovered_db, truths, drifted_obs);
    out.recovered_geometric_mean_error_ft = eval.mean_error_ft();
  } catch (const std::exception& e) {
    violation(std::string("geometric locator unfittable on recovered map: ") +
              e.what());
  }
  return out;
}

}  // namespace

std::string DriftSoakResult::to_text() const {
  char buf[768];
  std::snprintf(
      buf, sizeof buf,
      "drift soak: %d reruns\n"
      "  baseline   valid %.1f%%  mean error %.1f ft\n"
      "  stale      valid %.1f%%  mean error %.1f ft\n"
      "  recovered  valid %.1f%%  mean error %.1f ft  (geometric %.1f ft)\n"
      "  evidence: %llu shifted + %llu vanished pairs, %llu quarantined,\n"
      "            %llu surveys accepted, %llu republishes, %llu diff cells\n"
      "  violations: %zu\n",
      reruns, 100.0 * baseline_valid_rate, baseline_mean_error_ft,
      100.0 * stale_valid_rate, stale_mean_error_ft,
      100.0 * recovered_valid_rate, recovered_mean_error_ft,
      recovered_geometric_mean_error_ft,
      static_cast<unsigned long long>(shifted_pairs),
      static_cast<unsigned long long>(vanished_pairs),
      static_cast<unsigned long long>(quarantined),
      static_cast<unsigned long long>(accepted_surveys),
      static_cast<unsigned long long>(republishes),
      static_cast<unsigned long long>(differential_cells),
      violations.size());
  return buf;
}

DriftSoakResult run_drift_soak(const DriftScenarioConfig& config) {
  DriftSoakResult result;
  result.reruns = config.reruns;
  for (int rerun = 0; rerun < config.reruns; ++rerun) {
    const ArcOutcome out = run_arc(config, rerun, result.violations);
    result.baseline_valid_rate += out.baseline_valid_rate;
    result.baseline_mean_error_ft += out.baseline_mean_error_ft;
    result.stale_valid_rate += out.stale_valid_rate;
    result.stale_mean_error_ft += out.stale_mean_error_ft;
    result.recovered_valid_rate += out.recovered_valid_rate;
    result.recovered_mean_error_ft += out.recovered_mean_error_ft;
    result.recovered_geometric_mean_error_ft +=
        out.recovered_geometric_mean_error_ft;
    result.shifted_pairs += out.shifted_pairs;
    result.vanished_pairs += out.vanished_pairs;
    result.quarantined += out.quarantined;
    result.accepted_surveys += out.accepted_surveys;
    result.republishes += out.republishes;
    result.differential_cells += out.differential_cells;
  }
  if (config.reruns > 0) {
    const double n = config.reruns;
    result.baseline_valid_rate /= n;
    result.baseline_mean_error_ft /= n;
    result.stale_valid_rate /= n;
    result.stale_mean_error_ft /= n;
    result.recovered_valid_rate /= n;
    result.recovered_mean_error_ft /= n;
    result.recovered_geometric_mean_error_ft /= n;
  }

  // The recovery gates: republished accuracy back inside the golden
  // §5.1/§5.2 bands, and better than the stale map it replaced.
  char buf[192];
  if (!kSec51ValidRateBand.contains(result.recovered_valid_rate)) {
    std::snprintf(buf, sizeof buf,
                  "recovered valid rate %.3f outside §5.1 band [%.2f, %.2f]",
                  result.recovered_valid_rate, kSec51ValidRateBand.lo,
                  kSec51ValidRateBand.hi);
    result.violations.push_back(buf);
  }
  // §5.2 is one-sided here: the band floor guards against
  // suspiciously-good numbers on the paper's exact layout, but the
  // drifted site moved an AP to a *better* lateration spot, so only
  // the ceiling carries meaning for recovery.
  if (result.recovered_geometric_mean_error_ft <= 0.0 ||
      result.recovered_geometric_mean_error_ft > kSec52MeanErrorBandFt.hi) {
    std::snprintf(
        buf, sizeof buf,
        "recovered geometric error %.1f ft above §5.2 ceiling %.1f ft",
        result.recovered_geometric_mean_error_ft, kSec52MeanErrorBandFt.hi);
    result.violations.push_back(buf);
  }
  // Decay and recovery, judged on both metrics: mean error carries
  // the robust margin; valid rate must at least not move the wrong
  // way (ties happen at this sample size).
  if (result.stale_mean_error_ft <= result.baseline_mean_error_ft ||
      result.stale_valid_rate > result.baseline_valid_rate) {
    std::snprintf(buf, sizeof buf,
                  "drift schedule did not degrade the stale map (baseline "
                  "%.3f / %.1f ft, stale %.3f / %.1f ft)",
                  result.baseline_valid_rate, result.baseline_mean_error_ft,
                  result.stale_valid_rate, result.stale_mean_error_ft);
    result.violations.push_back(buf);
  }
  if (result.recovered_mean_error_ft >= result.stale_mean_error_ft ||
      result.recovered_valid_rate < result.stale_valid_rate) {
    std::snprintf(buf, sizeof buf,
                  "republish did not improve on the stale map (stale %.3f / "
                  "%.1f ft, recovered %.3f / %.1f ft)",
                  result.stale_valid_rate, result.stale_mean_error_ft,
                  result.recovered_valid_rate, result.recovered_mean_error_ft);
    result.violations.push_back(buf);
  }
  return result;
}

}  // namespace loctk::testkit

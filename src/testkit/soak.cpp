#include "testkit/soak.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "base/metrics.hpp"
#include "concurrency/parallel_for.hpp"

namespace loctk::testkit {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Per-device tallies, written only by the worker that owns the slot
/// and merged in device order afterwards — the report never sees
/// scheduling order.
struct DeviceSlot {
  std::uint64_t valid = 0;
  std::uint64_t degraded = 0;
  std::uint64_t invalid = 0;
  std::uint64_t rejected_samples = 0;
  std::uint64_t scans_seen = 0;
  std::vector<double> errors_ft;     // fresh valid fixes, scan order
  std::vector<double> on_scan_s;     // per-scan latency
};

std::string format_violation(const char* what, std::uint64_t expected,
                             std::uint64_t actual) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s: expected %llu, got %llu", what,
                static_cast<unsigned long long>(expected),
                static_cast<unsigned long long>(actual));
  return buf;
}

}  // namespace

SoakResult run_fleet_soak(const ScanTrace& trace,
                          const core::Locator& locator,
                          const SoakConfig& config) {
  concurrency::ThreadPool& pool =
      config.pool ? *config.pool : concurrency::default_pool();

  metrics::Counter& scans_metric = metrics::counter("service.scans");
  metrics::Counter& rejected_metric =
      metrics::counter("service.rejected_samples");
  metrics::Counter& degraded_metric =
      metrics::counter("service.degraded_fixes");
  const std::uint64_t scans_metric_before = scans_metric.value();
  const std::uint64_t rejected_metric_before = rejected_metric.value();
  const std::uint64_t degraded_metric_before = degraded_metric.value();
  const std::size_t pool_errors_before = pool.uncaught_task_errors();

  const std::vector<std::vector<std::size_t>> by_device =
      trace.scans_by_device();
  std::vector<DeviceSlot> slots(by_device.size());

  const Clock::time_point start = Clock::now();
  concurrency::parallel_for(pool, 0, by_device.size(), [&](std::size_t d) {
    DeviceSlot& slot = slots[d];
    core::LocationService service(locator, config.service);
    slot.errors_ft.reserve(by_device[d].size());
    slot.on_scan_s.reserve(by_device[d].size());
    for (std::size_t idx : by_device[d]) {
      const TraceScan& ts = trace.scans[idx];
      const Clock::time_point scan_start = Clock::now();
      const core::ServiceFix fix = service.on_scan(ts.scan);
      slot.on_scan_s.push_back(seconds_since(scan_start));
      if (!fix.valid) {
        ++slot.invalid;
      } else if (fix.degraded()) {
        ++slot.degraded;
      } else {
        ++slot.valid;
        slot.errors_ft.push_back(geom::distance(fix.position, ts.truth));
      }
    }
    slot.rejected_samples = service.rejected_samples();
    slot.scans_seen = service.scans_seen();
  });

  SoakResult result;
  result.wall_s = seconds_since(start);
  RunReport& report = result.report;
  report.scenario = trace.scenario;
  report.device_count = trace.device_count;
  report.scans_replayed = trace.scans.size();

  std::uint64_t scans_seen_total = 0;
  std::vector<double> latencies;
  latencies.reserve(trace.scans.size());
  for (const DeviceSlot& slot : slots) {
    report.valid_fixes += slot.valid;
    report.degraded_fixes += slot.degraded;
    report.invalid_fixes += slot.invalid;
    report.rejected_samples += slot.rejected_samples;
    scans_seen_total += slot.scans_seen;
    report.errors_ft.insert(report.errors_ft.end(), slot.errors_ft.begin(),
                            slot.errors_ft.end());
    latencies.insert(latencies.end(), slot.on_scan_s.begin(),
                     slot.on_scan_s.end());
  }
  std::sort(report.errors_ft.begin(), report.errors_ft.end());

  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    double sum = 0.0;
    for (double s : latencies) sum += s;
    result.mean_on_scan_s = sum / static_cast<double>(latencies.size());
    result.p99_on_scan_s =
        latencies[std::min(latencies.size() - 1,
                           static_cast<std::size_t>(std::ceil(
                               0.99 * static_cast<double>(latencies.size()))) -
                               1)];
  }

  // --- Invariants -------------------------------------------------
  auto check = [&result](bool ok, std::string message) {
    if (!ok) result.violations.push_back(std::move(message));
  };

  const std::uint64_t fixes_total =
      report.valid_fixes + report.degraded_fixes + report.invalid_fixes;
  check(fixes_total == report.scans_replayed,
        format_violation("fix partition must sum to scan count",
                         report.scans_replayed, fixes_total));
  check(scans_seen_total == report.scans_replayed,
        format_violation("services saw every replayed scan",
                         report.scans_replayed, scans_seen_total));

  std::uint64_t non_finite_samples = 0;
  for (const TraceScan& ts : trace.scans) {
    for (const radio::ScanSample& s : ts.scan.samples) {
      if (!std::isfinite(s.rssi_dbm)) ++non_finite_samples;
    }
  }
  check(report.rejected_samples == non_finite_samples,
        format_violation("every non-finite sample must be rejected",
                         non_finite_samples, report.rejected_samples));

  check(scans_metric.value() - scans_metric_before == report.scans_replayed,
        format_violation("metric service.scans delta", report.scans_replayed,
                         scans_metric.value() - scans_metric_before));
  check(rejected_metric.value() - rejected_metric_before ==
            report.rejected_samples,
        format_violation("metric service.rejected_samples delta",
                         report.rejected_samples,
                         rejected_metric.value() - rejected_metric_before));
  check(degraded_metric.value() - degraded_metric_before ==
            report.degraded_fixes,
        format_violation("metric service.degraded_fixes delta",
                         report.degraded_fixes,
                         degraded_metric.value() - degraded_metric_before));
  check(pool.uncaught_task_errors() == pool_errors_before,
        format_violation("uncaught pool errors during soak", 0,
                         pool.uncaught_task_errors() - pool_errors_before));

  if (config.max_p99_on_scan_s > 0.0 &&
      result.p99_on_scan_s > config.max_p99_on_scan_s) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "p99 on_scan latency %.4fs exceeds bound %.4fs",
                  result.p99_on_scan_s, config.max_p99_on_scan_s);
    result.violations.push_back(buf);
  }

  return result;
}

}  // namespace loctk::testkit

#pragma once

/// \file server_soak.hpp
/// The server-level load generator: many sites × many devices through
/// one `serve::LocationServer`, with hot swaps landing under load.
///
/// This extends the per-locator fleet soak (soak.hpp) up one layer: a
/// multi-venue workload is synthesized (one `Scenario` per site, each
/// with its own fleet and fault schedule), every device replays its
/// recorded scans through `LocationServer::on_scan` on a shared thread
/// pool, and — the part the fleet soak cannot exercise — every site's
/// snapshot is repeatedly republished while the traffic runs: the
/// worker whose scan crosses a swap-wave boundary performs the wave
/// inline while the rest of the fleet keeps scanning through it.
///
/// Determinism under swaps: each swap installs a locator freshly
/// *recompiled from the same training database* (what a production
/// republish of an unchanged survey does), so the answer stream is
/// independent of exactly when a swap lands relative to any scan. That
/// is what lets the byte-determinism gate (`RunReport` equal across
/// thread counts) coexist with genuinely concurrent swap traffic. The
/// swap *machinery* still takes the full beating: pointer publication,
/// epoch bumps, retirement, and reclamation all race live readers, and
/// TSan watches.
///
/// Invariants checked on top of the fleet soak's: per-shard scan
/// counters sum to the replayed count, every planned swap was
/// performed, all retired snapshots were reclaimed by the end, session
/// tables hold exactly one session per device, and zero reader stalls
/// (no reader pinned across two consecutive swaps).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "concurrency/thread_pool.hpp"
#include "core/location_service.hpp"
#include "testkit/run_report.hpp"

namespace loctk::testkit {

struct ServerSoakConfig {
  std::size_t sites = 4;
  std::size_t devices_per_site = 16;
  int scans_per_device = 40;
  std::uint64_t seed = 1;
  /// The first `campus_sites` sites (clamped to `sites`) are
  /// synthesized as multi-floor campuses (ScenarioSpec::campus_fleet:
  /// 1000+ APs, per-floor attenuation, heterogeneous device offsets)
  /// instead of single-floor fleets; everything after synthesis —
  /// replay, swaps, invariants — is site-agnostic, so the campus sites
  /// stress the server with genuinely large universes and snapshots.
  std::size_t campus_sites = 0;
  /// Survey scans per room for campus sites. A campus survey covers
  /// 240 rooms, so the single-site default of 90 would dominate the
  /// soak's wall clock on synthesis alone.
  int campus_train_scans = 6;
  /// Per-device session behavior inside the server.
  core::LocationServiceConfig service;
  /// Pool to replay on; nullptr uses the process default pool.
  concurrency::ThreadPool* pool = nullptr;
  /// Every site's snapshot is re-published each time the fleet
  /// advances this many scans; 0 derives total_scans / 16 (so a run
  /// always sees ~16 swap waves). Exactly total_scans / swap_every
  /// waves run, each triggered by the worker whose scan crossed the
  /// boundary — an exact invariant independent of scheduling.
  std::size_t swap_every_scans = 0;
  /// Standing fault schedule (NaN RSSI / dropped scans / vanished
  /// strongest AP) applied to every site's fleet.
  bool fault_schedule = true;
  /// Invariant bound on p99 on_scan latency; <= 0 disables.
  double max_p99_on_scan_s = 0.25;
  /// When non-empty and the first site is a campus, render a
  /// per-tick fleet frame of that site (coverage heat + AP labels +
  /// device ground-truth markers) through the tile-parallel
  /// `FleetCompositor` and write `frame-NNNN.bmp` files here.
  std::string frames_dir;
  /// Emit every Nth tick (1 = every tick).
  std::size_t frame_every_ticks = 1;
};

struct ServerSoakResult {
  /// Combined deterministic report (sites merged in site order,
  /// devices in device order). Byte-equal across thread counts.
  RunReport report;
  /// Per-site deterministic reports, index-aligned with site ids.
  std::vector<RunReport> site_reports;
  /// Human-readable invariant breaches; empty means the run passed.
  std::vector<std::string> violations;
  /// Swap waves performed (each wave swaps every site once).
  std::uint64_t swap_waves = 0;
  /// Waves that landed while replay traffic was still in flight.
  std::uint64_t swap_waves_under_load = 0;
  /// Largest snapshot generation reached by any site.
  std::uint64_t max_generation = 0;
  /// Campus fleet frames written to `frames_dir`.
  std::uint64_t frames_written = 0;
  double wall_s = 0.0;
  double mean_on_scan_s = 0.0;
  double p99_on_scan_s = 0.0;

  bool ok() const { return violations.empty(); }
};

/// Synthesizes the multi-site workload, runs it, and judges it.
ServerSoakResult run_server_soak(const ServerSoakConfig& config = {});

}  // namespace loctk::testkit

#include "testkit/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/evaluation.hpp"
#include "core/floor_selector.hpp"
#include "core/path.hpp"
#include "stats/rng.hpp"
#include "traindb/generator.hpp"

namespace loctk::testkit {

namespace {

/// Stable per-device scanner seed. splitmix-style mix so device 0 of
/// seed 1 and device 1 of seed 0 do not collide.
std::uint64_t device_seed(std::uint64_t master, std::uint32_t device) {
  std::uint64_t z = master + 0x9E3779B97F4A7C15ULL * (device + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void apply_fault(FaultEvent::Kind kind, radio::ScanRecord& record) {
  switch (kind) {
    case FaultEvent::Kind::kDropScan:
      break;  // handled by the caller (the record is never emitted)
    case FaultEvent::Kind::kNonFiniteRssi:
      if (!record.samples.empty()) {
        record.samples.front().rssi_dbm =
            std::numeric_limits<double>::quiet_NaN();
      }
      break;
    case FaultEvent::Kind::kDropStrongestAp:
      if (!record.samples.empty()) {
        auto loudest = std::max_element(
            record.samples.begin(), record.samples.end(),
            [](const radio::ScanSample& a, const radio::ScanSample& b) {
              return a.rssi_dbm < b.rssi_dbm;
            });
        record.samples.erase(loudest);
      }
      break;
  }
}

}  // namespace

ScenarioSpec ScenarioSpec::fleet(std::size_t device_count,
                                 int scans_per_device, std::uint64_t seed,
                                 SiteModel site) {
  if (site == SiteModel::kCampus) {
    throw std::invalid_argument(
        "ScenarioSpec::fleet: use campus_fleet for campus sites");
  }
  ScenarioSpec spec;
  spec.name = "fleet-" + std::to_string(device_count) + "x" +
              std::to_string(scans_per_device);
  spec.site = site;
  spec.seed = seed;

  const geom::Rect footprint = site == SiteModel::kPaperHouse
                                   ? radio::make_paper_house().footprint()
                                   : radio::make_office_floor().footprint();
  stats::Rng rng(seed ^ 0xF1EE7000ULL);
  spec.devices.reserve(device_count);
  for (std::size_t d = 0; d < device_count; ++d) {
    DeviceSpec dev;
    dev.waypoints =
        core::random_waypoint_path(footprint, 5, rng).waypoints();
    dev.scans = scans_per_device;
    // Stagger joins across one scan interval per device so the fleet
    // does not phase-lock, while staying deterministic.
    dev.start_time_s = 0.25 * static_cast<double>(d);
    spec.devices.push_back(std::move(dev));
  }
  return spec;
}

ScenarioSpec ScenarioSpec::campus_fleet(std::size_t device_count,
                                        int scans_per_device,
                                        std::uint64_t seed,
                                        radio::CampusSpec campus,
                                        double offset_spread_db) {
  ScenarioSpec spec;
  spec.name = "campus-fleet-" + std::to_string(device_count) + "x" +
              std::to_string(scans_per_device);
  spec.site = SiteModel::kCampus;
  spec.seed = seed;
  spec.campus = campus;

  stats::Rng rng(seed ^ 0xCA4F1EE7ULL);
  const std::size_t floors =
      static_cast<std::size_t>(campus.total_floors());
  spec.devices.reserve(device_count);
  for (std::size_t d = 0; d < device_count; ++d) {
    DeviceSpec dev;
    const std::size_t flat = d % floors;
    dev.building = static_cast<std::uint32_t>(
        flat / static_cast<std::size_t>(campus.floors_per_building));
    dev.floor = static_cast<std::uint32_t>(
        flat % static_cast<std::size_t>(campus.floors_per_building));
    const geom::Rect fp =
        campus.building_footprint(static_cast<int>(dev.building));
    dev.waypoints = core::random_waypoint_path(fp, 5, rng).waypoints();
    dev.scans = scans_per_device;
    dev.start_time_s = 0.25 * static_cast<double>(d);
    dev.rssi_offset_db =
        (rng.uniform() - 0.5) * offset_spread_db;
    spec.devices.push_back(std::move(dev));
  }
  return spec;
}

radio::Environment Scenario::make_environment(const ScenarioSpec& spec) {
  switch (spec.site) {
    case SiteModel::kPaperHouse:
      return radio::make_paper_house();
    case SiteModel::kOfficeFloor:
      return radio::make_office_floor(spec.ap_count);
    case SiteModel::kCampus:
      break;  // campuses are not single environments
  }
  throw std::invalid_argument("scenario: unknown site model");
}

Scenario::Scenario(ScenarioSpec spec) : spec_(std::move(spec)) {
  if (spec_.site == SiteModel::kCampus) {
    campus_ = radio::make_campus(spec_.campus);
    floor_dbs_ = core::train_campus(*campus_, spec_.train_scans,
                                    spec_.seed * 1000 + 1, spec_.channel);
    db_ = core::merge_floor_databases(floor_dbs_, spec_.name);
    return;
  }
  testbed_ = std::make_unique<core::Testbed>(
      make_environment(spec_), radio::PropagationConfig{}, spec_.channel);
  traindb::GeneratorConfig config;
  config.keep_samples = spec_.keep_samples;
  config.site_name = spec_.name;
  const wiscan::LocationMap map = core::make_training_grid(
      testbed_->environment().footprint(), spec_.grid_spacing_ft);
  db_ = testbed_->train(map, spec_.train_scans, spec_.seed * 1000 + 1,
                        config);
}

const core::Testbed& Scenario::testbed() const {
  if (testbed_ == nullptr) {
    throw std::logic_error(
        "Scenario::testbed: campus scenarios have no single environment");
  }
  return *testbed_;
}

const radio::Campus& Scenario::campus() const {
  if (campus_ == nullptr) {
    throw std::logic_error(
        "Scenario::campus: not a campus scenario");
  }
  return *campus_;
}

ScanTrace Scenario::record_trace() const {
  ScanTrace trace;
  trace.scenario = spec_.name;
  trace.device_count = static_cast<std::uint32_t>(spec_.devices.size());

  // Resolve churned AP indices to BSSIDs once, up front (and fail
  // fast on out-of-range indices).
  std::vector<std::pair<std::string, double>> churned;
  churned.reserve(spec_.ap_churn.size());
  for (const ApChurnEvent& ev : spec_.ap_churn) {
    if (campus_ != nullptr) {
      if (ev.ap_index >= campus_->total_ap_count()) {
        throw std::out_of_range("scenario: churned AP index out of range");
      }
      churned.emplace_back(
          radio::synthetic_bssid(static_cast<int>(ev.ap_index)),
          ev.off_time_s);
    } else {
      churned.emplace_back(
          testbed_->environment().access_points().at(ev.ap_index).bssid,
          ev.off_time_s);
    }
  }

  for (std::uint32_t d = 0; d < trace.device_count; ++d) {
    const DeviceSpec& dev = spec_.devices[d];
    const core::WaypointPath path(dev.waypoints);
    // Per-device channel: the fleet's NIC offsets differ.
    radio::ChannelConfig channel = spec_.channel;
    channel.device_offset_db += dev.rssi_offset_db;
    // Campus devices hear their own (building, floor); everyone else
    // shares the testbed environment.
    std::unique_ptr<radio::CampusFloorView> view;
    if (campus_ != nullptr) {
      view = std::make_unique<radio::CampusFloorView>(*campus_, dev.building,
                                                      dev.floor);
    }
    radio::Scanner scanner(
        campus_ != nullptr
            ? static_cast<const radio::RssiModel&>(*view)
            : static_cast<const radio::RssiModel&>(testbed_->propagation()),
        channel, device_seed(spec_.seed, d));
    for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(dev.scans);
         ++i) {
      const double t = scanner.clock_s();
      const geom::Vec2 truth =
          path.empty() ? geom::Vec2{0.0, 0.0}
                       : path.position_at_time(t, dev.speed_ft_s);
      radio::ScanRecord record = scanner.scan_at(truth);
      record.timestamp_s += dev.start_time_s;

      // Site-level churn first: a decommissioned AP is simply not on
      // the air, whatever else happens to this scan.
      for (const auto& [bssid, off_time] : churned) {
        if (record.timestamp_s < off_time) continue;
        std::erase_if(record.samples,
                      [&bssid = bssid](const radio::ScanSample& s) {
                        return s.bssid == bssid;
                      });
      }

      bool dropped = false;
      for (const FaultEvent& fault : spec_.faults) {
        if (fault.device != d || fault.scan_index != i) continue;
        if (fault.kind == FaultEvent::Kind::kDropScan) {
          dropped = true;
        } else {
          apply_fault(fault.kind, record);
        }
      }
      if (dropped) continue;  // the scan happened, the record was lost

      TraceScan ts;
      ts.device = d;
      ts.truth = truth;
      ts.scan = std::move(record);
      trace.scans.push_back(std::move(ts));
    }
  }
  return trace;
}

std::vector<core::Observation> observations_from_trace(
    const ScanTrace& trace, std::size_t window_scans) {
  if (window_scans == 0) {
    throw std::invalid_argument(
        "observations_from_trace: window_scans must be positive");
  }
  std::vector<core::Observation> observations;
  for (const std::vector<std::size_t>& indices : trace.scans_by_device()) {
    std::vector<radio::ScanRecord> window;
    auto flush = [&] {
      if (window.empty()) return;
      observations.push_back(core::Observation::from_scans(window));
      window.clear();
    };
    for (std::size_t idx : indices) {
      const radio::ScanRecord& record = trace.scans[idx].scan;
      const bool finite = std::all_of(
          record.samples.begin(), record.samples.end(),
          [](const radio::ScanSample& s) { return std::isfinite(s.rssi_dbm); });
      if (!finite) continue;
      window.push_back(record);
      if (window.size() == window_scans) flush();
    }
    flush();
  }
  return observations;
}

}  // namespace loctk::testkit

#include "testkit/run_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace loctk::testkit {

namespace {

/// Shortest round-trip-exact decimal form, like the metrics snapshot.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  if (std::sscanf(buf, "%lf", &parsed) == 1 && parsed == v) {
    for (int precision = 1; precision < 17; ++precision) {
      char shorter[64];
      std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
      if (std::sscanf(shorter, "%lf", &parsed) == 1 && parsed == v) {
        return shorter;
      }
    }
  }
  return buf;
}

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c); break;
    }
  }
  out.push_back('"');
}

}  // namespace

double RunReport::valid_fix_fraction() const {
  if (scans_replayed == 0) return 0.0;
  return static_cast<double>(valid_fixes + degraded_fixes) /
         static_cast<double>(scans_replayed);
}

double RunReport::degraded_fix_rate() const {
  const std::uint64_t total = valid_fixes + degraded_fixes;
  if (total == 0) return 0.0;
  return static_cast<double>(degraded_fixes) / static_cast<double>(total);
}

double RunReport::error_percentile(double q) const {
  if (errors_ft.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::size_t last = errors_ft.size() - 1;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(errors_ft.size())));
  return errors_ft[std::min(rank == 0 ? 0 : rank - 1, last)];
}

double RunReport::mean_error_ft() const {
  if (errors_ft.empty()) return 0.0;
  double sum = 0.0;
  for (double e : errors_ft) sum += e;
  return sum / static_cast<double>(errors_ft.size());
}

double RunReport::median_error_ft() const { return error_percentile(0.5); }
double RunReport::p90_error_ft() const { return error_percentile(0.9); }

double RunReport::max_error_ft() const {
  return errors_ft.empty() ? 0.0 : errors_ft.back();
}

std::string RunReport::to_text() const {
  char buf[256];
  std::string out;
  out += "run report: " + scenario + "\n";
  std::snprintf(buf, sizeof(buf),
                "  devices %u, scans %llu, valid fixes %llu "
                "(%llu degraded), invalid %llu, rejected samples %llu\n",
                device_count,
                static_cast<unsigned long long>(scans_replayed),
                static_cast<unsigned long long>(valid_fixes + degraded_fixes),
                static_cast<unsigned long long>(degraded_fixes),
                static_cast<unsigned long long>(invalid_fixes),
                static_cast<unsigned long long>(rejected_samples));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  valid-fix fraction %.1f%%, degraded rate %.1f%%\n",
                100.0 * valid_fix_fraction(), 100.0 * degraded_fix_rate());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  error (ft): mean %.1f  median %.1f  p90 %.1f  max %.1f "
                "(n=%zu)\n",
                mean_error_ft(), median_error_ft(), p90_error_ft(),
                max_error_ft(), errors_ft.size());
  out += buf;
  return out;
}

std::string RunReport::to_json() const {
  std::string out = "{\n  \"scenario\": ";
  append_json_string(out, scenario);
  auto field = [&out](const char* key, const std::string& value) {
    out += ",\n  \"";
    out += key;
    out += "\": ";
    out += value;
  };
  field("device_count", std::to_string(device_count));
  field("scans_replayed", std::to_string(scans_replayed));
  field("valid_fixes", std::to_string(valid_fixes));
  field("degraded_fixes", std::to_string(degraded_fixes));
  field("invalid_fixes", std::to_string(invalid_fixes));
  field("rejected_samples", std::to_string(rejected_samples));
  field("valid_fix_fraction", format_double(valid_fix_fraction()));
  field("degraded_fix_rate", format_double(degraded_fix_rate()));
  field("mean_error_ft", format_double(mean_error_ft()));
  field("median_error_ft", format_double(median_error_ft()));
  field("p90_error_ft", format_double(p90_error_ft()));
  field("max_error_ft", format_double(max_error_ft()));
  out += ",\n  \"errors_ft\": [";
  for (std::size_t i = 0; i < errors_ft.size(); ++i) {
    if (i != 0) out += ", ";
    out += format_double(errors_ft[i]);
  }
  out += "]\n}\n";
  return out;
}

}  // namespace loctk::testkit

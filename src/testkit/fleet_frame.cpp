#include "testkit/fleet_frame.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "floorplan/heatmap.hpp"
#include "image/font.hpp"
#include "radio/campus.hpp"
#include "traindb/database.hpp"

namespace loctk::testkit {

namespace {

/// Device-marker palette, cycled by building so the frame shows at a
/// glance which building a cluster belongs to.
constexpr image::Color kDevicePalette[] = {
    image::colors::kBlue,
    image::colors::kRed,
    image::colors::kGreen,
    image::Color{168, 85, 247},  // violet
};

/// Coverage heat for one room: the strongest trained mean RSSI at the
/// nearest survey point, mapped onto [0, 1] over the plausible indoor
/// range [-90, -30] dBm.
double room_heat(const traindb::TrainingDatabase& db, geom::Vec2 center) {
  const traindb::TrainingPoint* tp = db.nearest_point(center);
  if (tp == nullptr || tp->per_ap.empty()) return 0.0;
  double best = -1e9;
  for (const traindb::ApStatistics& ap : tp->per_ap) {
    best = std::max(best, ap.mean_dbm);
  }
  return std::clamp((best + 90.0) / 60.0, 0.0, 1.0);
}

}  // namespace

FleetFrameBuilder::FleetFrameBuilder(const Scenario& scenario,
                                     FleetFrameOptions options)
    : scenario_(&scenario), options_(options) {
  const radio::Campus& campus = scenario.campus();
  const radio::CampusSpec& spec = campus.spec();

  const double width_ft =
      static_cast<double>(spec.buildings) * spec.floor_width_ft +
      static_cast<double>(std::max(0, spec.buildings - 1)) *
          spec.building_gap_ft;
  base_.width = px_x(width_ft) + options_.margin_px;
  base_.height = px_y(spec.floor_depth_ft) + options_.margin_px;
  base_.background = image::colors::kWhite;

  const double room_w_ft = spec.floor_width_ft / std::max(1, spec.rooms_x);
  const double room_d_ft = spec.floor_depth_ft / std::max(1, spec.rooms_y);

  for (std::size_t b = 0; b < campus.building_count(); ++b) {
    // Per-room coverage heat (ground-floor survey), drawn first so
    // walls, APs, and devices stay legible on top.
    const traindb::TrainingDatabase& floor_db =
        scenario.floor_databases()[campus.flat_floor(b, 0)];
    for (const geom::Vec2 center : campus.room_centers(b)) {
      const double t = room_heat(floor_db, center);
      const int x0 = px_x(center.x - room_w_ft / 2);
      const int y0 = px_y(center.y - room_d_ft / 2);
      base_.add_fill_rect(x0, y0, px_x(center.x + room_w_ft / 2) - x0,
                          px_y(center.y + room_d_ft / 2) - y0,
                          floorplan::heat_color(t));
    }

    // Building footprint and title.
    const geom::Rect& fp = campus.footprint(b);
    const int x0 = px_x(fp.min.x);
    const int y0 = px_y(fp.min.y);
    base_.add_rect(x0, y0, px_x(fp.max.x) - x0 + 1, px_y(fp.max.y) - y0 + 1,
                   image::colors::kBlack);
    base_.add_text(x0, y0 - image::kLineAdvance - 2,
                   "B" + std::to_string(b), image::colors::kBlack, 1);

    // Ground-floor APs: triangle + name label.
    const radio::Environment& ground = campus.building(b).floor(0);
    int ap_index = 0;
    for (const radio::AccessPoint& ap : ground.access_points()) {
      const int ax = px_x(ap.position.x);
      const int ay = px_y(ap.position.y);
      base_.add_marker(ax, ay, image::MarkerShape::kTriangle,
                       image::colors::kDarkGray, 3);
      if (options_.label_every > 0 && ap_index % options_.label_every == 0) {
        base_.add_text(ax + 4, ay - 3, ap.name, image::colors::kDarkGray, 1);
      }
      ++ap_index;
    }
  }
}

int FleetFrameBuilder::px_x(double ft_x) const {
  return options_.margin_px +
         static_cast<int>(std::lround(ft_x * options_.px_per_ft));
}

int FleetFrameBuilder::px_y(double ft_y) const {
  return options_.margin_px +
         static_cast<int>(std::lround(ft_y * options_.px_per_ft));
}

std::size_t FleetFrameBuilder::tick_count(const ScanTrace& trace) const {
  std::size_t ticks = 0;
  for (const std::vector<std::size_t>& scans : trace.scans_by_device()) {
    ticks = std::max(ticks, scans.size());
  }
  return ticks;
}

floorplan::FleetFrameSpec FleetFrameBuilder::frame(const ScanTrace& trace,
                                                   std::size_t tick) const {
  floorplan::FleetFrameSpec spec = base_;
  const std::vector<DeviceSpec>& devices = scenario_->spec().devices;
  const auto by_device = trace.scans_by_device();
  for (std::size_t d = 0; d < by_device.size(); ++d) {
    if (tick >= by_device[d].size()) continue;
    const TraceScan& ts = trace.scans[by_device[d][tick]];
    const std::size_t building =
        d < devices.size() ? devices[d].building : 0;
    const image::Color c =
        kDevicePalette[building % std::size(kDevicePalette)];
    spec.add_marker(px_x(ts.truth.x), px_y(ts.truth.y),
                    image::MarkerShape::kDot, c, options_.device_radius_px);
  }
  return spec;
}

}  // namespace loctk::testkit

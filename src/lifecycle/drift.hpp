#pragma once

/// \file drift.hpp
/// Per-<training point, AP> RSSI drift detection.
///
/// The paper treats the radio map as a one-shot survey; in deployment
/// APs move, change transmit power, and get replaced, and accuracy
/// decays until the map is refreshed ("Autonomous WiFi Fingerprinting
/// for Indoor Localization", PAPERS.md). `DriftMonitor` turns the
/// serve path's own traffic into the refresh signal: every valid fix
/// attributes its observation to the winning training point, and the
/// monitor folds the residual between each live per-AP mean and the
/// trained mean into an EWMA per <point, AP> pair. Three conditions
/// flag a pair or point for resurvey:
///
///  * **drift** — |residual EWMA| exceeds a dB threshold after warm-up
///    (the AP's power or position changed);
///  * **vanish** — the visibility EWMA of a trained AP collapses (the
///    AP was removed; its fingerprint rows are now misleading);
///  * **staleness** — a point has received no attributed traffic for a
///    configured span (nothing validates its row anymore).
///
/// The monitor reports through `lifecycle.drift.*` in the process
/// metrics registry and feeds `LifecycleJanitor` (janitor.hpp), which
/// decides when the evidence justifies a resurvey + re-publish.
///
/// Thread-safety: none. The monitor is control-plane state owned by
/// one janitor; feed it from one thread (or serialize externally).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/metrics.hpp"
#include "core/compiled_db.hpp"
#include "core/observation.hpp"

namespace loctk::lifecycle {

struct DriftConfig {
  /// EWMA weight of the newest residual (and of presence/absence in
  /// the visibility EWMA).
  double alpha = 0.125;
  /// |residual EWMA| above this flags the pair as drifted (dB).
  double drift_threshold_db = 6.0;
  /// Updates before a pair's EWMA is trusted (warm-up).
  std::uint32_t min_updates = 8;
  /// A trained AP whose visibility EWMA falls below this after
  /// warm-up is considered vanished.
  double vanish_visibility = 0.2;
  /// A point with no attributed observation for this many monitor
  /// observations (across all points) is stale.
  std::uint64_t stale_after = 512;
};

/// Why a pair was flagged.
enum class DriftKind : std::uint8_t { kShifted, kVanished };

struct DriftedPair {
  std::size_t point = 0;
  std::string bssid;
  DriftKind kind = DriftKind::kShifted;
  /// Residual EWMA in dB (live minus trained; meaningful for kShifted).
  double ewma_db = 0.0;
  /// Visibility EWMA in [0, 1].
  double visibility = 1.0;
};

struct DriftReport {
  std::vector<DriftedPair> drifted;
  /// Points with no attributed traffic inside the staleness window.
  std::vector<std::size_t> stale_points;
  double max_abs_ewma_db = 0.0;
  std::uint64_t observations = 0;

  bool clean() const { return drifted.empty() && stale_points.empty(); }
  /// Unique, ascending point indices appearing in `drifted`.
  std::vector<std::size_t> drifted_points() const;
};

class DriftMonitor {
 public:
  /// `db` is the currently-published compilation the residuals are
  /// measured against.
  explicit DriftMonitor(std::shared_ptr<const core::CompiledDatabase> db,
                        DriftConfig config = {});

  /// Folds one observation attributed to training point `point` (the
  /// winning fix) into the per-pair EWMAs. Out-of-range points are
  /// ignored (counted in `lifecycle.drift.dropped`).
  void observe(std::size_t point, const core::Observation& obs);

  /// Convenience: attribute by location name. Returns false (and
  /// counts a drop) when the name is not a training point.
  bool observe(const std::string& location, const core::Observation& obs);

  /// Current flags + staleness; also refreshes the
  /// `lifecycle.drift.*` gauges.
  DriftReport report() const;

  /// Swaps the baseline after a republish: residual state is kept for
  /// <point, AP> pairs whose trained mean is unchanged and reset where
  /// the new compilation disagrees with the old (resurveyed rows, new
  /// or re-interned slots) — a refreshed row must re-earn its drift
  /// evidence against the new means.
  void rebase(std::shared_ptr<const core::CompiledDatabase> db);

  const core::CompiledDatabase& database() const { return *db_; }
  std::uint64_t observations() const { return observations_; }

 private:
  struct PairState {
    double ewma_db = 0.0;
    double visibility = 1.0;
    std::uint32_t updates = 0;
  };

  std::size_t index(std::size_t point, std::size_t slot) const {
    return point * db_->universe_size() + slot;
  }

  std::shared_ptr<const core::CompiledDatabase> db_;
  DriftConfig config_;
  /// Dense points x universe pair state (universe-sized rows, no SIMD
  /// padding — this is control-plane bookkeeping).
  std::vector<PairState> state_;
  /// Monitor observation index of each point's last attribution; 0
  /// means never seen.
  std::vector<std::uint64_t> last_seen_;
  std::uint64_t observations_ = 0;

  metrics::Counter* observations_counter_;
  metrics::Counter* dropped_counter_;
  metrics::Gauge* drifted_gauge_;
  metrics::Gauge* stale_gauge_;
  metrics::Gauge* max_ewma_gauge_;
};

}  // namespace loctk::lifecycle

#pragma once

/// \file intake.hpp
/// Quarantined survey intake: raw resurvey dwells → validated
/// TrainingPoints → a `DatabaseDelta`.
///
/// The re-publish pipeline's front door. A surveyor (or the drift
/// monitor's resurvey request) delivers a `SurveyDwell` — scans
/// collected while standing at one named point — and the intake either
/// aggregates it into a `traindb::TrainingPoint` (the same
/// RunningStats math the offline generator uses, so a resurveyed row
/// is statistically identical to an original one) or **quarantines**
/// it with a typed `loctk::Error` instead of letting a hostile or
/// degenerate dwell poison the radio map:
///
///  * `kParse`      — structurally unusable (empty location name);
///  * `kCorrupt`    — non-finite or out-of-range RSSI anywhere in the
///                    dwell (one bad sample condemns the dwell: a
///                    surveyor's NIC that emits garbage once is not
///                    trusted for the rest either);
///  * `kDegenerate` — too few scans, or no AP survived the
///                    min-samples cut (nothing worth publishing).
///
/// Accepted points accumulate (later dwells for the same location
/// replace earlier ones) until the janitor drains them into a
/// `core::DatabaseDelta` for delta-compilation. Quarantined dwells are
/// kept for inspection, never merged. Reports through
/// `lifecycle.intake.*`.
///
/// Thread-safety: none; owned by one janitor (see janitor.hpp).

#include <cstdint>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "base/metrics.hpp"
#include "core/compiled_db.hpp"
#include "geom/vec2.hpp"
#include "radio/scanner.hpp"
#include "traindb/training_point.hpp"

namespace loctk::lifecycle {

struct IntakeConfig {
  /// Minimum scan passes per dwell (the paper's training dwell was
  /// ~1.5 min of scans; a couple of passes is not a survey).
  std::uint32_t min_scans = 3;
  /// Drop <point, AP> pairs heard in fewer samples (mirrors
  /// traindb::GeneratorConfig::min_samples_per_ap).
  std::uint32_t min_samples_per_ap = 3;
  /// Plausible RSSI band; readings outside quarantine the dwell.
  double min_plausible_dbm = -110.0;
  double max_plausible_dbm = 0.0;
};

/// One resurvey visit: scans collected at a known named position.
struct SurveyDwell {
  std::string location;
  geom::Vec2 position;
  std::vector<radio::ScanRecord> scans;
};

struct QuarantinedSurvey {
  std::string location;
  Error error;
};

class SurveyIntake {
 public:
  explicit SurveyIntake(IntakeConfig config = {});

  /// Validates and aggregates one dwell. On success the TrainingPoint
  /// is staged for the next drain() and returned; on failure the dwell
  /// is quarantined (see quarantined()) and the Error describes why.
  Result<traindb::TrainingPoint> submit(const SurveyDwell& dwell);

  /// Accepted points since the last drain, as a delta ready for
  /// `CompiledDatabase::delta_compile`. Clears the staging area.
  core::DatabaseDelta drain();

  /// Accepted points currently staged.
  std::size_t pending() const { return staged_.size(); }

  const std::vector<QuarantinedSurvey>& quarantined() const {
    return quarantined_;
  }
  void clear_quarantine() { quarantined_.clear(); }

  const IntakeConfig& config() const { return config_; }

 private:
  IntakeConfig config_;
  std::vector<traindb::TrainingPoint> staged_;
  std::vector<QuarantinedSurvey> quarantined_;

  metrics::Counter* accepted_counter_;
  metrics::Counter* quarantined_counter_;
  metrics::Gauge* pending_gauge_;
};

}  // namespace loctk::lifecycle

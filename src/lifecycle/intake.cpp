#include "lifecycle/intake.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "stats/running_stats.hpp"

namespace loctk::lifecycle {

SurveyIntake::SurveyIntake(IntakeConfig config)
    : config_(config),
      accepted_counter_(&metrics::counter("lifecycle.intake.accepted")),
      quarantined_counter_(&metrics::counter("lifecycle.intake.quarantined")),
      pending_gauge_(&metrics::gauge("lifecycle.intake.pending")) {}

Result<traindb::TrainingPoint> SurveyIntake::submit(
    const SurveyDwell& dwell) {
  auto quarantine = [&](Error error) -> Result<traindb::TrainingPoint> {
    quarantined_counter_->increment();
    quarantined_.push_back({dwell.location, error});
    return std::move(error).with_context("survey intake at '" +
                                         dwell.location + "'");
  };

  if (dwell.location.empty()) {
    return quarantine(Error(ErrorCode::kParse, "dwell has no location name"));
  }
  if (dwell.scans.size() < config_.min_scans) {
    return quarantine(Error(
        ErrorCode::kDegenerate,
        "dwell has " + std::to_string(dwell.scans.size()) +
            " scans, need " + std::to_string(config_.min_scans)));
  }

  // One bucket per BSSID across every scan pass; ordered map so the
  // per-AP list comes out sorted (from_points would re-sort anyway —
  // this just keeps the staged point canonical).
  std::map<std::string, stats::RunningStats> buckets;
  for (const radio::ScanRecord& scan : dwell.scans) {
    for (const radio::ScanSample& sample : scan.samples) {
      if (!std::isfinite(sample.rssi_dbm)) {
        return quarantine(Error(ErrorCode::kCorrupt,
                                "non-finite RSSI for " + sample.bssid));
      }
      if (sample.rssi_dbm < config_.min_plausible_dbm ||
          sample.rssi_dbm > config_.max_plausible_dbm) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "implausible RSSI %.1f dBm for %s",
                      sample.rssi_dbm, sample.bssid.c_str());
        return quarantine(Error(ErrorCode::kCorrupt, buf));
      }
      buckets[sample.bssid].add(sample.rssi_dbm);
    }
  }

  traindb::TrainingPoint point;
  point.location = dwell.location;
  point.position = dwell.position;
  for (const auto& [bssid, rs] : buckets) {
    if (rs.count() < config_.min_samples_per_ap) continue;
    traindb::ApStatistics ap;
    ap.bssid = bssid;
    ap.mean_dbm = rs.mean();
    ap.stddev_db = rs.stddev();
    ap.sample_count = static_cast<std::uint32_t>(rs.count());
    ap.scan_count = static_cast<std::uint32_t>(dwell.scans.size());
    ap.min_dbm = rs.min();
    ap.max_dbm = rs.max();
    point.per_ap.push_back(std::move(ap));
  }
  if (point.per_ap.empty()) {
    return quarantine(Error(ErrorCode::kDegenerate,
                            "no AP survived the min-samples cut"));
  }

  // Later dwells for the same location replace earlier staged ones —
  // the freshest survey wins, matching delta upsert semantics.
  bool replaced = false;
  for (traindb::TrainingPoint& staged : staged_) {
    if (staged.location == point.location) {
      staged = point;
      replaced = true;
      break;
    }
  }
  if (!replaced) staged_.push_back(point);
  accepted_counter_->increment();
  pending_gauge_->set(static_cast<double>(staged_.size()));
  return point;
}

core::DatabaseDelta SurveyIntake::drain() {
  core::DatabaseDelta delta;
  delta.upserts = std::move(staged_);
  staged_.clear();
  pending_gauge_->set(0.0);
  return delta;
}

}  // namespace loctk::lifecycle

#include "lifecycle/drift.hpp"

#include <algorithm>
#include <cmath>

namespace loctk::lifecycle {

DriftMonitor::DriftMonitor(
    std::shared_ptr<const core::CompiledDatabase> db, DriftConfig config)
    : db_(std::move(db)),
      config_(config),
      state_(db_->point_count() * db_->universe_size()),
      last_seen_(db_->point_count(), 0),
      observations_counter_(&metrics::counter("lifecycle.drift.observations")),
      dropped_counter_(&metrics::counter("lifecycle.drift.dropped")),
      drifted_gauge_(&metrics::gauge("lifecycle.drift.drifted_pairs")),
      stale_gauge_(&metrics::gauge("lifecycle.drift.stale_points")),
      max_ewma_gauge_(&metrics::gauge("lifecycle.drift.max_abs_ewma_db")) {}

void DriftMonitor::observe(std::size_t point, const core::Observation& obs) {
  if (point >= db_->point_count()) {
    dropped_counter_->increment();
    return;
  }
  ++observations_;
  observations_counter_->increment();
  last_seen_[point] = observations_;

  // Walk the point's trained row: residual where the AP was heard,
  // absence fold where it was not. APs heard but not trained here say
  // nothing about this row's health (they may simply be new — the
  // intake path, not the monitor, brings them into the map).
  const double* mask = db_->mask_row(point);
  const double* mean = db_->mean_row(point);
  const auto& universe = db_->database().bssid_universe();
  const double a = config_.alpha;
  for (std::size_t u = 0; u < db_->universe_size(); ++u) {
    if (mask[u] == 0.0) continue;
    PairState& s = state_[index(point, u)];
    const std::optional<double> live = obs.mean_of(universe[u]);
    if (live.has_value() && std::isfinite(*live)) {
      s.ewma_db = s.updates == 0 ? *live - mean[u]
                                 : (1.0 - a) * s.ewma_db +
                                       a * (*live - mean[u]);
      s.visibility = (1.0 - a) * s.visibility + a;
      ++s.updates;
    } else {
      s.visibility = (1.0 - a) * s.visibility;
      ++s.updates;
    }
  }
}

bool DriftMonitor::observe(const std::string& location,
                           const core::Observation& obs) {
  const auto& points = db_->database().points();
  for (std::size_t p = 0; p < points.size(); ++p) {
    if (points[p].location == location) {
      observe(p, obs);
      return true;
    }
  }
  dropped_counter_->increment();
  return false;
}

DriftReport DriftMonitor::report() const {
  DriftReport report;
  report.observations = observations_;
  const auto& universe = db_->database().bssid_universe();
  for (std::size_t p = 0; p < db_->point_count(); ++p) {
    const double* mask = db_->mask_row(p);
    for (std::size_t u = 0; u < db_->universe_size(); ++u) {
      if (mask[u] == 0.0) continue;
      const PairState& s = state_[index(p, u)];
      if (s.updates < config_.min_updates) continue;
      report.max_abs_ewma_db =
          std::max(report.max_abs_ewma_db, std::abs(s.ewma_db));
      if (s.visibility < config_.vanish_visibility) {
        report.drifted.push_back(
            {p, universe[u], DriftKind::kVanished, s.ewma_db, s.visibility});
      } else if (std::abs(s.ewma_db) > config_.drift_threshold_db) {
        report.drifted.push_back(
            {p, universe[u], DriftKind::kShifted, s.ewma_db, s.visibility});
      }
    }
    if (observations_ >= config_.stale_after &&
        observations_ - last_seen_[p] >= config_.stale_after) {
      report.stale_points.push_back(p);
    }
  }
  drifted_gauge_->set(static_cast<double>(report.drifted.size()));
  stale_gauge_->set(static_cast<double>(report.stale_points.size()));
  max_ewma_gauge_->set(report.max_abs_ewma_db);
  return report;
}

void DriftMonitor::rebase(std::shared_ptr<const core::CompiledDatabase> db) {
  const std::shared_ptr<const core::CompiledDatabase> old = std::move(db_);
  std::vector<PairState> old_state = std::move(state_);
  std::vector<std::uint64_t> old_last = std::move(last_seen_);

  db_ = std::move(db);
  state_.assign(db_->point_count() * db_->universe_size(), PairState{});
  last_seen_.assign(db_->point_count(), 0);

  // Old slot of every new universe BSSID, resolved once.
  const auto& new_universe = db_->database().bssid_universe();
  std::vector<std::optional<std::uint32_t>> old_slot(new_universe.size());
  for (std::size_t u = 0; u < new_universe.size(); ++u) {
    old_slot[u] = old->slot_of(new_universe[u]);
  }

  const auto& old_points = old->database().points();
  for (std::size_t p = 0; p < db_->point_count(); ++p) {
    // Replacements land in place and appends at the end, so a carried
    // point keeps its index; guard on the name anyway.
    if (p >= old_points.size() ||
        old_points[p].location != db_->point(p).location) {
      continue;
    }
    last_seen_[p] = old_last[p];
    const double* new_mask = db_->mask_row(p);
    const double* new_mean = db_->mean_row(p);
    const double* o_mask = old->mask_row(p);
    const double* o_mean = old->mean_row(p);
    for (std::size_t u = 0; u < db_->universe_size(); ++u) {
      if (new_mask[u] == 0.0 || !old_slot[u].has_value()) continue;
      const std::size_t ou = *old_slot[u];
      // Same trained mean ⇒ the evidence still applies; a changed mean
      // (resurveyed row) must re-earn its EWMA against the new
      // baseline.
      if (o_mask[ou] != 0.0 && o_mean[ou] == new_mean[u]) {
        state_[index(p, u)] =
            old_state[p * old->universe_size() + ou];
      }
    }
  }
}

std::vector<std::size_t> DriftReport::drifted_points() const {
  std::vector<std::size_t> points;
  points.reserve(drifted.size());
  for (const DriftedPair& d : drifted) points.push_back(d.point);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

}  // namespace loctk::lifecycle

#include "lifecycle/janitor.hpp"

#include <chrono>
#include <utility>

namespace loctk::lifecycle {

namespace {
using Clock = std::chrono::steady_clock;
}

LifecycleJanitor::LifecycleJanitor(
    serve::LocationServer& server, serve::SiteId site,
    std::shared_ptr<const core::CompiledDatabase> compiled,
    LocatorFactory factory, JanitorConfig config)
    : server_(server),
      site_(site),
      compiled_(std::move(compiled)),
      factory_(std::move(factory)),
      config_(config),
      drift_(compiled_, config_.drift),
      intake_(config_.intake),
      republish_counter_(&metrics::counter("lifecycle.republish.count")),
      points_counter_(&metrics::counter("lifecycle.republish.points")),
      generation_gauge_(&metrics::gauge("lifecycle.republish.generation")),
      republish_hist_(&metrics::histogram("lifecycle.republish.seconds")) {}

void LifecycleJanitor::observe_fix(const core::ServiceFix& fix,
                                   const core::Observation& obs) {
  if (!fix.valid || fix.place.empty()) return;
  drift_.observe(fix.place, obs);
}

Result<traindb::TrainingPoint> LifecycleJanitor::submit_survey(
    const SurveyDwell& dwell) {
  return intake_.submit(dwell);
}

std::optional<RepublishReport> LifecycleJanitor::tick() {
  if (intake_.pending() < config_.min_republish_batch) return std::nullopt;
  const Clock::time_point start = Clock::now();

  const core::DatabaseDelta delta = intake_.drain();
  RepublishReport report;
  report.points_upserted = delta.upserts.size();
  report.universe_before = compiled_->universe_size();

  // Delta-compile off to the side — the published snapshot serves
  // traffic untouched until the swap lands.
  std::shared_ptr<const core::CompiledDatabase> next =
      compiled_->delta_compile(delta);
  report.universe_after = next->universe_size();

  report.generation = server_.swap_site(site_, factory_(next));
  compiled_ = std::move(next);
  // Resurveyed rows re-earn their drift evidence against the new
  // baseline; untouched pairs keep theirs.
  drift_.rebase(compiled_);

  republish_counter_->increment();
  points_counter_->add(report.points_upserted);
  generation_gauge_->set(static_cast<double>(report.generation));
  republish_hist_->record(
      std::chrono::duration<double>(Clock::now() - start).count());
  return report;
}

}  // namespace loctk::lifecycle

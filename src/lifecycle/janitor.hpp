#pragma once

/// \file janitor.hpp
/// The control-plane janitor driving one site's fingerprint lifecycle:
/// survey intake → quarantine → delta-compile → `swap_site`.
///
/// PR 7 shipped the hot-swap machinery (LocationServer::swap_site,
/// epoch/RCU reclamation); this is the missing producer. The janitor
/// owns the living artifacts for one site:
///
///  * the currently-published `CompiledDatabase` (the serve snapshot's
///    source of truth),
///  * a `DriftMonitor` fed from serve traffic, which says *when* the
///    map needs refreshing and *which* points to resurvey,
///  * a `SurveyIntake`, which validates/quarantines resurvey dwells.
///
/// `tick()` is the whole re-publish protocol (docs/SERVING.md
/// "Fingerprint lifecycle"): when enough accepted surveys pend, drain
/// them into a `DatabaseDelta`, delta-compile the published database
/// (oracle-equal to a from-scratch rebuild), build a fresh locator via
/// the injected factory, `swap_site` it under live traffic, and rebase
/// the drift monitor onto the new baseline. Versioning rides the
/// server's swap generation. Reports through `lifecycle.republish.*`.
///
/// Thread-safety: the janitor is a single control-plane actor — call
/// observe_fix()/submit_survey()/tick() from one thread. The *swap* it
/// performs is safe under full data-plane traffic; that is the point.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "base/metrics.hpp"
#include "core/compiled_db.hpp"
#include "core/location_service.hpp"
#include "core/locator.hpp"
#include "lifecycle/drift.hpp"
#include "lifecycle/intake.hpp"
#include "serve/location_server.hpp"

namespace loctk::lifecycle {

/// Builds the site's serving locator from a compilation. Injected so
/// the lifecycle layer stays agnostic of which algorithm (and which
/// pruner settings) a deployment serves.
using LocatorFactory =
    std::function<std::shared_ptr<const core::Locator>(
        std::shared_ptr<const core::CompiledDatabase>)>;

struct JanitorConfig {
  DriftConfig drift;
  IntakeConfig intake;
  /// tick() republishes once at least this many accepted surveys pend.
  std::size_t min_republish_batch = 1;
};

/// What one republish did.
struct RepublishReport {
  std::uint64_t generation = 0;     ///< server swap generation published
  std::size_t points_upserted = 0;
  std::size_t universe_before = 0;
  std::size_t universe_after = 0;
};

class LifecycleJanitor {
 public:
  /// `compiled` must be the compilation behind `site`'s currently
  /// published snapshot (the janitor becomes its owner of record).
  /// `server` must outlive the janitor.
  LifecycleJanitor(serve::LocationServer& server, serve::SiteId site,
                   std::shared_ptr<const core::CompiledDatabase> compiled,
                   LocatorFactory factory, JanitorConfig config = {});

  /// Feeds drift evidence from the data plane: a valid fix's winning
  /// place attributes `obs` to that training point. Invalid/degraded
  /// fixes carry no attribution and are ignored.
  void observe_fix(const core::ServiceFix& fix, const core::Observation& obs);

  /// Queues one resurvey dwell through validation/quarantine.
  Result<traindb::TrainingPoint> submit_survey(const SurveyDwell& dwell);

  /// One lifecycle turn: republishes when enough accepted surveys
  /// pend, else does nothing. Returns the report when a swap happened.
  std::optional<RepublishReport> tick();

  DriftMonitor& drift() { return drift_; }
  const DriftMonitor& drift() const { return drift_; }
  SurveyIntake& intake() { return intake_; }
  const SurveyIntake& intake() const { return intake_; }

  const std::shared_ptr<const core::CompiledDatabase>& compiled() const {
    return compiled_;
  }
  serve::SiteId site() const { return site_; }

 private:
  serve::LocationServer& server_;
  serve::SiteId site_;
  std::shared_ptr<const core::CompiledDatabase> compiled_;
  LocatorFactory factory_;
  JanitorConfig config_;
  DriftMonitor drift_;
  SurveyIntake intake_;

  metrics::Counter* republish_counter_;
  metrics::Counter* points_counter_;
  metrics::Gauge* generation_gauge_;
  metrics::HistogramMetric* republish_hist_;
};

}  // namespace loctk::lifecycle

#include "traindb/generator.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <utility>

#include "base/metrics.hpp"
#include "concurrency/parallel_for.hpp"
#include "stats/running_stats.hpp"
#include "wiscan/archive.hpp"
#include "wiscan/format.hpp"
#include "wiscan/scan_buffer.hpp"

namespace loctk::traindb {

namespace {

metrics::Counter& generate_files_counter() {
  static metrics::Counter& c =
      metrics::counter("traindb.generate.files_parsed");
  return c;
}
metrics::Counter& generate_quarantined_counter() {
  static metrics::Counter& c =
      metrics::counter("traindb.generate.files_quarantined");
  return c;
}
metrics::Counter& generate_points_counter() {
  static metrics::Counter& c =
      metrics::counter("traindb.generate.points_built");
  return c;
}
metrics::HistogramMetric& generate_seconds_histogram() {
  static metrics::HistogramMetric& h =
      metrics::histogram("traindb.generate.seconds");
  return h;
}

constexpr std::size_t kNoBucket = static_cast<std::size_t>(-1);

// Per-BSSID grouping used by both the materialized and the streaming
// aggregation paths. A survey file has thousands of rows but only a
// handful of distinct APs, so the table keeps a bssid-sorted vector of
// buckets and binary-searches each row into place: O(n log k) string
// compares with tiny k, versus the O(n log n) of sorting every row.
// Scan passes also visit APs in a stable order, so each bucket
// remembers which bucket the next row landed in last time; that
// one-step prediction usually replaces the search with a single
// equality check. Buckets stay in ascending BSSID order with capture
// order preserved inside each — the same <key order, sample order>
// the seed's std::map grouping produced, without a node allocation
// per entry.
template <typename Row>
struct BucketTable {
  struct Bucket {
    std::string_view bssid;
    std::vector<Row> rows;
    std::size_t next_pred = kNoBucket;
  };
  std::vector<Bucket> buckets;
  std::size_t predicted = kNoBucket;
  std::size_t previous = kNoBucket;

  void add(std::string_view key, Row row, std::size_t reserve_hint = 0) {
    std::size_t idx;
    if (predicted != kNoBucket && buckets[predicted].bssid == key) {
      idx = predicted;
    } else {
      auto it = std::lower_bound(
          buckets.begin(), buckets.end(), key,
          [](const Bucket& b, std::string_view k) { return b.bssid < k; });
      if (it == buckets.end() || it->bssid != key) {
        const std::size_t inserted =
            static_cast<std::size_t>(it - buckets.begin());
        buckets.insert(it, Bucket{key, {}, kNoBucket});
        if (reserve_hint > 0) buckets[inserted].rows.reserve(reserve_hint);
        // Insertion shifted every index at or past the slot.
        for (Bucket& b : buckets) {
          if (b.next_pred != kNoBucket && b.next_pred >= inserted) {
            ++b.next_pred;
          }
        }
        if (previous != kNoBucket && previous >= inserted) ++previous;
        idx = inserted;
      } else {
        idx = static_cast<std::size_t>(it - buckets.begin());
      }
    }
    buckets[idx].rows.push_back(row);
    if (previous != kNoBucket) buckets[previous].next_pred = idx;
    predicted = buckets[idx].next_pred;
    previous = idx;
  }
};

}  // namespace

TrainingPoint build_training_point(const wiscan::WiScanFile& file,
                                   geom::Vec2 position,
                                   const GeneratorConfig& config,
                                   std::size_t* dropped_pairs) {
  TrainingPoint point;
  point.location = file.location;
  point.position = position;

  const std::size_t scans = file.scan_count();

  BucketTable<const wiscan::WiScanEntry*> table;
  for (const wiscan::WiScanEntry& e : file.entries) {
    table.add(e.bssid, &e, scans);
  }

  for (const auto& bucket : table.buckets) {
    const std::size_t group_size = bucket.rows.size();
    if (group_size < config.min_samples_per_ap) {
      if (dropped_pairs) ++*dropped_pairs;
      continue;
    }
    stats::RunningStats rs;
    for (const wiscan::WiScanEntry* row : bucket.rows) rs.add(row->rssi_dbm);

    ApStatistics ap;
    ap.bssid = bucket.bssid;
    ap.mean_dbm = rs.mean();
    ap.stddev_db = rs.stddev();
    ap.sample_count = static_cast<std::uint32_t>(group_size);
    ap.scan_count = static_cast<std::uint32_t>(scans);
    ap.min_dbm = rs.min();
    ap.max_dbm = rs.max();
    if (config.keep_samples) {
      ap.samples_centi_dbm.reserve(group_size);
      for (const wiscan::WiScanEntry* row : bucket.rows) {
        ap.samples_centi_dbm.push_back(static_cast<std::int32_t>(
            std::lround(row->rssi_dbm * 100.0)));
      }
    }
    point.per_ap.push_back(std::move(ap));
  }
  return point;
}

namespace {

// Shared front half: resolve positions, record mismatches, and return
// the indices of collection files that have map entries.
std::vector<std::size_t> plan_points(const wiscan::Collection& collection,
                                     const wiscan::LocationMap& map,
                                     GeneratorReport* report) {
  std::vector<std::size_t> usable;
  for (std::size_t i = 0; i < collection.files.size(); ++i) {
    if (map.find(collection.files[i].location)) {
      usable.push_back(i);
    } else if (report) {
      report->unmapped_locations.push_back(collection.files[i].location);
    }
  }
  if (report) {
    for (const wiscan::NamedLocation& loc : map.locations()) {
      if (collection.find(loc.name) == nullptr) {
        report->unsurveyed_locations.push_back(loc.name);
      }
    }
  }
  return usable;
}

TrainingDatabase assemble(const GeneratorConfig& config,
                          std::vector<TrainingPoint> built,
                          std::size_t dropped, GeneratorReport* report) {
  TrainingDatabase db =
      TrainingDatabase::from_points(std::move(built), config.site_name);
  if (report) {
    report->dropped_pairs += dropped;
    report->points_built = db.size();
  }
  return db;
}

}  // namespace

TrainingDatabase generate_database(const wiscan::Collection& collection,
                                   const wiscan::LocationMap& map,
                                   const GeneratorConfig& config,
                                   GeneratorReport* report) {
  const std::vector<std::size_t> usable =
      plan_points(collection, map, report);
  std::vector<TrainingPoint> built;
  built.reserve(usable.size());
  std::size_t dropped = 0;
  for (const std::size_t i : usable) {
    const wiscan::WiScanFile& f = collection.files[i];
    built.push_back(
        build_training_point(f, *map.find(f.location), config, &dropped));
  }
  return assemble(config, std::move(built), dropped, report);
}

TrainingDatabase generate_database_parallel(
    const wiscan::Collection& collection, const wiscan::LocationMap& map,
    concurrency::ThreadPool& pool, const GeneratorConfig& config,
    GeneratorReport* report) {
  const std::vector<std::size_t> usable =
      plan_points(collection, map, report);

  // One slot per file: workers accumulate into their own indices and
  // the merge is a fixed left-to-right fold, so the assembled database
  // (and its serialized bytes) match the serial path exactly.
  std::vector<TrainingPoint> built(usable.size());
  std::vector<std::size_t> dropped_per(usable.size(), 0);
  concurrency::parallel_for(pool, 0, usable.size(), [&](std::size_t k) {
    const wiscan::WiScanFile& f = collection.files[usable[k]];
    built[k] = build_training_point(f, *map.find(f.location), config,
                                    &dropped_per[k]);
  });

  std::size_t dropped = 0;
  for (const std::size_t d : dropped_per) dropped += d;
  return assemble(config, std::move(built), dropped, report);
}

namespace {

// --- streaming from-path pipeline -----------------------------------
// generate_database_from_path never materializes WiScanEntry vectors:
// rows stream out of scan_wiscan_buffer straight into per-BSSID
// sample buckets whose keys are views into the (mmap'd) file buffer.
// That skips two heap strings per row — the dominant cost of the
// materialized path once parsing itself is cheap. The aggregate keeps
// exactly what build_training_point consumes (capture-ordered RSSI
// samples per AP, scan transition count, final location), so the
// resulting database is byte-identical to load_collection +
// generate_database; the ingest round-trip tests pin that.

struct FileAggregate {
  // Owns the mapped bytes the bucket keys point into (null for
  // archive members, whose bytes the archive owns).
  std::unique_ptr<wiscan::FileBuffer> buffer;
  std::string location;
  BucketTable<double> table;
  std::size_t scans = 0;
};

class SampleAggregator final : public wiscan::WiScanRowSink {
 public:
  explicit SampleAggregator(std::string fallback_location) {
    result_.location = std::move(fallback_location);
  }

  void on_location(std::string_view location) override {
    result_.location.assign(location);
  }
  void on_row(const wiscan::WiScanRow& row) override {
    // Same transition count as WiScanFile::scan_count().
    if (first_ || row.timestamp_s != last_time_) {
      ++result_.scans;
      last_time_ = row.timestamp_s;
      first_ = false;
    }
    result_.table.add(row.bssid, row.rssi_dbm);
  }

  FileAggregate take() { return std::move(result_); }

 private:
  FileAggregate result_;
  double last_time_ = -1.0;
  bool first_ = true;
};

FileAggregate aggregate_buffer(std::string_view text,
                               std::string fallback_location) {
  SampleAggregator aggregator(std::move(fallback_location));
  wiscan::scan_wiscan_buffer(text, aggregator);
  return aggregator.take();
}

// Identical arithmetic to build_training_point, fed from sample
// buckets instead of entry pointers.
TrainingPoint point_from_aggregate(const FileAggregate& aggregate,
                                   geom::Vec2 position,
                                   const GeneratorConfig& config,
                                   std::size_t* dropped_pairs) {
  TrainingPoint point;
  point.location = aggregate.location;
  point.position = position;
  for (const auto& bucket : aggregate.table.buckets) {
    const std::size_t group_size = bucket.rows.size();
    if (group_size < config.min_samples_per_ap) {
      if (dropped_pairs) ++*dropped_pairs;
      continue;
    }
    stats::RunningStats rs;
    for (const double rssi : bucket.rows) rs.add(rssi);

    ApStatistics ap;
    ap.bssid = bucket.bssid;
    ap.mean_dbm = rs.mean();
    ap.stddev_db = rs.stddev();
    ap.sample_count = static_cast<std::uint32_t>(group_size);
    ap.scan_count = static_cast<std::uint32_t>(aggregate.scans);
    ap.min_dbm = rs.min();
    ap.max_dbm = rs.max();
    if (config.keep_samples) {
      ap.samples_centi_dbm.reserve(group_size);
      for (const double rssi : bucket.rows) {
        ap.samples_centi_dbm.push_back(
            static_cast<std::int32_t>(std::lround(rssi * 100.0)));
      }
    }
    point.per_ap.push_back(std::move(ap));
  }
  return point;
}

bool has_wiscan_extension_name(const std::string& name) {
  static constexpr std::string_view kExt = ".wiscan";
  return name.size() > kExt.size() &&
         name.compare(name.size() - kExt.size(), kExt.size(), kExt) == 0;
}

// Aggregates `count` sources into index-aligned slots, serially or
// chunked across `pool` — the same deterministic-slot scheme
// load_collection uses, so parallel output cannot differ from serial.
template <typename AggregateItem>
std::vector<FileAggregate> aggregate_work_list(
    std::size_t count, concurrency::ThreadPool* pool,
    const AggregateItem& aggregate_item) {
  std::vector<FileAggregate> aggregates(count);
  if (pool != nullptr && count > 1) {
    concurrency::parallel_for(*pool, 0, count, [&](std::size_t i) {
      aggregates[i] = aggregate_item(i);
    });
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      aggregates[i] = aggregate_item(i);
    }
  }
  return aggregates;
}

}  // namespace

TrainingDatabase generate_database_from_path(
    const std::filesystem::path& collection_source,
    const std::filesystem::path& location_map_file,
    const GeneratorConfig& config, GeneratorReport* report,
    concurrency::ThreadPool* pool) {
  metrics::ScopedTimer timer(generate_seconds_histogram());
  // Must outlive the aggregates: archive-member bucket keys view its
  // bytes.
  std::optional<wiscan::Archive> archive;
  std::vector<FileAggregate> aggregates;
  // Per-work-list-index failure slots (quarantine mode only): workers
  // record errors under their own index so scheduling cannot reorder
  // the diagnostics, and failed slots are dropped before the sort —
  // exactly the pipeline a clean run over the surviving files sees.
  std::vector<std::optional<Error>> failed;
  std::vector<std::string> sources;

  if (std::filesystem::is_directory(collection_source)) {
    std::vector<std::filesystem::path> work;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(collection_source)) {
      if (!entry.is_regular_file()) continue;
      if (!has_wiscan_extension_name(entry.path().filename().string())) {
        continue;
      }
      work.push_back(entry.path());
    }
    // Directory iteration order is filesystem-dependent; sort so the
    // work list (and therefore the output) is stable.
    std::sort(work.begin(), work.end());

    failed.resize(work.size());
    sources.reserve(work.size());
    for (const auto& p : work) sources.push_back(p.string());
    aggregates = aggregate_work_list(work.size(), pool, [&](std::size_t i) {
      try {
        auto buffer = std::make_unique<wiscan::FileBuffer>(work[i]);
        FileAggregate aggregate = aggregate_buffer(
            buffer->view(),
            wiscan::sanitize_location_name(work[i].stem().string()));
        aggregate.buffer = std::move(buffer);
        return aggregate;
      } catch (const wiscan::BufferError& e) {
        if (config.quarantine_corrupt_files) {
          failed[i] = Error(ErrorCode::kIo, e.what())
                          .with_context("reading '" + sources[i] + "'");
          return FileAggregate{};
        }
        throw wiscan::FormatError("load_collection: " +
                                  std::string(e.what()));
      } catch (const wiscan::FormatError& e) {
        if (config.quarantine_corrupt_files) {
          failed[i] = Error(ErrorCode::kParse, e.what())
                          .with_context("parsing '" + sources[i] + "'");
          return FileAggregate{};
        }
        throw;
      }
    });
  } else if (std::filesystem::is_regular_file(collection_source) &&
             collection_source.extension() == ".lar") {
    archive.emplace(wiscan::Archive::read(collection_source));
    std::vector<const std::pair<const std::string, std::string>*> work;
    for (const auto& entry : archive->entries()) {
      if (has_wiscan_extension_name(entry.first)) work.push_back(&entry);
    }
    failed.resize(work.size());
    sources.reserve(work.size());
    for (const auto* entry : work) sources.push_back(entry->first);
    aggregates = aggregate_work_list(work.size(), pool, [&](std::size_t i) {
      const auto& [name, bytes] = *work[i];
      try {
        return aggregate_buffer(
            bytes, wiscan::sanitize_location_name(
                       std::filesystem::path(name).stem().string()));
      } catch (const wiscan::FormatError& e) {
        if (config.quarantine_corrupt_files) {
          failed[i] =
              Error(ErrorCode::kParse, e.what())
                  .with_context("parsing archive entry '" + name + "'");
          return FileAggregate{};
        }
        throw;
      }
    });
  } else {
    throw wiscan::FormatError("load_collection: '" +
                              collection_source.string() +
                              "' is neither a directory nor a .lar archive");
  }

  // Drop quarantined slots (work-list order) before any downstream
  // step observes the aggregates.
  if (config.quarantine_corrupt_files) {
    std::vector<FileAggregate> kept;
    kept.reserve(aggregates.size());
    for (std::size_t i = 0; i < aggregates.size(); ++i) {
      if (failed[i]) {
        if (report) {
          report->quarantined.push_back(
              {sources[i], std::move(*failed[i])});
        }
      } else {
        kept.push_back(std::move(aggregates[i]));
      }
    }
    aggregates = std::move(kept);
  }

  // Read after the collection so error precedence matches the old
  // load_collection-then-map sequence.
  const wiscan::LocationMap map =
      wiscan::LocationMap::read(location_map_file);

  // Same order as load_collection: by location, work-list index ties.
  std::stable_sort(aggregates.begin(), aggregates.end(),
                   [](const FileAggregate& a, const FileAggregate& b) {
                     return a.location < b.location;
                   });

  std::vector<TrainingPoint> built;
  built.reserve(aggregates.size());
  std::size_t dropped = 0;
  for (const FileAggregate& aggregate : aggregates) {
    const auto position = map.find(aggregate.location);
    if (position) {
      built.push_back(
          point_from_aggregate(aggregate, *position, config, &dropped));
    } else if (report) {
      report->unmapped_locations.push_back(aggregate.location);
    }
  }
  if (report) {
    for (const wiscan::NamedLocation& loc : map.locations()) {
      const bool surveyed = std::any_of(
          aggregates.begin(), aggregates.end(),
          [&](const FileAggregate& a) { return a.location == loc.name; });
      if (!surveyed) report->unsurveyed_locations.push_back(loc.name);
    }
  }
  generate_files_counter().add(aggregates.size());
  generate_quarantined_counter().add(failed.size() - aggregates.size());
  generate_points_counter().add(built.size());
  return assemble(config, std::move(built), dropped, report);
}

Result<TrainingDatabase> try_generate_database_from_path(
    const std::filesystem::path& collection_source,
    const std::filesystem::path& location_map_file,
    const GeneratorConfig& config, GeneratorReport* report,
    concurrency::ThreadPool* pool) {
  try {
    TrainingDatabase db = generate_database_from_path(
        collection_source, location_map_file, config, report, pool);
    if (db.size() == 0) {
      return Error(ErrorCode::kDegenerate,
                   "generator: no surveyed location matched the map")
          .with_context("building database from '" +
                        collection_source.string() + "'");
    }
    return db;
  } catch (const wiscan::BufferError& e) {
    return Error(ErrorCode::kIo, e.what());
  } catch (const wiscan::ArchiveError& e) {
    return Error(ErrorCode::kCorrupt, e.what());
  } catch (const wiscan::LocationMapError& e) {
    return Error(ErrorCode::kParse, e.what());
  } catch (const wiscan::FormatError& e) {
    return Error(ErrorCode::kParse, e.what());
  } catch (const DatabaseError& e) {
    return Error(ErrorCode::kCorrupt, e.what());
  } catch (const std::exception& e) {
    return Error(ErrorCode::kInternal, e.what());
  }
}

}  // namespace loctk::traindb

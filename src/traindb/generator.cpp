#include "traindb/generator.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "stats/running_stats.hpp"

namespace loctk::traindb {

TrainingPoint build_training_point(const wiscan::WiScanFile& file,
                                   geom::Vec2 position,
                                   const GeneratorConfig& config,
                                   std::size_t* dropped_pairs) {
  TrainingPoint point;
  point.location = file.location;
  point.position = position;

  const std::size_t scans = file.scan_count();

  // Group readings per BSSID, preserving capture order of samples.
  std::map<std::string, std::vector<double>> by_bssid;
  for (const wiscan::WiScanEntry& e : file.entries) {
    by_bssid[e.bssid].push_back(e.rssi_dbm);
  }

  for (auto& [bssid, readings] : by_bssid) {
    if (readings.size() < config.min_samples_per_ap) {
      if (dropped_pairs) ++*dropped_pairs;
      continue;
    }
    stats::RunningStats rs;
    for (const double r : readings) rs.add(r);

    ApStatistics ap;
    ap.bssid = bssid;
    ap.mean_dbm = rs.mean();
    ap.stddev_db = rs.stddev();
    ap.sample_count = static_cast<std::uint32_t>(readings.size());
    ap.scan_count = static_cast<std::uint32_t>(scans);
    ap.min_dbm = rs.min();
    ap.max_dbm = rs.max();
    if (config.keep_samples) {
      ap.samples_centi_dbm.reserve(readings.size());
      for (const double r : readings) {
        ap.samples_centi_dbm.push_back(
            static_cast<std::int32_t>(std::lround(r * 100.0)));
      }
    }
    point.per_ap.push_back(std::move(ap));
  }
  return point;
}

namespace {

// Shared front half: resolve positions, record mismatches, and return
// the indices of collection files that have map entries.
std::vector<std::size_t> plan_points(const wiscan::Collection& collection,
                                     const wiscan::LocationMap& map,
                                     GeneratorReport* report) {
  std::vector<std::size_t> usable;
  for (std::size_t i = 0; i < collection.files.size(); ++i) {
    if (map.find(collection.files[i].location)) {
      usable.push_back(i);
    } else if (report) {
      report->unmapped_locations.push_back(collection.files[i].location);
    }
  }
  if (report) {
    for (const wiscan::NamedLocation& loc : map.locations()) {
      if (collection.find(loc.name) == nullptr) {
        report->unsurveyed_locations.push_back(loc.name);
      }
    }
  }
  return usable;
}

TrainingDatabase assemble(const wiscan::Collection& collection,
                          const wiscan::LocationMap& map,
                          const GeneratorConfig& config,
                          std::vector<TrainingPoint> built,
                          std::size_t dropped, GeneratorReport* report) {
  (void)collection;
  (void)map;
  TrainingDatabase db;
  db.set_site_name(config.site_name);
  for (TrainingPoint& p : built) db.add_point(std::move(p));
  if (report) {
    report->dropped_pairs += dropped;
    report->points_built = db.size();
  }
  return db;
}

}  // namespace

TrainingDatabase generate_database(const wiscan::Collection& collection,
                                   const wiscan::LocationMap& map,
                                   const GeneratorConfig& config,
                                   GeneratorReport* report) {
  const std::vector<std::size_t> usable =
      plan_points(collection, map, report);
  std::vector<TrainingPoint> built;
  built.reserve(usable.size());
  std::size_t dropped = 0;
  for (const std::size_t i : usable) {
    const wiscan::WiScanFile& f = collection.files[i];
    built.push_back(
        build_training_point(f, *map.find(f.location), config, &dropped));
  }
  return assemble(collection, map, config, std::move(built), dropped,
                  report);
}

TrainingDatabase generate_database_parallel(
    const wiscan::Collection& collection, const wiscan::LocationMap& map,
    concurrency::ThreadPool& pool, const GeneratorConfig& config,
    GeneratorReport* report) {
  const std::vector<std::size_t> usable =
      plan_points(collection, map, report);

  std::vector<TrainingPoint> built(usable.size());
  std::vector<std::size_t> dropped_per(usable.size(), 0);
  std::vector<std::future<void>> futures;
  futures.reserve(usable.size());
  for (std::size_t k = 0; k < usable.size(); ++k) {
    futures.push_back(pool.submit([&, k] {
      const wiscan::WiScanFile& f = collection.files[usable[k]];
      built[k] = build_training_point(f, *map.find(f.location), config,
                                      &dropped_per[k]);
    }));
  }
  for (auto& f : futures) f.get();

  std::size_t dropped = 0;
  for (const std::size_t d : dropped_per) dropped += d;
  return assemble(collection, map, config, std::move(built), dropped,
                  report);
}

TrainingDatabase generate_database_from_path(
    const std::filesystem::path& collection_source,
    const std::filesystem::path& location_map_file,
    const GeneratorConfig& config, GeneratorReport* report) {
  const wiscan::Collection collection =
      wiscan::load_collection(collection_source);
  const wiscan::LocationMap map =
      wiscan::LocationMap::read(location_map_file);
  return generate_database(collection, map, config, report);
}

}  // namespace loctk::traindb

#pragma once

/// \file database.hpp
/// The training database: every training point plus the BSSID
/// universe, with lookup helpers used by all locators.
///
/// "Training databases are really collections of observation records,
/// and are easier to work with than wi-scan file collections and
/// location maps because they are compressed ... and they can be
/// loaded into memory more quickly" (paper §4.3). The compression and
/// fast load live in codec.hpp; this type is the in-memory form.

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "traindb/training_point.hpp"

namespace loctk::traindb {

class DatabaseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// In-memory training database.
class TrainingDatabase {
 public:
  /// Adds a point; throws DatabaseError on duplicate location names.
  /// The per-AP list is sorted by BSSID and the universe updated.
  void add_point(TrainingPoint point);

  /// Bulk constructor: equivalent to add_point() in order, but interns
  /// the BSSID universe with one sort+unique pass instead of a sorted
  /// insertion per <point, AP> pair. This is the ingest path — the
  /// parallel generator builds all points first and assembles the
  /// database in one shot. Throws DatabaseError on duplicate location
  /// names.
  static TrainingDatabase from_points(std::vector<TrainingPoint> points,
                                      std::string site_name = {});

  const std::vector<TrainingPoint>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// All BSSIDs heard anywhere, sorted.
  const std::vector<std::string>& bssid_universe() const {
    return universe_;
  }

  /// Index of `bssid` in the universe; nullopt when unknown.
  std::optional<std::size_t> bssid_index(const std::string& bssid) const;

  /// Point by location name; nullptr when absent.
  const TrainingPoint* find(const std::string& location) const;

  /// Training point whose *position* is nearest to `p`; nullptr when
  /// empty. This defines the "correct" answer for the paper's
  /// valid-estimation metric: an estimate is valid when the locator
  /// returns the training point nearest to where the client stood.
  const TrainingPoint* nearest_point(geom::Vec2 p) const;

  /// Free-form site metadata carried through serialization.
  const std::string& site_name() const { return site_name_; }
  void set_site_name(std::string name) { site_name_ = std::move(name); }

  /// True when any point retains raw samples.
  bool has_samples() const;

  /// Drops raw samples everywhere (stats remain).
  void strip_samples();

  friend bool operator==(const TrainingDatabase&,
                         const TrainingDatabase&) = default;

 private:
  std::string site_name_;
  std::vector<TrainingPoint> points_;
  std::vector<std::string> universe_;
};

}  // namespace loctk::traindb

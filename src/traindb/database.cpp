#include "traindb/database.hpp"

#include <algorithm>
#include <limits>

namespace loctk::traindb {

const ApStatistics* TrainingPoint::find(const std::string& bssid) const {
  // per_ap is sorted by BSSID (add_point enforces it).
  const auto it = std::lower_bound(
      per_ap.begin(), per_ap.end(), bssid,
      [](const ApStatistics& s, const std::string& b) {
        return s.bssid < b;
      });
  return it == per_ap.end() || it->bssid != bssid ? nullptr : &*it;
}

std::vector<double> TrainingPoint::signature(
    const std::vector<std::string>& universe, double missing_dbm) const {
  std::vector<double> out;
  out.reserve(universe.size());
  for (const std::string& bssid : universe) {
    const ApStatistics* s = find(bssid);
    out.push_back(s ? s->mean_dbm : missing_dbm);
  }
  return out;
}

TrainingDatabase TrainingDatabase::from_points(
    std::vector<TrainingPoint> points, std::string site_name) {
  TrainingDatabase db;
  db.site_name_ = std::move(site_name);

  std::vector<std::string> universe;
  std::vector<const std::string*> names;
  names.reserve(points.size());
  for (TrainingPoint& point : points) {
    std::sort(point.per_ap.begin(), point.per_ap.end(),
              [](const ApStatistics& a, const ApStatistics& b) {
                return a.bssid < b.bssid;
              });
    for (const ApStatistics& s : point.per_ap) universe.push_back(s.bssid);
    names.push_back(&point.location);
  }
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());

  std::sort(names.begin(), names.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  const auto dup = std::adjacent_find(
      names.begin(), names.end(),
      [](const std::string* a, const std::string* b) { return *a == *b; });
  if (dup != names.end()) {
    throw DatabaseError("TrainingDatabase: duplicate location: " + **dup);
  }

  db.universe_ = std::move(universe);
  db.points_ = std::move(points);
  return db;
}

void TrainingDatabase::add_point(TrainingPoint point) {
  if (find(point.location) != nullptr) {
    throw DatabaseError("TrainingDatabase: duplicate location: " +
                        point.location);
  }
  std::sort(point.per_ap.begin(), point.per_ap.end(),
            [](const ApStatistics& a, const ApStatistics& b) {
              return a.bssid < b.bssid;
            });
  for (const ApStatistics& s : point.per_ap) {
    const auto it =
        std::lower_bound(universe_.begin(), universe_.end(), s.bssid);
    if (it == universe_.end() || *it != s.bssid) {
      universe_.insert(it, s.bssid);
    }
  }
  points_.push_back(std::move(point));
}

std::optional<std::size_t> TrainingDatabase::bssid_index(
    const std::string& bssid) const {
  const auto it =
      std::lower_bound(universe_.begin(), universe_.end(), bssid);
  if (it == universe_.end() || *it != bssid) return std::nullopt;
  return static_cast<std::size_t>(std::distance(universe_.begin(), it));
}

const TrainingPoint* TrainingDatabase::find(
    const std::string& location) const {
  const auto it = std::find_if(
      points_.begin(), points_.end(),
      [&](const TrainingPoint& p) { return p.location == location; });
  return it == points_.end() ? nullptr : &*it;
}

const TrainingPoint* TrainingDatabase::nearest_point(geom::Vec2 p) const {
  const TrainingPoint* best = nullptr;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (const TrainingPoint& tp : points_) {
    const double d2 = geom::distance2(tp.position, p);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = &tp;
    }
  }
  return best;
}

bool TrainingDatabase::has_samples() const {
  return std::any_of(points_.begin(), points_.end(), [](const auto& tp) {
    return std::any_of(
        tp.per_ap.begin(), tp.per_ap.end(),
        [](const ApStatistics& s) { return !s.samples_centi_dbm.empty(); });
  });
}

void TrainingDatabase::strip_samples() {
  for (TrainingPoint& tp : points_) {
    for (ApStatistics& s : tp.per_ap) {
      s.samples_centi_dbm.clear();
      s.samples_centi_dbm.shrink_to_fit();
    }
  }
}

}  // namespace loctk::traindb

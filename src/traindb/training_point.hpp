#pragma once

/// \file training_point.hpp
/// Aggregated training data for one survey location.
///
/// The paper §5.1: "We then group the signal strength values for each
/// training point, and calculate the average value and standard
/// deviation for each <training point, AP> pair." `ApStatistics` is
/// that pair's record; `TrainingPoint` is one row of the training
/// database. Raw samples can optionally be retained for the
/// histogram/quantile locators (paper §6 item 2 proposes using the
/// full distribution).

#include <optional>
#include <string>
#include <vector>

#include "geom/vec2.hpp"
#include "stats/gaussian.hpp"

namespace loctk::traindb {

/// Signal-strength statistics of one AP at one training point.
struct ApStatistics {
  std::string bssid;
  double mean_dbm = 0.0;
  double stddev_db = 0.0;
  /// Number of scan passes in which the AP was heard here.
  std::uint32_t sample_count = 0;
  /// Number of scan passes at this point overall (heard or not) —
  /// `sample_count / scan_count` is the AP's visibility rate.
  std::uint32_t scan_count = 0;
  double min_dbm = 0.0;
  double max_dbm = 0.0;
  /// Raw per-pass readings in centi-dBm (present only when the
  /// database keeps samples).
  std::vector<std::int32_t> samples_centi_dbm;

  /// Visibility rate in [0, 1].
  double visibility() const {
    return scan_count ? static_cast<double>(sample_count) /
                            static_cast<double>(scan_count)
                      : 0.0;
  }

  /// Gaussian fitted to this pair, with `sigma_floor` regularization.
  stats::Gaussian gaussian(double sigma_floor = 0.5) const {
    return stats::Gaussian{mean_dbm, stddev_db}.regularized(sigma_floor);
  }

  friend bool operator==(const ApStatistics&,
                         const ApStatistics&) = default;
};

/// One training database row: a named, positioned survey point with
/// per-AP statistics (sorted by BSSID).
struct TrainingPoint {
  std::string location;
  geom::Vec2 position;
  std::vector<ApStatistics> per_ap;

  /// Statistics for `bssid`, or nullptr when the AP was never heard.
  const ApStatistics* find(const std::string& bssid) const;

  /// Mean-signal signature over an ordered BSSID universe; APs not
  /// heard at this point yield `missing_dbm` (a weak-floor sentinel).
  std::vector<double> signature(const std::vector<std::string>& universe,
                                double missing_dbm = -100.0) const;

  friend bool operator==(const TrainingPoint&,
                         const TrainingPoint&) = default;
};

}  // namespace loctk::traindb

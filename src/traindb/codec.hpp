#pragma once

/// \file codec.hpp
/// Binary serialization of the training database, with compression.
///
/// The paper motivates training databases by their being "compressed,
/// which makes them easier to move and transmit over a network, and
/// they can be loaded into memory more quickly than reading multiple
/// wi-scan files line by line" (§4.3). The codec delivers both
/// properties without external dependencies:
///
///  * strings and counts are LEB128 varints;
///  * raw sample streams (centi-dBm integers) are delta-encoded, then
///    run-length encoded as (zigzag-varint delta, varint run) pairs —
///    quantized RSSI repeats a lot, so runs are long;
///  * floating-point statistics are stored as raw IEEE doubles for
///    exact round-trips.
///
/// Layout: "LTDB" magic, u16 version, site name, BSSID table, then
/// points referencing BSSIDs by table index.

#include <cstdint>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "traindb/database.hpp"

namespace loctk::traindb {

class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// --- primitive layer (exposed for unit tests) -----------------------

/// Appends a LEB128 varint.
void put_varint(std::string& out, std::uint64_t v);

/// Reads a LEB128 varint at `pos`, advancing it. Throws CodecError on
/// truncation or overlong encodings (> 10 bytes).
std::uint64_t get_varint(std::string_view in, std::size_t& pos);

/// Zigzag mapping for signed values.
std::uint64_t zigzag_encode(std::int64_t v);
std::int64_t zigzag_decode(std::uint64_t v);

/// Delta + RLE compression of an integer stream.
void put_i32_stream(std::string& out, std::span<const std::int32_t> values);
std::vector<std::int32_t> get_i32_stream(std::string_view in,
                                         std::size_t& pos);

/// --- database layer --------------------------------------------------

/// Serializes to bytes. Round-trips exactly: decode(encode(db)) == db.
std::string encode_database(const TrainingDatabase& db);

/// Parses bytes produced by encode_database. Throws CodecError on
/// corruption.
TrainingDatabase decode_database(std::string_view bytes);

/// File convenience. The conventional extension is `.ltdb`.
/// read_database maps the file read-only and decodes straight out of
/// the mapped buffer — no full-file string copy on the load path.
void write_database(const std::filesystem::path& path,
                    const TrainingDatabase& db);
TrainingDatabase read_database(const std::filesystem::path& path);

/// What a `.ltdb` file claims to hold, read with one fixed-size
/// header read plus a seek — no payload is touched. Useful for
/// routing/validation before committing to a full decode.
struct DatabaseFileInfo {
  std::uint16_t version = 0;
  /// Bit 0: the database retains raw sample streams.
  std::uint16_t flags = 0;
  std::string site_name;
  /// Total file size in bytes.
  std::uint64_t file_bytes = 0;

  bool has_samples() const { return (flags & 1) != 0; }
};

/// Reads the header of `path`. Throws CodecError when the file is
/// missing, truncated, or not an LTDB v1 file.
DatabaseFileInfo probe_database(const std::filesystem::path& path);

/// --- structured-error adapters ---------------------------------------
/// The taxonomy-speaking forms of the decode entry points: corruption
/// and structural violations come back as `loctk::Error` (kCorrupt)
/// and I/O failures as kIo, instead of unwinding. Batch drivers use
/// these to quarantine one bad database without aborting the rest.

Result<TrainingDatabase> try_decode_database(std::string_view bytes);
Result<TrainingDatabase> try_read_database(const std::filesystem::path& path);

}  // namespace loctk::traindb

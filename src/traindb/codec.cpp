#include "traindb/codec.hpp"

#include <algorithm>
#include <bit>
#include <fstream>

#include "wiscan/scan_buffer.hpp"

namespace loctk::traindb {

namespace {

constexpr char kMagic[4] = {'L', 'T', 'D', 'B'};
constexpr std::uint16_t kVersion = 1;
// Sanity caps so corrupt counts fail fast instead of allocating wild.
constexpr std::uint64_t kMaxStrings = 1 << 24;
constexpr std::uint64_t kMaxPoints = 1 << 24;
constexpr std::uint64_t kMaxSamples = 1ull << 28;

void require(bool ok, const char* what) {
  if (!ok) throw CodecError(what);
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

std::uint16_t get_u16(std::string_view in, std::size_t& pos) {
  require(pos + 2 <= in.size(), "codec: truncated u16");
  const auto lo = static_cast<unsigned char>(in[pos]);
  const auto hi = static_cast<unsigned char>(in[pos + 1]);
  pos += 2;
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

void put_double(std::string& out, double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

double get_double(std::string_view in, std::size_t& pos) {
  require(pos + 8 <= in.size(), "codec: truncated double");
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(in[pos + static_cast<std::size_t>(i)]))
            << (8 * i);
  }
  pos += 8;
  return std::bit_cast<double>(bits);
}

void put_string(std::string& out, std::string_view s) {
  put_varint(out, s.size());
  out.append(s);
}

std::string get_string(std::string_view in, std::size_t& pos) {
  const std::uint64_t len = get_varint(in, pos);
  require(len <= in.size() - pos, "codec: truncated string");
  std::string s(in.substr(pos, len));
  pos += len;
  return s;
}

}  // namespace

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::uint64_t get_varint(std::string_view in, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    require(pos < in.size(), "codec: truncated varint");
    const auto byte = static_cast<unsigned char>(in[pos++]);
    // Byte 10 starts at shift 63: only its low bit fits a u64. A
    // larger payload would shift value bits past bit 63 — silently
    // dropped at best, UB if the shift ever exceeded 63 — so reject
    // oversized encodings outright instead of decoding them mod 2^64.
    require(shift < 63 || (byte & 0x7f) <= 1,
            "codec: varint overflows 64 bits");
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  throw CodecError("codec: overlong varint");
}

std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_i32_stream(std::string& out, std::span<const std::int32_t> values) {
  put_varint(out, values.size());
  std::size_t i = 0;
  std::int64_t prev = 0;
  while (i < values.size()) {
    const std::int64_t delta = static_cast<std::int64_t>(values[i]) - prev;
    std::size_t run = 1;
    // Extend the run while the delta repeats.
    while (i + run < values.size() &&
           static_cast<std::int64_t>(values[i + run]) -
                   static_cast<std::int64_t>(values[i + run - 1]) ==
               delta) {
      ++run;
    }
    put_varint(out, zigzag_encode(delta));
    put_varint(out, run);
    prev = values[i + run - 1];
    i += run;
  }
}

std::vector<std::int32_t> get_i32_stream(std::string_view in,
                                         std::size_t& pos) {
  const std::uint64_t count = get_varint(in, pos);
  require(count <= kMaxSamples, "codec: sample stream too large");
  std::vector<std::int32_t> values;
  values.reserve(count);
  std::int64_t current = 0;
  while (values.size() < count) {
    const std::int64_t delta = zigzag_decode(get_varint(in, pos));
    const std::uint64_t run = get_varint(in, pos);
    require(run >= 1 && values.size() + run <= count,
            "codec: bad run length");
    for (std::uint64_t r = 0; r < run; ++r) {
      current += delta;
      require(current >= INT32_MIN && current <= INT32_MAX,
              "codec: sample out of i32 range");
      values.push_back(static_cast<std::int32_t>(current));
    }
  }
  return values;
}

std::string encode_database(const TrainingDatabase& db) {
  std::string out;
  out.append(kMagic, 4);
  put_u16(out, kVersion);

  const std::uint16_t flags = db.has_samples() ? 1 : 0;
  put_u16(out, flags);
  put_string(out, db.site_name());

  const auto& universe = db.bssid_universe();
  put_varint(out, universe.size());
  for (const std::string& b : universe) put_string(out, b);

  put_varint(out, db.size());
  for (const TrainingPoint& p : db.points()) {
    put_string(out, p.location);
    put_double(out, p.position.x);
    put_double(out, p.position.y);
    put_varint(out, p.per_ap.size());
    for (const ApStatistics& s : p.per_ap) {
      const auto idx = db.bssid_index(s.bssid);
      require(idx.has_value(), "codec: AP missing from universe");
      put_varint(out, *idx);
      put_double(out, s.mean_dbm);
      put_double(out, s.stddev_db);
      put_varint(out, s.sample_count);
      put_varint(out, s.scan_count);
      put_double(out, s.min_dbm);
      put_double(out, s.max_dbm);
      put_i32_stream(out, s.samples_centi_dbm);
    }
  }
  return out;
}

TrainingDatabase decode_database(std::string_view bytes) {
  std::size_t pos = 0;
  require(bytes.size() >= 4 && std::equal(kMagic, kMagic + 4, bytes.begin()),
          "codec: bad magic");
  pos = 4;
  const std::uint16_t version = get_u16(bytes, pos);
  require(version == kVersion, "codec: unsupported version");
  (void)get_u16(bytes, pos);  // flags (informational)

  TrainingDatabase db;
  db.set_site_name(get_string(bytes, pos));

  const std::uint64_t n_bssids = get_varint(bytes, pos);
  require(n_bssids <= kMaxStrings, "codec: too many BSSIDs");
  std::vector<std::string> universe;
  universe.reserve(n_bssids);
  for (std::uint64_t i = 0; i < n_bssids; ++i) {
    universe.push_back(get_string(bytes, pos));
  }

  const std::uint64_t n_points = get_varint(bytes, pos);
  require(n_points <= kMaxPoints, "codec: too many points");
  for (std::uint64_t i = 0; i < n_points; ++i) {
    TrainingPoint p;
    p.location = get_string(bytes, pos);
    p.position.x = get_double(bytes, pos);
    p.position.y = get_double(bytes, pos);
    const std::uint64_t n_aps = get_varint(bytes, pos);
    require(n_aps <= n_bssids, "codec: point has more APs than universe");
    p.per_ap.reserve(n_aps);
    for (std::uint64_t a = 0; a < n_aps; ++a) {
      ApStatistics s;
      const std::uint64_t idx = get_varint(bytes, pos);
      require(idx < universe.size(), "codec: BSSID index out of range");
      s.bssid = universe[idx];
      s.mean_dbm = get_double(bytes, pos);
      s.stddev_db = get_double(bytes, pos);
      s.sample_count = static_cast<std::uint32_t>(get_varint(bytes, pos));
      s.scan_count = static_cast<std::uint32_t>(get_varint(bytes, pos));
      s.min_dbm = get_double(bytes, pos);
      s.max_dbm = get_double(bytes, pos);
      s.samples_centi_dbm = get_i32_stream(bytes, pos);
      p.per_ap.push_back(std::move(s));
    }
    db.add_point(std::move(p));
  }
  require(pos == bytes.size(), "codec: trailing bytes");
  return db;
}

void write_database(const std::filesystem::path& path,
                    const TrainingDatabase& db) {
  std::ofstream os(path, std::ios::binary);
  require(os.good(), "codec: cannot open output file");
  const std::string bytes = encode_database(db);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  require(os.good(), "codec: write failed");
}

TrainingDatabase read_database(const std::filesystem::path& path) {
  try {
    const wiscan::FileBuffer buffer(path);
    return decode_database(buffer.view());
  } catch (const wiscan::BufferError&) {
    throw CodecError("codec: cannot open input file");
  }
}

Result<TrainingDatabase> try_decode_database(std::string_view bytes) {
  try {
    return decode_database(bytes);
  } catch (const CodecError& e) {
    return Error(ErrorCode::kCorrupt, e.what());
  } catch (const DatabaseError& e) {
    // A mutation can decode into structurally invalid points (e.g.
    // duplicate location names); still corruption, not a toolkit bug.
    return Error(ErrorCode::kCorrupt, e.what());
  } catch (const std::exception& e) {
    return Error(ErrorCode::kInternal, e.what());
  }
}

Result<TrainingDatabase> try_read_database(
    const std::filesystem::path& path) {
  try {
    const wiscan::FileBuffer buffer(path);
    return try_decode_database(buffer.view())
        .with_context("reading '" + path.string() + "'");
  } catch (const wiscan::BufferError& e) {
    return Error(ErrorCode::kIo, e.what());
  }
}

DatabaseFileInfo probe_database(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  require(is.good(), "codec: cannot open input file");
  is.seekg(0, std::ios::end);
  const std::streamoff end = is.tellg();
  require(end >= 0, "codec: cannot size input file");
  is.seekg(0, std::ios::beg);

  // One read covers magic, version, flags, and the site-name string
  // (varint length + bytes, capped far below the chunk size).
  char chunk[512];
  is.read(chunk, sizeof chunk);
  const std::string_view head(chunk, static_cast<std::size_t>(is.gcount()));
  require(head.size() >= 4 && std::equal(kMagic, kMagic + 4, head.begin()),
          "codec: bad magic");
  std::size_t pos = 4;
  DatabaseFileInfo info;
  info.version = get_u16(head, pos);
  require(info.version == kVersion, "codec: unsupported version");
  info.flags = get_u16(head, pos);
  const std::uint64_t name_len = get_varint(head, pos);
  require(name_len <= head.size() - pos, "codec: site name overruns header");
  info.site_name = std::string(head.substr(pos, name_len));
  info.file_bytes = static_cast<std::uint64_t>(end);
  return info;
}

}  // namespace loctk::traindb

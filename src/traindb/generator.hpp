#pragma once

/// \file generator.hpp
/// The Training Database Generator: the paper's §4.3 component.
///
/// Inputs: a wi-scan collection (directory, archive, or in-memory)
/// plus a location map. Output: a `TrainingDatabase` whose rows carry
/// the per-<training point, AP> mean and standard deviation of §5.1.
/// Locations present in only one of the two inputs are reported in
/// `GeneratorReport` rather than silently dropped. Generation is
/// embarrassingly parallel across locations, so the builder can fan
/// out on a `ThreadPool` (the serial path is kept for the PERF bench).

#include <filesystem>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "concurrency/thread_pool.hpp"
#include "traindb/database.hpp"
#include "wiscan/collection.hpp"
#include "wiscan/location_map.hpp"

namespace loctk::traindb {

/// Generator knobs.
struct GeneratorConfig {
  /// Keep every raw reading (needed by histogram locators; costs
  /// space — the TBL-DB bench quantifies it).
  bool keep_samples = false;
  /// Drop an <AP, point> pair heard fewer than this many times; rare
  /// sightings produce garbage sigma estimates.
  std::uint32_t min_samples_per_ap = 3;
  /// Site label stored in the database.
  std::string site_name = "unnamed-site";
  /// When set, `generate_database_from_path` skips wi-scan files that
  /// fail to read or parse — recording a structured diagnostic in
  /// `GeneratorReport::quarantined` — instead of aborting the batch.
  /// The surviving files produce output byte-identical to a clean run
  /// without the bad files. Whole-batch failures (bad source path,
  /// unreadable archive, bad location map) still throw.
  bool quarantine_corrupt_files = false;
};

/// What happened during generation.
struct GeneratorReport {
  /// Wi-scan locations with no entry in the location map.
  std::vector<std::string> unmapped_locations;
  /// Location-map entries with no wi-scan file.
  std::vector<std::string> unsurveyed_locations;
  /// Corrupt/unreadable inputs skipped under
  /// `GeneratorConfig::quarantine_corrupt_files` (work-list order).
  std::vector<wiscan::QuarantinedFile> quarantined;
  /// <point, AP> pairs dropped by min_samples_per_ap.
  std::size_t dropped_pairs = 0;
  std::size_t points_built = 0;
};

/// Builds the database serially.
TrainingDatabase generate_database(const wiscan::Collection& collection,
                                   const wiscan::LocationMap& map,
                                   const GeneratorConfig& config = {},
                                   GeneratorReport* report = nullptr);

/// Builds the database with one task per location on `pool`.
/// Identical output to the serial path (points are assembled in
/// collection order regardless of completion order).
TrainingDatabase generate_database_parallel(
    const wiscan::Collection& collection, const wiscan::LocationMap& map,
    concurrency::ThreadPool& pool, const GeneratorConfig& config = {},
    GeneratorReport* report = nullptr);

/// End-to-end convenience mirroring the paper's CLI contract: a
/// string naming either a wi-scan directory or a `.lar` archive, plus
/// a location-map file. This path streams rows straight into
/// per-BSSID sample buckets (no intermediate Collection), producing a
/// database byte-identical to `generate_database(load_collection(...))`.
/// With `pool`, per-file aggregation fans out across its workers into
/// index-aligned slots; the result is byte-identical to the serial
/// path.
TrainingDatabase generate_database_from_path(
    const std::filesystem::path& collection_source,
    const std::filesystem::path& location_map_file,
    const GeneratorConfig& config = {}, GeneratorReport* report = nullptr,
    concurrency::ThreadPool* pool = nullptr);

/// Structured-error form of `generate_database_from_path`: instead of
/// unwinding, whole-batch failures come back as a `loctk::Error` —
/// kIo (unreadable source), kParse (malformed wi-scan / location-map
/// text), kCorrupt (bad archive), kDegenerate (an empty database: no
/// usable surveyed+mapped location at all). Per-file failures follow
/// `GeneratorConfig::quarantine_corrupt_files` as usual.
Result<TrainingDatabase> try_generate_database_from_path(
    const std::filesystem::path& collection_source,
    const std::filesystem::path& location_map_file,
    const GeneratorConfig& config = {}, GeneratorReport* report = nullptr,
    concurrency::ThreadPool* pool = nullptr);

/// Aggregates one wi-scan file into one training point (exposed for
/// tests). `position` is the surveyed world position.
TrainingPoint build_training_point(const wiscan::WiScanFile& file,
                                   geom::Vec2 position,
                                   const GeneratorConfig& config,
                                   std::size_t* dropped_pairs = nullptr);

}  // namespace loctk::traindb

#pragma once

/// \file font.hpp
/// A built-in 5x7 bitmap font for labels on composited floor plans.
///
/// The Floor Plan Compositor labels access points and named locations
/// (paper §4.2, Figure 3); this tiny fixed-width font keeps the image
/// pipeline dependency-free. Glyphs cover printable ASCII 32..126;
/// anything else renders as the replacement box.

#include <string_view>

#include "image/raster.hpp"

namespace loctk::image {

inline constexpr int kGlyphWidth = 5;
inline constexpr int kGlyphHeight = 7;
/// Horizontal advance between characters (glyph + 1px spacing).
inline constexpr int kGlyphAdvance = kGlyphWidth + 1;
/// Vertical advance between lines.
inline constexpr int kLineAdvance = kGlyphHeight + 2;

/// True when the font has a real glyph for `ch`.
bool has_glyph(char ch);

/// Whether the glyph for `ch` has the pixel at (col, row) set;
/// unknown characters use the replacement box. col in [0,5), row in
/// [0,7).
bool glyph_pixel(char ch, int col, int row);

/// Draws one character with top-left corner at (x, y), scaled by
/// `scale` (each font pixel becomes scale x scale device pixels).
void draw_char(Raster& img, int x, int y, char ch, Color c, int scale = 1);

/// Draws a (possibly multi-line, '\n'-separated) string; returns the
/// width in pixels of the longest line drawn.
///
/// Trailing-empty-line contract (pinned by regression tests, and
/// matched exactly by `draw_text_atlas`): a trailing '\n' starts a
/// final empty line that contributes nothing to the returned width,
/// while `text_height` counts it as a full line — "AB\n" measures two
/// lines tall but returns the width of "AB".
int draw_text(Raster& img, int x, int y, std::string_view text, Color c,
              int scale = 1);

/// Pixel width the string would occupy (longest line). A trailing
/// '\n' adds no width (its line is empty).
int text_width(std::string_view text, int scale = 1);

/// Pixel height the string would occupy (line count dependent). Every
/// '\n' adds a line, so a trailing '\n' counts as a final empty line.
int text_height(std::string_view text, int scale = 1);

}  // namespace loctk::image

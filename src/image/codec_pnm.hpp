#pragma once

/// \file codec_pnm.hpp
/// Portable aNyMap (PPM / PGM) encode and decode.
///
/// PNM is the toolkit's native floor-plan interchange format, standing
/// in for the paper's GIF scans (GIF's LZW layer adds nothing the
/// localization pipeline exercises; PNM is lossless and universally
/// viewable). Both binary (P5/P6) and ASCII (P2/P3) variants are read;
/// writing always uses the binary variants.

#include <filesystem>
#include <istream>
#include <ostream>
#include <string>

#include "image/raster.hpp"

namespace loctk::image {

/// Error type for malformed image files.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes `img` as binary PPM (P6).
void write_ppm(std::ostream& os, const Raster& img);
void write_ppm(const std::filesystem::path& path, const Raster& img);

/// Writes the luma channel as binary PGM (P5).
void write_pgm(std::ostream& os, const Raster& img);
void write_pgm(const std::filesystem::path& path, const Raster& img);

/// Reads any of P2/P3/P5/P6; PGM pixels are replicated to gray RGB.
/// Throws CodecError on malformed input.
Raster read_pnm(std::istream& is);
Raster read_pnm(const std::filesystem::path& path);

/// Encode to an in-memory string (binary PPM). Round-trips exactly
/// through `read_pnm`.
std::string encode_ppm(const Raster& img);
Raster decode_pnm(const std::string& bytes);

}  // namespace loctk::image

#pragma once

/// \file draw.hpp
/// Rasterized drawing primitives over `Raster`.
///
/// Everything clips against the image bounds, so callers can draw
/// markers near (or past) the edge without pre-clipping — the
/// Compositor relies on this when estimated locations land outside
/// the floor plan.

#include "image/raster.hpp"

namespace loctk::image {

/// Marker glyph shapes used by the Compositor to distinguish true
/// locations, estimates, and access points.
enum class MarkerShape {
  kCross,        ///< '+'
  kX,            ///< 'x'
  kSquare,       ///< hollow square
  kFilledSquare,
  kDiamond,      ///< hollow diamond
  kCircle,       ///< hollow circle
  kDot,          ///< filled circle
  kTriangle,     ///< hollow upward triangle
};

/// Bresenham line from (x0,y0) to (x1,y1).
void draw_line(Raster& img, int x0, int y0, int x1, int y1, Color c);

/// Line of odd thickness `t` pixels (1 behaves like draw_line).
void draw_thick_line(Raster& img, int x0, int y0, int x1, int y1, Color c,
                     int t);

/// Dashed line: `on` pixels drawn, `off` skipped, repeating.
void draw_dashed_line(Raster& img, int x0, int y0, int x1, int y1, Color c,
                      int on = 4, int off = 4);

/// Axis-aligned rectangle outline, corners included.
void draw_rect(Raster& img, int x, int y, int w, int h, Color c);

/// Filled axis-aligned rectangle.
void fill_rect(Raster& img, int x, int y, int w, int h, Color c);

/// Midpoint circle outline.
void draw_circle(Raster& img, int cx, int cy, int radius, Color c);

/// Filled circle.
void fill_circle(Raster& img, int cx, int cy, int radius, Color c);

/// One marker glyph centered at (cx, cy) with half-size `r`.
void draw_marker(Raster& img, int cx, int cy, MarkerShape shape, Color c,
                 int r = 4);

}  // namespace loctk::image

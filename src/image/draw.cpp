#include "image/draw.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace loctk::image {

void draw_line(Raster& img, int x0, int y0, int x1, int y1, Color c) {
  int dx = std::abs(x1 - x0);
  int dy = -std::abs(y1 - y0);
  const int sx = x0 < x1 ? 1 : -1;
  const int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  for (;;) {
    img.set_pixel(x0, y0, c);
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void draw_thick_line(Raster& img, int x0, int y0, int x1, int y1, Color c,
                     int t) {
  if (t <= 1) {
    draw_line(img, x0, y0, x1, y1, c);
    return;
  }
  const int half = t / 2;
  // Offset parallel lines along the minor axis; for short fat lines
  // also stamp disks at the endpoints so joints look solid.
  const bool steep = std::abs(y1 - y0) > std::abs(x1 - x0);
  for (int o = -half; o <= half; ++o) {
    if (steep) {
      draw_line(img, x0 + o, y0, x1 + o, y1, c);
    } else {
      draw_line(img, x0, y0 + o, x1, y1 + o, c);
    }
  }
  fill_circle(img, x0, y0, half, c);
  fill_circle(img, x1, y1, half, c);
}

void draw_dashed_line(Raster& img, int x0, int y0, int x1, int y1, Color c,
                      int on, int off) {
  on = std::max(1, on);
  off = std::max(0, off);
  const int period = on + off;
  int dx = std::abs(x1 - x0);
  int dy = -std::abs(y1 - y0);
  const int sx = x0 < x1 ? 1 : -1;
  const int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  int step = 0;
  for (;;) {
    if (step % period < on) img.set_pixel(x0, y0, c);
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
    ++step;
  }
}

void draw_rect(Raster& img, int x, int y, int w, int h, Color c) {
  if (w <= 0 || h <= 0) return;
  draw_line(img, x, y, x + w - 1, y, c);
  draw_line(img, x, y + h - 1, x + w - 1, y + h - 1, c);
  draw_line(img, x, y, x, y + h - 1, c);
  draw_line(img, x + w - 1, y, x + w - 1, y + h - 1, c);
}

void fill_rect(Raster& img, int x, int y, int w, int h, Color c) {
  const int x0 = std::max(0, x);
  const int y0 = std::max(0, y);
  const int x1 = std::min(img.width(), x + w);
  const int y1 = std::min(img.height(), y + h);
  for (int yy = y0; yy < y1; ++yy) {
    for (int xx = x0; xx < x1; ++xx) img.at(xx, yy) = c;
  }
}

void draw_circle(Raster& img, int cx, int cy, int radius, Color c) {
  if (radius < 0) return;
  int x = radius;
  int y = 0;
  int err = 1 - radius;
  while (x >= y) {
    img.set_pixel(cx + x, cy + y, c);
    img.set_pixel(cx + y, cy + x, c);
    img.set_pixel(cx - y, cy + x, c);
    img.set_pixel(cx - x, cy + y, c);
    img.set_pixel(cx - x, cy - y, c);
    img.set_pixel(cx - y, cy - x, c);
    img.set_pixel(cx + y, cy - x, c);
    img.set_pixel(cx + x, cy - y, c);
    ++y;
    if (err < 0) {
      err += 2 * y + 1;
    } else {
      --x;
      err += 2 * (y - x) + 1;
    }
  }
}

void fill_circle(Raster& img, int cx, int cy, int radius, Color c) {
  if (radius < 0) return;
  for (int dy = -radius; dy <= radius; ++dy) {
    const int span =
        static_cast<int>(std::sqrt(static_cast<double>(radius * radius) -
                                   static_cast<double>(dy * dy)));
    for (int dx = -span; dx <= span; ++dx) {
      img.set_pixel(cx + dx, cy + dy, c);
    }
  }
}

void draw_marker(Raster& img, int cx, int cy, MarkerShape shape, Color c,
                 int r) {
  r = std::max(1, r);
  switch (shape) {
    case MarkerShape::kCross:
      draw_line(img, cx - r, cy, cx + r, cy, c);
      draw_line(img, cx, cy - r, cx, cy + r, c);
      break;
    case MarkerShape::kX:
      draw_line(img, cx - r, cy - r, cx + r, cy + r, c);
      draw_line(img, cx - r, cy + r, cx + r, cy - r, c);
      break;
    case MarkerShape::kSquare:
      draw_rect(img, cx - r, cy - r, 2 * r + 1, 2 * r + 1, c);
      break;
    case MarkerShape::kFilledSquare:
      fill_rect(img, cx - r, cy - r, 2 * r + 1, 2 * r + 1, c);
      break;
    case MarkerShape::kDiamond:
      draw_line(img, cx - r, cy, cx, cy - r, c);
      draw_line(img, cx, cy - r, cx + r, cy, c);
      draw_line(img, cx + r, cy, cx, cy + r, c);
      draw_line(img, cx, cy + r, cx - r, cy, c);
      break;
    case MarkerShape::kCircle:
      draw_circle(img, cx, cy, r, c);
      break;
    case MarkerShape::kDot:
      fill_circle(img, cx, cy, r, c);
      break;
    case MarkerShape::kTriangle:
      draw_line(img, cx, cy - r, cx + r, cy + r, c);
      draw_line(img, cx + r, cy + r, cx - r, cy + r, c);
      draw_line(img, cx - r, cy + r, cx, cy - r, c);
      break;
  }
}

}  // namespace loctk::image

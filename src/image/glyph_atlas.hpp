#pragma once

/// \file glyph_atlas.hpp
/// A prebuilt packed glyph atlas for blit-based text rendering.
///
/// The legacy `draw_text` path re-evaluates `glyph_pixel(ch, col,
/// row)` for every font cell of every character on every call, then
/// expands each set cell into a scale x scale block of bounds-checked
/// `set_pixel` writes. That is fine for a one-off figure label and
/// unusable for a fleet frame carrying a thousand AP labels per tick.
///
/// `GlyphAtlas` renders every glyph once, up front, into a single
/// monochrome page: all 95 printable ASCII glyphs (plus the
/// replacement box) at integer scales 1..kAtlasMaxScale, placed by a
/// node-tree rect packer (the classic lightmap-packer recursion: each
/// leaf either holds a rect or splits into a right and a bottom
/// remainder). Drawing a string is then a per-character mask blit —
/// one clipped row loop over prerendered bytes, no per-pixel font
/// lookup and no per-pixel scale arithmetic.
///
/// `draw_text_atlas` is pixel-identical to `draw_text` by
/// construction: the page is rasterized from the same `glyph_pixel`
/// table the legacy path consults, the layout loop (advance, newline,
/// return value) is the same code shape, and the golden-image suite
/// pins equality for every printable character at every scale,
/// including clipping at all four raster edges.

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "image/font.hpp"
#include "image/raster.hpp"

namespace loctk::image {

/// Highest text scale prerendered into the shared atlas. Larger
/// scales fall back to the legacy per-pixel path (still correct, just
/// not blit-accelerated).
inline constexpr int kAtlasMaxScale = 4;

/// A rectangle placed by the packer (pixel units, top-left origin).
struct PackedRect {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;

  friend bool operator==(const PackedRect&, const PackedRect&) = default;
};

/// Node-tree rectangle packer (lp_font-style). Each leaf is free
/// space; inserting into a leaf claims its top-left corner and splits
/// the remainder into a right child and a bottom child. Deterministic:
/// the layout is a pure function of the insertion sequence.
class RectPacker {
 public:
  RectPacker(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  /// Places a w x h rect (plus a 1px border on each side kept inside
  /// the claimed node, so neighboring rects never touch). Returns
  /// nullopt when no leaf can hold it — the caller decides whether to
  /// grow the page; nothing is ever silently dropped.
  std::optional<PackedRect> insert(int w, int h);

 private:
  struct Node {
    int x, y, w, h;
    bool used = false;
    std::unique_ptr<Node> right;  // remainder to the right of the rect
    std::unique_ptr<Node> down;   // remainder below the rect
  };

  Node* insert_node(Node* node, int w, int h);

  int width_;
  int height_;
  std::unique_ptr<Node> root_;
};

/// One glyph's placement inside the atlas page.
struct AtlasGlyph {
  std::uint16_t x = 0;
  std::uint16_t y = 0;
  std::uint8_t w = 0;  ///< kGlyphWidth * scale
  std::uint8_t h = 0;  ///< kGlyphHeight * scale
};

/// A packed page of prerendered glyph masks plus the per-glyph UV
/// table. Immutable after construction, so one instance is safely
/// shared across every compositor tile and thread.
class GlyphAtlas {
 public:
  /// One requested (character, scale) pair. Characters outside the
  /// printable range select the replacement box.
  struct GlyphKey {
    char ch = ' ';
    int scale = 1;
  };

  /// Packs exactly the requested glyphs (deduplicated). Grows the page
  /// until every request is placed — a constructed atlas never lacks a
  /// requested glyph.
  explicit GlyphAtlas(const std::vector<GlyphKey>& keys);

  /// The process-wide atlas: every printable char plus the replacement
  /// box at scales 1..kAtlasMaxScale. Built once, on first use.
  static const GlyphAtlas& shared();

  int page_width() const { return width_; }
  int page_height() const { return height_; }
  std::size_t glyph_count() const { return glyph_count_; }

  /// Placement of `ch` at `scale`; nullptr when that (char, scale) was
  /// not packed into this atlas (never happens for requested keys).
  /// Characters without a real glyph resolve to the replacement box.
  const AtlasGlyph* find(char ch, int scale) const;

  /// One row of the monochrome page (0 = clear, 1 = inked).
  const std::uint8_t* row(int y) const {
    return page_.data() + static_cast<std::size_t>(y) *
                              static_cast<std::size_t>(width_);
  }

  /// Blits one glyph with top-left corner (x, y), clipped to the
  /// raster. Pixel-identical to `draw_char` at the same position.
  void blit_glyph(Raster& img, int x, int y, char ch, Color c,
                  int scale) const;

 private:
  static std::size_t slot_of(char ch, int scale);

  int width_ = 0;
  int height_ = 0;
  std::size_t glyph_count_ = 0;
  std::vector<std::uint8_t> page_;
  // Slot = (scale-1) * 96 + glyph index, glyph index 95 = replacement.
  std::array<AtlasGlyph, 96 * kAtlasMaxScale> entries_{};
  std::array<bool, 96 * kAtlasMaxScale> present_{};
};

/// Drop-in replacement for `draw_text`: same layout, same return value
/// (width in pixels of the longest line drawn), same clipping, but
/// each character is an atlas blit instead of a per-pixel font walk.
/// Scales above kAtlasMaxScale use the legacy path per character.
int draw_text_atlas(Raster& img, int x, int y, std::string_view text,
                    Color c, int scale = 1);

}  // namespace loctk::image

#pragma once

/// \file codec_bmp.hpp
/// Windows BMP (24-bit uncompressed BITMAPINFOHEADER) encode/decode.
///
/// Provided so composited floor plans can be opened by any stock image
/// viewer; the paper's toolkit was Windows-based (§4) and BMP is the
/// zero-dependency Windows-native choice. Only the 24-bit BI_RGB
/// flavor is implemented — enough for lossless round-trips.

#include <filesystem>
#include <istream>
#include <ostream>
#include <string>

#include "image/codec_pnm.hpp"  // CodecError
#include "image/raster.hpp"

namespace loctk::image {

void write_bmp(std::ostream& os, const Raster& img);
void write_bmp(const std::filesystem::path& path, const Raster& img);

/// Reads a 24-bit uncompressed BMP. Throws CodecError otherwise.
Raster read_bmp(std::istream& is);
Raster read_bmp(const std::filesystem::path& path);

std::string encode_bmp(const Raster& img);
Raster decode_bmp(const std::string& bytes);

/// Dispatch on file extension: .ppm/.pgm/.pnm -> PNM, .bmp -> BMP.
/// Throws CodecError for other extensions.
void write_image(const std::filesystem::path& path, const Raster& img);
Raster read_image(const std::filesystem::path& path);

}  // namespace loctk::image

#pragma once

/// \file raster.hpp
/// In-memory RGB8 raster image.
///
/// This replaces the paper's reliance on GIF floor-plan scans (§4.1):
/// the Floor Plan Processor and Compositor operate on this raster and
/// read/write lossless PNM or BMP files (see codec headers). Pixel
/// (0,0) is the top-left corner, x grows right, y grows down — the
/// usual raster convention; world-coordinate mapping (origin, scale)
/// lives in `loctk/floorplan`.

#include <cstdint>
#include <vector>

namespace loctk::image {

/// An 8-bit-per-channel RGB color.
struct Color {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  friend constexpr bool operator==(const Color&, const Color&) = default;

  /// Luma (Rec.601), for grayscale export.
  constexpr std::uint8_t luma() const {
    return static_cast<std::uint8_t>((299 * r + 587 * g + 114 * b) / 1000);
  }

  /// Linear blend towards `other`; t = 0 keeps *this, t = 1 gives other.
  Color blend(Color other, double t) const;
};

/// Common palette used by the toolkit renders.
namespace colors {
inline constexpr Color kBlack{0, 0, 0};
inline constexpr Color kWhite{255, 255, 255};
inline constexpr Color kRed{220, 38, 38};
inline constexpr Color kGreen{22, 163, 74};
inline constexpr Color kBlue{37, 99, 235};
inline constexpr Color kOrange{234, 121, 22};
inline constexpr Color kPurple{147, 51, 234};
inline constexpr Color kGray{128, 128, 128};
inline constexpr Color kLightGray{211, 211, 211};
inline constexpr Color kDarkGray{64, 64, 64};
inline constexpr Color kYellow{234, 179, 8};
inline constexpr Color kCyan{8, 145, 178};
}  // namespace colors

/// Row-major RGB8 image. All accessors bounds-check in debug builds;
/// `at()` additionally throws in release builds, while `pixel()` /
/// `set_pixel()` silently ignore out-of-range coordinates so drawing
/// code can clip for free.
class Raster {
 public:
  Raster() = default;

  /// Creates a width x height image filled with `fill`.
  Raster(int width, int height, Color fill = colors::kWhite);

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return width_ == 0 || height_ == 0; }

  bool in_bounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  /// Checked access; throws std::out_of_range.
  Color& at(int x, int y);
  const Color& at(int x, int y) const;

  /// Clipped read: out-of-bounds returns `fallback`.
  Color pixel(int x, int y, Color fallback = colors::kWhite) const;

  /// Clipped write: out-of-bounds is a no-op.
  void set_pixel(int x, int y, Color c);

  /// Alpha-blended clipped write (t = 1 fully covers).
  void blend_pixel(int x, int y, Color c, double t);

  void fill(Color c);

  /// Number of pixels exactly equal to `c` (testing aid).
  std::size_t count_pixels(Color c) const;

  /// A deep sub-image copy; the rectangle is clipped to bounds.
  Raster crop(int x, int y, int w, int h) const;

  /// Nearest-neighbor scaled copy. `factor` >= 1.
  Raster scaled_up(int factor) const;

  const std::vector<Color>& data() const { return data_; }
  std::vector<Color>& data() { return data_; }

  friend bool operator==(const Raster&, const Raster&) = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Color> data_;
};

}  // namespace loctk::image

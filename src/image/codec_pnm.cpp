#include "image/codec_pnm.hpp"

#include <fstream>
#include <limits>
#include <sstream>

namespace loctk::image {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw CodecError(what);
}

// Reads the next header token, skipping whitespace and '#' comments.
std::string next_token(std::istream& is) {
  std::string tok;
  for (;;) {
    const int c = is.peek();
    if (c == EOF) break;
    if (std::isspace(c)) {
      is.get();
      continue;
    }
    if (c == '#') {
      std::string line;
      std::getline(is, line);
      continue;
    }
    break;
  }
  is >> tok;
  return tok;
}

int parse_positive_int(const std::string& tok, const char* what) {
  try {
    const long v = std::stol(tok);
    require(v > 0 && v <= 1 << 20, what);
    return static_cast<int>(v);
  } catch (const CodecError&) {
    throw;
  } catch (...) {
    throw CodecError(what);
  }
}

}  // namespace

void write_ppm(std::ostream& os, const Raster& img) {
  os << "P6\n" << img.width() << ' ' << img.height() << "\n255\n";
  for (const Color& c : img.data()) {
    os.put(static_cast<char>(c.r));
    os.put(static_cast<char>(c.g));
    os.put(static_cast<char>(c.b));
  }
}

void write_ppm(const std::filesystem::path& path, const Raster& img) {
  std::ofstream os(path, std::ios::binary);
  require(os.good(), "write_ppm: cannot open output file");
  write_ppm(os, img);
  require(os.good(), "write_ppm: write failed");
}

void write_pgm(std::ostream& os, const Raster& img) {
  os << "P5\n" << img.width() << ' ' << img.height() << "\n255\n";
  for (const Color& c : img.data()) os.put(static_cast<char>(c.luma()));
}

void write_pgm(const std::filesystem::path& path, const Raster& img) {
  std::ofstream os(path, std::ios::binary);
  require(os.good(), "write_pgm: cannot open output file");
  write_pgm(os, img);
  require(os.good(), "write_pgm: write failed");
}

Raster read_pnm(std::istream& is) {
  const std::string magic = next_token(is);
  require(magic == "P2" || magic == "P3" || magic == "P5" || magic == "P6",
          "read_pnm: not a P2/P3/P5/P6 file");
  const bool color = magic == "P3" || magic == "P6";
  const bool binary = magic == "P5" || magic == "P6";

  const int w = parse_positive_int(next_token(is), "read_pnm: bad width");
  const int h = parse_positive_int(next_token(is), "read_pnm: bad height");
  const int maxval =
      parse_positive_int(next_token(is), "read_pnm: bad maxval");
  require(maxval > 0 && maxval <= 255, "read_pnm: unsupported maxval");

  Raster img(w, h);
  const std::size_t samples = static_cast<std::size_t>(w) *
                              static_cast<std::size_t>(h) * (color ? 3u : 1u);

  auto scale = [maxval](int v) {
    return static_cast<std::uint8_t>(v * 255 / maxval);
  };

  if (binary) {
    require(is.get() != EOF || samples == 0,
            "read_pnm: truncated header");  // single whitespace consumed by >>
    // The `>>` above leaves exactly one whitespace before the payload,
    // which `is.get()` just consumed if present; rewind if it wasn't
    // whitespace. Simpler: we already consumed it. Read raw bytes now.
    std::string buf(samples, '\0');
    is.read(buf.data(), static_cast<std::streamsize>(samples));
    require(static_cast<std::size_t>(is.gcount()) == samples,
            "read_pnm: truncated pixel data");
    std::size_t k = 0;
    for (Color& c : img.data()) {
      if (color) {
        c.r = scale(static_cast<std::uint8_t>(buf[k++]));
        c.g = scale(static_cast<std::uint8_t>(buf[k++]));
        c.b = scale(static_cast<std::uint8_t>(buf[k++]));
      } else {
        const std::uint8_t g = scale(static_cast<std::uint8_t>(buf[k++]));
        c = {g, g, g};
      }
    }
  } else {
    for (Color& c : img.data()) {
      int r = 0, g = 0, b = 0;
      if (color) {
        is >> r >> g >> b;
      } else {
        is >> r;
        g = b = r;
      }
      require(static_cast<bool>(is), "read_pnm: truncated ASCII data");
      require(r >= 0 && r <= maxval && g >= 0 && g <= maxval && b >= 0 &&
                  b <= maxval,
              "read_pnm: sample out of range");
      c = {scale(r), scale(g), scale(b)};
    }
  }
  return img;
}

Raster read_pnm(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  require(is.good(), "read_pnm: cannot open input file");
  return read_pnm(is);
}

std::string encode_ppm(const Raster& img) {
  std::ostringstream os;
  write_ppm(os, img);
  return os.str();
}

Raster decode_pnm(const std::string& bytes) {
  std::istringstream is(bytes);
  return read_pnm(is);
}

}  // namespace loctk::image

#include "image/raster.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace loctk::image {

Color Color::blend(Color other, double t) const {
  t = std::clamp(t, 0.0, 1.0);
  auto mix = [t](std::uint8_t from, std::uint8_t to) {
    return static_cast<std::uint8_t>(
        std::lround(static_cast<double>(from) * (1.0 - t) +
                    static_cast<double>(to) * t));
  };
  return {mix(r, other.r), mix(g, other.g), mix(b, other.b)};
}

Raster::Raster(int width, int height, Color fill_color)
    : width_(std::max(0, width)), height_(std::max(0, height)),
      data_(static_cast<std::size_t>(width_) *
            static_cast<std::size_t>(height_)) {
  fill(fill_color);
}

Color& Raster::at(int x, int y) {
  if (!in_bounds(x, y)) throw std::out_of_range("Raster::at");
  return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
               static_cast<std::size_t>(x)];
}

const Color& Raster::at(int x, int y) const {
  if (!in_bounds(x, y)) throw std::out_of_range("Raster::at");
  return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
               static_cast<std::size_t>(x)];
}

Color Raster::pixel(int x, int y, Color fallback) const {
  return in_bounds(x, y) ? at(x, y) : fallback;
}

void Raster::set_pixel(int x, int y, Color c) {
  if (in_bounds(x, y)) at(x, y) = c;
}

void Raster::blend_pixel(int x, int y, Color c, double t) {
  if (in_bounds(x, y)) at(x, y) = at(x, y).blend(c, t);
}

void Raster::fill(Color c) {
  // Seed a small prefix, then double it with memcpy: std::fill over a
  // 3-byte struct degrades to byte stores, while memcpy streams at
  // memory bandwidth. Byte-identical result, ~3x faster on big rasters.
  const std::size_t n = data_.size();
  if (n == 0) return;
  const std::size_t seed = std::min<std::size_t>(n, 256);
  std::fill(data_.begin(),
            data_.begin() + static_cast<std::ptrdiff_t>(seed), c);
  std::size_t filled = seed;
  auto* bytes = reinterpret_cast<unsigned char*>(data_.data());
  while (filled < n) {
    const std::size_t copy = std::min(filled, n - filled);
    std::memcpy(bytes + filled * sizeof(Color), bytes,
                copy * sizeof(Color));
    filled += copy;
  }
}

std::size_t Raster::count_pixels(Color c) const {
  return static_cast<std::size_t>(
      std::count(data_.begin(), data_.end(), c));
}

Raster Raster::crop(int x, int y, int w, int h) const {
  const int x0 = std::clamp(x, 0, width_);
  const int y0 = std::clamp(y, 0, height_);
  const int x1 = std::clamp(x + w, x0, width_);
  const int y1 = std::clamp(y + h, y0, height_);
  Raster out(x1 - x0, y1 - y0);
  for (int yy = y0; yy < y1; ++yy) {
    for (int xx = x0; xx < x1; ++xx) {
      out.at(xx - x0, yy - y0) = at(xx, yy);
    }
  }
  return out;
}

Raster Raster::scaled_up(int factor) const {
  if (factor <= 1) return *this;
  Raster out(width_ * factor, height_ * factor);
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      out.at(x, y) = at(x / factor, y / factor);
    }
  }
  return out;
}

}  // namespace loctk::image

#include "image/codec_bmp.hpp"

#include <array>
#include <cstdint>
#include <fstream>
#include <sstream>

namespace loctk::image {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw CodecError(what);
}

void put_u16(std::ostream& os, std::uint16_t v) {
  os.put(static_cast<char>(v & 0xff));
  os.put(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::ostream& os, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) os.put(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint16_t get_u16(std::istream& is) {
  std::array<unsigned char, 2> b{};
  is.read(reinterpret_cast<char*>(b.data()), 2);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t get_u32(std::istream& is) {
  std::array<unsigned char, 4> b{};
  is.read(reinterpret_cast<char*>(b.data()), 4);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint32_t row_stride(int width) {
  return (static_cast<std::uint32_t>(width) * 3u + 3u) & ~3u;
}

}  // namespace

void write_bmp(std::ostream& os, const Raster& img) {
  const std::uint32_t stride = row_stride(img.width());
  const std::uint32_t pixel_bytes =
      stride * static_cast<std::uint32_t>(img.height());
  const std::uint32_t header_bytes = 14 + 40;

  // BITMAPFILEHEADER
  os.put('B');
  os.put('M');
  put_u32(os, header_bytes + pixel_bytes);
  put_u16(os, 0);
  put_u16(os, 0);
  put_u32(os, header_bytes);
  // BITMAPINFOHEADER
  put_u32(os, 40);
  put_u32(os, static_cast<std::uint32_t>(img.width()));
  put_u32(os, static_cast<std::uint32_t>(img.height()));
  put_u16(os, 1);   // planes
  put_u16(os, 24);  // bpp
  put_u32(os, 0);   // BI_RGB
  put_u32(os, pixel_bytes);
  put_u32(os, 2835);  // 72 dpi
  put_u32(os, 2835);
  put_u32(os, 0);
  put_u32(os, 0);

  const std::uint32_t pad = stride - static_cast<std::uint32_t>(img.width()) * 3u;
  for (int y = img.height() - 1; y >= 0; --y) {  // bottom-up rows
    for (int x = 0; x < img.width(); ++x) {
      const Color c = img.at(x, y);
      os.put(static_cast<char>(c.b));
      os.put(static_cast<char>(c.g));
      os.put(static_cast<char>(c.r));
    }
    for (std::uint32_t i = 0; i < pad; ++i) os.put('\0');
  }
}

void write_bmp(const std::filesystem::path& path, const Raster& img) {
  std::ofstream os(path, std::ios::binary);
  require(os.good(), "write_bmp: cannot open output file");
  write_bmp(os, img);
  require(os.good(), "write_bmp: write failed");
}

Raster read_bmp(std::istream& is) {
  require(is.get() == 'B' && is.get() == 'M', "read_bmp: bad signature");
  (void)get_u32(is);  // file size
  (void)get_u16(is);
  (void)get_u16(is);
  const std::uint32_t pixel_offset = get_u32(is);

  const std::uint32_t info_size = get_u32(is);
  require(info_size >= 40, "read_bmp: unsupported header");
  const auto w = static_cast<std::int32_t>(get_u32(is));
  const auto h = static_cast<std::int32_t>(get_u32(is));
  require(w > 0 && w <= (1 << 20) && h != 0 && h > -(1 << 20) &&
              h <= (1 << 20),
          "read_bmp: bad dimensions");
  const bool bottom_up = h > 0;
  const std::int32_t abs_h = bottom_up ? h : -h;
  require(get_u16(is) == 1, "read_bmp: bad plane count");
  require(get_u16(is) == 24, "read_bmp: only 24bpp supported");
  require(get_u32(is) == 0, "read_bmp: only BI_RGB supported");
  // Bytes consumed so far: 14 (file header) + 20 (info fields read
  // above). Skip the rest of the info header and any gap to the
  // pixel array.
  constexpr std::streamsize kConsumed = 14 + 20;
  require(pixel_offset >= kConsumed, "read_bmp: bad pixel offset");
  is.ignore(static_cast<std::streamsize>(pixel_offset) - kConsumed);
  require(static_cast<bool>(is), "read_bmp: truncated header");

  Raster img(w, abs_h);
  const std::uint32_t stride = row_stride(w);
  std::string row(stride, '\0');
  for (std::int32_t i = 0; i < abs_h; ++i) {
    is.read(row.data(), static_cast<std::streamsize>(stride));
    require(static_cast<std::size_t>(is.gcount()) == stride,
            "read_bmp: truncated pixel data");
    const std::int32_t y = bottom_up ? abs_h - 1 - i : i;
    for (std::int32_t x = 0; x < w; ++x) {
      const auto k = static_cast<std::size_t>(x) * 3;
      img.at(x, y) = {static_cast<std::uint8_t>(row[k + 2]),
                      static_cast<std::uint8_t>(row[k + 1]),
                      static_cast<std::uint8_t>(row[k])};
    }
  }
  return img;
}

Raster read_bmp(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  require(is.good(), "read_bmp: cannot open input file");
  return read_bmp(is);
}

std::string encode_bmp(const Raster& img) {
  std::ostringstream os;
  write_bmp(os, img);
  return os.str();
}

Raster decode_bmp(const std::string& bytes) {
  std::istringstream is(bytes);
  return read_bmp(is);
}

void write_image(const std::filesystem::path& path, const Raster& img) {
  const std::string ext = path.extension().string();
  if (ext == ".ppm" || ext == ".pnm") {
    write_ppm(path, img);
  } else if (ext == ".pgm") {
    write_pgm(path, img);
  } else if (ext == ".bmp") {
    write_bmp(path, img);
  } else {
    throw CodecError("write_image: unsupported extension " + ext);
  }
}

Raster read_image(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  if (ext == ".ppm" || ext == ".pnm" || ext == ".pgm") {
    return read_pnm(path);
  }
  if (ext == ".bmp") {
    return read_bmp(path);
  }
  throw CodecError("read_image: unsupported extension " + ext);
}

}  // namespace loctk::image
